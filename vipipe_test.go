package vipipe

import (
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/vi"
)

func TestFlowStepOrderEnforced(t *testing.T) {
	f := New(TestConfig())
	if err := f.Place(); err == nil {
		t.Error("Place before Synthesize accepted")
	}
	if err := f.Analyze(); err == nil {
		t.Error("Analyze before Place accepted")
	}
	if err := f.Characterize(); err == nil {
		t.Error("Characterize before Analyze accepted")
	}
	if _, err := f.SensorPlan(); err == nil {
		t.Error("SensorPlan before Characterize accepted")
	}
	if _, err := f.GenerateIslands(vi.Vertical); err == nil {
		t.Error("GenerateIslands before Characterize accepted")
	}
	if err := f.SimulateWorkload(); err == nil {
		t.Error("SimulateWorkload before Synthesize accepted")
	}
}

func TestFlowEndToEnd(t *testing.T) {
	f := New(TestConfig())
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if f.FmaxMHz <= 0 || f.ClockPS <= 0 {
		t.Fatal("no clock derived")
	}
	// Canonical scenario ladder: three scenarios, targets C, B, A.
	if len(f.ScenarioPositions) != 3 {
		t.Fatalf("scenario positions = %v", f.ScenarioPositions)
	}
	names := []string{}
	for _, p := range f.ScenarioPositions {
		names = append(names, p.Name)
	}
	if names[0] != "C" || names[1] != "B" || names[2] != "A" {
		t.Errorf("scenario targets = %v, want [C B A]", names)
	}

	// Workload + baseline power before mutation.
	if err := f.SimulateWorkload(); err != nil {
		t.Fatal(err)
	}
	base, err := f.ChipWidePower(f.Position("A"))
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalMW() <= 0 {
		t.Fatal("no baseline power")
	}

	// Islands, shifters, scenario power.
	part, err := f.GenerateIslands(vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	count, degr, err := f.InsertShifters(part)
	if err != nil {
		t.Fatal(err)
	}
	if count <= 0 {
		t.Fatal("no shifters")
	}
	if degr < 0 || degr > 0.6 {
		t.Errorf("degradation %.2f implausible", degr)
	}
	if err := f.SimulateWorkload(); err != nil {
		t.Fatal(err)
	}
	// One island raised must cost less than all three raised, which
	// must cost less than the whole (shifter-bearing) design high.
	p1, err := f.ScenarioPower(part, 1, f.Position("C"))
	if err != nil {
		t.Fatal(err)
	}
	p3, err := f.ScenarioPower(part, 3, f.Position("A"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalMW() >= p3.TotalMW() {
		t.Errorf("1-island power %.3f >= 3-island power %.3f", p1.TotalMW(), p3.TotalMW())
	}
	wide, err := f.ChipWidePower(f.Position("A"))
	if err != nil {
		t.Fatal(err)
	}
	if p3.TotalMW() > wide.TotalMW() {
		t.Errorf("3-island power %.3f exceeds chip-wide %.3f", p3.TotalMW(), wide.TotalMW())
	}

	// Sensor plan is available and bounded.
	plan, err := f.SensorPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSensors() == 0 || plan.NumSensors() > 3*f.Cfg.SensorBudget {
		t.Errorf("sensors = %d", plan.NumSensors())
	}
}

func TestPositionLookup(t *testing.T) {
	f := New(TestConfig())
	if f.Position("B").Name != "B" || f.Position("B").XMM <= 0 {
		t.Error("position lookup broken")
	}
	if f.Position("Z").XMM != 0 {
		t.Error("unknown position should be zero-valued")
	}
}

func TestPowerBeforeWorkloadRejected(t *testing.T) {
	f := New(TestConfig())
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Power(make([]cell.Domain, f.NL.NumCells()), f.Position("A")); err == nil {
		t.Error("Power before SimulateWorkload accepted")
	}
}
