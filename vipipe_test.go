package vipipe

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/pipeline"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
)

// TestFlowAutoResolvesPrerequisites: with the artifact graph under
// the facade, calling a step on a fresh flow computes its whole
// dependency closure instead of failing with a step-order error.
func TestFlowAutoResolvesPrerequisites(t *testing.T) {
	ctx := context.Background()
	f := New(TestConfig())
	// Place on a fresh flow synthesizes implicitly.
	if err := f.Place(ctx); err != nil {
		t.Fatal(err)
	}
	if f.NL == nil || f.PL == nil {
		t.Fatal("Place did not materialize the synthesis closure")
	}
	// GenerateIslands pulls analysis and the full characterization.
	part, err := f.GenerateIslands(ctx, vi.Horizontal)
	if err != nil {
		t.Fatal(err)
	}
	if part == nil || part.NumIslands() == 0 {
		t.Fatal("no islands generated")
	}
	if len(f.MC) != 4 || len(f.ScenarioPositions) == 0 || f.STA == nil {
		t.Errorf("closure not mirrored: %d characterizations, %d scenarios",
			len(f.MC), len(f.ScenarioPositions))
	}
}

// TestFlowGuardsNamePrerequisite: the step-order guards that remain
// (no-context accessors that cannot trigger graph work) must name the
// required prior step in their error text.
func TestFlowGuardsNamePrerequisite(t *testing.T) {
	f := New(TestConfig())
	guards := []struct {
		name string
		want string // prerequisite named in the error
		call func() error
	}{
		{"SensorPlan", "Characterize", func() error { _, err := f.SensorPlan(); return err }},
		{"Check", "Synthesize", func() error { return f.Check(nil) }},
		{"ChipWidePower", "Synthesize", func() error {
			_, err := f.ChipWidePower(variation.Pos{Name: "A"})
			return err
		}},
	}
	for _, g := range guards {
		err := g.call()
		if err == nil {
			t.Errorf("%s on empty flow accepted", g.name)
			continue
		}
		if !errors.Is(err, flowerr.ErrStepOrder) {
			t.Errorf("%s: error %v does not match ErrStepOrder", g.name, err)
		}
		if !strings.Contains(err.Error(), g.want) {
			t.Errorf("%s: error %q does not name prerequisite %q", g.name, err, g.want)
		}
	}
}

// TestPowerBeforeWorkloadRejected covers the one ordering guard that
// needs a characterized flow first.
func TestPowerBeforeWorkloadRejected(t *testing.T) {
	f := New(TestConfig())
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	pos, err := f.Position("A")
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Power(make([]cell.Domain, f.NL.NumCells()), pos)
	if err == nil {
		t.Fatal("Power before SimulateWorkload accepted")
	}
	if !errors.Is(err, flowerr.ErrStepOrder) {
		t.Errorf("error %v does not match ErrStepOrder", err)
	}
}

func TestFlowPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := New(TestConfig())
	err := f.Run(ctx)
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Errorf("error %v does not match ErrCancelled", err)
	}
}

// TestCharacterizeCancelledMidRun cancels after the first position's
// Monte Carlo run commits and checks both the error class and the
// partial-progress contract: positions characterized before the
// cancellation stay in f.MC. The graph is rebuilt with one worker so
// the cancellation point is deterministic.
func TestCharacterizeCancelledMidRun(t *testing.T) {
	f := New(TestConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.graph = newGraph(f.Cfg, f.Lib, pipeline.NewMemStore(),
		pipeline.WithWorkers(1),
		pipeline.WithHooks(pipeline.Hooks{
			OnCompute: func(id string, _ time.Duration) {
				if strings.HasPrefix(id, "mc/") {
					cancel() // first characterization done: stop the rest
				}
			},
		}))
	err := f.Characterize(ctx)
	if err == nil {
		t.Fatal("cancelled Characterize succeeded")
	}
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("error %v does not match ErrCancelled", err)
	}
	if len(f.MC) == 0 || len(f.MC) >= 4 {
		t.Errorf("partial progress: %d characterizations adopted, want 1..3", len(f.MC))
	}
	for name, res := range f.MC {
		if res.Samples != res.Requested {
			t.Errorf("committed position %s: %d of %d samples", name, res.Samples, res.Requested)
		}
	}
	if len(f.ScenarioPositions) != 0 {
		t.Error("scenario ladder derived despite cancellation")
	}
}

// TestFlowRefusesGraphAfterMutation: InsertShifters invalidates the
// graph's artifacts, so later graph-backed steps must fail with a
// step-order error pointing at the rebuild.
func TestFlowRefusesGraphAfterMutation(t *testing.T) {
	ctx := context.Background()
	f := New(TestConfig())
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InsertShifters(ctx, part); err != nil {
		t.Fatal(err)
	}
	err = f.Characterize(ctx)
	if !errors.Is(err, flowerr.ErrStepOrder) {
		t.Fatalf("Characterize after mutation: %v, want ErrStepOrder", err)
	}
	if !strings.Contains(err.Error(), "New") {
		t.Errorf("error %q does not point at rebuilding from New", err)
	}
	// The imperative post-mutation path still works end to end.
	if err := f.SimulateWorkload(ctx); err != nil {
		t.Fatal(err)
	}
	pos, err := f.Position("C")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.ScenarioPower(part, 1, pos)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMW() <= 0 {
		t.Error("no power reported on the mutated design")
	}
}

func TestFlowEndToEnd(t *testing.T) {
	ctx := context.Background()
	f := New(TestConfig())
	if err := f.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if f.FmaxMHz <= 0 || f.ClockPS <= 0 {
		t.Fatal("no clock derived")
	}
	// Canonical scenario ladder: three scenarios, targets C, B, A.
	if len(f.ScenarioPositions) != 3 {
		t.Fatalf("scenario positions = %v", f.ScenarioPositions)
	}
	names := []string{}
	for _, p := range f.ScenarioPositions {
		names = append(names, p.Name)
	}
	if names[0] != "C" || names[1] != "B" || names[2] != "A" {
		t.Errorf("scenario targets = %v, want [C B A]", names)
	}
	// Every completed position reports full sample counts.
	for name, res := range f.MC {
		if res.Samples != res.Requested {
			t.Errorf("position %s: %d of %d samples", name, res.Samples, res.Requested)
		}
	}

	// The characterized flow passes DRC.
	if err := f.Check(nil); err != nil {
		t.Fatalf("pre-island DRC: %v", err)
	}

	// Workload + baseline power before mutation.
	if err := f.SimulateWorkload(ctx); err != nil {
		t.Fatal(err)
	}
	posA, err := f.Position("A")
	if err != nil {
		t.Fatal(err)
	}
	base, err := f.ChipWidePower(posA)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalMW() <= 0 {
		t.Fatal("no baseline power")
	}

	// Islands, shifters, scenario power.
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	count, degr, err := f.InsertShifters(ctx, part)
	if err != nil {
		t.Fatal(err)
	}
	if count <= 0 {
		t.Fatal("no shifters")
	}
	if degr < 0 || degr > 0.6 {
		t.Errorf("degradation %.2f implausible", degr)
	}
	// The mutated flow still passes DRC, including the level-shifter
	// coverage rule.
	if err := f.Check(part); err != nil {
		t.Fatalf("post-island DRC: %v", err)
	}
	if err := f.SimulateWorkload(ctx); err != nil {
		t.Fatal(err)
	}
	// One island raised must cost less than all three raised, which
	// must cost less than the whole (shifter-bearing) design high.
	posC, err := f.Position("C")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.ScenarioPower(part, 1, posC)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := f.ScenarioPower(part, 3, posA)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalMW() >= p3.TotalMW() {
		t.Errorf("1-island power %.3f >= 3-island power %.3f", p1.TotalMW(), p3.TotalMW())
	}
	wide, err := f.ChipWidePower(posA)
	if err != nil {
		t.Fatal(err)
	}
	if p3.TotalMW() > wide.TotalMW() {
		t.Errorf("3-island power %.3f exceeds chip-wide %.3f", p3.TotalMW(), wide.TotalMW())
	}

	// Sensor plan is available and bounded.
	plan, err := f.SensorPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSensors() == 0 || plan.NumSensors() > 3*f.Cfg.SensorBudget {
		t.Errorf("sensors = %d", plan.NumSensors())
	}
}

func TestPositionLookup(t *testing.T) {
	f := New(TestConfig())
	pos, err := f.Position("B")
	if err != nil {
		t.Fatal(err)
	}
	if pos.Name != "B" || pos.XMM <= 0 {
		t.Error("position lookup broken")
	}
	if _, err := f.Position("Z"); err == nil {
		t.Error("unknown position accepted")
	} else if !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("error %v does not match ErrBadInput", err)
	}
}

// TestInsertShiftersRejectsBadPartition checks the pre-mutation guards:
// a nil or double-inserted partition must fail without touching state.
func TestInsertShiftersRejectsBadPartition(t *testing.T) {
	ctx := context.Background()
	f := New(TestConfig())
	if err := f.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InsertShifters(ctx, nil); !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("nil partition: %v, want ErrBadInput", err)
	}
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InsertShifters(ctx, part); err != nil {
		t.Fatal(err)
	}
	cells := f.NL.NumCells()
	if _, _, err := f.InsertShifters(ctx, part); !errors.Is(err, flowerr.ErrStepOrder) {
		t.Errorf("double insertion: %v, want ErrStepOrder", err)
	}
	if f.NL.NumCells() != cells {
		t.Error("rejected insertion still mutated the netlist")
	}
}
