package vipipe

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/vi"
)

// TestFlowStepOrderEnforced exercises every "X before Y" guard; each
// must reject with an error matching flowerr.ErrStepOrder.
func TestFlowStepOrderEnforced(t *testing.T) {
	ctx := context.Background()
	f := New(TestConfig())
	order := []struct {
		name string
		call func() error
	}{
		{"Place before Synthesize", func() error { return f.Place(ctx) }},
		{"Analyze before Place", func() error { return f.Analyze(ctx) }},
		{"Characterize before Analyze", func() error { return f.Characterize(ctx) }},
		{"SensorPlan before Characterize", func() error { _, err := f.SensorPlan(); return err }},
		{"GenerateIslands before Characterize", func() error { _, err := f.GenerateIslands(ctx, vi.Vertical); return err }},
		{"InsertShifters before Analyze", func() error { _, _, err := f.InsertShifters(ctx, &vi.Partition{}); return err }},
		{"SimulateWorkload before Synthesize", func() error { return f.SimulateWorkload(ctx) }},
		{"Check before Synthesize", func() error { return f.Check(nil) }},
	}
	for _, step := range order {
		err := step.call()
		if err == nil {
			t.Errorf("%s accepted", step.name)
			continue
		}
		if !errors.Is(err, flowerr.ErrStepOrder) {
			t.Errorf("%s: error %v does not match ErrStepOrder", step.name, err)
		}
	}
}

// TestPowerBeforeWorkloadRejected covers the one ordering guard that
// needs a characterized flow first.
func TestPowerBeforeWorkloadRejected(t *testing.T) {
	f := New(TestConfig())
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	pos, err := f.Position("A")
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Power(make([]cell.Domain, f.NL.NumCells()), pos)
	if err == nil {
		t.Fatal("Power before SimulateWorkload accepted")
	}
	if !errors.Is(err, flowerr.ErrStepOrder) {
		t.Errorf("error %v does not match ErrStepOrder", err)
	}
}

func TestFlowPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := New(TestConfig())
	err := f.Run(ctx)
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Errorf("error %v does not match ErrCancelled", err)
	}
}

// countingCtx is a context whose Err() flips to Canceled after a fixed
// number of polls: a deterministic way to cancel mid-Characterize
// without racing a timer against the Monte Carlo workers.
type countingCtx struct {
	mu    sync.Mutex
	calls int
	limit int
	done  chan struct{}
	err   error
}

func newCountingCtx(limit int) *countingCtx {
	return &countingCtx{limit: limit, done: make(chan struct{})}
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return c.done }
func (c *countingCtx) Value(any) any               { return nil }
func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.err == nil && c.calls >= c.limit {
		c.err = context.Canceled
		close(c.done)
	}
	return c.err
}

// TestCharacterizeCancelledMidRun cancels during the first position's
// Monte Carlo run and checks both the error class and the
// partial-progress contract: whatever samples completed are kept.
func TestCharacterizeCancelledMidRun(t *testing.T) {
	f := New(TestConfig())
	ctx := context.Background()
	for _, step := range []func(context.Context) error{f.Synthesize, f.Place, f.Analyze} {
		if err := step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// The limit is reached inside the first mc.Run: validation passes
	// first, then the dispatch loop and every worker poll Err() at
	// least once per sample.
	cctx := newCountingCtx(40)
	err := f.Characterize(cctx)
	if err == nil {
		t.Fatal("cancelled Characterize succeeded")
	}
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("error %v does not match ErrCancelled", err)
	}
	total := 0
	for _, res := range f.MC {
		if res.Samples > res.Requested {
			t.Errorf("position result claims %d of %d samples", res.Samples, res.Requested)
		}
		total += res.Samples
	}
	if want := 4 * f.Cfg.MCSamples; total >= want {
		t.Errorf("%d samples completed despite cancellation (full run is %d)", total, want)
	}
}

func TestFlowEndToEnd(t *testing.T) {
	ctx := context.Background()
	f := New(TestConfig())
	if err := f.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if f.FmaxMHz <= 0 || f.ClockPS <= 0 {
		t.Fatal("no clock derived")
	}
	// Canonical scenario ladder: three scenarios, targets C, B, A.
	if len(f.ScenarioPositions) != 3 {
		t.Fatalf("scenario positions = %v", f.ScenarioPositions)
	}
	names := []string{}
	for _, p := range f.ScenarioPositions {
		names = append(names, p.Name)
	}
	if names[0] != "C" || names[1] != "B" || names[2] != "A" {
		t.Errorf("scenario targets = %v, want [C B A]", names)
	}
	// Every completed position reports full sample counts.
	for name, res := range f.MC {
		if res.Samples != res.Requested {
			t.Errorf("position %s: %d of %d samples", name, res.Samples, res.Requested)
		}
	}

	// The characterized flow passes DRC.
	if err := f.Check(nil); err != nil {
		t.Fatalf("pre-island DRC: %v", err)
	}

	// Workload + baseline power before mutation.
	if err := f.SimulateWorkload(ctx); err != nil {
		t.Fatal(err)
	}
	posA, err := f.Position("A")
	if err != nil {
		t.Fatal(err)
	}
	base, err := f.ChipWidePower(posA)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalMW() <= 0 {
		t.Fatal("no baseline power")
	}

	// Islands, shifters, scenario power.
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	count, degr, err := f.InsertShifters(ctx, part)
	if err != nil {
		t.Fatal(err)
	}
	if count <= 0 {
		t.Fatal("no shifters")
	}
	if degr < 0 || degr > 0.6 {
		t.Errorf("degradation %.2f implausible", degr)
	}
	// The mutated flow still passes DRC, including the level-shifter
	// coverage rule.
	if err := f.Check(part); err != nil {
		t.Fatalf("post-island DRC: %v", err)
	}
	if err := f.SimulateWorkload(ctx); err != nil {
		t.Fatal(err)
	}
	// One island raised must cost less than all three raised, which
	// must cost less than the whole (shifter-bearing) design high.
	posC, err := f.Position("C")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.ScenarioPower(part, 1, posC)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := f.ScenarioPower(part, 3, posA)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalMW() >= p3.TotalMW() {
		t.Errorf("1-island power %.3f >= 3-island power %.3f", p1.TotalMW(), p3.TotalMW())
	}
	wide, err := f.ChipWidePower(posA)
	if err != nil {
		t.Fatal(err)
	}
	if p3.TotalMW() > wide.TotalMW() {
		t.Errorf("3-island power %.3f exceeds chip-wide %.3f", p3.TotalMW(), wide.TotalMW())
	}

	// Sensor plan is available and bounded.
	plan, err := f.SensorPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSensors() == 0 || plan.NumSensors() > 3*f.Cfg.SensorBudget {
		t.Errorf("sensors = %d", plan.NumSensors())
	}
}

func TestPositionLookup(t *testing.T) {
	f := New(TestConfig())
	pos, err := f.Position("B")
	if err != nil {
		t.Fatal(err)
	}
	if pos.Name != "B" || pos.XMM <= 0 {
		t.Error("position lookup broken")
	}
	if _, err := f.Position("Z"); err == nil {
		t.Error("unknown position accepted")
	} else if !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("error %v does not match ErrBadInput", err)
	}
}

// TestInsertShiftersRejectsBadPartition checks the pre-mutation guards:
// a nil or double-inserted partition must fail without touching state.
func TestInsertShiftersRejectsBadPartition(t *testing.T) {
	ctx := context.Background()
	f := New(TestConfig())
	if err := f.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InsertShifters(ctx, nil); !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("nil partition: %v, want ErrBadInput", err)
	}
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InsertShifters(ctx, part); err != nil {
		t.Fatal(err)
	}
	cells := f.NL.NumCells()
	if _, _, err := f.InsertShifters(ctx, part); !errors.Is(err, flowerr.ErrStepOrder) {
		t.Errorf("double insertion: %v, want ErrStepOrder", err)
	}
	if f.NL.NumCells() != cells {
		t.Error("rejected insertion still mutated the netlist")
	}
}
