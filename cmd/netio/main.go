// Command netio exercises the paper's tool-interchange step: it builds
// and places the core, writes the placement as DEF and the nominal
// delays as SDF, then performs the paper's variability-injection round
// trip (Section 4.3: "we developed a parser of the sdf file that
// checks the cell position within the chip, computes effective gate
// length in that location and modifies its delay accordingly; the sdf
// file with altered gate delays can then be re-imported ... for static
// timing analysis"): delays are scaled by the systematic variation at
// a chosen chip position, re-parsed, and re-timed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"vipipe"
	"vipipe/internal/cliutil"
	"vipipe/internal/def"
	"vipipe/internal/sdf"
	"vipipe/internal/sta"
	"vipipe/internal/verilog"
)

var app = cliutil.New("netio")

func fatal(err error) { app.Fatal(err) }

func main() {
	app.ConfigFlags(true)
	app.PosFlag("A", "chip position (A-D) for the variability-injection round trip")
	app.TraceFlag()
	app.ProfileFlag()
	sdfPath := flag.String("sdf", "", "write nominal delays as SDF to this path")
	vPath := flag.String("verilog", "", "write the netlist as structural Verilog to this path")
	defPath := flag.String("def", "", "write the placement as DEF to this path")
	flag.Parse()

	cfg := app.Config()
	cfg.Place.Seed = app.Seed
	ctx, stop := app.Context()
	defer stop()
	ctx, finishTrace := app.StartTrace(ctx)

	f := vipipe.New(cfg)
	for _, step := range []func(context.Context) error{f.Synthesize, f.Place, f.Analyze} {
		if err := step(ctx); err != nil {
			fatal(err)
		}
	}
	if err := finishTrace(); err != nil {
		fatal(err)
	}
	fmt.Printf("core: %d cells, nominal fmax %.1f MHz\n", f.NL.NumCells(), f.FmaxMHz)

	if *vPath != "" {
		w, err := os.Create(*vPath)
		if err != nil {
			fatal(err)
		}
		if err := verilog.Write(w, f.NL); err != nil {
			fatal(err)
		}
		w.Close()
		fmt.Printf("wrote structural Verilog: %s\n", *vPath)
	}

	if *defPath != "" {
		w, err := os.Create(*defPath)
		if err != nil {
			fatal(err)
		}
		if err := def.Write(w, f.PL); err != nil {
			fatal(err)
		}
		w.Close()
		fmt.Printf("wrote placement DEF: %s\n", *defPath)
	}

	// Nominal SDF.
	delays := make([]float64, f.NL.NumCells())
	for i := range delays {
		delays[i] = f.STA.BaseDelay(i)
	}
	if *sdfPath != "" {
		w, err := os.Create(*sdfPath)
		if err != nil {
			fatal(err)
		}
		if err := sdf.Write(w, f.NL, delays); err != nil {
			fatal(err)
		}
		w.Close()
		fmt.Printf("wrote nominal SDF: %s\n", *sdfPath)
	}

	// Variability injection: scale delays by the position's
	// systematic Lgate map, write, re-parse, re-time.
	pos, err := app.Position(cfg)
	if err != nil {
		fatal(err)
	}
	lg := f.SystematicLgate(pos)
	tech := &f.NL.Lib.Tech
	injected := make([]float64, len(delays))
	for i := range delays {
		injected[i] = delays[i] * tech.DelayScale(tech.VddLow, lg[i])
	}
	tmp, err := os.CreateTemp("", "vipipe-*.sdf")
	if err != nil {
		fatal(err)
	}
	defer os.Remove(tmp.Name())
	if err := sdf.Write(tmp, f.NL, injected); err != nil {
		fatal(err)
	}
	if _, err := tmp.Seek(0, 0); err != nil {
		fatal(err)
	}
	parsed, err := sdf.Parse(tmp)
	if err != nil {
		fatal(err)
	}
	tmp.Close()
	scales, err := parsed.Scales(f.NL, f.STA.BaseDelay)
	if err != nil {
		fatal(err)
	}
	rep := f.STA.Run(f.ClockPS, scales)
	fmt.Printf("after SDF round trip at position %s: critical path %.0f ps (%.1f MHz), slack %.0f ps\n",
		pos.Name, rep.CritPS, sta.FmaxMHz(rep.CritPS), rep.WorstSlack)
	fmt.Printf("systematic-only degradation vs nominal: %.2f%%\n", 100*(rep.CritPS/(f.ClockPS/(1+cfg.ClockGuard))-1))
}
