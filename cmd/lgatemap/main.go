// Command lgatemap emits the systematic Lgate variation map of the
// paper's Fig. 2: the second-order polynomial model over a 14mm chip,
// scaled to +/-5.5% deviations, as CSV (for plotting) or as an ASCII
// heat map.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"vipipe/internal/cliutil"
	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
	"vipipe/internal/stats"
	"vipipe/internal/variation"
)

var app = cliutil.New("lgatemap")

func main() {
	app.SeedFlag()
	app.NFlag(28, "grid resolution (cells per chip edge)")
	app.TraceFlag()
	app.ProfileFlag()
	csv := flag.Bool("csv", false, "emit CSV instead of the ASCII map")
	random := flag.Bool("random", false, "overlay the per-gate random Lgate component on the systematic map")
	flag.Parse()

	n, seed := &app.N, &app.Seed
	if *n < 2 {
		app.Fatal(flowerr.BadInputf("grid resolution %d, need at least 2", *n))
	}

	ctx, finishTrace := app.StartTrace(context.Background())
	m := variation.Default()
	grid := mapGrid(ctx, m, *n)
	if err := finishTrace(); err != nil {
		app.Fatal(err)
	}
	if *random {
		// Each grid point gets an independent draw from the random
		// component (3*sigma = RndFrac), as a gate at that spot would.
		rng := stats.DeriveStream(*seed, "lgatemap")
		for j := range grid {
			for i := range grid[j] {
				grid[j][i] += rng.Normal(0, m.RndFrac/3)
			}
		}
	}

	if *csv {
		fmt.Printf("x_mm,y_mm,lgate_dev_frac,lgate_nm\n")
		for j := range grid {
			y := float64(j) / float64(*n-1) * m.ChipMM
			for i := range grid[j] {
				x := float64(i) / float64(*n-1) * m.ChipMM
				fmt.Printf("%.3f,%.3f,%.5f,%.3f\n", x, y, grid[j][i], m.LnomNM*(1+grid[j][i]))
			}
		}
		return
	}

	fmt.Printf("Systematic Lgate deviation over a %.0fmm x %.0fmm chip (Fig. 2)\n", m.ChipMM, m.ChipMM)
	fmt.Printf("nominal %.0fnm, range %+.1f%% (slow, lower-left) to %+.1f%%\n\n",
		m.LnomNM, 100*grid[0][0], 100*grid[*n-1][*n-1])
	// Rows printed top-down so the lower-left corner (point A) lands
	// at the bottom-left, as in the paper's figure.
	shades := []byte(" .:-=+*#%@")
	for j := *n - 1; j >= 0; j-- {
		fmt.Printf("%5.1fmm |", float64(j)/float64(*n-1)*m.ChipMM)
		for i := range grid[j] {
			// Map [-SysFrac, +SysFrac] to shade index.
			t := (grid[j][i]/m.SysFrac + 1) / 2
			k := int(t * float64(len(shades)-1))
			if k < 0 {
				k = 0
			}
			if k >= len(shades) {
				k = len(shades) - 1
			}
			fmt.Printf("%c%c", shades[k], shades[k])
		}
		fmt.Println()
	}
	fmt.Printf("        ")
	for _, p := range m.DiagonalPositions() {
		fmt.Printf(" %s=(%.1f,%.1f)mm", p.Name, p.XMM, p.YMM)
	}
	fmt.Println()
	// The monotone-diagonal invariant only holds for the pure
	// systematic map; the random overlay breaks it by design.
	if !*random {
		if err := checkMonotone(grid); err != nil {
			fmt.Fprintln(os.Stderr, "warning:", err)
		}
	}
}

// mapGrid evaluates the systematic map under a span, so even this
// purely combinational tool shows up in a -trace profile.
func mapGrid(ctx context.Context, m variation.Model, n int) [][]float64 {
	_, span := obs.Start(ctx, "variation.map_grid")
	defer span.End()
	span.SetAttr("n", n)
	return m.MapGrid(n)
}

// checkMonotone verifies the diagonal gradient the scenarios rely on.
func checkMonotone(grid [][]float64) error {
	n := len(grid)
	for k := 1; k < n; k++ {
		if grid[k][k] >= grid[k-1][k-1] {
			return fmt.Errorf("diagonal not monotone at %d", k)
		}
	}
	return nil
}
