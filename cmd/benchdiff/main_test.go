package main

import (
	"os"
	"path/filepath"
	"testing"
)

// stream builds a minimal go test -json file with the given benchmark
// output lines.
func stream(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	var b []byte
	b = append(b, `{"Action":"start","Package":"vipipe"}`+"\n"...)
	for _, l := range lines {
		ev := `{"Action":"output","Package":"vipipe","Output":"` + l + `\n"}` + "\n"
		b = append(b, ev...)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	path := stream(t,
		`goos: linux`,
		`BenchmarkServiceScenarioSweep/cold         \t       3\t 389612665 ns/op\t24926704 B/op`,
		`BenchmarkServiceScenarioSweep/warm-8       \t    1000\t   1201000 ns/op`,
		`BenchmarkWhatIf/full_sta                   \t      10\t 100000000 ns/op`,
	)
	res, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if res["BenchmarkServiceScenarioSweep/cold"] != 389612665 {
		t.Errorf("cold = %v", res["BenchmarkServiceScenarioSweep/cold"])
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if res["BenchmarkServiceScenarioSweep/warm"] != 1201000 {
		t.Errorf("warm = %v (suffix not stripped? %v)", res["BenchmarkServiceScenarioSweep/warm"], res)
	}
	if len(res) != 3 {
		t.Errorf("parsed %d results; want 3: %v", len(res), res)
	}
}

// TestParseBenchSplitEvents: go test -json flushes the benchmark name
// and its timing as separate output events; the parser must join them.
func TestParseBenchSplitEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "split.json")
	raw := `{"Action":"output","Output":"BenchmarkWhatIf/warm_composed               \t"}` + "\n" +
		`{"Action":"output","Output":"  500000\t      2400 ns/op\n"}` + "\n"
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if res["BenchmarkWhatIf/warm_composed"] != 2400 {
		t.Errorf("split-event line parsed as %v", res)
	}
}

func TestParseBenchCommittedBaseline(t *testing.T) {
	res, err := parseBench(filepath.Join("..", "..", "BENCH_service.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gates {
		if _, err := speedup(res, g); err != nil {
			t.Errorf("committed baseline cannot answer gate %s: %v", g.Name, err)
		}
	}
}

func benchSet(cold, warm, dirty, sta, composed float64) map[string]float64 {
	return map[string]float64{
		"BenchmarkServiceScenarioSweep/cold":     cold,
		"BenchmarkServiceScenarioSweep/warm":     warm,
		"BenchmarkFieldSweep/field64/cold":       cold,
		"BenchmarkFieldSweep/field64/warm_dirty": dirty,
		"BenchmarkWhatIf/full_sta":               sta,
		"BenchmarkWhatIf/warm_composed":          composed,
	}
}

func TestCompareGates(t *testing.T) {
	old := benchSet(1000, 10, 100, 1000, 1) // speedups: 100x, 10x, 1000x
	// Within tolerance: same ratios, absolute times 3x slower.
	ok := benchSet(3000, 30, 300, 3000, 3)
	if failed := compare(os.Stdout, old, ok, 0.25); len(failed) != 0 {
		t.Errorf("scaled-but-equal ratios failed: %v", failed)
	}
	// The warm scenario path regressed 4x: 100x -> 25x speedup.
	bad := benchSet(1000, 40, 100, 1000, 1)
	failed := compare(os.Stdout, old, bad, 0.25)
	if len(failed) != 1 || failed[0] != "scenario_sweep_warm" {
		t.Errorf("regression verdicts = %v; want [scenario_sweep_warm]", failed)
	}
	// A missing fresh benchmark is a failure, not a silent skip.
	missing := benchSet(1000, 10, 100, 1000, 1)
	delete(missing, "BenchmarkWhatIf/warm_composed")
	failed = compare(os.Stdout, old, missing, 0.25)
	if len(failed) != 1 || failed[0] != "whatif_composed" {
		t.Errorf("missing-bench verdicts = %v; want [whatif_composed]", failed)
	}
}
