// Command benchdiff guards the repo's committed benchmark baseline:
// it parses two `go test -json` benchmark streams (the committed
// BENCH_service.json and a fresh run) and compares the gated speedup
// ratios — warm-path wins the paper's serving architecture depends
// on. A gated ratio regressing by more than -max-regress fails the
// run with a per-ratio report; absolute ns/op are never compared, so
// a slower CI machine does not trip the gate.
//
//	benchdiff -old BENCH_service.json -new BENCH_fresh.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// ratioGate is one guarded speedup: base ns/op over fast ns/op.
type ratioGate struct {
	Name string
	Base string // the slow benchmark (cold / exact path)
	Fast string // the fast benchmark the architecture buys
}

// gates are the speedups the repo's perf claims rest on.
var gates = []ratioGate{
	{"scenario_sweep_warm", "BenchmarkServiceScenarioSweep/cold", "BenchmarkServiceScenarioSweep/warm"},
	{"field64_warm_dirty", "BenchmarkFieldSweep/field64/cold", "BenchmarkFieldSweep/field64/warm_dirty"},
	{"whatif_composed", "BenchmarkWhatIf/full_sta", "BenchmarkWhatIf/warm_composed"},
}

// benchLine matches a benchmark result inside a test-json Output
// field, tolerating the -N GOMAXPROCS suffix fresh runs carry.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:[eE][+-]?\d+)?) ns/op`)

type event struct {
	Action string
	Output string
}

// parseBench extracts benchmark-name -> ns/op from a go test -json
// stream (later lines win, matching go test's own behavior on
// reruns). The stream splits one terminal line across several output
// events — the benchmark name flushes before the timing — so events
// are reassembled into lines before matching.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	var carry string
	record := func(line string) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			return
		}
		if ns, err := strconv.ParseFloat(m[2], 64); err == nil {
			out[m[1]] = ns
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action != "output" {
			continue
		}
		carry += ev.Output
		for {
			nl := strings.IndexByte(carry, '\n')
			if nl < 0 {
				break
			}
			record(carry[:nl])
			carry = carry[nl+1:]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	record(carry)
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark results in %s", path)
	}
	return out, nil
}

// speedup returns base/fast for a gate, or an error naming what is
// missing.
func speedup(res map[string]float64, g ratioGate) (float64, error) {
	base, ok := res[g.Base]
	if !ok {
		return 0, fmt.Errorf("benchdiff: %s: missing %s", g.Name, g.Base)
	}
	fast, ok := res[g.Fast]
	if !ok {
		return 0, fmt.Errorf("benchdiff: %s: missing %s", g.Name, g.Fast)
	}
	if fast <= 0 {
		return 0, fmt.Errorf("benchdiff: %s: non-positive ns/op for %s", g.Name, g.Fast)
	}
	return base / fast, nil
}

// compare evaluates every gate, writing one line per gate, and
// returns the names of gates whose fresh speedup ratio fell more than
// maxRegress below the committed one.
func compare(w *os.File, old, fresh map[string]float64, maxRegress float64) []string {
	var failed []string
	for _, g := range gates {
		oldR, err := speedup(old, g)
		if err != nil {
			fmt.Fprintf(w, "%-22s SKIP (baseline: %v)\n", g.Name, err)
			continue
		}
		newR, err := speedup(fresh, g)
		if err != nil {
			fmt.Fprintf(w, "%-22s FAIL (%v)\n", g.Name, err)
			failed = append(failed, g.Name)
			continue
		}
		floor := oldR * (1 - maxRegress)
		verdict := "ok"
		if newR < floor {
			verdict = "REGRESSED"
			failed = append(failed, g.Name)
		}
		fmt.Fprintf(w, "%-22s baseline %8.1fx  fresh %8.1fx  floor %8.1fx  %s\n",
			g.Name, oldR, newR, floor, verdict)
	}
	return failed
}

func main() {
	oldPath := flag.String("old", "BENCH_service.json", "committed baseline (go test -json stream)")
	newPath := flag.String("new", "BENCH_fresh.json", "fresh benchmark run (go test -json stream)")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated fractional drop of a gated speedup ratio")
	flag.Parse()

	old, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fresh, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := compare(os.Stdout, old, fresh, *maxRegress)
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d gated speedup(s) regressed >%.0f%%: %v\n",
			len(failed), *maxRegress*100, failed)
		os.Exit(1)
	}
	fmt.Println("benchdiff: all gated speedups within tolerance")
}
