// Command vipilint runs the repo's static-analysis suite
// (internal/lint) over a Go source tree and reports findings with
// file:line positions.
//
//	vipilint [flags] [root]
//
// root defaults to the current directory. By default the full typed
// analysis runs: the tree is loaded under go/types and the dataflow
// rules (artifactalias, sharedcapture) join the upgraded core rules.
// -fast skips type checking and runs the AST layer only — the
// pre-commit mode, an order of magnitude cheaper; do not combine it
// with -strict, because suppressions of typed-only findings look
// stale to the AST layer.
//
// Exit codes follow the flowerr convention: 0 when the tree is clean,
// the ErrDRC code when findings remain (lint findings are design-rule
// violations on the source), and the ErrBadInput code when the driver
// itself fails (unreadable root, unparsable source).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vipipe/internal/cliutil"
	"vipipe/internal/flowerr"
	"vipipe/internal/lint"
)

func main() {
	app := cliutil.New("vipilint")
	app.JSONFlag()
	strict := flag.Bool("strict", false, "also report stale //lint:ignore directives that suppress nothing")
	fast := flag.Bool("fast", false, "AST-only mode: skip go/types loading and the dataflow rules (pre-commit speed)")
	rules := flag.Bool("rules", false, "list the rules and exit")
	flag.Parse()

	if *rules {
		for _, r := range lint.DefaultRules() {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	diags, err := lint.Run(root, lint.Options{Strict: *strict, Typed: !*fast})
	if err != nil {
		app.Fatal(err)
	}
	if app.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			app.Fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vipilint: %d finding(s)\n", len(diags))
		os.Exit(flowerr.ExitDRC)
	}
}
