package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vipipe/internal/flowerr"
	"vipipe/internal/lint"
)

// buildLint compiles the real binary once per test binary; exit codes
// can only be asserted against an exec'd process (`go run` collapses
// them to 1).
func buildLint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs the vipilint binary")
	}
	bin := filepath.Join(t.TempDir(), "vipilint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running vipilint: %v", err)
	}
	return ee.ExitCode()
}

const dirtyFile = `package mc

import "time"

func Stamp() time.Time {
	return time.Now()
}
`

// TestExitCodes drives the binary end to end through its three exit
// classes: clean tree, findings, and a driver failure.
func TestExitCodes(t *testing.T) {
	bin := buildLint(t)

	dirty := writeTree(t, map[string]string{"internal/mc/bad.go": dirtyFile})
	out, err := exec.Command(bin, dirty).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitDRC {
		t.Errorf("dirty tree: exit %d, want %d (ExitDRC)\n%s", code, flowerr.ExitDRC, out)
	}
	if !strings.Contains(string(out), "determinism") || !strings.Contains(string(out), "bad.go:6:") {
		t.Errorf("dirty tree output missing the finding:\n%s", out)
	}

	clean := writeTree(t, map[string]string{"internal/mc/ok.go": "package mc\n"})
	out, err = exec.Command(bin, clean).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitOK {
		t.Errorf("clean tree: exit %d, want 0\n%s", code, out)
	}

	out, err = exec.Command(bin, filepath.Join(clean, "no-such-dir")).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitBadInput {
		t.Errorf("missing root: exit %d, want %d (ExitBadInput)\n%s", code, flowerr.ExitBadInput, out)
	}
}

// poisonTree is a minimal module that type-checks cleanly and
// contains one cache-poisoning bug only the typed layer can see: a
// compute function mutating its deps slice in place.
var poisonTree = map[string]string{
	"go.mod": "module vipipe\n\ngo 1.22\n",
	"internal/pipeline/pipeline.go": `package pipeline

import "context"

type Node struct {
	ID      string
	Deps    []string
	Compute func(ctx context.Context, deps map[string]any) (any, error)
}

type Graph struct{ nodes []Node }

func (g *Graph) MustAdd(n Node) { g.nodes = append(g.nodes, n) }
func (g *Graph) Request(_ context.Context, ids []string) (map[string]any, error) {
	return nil, nil
}
`,
	"flow.go": `package main

import (
	"context"
	"sort"

	"vipipe/internal/pipeline"
)

func Register(g *pipeline.Graph) {
	g.MustAdd(pipeline.Node{
		ID:   "sorted",
		Deps: []string{"samples"},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			xs := deps["samples"].([]float64)
			sort.Float64s(xs)
			return xs, nil
		},
	})
}
`,
}

// TestTypedRules drives the artifact-ownership analysis through the
// built binary: the default (typed) mode catches the in-place sort of
// a dep and exits ExitDRC; -fast cannot see it and exits clean.
func TestTypedRules(t *testing.T) {
	bin := buildLint(t)

	root := writeTree(t, poisonTree)
	out, err := exec.Command(bin, root).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitDRC {
		t.Errorf("typed run: exit %d, want %d (ExitDRC)\n%s", code, flowerr.ExitDRC, out)
	}
	if !strings.Contains(string(out), "artifactalias") || !strings.Contains(string(out), "sort.Float64s") {
		t.Errorf("typed run output missing the artifactalias finding:\n%s", out)
	}

	out, err = exec.Command(bin, "-fast", root).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitOK {
		t.Errorf("-fast run: exit %d, want 0 (typed-only finding must stay silent)\n%s", code, out)
	}
}

// TestTypedJSON checks the machine-readable shape of a typed finding.
func TestTypedJSON(t *testing.T) {
	bin := buildLint(t)

	root := writeTree(t, poisonTree)
	out, err := exec.Command(bin, "-json", root).Output()
	if code := exitCode(t, err); code != flowerr.ExitDRC {
		t.Fatalf("typed -json run: exit %d, want %d", code, flowerr.ExitDRC)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Rule != "artifactalias" || diags[0].File != "flow.go" || diags[0].Line == 0 {
		t.Errorf("unexpected diagnostics: %+v", diags)
	}
}

// TestBrokenPackageFallback checks the degraded path: a package that
// does not type-check surfaces as a `lint` diagnostic and its files
// still get the AST rules.
func TestBrokenPackageFallback(t *testing.T) {
	bin := buildLint(t)

	root := writeTree(t, map[string]string{
		"go.mod": "module vipipe\n\ngo 1.22\n",
		"internal/mc/bad.go": `package mc

import "time"

func Stamp() time.Time { return time.Now() }

func Broken() NoSuchType { return nil }
`,
	})
	out, err := exec.Command(bin, root).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitDRC {
		t.Errorf("broken package: exit %d, want %d\n%s", code, flowerr.ExitDRC, out)
	}
	s := string(out)
	if !strings.Contains(s, "does not type-check") {
		t.Errorf("missing load-error diagnostic:\n%s", s)
	}
	if !strings.Contains(s, "determinism") {
		t.Errorf("AST fallback did not run over the broken package:\n%s", s)
	}
}

// TestJSONOutput checks that -json emits a machine-readable array in
// both the findings and the empty case.
func TestJSONOutput(t *testing.T) {
	bin := buildLint(t)

	dirty := writeTree(t, map[string]string{"internal/mc/bad.go": dirtyFile})
	out, err := exec.Command(bin, "-json", dirty).Output()
	if code := exitCode(t, err); code != flowerr.ExitDRC {
		t.Fatalf("dirty tree: exit %d, want %d", code, flowerr.ExitDRC)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Rule != "determinism" || diags[0].File != "internal/mc/bad.go" {
		t.Errorf("unexpected diagnostics: %+v", diags)
	}

	clean := writeTree(t, map[string]string{"internal/mc/ok.go": "package mc\n"})
	out, err = exec.Command(bin, "-json", clean).Output()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("clean tree: exit %d, want 0", code)
	}
	if err := json.Unmarshal(out, &diags); err != nil || len(diags) != 0 {
		t.Errorf("clean -json output should be an empty array: %v\n%s", err, out)
	}
}
