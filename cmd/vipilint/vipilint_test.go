package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vipipe/internal/flowerr"
	"vipipe/internal/lint"
)

// buildLint compiles the real binary once per test binary; exit codes
// can only be asserted against an exec'd process (`go run` collapses
// them to 1).
func buildLint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs the vipilint binary")
	}
	bin := filepath.Join(t.TempDir(), "vipilint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running vipilint: %v", err)
	}
	return ee.ExitCode()
}

const dirtyFile = `package mc

import "time"

func Stamp() time.Time {
	return time.Now()
}
`

// TestExitCodes drives the binary end to end through its three exit
// classes: clean tree, findings, and a driver failure.
func TestExitCodes(t *testing.T) {
	bin := buildLint(t)

	dirty := writeTree(t, map[string]string{"internal/mc/bad.go": dirtyFile})
	out, err := exec.Command(bin, dirty).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitDRC {
		t.Errorf("dirty tree: exit %d, want %d (ExitDRC)\n%s", code, flowerr.ExitDRC, out)
	}
	if !strings.Contains(string(out), "determinism") || !strings.Contains(string(out), "bad.go:6:") {
		t.Errorf("dirty tree output missing the finding:\n%s", out)
	}

	clean := writeTree(t, map[string]string{"internal/mc/ok.go": "package mc\n"})
	out, err = exec.Command(bin, clean).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitOK {
		t.Errorf("clean tree: exit %d, want 0\n%s", code, out)
	}

	out, err = exec.Command(bin, filepath.Join(clean, "no-such-dir")).CombinedOutput()
	if code := exitCode(t, err); code != flowerr.ExitBadInput {
		t.Errorf("missing root: exit %d, want %d (ExitBadInput)\n%s", code, flowerr.ExitBadInput, out)
	}
}

// TestJSONOutput checks that -json emits a machine-readable array in
// both the findings and the empty case.
func TestJSONOutput(t *testing.T) {
	bin := buildLint(t)

	dirty := writeTree(t, map[string]string{"internal/mc/bad.go": dirtyFile})
	out, err := exec.Command(bin, "-json", dirty).Output()
	if code := exitCode(t, err); code != flowerr.ExitDRC {
		t.Fatalf("dirty tree: exit %d, want %d", code, flowerr.ExitDRC)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Rule != "determinism" || diags[0].File != "internal/mc/bad.go" {
		t.Errorf("unexpected diagnostics: %+v", diags)
	}

	clean := writeTree(t, map[string]string{"internal/mc/ok.go": "package mc\n"})
	out, err = exec.Command(bin, "-json", clean).Output()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("clean tree: exit %d, want 0", code)
	}
	if err := json.Unmarshal(out, &diags); err != nil || len(diags) != 0 {
		t.Errorf("clean -json output should be an empty array: %v\n%s", err, out)
	}
}
