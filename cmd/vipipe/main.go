// Command vipipe runs the paper's complete experimental section: the
// design characterization of Table 1 and Section 4.2, the level-
// shifter overhead of Table 2, and the power comparisons of Figures 5
// and 6 (voltage-island designs vs chip-wide supply adaptation).
package main

import (
	"context"
	"flag"
	"fmt"
	"sort"

	"vipipe"
	"vipipe/internal/cliutil"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/power"
	"vipipe/internal/sta"
	"vipipe/internal/vi"
)

var app = cliutil.New("vipipe")

func fatal(err error) { app.Fatal(err) }

var runDRC bool

func main() {
	app.ConfigFlags(false)
	app.TraceFlag()
	app.ProfileFlag()
	app.StoreFlag()
	experiment := flag.String("experiment", "all", "one of: all, timing, table1, table2, fig5, fig6")
	flag.BoolVar(&runDRC, "drc", false, "run design-rule checks between flow steps and fail on violations")
	flag.Parse()

	ctx, stop := app.Context()
	defer stop()
	ctx, finishTrace := app.StartTrace(ctx)

	cfg := app.Config()

	switch *experiment {
	case "timing", "table1":
		f := baseFlow(ctx, cfg)
		if *experiment == "timing" {
			timingReport(f)
		} else {
			table1(f)
		}
	case "table2", "fig5", "fig6", "all":
		runAll(ctx, cfg, *experiment)
	default:
		fatal(flowerr.BadInputf("unknown experiment %q", *experiment))
	}
	if err := finishTrace(); err != nil {
		fatal(err)
	}
}

func baseFlow(ctx context.Context, cfg vipipe.Config) *vipipe.Flow {
	f := app.NewFlow(cfg)
	if err := f.Run(ctx); err != nil {
		fatal(err)
	}
	if err := f.SimulateWorkload(ctx); err != nil {
		fatal(err)
	}
	check(f, nil)
	return f
}

// check runs the DRC battery when -drc is set.
func check(f *vipipe.Flow, part *vi.Partition) {
	if !runDRC {
		return
	}
	if err := f.Check(part); err != nil {
		fatal(err)
	}
}

// timingReport prints the Section 4.2 scalars: fmax, area, and the
// critical-path composition through forwarding and ALU.
func timingReport(f *vipipe.Flow) {
	fmt.Printf("== Section 4.2 — design characterization\n")
	ds := f.NL.Stats()
	fmt.Printf("cells=%d area=%.0fum2 fmax=%.1fMHz (paper: 256MHz, 314638um2)\n",
		ds.Cells, ds.AreaUM2, f.FmaxMHz)
	rep := f.STA.Run(f.ClockPS, f.Derate)
	ex := rep.PerStage[netlist.StageExecute]
	var worst sta.Endpoint
	for _, ep := range rep.Endpoints {
		if ep.Inst == ex.Endpoint {
			worst = ep
		}
	}
	path := f.STA.CriticalPath(rep, worst, f.Derate)
	br := sta.PathBreakdown(path)
	total := 0.0
	keys := make([]string, 0, len(br))
	for k, v := range br {
		total += v
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return br[keys[i]] > br[keys[j]] })
	fmt.Printf("critical path (execute stage), %d cells, %.0fps:\n", len(path), worst.Arrival)
	for _, k := range keys {
		fmt.Printf("  %-18s %6.0fps %5.1f%%\n", k, br[k], 100*br[k]/total)
	}
	fmt.Printf("(paper: forwarding unit 22%%, ALU 60%%)\n\n")
}

// table1 prints the area and power breakdown per unit.
func table1(f *vipipe.Flow) {
	fmt.Printf("== Table 1 — area and power breakdown\n")
	posD, err := f.Position("D")
	if err != nil {
		fatal(err)
	}
	rep, err := f.Power(nil, posD)
	if err != nil {
		fatal(err)
	}
	ds := f.NL.Stats()
	areaBy := make(map[string]float64)
	for _, u := range ds.ByUnit {
		areaBy[u.Unit] = u.AreaUM2
	}
	fmt.Printf("%-14s %8s %8s\n", "unit", "area%", "power%")
	for _, u := range rep.ByUnit {
		fmt.Printf("%-14s %7.2f%% %7.2f%%\n", u.Unit,
			100*areaBy[u.Unit]/ds.AreaUM2, 100*u.TotalMW()/rep.TotalMW())
	}
	fmt.Printf("total: %.0fum2, %.3fmW, leakage %.2f%% (paper: 30.8mW, 1.1%%)\n\n",
		ds.AreaUM2, rep.TotalMW(), 100*rep.LeakMW/rep.TotalMW())
}

// runAll executes both slicing strategies and prints Table 2 and the
// Figure 5/6 comparisons (and, for "all", the timing and Table 1
// blocks from the shared pre-insertion flow).
func runAll(ctx context.Context, cfg vipipe.Config, experiment string) {
	type stratResult struct {
		strategy  vi.Strategy
		shifters  int
		areaFrac  float64
		degr      float64
		flow      *vipipe.Flow
		partition *vi.Partition
		baseline  map[string]*power.Report
	}
	var results []stratResult
	for _, strat := range []vi.Strategy{vi.Horizontal, vi.Vertical} {
		f := baseFlow(ctx, cfg)
		if experiment == "all" && strat == vi.Horizontal {
			timingReport(f)
			table1(f)
		}
		baseline := make(map[string]*power.Report)
		for _, pos := range cfg.Model.DiagonalPositions() {
			rep, err := f.ChipWidePower(pos)
			if err != nil {
				fatal(err)
			}
			baseline[pos.Name] = rep
		}
		part, err := f.GenerateIslands(ctx, strat)
		if err != nil {
			fatal(err)
		}
		n, degr, err := f.InsertShifters(ctx, part)
		if err != nil {
			fatal(err)
		}
		if err := f.SimulateWorkload(ctx); err != nil {
			fatal(err)
		}
		check(f, part)
		results = append(results, stratResult{
			strategy: strat, shifters: n, areaFrac: part.ShifterAreaFrac(),
			degr: degr, flow: f, partition: part, baseline: baseline,
		})
	}

	scenarioOf := map[string]int{"A": 3, "B": 2, "C": 1}
	positions := []string{"A", "B", "C"}

	if experiment == "table2" || experiment == "all" {
		fmt.Printf("== Table 2 — level-shifter overhead\n")
		fmt.Printf("%-28s %12s %12s\n", "", "horizontal", "vertical")
		fmt.Printf("%-28s %12d %12d\n", "number of LS", results[0].shifters, results[1].shifters)
		fmt.Printf("%-28s %11.2f%% %11.2f%%\n", "LS area (of logic)", 100*results[0].areaFrac, 100*results[1].areaFrac)
		for _, pn := range positions {
			fmt.Printf("%-28s", fmt.Sprintf("LS power (point %s)", pn))
			for _, r := range results {
				pos, err := r.flow.Position(pn)
				if err != nil {
					fatal(err)
				}
				rep, err := r.flow.ScenarioPower(r.partition, scenarioOf[pn], pos)
				if err != nil {
					fatal(err)
				}
				fmt.Printf(" %11.2f%%", 100*rep.ShifterFrac())
			}
			fmt.Println()
		}
		fmt.Printf("%-28s %11.1f%% %11.1f%%\n", "timing degradation", 100*results[0].degr, 100*results[1].degr)
		fmt.Printf("(paper: 8187/6353 shifters, 15%%/8%% degradation, LS power <= 5%%)\n\n")
	}

	if experiment == "fig5" || experiment == "fig6" || experiment == "all" {
		fmt.Printf("== Fig. 5 / Fig. 6 — normalized power vs chip-wide high Vdd\n")
		fmt.Printf("%-24s %12s %12s\n", "configuration", "total", "leakage")
		fmt.Printf("%-24s %12.3f %12.3f\n", "chip-wide high VDD", 1.0, 1.0)
		for _, pn := range positions {
			k := scenarioOf[pn]
			for _, r := range results {
				pos, err := r.flow.Position(pn)
				if err != nil {
					fatal(err)
				}
				rep, err := r.flow.ScenarioPower(r.partition, k, pos)
				if err != nil {
					fatal(err)
				}
				base := r.baseline[pn]
				fmt.Printf("%-24s %12.3f %12.3f\n",
					fmt.Sprintf("high VDD %d VI %s (pt %s)", k, abbrev(r.strategy), pn),
					rep.TotalMW()/base.TotalMW(), rep.LeakMW/base.LeakMW)
			}
		}
		fmt.Printf("(paper Fig. 5: vertical saves 8%% at A up to 27%% at C; Fig. 6: horizontal leakage exceeds chip-wide)\n")
	}
}

func abbrev(s vi.Strategy) string {
	if s == vi.Vertical {
		return "VER"
	}
	return "HOR"
}
