// Command viyield runs an exposure-field yield sweep: Monte Carlo SSTA
// over a dense NXxNY grid of chip positions, sharded into mergeable
// per-position statistics and folded into a yield surface (parametric
// yield versus clock period at every position). With -store the shard
// artifacts persist, so a re-sweep after editing one overlay recomputes
// only the shards of the position it touches.
//
// Usage:
//
//	viyield -grid 16x16 -samples 2000 -shards 8 -store .cache
//	viyield -grid 8x8 -overlay "r3c4:5,5,3,0.04" -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vipipe"
	"vipipe/internal/cliutil"
	"vipipe/internal/flowerr"
	"vipipe/internal/service/wire"
	"vipipe/internal/yield"
)

var app = cliutil.New("viyield")

func fatal(err error) { app.Fatal(err) }

// overlays collects repeated -overlay flags, each "pos:x,y,r,delta":
// a disc (chip-local mm) at a grid position whose cells get an Lgate
// delta of the given fraction of nominal.
var overlays []yield.PosOverlay

func parseOverlay(s string) error {
	name, rest, ok := strings.Cut(s, ":")
	parts := strings.Split(rest, ",")
	if !ok || name == "" || len(parts) != 4 {
		return flowerr.BadInputf("overlay %q not of the form pos:x,y,r,delta", s)
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return flowerr.BadInputf("overlay %q: bad number %q", s, p)
		}
		vals[i] = v
	}
	overlays = append(overlays, yield.PosOverlay{
		Pos: name, XMM: vals[0], YMM: vals[1], RMM: vals[2], DeltaFrac: vals[3],
	})
	return nil
}

func main() {
	app.ConfigFlags(false)
	app.SamplesFlag()
	app.JSONFlag()
	app.TraceFlag()
	app.ProfileFlag()
	app.StoreFlag()
	app.GridFlag("8x8")
	app.ShardsFlag(4)
	app.PointsFlag(33)
	flag.Func("overlay", `local Lgate disturbance "pos:x,y,r,delta" (repeatable; mm, fraction of nominal)`, parseOverlay)
	flag.Parse()

	ctx, stop := app.Context()
	defer stop()
	ctx, finishTrace := app.StartTrace(ctx)

	cfg := app.Config()
	g, err := yield.ParseGrid(app.Grid)
	if err != nil {
		fatal(err)
	}
	plan := yield.Plan{
		Grid:     g,
		Overlays: overlays,
		Samples:  cfg.MCSamples,
		Shards:   app.Shards,
		Seed:     cfg.Seed,
		Axis:     yield.CurveAxis{Points: app.Points},
	}

	surf, err := vipipe.RunYield(ctx, cfg, plan, app.NewStore())
	if err != nil {
		fatal(err)
	}
	if err := finishTrace(); err != nil {
		fatal(err)
	}

	if app.JSON {
		if err := wire.Encode(os.Stdout, wire.FromSurface(surf)); err != nil {
			fatal(err)
		}
		return
	}
	printSurface(surf, plan)
}

// printSurface renders the text report: the sweep shape, a yield map
// at the flow clock (row NY-1 on top so the page reads like the
// exposure field, y up), and the field's best and worst positions.
func printSurface(s *yield.Surface, plan yield.Plan) {
	fmt.Printf("field %dx%d, %d samples x %d shards per position, clock %.0fps\n",
		s.NX, s.NY, plan.Samples, plan.Shards, s.ClockPS)

	pi := s.NearestPeriod(s.ClockPS)
	fmt.Printf("\nyield at %.0fps (%% of dies meeting the clock; * = overlay):\n", s.PeriodsPS[pi])
	for j := s.NY - 1; j >= 0; j-- {
		fmt.Printf("  r%-2d", j)
		for i := 0; i < s.NX; i++ {
			p := s.Positions[j*s.NX+i]
			y := p.Yields[pi]
			if p.HasOverlay {
				y = p.OvYields[pi]
			}
			mark := ' '
			if p.HasOverlay {
				mark = '*'
			}
			fmt.Printf(" %3.0f%c", 100*y, mark)
		}
		fmt.Println()
	}

	best, worst := 0, 0
	for k := range s.Positions {
		if s.Positions[k].Yields[pi] > s.Positions[best].Yields[pi] {
			best = k
		}
		if s.Positions[k].Yields[pi] < s.Positions[worst].Yields[pi] {
			worst = k
		}
	}
	b, w := s.Positions[best], s.Positions[worst]
	fmt.Printf("\nbest  %s (%.1f, %.1f)mm: yield %.3f, crit mu=%.0fps sigma=%.0fps\n",
		b.Name, b.XMM, b.YMM, b.Yields[pi], b.MeanPS, b.StdPS)
	fmt.Printf("worst %s (%.1f, %.1f)mm: yield %.3f, crit mu=%.0fps sigma=%.0fps\n",
		w.Name, w.XMM, w.YMM, w.Yields[pi], w.MeanPS, w.StdPS)
	for _, ov := range plan.Overlays {
		p, ok := s.At(ov.Pos)
		if !ok || !p.HasOverlay {
			continue
		}
		fmt.Printf("overlay %s (+%.1f%% Lgate, r=%.1fmm): yield %.3f -> %.3f\n",
			ov.Pos, 100*ov.DeltaFrac, ov.RMM, p.Yields[pi], p.OvYields[pi])
	}
}
