// Command vitop is a live terminal dashboard over a running vipiped:
// it polls /metrics/history for windowed rates (submissions, cache
// hit rate, shard throughput), /jobs for the job table, and tails
// /events for the most recent lifecycle and shard completions — the
// operator's view of where a sweep currently is without scraping JSON
// by hand.
//
//	vitop -addr 127.0.0.1:8639 -interval 2s -window 5m
//
// -frames N renders N frames and exits (0 = run until interrupted),
// which scripts use for one-shot snapshots.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"vipipe/internal/cliutil"
	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
	"vipipe/internal/service"
)

var app = cliutil.New("vitop")

// frame is everything one render needs, assembled by the poll loop so
// render stays a pure function of its input (and testable as such).
type frame struct {
	TS      time.Time
	Addr    string
	History service.HistoryView
	Jobs    []service.JobSnapshot
	Events  []service.Event // newest last, already tail-trimmed
	Err     error           // poll failure, rendered instead of stale data
}

// maxEventTail bounds the recent-event list a frame carries.
const maxEventTail = 8

func main() {
	addr := flag.String("addr", "127.0.0.1:8639", "vipiped address")
	interval := flag.Duration("interval", 2*time.Second, "refresh cadence")
	window := flag.Duration("window", 5*time.Minute, "rate window passed to /metrics/history")
	frames := flag.Int("frames", 0, "render this many frames then exit (0 = until interrupted)")
	clear := flag.Bool("clear", true, "clear the terminal between frames")
	flag.Parse()

	ctx, stop := app.Context()
	defer stop()
	base := "http://" + *addr

	// The event tail arrives over SSE on its own goroutine; the poll
	// loop drains the channel each frame. A dropped/broken stream
	// reconnects on the next cadence rather than killing the dashboard.
	evCh := make(chan service.Event, 256)
	go func() {
		for ctx.Err() == nil {
			streamEvents(ctx, base, evCh)
			select {
			case <-ctx.Done():
			case <-time.After(time.Second):
			}
		}
	}()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	var tail []service.Event
	for n := 0; *frames == 0 || n < *frames; n++ {
		f := poll(ctx, base, *window)
		tail = appendTail(tail, drain(evCh))
		f.Events = tail
		if *clear {
			fmt.Print("\033[H\033[2J")
		}
		render(os.Stdout, f)
		if *frames != 0 && n == *frames-1 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// streamEvents tails one /events connection, forwarding decoded
// events until the stream or context ends. Events nobody drains in
// time are discarded — the dashboard shows a tail, not a log.
func streamEvents(ctx context.Context, base string, out chan<- service.Event) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if json.Unmarshal([]byte(line[len("data: "):]), &ev) != nil {
			return
		}
		select {
		case out <- ev:
		default:
		}
	}
}

// drain empties the event channel without blocking.
func drain(ch <-chan service.Event) []service.Event {
	var out []service.Event
	for {
		select {
		case ev := <-ch:
			out = append(out, ev)
		default:
			return out
		}
	}
}

// appendTail folds fresh events into the rolling tail, newest last.
func appendTail(tail, fresh []service.Event) []service.Event {
	tail = append(tail, fresh...)
	if len(tail) > maxEventTail {
		tail = tail[len(tail)-maxEventTail:]
	}
	return tail
}

// poll assembles one frame from the daemon's JSON endpoints.
func poll(ctx context.Context, base string, window time.Duration) frame {
	f := frame{TS: obs.Now(), Addr: base}
	if err := getJSON(ctx, base+"/metrics/history?window="+window.String(), &f.History); err != nil {
		f.Err = err
		return f
	}
	if err := getJSON(ctx, base+"/jobs", &f.Jobs); err != nil {
		f.Err = err
		return f
	}
	return f
}

func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return flowerr.BadInputf("vitop: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render writes one dashboard frame. Pure: everything it shows comes
// from f.
func render(w io.Writer, f frame) {
	fmt.Fprintf(w, "vitop %s  %s\n", f.Addr, f.TS.Format("15:04:05"))
	if f.Err != nil {
		fmt.Fprintf(w, "  unreachable: %v\n", f.Err)
		return
	}
	if r := f.History.Rates; r != nil {
		fmt.Fprintf(w, "  window %s  submitted %.2f/s  completed %.2f/s  failed %.2f/s  hit-rate %.0f%%\n",
			fmtSeconds(r.SpanS), r.SubmittedPerS, r.CompletedPerS, r.FailedPerS, 100*r.WindowHitRate)
		fmt.Fprintf(w, "  queue %d  busy %d", r.QueueDepth, r.WorkersBusy)
		if r.Degraded {
			fmt.Fprint(w, "  STORE DEGRADED")
		}
		fmt.Fprintln(w)
		if len(r.CounterPerS) > 0 {
			names := make([]string, 0, len(r.CounterPerS))
			for name := range r.CounterPerS {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprint(w, " ")
			for _, name := range names {
				fmt.Fprintf(w, " %s %.1f/s", name, r.CounterPerS[name])
			}
			fmt.Fprintln(w)
		}
	} else {
		fmt.Fprintf(w, "  no rate window yet (%d samples)\n", len(f.History.Points))
	}

	fmt.Fprintf(w, "\n  %-12s %-12s %-10s %-10s %s\n", "JOB", "KIND", "STATE", "PROGRESS", "ERROR")
	jobs := f.Jobs
	if len(jobs) > 10 {
		jobs = jobs[len(jobs)-10:]
	}
	for _, j := range jobs {
		prog := ""
		if j.Progress != nil && j.Progress.Total > 0 {
			prog = fmt.Sprintf("%d/%d", j.Progress.Done, j.Progress.Total)
		}
		fmt.Fprintf(w, "  %-12s %-12s %-10s %-10s %s\n", j.ID, j.Kind, j.State, prog, j.Class)
	}

	if len(f.Events) > 0 {
		fmt.Fprintln(w, "\n  recent events:")
		for _, ev := range f.Events {
			if ev.Shard != nil {
				src := "computed"
				if ev.Shard.Cached {
					src = "cached"
				}
				fmt.Fprintf(w, "    #%d %s %s %s/%d %s %d/%d yield %.3f\n",
					ev.Seq, ev.Job, ev.Type, ev.Shard.Pos, ev.Shard.Shard, src,
					ev.Shard.Done, ev.Shard.Total, ev.Shard.Yield)
				continue
			}
			line := fmt.Sprintf("    #%d %s %s", ev.Seq, ev.Job, ev.Type)
			if ev.Error != "" {
				line += " (" + ev.Error + ")"
			}
			fmt.Fprintln(w, line)
		}
	}
}

// fmtSeconds renders a span compactly (90 -> 1m30s).
func fmtSeconds(s float64) string {
	return (time.Duration(s*1000) * time.Millisecond).Round(time.Second).String()
}
