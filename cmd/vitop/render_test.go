package main

import (
	"strings"
	"testing"
	"time"

	"vipipe/internal/service"
)

func fixedFrame() frame {
	ts := time.Date(2024, 3, 1, 10, 30, 0, 0, time.UTC)
	return frame{
		TS:   ts,
		Addr: "http://127.0.0.1:8639",
		History: service.HistoryView{
			WindowS: 300,
			Points:  make([]service.HistoryPoint, 3),
			Rates: &service.HistoryRates{
				SpanS:         120,
				SubmittedPerS: 0.5,
				CompletedPerS: 0.45,
				WindowHitRate: 0.82,
				QueueDepth:    3,
				WorkersBusy:   2,
				CounterPerS:   map[string]float64{"yield.shards_computed": 12.5},
			},
		},
		Jobs: []service.JobSnapshot{
			{ID: "job-000001", Kind: "field_sweep", State: service.JobRunning,
				Progress: &service.Progress{Done: 7, Total: 18}},
			{ID: "job-000002", Kind: "drc", State: service.JobFailed, Class: "drc"},
		},
		Events: []service.Event{
			{Seq: 41, Job: "job-000001", Type: service.EventShard,
				Shard: &service.ShardEvent{Pos: "r1c2", Shard: 1, Cached: true, Done: 7, Total: 18, Yield: 0.91}},
			{Seq: 42, Job: "job-000002", Type: service.EventFailed, Error: "drc"},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	var b strings.Builder
	render(&b, fixedFrame())
	out := b.String()
	for _, want := range []string{
		"vitop http://127.0.0.1:8639  10:30:00",
		"window 2m0s  submitted 0.50/s  completed 0.45/s",
		"hit-rate 82%",
		"queue 3  busy 2",
		"yield.shards_computed 12.5/s",
		"job-000001   field_sweep  running    7/18",
		"job-000002   drc          failed",
		"#41 job-000001 shard r1c2/1 cached 7/18 yield 0.910",
		"#42 job-000002 job.failed (drc)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderUnreachable(t *testing.T) {
	var b strings.Builder
	f := fixedFrame()
	f.Err = service.ErrDraining
	render(&b, f)
	if !strings.Contains(b.String(), "unreachable") {
		t.Errorf("error frame did not render the failure:\n%s", b.String())
	}
	if strings.Contains(b.String(), "job-000001") {
		t.Error("error frame rendered stale job data")
	}
}

func TestAppendTail(t *testing.T) {
	var tail []service.Event
	for i := 0; i < 20; i++ {
		tail = appendTail(tail, []service.Event{{Seq: int64(i)}})
	}
	if len(tail) != maxEventTail {
		t.Fatalf("tail length %d; want %d", len(tail), maxEventTail)
	}
	if tail[len(tail)-1].Seq != 19 || tail[0].Seq != int64(20-maxEventTail) {
		t.Errorf("tail = %+v; want the newest %d events", tail, maxEventTail)
	}
}
