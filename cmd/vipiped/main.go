// Command vipiped serves the whole vipipe flow as a long-running
// HTTP/JSON analysis service: submit characterization, island
// generation, power and DRC jobs against a shared content-addressed
// artifact cache, poll their status, fetch wire-encoded results, and
// scrape /metrics. One synthesize+place+analyze baseline per
// configuration hash is built on first use and reused by every
// subsequent query, so a scenario sweep at positions A-D costs one
// baseline plus four cached characterizations instead of four cold
// flow runs.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains the
// in-flight jobs (bounded by -drain-timeout), and exits without
// dropping completed results mid-write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"vipipe/internal/cliutil"
	"vipipe/internal/flowerr"
	"vipipe/internal/service"
)

var app = cliutil.New("vipiped")

func fatal(err error) { app.Fatal(err) }

func main() {
	addr := flag.String("addr", "127.0.0.1:8639", "listen address (port 0 picks a free port, printed on stdout)")
	workers := flag.Int("workers", 2, "worker-pool size (concurrent jobs)")
	queueCap := flag.Int("queue", 64, "job queue capacity")
	cacheMB := flag.Int("cache-mb", 256, "artifact cache bound in MiB")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long to wait for in-flight jobs on shutdown")
	flag.Parse()

	ctx, stop := app.Context()
	defer stop()

	metrics := service.NewMetrics()
	cache := service.NewCache(int64(*cacheMB) << 20)
	eng := service.NewEngine(cache, metrics)
	mgr := service.NewManager(eng, metrics, *workers, *queueCap)
	srv := &http.Server{Handler: service.NewServer(mgr, metrics)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(flowerr.BadInputf("vipiped: listen %s: %v", *addr, err))
	}
	// The bound address goes to stdout first thing so scripts (and the
	// service-it harness) can drive a port-0 instance.
	fmt.Printf("vipiped: listening on %s (workers=%d queue=%d cache=%dMiB)\n",
		ln.Addr(), *workers, *queueCap, *cacheMB)

	serveErr := make(chan error, 1)
	//lint:ignore goroutine the daemon's single serve goroutine; srv.Shutdown joins it on drain
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via default handling

	fmt.Println("vipiped: signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting HTTP first so no new submissions race the drain,
	// then let the worker pool finish queued and running jobs.
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "vipiped: http shutdown:", err)
	}
	if err := mgr.Drain(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vipiped: drain:", err)
		os.Exit(flowerr.ExitCode(err))
	}
	fmt.Println("vipiped: drained, bye")
}
