// Command vipiped serves the whole vipipe flow as a long-running
// HTTP/JSON analysis service: submit characterization, island
// generation, power and DRC jobs against a shared content-addressed
// artifact cache, poll their status, fetch wire-encoded results, and
// scrape /metrics. One synthesize+place+analyze baseline per
// configuration hash is built on first use and reused by every
// subsequent query, so a scenario sweep at positions A-D costs one
// baseline plus four cached characterizations instead of four cold
// flow runs.
//
// Every finished job leaves its span trace in a bounded flight
// recorder, served at /debug/runs (index) and /debug/trace/{id}
// (Chrome trace-event JSON, loadable in Perfetto). With -debug the
// net/http/pprof profiling endpoints mount under /debug/pprof/.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains the
// in-flight jobs (bounded by -drain-timeout), logs how many drained
// versus aborted, and exits without dropping completed results
// mid-write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"vipipe"
	"vipipe/internal/cliutil"
	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
	"vipipe/internal/pipeline"
	"vipipe/internal/service"
)

var app = cliutil.New("vipiped")

func fatal(err error) { app.Fatal(err) }

func main() {
	addr := flag.String("addr", "127.0.0.1:8639", "listen address (port 0 picks a free port, printed on stdout)")
	workers := flag.Int("workers", 2, "worker-pool size (concurrent jobs)")
	queueCap := flag.Int("queue", 64, "job queue capacity")
	cacheMB := flag.Int("cache-mb", 256, "artifact cache bound in MiB")
	storeDir := flag.String("store", "", "durable artifact store directory (empty = memory only); survives restarts and degrades instead of failing")
	clientQuota := flag.Int("client-quota", 0, "max queued jobs per client (0 = a quarter of the queue)")
	recorderCap := flag.Int("recorder", 64, "flight-recorder capacity (recent job traces kept for /debug/trace)")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long to wait for in-flight jobs on shutdown")
	metricsInterval := flag.Duration("metrics-interval", 2*time.Second, "rolling-telemetry sampling cadence for /metrics/history")
	historyCap := flag.Int("history", 600, "rolling-telemetry ring capacity (samples kept for /metrics/history)")
	eventBuf := flag.Int("event-buffer", 256, "per-subscriber /events buffer (a slower reader drops events instead of blocking workers)")
	flag.Parse()

	ctx, stop := app.Context()
	defer stop()

	// Structured logs go to stderr; stdout carries only the listening
	// line, which scripts parse to find a port-0 instance.
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	metrics := service.NewMetrics()
	cache := service.NewCache(int64(*cacheMB) << 20)
	var engOpts []service.EngineOption
	if *storeDir != "" {
		// An unusable store dir is not fatal: OpenDiskStore still
		// returns a (pre-degraded) store, so the daemon serves from
		// memory and compute while /metrics reports the condition.
		ds, err := pipeline.OpenDiskStore(*storeDir, vipipe.DiskCodecs())
		if err != nil {
			logger.Error("store open failed, serving degraded", "dir", *storeDir, "error", err)
		} else {
			logger.Info("durable store open", "dir", ds.Dir())
		}
		engOpts = append(engOpts, service.WithDiskStore(ds))
	}
	eng := service.NewEngine(cache, metrics, engOpts...)
	recorder := obs.NewRecorder(*recorderCap)
	quota := *clientQuota
	if quota <= 0 {
		quota = max(1, *queueCap/4)
	}
	mgr := service.NewManager(eng, metrics, *workers, *queueCap,
		service.WithRecorder(recorder), service.WithLogger(logger),
		service.WithClientQuota(quota), service.WithEventBuffer(*eventBuf))
	history := service.NewMetricsHistory(*historyCap)
	srvOpts := []service.ServerOption{service.WithHistory(history)}
	if *debug {
		srvOpts = append(srvOpts, service.WithPprof())
	}
	srv := &http.Server{Handler: service.NewServer(mgr, metrics, srvOpts...)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(flowerr.BadInputf("vipiped: listen %s: %v", *addr, err))
	}
	// The bound address goes to stdout first thing so scripts (and the
	// service-it harness) can drive a port-0 instance.
	fmt.Printf("vipiped: listening on %s (workers=%d queue=%d cache=%dMiB)\n",
		ln.Addr(), *workers, *queueCap, *cacheMB)
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queueCap, "cache_mib", *cacheMB,
		"recorder", *recorderCap, "pprof", *debug)

	// The telemetry sampler feeds /metrics/history until shutdown.
	ticker := time.NewTicker(*metricsInterval)
	defer ticker.Stop()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				history.Record(metrics.Snapshot(cache, mgr))
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via default handling

	logger.Info("signal received, draining", "timeout", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting HTTP first so no new submissions race the drain,
	// then let the worker pool finish queued and running jobs. Shutdown
	// runs concurrently with the drain: it waits for active handlers,
	// and the open /events streams only end when the drain closes the
	// event hub — sequencing them would deadlock.
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Shutdown(shutdownCtx) }()
	stats, err := mgr.Drain(shutdownCtx)
	if herr := <-httpDone; herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		logger.Error("http shutdown", "error", herr)
		_ = srv.Close() // tear down whatever outlived the deadline
	}
	logger.Info("drain finished", "drained", stats.Drained, "aborted", stats.Aborted)
	if err != nil {
		logger.Error("drain", "error", err, "class", flowerr.Class(err))
		os.Exit(flowerr.ExitCode(err))
	}
	// Scripts (and the e2e test) watch stdout for this banner.
	fmt.Println("vipiped: drained, bye")
}
