package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonEndToEnd builds the real binary, boots it on a random
// port, drives one job over HTTP, then SIGTERMs it and checks the
// graceful drain: exit code 0 and the completed result was served.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "vipiped")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// First stdout line: "vipiped: listening on 127.0.0.1:PORT (...)".
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no banner line; stderr: %s", stderr.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) < 4 || fields[1] != "listening" {
		t.Fatalf("unexpected banner %q", sc.Text())
	}
	base := "http://" + fields[3]
	// Keep draining stdout so the daemon never blocks on a full pipe.
	rest := make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		rest <- strings.Join(lines, "\n")
	}()

	body := `{"kind":"characterize","position":"A","config":{"small":true,"seed":1,"mc_samples":40,"vi_samples":24,"fir_samples":8,"fir_taps":4}}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v; stderr: %s", err, stderr.String())
	}
	var snap struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	var result struct {
		Position string `json:"position"`
		Samples  int    `json:"samples"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", snap.ID)
		}
		sr, err := http.Get(base + "/jobs/" + snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(sr.Body).Decode(&snap)
		sr.Body.Close()
		if snap.State == "done" {
			break
		}
		if snap.State == "failed" || snap.State == "cancelled" {
			t.Fatalf("job ended %s", snap.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	rr, err := http.Get(base + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(rr.Body).Decode(&result)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || result.Position != "A" || result.Samples != 40 {
		t.Fatalf("result = %d %+v; want 200 for position A with 40 samples", rr.StatusCode, result)
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Jobs struct {
			Completed int `json:"completed"`
		} `json:"jobs"`
	}
	json.NewDecoder(mr.Body).Decode(&metrics)
	mr.Body.Close()
	if metrics.Jobs.Completed != 1 {
		t.Fatalf("metrics completed = %d; want 1", metrics.Jobs.Completed)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exit: %v; stderr: %s", err, stderr.String())
		}
	case <-time.After(45 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	tail := <-rest
	if !strings.Contains(tail, "drained, bye") {
		t.Fatalf("shutdown output %q; want the drained banner", tail)
	}
}
