package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the real binary once per test into its temp
// dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vipiped")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running vipiped under test: its process, base URL, and
// drained output streams.
type daemon struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
	rest   chan string
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{stderr: &bytes.Buffer{}, rest: make(chan string, 1)}
	d.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.cmd.Process.Kill() })

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no banner line; stderr: %s", d.stderr.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) < 4 || fields[1] != "listening" {
		t.Fatalf("unexpected banner %q", sc.Text())
	}
	d.base = "http://" + fields[3]
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		d.rest <- strings.Join(lines, "\n")
	}()
	return d
}

// shutdown SIGTERMs the daemon and waits for a clean drain.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- d.cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exit: %v; stderr: %s", err, d.stderr.String())
		}
	case <-time.After(45 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

func (d *daemon) post(t *testing.T, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(d.base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v; stderr: %s", err, d.stderr.String())
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, snap
}

// runJob submits a characterize request and waits for "done".
func (d *daemon) runJob(t *testing.T, pos string, samples int) {
	t.Helper()
	body := `{"kind":"characterize","position":"` + pos + `","config":{"small":true,"seed":1,"mc_samples":` +
		strAtoi(samples) + `,"vi_samples":24,"fir_samples":8,"fir_taps":4}}`
	code, snap := d.post(t, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit %s = %d (%v)", pos, code, snap)
	}
	id, _ := snap["id"].(string)
	deadline := time.Now().Add(90 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		sr, err := http.Get(d.base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		json.NewDecoder(sr.Body).Decode(&st)
		sr.Body.Close()
		switch st.State {
		case "done":
			return
		case "failed", "cancelled":
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// storeMetrics is the /metrics subset these tests assert on.
type storeMetrics struct {
	Degraded bool `json:"degraded"`
	Store    struct {
		Mode string `json:"mode"`
		Disk *struct {
			Hits        int64 `json:"hits"`
			Writes      int64 `json:"writes"`
			Quarantined int64 `json:"quarantined"`
			Degraded    bool  `json:"degraded"`
		} `json:"disk"`
	} `json:"store"`
}

func (d *daemon) metrics(t *testing.T) storeMetrics {
	t.Helper()
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m storeMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func strAtoi(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestDaemonCrashRecovery is the headline durability scenario: run a
// daemon against a -store dir, kill -9 it mid-computation, corrupt one
// surviving artifact for good measure, then restart over the same dir
// and check the second daemon (a) serves the intact artifact from disk
// without recomputing, (b) detects and quarantines the corrupted one
// instead of serving it, and (c) finishes every request correctly.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	store := filepath.Join(t.TempDir(), "store")

	d1 := startDaemon(t, bin, "-store", store, "-workers", "2")
	d1.runJob(t, "A", 40)
	d1.runJob(t, "B", 40)
	m := d1.metrics(t)
	if m.Store.Mode != "ok" || m.Store.Disk == nil || m.Store.Disk.Writes < 2 {
		t.Fatalf("first daemon store metrics %+v; want ok with >=2 writes", m.Store)
	}

	// Leave a job mid-flight and pull the plug — no drain, no fsync of
	// anything still buffered, exactly the crash the atomic-rename
	// protocol is for.
	code, _ := d1.post(t, `{"kind":"characterize","position":"C","config":{"small":true,"seed":1,"mc_samples":400000,"vi_samples":24,"fir_samples":8,"fir_taps":4}}`)
	if code != http.StatusAccepted {
		t.Fatalf("mid-flight submit = %d", code)
	}
	time.Sleep(300 * time.Millisecond)
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Bit-rot one surviving artifact (position B's characterization).
	arts, err := filepath.Glob(filepath.Join(store, "objects", "*", "mc", "B.art"))
	if err != nil || len(arts) != 1 {
		t.Fatalf("glob mc/B artifact: %v %v", arts, err)
	}
	raw, err := os.ReadFile(arts[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(arts[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := startDaemon(t, bin, "-store", store, "-workers", "2")
	d2.runJob(t, "A", 40) // intact: served from disk
	d2.runJob(t, "B", 40) // corrupted: quarantined and recomputed
	m = d2.metrics(t)
	if m.Degraded || m.Store.Mode != "ok" {
		t.Fatalf("restarted daemon degraded=%v mode=%q; want healthy", m.Degraded, m.Store.Mode)
	}
	if m.Store.Disk.Hits < 1 {
		t.Fatalf("restarted daemon disk hits = %d; want a warm read", m.Store.Disk.Hits)
	}
	if m.Store.Disk.Quarantined != 1 {
		t.Fatalf("quarantined = %d; want exactly the corrupted artifact", m.Store.Disk.Quarantined)
	}
	q, err := filepath.Glob(filepath.Join(store, "quarantine", "*"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir %v (%v); want one file", q, err)
	}
	d2.shutdown(t)
}

// TestDaemonDegradedStore boots the daemon with an unusable -store
// path: it must come up, answer jobs correctly, and report degraded on
// /metrics rather than fail.
func TestDaemonDegradedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, bin, "-store", filepath.Join(occupied, "store"))
	d.runJob(t, "A", 40)
	m := d.metrics(t)
	if !m.Degraded || m.Store.Mode != "degraded" {
		t.Fatalf("degraded=%v store.mode=%q; want degraded serving", m.Degraded, m.Store.Mode)
	}
	if m.Store.Disk == nil || !m.Store.Disk.Degraded {
		t.Fatalf("store.disk = %+v; want degraded stats", m.Store.Disk)
	}
	d.shutdown(t)
	// Only read stderr after Wait has joined the pipe copier.
	if !strings.Contains(d.stderr.String(), "store open failed") {
		t.Fatalf("stderr %q; want the degraded-store log line", d.stderr.String())
	}
}
