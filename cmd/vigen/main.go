// Command vigen reproduces the voltage-island part of the paper:
// placement-aware island generation by vertical and horizontal slicing
// (Fig. 4), level-shifter insertion with its count, area and timing
// overhead (Table 2), and the post-insertion performance degradation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vipipe/internal/cliutil"
	"vipipe/internal/service/wire"
	"vipipe/internal/vi"
)

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}

var app = cliutil.New("vigen")

func fatal(err error) { app.Fatal(err) }

// jsonEntry is the -json record per strategy: the wire-encoded
// partition (after shifter insertion, so counts and area are filled)
// plus the post-insertion critical-path degradation.
type jsonEntry struct {
	Partition   wire.Partition `json:"partition"`
	Degradation float64        `json:"degradation"`
}

func main() {
	app.ConfigFlags(false)
	app.JSONFlag()
	app.StrategyFlag("vertical,horizontal", "comma-separated slicing strategies to compare")
	app.TraceFlag()
	app.ProfileFlag()
	app.StoreFlag()
	flag.Parse()

	ctx, stop := app.Context()
	defer stop()
	ctx, finishTrace := app.StartTrace(ctx)

	strategies, err := app.Strategies()
	if err != nil {
		fatal(err)
	}
	var entries []jsonEntry
	for _, strat := range strategies {
		cfg := app.Config()
		// A fresh flow per strategy: shifter insertion mutates the
		// netlist. With -store the flows still share the disk tier —
		// it only holds pure data, never the mutated engine state.
		f := app.NewFlow(cfg)
		if err := f.Run(ctx); err != nil {
			fatal(err)
		}
		part, err := f.GenerateIslands(ctx, strat)
		if err != nil {
			fatal(fmt.Errorf("%v slicing: %w", strat, err))
		}
		if !app.JSON {
			fmt.Printf("== %v slicing (start side: %v) — Fig. 4\n", strat, part.StartSide)
			axis := "x"
			if strat == vi.Horizontal {
				axis = "y"
			}
			for _, isl := range part.Islands {
				fmt.Printf("  island %d: %s in [%.0f, %.0f]um, %d cells\n",
					isl.Index, axis, isl.FromUM, isl.ToUM, len(isl.Cells))
			}
			fmt.Println(indent(part.Render(f.PL, 56)))
		}
		count, degr, err := f.InsertShifters(ctx, part)
		if err != nil {
			fatal(err)
		}
		if app.JSON {
			entries = append(entries, jsonEntry{Partition: wire.FromPartition(part), Degradation: degr})
			continue
		}
		fmt.Printf("  level shifters: %d (area %.2f%% of logic) — Table 2\n",
			count, 100*part.ShifterAreaFrac())
		fmt.Printf("  post-insertion critical-path degradation: %.1f%% (paper: 8%% ver / 15%% hor)\n\n",
			100*degr)
	}
	if err := finishTrace(); err != nil {
		fatal(err)
	}
	if app.JSON {
		if err := wire.Encode(os.Stdout, entries); err != nil {
			fatal(err)
		}
	}
}
