// Command vigen reproduces the voltage-island part of the paper:
// placement-aware island generation by vertical and horizontal slicing
// (Fig. 4), level-shifter insertion with its count, area and timing
// overhead (Table 2), and the post-insertion performance degradation.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"vipipe"
	"vipipe/internal/vi"
)

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}

func main() {
	small := flag.Bool("small", false, "use the reduced test core")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	for _, strat := range []vi.Strategy{vi.Vertical, vi.Horizontal} {
		cfg := vipipe.DefaultConfig()
		if *small {
			cfg = vipipe.TestConfig()
		}
		cfg.Seed = *seed
		// A fresh flow per strategy: shifter insertion mutates the
		// netlist.
		f := vipipe.New(cfg)
		if err := f.Run(); err != nil {
			log.Fatal(err)
		}
		part, err := f.GenerateIslands(strat)
		if err != nil {
			log.Fatalf("%v slicing: %v", strat, err)
		}
		fmt.Printf("== %v slicing (start side: %v) — Fig. 4\n", strat, part.StartSide)
		axis := "x"
		if strat == vi.Horizontal {
			axis = "y"
		}
		for _, isl := range part.Islands {
			fmt.Printf("  island %d: %s in [%.0f, %.0f]um, %d cells\n",
				isl.Index, axis, isl.FromUM, isl.ToUM, len(isl.Cells))
		}
		fmt.Println(indent(part.Render(f.PL, 56)))
		count, degr, err := f.InsertShifters(part)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  level shifters: %d (area %.2f%% of logic) — Table 2\n",
			count, 100*part.ShifterAreaFrac())
		fmt.Printf("  post-insertion critical-path degradation: %.1f%% (paper: 8%% ver / 15%% hor)\n\n",
			100*degr)
	}
}
