// Command mcsta runs the Monte Carlo statistical static timing
// analysis of the paper's Section 4.3: it builds and places the VEX
// core, characterizes the per-stage critical-path slack distributions
// at the chip positions A-D, renders the Fig. 3 histograms, and prints
// the violation-scenario classification of Section 4.4 together with
// the Razor sensor plan.
package main

import (
	"flag"
	"fmt"
	"os"

	"vipipe/internal/cliutil"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/service/wire"
	"vipipe/internal/stats"
)

var app = cliutil.New("mcsta")

func fatal(err error) { app.Fatal(err) }

func main() {
	app.ConfigFlags(false)
	app.SamplesFlag()
	app.JSONFlag()
	app.TraceFlag()
	app.ProfileFlag()
	app.StoreFlag()
	flag.Parse()

	ctx, stop := app.Context()
	defer stop()
	ctx, finishTrace := app.StartTrace(ctx)

	cfg := app.Config()
	f := app.NewFlow(cfg)
	if err := f.Run(ctx); err != nil {
		fatal(err)
	}
	if err := finishTrace(); err != nil {
		fatal(err)
	}

	if app.JSON {
		out := struct {
			Cells     int             `json:"cells"`
			ClockPS   float64         `json:"clock_ps"`
			FmaxMHz   float64         `json:"fmax_mhz"`
			Positions []wire.MCResult `json:"positions"`
		}{Cells: f.NL.NumCells(), ClockPS: f.ClockPS, FmaxMHz: f.FmaxMHz}
		for _, pos := range cfg.Model.DiagonalPositions() {
			out.Positions = append(out.Positions, wire.FromMCResult(f.MC[pos.Name]))
		}
		if err := wire.Encode(os.Stdout, out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("core: %d cells, clock %.0fps (%.1f MHz)\n\n",
		f.NL.NumCells(), f.ClockPS, f.FmaxMHz)

	for _, pos := range cfg.Model.DiagonalPositions() {
		res := f.MC[pos.Name]
		sc, stages := res.Classify(0)
		fmt.Printf("== position %s (%.1f, %.1f)mm: scenario %d, violating %v\n",
			pos.Name, pos.XMM, pos.YMM, sc, stages)
		for _, st := range mc.PipelineStages {
			d := res.PerStage[st]
			if d == nil {
				continue
			}
			fmt.Printf("  %-10v slack mu=%8.1fps sigma=%6.1fps  P(viol)=%.4g  chi2 p=%.3f (normal fit %s)\n",
				st, d.Fit.Mu, d.Fit.Sigma, d.ViolProb, d.GOF.PValue, accepted(d.GOF.Accepted))
		}
		fmt.Println()
	}

	// Fig. 3: slack histograms at the worst-case position A.
	resA := f.MC["A"]
	fmt.Println("Fig. 3 — critical-path slack distributions at point A (ns):")
	for _, st := range mc.PipelineStages {
		d := resA.PerStage[st]
		lo := stats.Percentile(d.SlackPS, 0) - 1
		hi := stats.Percentile(d.SlackPS, 100) + 1
		h := stats.NewHistogram(lo/1000, hi/1000, 18)
		for _, s := range d.SlackPS {
			h.Add(s / 1000)
		}
		fmt.Printf("--- %v\n%s", st, h.Render(46))
	}

	// Razor plan (Section 4.4).
	plan, err := f.SensorPlan()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nRazor sensor plan (budget %d per stage): %d sensors, +%.0f um2\n",
		cfg.SensorBudget, plan.NumSensors(), plan.AreaOverheadUM2(f.Lib))
	for _, st := range []netlist.Stage{netlist.StageDecode, netlist.StageExecute, netlist.StageWriteback} {
		fmt.Printf("  %-10v %d sensors\n", st, len(plan.ByStage[st]))
	}
}

func accepted(ok bool) string {
	if ok {
		return "accepted"
	}
	return "rejected"
}
