package vipipe

import (
	"bytes"
	"context"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/mc"
	"vipipe/internal/obs"
	"vipipe/internal/pipeline"
	"vipipe/internal/power"
	"vipipe/internal/service/wire"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
	"vipipe/internal/vexsim"
	"vipipe/internal/vi"

	"vipipe/internal/place"
)

// seedArtifacts reproduces the pre-refactor imperative flow — the
// step-by-step substrate calls the seed's Flow methods made, in the
// seed's sequential order — without touching Flow or the pipeline
// graph. It is the reference the graph-driven path must match bit for
// bit.
type seedArtifacts struct {
	clockPS float64
	fmaxMHz float64
	mc      map[string]*mc.Result
	ladder  []variation.Pos
	part    *vi.Partition
	chipA   *power.Report
	scenB   *power.Report
}

func runSeedPath(t *testing.T, ctx context.Context, cfg Config) seedArtifacts {
	t.Helper()
	lib := cell.Default65nm()
	core, err := vex.Build(cfg.Core, lib)
	if err != nil {
		t.Fatal(err)
	}
	nl := core.NL
	pl, err := place.Global(nl, cfg.Place)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sta.New(nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	nominal := a.Run(1e12, nil)
	clock := nominal.CritPS * (1 + cfg.ClockGuard)
	derate, err := a.SlackRecoveryCtx(ctx, clock, cfg.Recovery, cfg.MaxDerate, 25)
	if err != nil {
		t.Fatal(err)
	}

	results := make(map[string]*mc.Result)
	for _, pos := range cfg.Model.DiagonalPositions() {
		res, err := mc.Run(ctx, a, &cfg.Model, pos, mc.Options{
			Samples:        cfg.MCSamples,
			Seed:           cfg.Seed,
			ClockPS:        clock,
			Derate:         derate,
			PanicTolerance: cfg.PanicTolerance,
		})
		if err != nil {
			t.Fatal(err)
		}
		results[pos.Name] = res
	}
	ladder, err := ScenarioLadder(cfg.Model.DiagonalPositions(), results)
	if err != nil {
		t.Fatal(err)
	}

	part, err := vi.Generate(ctx, a, &cfg.Model, ladder, vi.Options{
		Strategy: vi.Vertical,
		ClockPS:  clock,
		Derate:   derate,
		Samples:  cfg.VISamples,
		Seed:     cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	fir, err := vexsim.NewFIR(cfg.Core, cfg.FIRSamples, cfg.FIRTaps, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := vexsim.NewTestbench(core, fir.Prog, fir.DMem)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.RunContext(ctx, fir.Cycles); err != nil {
		t.Fatal(err)
	}
	activity := tb.Activity()

	analyze := func(domains []cell.Domain, pos variation.Pos) *power.Report {
		lg := make([]float64, nl.NumCells())
		for i := range lg {
			cx, cy := pl.Center(i)
			lg[i] = cfg.Model.SystematicLgateNM(pos.XMM+cx/1000, pos.YMM+cy/1000)
		}
		rep, err := power.Analyze(power.Inputs{
			NL: nl, PL: pl, Activity: activity,
			FreqMHz: sta.FmaxMHz(clock), Domains: domains, LgateNM: lg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	posA, _ := cfg.Model.Position("A")
	posB, _ := cfg.Model.Position("B")
	high := make([]cell.Domain, nl.NumCells())
	for i := range high {
		high[i] = cell.DomainHigh
	}
	return seedArtifacts{
		clockPS: clock,
		fmaxMHz: sta.FmaxMHz(clock),
		mc:      results,
		ladder:  ladder,
		part:    part,
		chipA:   analyze(high, posA),
		scenB:   analyze(part.Domains(2), posB),
	}
}

// encode renders an artifact through the wire codecs — the byte-level
// form the daemon and the -json CLI modes emit.
func encode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGraphFlowMatchesSeedPath is the refactor's equivalence proof:
// for the quickstart (Test) config, the graph-driven Flow produces
// bit-identical characterizations, partition and power reports to the
// seed's imperative sequence, compared via their canonical wire
// encodings.
func TestGraphFlowMatchesSeedPath(t *testing.T) {
	ctx := context.Background()
	cfg := TestConfig()
	want := runSeedPath(t, ctx, cfg)

	f := New(cfg)
	if err := f.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if f.ClockPS != want.clockPS || f.FmaxMHz != want.fmaxMHz {
		t.Errorf("clock %.6f/%.6f MHz, seed path %.6f/%.6f",
			f.ClockPS, f.FmaxMHz, want.clockPS, want.fmaxMHz)
	}
	for _, pos := range cfg.Model.DiagonalPositions() {
		got := encode(t, wire.FromMCResult(f.MC[pos.Name]))
		ref := encode(t, wire.FromMCResult(want.mc[pos.Name]))
		if !bytes.Equal(got, ref) {
			t.Errorf("characterization at %s diverges from the seed path", pos.Name)
		}
	}
	if len(f.ScenarioPositions) != len(want.ladder) {
		t.Fatalf("ladder %v, seed path %v", f.ScenarioPositions, want.ladder)
	}
	for i := range want.ladder {
		if f.ScenarioPositions[i] != want.ladder[i] {
			t.Errorf("ladder[%d] = %v, seed path %v", i, f.ScenarioPositions[i], want.ladder[i])
		}
	}

	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := encode(t, wire.FromPartition(part)), encode(t, wire.FromPartition(want.part)); !bytes.Equal(got, ref) {
		t.Error("vertical partition diverges from the seed path")
	}

	if err := f.SimulateWorkload(ctx); err != nil {
		t.Fatal(err)
	}
	posA, _ := f.Position("A")
	posB, _ := f.Position("B")
	chipA, err := f.ChipWidePower(posA)
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := encode(t, wire.FromPowerReport(chipA)), encode(t, wire.FromPowerReport(want.chipA)); !bytes.Equal(got, ref) {
		t.Error("chip-wide power at A diverges from the seed path")
	}
	scenB, err := f.ScenarioPower(part, 2, posB)
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := encode(t, wire.FromPowerReport(scenB)), encode(t, wire.FromPowerReport(want.scenB)); !bytes.Equal(got, ref) {
		t.Error("scenario-2 power at B diverges from the seed path")
	}

	// The service engine rides the same graph: its artifacts must
	// match too, through a fresh graph over a fresh store.
	g := NewGraph(cfg, pipeline.NewMemStore())
	v, err := g.RequestOne(ctx, NodeScenarioPower(vi.Vertical, 2, "B"))
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := encode(t, wire.FromPowerReport(v.(*power.Report))), encode(t, wire.FromPowerReport(want.scenB)); !bytes.Equal(got, ref) {
		t.Error("graph scenario-power artifact diverges from the seed path")
	}
}

// TestTracedFlowMatchesSeedPath extends the equivalence proof to
// tracing: the same graph request under an armed tracer must produce
// the bit-identical wire encoding — spans observe computes, they may
// never perturb them — while the trace itself carries one span per
// artifact-graph node.
func TestTracedFlowMatchesSeedPath(t *testing.T) {
	ctx := context.Background()
	cfg := TestConfig()
	want := runSeedPath(t, ctx, cfg)

	tr := obs.NewTracer("equiv", "traced-equivalence")
	tctx := obs.WithTracer(ctx, tr)
	g := NewGraph(cfg, pipeline.NewMemStore())
	v, err := g.RequestOne(tctx, NodeScenarioPower(vi.Vertical, 2, "B"))
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := encode(t, wire.FromPowerReport(v.(*power.Report))), encode(t, wire.FromPowerReport(want.scenB)); !bytes.Equal(got, ref) {
		t.Error("traced scenario-power artifact diverges from the seed path")
	}

	trace := tr.Finish()
	nodes := make(map[string]bool)
	for _, s := range trace.Spans {
		nodes[s.Name] = true
	}
	for _, id := range []string{NodeSynth, NodePlace, NodeAnalyze, NodeScenarioPower(vi.Vertical, 2, "B")} {
		if !nodes[id] {
			t.Errorf("trace has no span for node %s (spans: %d)", id, len(trace.Spans))
		}
	}
}
