package vipipe

import (
	"context"
	"fmt"

	"vipipe/internal/cell"
	"vipipe/internal/pipeline"
	"vipipe/internal/sta"
	"vipipe/internal/yield"
)

// NodeFieldShard returns the ID of one shard of a position's
// field-sweep Monte Carlo (artifact *yield.ShardStat). The ID embeds
// the position's content key (yield.Plan.PosKey), so a plan tweak —
// say, an overlay moved at one position — re-keys exactly the shards
// it invalidates while every untouched position keeps hitting the
// store. Every character must stay inside the DiskStore's safe set
// [a-zA-Z0-9._-], or shards silently stop persisting (Put is
// best-effort); TestYieldShardsPersistToDisk pins this.
func NodeFieldShard(pos, key string, shard int) string {
	return fmt.Sprintf("field/%s-%s/%d", pos, key, shard)
}

// NodeFieldSurface returns the ID of a plan's reduce node (artifact
// *yield.Surface).
func NodeFieldSurface(planHash string) string { return "field/surface/" + planHash }

// NewYieldGraph extends the flow graph with a field sweep: one shard
// node per (position, shard) over the plan, all hanging off
// NodeAnalyze, and a surface node folding every shard in row-major
// position order. The baseline nodes are keyed by cfg.Hash() exactly
// as NewGraph keys them, so sweeps share synth/place/analyze artifacts
// with every other flow over the store; only the field/* nodes carry
// plan-derived keys. It returns the graph and the surface node's ID.
func NewYieldGraph(cfg Config, plan yield.Plan, store pipeline.Store, opts ...pipeline.Option) (*pipeline.Graph, string, error) {
	if err := plan.Validate(); err != nil {
		return nil, "", err
	}
	positions, err := plan.ResolvePositions(&cfg.Model)
	if err != nil {
		return nil, "", err
	}
	plan.Positions = positions

	g := newGraph(cfg, cell.Default65nm(), store, opts...)

	shardIDs := make([]string, 0, len(positions)*plan.Shards)
	for _, pos := range positions {
		pos := pos
		key := plan.PosKey(pos)
		overlay := plan.OverlayFor(pos.Name)
		for s := 0; s < plan.Shards; s++ {
			s := s
			id := NodeFieldShard(pos.Name, key, s)
			shardIDs = append(shardIDs, id)
			g.MustAdd(pipeline.Node{
				ID:   id,
				Deps: []string{NodeAnalyze},
				Compute: func(ctx context.Context, deps map[string]any) (any, error) {
					tm := deps[NodeAnalyze].(*Timing)
					start, count := yield.ShardRange(plan.Samples, plan.Shards, s)
					return yield.ComputeShard(ctx, yield.ShardInput{
						Kernel:  sta.NewKernel(tm.STA),
						PL:      tm.STA.PL,
						Model:   &cfg.Model,
						Tech:    &tm.STA.NL.Lib.Tech,
						Pos:     pos,
						Overlay: overlay,
						Key:     key,
						Shard:   s,
						Start:   start,
						Count:   count,
						Seed:    plan.Seed,
						Derate:  tm.Derate,
						ClockPS: tm.ClockPS,
						Axis:    plan.Axis.Resolve(tm.ClockPS),
					})
				},
				Size: func(v any) int64 {
					st := v.(*yield.ShardStat)
					return int64(len(st.Hist.Bins)+len(st.OvHist.Bins))*8 + 512
				},
			})
		}
	}

	surfaceID := NodeFieldSurface(plan.Hash())
	g.MustAdd(pipeline.Node{
		ID:   surfaceID,
		Deps: append(append([]string{}, shardIDs...), NodeAnalyze),
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			if err := ctxErr(ctx, surfaceID); err != nil {
				return nil, err
			}
			tm := deps[NodeAnalyze].(*Timing)
			// Index the dep map by reconstructed IDs so the fold order
			// is the plan's row-major position order, never map order.
			perPos := make([][]*yield.ShardStat, len(positions))
			for pi, pos := range positions {
				key := plan.PosKey(pos)
				group := make([]*yield.ShardStat, plan.Shards)
				for s := 0; s < plan.Shards; s++ {
					group[s] = deps[NodeFieldShard(pos.Name, key, s)].(*yield.ShardStat)
				}
				perPos[pi] = group
			}
			return yield.BuildSurface(plan.Hash(), tm.ClockPS, plan.Grid, positions,
				plan.Axis.Resolve(tm.ClockPS), perPos)
		},
		Size: func(v any) int64 {
			s := v.(*yield.Surface)
			return int64(len(s.Positions))*int64(len(s.PeriodsPS))*16 + 4096
		},
	})

	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g, surfaceID, nil
}

// RunYield executes a field sweep to completion and returns its
// surface: the one-call entry point shared by cmd/viyield and tests.
// Shards schedule concurrently under the graph's worker pool and cache
// individually in the store, so a warm re-run after a plan tweak
// recomputes only the re-keyed shards.
func RunYield(ctx context.Context, cfg Config, plan yield.Plan, store pipeline.Store, opts ...pipeline.Option) (*yield.Surface, error) {
	g, surfaceID, err := NewYieldGraph(cfg, plan, store, opts...)
	if err != nil {
		return nil, err
	}
	v, err := g.RequestOne(ctx, surfaceID)
	if err != nil {
		return nil, err
	}
	return v.(*yield.Surface), nil
}
