package vipipe

// The benchmark harness regenerates every table and figure of the
// paper's evaluation on the full-size core (see EXPERIMENTS.md for the
// paper-vs-measured record):
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the reproduced rows/series with -v style b.Log
// output and reports headline values as benchmark metrics.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"vipipe/internal/density"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/power"
	"vipipe/internal/razor"
	"vipipe/internal/sta"
	"vipipe/internal/stats"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
)

// benchCfg trims the Monte Carlo effort so the full suite stays in
// minutes while keeping the full-size core.
func benchCfg() Config {
	cfg := DefaultConfig()
	cfg.MCSamples = 200
	cfg.VISamples = 40
	cfg.FIRSamples = 32
	return cfg
}

// sharedFlow caches one fully-characterized read-only flow for the
// benchmarks that do not mutate the netlist.
var (
	sharedOnce sync.Once
	sharedF    *Flow
	sharedErr  error
)

// benchPos resolves a chip position or fails the benchmark.
func benchPos(b *testing.B, f *Flow, name string) variation.Pos {
	b.Helper()
	p, err := f.Position(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func shared(b *testing.B) *Flow {
	b.Helper()
	sharedOnce.Do(func() {
		f := New(benchCfg())
		if sharedErr = f.Run(context.Background()); sharedErr != nil {
			return
		}
		sharedErr = f.SimulateWorkload(context.Background())
		sharedF = f
	})
	if sharedErr != nil {
		b.Fatal(sharedErr)
	}
	return sharedF
}

// freshFlow builds an independent flow for netlist-mutating benchmarks.
func freshFlow(b *testing.B) *Flow {
	b.Helper()
	f := New(benchCfg())
	if err := f.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	if err := f.SimulateWorkload(context.Background()); err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkFig2LgateMap regenerates the systematic Lgate map of Fig. 2.
func BenchmarkFig2LgateMap(b *testing.B) {
	m := variation.Default()
	var grid [][]float64
	for i := 0; i < b.N; i++ {
		grid = m.MapGrid(140)
	}
	lo, hi := grid[0][0], grid[0][0]
	for _, row := range grid {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	b.ReportMetric(100*hi, "maxdev_%")
	b.ReportMetric(100*lo, "mindev_%")
	b.Logf("Fig.2: systematic Lgate deviation %.2f%%..%.2f%% over %dmm chip (paper: +/-5.5%%)",
		100*lo, 100*hi, int(m.ChipMM))
}

// BenchmarkSection42Timing regenerates the Section 4.2 scalars: fmax
// and the critical-path composition through forwarding and ALU.
func BenchmarkSection42Timing(b *testing.B) {
	f := shared(b)
	// The critical-path composition is a property of the synthesized
	// netlist, reported pre-recovery (recovery only slows paths that
	// had slack; with it applied hundreds of wall paths tie for the
	// maximum and the trace becomes arbitrary).
	var rep *sta.Report
	for i := 0; i < b.N; i++ {
		rep = f.STA.Run(f.ClockPS, nil)
	}
	ex := rep.PerStage[netlist.StageExecute]
	var worst sta.Endpoint
	for _, ep := range rep.Endpoints {
		if ep.Inst == ex.Endpoint {
			worst = ep
		}
	}
	path := f.STA.CriticalPath(rep, worst, nil)
	br := sta.PathBreakdown(path)
	keys := make([]string, 0, len(br))
	for k := range br {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return br[keys[i]] > br[keys[j]] })
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s %.0f%%", k, 100*br[k]/worst.Arrival))
	}
	b.ReportMetric(f.FmaxMHz, "fmax_MHz")
	b.Logf("Section 4.2: fmax %.1f MHz (paper 256); crit path: %s (paper: fwd 22%%, ALU 60%%)",
		f.FmaxMHz, strings.Join(parts, ", "))
}

// BenchmarkTable1Breakdown regenerates the area and power breakdown.
func BenchmarkTable1Breakdown(b *testing.B) {
	f := shared(b)
	var rep *power.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = f.Power(nil, benchPos(b, f, "D"))
		if err != nil {
			b.Fatal(err)
		}
	}
	ds := f.NL.Stats()
	areaBy := make(map[string]float64)
	for _, u := range ds.ByUnit {
		areaBy[u.Unit] = 100 * u.AreaUM2 / ds.AreaUM2
	}
	for _, u := range rep.ByUnit {
		b.Logf("Table 1: %-12s area %5.1f%%  power %5.1f%%", u.Unit, areaBy[u.Unit], 100*u.TotalMW()/rep.TotalMW())
	}
	b.Logf("Table 1: total %.3f mW, leakage %.2f%% (paper: 30.8mW, 1.1%%; RF 53%%/64%%, EX 26%%/17%%)",
		rep.TotalMW(), 100*rep.LeakMW/rep.TotalMW())
	b.ReportMetric(100*rep.LeakMW/rep.TotalMW(), "leak_%")
	b.ReportMetric(areaBy["regfile"], "rf_area_%")
}

// BenchmarkFig3StageDistributions regenerates the per-stage slack
// distributions at point A.
func BenchmarkFig3StageDistributions(b *testing.B) {
	f := shared(b)
	var res *mc.Result
	for i := 0; i < b.N; i++ {
		res = f.MC["A"]
	}
	for _, st := range mc.PipelineStages {
		d := res.PerStage[st]
		b.Logf("Fig.3 (point A): %-10v slack mu %7.1f ps, sigma %5.1f ps, chi2 p=%.3f normal-fit=%v",
			st, d.Fit.Mu, d.Fit.Sigma, d.GOF.PValue, d.GOF.Accepted)
	}
	ex := res.PerStage[netlist.StageExecute]
	worst := stats.Percentile(res.CritPS, 100)
	b.ReportMetric(-ex.Fit.Mu, "ex_viol_ps")
	b.ReportMetric(100*(worst/f.ClockPS-1), "worst_fdrop_%")
	b.Logf("Fig.3: worst-case frequency degradation %.1f%% (paper: ~10%%)", 100*(worst/f.ClockPS-1))
}

// BenchmarkScenarioClassification regenerates the Section 4.4 scenario
// ladder across the diagonal positions.
func BenchmarkScenarioClassification(b *testing.B) {
	f := shared(b)
	var ladder []string
	for i := 0; i < b.N; i++ {
		ladder = ladder[:0]
		for _, pos := range f.Cfg.Model.DiagonalPositions() {
			sc, stages := f.MC[pos.Name].Classify(0)
			ladder = append(ladder, fmt.Sprintf("%s:%d%v", pos.Name, sc, stages))
		}
	}
	b.Logf("Section 4.4 scenarios: %s (paper: A=3, B=2, C=1, D=0)", strings.Join(ladder, "  "))
	scA, _ := f.MC["A"].Classify(0)
	b.ReportMetric(float64(scA), "scenario_at_A")

	plan, err := f.SensorPlan()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("Section 4.4 sensors: %d razor flops (EX: %d; paper: 12 in EX)",
		plan.NumSensors(), len(plan.ByStage[netlist.StageExecute]))
	b.ReportMetric(float64(len(plan.ByStage[netlist.StageExecute])), "ex_sensors")
}

// BenchmarkFig4IslandGeneration regenerates the island geometry for
// both slicing strategies (no netlist mutation).
func BenchmarkFig4IslandGeneration(b *testing.B) {
	f := shared(b)
	for _, strat := range []vi.Strategy{vi.Vertical, vi.Horizontal} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			var part *vi.Partition
			var err error
			for i := 0; i < b.N; i++ {
				part, err = f.GenerateIslands(context.Background(), strat)
				if err != nil {
					b.Fatal(err)
				}
			}
			extent := f.PL.DieW
			if strat == vi.Horizontal {
				extent = f.PL.DieH
			}
			for _, isl := range part.Islands {
				b.Logf("Fig.4 %v: island %d spans [%.0f, %.0f]um (%.0f%% of die), %d cells",
					strat, isl.Index, isl.FromUM, isl.ToUM, 100*isl.ToUM/extent, len(isl.Cells))
			}
			b.ReportMetric(100*part.Islands[len(part.Islands)-1].ToUM/extent, "coverage_%")
		})
	}
}

// strategyRun carries one full strategy evaluation for Table 2 and
// Figures 5/6.
type strategyRun struct {
	flow     *Flow
	part     *vi.Partition
	shifters int
	degr     float64
	baseline map[string]*power.Report
}

func runStrategy(b *testing.B, strat vi.Strategy) *strategyRun {
	b.Helper()
	f := freshFlow(b)
	baseline := make(map[string]*power.Report)
	for _, pos := range f.Cfg.Model.DiagonalPositions() {
		rep, err := f.ChipWidePower(pos)
		if err != nil {
			b.Fatal(err)
		}
		baseline[pos.Name] = rep
	}
	part, err := f.GenerateIslands(context.Background(), strat)
	if err != nil {
		b.Fatal(err)
	}
	n, degr, err := f.InsertShifters(context.Background(), part)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.SimulateWorkload(context.Background()); err != nil {
		b.Fatal(err)
	}
	return &strategyRun{flow: f, part: part, shifters: n, degr: degr, baseline: baseline}
}

// BenchmarkTable2LevelShifters regenerates the level-shifter overhead
// table.
func BenchmarkTable2LevelShifters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hor := runStrategy(b, vi.Horizontal)
		ver := runStrategy(b, vi.Vertical)
		if i > 0 {
			continue
		}
		b.Logf("Table 2: shifters        hor %5d   ver %5d   (paper: 8187 / 6353)", hor.shifters, ver.shifters)
		b.Logf("Table 2: LS area         hor %5.2f%%  ver %5.2f%%  (paper: 31.5%% / 26.3%% of logic)",
			100*hor.part.ShifterAreaFrac(), 100*ver.part.ShifterAreaFrac())
		for _, pn := range []string{"A", "B", "C"} {
			k := map[string]int{"A": 3, "B": 2, "C": 1}[pn]
			hp, err := hor.flow.ScenarioPower(hor.part, k, benchPos(b, hor.flow, pn))
			if err != nil {
				b.Fatal(err)
			}
			vp, err := ver.flow.ScenarioPower(ver.part, k, benchPos(b, ver.flow, pn))
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("Table 2: LS power (pt %s) hor %5.2f%%  ver %5.2f%%  (paper: ~1%% / ~5%%)",
				pn, 100*hp.ShifterFrac(), 100*vp.ShifterFrac())
		}
		b.Logf("Table 2: timing degr.    hor %5.1f%%  ver %5.1f%%  (paper: 15%% / 8%%)",
			100*hor.degr, 100*ver.degr)
		b.ReportMetric(float64(hor.shifters), "hor_shifters")
		b.ReportMetric(float64(ver.shifters), "ver_shifters")
	}
}

// BenchmarkFig5TotalPower regenerates the normalized total-power
// comparison; BenchmarkFig6LeakagePower the leakage one.
func BenchmarkFig5TotalPower(b *testing.B) { benchFig56(b, false) }

// BenchmarkFig6LeakagePower regenerates the leakage comparison.
func BenchmarkFig6LeakagePower(b *testing.B) { benchFig56(b, true) }

func benchFig56(b *testing.B, leakage bool) {
	metric := func(r *power.Report) float64 {
		if leakage {
			return r.LeakMW
		}
		return r.TotalMW()
	}
	name := "Fig.5 total"
	if leakage {
		name = "Fig.6 leakage"
	}
	for i := 0; i < b.N; i++ {
		hor := runStrategy(b, vi.Horizontal)
		ver := runStrategy(b, vi.Vertical)
		if i > 0 {
			continue
		}
		b.Logf("%s: chip-wide high VDD = 1.000 (baseline)", name)
		var verAtC float64
		for _, pn := range []string{"A", "B", "C"} {
			k := map[string]int{"A": 3, "B": 2, "C": 1}[pn]
			for _, r := range []*strategyRun{hor, ver} {
				rep, err := r.flow.ScenarioPower(r.part, k, benchPos(b, r.flow, pn))
				if err != nil {
					b.Fatal(err)
				}
				ratio := metric(rep) / metric(r.baseline[pn])
				b.Logf("%s: %d VI %-10v (pt %s) = %.3f", name, k, r.part.Strategy, pn, ratio)
				if r == ver && pn == "C" {
					verAtC = ratio
				}
			}
		}
		b.ReportMetric(100*(1-verAtC), "ver_saving_at_C_%")
		if leakage {
			b.Logf("%s: paper: vertical below chip-wide even at 3 VI; horizontal above", name)
		} else {
			b.Logf("%s: paper: vertical saves 8%% (A) to 27%% (C)", name)
		}
	}
}

// --- Ablation benchmarks for the design choices in DESIGN.md ---

// BenchmarkAblationStartSide compares density-driven side selection
// against the opposite side for island 1.
func BenchmarkAblationStartSide(b *testing.B) {
	f := shared(b)
	for i := 0; i < b.N; i++ {
		auto, err := f.GenerateIslands(context.Background(), vi.Vertical)
		if err != nil {
			b.Fatal(err)
		}
		opposite := vi.Right
		if auto.StartSide == vi.Right {
			opposite = vi.Left
		}
		forced, err := vi.Generate(context.Background(), f.STA, &f.Cfg.Model, f.ScenarioPositions, vi.Options{
			Strategy: vi.Vertical, ClockPS: f.ClockPS, Derate: f.Derate,
			Samples: f.Cfg.VISamples, Seed: f.Cfg.Seed, ForceSide: &opposite,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		b.Logf("ablation start side: density-driven (%v) island1 = %d cells; forced %v island1 = %d cells",
			auto.StartSide, len(auto.Islands[0].Cells), opposite, len(forced.Islands[0].Cells))
		b.ReportMetric(float64(len(auto.Islands[0].Cells)), "auto_island1_cells")
		b.ReportMetric(float64(len(forced.Islands[0].Cells)), "forced_island1_cells")
	}
}

// BenchmarkAblationSensorBudget sweeps the Razor sensor budget and
// reports detection accuracy against the oracle.
func BenchmarkAblationSensorBudget(b *testing.B) {
	f := shared(b)
	tech := &f.NL.Lib.Tech
	resA := f.MC["A"]
	for i := 0; i < b.N; i++ {
		for _, budget := range []int{2, 6, 12, 24} {
			plan := razor.NewPlan(f.NL, resA, budget)
			match, chips := 0, 20
			for c := 0; c < chips; c++ {
				rng := stats.DeriveStream(404, fmt.Sprintf("%d/%d", budget, c))
				pos := f.Cfg.Model.DiagonalPositions()[c%4]
				lg := f.Cfg.Model.SampleChip(f.PL, pos, rng)
				scale := make([]float64, f.NL.NumCells())
				for j := range scale {
					scale[j] = tech.DelayScale(tech.VddLow, lg[j]) * f.Derate[j]
				}
				det := razor.Detect(f.STA, plan, f.ClockPS, scale)
				truth := razor.GroundTruth(f.STA.Run(f.ClockPS, scale))
				if det.Equal(truth) {
					match++
				}
			}
			if i == 0 {
				b.Logf("ablation sensor budget %2d/stage: %d sensors, accuracy %d/%d",
					budget, plan.NumSensors(), match, chips)
			}
		}
	}
}

// BenchmarkAblationPlacement compares the level-shifter demand of the
// min-cut placement against a random placement with the same island
// cuts: the cost of ignoring physical proximity, i.e. the paper's core
// argument for placement-aware generation.
func BenchmarkAblationPlacement(b *testing.B) {
	f := shared(b)
	for i := 0; i < b.N; i++ {
		part, err := f.GenerateIslands(context.Background(), vi.Vertical)
		if err != nil {
			b.Fatal(err)
		}
		mincut := vi.CountCrossings(f.NL, part.Region)

		// Random placement, same netlist, same cut fractions.
		rnd, err := place.Random(f.NL, f.Cfg.Place.Utilization, 99)
		if err != nil {
			b.Fatal(err)
		}
		region := make([]int32, f.NL.NumCells())
		for j := range region {
			region[j] = vi.RegionNone
			x, _ := rnd.Center(j)
			for _, isl := range part.Islands {
				if x >= isl.FromUM && x <= isl.ToUM {
					region[j] = int32(isl.Index)
					break
				}
			}
		}
		random := vi.CountCrossings(f.NL, region)
		if i > 0 {
			continue
		}
		b.Logf("ablation placement: min-cut needs %d shifters, random placement %d (%.1fx) — HPWL %.0f vs %.0f um",
			mincut, random, float64(random)/float64(mincut), f.PL.HPWL(), rnd.HPWL())
		b.ReportMetric(float64(mincut), "mincut_shifters")
		b.ReportMetric(float64(random), "random_shifters")
	}
}

// BenchmarkAblationSamples sweeps the Monte Carlo sample count and
// reports the stability of the execute-stage fit.
func BenchmarkAblationSamples(b *testing.B) {
	f := shared(b)
	for i := 0; i < b.N; i++ {
		for _, n := range []int{50, 100, 200, 400} {
			res, err := mc.Run(context.Background(), f.STA, &f.Cfg.Model, benchPos(b, f, "A"), mc.Options{
				Samples: n, Seed: 31, ClockPS: f.ClockPS, Derate: f.Derate,
			})
			if err != nil {
				b.Fatal(err)
			}
			d := res.PerStage[netlist.StageExecute]
			if i == 0 {
				b.Logf("ablation samples %4d: EX mu %7.1f sigma %5.1f chi2-p %.3f", n, d.Fit.Mu, d.Fit.Sigma, d.GOF.PValue)
			}
		}
	}
}

// --- Extension benchmarks beyond the paper's evaluation ---

// BenchmarkExtGlitchAwarePower re-estimates Table 1 with
// transition-density propagation (glitch power), the effect the
// paper's Modelsim-based flow captures but a cycle-based simulation
// misses. The estimate is an upper bound: the independence assumption
// overestimates activity in reconvergent arithmetic (the multiplier
// arrays), a known property of the method — the log reports both
// views so the gap is visible.
func BenchmarkExtGlitchAwarePower(b *testing.B) {
	f := shared(b)
	var est []float64
	var err error
	for i := 0; i < b.N; i++ {
		est, err = density.GlitchAwareActivity(f.NL, f.Activity)
		if err != nil {
			b.Fatal(err)
		}
	}
	simRep, err := f.Power(nil, benchPos(b, f, "D"))
	if err != nil {
		b.Fatal(err)
	}
	glitchRep, err := power.Analyze(power.Inputs{
		NL: f.NL, PL: f.PL, Activity: est, FreqMHz: f.FmaxMHz,
		LgateNM: f.SystematicLgate(benchPos(b, f, "D")),
	})
	if err != nil {
		b.Fatal(err)
	}
	share := func(rep *power.Report, unit string) float64 {
		for _, u := range rep.ByUnit {
			if u.Unit == unit {
				return 100 * u.TotalMW() / rep.TotalMW()
			}
		}
		return 0
	}
	b.Logf("glitch-aware power: total %.3f mW (cycle-based %.3f mW)", glitchRep.TotalMW(), simRep.TotalMW())
	b.Logf("glitch-aware power: regfile %.1f%% (cycle-based %.1f%%, paper 64%%)",
		share(glitchRep, "regfile"), share(simRep, "regfile"))
	b.Logf("glitch-aware power: execute %.1f%% (cycle-based %.1f%%, paper 17%%)",
		share(glitchRep, "execute"), share(simRep, "execute"))
	b.ReportMetric(share(glitchRep, "regfile"), "rf_power_%")
}

// BenchmarkExtYieldCurves produces the parametric yield-vs-period
// curves at each chip position, the classic SSTA output enabled by
// this flow (paper Section 2's statistical-design context).
func BenchmarkExtYieldCurves(b *testing.B) {
	f := shared(b)
	for i := 0; i < b.N; i++ {
		for _, pos := range f.Cfg.Model.DiagonalPositions() {
			res := f.MC[pos.Name]
			periods, yields := res.YieldCurve(f.ClockPS*0.98, f.ClockPS*1.16, 7)
			if i > 0 {
				continue
			}
			row := make([]string, len(periods))
			for k := range periods {
				row[k] = fmt.Sprintf("%.2f:%.0f%%", periods[k]/f.ClockPS, 100*yields[k])
			}
			b.Logf("yield @ %s (period/nominal : yield): %s", pos.Name, strings.Join(row, "  "))
		}
	}
	yA := f.MC["A"].Yield(f.ClockPS)
	b.ReportMetric(100*yA, "yield_at_A_%")
}

// BenchmarkExtEnergyComparison quantifies the paper's closing remark:
// VI designs run slower than the level-shifter-free chip-wide design,
// so at equal work the dynamic energy ratio matches the power ratio
// while the leakage energy grows with execution time — "the energy
// ratios between the different solutions would be similar to the
// power ratios".
func BenchmarkExtEnergyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ver := runStrategy(b, vi.Vertical)
		if i > 0 {
			continue
		}
		for _, pn := range []string{"A", "C"} {
			k := map[string]int{"A": 3, "C": 1}[pn]
			rep, err := ver.flow.ScenarioPower(ver.part, k, benchPos(b, ver.flow, pn))
			if err != nil {
				b.Fatal(err)
			}
			base := ver.baseline[pn]
			powerRatio := rep.TotalMW() / base.TotalMW()
			// Same work, longer runtime for the VI design: dynamic
			// energy scales with the power ratio, leakage energy
			// additionally with the slowdown.
			slowdown := 1 + ver.degr
			energyRatio := (rep.DynamicMW + rep.LeakMW*slowdown) / (base.DynamicMW + base.LeakMW)
			b.Logf("energy vs power ratio at %s (%d VI vertical): power %.3f, iso-work energy %.3f (slowdown %.1f%%)",
				pn, k, powerRatio, energyRatio, 100*ver.degr)
			if pn == "C" {
				b.ReportMetric(energyRatio, "energy_ratio_at_C")
			}
		}
	}
}

// BenchmarkExtCornerStrategy evaluates the paper's future-work item —
// a further cell-grouping strategy — against the two published ones:
// nested corner boxes grown from the densest corner.
func BenchmarkExtCornerStrategy(b *testing.B) {
	f := shared(b)
	for i := 0; i < b.N; i++ {
		for _, strat := range []vi.Strategy{vi.Vertical, vi.Horizontal, vi.Corner} {
			part, err := f.GenerateIslands(context.Background(), strat)
			if err != nil {
				b.Fatal(err)
			}
			crossings := vi.CountCrossings(f.NL, part.Region)
			cells := 0
			for _, isl := range part.Islands {
				cells += len(isl.Cells)
			}
			if i == 0 {
				b.Logf("strategy %-10v (from %v): %5d island cells, %4d shifters needed",
					strat, part.StartSide, cells, crossings)
			}
		}
	}
}
