package vipipe

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"vipipe/internal/mc"
	"vipipe/internal/obs"
	"vipipe/internal/pipeline"
	"vipipe/internal/yield"
)

// TestYieldSurfaceMatchesMCCharacterization pins the equivalence the
// shard engine is built on: a field sweep over the ladder positions
// A-D reproduces the mc.Run characterization's yield curves bit for
// bit — same per-sample RNG streams, same STA, same axis math — all
// the way through the JSON wire encoding. A multi-shard sweep must
// then match the single-shard one, because sample streams derive from
// the global sample index, not the shard.
func TestYieldSurfaceMatchesMCCharacterization(t *testing.T) {
	ctx := context.Background()
	cfg := TestConfig()
	store := pipeline.NewMemStore()

	// Reference: the flow graph's own Monte Carlo characterizations.
	g := NewGraph(cfg, store)
	positions := cfg.Model.DiagonalPositions()
	ids := []string{NodeAnalyze}
	for _, pos := range positions {
		ids = append(ids, NodeMC(pos.Name))
	}
	arts, err := g.Request(ctx, ids...)
	if err != nil {
		t.Fatal(err)
	}
	tm := arts[NodeAnalyze].(*Timing)
	axis := yield.CurveAxis{LoPS: 0.92 * tm.ClockPS, HiPS: 1.12 * tm.ClockPS, Points: 17}

	run := func(shards int) *yield.Surface {
		plan := yield.Plan{
			Positions: positions,
			Samples:   cfg.MCSamples,
			Shards:    shards,
			Seed:      cfg.Seed,
			Axis:      axis,
		}
		surf, err := RunYield(ctx, cfg, plan, store)
		if err != nil {
			t.Fatalf("RunYield(%d shards): %v", shards, err)
		}
		return surf
	}
	surf := run(1)

	if len(surf.Positions) != len(positions) {
		t.Fatalf("surface has %d positions; want %d", len(surf.Positions), len(positions))
	}
	for i, pos := range positions {
		res := arts[NodeMC(pos.Name)].(*mc.Result)
		periods, yields := res.YieldCurve(axis.LoPS, axis.HiPS, axis.Points)
		sp := surf.Positions[i]
		if sp.Name != pos.Name || sp.Samples != int64(res.Samples) {
			t.Fatalf("position %d = %s/%d samples; want %s/%d", i, sp.Name, sp.Samples, pos.Name, res.Samples)
		}
		// Bit-identity through the wire: marshalled float slices must
		// be byte-equal, not merely close.
		jsonEq(t, pos.Name+" periods", surf.PeriodsPS, periods)
		jsonEq(t, pos.Name+" yields", sp.Yields, yields)
	}

	// Re-sharding changes artifact boundaries, never statistics.
	surf4 := run(4)
	for i := range surf.Positions {
		a, b := surf.Positions[i], surf4.Positions[i]
		jsonEq(t, a.Name+" sharded yields", a.Yields, b.Yields)
		if a.MeanPS != b.MeanPS || a.StdPS != b.StdPS || a.MinPS != b.MinPS || a.MaxPS != b.MaxPS {
			t.Fatalf("%s: moments drift across sharding: %+v vs %+v", a.Name, a, b)
		}
		if b.Shards != 4 {
			t.Fatalf("%s: shards = %d; want 4", b.Name, b.Shards)
		}
	}
}

// TestYieldShardsPersistToDisk pins the durability half of the warm
// path: every field/* artifact — shards and surface — must survive a
// trip through the DiskStore. This is the regression guard for shard
// IDs drifting outside the store's safe character set ([a-zA-Z0-9._-]
// per path segment): DiskStore.Put is best-effort, so an illegal key
// doesn't fail the sweep, it just silently turns every re-sweep cold.
func TestYieldShardsPersistToDisk(t *testing.T) {
	ctx := context.Background()
	cfg := TestConfig()
	cfg.MCSamples = 40
	plan := yield.Plan{
		Grid:    yield.Grid{NX: 2, NY: 1},
		Samples: cfg.MCSamples,
		Shards:  2,
		Seed:    cfg.Seed,
		Axis:    yield.CurveAxis{Points: 5},
	}

	dir := t.TempDir()
	disk, err := pipeline.OpenDiskStore(dir, DiskCodecs())
	if err != nil {
		t.Fatal(err)
	}
	store := pipeline.NewTiered(pipeline.NewMemStore(), disk)
	if _, err := RunYield(ctx, cfg, plan, store); err != nil {
		t.Fatal(err)
	}

	// Every shard plus the surface must have landed on disk. A fresh
	// memory tier over the same disk store proves it by reading each
	// node back without recomputing.
	g, surfaceID, err := NewYieldGraph(cfg, plan, pipeline.NewTiered(pipeline.NewMemStore(), disk))
	if err != nil {
		t.Fatal(err)
	}
	positions, err := plan.ResolvePositions(&cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	var fieldIDs []string
	for _, pos := range positions {
		key := plan.PosKey(pos)
		for s := 0; s < plan.Shards; s++ {
			fieldIDs = append(fieldIDs, NodeFieldShard(pos.Name, key, s))
		}
	}
	fieldIDs = append(fieldIDs, surfaceID)
	for _, id := range fieldIDs {
		if _, _, ok := disk.Get(ctx, g.Key(id)); !ok {
			t.Errorf("artifact %s missing from disk store", id)
		}
	}
}

func jsonEq(t *testing.T, what string, got, want any) {
	t.Helper()
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatalf("%s: %s != %s", what, gb, wb)
	}
}

// TestYieldResweepRecomputesOnlyDirtyShards pins the warm-path
// contract: after a cold sweep, adding an overlay at one position
// re-keys (and recomputes) exactly that position's shards, while every
// other field/* node resolves from the store. The proof reads the
// pipeline's own node spans — cache=hit/miss attributes on a tracer.
func TestYieldResweepRecomputesOnlyDirtyShards(t *testing.T) {
	cfg := TestConfig()
	cfg.MCSamples = 40
	store := pipeline.NewMemStore()
	plan := yield.Plan{
		Grid:    yield.Grid{NX: 2, NY: 2},
		Samples: cfg.MCSamples,
		Shards:  2,
		Seed:    cfg.Seed,
		Axis:    yield.CurveAxis{Points: 5},
	}

	sweep := func(p yield.Plan) map[string]string {
		tr := obs.NewTracer("test", "yield-resweep")
		ctx := obs.WithTracer(context.Background(), tr)
		if _, err := RunYield(ctx, cfg, p, store); err != nil {
			t.Fatal(err)
		}
		cache := make(map[string]string)
		for _, s := range tr.Finish().Spans {
			if !strings.HasPrefix(s.Name, "field/") || strings.HasPrefix(s.Name, "field/surface/") {
				continue
			}
			for _, a := range s.Attrs {
				if a.Key == "cache" {
					cache[s.Name] = a.Value
				}
			}
		}
		return cache
	}

	cold := sweep(plan)
	if len(cold) != plan.NumShards() {
		t.Fatalf("cold sweep traced %d shard spans; want %d", len(cold), plan.NumShards())
	}
	for id, c := range cold {
		if c != "miss" {
			t.Fatalf("cold shard %s: cache=%s; want miss", id, c)
		}
	}

	dirty := plan
	dirty.Overlays = []yield.PosOverlay{{Pos: "r0c1", XMM: 2, YMM: 2, RMM: 3, DeltaFrac: 0.04}}
	warm := sweep(dirty)
	if len(warm) != plan.NumShards() {
		t.Fatalf("warm sweep traced %d shard spans; want %d", len(warm), plan.NumShards())
	}
	misses := 0
	for id, c := range warm {
		onDirtyPos := strings.HasPrefix(id, "field/r0c1-")
		if onDirtyPos && c != "miss" {
			t.Fatalf("dirty shard %s: cache=%s; want miss", id, c)
		}
		if !onDirtyPos && c != "hit" {
			t.Fatalf("clean shard %s: cache=%s; want hit", id, c)
		}
		if c == "miss" {
			misses++
		}
	}
	if misses != plan.Shards {
		t.Fatalf("warm sweep recomputed %d shards; want exactly the dirty position's %d", misses, plan.Shards)
	}
}
