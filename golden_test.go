package vipipe

import "testing"

// TestConfigHashGolden pins the content hashes that key every cached
// artifact ("<hash>/<node>"): the daemon's warm-cache behaviour and
// any on-disk store depend on these staying put, so a refactor that
// silently changes them (field rename, new field without a version
// bump, different serialization) must fail here, not in production.
//
// If a change intentionally alters the hash (adding a Config field is
// the usual cause), update the values AND call it out in the change
// description: every deployed cache goes cold.
func TestConfigHashGolden(t *testing.T) {
	seed7 := TestConfig()
	seed7.Seed = 7
	mc500 := DefaultConfig()
	mc500.MCSamples = 500
	golden := []struct {
		name string
		cfg  Config
		want string
	}{
		{"default", DefaultConfig(), "61190e8ea2d36328f4d40beb065f778c"},
		{"test", TestConfig(), "c3534cf3012b067bbd91a10f19abef4c"},
		{"test-seed7", seed7, "1107b343c3356096073b0bf1c7364bd0"},
		{"default-mc500", mc500, "37fefb256730ee0eda98981c077771d4"},
	}
	for _, g := range golden {
		if got := g.cfg.Hash(); got != g.want {
			t.Errorf("%s: Hash() = %s, want %s — cache keys changed, see test comment", g.name, got, g.want)
		}
	}
	// Sanity: distinct configs must not collide.
	seen := map[string]string{}
	for _, g := range golden {
		h := g.cfg.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %s and %s", prev, g.name)
		}
		seen[h] = g.name
	}
}
