// fir_power reproduces the paper's power-measurement methodology: the
// FIR filtering benchmark runs on the gate-level core against
// behavioral memories (the Modelsim step), per-net switching activity
// is back-annotated into the power model (the PrimePower step), and
// the per-unit breakdown of Table 1 comes out — plus the dual-Vdd
// comparison of running the same workload entirely at 1.2V.
//
// Run with:
//
//	go run ./examples/fir_power
package main

import (
	"context"
	"fmt"
	"log"

	"vipipe"
)

func main() {
	cfg := vipipe.TestConfig()
	flow := vipipe.New(cfg)
	ctx := context.Background()
	if err := flow.Run(ctx); err != nil {
		log.Fatal(err)
	}

	// Co-simulate the FIR benchmark; the flow verifies the filter
	// output against the reference machine, so a power number here
	// is backed by a functionally-correct run.
	if err := flow.SimulateWorkload(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FIR: %d samples x %d taps, %d cycles simulated\n\n",
		flow.FIR.N, flow.FIR.T, flow.FIR.Cycles)

	// Nominal power at 1.0V for a chip with no systematic penalty
	// (position D) — the Table 1 configuration.
	pos, err := flow.Position("D")
	if err != nil {
		log.Fatal(err)
	}
	low, err := flow.Power(nil, pos)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— all cells at 1.0V (Table 1):")
	fmt.Println(low)

	// The chip-wide 1.2V baseline the paper compares against.
	high, err := flow.ChipWidePower(pos)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— chip-wide 1.2V (the paper's brute-force compensation):")
	fmt.Println(high)

	fmt.Printf("chip-wide boost costs %.1f%% more total power and %.1f%% more leakage\n",
		100*(high.TotalMW()/low.TotalMW()-1), 100*(high.LeakMW/low.LeakMW-1))
}
