// custom_design applies the methodology to a design that is not the
// VEX core: a 3-stage pipelined multiply-accumulate datapath built
// from the structural generators. It shows that every substrate —
// placement, STA, the variation model, Monte Carlo characterization
// and voltage-island generation — works on any mapped netlist, not
// just the paper's processor.
//
// Run with:
//
//	go run ./examples/custom_design
package main

import (
	"context"
	"fmt"
	"log"

	"vipipe/internal/cell"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/rtl"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
)

// buildMAC emits a 16-bit MAC pipeline: stage 1 multiplies (tagged
// DECODE for reporting), stage 2 accumulates (EXECUTE), stage 3 holds
// the running sum (WRITEBACK).
func buildMAC(lib *cell.Library) *netlist.Netlist {
	b := netlist.NewBuilder("mac16", lib)
	x := b.InputWord("x", 16)
	y := b.InputWord("y", 16)

	restore := b.Scope(netlist.StageDecode, "mult")
	xr := b.DFFWord(x)
	yr := b.DFFWord(y)
	prod := rtl.ArrayMultiplier(b, xr, yr)
	restore()

	restore = b.Scope(netlist.StageExecute, "accum")
	prodR := b.DFFWord(prod)
	// The accumulator register must exist before the adder that
	// feeds it; create it late-bound through a placeholder.
	zero := b.Const(false)
	accQ := b.DFFWord(netlist.FanWord(zero, len(prodR)))
	sum, _ := rtl.RippleAdder(b, prodR, accQ, b.Const(false))
	for i, q := range accQ {
		b.NL.RewireInput(b.NL.Nets[q].Driver, 0, sum[i])
	}
	restore()

	restore = b.Scope(netlist.StageWriteback, "out")
	out := b.DFFWord(accQ)
	b.OutputWord(out)
	restore()
	return b.NL
}

func main() {
	lib := cell.Default65nm()
	nl := buildMAC(lib)
	if err := nl.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom design %q: %d cells\n", nl.Name, nl.NumCells())

	pl, err := place.Global(nl, place.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := sta.New(nl, pl)
	if err != nil {
		log.Fatal(err)
	}
	clock := analyzer.Run(1e9, nil).CritPS * 1.001
	fmt.Printf("placed %.0fx%.0fum, fmax %.1f MHz\n", pl.DieW, pl.DieH, sta.FmaxMHz(clock))

	// Characterize at the worst-case corner.
	model := variation.Default()
	pointA := model.DiagonalPositions()[0]
	ctx := context.Background()
	res, err := mc.Run(ctx, analyzer, &model, pointA, mc.Options{
		Samples: 150, Seed: 7, ClockPS: clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worst-case (point A) slack distributions:")
	for st, d := range res.PerStage {
		if st == netlist.StageNone {
			continue
		}
		fmt.Printf("  %-10v mu=%7.1fps sigma=%5.1fps P(viol)=%.3g\n", st, d.Fit.Mu, d.Fit.Sigma, d.ViolProb)
	}

	// One compensating island for the worst case.
	part, err := vi.Generate(ctx, analyzer, &model, []variation.Pos{pointA}, vi.Options{
		Strategy: vi.Vertical, ClockPS: clock, Samples: 40, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	isl := part.Islands[0]
	n, err := part.InsertShifters(pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("island: x in [%.0f, %.0f]um (%d cells), %d level shifters inserted\n",
		isl.FromUM, isl.ToUM, len(isl.Cells), n)
	if err := nl.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("netlist valid after insertion — flow complete")
}
