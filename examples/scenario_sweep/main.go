// scenario_sweep walks the chip diagonal of the paper's Fig. 2 (points
// A through D), runs the Monte Carlo SSTA at each position, and prints
// the violation-scenario ladder of Section 4.4 — then demonstrates
// post-silicon scenario detection: Razor sensors planned at the worst
// case are read on fresh virtual chips, and their verdicts are
// compared against a full-visibility oracle.
//
// Run with:
//
//	go run ./examples/scenario_sweep
package main

import (
	"context"
	"fmt"
	"log"

	"vipipe"
	"vipipe/internal/mc"
	"vipipe/internal/razor"
	"vipipe/internal/stats"
)

func main() {
	cfg := vipipe.TestConfig()
	flow := vipipe.New(cfg)
	if err := flow.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("design-time characterization (Section 4.4):")
	for _, pos := range cfg.Model.DiagonalPositions() {
		res := flow.MC[pos.Name]
		sc, stages := res.Classify(0)
		fmt.Printf("  point %s (%4.1f, %4.1f)mm: scenario %d  %v\n",
			pos.Name, pos.XMM, pos.YMM, sc, stages)
		for _, st := range mc.PipelineStages {
			d := res.PerStage[st]
			fmt.Printf("      %-10v mean slack %7.1f ps (sigma %5.1f)\n", st, d.Fit.Mu, d.Fit.Sigma)
		}
	}

	plan, err := flow.SensorPlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRazor plan: %d sensors (budget %d/stage), +%.0f um2 area\n",
		plan.NumSensors(), cfg.SensorBudget, plan.AreaOverheadUM2(flow.Lib))

	// Post-silicon testing: sample fresh chips at each position and
	// let the sensors decide how many islands to raise.
	fmt.Println("\npost-silicon detection on fresh chips:")
	tech := &flow.NL.Lib.Tech
	for _, pos := range cfg.Model.DiagonalPositions() {
		const chips = 12
		agree := 0
		histogram := map[int]int{}
		for c := 0; c < chips; c++ {
			rng := stats.DeriveStream(2026, fmt.Sprintf("chip/%s/%d", pos.Name, c))
			lg := cfg.Model.SampleChip(flow.PL, pos, rng)
			scale := make([]float64, flow.NL.NumCells())
			for i := range scale {
				scale[i] = tech.DelayScale(tech.VddLow, lg[i]) * flow.Derate[i]
			}
			det := razor.Detect(flow.STA, plan, flow.ClockPS, scale)
			truth := razor.GroundTruth(flow.STA.Run(flow.ClockPS, scale))
			if det.Equal(truth) {
				agree++
			}
			histogram[det.Scenario]++
		}
		fmt.Printf("  point %s: detected scenarios %v, oracle agreement %d/%d\n",
			pos.Name, histogram, agree, chips)
	}
}
