// Quickstart: build the VEX core, place it, run static timing, and
// print the headline numbers of the paper's Section 4.2 — the maximum
// frequency, the area breakdown (Table 1), and the critical path's
// composition through the forwarding unit and the ALU.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"vipipe"
	"vipipe/internal/netlist"
	"vipipe/internal/sta"
)

func main() {
	// The reduced core keeps this example under a second; swap in
	// vipipe.DefaultConfig() for the paper's full-size 32-bit
	// 4-issue core.
	cfg := vipipe.TestConfig()
	flow := vipipe.New(cfg)
	ctx := context.Background()

	if err := flow.Synthesize(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %q: %d cells, %d nets\n",
		flow.NL.Name, flow.NL.NumCells(), flow.NL.NumNets())

	if err := flow.Place(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed on a %.0fx%.0fum die (%d rows), HPWL %.0fum\n",
		flow.PL.DieW, flow.PL.DieH, flow.PL.Rows, flow.PL.HPWL())

	if err := flow.Analyze(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fmax %.1f MHz (clock %.0f ps)\n\n", flow.FmaxMHz, flow.ClockPS)

	// Area breakdown (Table 1, area column).
	fmt.Println(flow.NL.Stats())

	// Critical-path composition (Section 4.2: forwarding 22%, ALU 60%).
	rep := flow.STA.Run(flow.ClockPS, flow.Derate)
	ex := rep.PerStage[netlist.StageExecute]
	var worst sta.Endpoint
	for _, ep := range rep.Endpoints {
		if ep.Inst == ex.Endpoint {
			worst = ep
		}
	}
	path := flow.STA.CriticalPath(rep, worst, flow.Derate)
	br := sta.PathBreakdown(path)
	keys := make([]string, 0, len(br))
	for k := range br {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return br[keys[i]] > br[keys[j]] })
	fmt.Printf("execute-stage critical path (%d cells, %.0f ps):\n", len(path), worst.Arrival)
	for _, k := range keys {
		fmt.Printf("  %-16s %6.0f ps (%4.1f%%)\n", k, br[k], 100*br[k]/worst.Arrival)
	}
}
