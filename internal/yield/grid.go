package yield

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"vipipe/internal/flowerr"
	"vipipe/internal/variation"
)

// Grid is a dense NX×NY lattice of chip positions over the exposure
// field, enumerated row-major (row 0 at the chip bottom, column 0 at
// the left) so position order — and therefore every reduce — is
// deterministic.
type Grid struct {
	NX int
	NY int
}

// ParseGrid parses the "NXxNY" flag syntax shared by cmd/viyield and
// the field_sweep job kind ("16x16", "8X4").
func ParseGrid(s string) (Grid, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	parts := strings.Split(t, "x")
	if len(parts) != 2 {
		return Grid{}, flowerr.BadInputf("yield: grid %q not of the form NXxNY", s)
	}
	nx, err1 := strconv.Atoi(parts[0])
	ny, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || nx < 1 || ny < 1 {
		return Grid{}, flowerr.BadInputf("yield: grid %q not of the form NXxNY with positive dimensions", s)
	}
	return Grid{NX: nx, NY: ny}, nil
}

// String renders the flag syntax back.
func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.NX, g.NY) }

// NumPositions returns NX*NY.
func (g Grid) NumPositions() int { return g.NX * g.NY }

// Positions enumerates the grid over [0, spanMM] on both axes in
// row-major order. Names encode the lattice index ("r3c7"); a
// single-column (or -row) axis collapses to coordinate 0.
func (g Grid) Positions(spanMM float64) []variation.Pos {
	out := make([]variation.Pos, 0, g.NumPositions())
	for j := 0; j < g.NY; j++ {
		y := 0.0
		if g.NY > 1 {
			y = spanMM * float64(j) / float64(g.NY-1)
		}
		for i := 0; i < g.NX; i++ {
			x := 0.0
			if g.NX > 1 {
				x = spanMM * float64(i) / float64(g.NX-1)
			}
			out = append(out, variation.Pos{
				Name: fmt.Sprintf("r%dc%d", j, i),
				XMM:  x,
				YMM:  y,
			})
		}
	}
	return out
}

// PosOverlay is a localized Lgate disturbance at one grid position: a
// disc (chip-local millimeter coordinates) whose cells get an extra
// systematic gate-length delta. It models a local process excursion —
// and, operationally, it is the knob that dirties exactly one
// position's shards on a re-sweep.
type PosOverlay struct {
	// Pos names the grid position the overlay applies to.
	Pos string
	// XMM, YMM, RMM describe the disc in chip-local mm.
	XMM float64
	YMM float64
	RMM float64
	// DeltaFrac is the Lgate delta as a fraction of nominal
	// (e.g. 0.04 = +4% longer, slower gates inside the disc).
	DeltaFrac float64
}

// CurveAxis is the clock-period axis shared by every position's yield
// curve: Points equally spaced periods between LoPS and HiPS.
type CurveAxis struct {
	LoPS   float64
	HiPS   float64
	Points int
}

// Normalize mirrors the mc.Result.YieldCurve edge-case contract:
// inverted bounds swap, and a degenerate axis (Points <= 1 or
// LoPS == HiPS) collapses to a single point at LoPS.
func (a CurveAxis) Normalize() CurveAxis {
	if a.LoPS > a.HiPS {
		a.LoPS, a.HiPS = a.HiPS, a.LoPS
	}
	if a.Points <= 1 || a.LoPS == a.HiPS {
		a.Points = 1
		a.HiPS = a.LoPS
	}
	return a
}

// Resolve fills a zero axis from the flow clock — a bracket from 90%
// to 115% of the period, wide enough to see yield go from ~0 to 1 —
// then normalizes. Points defaults to 33.
func (a CurveAxis) Resolve(clockPS float64) CurveAxis {
	if a.LoPS == 0 && a.HiPS == 0 {
		a.LoPS = 0.90 * clockPS
		a.HiPS = 1.15 * clockPS
	}
	if a.Points == 0 {
		a.Points = 33
	}
	return a.Normalize()
}

// Periods materializes the period edges (the Histogram edge grid).
func (a CurveAxis) Periods() []float64 {
	a = a.Normalize()
	h := NewHistogram(a.LoPS, a.HiPS, a.Points)
	out := make([]float64, a.Points)
	for i := range out {
		out[i] = h.Edge(i)
	}
	return out
}

// Plan is the full specification of a field sweep. It deliberately
// lives outside vipipe.Config: the baseline artifacts (synth, place,
// analyze) are keyed by the config hash alone, so every plan over the
// same config shares them, and shard keys carry the plan's
// per-position content hash instead.
type Plan struct {
	Grid Grid
	// Positions overrides the grid enumeration with an explicit list
	// (the A-D equivalence suite uses this); empty means derive from
	// Grid over the model's chip span.
	Positions []variation.Pos
	// Overlays lists local disturbances, at most one per position
	// (a sorted slice, not a map, so plan hashing is deterministic).
	Overlays []PosOverlay
	// Samples is the Monte Carlo sample count per position.
	Samples int
	// Shards is the number of shard artifacts each position's samples
	// are cut into.
	Shards int
	// Seed is the root seed; per-sample streams derive from it by
	// global sample index, so the draw sequence is shard-invariant.
	Seed int64
	// Axis is the yield-curve period axis; a zero LoPS/HiPS resolves
	// from the flow clock at compute time.
	Axis CurveAxis
}

// Validate checks the plan's shape.
func (p Plan) Validate() error {
	if len(p.Positions) == 0 && (p.Grid.NX < 1 || p.Grid.NY < 1) {
		return flowerr.BadInputf("yield: plan needs a grid (got %dx%d) or explicit positions", p.Grid.NX, p.Grid.NY)
	}
	if p.Samples < 2 {
		return flowerr.BadInputf("yield: plan needs at least 2 samples per position, got %d", p.Samples)
	}
	if p.Shards < 1 {
		return flowerr.BadInputf("yield: plan needs at least 1 shard, got %d", p.Shards)
	}
	if p.Shards > p.Samples {
		return flowerr.BadInputf("yield: %d shards exceed %d samples per position", p.Shards, p.Samples)
	}
	if p.Axis.Points < 0 {
		return flowerr.BadInputf("yield: negative axis points %d", p.Axis.Points)
	}
	seen := make(map[string]bool, len(p.Overlays))
	for _, ov := range p.Overlays {
		if seen[ov.Pos] {
			return flowerr.BadInputf("yield: duplicate overlay for position %q", ov.Pos)
		}
		seen[ov.Pos] = true
		if ov.RMM <= 0 {
			return flowerr.BadInputf("yield: overlay at %q needs a positive radius, got %g", ov.Pos, ov.RMM)
		}
	}
	return nil
}

// ResolvePositions returns the sweep's position list: the explicit
// override when set, otherwise the grid enumerated over the model's
// chip span. Every overlay must name a resolved position.
func (p Plan) ResolvePositions(m *variation.Model) ([]variation.Pos, error) {
	positions := p.Positions
	if len(positions) == 0 {
		positions = p.Grid.Positions(m.ChipMM)
	}
	known := make(map[string]bool, len(positions))
	for _, pos := range positions {
		if known[pos.Name] {
			return nil, flowerr.BadInputf("yield: duplicate position name %q in plan", pos.Name)
		}
		known[pos.Name] = true
	}
	for _, ov := range p.Overlays {
		if !known[ov.Pos] {
			return nil, flowerr.BadInputf("yield: overlay names unknown position %q", ov.Pos)
		}
	}
	return positions, nil
}

// OverlayFor returns the overlay at a position, or nil.
func (p Plan) OverlayFor(name string) *PosOverlay {
	for i := range p.Overlays {
		if p.Overlays[i].Pos == name {
			return &p.Overlays[i]
		}
	}
	return nil
}

// PosKey is the content hash of everything that determines one
// position's shard artifacts: coordinates, overlay, sampling shape,
// seed and axis. Editing one position's overlay changes only that
// position's keys, which is exactly the dirty-shard set of a warm
// re-sweep.
func (p Plan) PosKey(pos variation.Pos) string {
	h := sha256.New()
	fmt.Fprintf(h, "pos/%s/%v/%v\n", pos.Name, pos.XMM, pos.YMM)
	if ov := p.OverlayFor(pos.Name); ov != nil {
		fmt.Fprintf(h, "ov/%v/%v/%v/%v\n", ov.XMM, ov.YMM, ov.RMM, ov.DeltaFrac)
	}
	fmt.Fprintf(h, "mc/%d/%d/%d\n", p.Samples, p.Shards, p.Seed)
	fmt.Fprintf(h, "axis/%v/%v/%d\n", p.Axis.LoPS, p.Axis.HiPS, p.Axis.Points)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// Hash is the content hash of the whole plan, the suffix of the
// surface node's key.
func (p Plan) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "grid/%d/%d\n", p.Grid.NX, p.Grid.NY)
	for _, pos := range p.Positions {
		fmt.Fprintf(h, "pos/%s/%v/%v\n", pos.Name, pos.XMM, pos.YMM)
	}
	for _, ov := range p.Overlays {
		fmt.Fprintf(h, "ov/%s/%v/%v/%v/%v\n", ov.Pos, ov.XMM, ov.YMM, ov.RMM, ov.DeltaFrac)
	}
	fmt.Fprintf(h, "mc/%d/%d/%d\n", p.Samples, p.Shards, p.Seed)
	fmt.Fprintf(h, "axis/%v/%v/%d\n", p.Axis.LoPS, p.Axis.HiPS, p.Axis.Points)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// NumShards returns the total shard-node count of the plan.
func (p Plan) NumShards() int {
	n := len(p.Positions)
	if n == 0 {
		n = p.Grid.NumPositions()
	}
	return n * p.Shards
}

// ShardRange splits samples into shards as evenly as possible and
// returns the half-open global sample range [start, start+count) of
// shard s. Early shards absorb the remainder, so ranges tile the
// sample space exactly.
func ShardRange(samples, shards, s int) (start, count int) {
	q, r := samples/shards, samples%shards
	start = s * q
	if s < r {
		start += s
		count = q + 1
	} else {
		start += r
		count = q
	}
	return start, count
}
