// Package yield runs Monte Carlo SSTA over a dense grid of
// exposure-field positions — the full 28×28mm field of the paper's
// Fig. 2, not just the four hand-picked diagonal chips — and reduces
// the samples into yield-vs-frequency surfaces.
//
// The package is built around shardability: a position's sample range
// is cut into shards, each shard folds its samples into streaming
// accumulators (Moments, Histogram, ShardStat), and the accumulators
// obey an exact merge law — folding any grouping of shards in any
// order produces bit-identical results. That law is what lets each
// shard become an independently cached artifact node in
// internal/pipeline: a warm re-sweep after a one-position tweak
// recomputes only that position's shards and re-folds the rest from
// the store, with no numeric drift between the two paths.
//
// Bit-exactness comes from integer arithmetic: sums accumulate in
// 128-bit fixed point (Fixed128) and histograms count in int64 bins,
// so merging is integer addition — associative and commutative by
// construction. Derived floats (mean, sigma, yields) are computed
// from the exact integers only at read time.
package yield

import (
	"math"
	"math/bits"
	"sort"

	"vipipe/internal/flowerr"
)

// fixedShift is the number of fractional bits of Fixed128: 2^-32 ps
// resolution, with 2^63 integer headroom — enough for 2^40 samples of
// million-ps critical paths.
const fixedShift = 32

// Fixed128 is a 128-bit two's-complement fixed-point accumulator with
// 32 fractional bits. Addition is exact and therefore associative and
// commutative, which float64 addition is not; it is the primitive that
// makes shard merging order-independent at the bit level.
type Fixed128 struct {
	Hi int64  // high 64 bits (signed)
	Lo uint64 // low 64 bits
}

// FixedFromFloat rounds v to the nearest representable fixed-point
// value. Inputs beyond ±2^31 (far outside any ps-scale statistic)
// saturate at the int64 conversion range; NaN contributes zero.
func FixedFromFloat(v float64) Fixed128 {
	scaled := math.Round(v * (1 << fixedShift))
	var n int64
	switch {
	case math.IsNaN(scaled):
		n = 0
	case scaled >= math.MaxInt64:
		n = math.MaxInt64
	case scaled <= math.MinInt64:
		n = math.MinInt64
	default:
		n = int64(scaled)
	}
	return Fixed128{Hi: n >> 63, Lo: uint64(n)}
}

// Add returns the exact 128-bit sum.
func (a Fixed128) Add(b Fixed128) Fixed128 {
	lo, carry := bits.Add64(a.Lo, b.Lo, 0)
	return Fixed128{Hi: a.Hi + b.Hi + int64(carry), Lo: lo}
}

// Float64 converts back to float64 (rounding once, at read time).
func (a Fixed128) Float64() float64 {
	hi, lo := a.Hi, a.Lo
	neg := false
	if hi < 0 {
		// Negate the 128-bit value, convert the magnitude.
		lo2, borrow := bits.Sub64(0, lo, 0)
		hi = -hi - int64(borrow)
		lo = lo2
		neg = true
	}
	v := (float64(uint64(hi))*0x1p64 + float64(lo)) / (1 << fixedShift)
	if neg {
		v = -v
	}
	return v
}

// IsZero reports whether the accumulator is exactly zero.
func (a Fixed128) IsZero() bool { return a.Hi == 0 && a.Lo == 0 }

// Moments is a streaming first/second-moment accumulator over float64
// observations. Sum and SumSq are exact fixed-point integers, so
// Merge is associative and commutative bit-for-bit; Min/Max are exact
// comparisons. Count 0 means empty (Min/Max unset).
type Moments struct {
	Count int64
	Sum   Fixed128
	SumSq Fixed128
	Min   float64
	Max   float64
}

// Observe folds one value in.
func (m *Moments) Observe(v float64) {
	if m.Count == 0 || v < m.Min {
		m.Min = v
	}
	if m.Count == 0 || v > m.Max {
		m.Max = v
	}
	m.Count++
	m.Sum = m.Sum.Add(FixedFromFloat(v))
	m.SumSq = m.SumSq.Add(FixedFromFloat(v * v))
}

// Merge returns the combination of two accumulators: the result is
// identical to having observed both value sets in any order.
func (m Moments) Merge(o Moments) Moments {
	if m.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return m
	}
	out := Moments{
		Count: m.Count + o.Count,
		Sum:   m.Sum.Add(o.Sum),
		SumSq: m.SumSq.Add(o.SumSq),
		Min:   math.Min(m.Min, o.Min),
		Max:   math.Max(m.Max, o.Max),
	}
	return out
}

// Mean returns the sample mean (0 when empty).
func (m Moments) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum.Float64() / float64(m.Count)
}

// Std returns the population standard deviation (0 when empty). It is
// a deterministic function of the exact integer sums, so merged and
// streamed accumulators report the same value to the last bit.
func (m Moments) Std() float64 {
	if m.Count == 0 {
		return 0
	}
	mean := m.Mean()
	v := m.SumSq.Float64()/float64(m.Count) - mean*mean
	if v < 0 {
		v = 0 // rounding guard: variance is non-negative
	}
	return math.Sqrt(v)
}

// Histogram counts observations against the period axis of a yield
// curve: bin i counts values v with Edge(i-1) < v <= Edge(i), Over
// counts values above the last edge. The edges replicate
// mc.Result.YieldCurve's period grid exactly, so the cumulative
// counts divided by the total reproduce Yield(p) bit-for-bit.
type Histogram struct {
	LoPS float64
	HiPS float64
	Bins []int64
	Over int64
}

// NewHistogram allocates a histogram over [loPS, hiPS] with n edges
// (n must be >= 1; callers normalize via CurveAxis first).
func NewHistogram(loPS, hiPS float64, n int) Histogram {
	if n < 1 {
		n = 1
	}
	return Histogram{LoPS: loPS, HiPS: hiPS, Bins: make([]int64, n)}
}

// Edge returns the i-th period edge, the same expression
// mc.Result.YieldCurve evaluates: lo + (hi-lo)*i/(n-1), degenerating
// to lo for a single-point axis.
func (h *Histogram) Edge(i int) float64 {
	n := len(h.Bins)
	if n <= 1 {
		return h.LoPS
	}
	return h.LoPS + (h.HiPS-h.LoPS)*float64(i)/float64(n-1)
}

// Observe counts one critical-path sample. The bin predicate is the
// exact comparison mc.Result.Yield uses (c <= period).
func (h *Histogram) Observe(c float64) {
	n := len(h.Bins)
	i := sort.Search(n, func(i int) bool { return c <= h.Edge(i) })
	if i == n {
		h.Over++
		return
	}
	h.Bins[i]++
}

// Total returns the number of observations folded in.
func (h *Histogram) Total() int64 {
	t := h.Over
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// SameAxis reports whether two histograms share an identical axis.
func (h *Histogram) SameAxis(o *Histogram) bool {
	return h.LoPS == o.LoPS && h.HiPS == o.HiPS && len(h.Bins) == len(o.Bins)
}

// Merge returns the bin-wise sum. It never aliases either input's
// storage — merged results stay safe next to cached shard artifacts.
func (h Histogram) Merge(o Histogram) (Histogram, error) {
	if !h.SameAxis(&o) {
		return Histogram{}, flowerr.BadInputf(
			"yield: histogram axis mismatch: [%g,%g]x%d vs [%g,%g]x%d",
			h.LoPS, h.HiPS, len(h.Bins), o.LoPS, o.HiPS, len(o.Bins))
	}
	out := Histogram{LoPS: h.LoPS, HiPS: h.HiPS, Bins: make([]int64, len(h.Bins)), Over: h.Over + o.Over}
	for i := range h.Bins {
		out.Bins[i] = h.Bins[i] + o.Bins[i]
	}
	return out, nil
}

// Yields returns the yield-vs-period curve: for each edge, the
// fraction of observations at or below it. With the same axis and
// samples this is bit-identical to evaluating mc.Result.YieldCurve,
// because both divide an integer count by the integer total.
func (h *Histogram) Yields() []float64 {
	out := make([]float64, len(h.Bins))
	total := h.Total()
	if total == 0 {
		return out
	}
	var cum int64
	for i, b := range h.Bins {
		cum += b
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// ShardStat is the artifact of one field/<pos>/<shard> node: the
// accumulated critical-path statistics of one shard's samples at one
// grid position, plus (when the plan overlays a local disturbance
// there) the same statistics for the perturbed chip. Merging the
// shards of a position in any grouping or order yields the identical
// position statistic.
type ShardStat struct {
	// Key is the position content key (Plan.PosKey); Merge refuses to
	// fold stats with different keys, which would silently mix
	// positions or stale plans.
	Key string
	// Pos is the grid position name.
	Pos string
	// Shards counts how many shard stats were folded in.
	Shards int
	// Samples counts the folded Monte Carlo samples.
	Samples int64

	Crit Moments
	Hist Histogram

	// HasOverlay marks that OvCrit/OvHist carry the overlay-perturbed
	// statistics (computed via incremental re-timing of the disturbed
	// cells).
	HasOverlay bool
	OvCrit     Moments
	OvHist     Histogram
}

// Merge folds another shard of the same position. The operation is
// associative and commutative: every field is an exact integer sum,
// an exact min/max, or an invariant checked for equality.
func (s ShardStat) Merge(o ShardStat) (ShardStat, error) {
	if s.Key != o.Key {
		return ShardStat{}, flowerr.BadInputf("yield: merging shard stats of different keys %q vs %q", s.Key, o.Key)
	}
	if s.HasOverlay != o.HasOverlay {
		return ShardStat{}, flowerr.BadInputf("yield: merging shard stats with mismatched overlay presence at %q", s.Pos)
	}
	hist, err := s.Hist.Merge(o.Hist)
	if err != nil {
		return ShardStat{}, err
	}
	out := ShardStat{
		Key:        s.Key,
		Pos:        s.Pos,
		Shards:     s.Shards + o.Shards,
		Samples:    s.Samples + o.Samples,
		Crit:       s.Crit.Merge(o.Crit),
		Hist:       hist,
		HasOverlay: s.HasOverlay,
	}
	if s.HasOverlay {
		ovHist, err := s.OvHist.Merge(o.OvHist)
		if err != nil {
			return ShardStat{}, err
		}
		out.OvCrit = s.OvCrit.Merge(o.OvCrit)
		out.OvHist = ovHist
	}
	return out, nil
}

// MergeShards folds a slice of shard stats left to right. Order does
// not affect the result (see Merge); a fixed order keeps reduce nodes
// trivially deterministic anyway.
func MergeShards(stats []*ShardStat) (ShardStat, error) {
	if len(stats) == 0 {
		return ShardStat{}, flowerr.BadInputf("yield: no shard stats to merge")
	}
	acc := *stats[0]
	for _, s := range stats[1:] {
		var err error
		acc, err = acc.Merge(*s)
		if err != nil {
			return ShardStat{}, err
		}
	}
	return acc, nil
}
