package yield

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// draws returns a deterministic pseudo-random critical-path sample
// set: values around 4000ps with occasional outliers past the axis.
func draws(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 4000 + 600*rng.NormFloat64()
	}
	return out
}

func TestFixed128RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 4096.25, -4096.25, 1e9, -1e9, 0.0000001} {
		got := FixedFromFloat(v).Float64()
		if math.Abs(got-v) > 1.0/(1<<fixedShift) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if !FixedFromFloat(math.NaN()).IsZero() {
		t.Error("NaN should contribute zero")
	}
}

func TestFixed128AddExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var acc Fixed128
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := math.Round((rng.Float64()*2000-1000)*(1<<fixedShift)) / (1 << fixedShift)
		acc = acc.Add(FixedFromFloat(v))
		sum += v
	}
	if got := acc.Float64(); math.Abs(got-sum) > 1e-3 {
		t.Fatalf("accumulated %v, float sum %v", got, sum)
	}
	// Negative totals convert correctly through the two's-complement path.
	neg := FixedFromFloat(-123456.75)
	if got := neg.Float64(); got != -123456.75 {
		t.Fatalf("negative conversion: %v", got)
	}
}

// TestMomentsMergeGroupingInvariance is the heart of the shard design:
// any partition of the observation stream, merged in any order, must
// reproduce the streamed accumulator field-for-field at the bit level.
func TestMomentsMergeGroupingInvariance(t *testing.T) {
	vals := draws(42, 5000)
	var want Moments
	for _, v := range vals {
		want.Observe(v)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		// Random contiguous partition.
		var parts []Moments
		for lo := 0; lo < len(vals); {
			hi := lo + 1 + rng.Intn(900)
			if hi > len(vals) {
				hi = len(vals)
			}
			var m Moments
			for _, v := range vals[lo:hi] {
				m.Observe(v)
			}
			parts = append(parts, m)
			lo = hi
		}
		// Merge in shuffled order (associative + commutative law).
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		got := parts[0]
		for _, p := range parts[1:] {
			got = got.Merge(p)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged %+v != streamed %+v", trial, got, want)
		}
		if got.Mean() != want.Mean() || got.Std() != want.Std() {
			t.Fatalf("trial %d: derived stats differ", trial)
		}
	}
}

// TestHistogramMatchesDirectYield cross-checks the binned cumulative
// yields against the direct mc.Result.Yield computation (count of
// c <= p over total) on the same sample set — bit-identical.
func TestHistogramMatchesDirectYield(t *testing.T) {
	vals := draws(7, 3000)
	h := NewHistogram(3000, 5500, 33)
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Total() != int64(len(vals)) {
		t.Fatalf("total %d != %d", h.Total(), len(vals))
	}
	yields := h.Yields()
	for i := range yields {
		p := h.Edge(i)
		met := 0
		for _, c := range vals {
			if c <= p {
				met++
			}
		}
		direct := float64(met) / float64(len(vals))
		if math.Float64bits(yields[i]) != math.Float64bits(direct) {
			t.Fatalf("edge %d (%.3f): yields %v != direct %v", i, p, yields[i], direct)
		}
	}
}

func TestHistogramMergeRejectsAxisMismatch(t *testing.T) {
	a := NewHistogram(0, 10, 4)
	b := NewHistogram(0, 11, 4)
	if _, err := a.Merge(b); err == nil {
		t.Error("axis mismatch accepted")
	}
	c := NewHistogram(0, 10, 5)
	if _, err := a.Merge(c); err == nil {
		t.Error("bin-count mismatch accepted")
	}
}

func TestHistogramMergeDoesNotAliasBins(t *testing.T) {
	a := NewHistogram(0, 10, 4)
	b := NewHistogram(0, 10, 4)
	a.Observe(1)
	b.Observe(2)
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	m.Bins[0] = 99
	if a.Bins[0] == 99 || b.Bins[0] == 99 {
		t.Error("merge aliased an input's bins")
	}
}

func shardOf(key string, vals []float64, overlay bool) *ShardStat {
	s := &ShardStat{
		Key:        key,
		Pos:        "r0c0",
		Shards:     1,
		Hist:       NewHistogram(3000, 5500, 17),
		HasOverlay: overlay,
	}
	if overlay {
		s.OvHist = NewHistogram(3000, 5500, 17)
	}
	for _, v := range vals {
		s.Samples++
		s.Crit.Observe(v)
		s.Hist.Observe(v)
		if overlay {
			s.OvCrit.Observe(v * 1.01)
			s.OvHist.Observe(v * 1.01)
		}
	}
	return s
}

func TestShardStatMergeRejectsMismatches(t *testing.T) {
	a := shardOf("k1", draws(1, 50), false)
	b := shardOf("k2", draws(2, 50), false)
	if _, err := a.Merge(*b); err == nil {
		t.Error("key mismatch accepted")
	}
	c := shardOf("k1", draws(3, 50), true)
	if _, err := a.Merge(*c); err == nil {
		t.Error("overlay-presence mismatch accepted")
	}
	if _, err := MergeShards(nil); err == nil {
		t.Error("empty merge accepted")
	}
}

// TestShardStatMergeGroupingInvariance extends the merge law to the
// full shard artifact, overlays included: any grouping tree over any
// permutation folds to the identical struct.
func TestShardStatMergeGroupingInvariance(t *testing.T) {
	vals := draws(11, 4000)
	rng := rand.New(rand.NewSource(17))
	for _, overlay := range []bool{false, true} {
		// Reference: one shard over everything.
		want := *shardOf("k", vals, overlay)
		for trial := 0; trial < 10; trial++ {
			var shards []*ShardStat
			for lo := 0; lo < len(vals); {
				hi := lo + 1 + rng.Intn(700)
				if hi > len(vals) {
					hi = len(vals)
				}
				shards = append(shards, shardOf("k", vals[lo:hi], overlay))
				lo = hi
			}
			rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
			// Random grouping: repeatedly merge adjacent pairs.
			for len(shards) > 1 {
				i := rng.Intn(len(shards) - 1)
				m, err := shards[i].Merge(*shards[i+1])
				if err != nil {
					t.Fatal(err)
				}
				shards[i] = &m
				shards = append(shards[:i+1], shards[i+2:]...)
			}
			got := *shards[0]
			// Shards counts provenance, not statistics: normalize it
			// before demanding bit equality of the payload.
			got.Shards = want.Shards
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("overlay=%v trial %d: grouped merge differs from streamed", overlay, trial)
			}
		}
	}
}
