package yield

import (
	"context"
	"fmt"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
	"vipipe/internal/place"
	"vipipe/internal/sta"
	"vipipe/internal/stats"
	"vipipe/internal/variation"
)

// ShardInput carries everything one shard computation needs. The
// kernel must be exclusive to the call (kernels are not concurrent);
// every other field is shared read-only state.
type ShardInput struct {
	// Kernel is the SoA timing engine over the placed netlist.
	Kernel *sta.Kernel
	// PL locates each cell for the systematic variation map.
	PL *place.Placement
	// Model is the process-variation model.
	Model *variation.Model
	// Tech scales gate length into delay.
	Tech *cell.Tech
	// Pos is the chip position on the exposure field.
	Pos variation.Pos
	// Overlay, when non-nil, is the local disturbance whose perturbed
	// statistics the shard also accumulates (via incremental
	// re-timing of the disc cells).
	Overlay *PosOverlay
	// Key is the position content key stamped into the stat.
	Key string
	// Shard is the shard index (attribution only).
	Shard int
	// Start and Count are the global sample range (ShardRange).
	// Sample k draws from the stream "mc/<pos>/<k>" — the exact
	// stream mc.Run uses — so shard statistics are invariant under
	// re-sharding and bit-compatible with the A-D characterizations.
	Start int
	Count int
	// Seed is the root seed the per-sample streams derive from.
	Seed int64
	// Derate composes the slack-recovery factors (nil = none).
	Derate []float64
	// ClockPS is the flow clock the endpoint margins are taken at.
	ClockPS float64
	// Axis is the resolved period axis of the yield histograms.
	Axis CurveAxis
}

// ComputeShard runs the shard's Monte Carlo samples through the
// kernel and folds them into a ShardStat. The per-sample recipe —
// stream derivation, gate-length draws, delay scaling, endpoint
// arithmetic — replicates mc.Run sample for sample, so a one-shard
// sweep reproduces mc.Run's critical-path distribution bit-for-bit.
//
// Cancellation is checked at every sample boundary; a cancelled shard
// returns an error rather than a partial stat, because merge
// invariance requires every shard to cover its exact sample range.
func ComputeShard(ctx context.Context, in ShardInput) (*ShardStat, error) {
	n := in.Kernel.NumCells()
	if in.Derate != nil && len(in.Derate) != n {
		return nil, flowerr.BadInputf("yield: derate length %d != %d cells", len(in.Derate), n)
	}
	if in.ClockPS <= 0 {
		return nil, flowerr.BadInputf("yield: clock period %g must be positive", in.ClockPS)
	}
	axis := in.Axis.Normalize()

	ctx, span := obs.Start(ctx, "yield.shard")
	defer span.End()
	span.SetAttr("pos", in.Pos.Name)
	span.SetAttr("shard", in.Shard)
	span.SetAttr("samples", in.Count)

	// Per-shard invariants, hoisted out of the sample loop: the
	// systematic gate-length map at this position (the random draw
	// adds onto it with the same float ops SampleChip uses) and the
	// fixed-supply delay scaler.
	sysNM := make([]float64, n)
	for i := 0; i < n; i++ {
		cx, cy := in.PL.Center(i)
		sysNM[i] = in.Model.SystematicLgateNM(in.Pos.XMM+cx/1000, in.Pos.YMM+cy/1000)
	}
	scaler := in.Tech.DelayScaler(in.Tech.VddLow)
	sigma := in.Model.RndSigmaNM()

	// The overlay's dirty set: cells inside the disc, chip-local mm.
	var dirty []int
	deltaNM := 0.0
	if in.Overlay != nil {
		deltaNM = in.Model.LnomNM * in.Overlay.DeltaFrac
		r2 := in.Overlay.RMM * in.Overlay.RMM
		for i := 0; i < n; i++ {
			cx, cy := in.PL.Center(i)
			dx := cx/1000 - in.Overlay.XMM
			dy := cy/1000 - in.Overlay.YMM
			if dx*dx+dy*dy <= r2 {
				dirty = append(dirty, i)
			}
		}
		span.SetAttr("overlay_cells", len(dirty))
	}

	stat := &ShardStat{
		Key:        in.Key,
		Pos:        in.Pos.Name,
		Shards:     1,
		Hist:       NewHistogram(axis.LoPS, axis.HiPS, axis.Points),
		HasOverlay: in.Overlay != nil,
	}
	if stat.HasOverlay {
		stat.OvHist = NewHistogram(axis.LoPS, axis.HiPS, axis.Points)
	}

	lg := make([]float64, n)
	scale := make([]float64, n)
	for k := in.Start; k < in.Start+in.Count; k++ {
		if err := ctx.Err(); err != nil {
			return nil, flowerr.Cancelledf(
				"yield: shard %s/%d cancelled after %d/%d samples: %w",
				in.Pos.Name, in.Shard, stat.Samples, in.Count, err)
		}
		rng := stats.DeriveStream(in.Seed, fmt.Sprintf("mc/%s/%d", in.Pos.Name, k))
		for i := 0; i < n; i++ {
			lg[i] = sysNM[i] + rng.Normal(0, sigma)
		}
		for i := 0; i < n; i++ {
			s := scaler(lg[i])
			if in.Derate != nil {
				s *= in.Derate[i]
			}
			scale[i] = s
		}
		crit := in.Kernel.Run(in.ClockPS, scale)
		stat.Samples++
		stat.Crit.Observe(crit)
		stat.Hist.Observe(crit)

		if len(dirty) > 0 || (in.Overlay != nil && deltaNM == 0) {
			for _, i := range dirty {
				s := scaler(lg[i] + deltaNM)
				if in.Derate != nil {
					s *= in.Derate[i]
				}
				scale[i] = s
			}
			ovCrit := in.Kernel.Rerun(in.ClockPS, scale, dirty)
			stat.OvCrit.Observe(ovCrit)
			stat.OvHist.Observe(ovCrit)
		} else if in.Overlay != nil {
			// Disc misses every cell: the perturbed chip is the chip.
			stat.OvCrit.Observe(crit)
			stat.OvHist.Observe(crit)
		}
	}
	span.SetAttr("completed", stat.Samples)
	return stat, nil
}
