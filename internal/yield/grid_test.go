package yield

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"vipipe/internal/variation"
)

func TestParseGrid(t *testing.T) {
	for _, tc := range []struct {
		in     string
		nx, ny int
	}{
		{"16x16", 16, 16}, {"8X4", 8, 4}, {" 1x3 ", 1, 3},
	} {
		g, err := ParseGrid(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if g.NX != tc.nx || g.NY != tc.ny {
			t.Errorf("%q -> %dx%d", tc.in, g.NX, g.NY)
		}
	}
	for _, bad := range []string{"", "16", "0x4", "4x-1", "axb", "4x4x4"} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestGridPositionsRowMajor(t *testing.T) {
	g := Grid{NX: 3, NY: 2}
	ps := g.Positions(14)
	if len(ps) != 6 {
		t.Fatalf("got %d positions", len(ps))
	}
	// Row-major: row 0 first, x sweeping left to right.
	if ps[0].Name != "r0c0" || ps[1].Name != "r0c1" || ps[3].Name != "r1c0" {
		t.Errorf("order: %v %v %v", ps[0].Name, ps[1].Name, ps[3].Name)
	}
	if ps[2].XMM != 14 || ps[2].YMM != 0 {
		t.Errorf("r0c2 at (%g,%g)", ps[2].XMM, ps[2].YMM)
	}
	if ps[5].XMM != 14 || ps[5].YMM != 14 {
		t.Errorf("r1c2 at (%g,%g)", ps[5].XMM, ps[5].YMM)
	}
	// Degenerate axes collapse to 0.
	one := Grid{NX: 1, NY: 1}.Positions(14)
	if one[0].XMM != 0 || one[0].YMM != 0 {
		t.Errorf("1x1 at (%g,%g)", one[0].XMM, one[0].YMM)
	}
}

func TestShardRangeTilesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		samples := 1 + rng.Intn(5000)
		shards := 1 + rng.Intn(64)
		if shards > samples {
			shards = samples
		}
		next := 0
		for s := 0; s < shards; s++ {
			start, count := ShardRange(samples, shards, s)
			if start != next {
				t.Fatalf("samples=%d shards=%d: shard %d starts at %d, want %d", samples, shards, s, start, next)
			}
			if count < samples/shards || count > samples/shards+1 {
				t.Fatalf("samples=%d shards=%d: shard %d count %d unbalanced", samples, shards, s, count)
			}
			next = start + count
		}
		if next != samples {
			t.Fatalf("samples=%d shards=%d: ranges end at %d", samples, shards, next)
		}
	}
}

func TestCurveAxisNormalizeAndResolve(t *testing.T) {
	// Inverted bounds swap.
	a := CurveAxis{LoPS: 10, HiPS: 5, Points: 3}.Normalize()
	if a.LoPS != 5 || a.HiPS != 10 {
		t.Errorf("swap failed: %+v", a)
	}
	// Degenerate collapses to one point.
	for _, d := range []CurveAxis{{LoPS: 7, HiPS: 7, Points: 9}, {LoPS: 3, HiPS: 8, Points: 1}} {
		n := d.Normalize()
		if n.Points != 1 || n.HiPS != n.LoPS {
			t.Errorf("degenerate %+v -> %+v", d, n)
		}
	}
	// Zero axis resolves from the clock.
	r := CurveAxis{}.Resolve(4000)
	if r.LoPS != 0.90*4000 || r.HiPS != 1.15*4000 || r.Points != 33 {
		t.Errorf("resolve: %+v", r)
	}
	if p := r.Periods(); len(p) != 33 || p[0] != r.LoPS || p[32] != r.HiPS {
		t.Errorf("periods: %d [%g..%g]", len(p), p[0], p[len(p)-1])
	}
}

func TestPlanValidate(t *testing.T) {
	ok := Plan{Grid: Grid{4, 4}, Samples: 100, Shards: 4}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Plan{
		{Samples: 100, Shards: 4},                   // no grid or positions
		{Grid: Grid{4, 4}, Samples: 1, Shards: 1},   // too few samples
		{Grid: Grid{4, 4}, Samples: 100, Shards: 0}, // no shards
		{Grid: Grid{4, 4}, Samples: 10, Shards: 11}, // shards > samples
		{Grid: Grid{4, 4}, Samples: 100, Shards: 4, Axis: CurveAxis{Points: -1}},
		{Grid: Grid{4, 4}, Samples: 100, Shards: 4,
			Overlays: []PosOverlay{{Pos: "r0c0", RMM: 1}, {Pos: "r0c0", RMM: 2}}}, // dup overlay
		{Grid: Grid{4, 4}, Samples: 100, Shards: 4,
			Overlays: []PosOverlay{{Pos: "r0c0", RMM: 0}}}, // zero radius
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestResolvePositions(t *testing.T) {
	m := variation.Default()
	p := Plan{Grid: Grid{2, 2}, Samples: 10, Shards: 2,
		Overlays: []PosOverlay{{Pos: "r1c1", RMM: 2, DeltaFrac: 0.03}}}
	ps, err := p.ResolvePositions(&m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 || ps[3].Name != "r1c1" {
		t.Fatalf("positions: %v", ps)
	}
	if ov := p.OverlayFor("r1c1"); ov == nil || ov.DeltaFrac != 0.03 {
		t.Errorf("overlay lookup: %v", ov)
	}
	if ov := p.OverlayFor("r0c0"); ov != nil {
		t.Errorf("phantom overlay: %v", ov)
	}
	// Overlay naming an unknown position fails.
	p.Overlays[0].Pos = "r9c9"
	if _, err := p.ResolvePositions(&m); err == nil {
		t.Error("unknown overlay position accepted")
	}
	// Explicit positions override the grid; duplicates rejected.
	p2 := Plan{Positions: []variation.Pos{{Name: "A"}, {Name: "A"}}, Samples: 10, Shards: 1}
	if _, err := p2.ResolvePositions(&m); err == nil {
		t.Error("duplicate position names accepted")
	}
}

// TestPosKeyIsolatesOverlayEdits is the dirty-shard property at the
// key level: editing one position's overlay must change that
// position's key and nobody else's, while the plan hash always moves.
func TestPosKeyIsolatesOverlayEdits(t *testing.T) {
	m := variation.Default()
	base := Plan{Grid: Grid{3, 3}, Samples: 60, Shards: 3, Seed: 5}
	tweaked := base
	tweaked.Overlays = []PosOverlay{{Pos: "r1c1", XMM: 7, YMM: 7, RMM: 2, DeltaFrac: 0.04}}
	ps, err := base.ResolvePositions(&m)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, pos := range ps {
		if base.PosKey(pos) != tweaked.PosKey(pos) {
			changed++
			if pos.Name != "r1c1" {
				t.Errorf("overlay on r1c1 moved key of %s", pos.Name)
			}
		}
	}
	if changed != 1 {
		t.Errorf("%d keys changed, want 1", changed)
	}
	if base.Hash() == tweaked.Hash() {
		t.Error("plan hash did not move with the overlay")
	}
	// Seed and axis feed the keys too.
	reseeded := base
	reseeded.Seed = 6
	if base.PosKey(ps[0]) == reseeded.PosKey(ps[0]) {
		t.Error("seed not in position key")
	}
}

// TestSurfaceGroupingInvariance is the satellite property at the
// artifact level: the same leaf shard set, handed to the reduce in
// any order and pre-folded in any grouping, serializes to the
// identical Surface JSON bytes (shard counters included, since Merge
// sums provenance too).
func TestSurfaceGroupingInvariance(t *testing.T) {
	g := Grid{NX: 2, NY: 1}
	positions := g.Positions(14)
	axis := CurveAxis{LoPS: 3000, HiPS: 5500, Points: 17}
	vals0, vals1 := draws(21, 900), draws(22, 900)

	leaves := func(vals []float64, cuts []int, key, pos string, overlay bool) []*ShardStat {
		var out []*ShardStat
		lo := 0
		for _, hi := range append(cuts, len(vals)) {
			s := shardOf(key, vals[lo:hi], overlay)
			s.Pos = pos
			out = append(out, s)
			lo = hi
		}
		return out
	}
	build := func(perPos [][]*ShardStat) []byte {
		s, err := BuildSurface("plan", 4000, g, positions, axis, perPos)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	mk := func() [][]*ShardStat {
		return [][]*ShardStat{
			leaves(vals0, []int{100, 350, 351, 800}, "kA", "r0c0", false),
			leaves(vals1, []int{450}, "kB", "r0c1", true),
		}
	}

	want := build(mk())
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		perPos := mk()
		for pi := range perPos {
			shards := perPos[pi]
			rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
			// Pre-fold a random adjacent pair, as a cached partial
			// reduce would.
			for len(shards) > 1 && rng.Intn(2) == 0 {
				i := rng.Intn(len(shards) - 1)
				m, err := shards[i].Merge(*shards[i+1])
				if err != nil {
					t.Fatal(err)
				}
				shards[i] = &m
				shards = append(shards[:i+1], shards[i+2:]...)
			}
			perPos[pi] = shards
		}
		if got := build(perPos); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: surface bytes differ across shard groupings", trial)
		}
	}
}
