package yield

import (
	"vipipe/internal/flowerr"
	"vipipe/internal/variation"
)

// Surface is the reduce artifact of a field sweep: one yield curve per
// exposure-field position, all on a shared period axis, assembled by
// folding shard statistics in a fixed deterministic order. It extends
// the single-position mc yield curve to the 2D exposure field — the
// map a product engineer reads to pick where on the field a core's
// speed grade is safe.
type Surface struct {
	// PlanHash identifies the plan the surface was computed from.
	PlanHash string
	// ClockPS is the flow clock the samples were timed against.
	ClockPS float64
	// NX, NY are the grid dimensions (0 when the plan listed explicit
	// positions instead of a grid).
	NX int
	NY int
	// PeriodsPS is the shared clock-period axis of every Yields slice.
	PeriodsPS []float64
	// Positions holds per-position results in plan order (row-major
	// for grids).
	Positions []SurfacePos
}

// SurfacePos is one position's folded statistics.
type SurfacePos struct {
	Name string
	XMM  float64
	YMM  float64
	// Key is the position's shard content key (cache attribution).
	Key string
	// Samples and Shards record the fold's provenance.
	Samples int64
	Shards  int
	// Critical-path moments, picoseconds.
	MeanPS float64
	StdPS  float64
	MinPS  float64
	MaxPS  float64
	// Yields[i] is the fraction of sampled chips meeting PeriodsPS[i].
	Yields []float64
	// Overlay statistics, present when the plan disturbed this
	// position.
	HasOverlay bool
	OvMeanPS   float64
	OvStdPS    float64
	OvMinPS    float64
	OvMaxPS    float64
	OvYields   []float64
}

// At returns the position record by name, and whether it exists.
func (s *Surface) At(name string) (*SurfacePos, bool) {
	for i := range s.Positions {
		if s.Positions[i].Name == name {
			return &s.Positions[i], true
		}
	}
	return nil, false
}

// NearestPeriod returns the index into PeriodsPS closest to p.
func (s *Surface) NearestPeriod(p float64) int {
	best := 0
	for i, e := range s.PeriodsPS {
		if d, bd := e-p, s.PeriodsPS[best]-p; abs(d) < abs(bd) {
			best = i
		}
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BuildSurface folds each position's shards (MergeShards — a left fold
// whose result is grouping-invariant) and assembles the surface in
// position order. perPos[i] holds position i's shard stats in shard
// order; every histogram must share the resolved axis.
func BuildSurface(planHash string, clockPS float64, g Grid, positions []variation.Pos, axis CurveAxis, perPos [][]*ShardStat) (*Surface, error) {
	if len(perPos) != len(positions) {
		return nil, flowerr.BadInputf("yield: %d shard groups for %d positions", len(perPos), len(positions))
	}
	axis = axis.Normalize()
	s := &Surface{
		PlanHash:  planHash,
		ClockPS:   clockPS,
		NX:        g.NX,
		NY:        g.NY,
		PeriodsPS: axis.Periods(),
		Positions: make([]SurfacePos, 0, len(positions)),
	}
	for pi, pos := range positions {
		merged, err := MergeShards(perPos[pi])
		if err != nil {
			return nil, flowerr.BadInputf("yield: folding position %q: %w", pos.Name, err)
		}
		if merged.Pos != pos.Name {
			return nil, flowerr.BadInputf("yield: shard group %d is for %q, want %q", pi, merged.Pos, pos.Name)
		}
		want := NewHistogram(axis.LoPS, axis.HiPS, axis.Points)
		if !merged.Hist.SameAxis(&want) {
			return nil, flowerr.BadInputf("yield: position %q histogram axis differs from plan axis", pos.Name)
		}
		sp := SurfacePos{
			Name:    pos.Name,
			XMM:     pos.XMM,
			YMM:     pos.YMM,
			Key:     merged.Key,
			Samples: merged.Samples,
			Shards:  merged.Shards,
			MeanPS:  merged.Crit.Mean(),
			StdPS:   merged.Crit.Std(),
			MinPS:   merged.Crit.Min,
			MaxPS:   merged.Crit.Max,
			Yields:  merged.Hist.Yields(),
		}
		if merged.HasOverlay {
			sp.HasOverlay = true
			sp.OvMeanPS = merged.OvCrit.Mean()
			sp.OvStdPS = merged.OvCrit.Std()
			sp.OvMinPS = merged.OvCrit.Min
			sp.OvMaxPS = merged.OvCrit.Max
			sp.OvYields = merged.OvHist.Yields()
		}
		s.Positions = append(s.Positions, sp)
	}
	return s, nil
}
