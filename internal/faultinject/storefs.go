package faultinject

import (
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vipipe/internal/pipeline"
)

// StoreFS interposes deterministic disk faults under a
// pipeline.DiskStore: IO errors (EIO, ENOSPC) on the next N reads or
// writes, a torn write that persists only a prefix of the bytes (the
// crash the store's atomic-rename discipline defends against, forced
// past it), and a fixed per-operation delay emulating a slow disk.
// All controls are safe for concurrent use; faults are consumed in
// operation order, so tests arm an exact failure budget and assert
// the recovery that follows it.
type StoreFS struct {
	Inner pipeline.FS

	mu         sync.Mutex
	failReads  int   // fail the next N ReadFile calls with errRead
	failWrites int   // fail the next N WriteFile/Rename calls with errWrite
	tearWrites int   // truncate the next N WriteFile payloads to half
	errRead    error // defaults to syscall.EIO
	errWrite   error // defaults to syscall.EIO

	delay atomic.Int64 // per-op delay, nanoseconds

	Reads  atomic.Int64 // ReadFile calls reaching this layer
	Writes atomic.Int64 // WriteFile calls reaching this layer
}

// NewStoreFS wraps inner (the real filesystem when nil).
func NewStoreFS(inner pipeline.FS) *StoreFS {
	if inner == nil {
		inner = pipeline.OSFS()
	}
	return &StoreFS{Inner: inner}
}

// FailReads arms err (EIO when nil) on the next n ReadFile calls.
func (f *StoreFS) FailReads(n int, err error) {
	if err == nil {
		err = syscall.EIO
	}
	f.mu.Lock()
	f.failReads, f.errRead = n, err
	f.mu.Unlock()
}

// FailWrites arms err (EIO when nil; use syscall.ENOSPC for a full
// disk) on the next n WriteFile/Rename calls.
func (f *StoreFS) FailWrites(n int, err error) {
	if err == nil {
		err = syscall.EIO
	}
	f.mu.Lock()
	f.failWrites, f.errWrite = n, err
	f.mu.Unlock()
}

// TearWrites makes the next n WriteFile calls persist only the first
// half of their payload and then report success — a torn write a
// crashed kernel could leave behind, which only the checksum footer
// can catch.
func (f *StoreFS) TearWrites(n int) {
	f.mu.Lock()
	f.tearWrites = n
	f.mu.Unlock()
}

// SetDelay imposes d of latency on every operation (slow disk).
func (f *StoreFS) SetDelay(d time.Duration) { f.delay.Store(int64(d)) }

func (f *StoreFS) sleep() {
	if d := f.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

func (f *StoreFS) MkdirAll(dir string) error {
	f.sleep()
	return f.Inner.MkdirAll(dir)
}

func (f *StoreFS) ReadFile(path string) ([]byte, error) {
	f.sleep()
	f.Reads.Add(1)
	f.mu.Lock()
	if f.failReads > 0 {
		f.failReads--
		err := f.errRead
		f.mu.Unlock()
		return nil, err
	}
	f.mu.Unlock()
	return f.Inner.ReadFile(path)
}

func (f *StoreFS) WriteFile(path string, data []byte) error {
	f.sleep()
	f.Writes.Add(1)
	f.mu.Lock()
	if f.failWrites > 0 {
		f.failWrites--
		err := f.errWrite
		f.mu.Unlock()
		return err
	}
	if f.tearWrites > 0 {
		f.tearWrites--
		f.mu.Unlock()
		if err := f.Inner.WriteFile(path, data[:len(data)/2]); err != nil {
			return err
		}
		return nil // the tear is silent: the writer believes it succeeded
	}
	f.mu.Unlock()
	return f.Inner.WriteFile(path, data)
}

func (f *StoreFS) Rename(old, new string) error {
	f.sleep()
	f.mu.Lock()
	if f.failWrites > 0 {
		f.failWrites--
		err := f.errWrite
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	return f.Inner.Rename(old, new)
}

func (f *StoreFS) Remove(path string) error {
	f.sleep()
	return f.Inner.Remove(path)
}
