// Package faultinject is the flow's fault-injection harness: it
// deterministically corrupts the artifacts the flow exchanges —
// SDF/DEF text, netlists, placements, partition vectors — and provides
// a guard that converts any panic escaping the code under test into a
// typed flowerr.PanicError. The accompanying test suite asserts the
// robustness contract of this repository: every corrupted artifact is
// rejected with a typed error (flowerr.ErrBadInput or ErrDRC), and no
// corruption, however mangled, reaches a panic.
//
// All corruption is seeded through stats.DeriveStream, so a failing
// seed reproduces exactly.
package faultinject

import (
	"math"
	"runtime/debug"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/stats"
)

// Guard runs fn and converts an escaping panic into an error matching
// flowerr.ErrWorkerPanic (carrying the stack); otherwise it returns
// fn's own error.
func Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &flowerr.PanicError{Sample: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// CorruptText applies 1-4 random text mutations — truncation, byte
// deletion/duplication/overwrite, paren injection, digit garbling — to
// a copy of data. With n == 0 bytes the input is returned unchanged.
func CorruptText(data []byte, rng *stats.Stream) []byte {
	out := append([]byte(nil), data...)
	for m := 1 + rng.Intn(4); m > 0 && len(out) > 0; m-- {
		switch rng.Intn(6) {
		case 0: // truncate
			out = out[:rng.Intn(len(out))]
		case 1: // delete one byte
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		case 2: // duplicate a span
			i := rng.Intn(len(out))
			j := i + 1 + rng.Intn(16)
			if j > len(out) {
				j = len(out)
			}
			out = append(out[:j], append(append([]byte(nil), out[i:j]...), out[j:]...)...)
		case 3: // overwrite with a hostile byte
			hostile := []byte{'(', ')', '"', '\\', ':', 0, '-', 'e'}
			out[rng.Intn(len(out))] = hostile[rng.Intn(len(hostile))]
		case 4: // garble a digit
			for k := 0; k < 32; k++ {
				i := rng.Intn(len(out))
				if out[i] >= '0' && out[i] <= '9' {
					out[i] = byte("x.-+:e"[rng.Intn(6)])
					break
				}
			}
		case 5: // swap two bytes
			i, j := rng.Intn(len(out)), rng.Intn(len(out))
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// CorruptNetlist applies one structural corruption to nl in place and
// returns a description of what it broke. The corruption stays within
// slice bounds the netlist type itself can represent (dangling
// references, inconsistent bookkeeping, wrong arity) — exactly the
// damage a buggy transformation or a bad import would cause.
func CorruptNetlist(nl *netlist.Netlist, rng *stats.Stream) string {
	if nl.NumCells() == 0 || nl.NumNets() == 0 {
		return "empty netlist left alone"
	}
	i := rng.Intn(nl.NumCells())
	n := rng.Intn(nl.NumNets())
	switch rng.Intn(6) {
	case 0:
		nl.Insts[i].Out = nl.NumNets() + 7
		return "instance output points past the net array"
	case 1:
		if len(nl.Insts[i].Inputs) == 0 {
			nl.Insts[i].Inputs = []int{-3}
			return "input pin added where none belong"
		}
		nl.Insts[i].Inputs[0] = -3
		return "input pin references a negative net"
	case 2:
		nl.Nets[n].Driver = nl.NumCells() + 11
		return "net driven by a nonexistent instance"
	case 3:
		nl.Nets[n].Driver = netlist.NoInst
		return "net driver bookkeeping dropped"
	case 4:
		nl.Insts[i].Inputs = append(nl.Insts[i].Inputs, nl.Insts[i].Out)
		return "arity grown beyond the library cell"
	case 5:
		nl.Nets[n].Sinks = append(nl.Nets[n].Sinks, netlist.Sink{Inst: nl.NumCells() + 5, Pin: 0})
		return "net lists a nonexistent sink"
	}
	return "unreachable"
}

// CorruptPlacement damages pl in place and returns a description.
func CorruptPlacement(pl *place.Placement, rng *stats.Stream) string {
	if len(pl.X) == 0 {
		return "empty placement left alone"
	}
	i := rng.Intn(len(pl.X))
	switch rng.Intn(4) {
	case 0:
		pl.X[i] = math.NaN()
		return "NaN x coordinate"
	case 1:
		pl.Y[i] = pl.DieH * 40
		return "cell far outside the die"
	case 2:
		pl.Y[i] += pl.RowHeight * 0.37
		return "cell off the row grid"
	case 3:
		pl.X = pl.X[:len(pl.X)-1]
		return "coordinate vector shorter than the netlist"
	}
	return "unreachable"
}

// CorruptRegion damages a partition region vector and returns a
// description together with the corrupted copy.
func CorruptRegion(region []int32, rng *stats.Stream) ([]int32, string) {
	out := append([]int32(nil), region...)
	if len(out) == 0 {
		return out, "empty region left alone"
	}
	switch rng.Intn(2) {
	case 0:
		return out[:rng.Intn(len(out))], "region vector truncated"
	default:
		out[rng.Intn(len(out))] = 127
		return out, "region index out of any island"
	}
}
