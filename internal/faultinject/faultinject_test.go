package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/def"
	"vipipe/internal/drc"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/sdf"
	"vipipe/internal/stats"
)

const trials = 200

func buildFixture(t *testing.T) (*netlist.Netlist, *place.Placement) {
	t.Helper()
	b := netlist.NewBuilder("fitest", cell.Default65nm())
	x := b.Input("x")
	y := b.Input("y")
	q := b.DFF(b.Xor(x, y))
	n := q
	for i := 0; i < 20; i++ {
		n = b.And(b.Not(n), q)
	}
	b.DFF(n)
	pl, err := place.Global(b.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return b.NL, pl
}

// requireTyped fails if err is a recovered panic or an error outside
// the flowerr taxonomy; nil is fine (the corruption may be benign).
func requireTyped(t *testing.T, what, detail string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	var pe *flowerr.PanicError
	if errors.As(err, &pe) {
		t.Fatalf("%s (%s) PANICKED: %v\n%s", what, detail, pe.Value, pe.Stack)
	}
	if flowerr.ExitCode(err) == flowerr.ExitFailure {
		t.Errorf("%s (%s) returned an unclassified error: %v", what, detail, err)
	}
}

func TestGuardConvertsPanics(t *testing.T) {
	err := Guard(func() error { panic("boom") })
	if !errors.Is(err, flowerr.ErrWorkerPanic) {
		t.Fatalf("guarded panic yielded %v", err)
	}
	if err := Guard(func() error { return nil }); err != nil {
		t.Fatalf("clean call yielded %v", err)
	}
}

// TestCorruptedSDFNeverPanics round-trips corrupted SDF text through
// the parser and the scale extraction.
func TestCorruptedSDFNeverPanics(t *testing.T) {
	nl, _ := buildFixture(t)
	delays := make([]float64, nl.NumCells())
	for i := range delays {
		delays[i] = 15 + float64(i)
	}
	var buf bytes.Buffer
	if err := sdf.Write(&buf, nl, delays); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for seed := 0; seed < trials; seed++ {
		rng := stats.DeriveStream(int64(seed), "fi/sdf")
		data := CorruptText(good, rng)
		var file *sdf.File
		err := Guard(func() error {
			var perr error
			file, perr = sdf.Parse(bytes.NewReader(data))
			return perr
		})
		requireTyped(t, "sdf.Parse", fmt.Sprintf("seed %d", seed), err)
		if err != nil || file == nil {
			continue
		}
		err = Guard(func() error {
			_, serr := file.Scales(nl, func(i int) float64 { return delays[i] })
			return serr
		})
		requireTyped(t, "sdf.Scales", fmt.Sprintf("seed %d", seed), err)
	}
}

// TestCorruptedDEFNeverPanics round-trips corrupted DEF text through
// the parser and placement application.
func TestCorruptedDEFNeverPanics(t *testing.T) {
	_, pl := buildFixture(t)
	var buf bytes.Buffer
	if err := def.Write(&buf, pl); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for seed := 0; seed < trials; seed++ {
		rng := stats.DeriveStream(int64(seed), "fi/def")
		data := CorruptText(good, rng)
		var file *def.File
		err := Guard(func() error {
			var perr error
			file, perr = def.Parse(bytes.NewReader(data))
			return perr
		})
		requireTyped(t, "def.Parse", fmt.Sprintf("seed %d", seed), err)
		if err != nil || file == nil {
			continue
		}
		_, target := buildFixture(t)
		err = Guard(func() error { return file.Apply(target) })
		requireTyped(t, "def.Apply", fmt.Sprintf("seed %d", seed), err)
	}
}

// TestCorruptedNetlistCaughtByDRC mutates netlist structure and runs
// the DRC battery: never a panic, typed errors only, and the vast
// majority of corruptions detected.
func TestCorruptedNetlistCaughtByDRC(t *testing.T) {
	detected := 0
	for seed := 0; seed < trials; seed++ {
		nl, _ := buildFixture(t)
		rng := stats.DeriveStream(int64(seed), "fi/netlist")
		desc := CorruptNetlist(nl, rng)
		err := Guard(func() error { return drc.Check(drc.Inputs{NL: nl}).Err() })
		requireTyped(t, "drc.Check/netlist", fmt.Sprintf("seed %d: %s", seed, desc), err)
		if errors.Is(err, flowerr.ErrDRC) {
			detected++
		}
	}
	// Some corruptions are benign (e.g. dropping the driver of an
	// undriven net), but DRC must catch the bulk.
	if detected < trials*3/4 {
		t.Errorf("DRC detected only %d of %d netlist corruptions", detected, trials)
	}
}

// TestCorruptedPlacementCaughtByDRC does the same for placements.
func TestCorruptedPlacementCaughtByDRC(t *testing.T) {
	detected := 0
	for seed := 0; seed < trials; seed++ {
		nl, pl := buildFixture(t)
		rng := stats.DeriveStream(int64(seed), "fi/place")
		desc := CorruptPlacement(pl, rng)
		err := Guard(func() error { return drc.Check(drc.Inputs{NL: nl, PL: pl}).Err() })
		requireTyped(t, "drc.Check/placement", fmt.Sprintf("seed %d: %s", seed, desc), err)
		if errors.Is(err, flowerr.ErrDRC) {
			detected++
		}
		// The fail-fast Validate must agree that damage is damage, and
		// must not panic on it either.
		verr := Guard(func() error { return pl.Validate() })
		var pe *flowerr.PanicError
		if errors.As(verr, &pe) {
			t.Fatalf("place.Validate panicked (seed %d: %s): %v", seed, desc, pe.Value)
		}
		if err != nil && verr == nil {
			t.Errorf("seed %d (%s): DRC flags the placement but Validate passes it", seed, desc)
		}
	}
	if detected != trials {
		t.Errorf("DRC detected only %d of %d placement corruptions", detected, trials)
	}
}

// TestCorruptedRegionCaughtByDRC does the same for partition region
// vectors.
func TestCorruptedRegionCaughtByDRC(t *testing.T) {
	detected := 0
	for seed := 0; seed < trials; seed++ {
		nl, _ := buildFixture(t)
		region := make([]int32, nl.NumCells())
		rng := stats.DeriveStream(int64(seed), "fi/region")
		bad, desc := CorruptRegion(region, rng)
		err := Guard(func() error {
			return drc.Check(drc.Inputs{NL: nl, Region: bad, ShiftersInserted: true}).Err()
		})
		requireTyped(t, "drc.Check/region", fmt.Sprintf("seed %d: %s", seed, desc), err)
		if errors.Is(err, flowerr.ErrDRC) {
			detected++
		}
	}
	// Truncations are always caught; raising a region index is only a
	// violation when it creates an uncovered low->high crossing.
	if detected < trials/3 {
		t.Errorf("DRC detected only %d of %d region corruptions", detected, trials)
	}
}
