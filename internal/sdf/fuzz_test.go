package sdf

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
)

// writerCorpus emits a small but representative SDF via the package's
// own writer, so the fuzzer starts from well-formed input.
func writerCorpus() string {
	b := netlist.NewBuilder("fuzz (seed)", cell.Default65nm())
	x := b.Input("x")
	y := b.Input("y")
	b.DFF(b.And(b.Xor(x, y), b.Not(x)))
	delays := make([]float64, b.NL.NumCells())
	for i := range delays {
		delays[i] = 10 + float64(i)
	}
	var buf bytes.Buffer
	if err := Write(&buf, b.NL, delays); err != nil {
		panic(err)
	}
	return buf.String()
}

func FuzzParseSDF(f *testing.F) {
	seed := writerCorpus()
	f.Add(seed)
	// Mutated variants covering the grammar's edges: truncation,
	// unbalanced parens, hostile timescales and delay triples.
	f.Add(seed[:len(seed)/2])
	f.Add(strings.Replace(seed, "1ps", "0ps", 1))
	f.Add(strings.Replace(seed, "1ps", "-3ns", 1))
	f.Add(strings.Replace(seed, "1ps", "nonsense", 1))
	f.Add("(DELAYFILE")
	f.Add("(DELAYFILE (CELL (INSTANCE a) (DELAY (ABSOLUTE (IOPATH * Z (:::))))))")
	f.Add("(DELAYFILE (CELL (DELAY (ABSOLUTE (IOPATH * Z (1:2:nan))))) )")
	f.Add(`(DELAYFILE (DESIGN "x`)
	f.Add("(((((((((((")
	f.Add(")")
	f.Add("\\")
	f.Fuzz(func(t *testing.T, data string) {
		file, err := Parse(strings.NewReader(data))
		if err != nil {
			if !errors.Is(err, flowerr.ErrBadInput) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if file == nil {
			t.Fatal("nil file with nil error")
		}
		if file.TimescalePS <= 0 {
			t.Fatalf("accepted non-positive timescale %g", file.TimescalePS)
		}
	})
}
