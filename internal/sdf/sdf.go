// Package sdf reads and writes a Standard Delay Format (SDF 2.1)
// subset: per-instance IOPATH delays. The paper's flow moves delays
// between tools this way — "standard file formats do exist to transfer
// delay information between tools" — and its variability injection is
// literally an SDF rewriter: export nominal delays, scale them with
// the process-variation model, re-import for timing analysis. This
// package supports exactly that round trip.
package sdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
)

// File is a parsed SDF subset.
type File struct {
	Design      string
	TimescalePS float64
	// DelaysPS maps instance name to its IOPATH delay.
	DelaysPS map[string]float64
}

// Write emits an SDF file with one IOPATH entry per instance. delaysPS
// must hold one delay per netlist instance (e.g. sta.BaseDelay values,
// possibly pre-scaled by a variation model).
func Write(w io.Writer, nl *netlist.Netlist, delaysPS []float64) error {
	if len(delaysPS) != nl.NumCells() {
		return flowerr.BadInputf("sdf: %d delays for %d instances", len(delaysPS), nl.NumCells())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(DELAYFILE\n")
	fmt.Fprintf(bw, "  (SDFVERSION \"2.1\")\n")
	fmt.Fprintf(bw, "  (DESIGN \"%s\")\n", escape(nl.Name))
	fmt.Fprintf(bw, "  (TIMESCALE 1ps)\n")
	for i := range nl.Insts {
		inst := &nl.Insts[i]
		c := nl.Cell(i)
		d := delaysPS[i]
		fmt.Fprintf(bw, "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n", c.Name, escape(inst.Name))
		fmt.Fprintf(bw, "    (DELAY (ABSOLUTE (IOPATH * Z (%.3f:%.3f:%.3f))))\n  )\n", d, d, d)
	}
	fmt.Fprintf(bw, ")\n")
	return bw.Flush()
}

// escape protects SDF-special characters in hierarchical names.
func escape(name string) string {
	r := strings.NewReplacer("(", `\(`, ")", `\)`, " ", `\ `)
	return r.Replace(name)
}

func unescape(name string) string {
	r := strings.NewReplacer(`\(`, "(", `\)`, ")", `\ `, " ")
	return r.Replace(name)
}

// Parse reads the SDF subset produced by Write (tolerating arbitrary
// whitespace). Unknown constructs inside CELL entries are skipped.
func Parse(r io.Reader) (*File, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{TimescalePS: 1, DelaysPS: make(map[string]float64)}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if kw := p.next(); kw != "DELAYFILE" {
		return nil, flowerr.BadInputf("sdf: expected DELAYFILE, got %q", kw)
	}
	for {
		t := p.next()
		switch t {
		case "":
			return nil, flowerr.BadInputf("sdf: unexpected end of file")
		case ")":
			return f, nil
		case "(":
			kw := p.next()
			switch kw {
			case "DESIGN":
				f.Design = unescape(strings.Trim(p.next(), `"`))
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			case "TIMESCALE":
				scale := p.next()
				ps, err := parseTimescale(scale)
				if err != nil {
					return nil, err
				}
				if ps <= 0 {
					// A zero or negative timescale would silently null
					// every delay in the file.
					return nil, flowerr.BadInputf("sdf: non-positive timescale %q", scale)
				}
				f.TimescalePS = ps
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			case "CELL":
				name, delay, err := p.parseCell()
				if err != nil {
					return nil, err
				}
				if name != "" {
					f.DelaysPS[name] = delay * f.TimescalePS
				}
			default:
				p.skipBalanced(1)
			}
		default:
			return nil, flowerr.BadInputf("sdf: unexpected token %q", t)
		}
	}
}

func parseTimescale(s string) (float64, error) {
	s = strings.ToLower(s)
	switch {
	case strings.HasSuffix(s, "ps"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ps"), 64)
		if err != nil {
			return 0, flowerr.BadInputf("sdf: bad timescale %q", s)
		}
		return v, nil
	case strings.HasSuffix(s, "ns"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ns"), 64)
		if err != nil {
			return 0, flowerr.BadInputf("sdf: bad timescale %q", s)
		}
		return v * 1000, nil
	default:
		return 0, flowerr.BadInputf("sdf: unsupported timescale %q", s)
	}
}

// Scales converts parsed absolute delays into the per-instance
// multiplicative factors used by the timing engine, dividing each
// instance's SDF delay by its nominal delay. Instances absent from the
// file keep scale 1.
func (f *File) Scales(nl *netlist.Netlist, nominalPS func(i int) float64) ([]float64, error) {
	byName := make(map[string]int, nl.NumCells())
	for i := range nl.Insts {
		byName[nl.Insts[i].Name] = i
	}
	out := make([]float64, nl.NumCells())
	for i := range out {
		out[i] = 1
	}
	for name, d := range f.DelaysPS {
		i, ok := byName[name]
		if !ok {
			return nil, flowerr.BadInputf("sdf: instance %q not in netlist", name)
		}
		nom := nominalPS(i)
		if nom > 0 {
			out[i] = d / nom
		}
	}
	return out, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) next() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return flowerr.BadInputf("sdf: expected %q, got %q", t, got)
	}
	return nil
}

// skipBalanced consumes tokens until depth parens are closed.
func (p *parser) skipBalanced(depth int) {
	for depth > 0 {
		switch p.next() {
		case "(":
			depth++
		case ")":
			depth--
		case "":
			return
		}
	}
}

// parseCell handles one (CELL ...) entry, returning the instance name
// and its IOPATH delay.
func (p *parser) parseCell() (string, float64, error) {
	name := ""
	delay := 0.0
	for {
		switch t := p.next(); t {
		case ")":
			return name, delay, nil
		case "(":
			switch kw := p.next(); kw {
			case "INSTANCE":
				name = unescape(p.next())
				if err := p.expect(")"); err != nil {
					return "", 0, err
				}
			case "DELAY":
				d, err := p.parseDelay()
				if err != nil {
					return "", 0, err
				}
				delay = d
			default: // CELLTYPE and friends
				p.skipBalanced(1)
			}
		case "":
			return "", 0, flowerr.BadInputf("sdf: unexpected EOF in CELL")
		}
	}
}

// parseDelay handles (ABSOLUTE (IOPATH * Z (d:d:d))), cursor just past
// "DELAY".
func (p *parser) parseDelay() (float64, error) {
	delay := 0.0
	depth := 1
	for depth > 0 {
		t := p.next()
		switch t {
		case "(":
			depth++
		case ")":
			depth--
		case "":
			return 0, flowerr.BadInputf("sdf: unexpected EOF in DELAY")
		default:
			if strings.Contains(t, ":") {
				parts := strings.Split(t, ":")
				v, err := strconv.ParseFloat(parts[len(parts)-1], 64)
				if err != nil {
					return 0, flowerr.BadInputf("sdf: bad delay triple %q", t)
				}
				delay = v
			}
		}
	}
	return delay, nil
}

// tokenize splits the input into parens and atoms, honoring escapes.
func tokenize(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, err
		}
		switch ch {
		case '\\':
			nxt, _, err := br.ReadRune()
			if err != nil {
				return nil, flowerr.BadInputf("sdf: trailing escape")
			}
			cur.WriteRune('\\')
			cur.WriteRune(nxt)
		case '(', ')':
			flush()
			toks = append(toks, string(ch))
		case ' ', '\t', '\n', '\r':
			flush()
		default:
			cur.WriteRune(ch)
		}
	}
}
