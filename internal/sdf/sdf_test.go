package sdf

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/sta"
)

func fixture(t *testing.T) (*netlist.Netlist, *sta.Analyzer) {
	t.Helper()
	b := netlist.NewBuilder("sdftest", cell.Default65nm())
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 4)
	var nets []int
	for i := range x {
		nets = append(nets, b.Xor(x[i], y[i]))
	}
	s := b.AndTree(nets)
	b.DFF(s)
	pl, err := place.Global(b.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sta.New(b.NL, pl)
	if err != nil {
		t.Fatal(err)
	}
	return b.NL, a
}

func TestRoundTrip(t *testing.T) {
	nl, a := fixture(t)
	delays := make([]float64, nl.NumCells())
	for i := range delays {
		delays[i] = a.BaseDelay(i) * 1.25 // pretend variation
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl, delays); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Design != "sdftest" {
		t.Errorf("design = %q", f.Design)
	}
	if len(f.DelaysPS) != nl.NumCells() {
		t.Fatalf("parsed %d delays, want %d", len(f.DelaysPS), nl.NumCells())
	}
	scales, err := f.Scales(nl, a.BaseDelay)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scales {
		if math.Abs(s-1.25) > 1e-3 {
			t.Fatalf("scale[%d] = %g, want 1.25", i, s)
		}
	}
}

func TestWriteRejectsLengthMismatch(t *testing.T) {
	nl, _ := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl, []float64{1}); err == nil {
		t.Error("mismatched delays accepted")
	}
}

func TestParseTimescaleNS(t *testing.T) {
	src := `(DELAYFILE (SDFVERSION "2.1") (DESIGN "d") (TIMESCALE 1ns)
	  (CELL (CELLTYPE "INV") (INSTANCE u1)
	    (DELAY (ABSOLUTE (IOPATH * Z (0.5:0.5:0.5)))))
	)`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.DelaysPS["u1"]; math.Abs(got-500) > 1e-9 {
		t.Errorf("delay = %g ps, want 500", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(NOTDELAYFILE)",
		"(DELAYFILE (CELL (INSTANCE u1)",  // EOF inside cell
		"(DELAYFILE (TIMESCALE 1parsec))", // bad unit
		`(DELAYFILE (CELL (DELAY (ABSOLUTE (IOPATH * Z (x:y:z))))))`, // bad triple
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestScalesRejectsUnknownInstance(t *testing.T) {
	nl, a := fixture(t)
	f := &File{DelaysPS: map[string]float64{"nonexistent": 5}}
	if _, err := f.Scales(nl, a.BaseDelay); err == nil {
		t.Error("unknown instance accepted")
	}
}

func TestEscapedNamesSurvive(t *testing.T) {
	nl, a := fixture(t)
	nl.Insts[0].Name = "weird (name) with space"
	delays := make([]float64, nl.NumCells())
	for i := range delays {
		delays[i] = a.BaseDelay(i)
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl, delays); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.DelaysPS["weird (name) with space"]; !ok {
		t.Errorf("escaped name lost; have %d names", len(f.DelaysPS))
	}
}

// The paper's variability-injection loop: write nominal SDF, scale,
// re-import, and verify the timing engine sees the scaled delays.
func TestVariationInjectionRoundTrip(t *testing.T) {
	nl, a := fixture(t)
	nomCrit := a.Run(1e6, nil).CritPS
	delays := make([]float64, nl.NumCells())
	for i := range delays {
		delays[i] = a.BaseDelay(i) * 1.10
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl, delays); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	scales, err := f.Scales(nl, a.BaseDelay)
	if err != nil {
		t.Fatal(err)
	}
	crit := a.Run(1e6, scales).CritPS
	// Cell delays scaled 1.1, wire delays unscaled: the critical
	// path grows by slightly less than 10%.
	if crit <= nomCrit || crit > nomCrit*1.101 {
		t.Errorf("scaled crit %g vs nominal %g", crit, nomCrit)
	}
}
