package density

import (
	"math"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/gsim"
	"vipipe/internal/netlist"
	"vipipe/internal/stats"
	"vipipe/internal/vex"
	"vipipe/internal/vexsim"
)

func seeds(nl *netlist.Netlist, p, d map[int][2]float64) (prob, dens []float64) {
	prob = make([]float64, nl.NumNets())
	dens = make([]float64, nl.NumNets())
	for n, v := range p {
		prob[n] = v[0]
		dens[n] = v[1]
	}
	_ = d
	return prob, dens
}

func TestXorDensityAddsInputs(t *testing.T) {
	// XOR's Boolean difference w.r.t. each input is 1, so
	// D(out) = D(a) + D(b), regardless of probabilities.
	b := netlist.NewBuilder("t", cell.Default65nm())
	a := b.Input("a")
	c := b.Input("c")
	x := b.Xor(a, c)
	prob, dens := seeds(b.NL, map[int][2]float64{
		a: {0.3, 0.2},
		c: {0.8, 0.5},
	}, nil)
	res, err := Propagate(b.NL, prob, dens)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Density[x]-0.7) > 1e-12 {
		t.Errorf("xor density = %g, want 0.7", res.Density[x])
	}
	// P(xor=1) = p(1-q) + q(1-p).
	want := 0.3*0.2 + 0.8*0.7
	if math.Abs(res.Prob[x]-want) > 1e-12 {
		t.Errorf("xor prob = %g, want %g", res.Prob[x], want)
	}
}

func TestAndDensityGatedByProbability(t *testing.T) {
	// AND: dF/da = b, so D(out) = P(b) D(a) + P(a) D(b).
	b := netlist.NewBuilder("t", cell.Default65nm())
	a := b.Input("a")
	c := b.Input("c")
	x := b.And(a, c)
	prob, dens := seeds(b.NL, map[int][2]float64{
		a: {0.25, 0.4},
		c: {0.5, 0.1},
	}, nil)
	res, err := Propagate(b.NL, prob, dens)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*0.4 + 0.25*0.1
	if math.Abs(res.Density[x]-want) > 1e-12 {
		t.Errorf("and density = %g, want %g", res.Density[x], want)
	}
	if math.Abs(res.Prob[x]-0.125) > 1e-12 {
		t.Errorf("and prob = %g, want 0.125", res.Prob[x])
	}
}

func TestConstantInputKillsDensity(t *testing.T) {
	b := netlist.NewBuilder("t", cell.Default65nm())
	a := b.Input("a")
	k := b.Const(false)
	x := b.And(a, k)
	y := b.Or(a, k)
	prob, dens := seeds(b.NL, map[int][2]float64{a: {0.5, 1.0}}, nil)
	res, err := Propagate(b.NL, prob, dens)
	if err != nil {
		t.Fatal(err)
	}
	if res.Density[x] != 0 {
		t.Errorf("AND with constant 0 has density %g", res.Density[x])
	}
	if math.Abs(res.Density[y]-1.0) > 1e-12 {
		t.Errorf("OR with constant 0 has density %g, want 1", res.Density[y])
	}
}

func TestInverterChainPreservesDensity(t *testing.T) {
	b := netlist.NewBuilder("t", cell.Default65nm())
	a := b.Input("a")
	n := a
	for i := 0; i < 10; i++ {
		n = b.Not(n)
	}
	prob, dens := seeds(b.NL, map[int][2]float64{a: {0.5, 0.42}}, nil)
	res, err := Propagate(b.NL, prob, dens)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Density[n]-0.42) > 1e-12 {
		t.Errorf("chain density = %g, want 0.42", res.Density[n])
	}
}

func TestDensityUpperBoundsZeroDelaySimOnXorTree(t *testing.T) {
	// A balanced XOR tree is the canonical glitch generator: the
	// zero-delay simulation reports at most 1 toggle per cycle per
	// net, while transition density adds input densities and
	// grows with depth.
	b := netlist.NewBuilder("t", cell.Default65nm())
	ins := b.InputWord("x", 8)
	level := []int(ins)
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Xor(level[i], level[i+1]))
		}
		level = next
	}
	root := level[0]

	// Simulate with random inputs.
	sim, err := gsim.New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewStream(5)
	for c := 0; c < 400; c++ {
		sim.SetPIWord(ins, uint64(rng.Int63()))
		sim.Step()
	}
	act := sim.Activity()

	est, err := GlitchAwareActivity(b.NL, act)
	if err != nil {
		t.Fatal(err)
	}
	if est[root] <= act[root] {
		t.Errorf("density at XOR root %.3f should exceed zero-delay %.3f", est[root], act[root])
	}
	// Exact relation at the root: density = sum of leaf densities.
	sum := 0.0
	for _, n := range ins {
		sum += act[n]
	}
	if math.Abs(est[root]-sum) > 1e-9 {
		t.Errorf("xor tree root density %.4f, want %.4f", est[root], sum)
	}
}

func TestSequentialSeedsPreserved(t *testing.T) {
	b := netlist.NewBuilder("t", cell.Default65nm())
	d := b.Input("d")
	q := b.DFF(d)
	x := b.Not(q)
	sim, err := gsim.New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 50; c++ {
		sim.SetPI(d, c%2 == 0)
		sim.Step()
	}
	act := sim.Activity()
	est, err := GlitchAwareActivity(b.NL, act)
	if err != nil {
		t.Fatal(err)
	}
	if est[q] != act[q] || est[d] != act[d] {
		t.Error("seed activities must be preserved")
	}
	if math.Abs(est[x]-act[q]) > 1e-12 {
		t.Errorf("inverter density %g, want %g", est[x], act[q])
	}
}

func TestPropagateValidation(t *testing.T) {
	b := netlist.NewBuilder("t", cell.Default65nm())
	b.Input("a")
	if _, err := Propagate(b.NL, []float64{0.5}, []float64{0.1, 0.2}); err == nil {
		t.Error("mismatched seeds accepted")
	}
	if _, _, err := SeedsFromSimulation(b.NL, nil); err == nil {
		t.Error("short activity accepted")
	}
}

func TestGlitchEstimateRaisesMuxTreePower(t *testing.T) {
	// On the VEX core with FIR activity, the glitch-aware estimate
	// must raise combinational activity overall — most visibly in
	// the register-file read trees.
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	fir, err := vexsim.NewFIR(core.Cfg, 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := vexsim.NewTestbench(core, fir.Prog, fir.DMem)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(fir.Cycles)
	act := tb.Activity()
	est, err := GlitchAwareActivity(core.NL, act)
	if err != nil {
		t.Fatal(err)
	}
	var simSum, estSum float64
	for n := range act {
		simSum += act[n]
		estSum += est[n]
	}
	if estSum <= simSum {
		t.Errorf("glitch-aware total activity %.1f not above simulated %.1f", estSum, simSum)
	}
	if estSum > simSum*6 {
		t.Errorf("glitch estimate %.1f implausibly above simulated %.1f", estSum, simSum)
	}
}
