// Package density implements transition-density propagation (Najm,
// "Transition density: a new measure of activity in digital circuits"),
// the classic probabilistic activity estimator. The cycle-based
// simulator in internal/gsim cannot see glitches — intermediate
// transitions inside a clock cycle — which dominate the power of deep
// multiplexer networks like the register-file read trees. Transition
// density captures them analytically: the density of a gate output is
// the sum over inputs of the probability of the input's Boolean
// difference times the input's density,
//
//	D(y) = sum_i P(dF/dx_i) * D(x_i)
//
// computed in topological order under an input-independence
// assumption. Signal probabilities propagate through the same
// enumeration. Sequential cells and primary inputs are seeds supplied
// by the caller (typically from a gate-level simulation, so the
// sequential behavior stays exact and only combinational glitching is
// re-estimated).
package density

import (
	"fmt"

	"vipipe/internal/netlist"
)

// Result carries per-net signal probabilities and transition
// densities (transitions per clock cycle).
type Result struct {
	Prob    []float64
	Density []float64
}

// Propagate computes signal probability and transition density for
// every combinational net. seedProb and seedDensity must hold values
// for primary-input nets and sequential-cell output nets (all other
// entries are overwritten); both are indexed by net ID. Tie cells
// propagate as constants (probability 0/1, density 0).
func Propagate(nl *netlist.Netlist, seedProb, seedDensity []float64) (*Result, error) {
	if len(seedProb) != nl.NumNets() || len(seedDensity) != nl.NumNets() {
		return nil, fmt.Errorf("density: seeds cover %d/%d nets, want %d",
			len(seedProb), len(seedDensity), nl.NumNets())
	}
	order, err := nl.Levelize()
	if err != nil {
		return nil, fmt.Errorf("density: %w", err)
	}
	res := &Result{
		Prob:    append([]float64(nil), seedProb...),
		Density: append([]float64(nil), seedDensity...),
	}
	for _, i := range order {
		inst := &nl.Insts[i]
		c := nl.Cell(i)
		out := inst.Out
		if c.IsTie() {
			if c.Eval(nil) {
				res.Prob[out] = 1
			} else {
				res.Prob[out] = 0
			}
			res.Density[out] = 0
			continue
		}
		n := len(inst.Inputs)
		// Enumerate all input combinations once; reuse for both the
		// signal probability and every Boolean difference.
		var in [8]bool
		pOut := 0.0
		dOut := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w := 1.0
			for k := 0; k < n; k++ {
				in[k] = mask>>k&1 == 1
				p := res.Prob[inst.Inputs[k]]
				if in[k] {
					w *= p
				} else {
					w *= 1 - p
				}
			}
			if w == 0 {
				continue
			}
			if c.Eval(in[:n]) {
				pOut += w
			}
		}
		// Boolean difference per input: P(f flips when x_k flips),
		// weighted over the other inputs only.
		for k := 0; k < n; k++ {
			dk := res.Density[inst.Inputs[k]]
			if dk == 0 {
				continue
			}
			pd := 0.0
			for mask := 0; mask < 1<<n; mask++ {
				if mask>>k&1 == 1 {
					continue // enumerate others; x_k handled explicitly
				}
				w := 1.0
				for j := 0; j < n; j++ {
					if j == k {
						continue
					}
					in[j] = mask>>j&1 == 1
					p := res.Prob[inst.Inputs[j]]
					if in[j] {
						w *= p
					} else {
						w *= 1 - p
					}
				}
				if w == 0 {
					continue
				}
				in[k] = false
				f0 := c.Eval(in[:n])
				in[k] = true
				f1 := c.Eval(in[:n])
				if f0 != f1 {
					pd += w
				}
			}
			dOut += pd * dk
		}
		res.Prob[out] = pOut
		res.Density[out] = dOut
	}
	return res, nil
}

// SeedsFromSimulation derives propagation seeds from a gate-level
// simulation: primary inputs and sequential outputs take their
// simulated toggle rates; signal probabilities default to 0.5 for
// those seeds (the simulator does not record duty cycles).
// Combinational entries are zeroed and filled in by Propagate.
func SeedsFromSimulation(nl *netlist.Netlist, activity []float64) (prob, dens []float64, err error) {
	if len(activity) != nl.NumNets() {
		return nil, nil, fmt.Errorf("density: activity covers %d nets, want %d", len(activity), nl.NumNets())
	}
	prob = make([]float64, nl.NumNets())
	dens = make([]float64, nl.NumNets())
	seed := func(n int) {
		prob[n] = 0.5
		dens[n] = activity[n]
	}
	for _, n := range nl.PIs {
		seed(n)
	}
	for i := range nl.Insts {
		if nl.IsSequential(i) {
			seed(nl.Insts[i].Out)
		}
	}
	return prob, dens, nil
}

// GlitchAwareActivity returns a per-net activity vector whose
// combinational entries come from transition-density propagation while
// sequential and primary-input entries keep their simulated values:
// a drop-in replacement for power.Inputs.Activity that includes an
// estimate of glitch power.
func GlitchAwareActivity(nl *netlist.Netlist, simActivity []float64) ([]float64, error) {
	prob, dens, err := SeedsFromSimulation(nl, simActivity)
	if err != nil {
		return nil, err
	}
	res, err := Propagate(nl, prob, dens)
	if err != nil {
		return nil, err
	}
	out := append([]float64(nil), res.Density...)
	for _, n := range nl.PIs {
		out[n] = simActivity[n]
	}
	for i := range nl.Insts {
		if nl.IsSequential(i) {
			out[nl.Insts[i].Out] = simActivity[nl.Insts[i].Out]
		}
	}
	return out, nil
}
