package tmodel

import (
	"sort"

	"vipipe/internal/cell"
)

// modelMeta is the signature-independent part of a Model.
type modelMeta struct {
	ClockPS      float64
	Islands      int
	MaxDeltaFrac float64
	LnomNM       float64
	Tech         cell.Tech
	ShifterPS    float64
	Pos          string
	Strategy     string
}

// cellData is everything assemble needs to know about one global cell.
type cellData struct {
	base, setup float64
	lg, derate  float64
	lo, hi      float64
	group       int32
	x, y        float64
}

// assemble compiles a set of global-ID path signatures into a Model:
// canonical signature order, local cell IDs assigned in first-use
// order over the sorted signatures, per-sig group sums precomputed.
// The output depends only on the *set* of signatures (and the cell
// data they reference), never on their arrival order — Merge's
// order-invariance rests on this.
func assemble(meta modelMeta, sigs []gsig, cellAt func(global int32) cellData) *Model {
	sortSigs(sigs)

	m := &Model{
		ClockPS:      meta.ClockPS,
		Islands:      meta.Islands,
		MaxDeltaFrac: meta.MaxDeltaFrac,
		LnomNM:       meta.LnomNM,
		Tech:         meta.Tech,
		ShifterPS:    meta.ShifterPS,
		Pos:          meta.Pos,
		Strategy:     meta.Strategy,
	}
	local := make(map[int32]int32)
	intern := func(g int32) int32 {
		if id, ok := local[g]; ok {
			return id
		}
		id := int32(m.Cells.NumCells())
		local[g] = id
		d := cellAt(g)
		m.Cells.Inst = append(m.Cells.Inst, g)
		m.Cells.BasePS = append(m.Cells.BasePS, d.base)
		m.Cells.SetupPS = append(m.Cells.SetupPS, d.setup)
		m.Cells.LgNM = append(m.Cells.LgNM, d.lg)
		m.Cells.Derate = append(m.Cells.Derate, d.derate)
		m.Cells.LoScale = append(m.Cells.LoScale, d.lo)
		m.Cells.HiScale = append(m.Cells.HiScale, d.hi)
		m.Cells.Group = append(m.Cells.Group, d.group)
		m.Cells.XUM = append(m.Cells.XUM, d.x)
		m.Cells.YUM = append(m.Cells.YUM, d.y)
		return id
	}

	groups := meta.Islands + 2
	for i := range sigs {
		g := &sigs[i]
		s := Sig{
			Stage:   g.stage,
			Ep:      g.ep,
			Launch:  -1,
			Cap:     -1,
			CapWire: g.capWire,
			SumLo:   make([]float64, groups),
			SumHi:   make([]float64, groups),
		}
		// Sum in path order (launch, then hops) so the accumulation is
		// deterministic.
		addCell := func(g int32) int32 {
			id := intern(g)
			grp := m.Cells.Group[id]
			s.SumLo[grp] += m.Cells.BasePS[id] * m.Cells.LoScale[id]
			s.SumHi[grp] += m.Cells.BasePS[id] * m.Cells.HiScale[id]
			return id
		}
		if g.launch >= 0 {
			s.Launch = addCell(g.launch)
		}
		for j, c := range g.hops {
			s.Hops = append(s.Hops, addCell(c))
			s.HopWire = append(s.HopWire, g.hopWire[j])
			s.WireSum += g.hopWire[j]
		}
		if g.capInst >= 0 {
			s.Cap = intern(g.capInst)
		}
		s.WireSum += g.capWire
		m.Sigs = append(m.Sigs, s)
	}
	return m
}

// sortSigs orders signatures canonically: stage, endpoint, launch,
// path length, then the global cell sequence.
func sortSigs(sigs []gsig) {
	sort.Slice(sigs, func(i, j int) bool {
		a, b := &sigs[i], &sigs[j]
		if a.stage != b.stage {
			return a.stage < b.stage
		}
		if a.ep != b.ep {
			return a.ep < b.ep
		}
		if a.launch != b.launch {
			return a.launch < b.launch
		}
		if len(a.hops) != len(b.hops) {
			return len(a.hops) < len(b.hops)
		}
		for k := range a.hops {
			if a.hops[k] != b.hops[k] {
				return a.hops[k] < b.hops[k]
			}
		}
		return false
	})
}

// globalSigs converts a model's signatures back to global-ID form.
func (m *Model) globalSigs() []gsig {
	out := make([]gsig, 0, len(m.Sigs))
	for i := range m.Sigs {
		s := &m.Sigs[i]
		g := gsig{
			stage:   s.Stage,
			ep:      s.Ep,
			launch:  -1,
			capWire: s.CapWire,
			capInst: -1,
		}
		if s.Launch >= 0 {
			g.launch = m.Cells.Inst[s.Launch]
		}
		for j, c := range s.Hops {
			g.hops = append(g.hops, m.Cells.Inst[c])
			g.hopWire = append(g.hopWire, s.HopWire[j])
		}
		if s.Cap >= 0 {
			g.capInst = m.Cells.Inst[s.Cap]
		}
		out = append(out, g)
	}
	return out
}

// cellDataAt reads one global cell's data back out of the table.
func (m *Model) cellDataAt(local int32) cellData {
	c := &m.Cells
	return cellData{
		base:   c.BasePS[local],
		setup:  c.SetupPS[local],
		lg:     c.LgNM[local],
		derate: c.Derate[local],
		lo:     c.LoScale[local],
		hi:     c.HiScale[local],
		group:  c.Group[local],
		x:      c.XUM[local],
		y:      c.YUM[local],
	}
}
