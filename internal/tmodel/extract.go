package tmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/sta"
)

// ExtractInput bundles everything extraction needs: the kernel's
// flattened timing structure plus the per-instance operating data of
// the chip position the model is for.
type ExtractInput struct {
	// View is the timing structure (sta.Kernel.View()); all slices are
	// read-only.
	View    sta.KernelView
	ClockPS float64
	// Region is the per-instance island region, vi.Partition.Region
	// semantics: 1..Islands for island cells, any larger value for
	// cells never raised. nil = no islands.
	Region  []int32
	Islands int
	// LgNM is the systematic gate length per instance at the model's
	// chip position; Derate the slack-recovery factors (nil = ones).
	LgNM   []float64
	Derate []float64
	// XUM/YUM are placement centers in microns.
	XUM, YUM []float64
	Tech     cell.Tech
	LnomNM   float64
	// ShifterPS is the nominal per-crossing level-shifter delay for
	// shifter-cost estimates.
	ShifterPS float64
	Pos       string
	Strategy  string
	// PathsPerStage is how many worst endpoints per stage have their
	// paths stored per probe corner (default 4).
	PathsPerStage int
	// MaxDeltaFrac bounds overlay queries (default 0.08).
	MaxDeltaFrac float64
}

// Extract probes the island-raise corners of the design, backtracks
// the worst paths per stage at each corner, and compiles the union
// into a compact Model, validating the composition against exact STA
// to establish BoundPS. Extraction is deterministic: the same input
// produces a byte-identical model.
func Extract(in ExtractInput) (*Model, error) {
	n := len(in.View.Out)
	if n == 0 {
		return nil, flowerr.BadInputf("tmodel: empty netlist view")
	}
	if in.ClockPS <= 0 {
		return nil, flowerr.BadInputf("tmodel: clock period %g must be positive", in.ClockPS)
	}
	if len(in.LgNM) != n || len(in.XUM) != n || len(in.YUM) != n {
		return nil, flowerr.BadInputf("tmodel: per-instance inputs cover %d/%d/%d of %d cells",
			len(in.LgNM), len(in.XUM), len(in.YUM), n)
	}
	if in.Region != nil && len(in.Region) != n {
		return nil, flowerr.BadInputf("tmodel: region length %d != %d cells", len(in.Region), n)
	}
	if in.Derate != nil && len(in.Derate) != n {
		return nil, flowerr.BadInputf("tmodel: derate length %d != %d cells", len(in.Derate), n)
	}
	if in.Islands < 0 {
		return nil, flowerr.BadInputf("tmodel: island count %d must be >= 0", in.Islands)
	}
	if in.PathsPerStage <= 0 {
		in.PathsPerStage = 4
	}
	if in.MaxDeltaFrac <= 0 {
		in.MaxDeltaFrac = 0.08
	}

	// Per-instance island group and full low/high scale vectors, the
	// same recipe mc's inner loop applies (cached scaler x derate), so
	// model terms match the exact path bit for bit at the corners.
	group := make([]int32, n)
	for i := 0; i < n; i++ {
		group[i] = int32(in.Islands) + 1
		if in.Region != nil {
			if r := in.Region[i]; r >= 1 && r <= int32(in.Islands) {
				group[i] = r
			}
		}
	}
	loScaler := in.Tech.DelayScaler(in.Tech.VddLow)
	hiScaler := in.Tech.DelayScaler(in.Tech.VddHigh)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := 0; i < n; i++ {
		l, h := loScaler(in.LgNM[i]), hiScaler(in.LgNM[i])
		if in.Derate != nil {
			l *= in.Derate[i]
			h *= in.Derate[i]
		}
		lo[i], hi[i] = l, h
	}

	e := newExtractor(in.View)
	scale := make([]float64, n)
	buildScale := func(raise int, ov *Disc) {
		var deltaNM, r2 float64
		if ov != nil {
			deltaNM = in.LnomNM * ov.DeltaFrac
			r2 = ov.RMM * ov.RMM
		}
		for i := 0; i < n; i++ {
			raised := group[i] <= int32(raise)
			if ov != nil {
				dx := in.XUM[i]/1000 - ov.XMM
				dy := in.YUM[i]/1000 - ov.YMM
				if dx*dx+dy*dy <= r2 {
					lg := in.LgNM[i] + deltaNM
					s := loScaler(lg)
					if raised {
						s = hiScaler(lg)
					}
					if in.Derate != nil {
						s *= in.Derate[i]
					}
					scale[i] = s
					continue
				}
			}
			if raised {
				scale[i] = hi[i]
			} else {
				scale[i] = lo[i]
			}
		}
	}

	// Probe every raise corner, keep the union of worst-path
	// signatures per stage.
	var sigs []gsig
	seen := make(map[string]bool)
	for raise := 0; raise <= in.Islands; raise++ {
		buildScale(raise, nil)
		e.run(scale)
		eps := e.endpoints(in.ClockPS, scale)
		for _, ep := range worstPerStage(eps, in.PathsPerStage) {
			s, ok := e.backtrack(ep)
			if !ok {
				continue
			}
			if k := s.key(); !seen[k] {
				seen[k] = true
				sigs = append(sigs, s)
			}
		}
	}
	if len(sigs) == 0 {
		return nil, flowerr.BadInputf("tmodel: no constrained paths to model")
	}

	m := assemble(modelMeta{
		ClockPS:      in.ClockPS,
		Islands:      in.Islands,
		MaxDeltaFrac: in.MaxDeltaFrac,
		LnomNM:       in.LnomNM,
		Tech:         in.Tech,
		ShifterPS:    in.ShifterPS,
		Pos:          in.Pos,
		Strategy:     in.Strategy,
	}, sigs, func(g int32) cellData {
		return cellData{
			base:   in.View.BasePS[g],
			setup:  in.View.SetupPS[g],
			lg:     in.LgNM[g],
			derate: derateAt(in.Derate, g),
			lo:     lo[g],
			hi:     hi[g],
			group:  group[g],
			x:      in.XUM[g],
			y:      in.YUM[g],
		}
	})

	// Validate the composition against exact STA over the query
	// domain: every raise corner, plus overlay discs at deterministic
	// positions and the extreme excursions. The worst observed gap,
	// doubled with a half-picosecond floor, becomes the stated bound.
	worstGap := 0.0
	note := func(exactCrit float64, lanes *laneSet, ans Answer) {
		if g := math.Abs(exactCrit - ans.CritPS); g > worstGap {
			worstGap = g
		}
		for _, sa := range ans.PerStage {
			if !lanes.present[sa.Stage] {
				continue
			}
			if g := math.Abs(sa.WorstSlackPS - lanes.slack[sa.Stage]); g > worstGap {
				worstGap = g
			}
		}
	}
	probe := func(raise int, ov *Disc) error {
		buildScale(raise, ov)
		e.run(scale)
		crit, lanes := e.summarize(in.ClockPS, scale)
		ans, err := m.Eval(Query{Raise: raise, Overlay: ov})
		if err != nil {
			return err
		}
		note(crit, lanes, ans)
		return nil
	}
	for raise := 0; raise <= in.Islands; raise++ {
		if err := probe(raise, nil); err != nil {
			return nil, err
		}
	}
	minX, maxX := minMax(in.XUM)
	minY, maxY := minMax(in.YUM)
	spanMM := math.Max(maxX-minX, maxY-minY) / 1000
	for _, fx := range []float64{0.3, 0.7} {
		for _, fy := range []float64{0.3, 0.7} {
			for _, df := range []float64{-in.MaxDeltaFrac, in.MaxDeltaFrac} {
				ov := &Disc{
					XMM:       (minX + fx*(maxX-minX)) / 1000,
					YMM:       (minY + fy*(maxY-minY)) / 1000,
					RMM:       0.35 * spanMM,
					DeltaFrac: df,
				}
				for raise := 0; raise <= in.Islands; raise++ {
					if err := probe(raise, ov); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	m.BoundPS = 2*worstGap + 0.5
	return m, nil
}

func derateAt(derate []float64, g int32) float64 {
	if derate == nil {
		return 1
	}
	return derate[g]
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// gsig is a path signature in global instance IDs, the intermediate
// representation between backtracking and model assembly.
type gsig struct {
	stage   netlist.Stage
	ep      int32 // global endpoint inst, netlist.NoInst for a PO
	launch  int32 // global launch flop, -1 for a PI launch
	hops    []int32
	hopWire []float64
	capWire float64
	capInst int32 // global capture flop, -1 for a PO
}

// key is the dedup identity of a signature: the endpoint and the exact
// cell sequence (wires are functions of the cells, so they need no
// encoding).
func (s *gsig) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|", s.stage, s.ep, s.launch)
	for _, c := range s.hops {
		fmt.Fprintf(&b, "%d,", c)
	}
	return b.String()
}

// epoint is one evaluated timing endpoint.
type epoint struct {
	inst  int32 // global, netlist.NoInst for a PO
	net   int32
	stage netlist.Stage
	t     float64
	slack float64
}

// extractor replays the kernel's exact arrival propagation over a
// view, with backtracking: the forward float expressions replicate
// Kernel.propagate operation for operation.
type extractor struct {
	v   sta.KernelView
	arr []float64
	drv []int32 // driving instance per net, -1 for PIs
	eps []epoint
}

func newExtractor(v sta.KernelView) *extractor {
	e := &extractor{
		v:   v,
		arr: make([]float64, len(v.WirePS)),
		drv: make([]int32, len(v.WirePS)),
	}
	for n := range e.drv {
		e.drv[n] = -1
	}
	for i := range v.Out {
		e.drv[v.Out[i]] = int32(i)
	}
	return e
}

func (e *extractor) run(scale []float64) {
	v := e.v
	arr := e.arr
	neg := math.Inf(-1)
	for n := range arr {
		arr[n] = neg
	}
	for _, n := range v.PIs {
		arr[n] = 0
	}
	for _, i := range v.Seq {
		arr[v.Out[i]] = v.BasePS[i] * scale[i]
	}
	for _, i := range v.Order {
		if v.IsTie[i] {
			continue
		}
		worst := neg
		for _, n := range v.InNet[v.InPtr[i]:v.InPtr[i+1]] {
			if t := arr[n] + v.WirePS[n]; t > worst {
				worst = t
			}
		}
		if worst == neg {
			arr[v.Out[i]] = neg
			continue
		}
		arr[v.Out[i]] = worst + v.BasePS[i]*scale[i]
	}
}

// endpoints evaluates every constrained endpoint against the retained
// arrivals, flop D pins in ascending instance order then primary
// outputs — the Analyzer's endpoint order.
func (e *extractor) endpoints(clockPS float64, scale []float64) []epoint {
	v := e.v
	arr := e.arr
	neg := math.Inf(-1)
	e.eps = e.eps[:0]
	for _, i := range v.Seq {
		need := clockPS - v.SetupPS[i]*scale[i]
		n := v.InNet[v.InPtr[i]]
		t := arr[n] + v.WirePS[n]
		if t == neg {
			continue
		}
		e.eps = append(e.eps, epoint{inst: int32(i), net: n, stage: v.Stage[i], t: t, slack: need - t})
	}
	for _, n := range v.POs {
		t := arr[n] + v.WirePS[n]
		if t == neg {
			continue
		}
		e.eps = append(e.eps, epoint{inst: netlist.NoInst, net: int32(n), stage: netlist.StageNone, t: t, slack: clockPS - t})
	}
	return e.eps
}

// laneSet is the exact per-stage summary used for validation.
type laneSet struct {
	slack   [netlist.NumStages]float64
	present [netlist.NumStages]bool
}

// summarize reduces the retained arrivals to the exact critical path
// and per-stage worst slacks.
func (e *extractor) summarize(clockPS float64, scale []float64) (float64, *laneSet) {
	lanes := &laneSet{}
	for s := range lanes.slack {
		lanes.slack[s] = math.Inf(1)
	}
	crit := 0.0
	for _, ep := range e.endpoints(clockPS, scale) {
		// Replicate RunInto's crit expression: t + (clock - need),
		// with need reconstructed exactly as it was computed.
		var n float64
		if ep.inst != netlist.NoInst {
			n = clockPS - e.v.SetupPS[ep.inst]*scale[ep.inst]
		} else {
			n = clockPS
		}
		if c := ep.t + (clockPS - n); c > crit {
			crit = c
		}
		lanes.present[ep.stage] = true
		if ep.slack < lanes.slack[ep.stage] {
			lanes.slack[ep.stage] = ep.slack
		}
	}
	return crit, lanes
}

// worstPerStage returns, per covered stage, the k endpoints with the
// smallest slack (stable on ties, so the selection is deterministic).
func worstPerStage(eps []epoint, k int) []epoint {
	byStage := make([][]epoint, netlist.NumStages)
	for _, ep := range eps {
		byStage[ep.stage] = append(byStage[ep.stage], ep)
	}
	var out []epoint
	for s := range byStage {
		lane := byStage[s]
		sort.SliceStable(lane, func(i, j int) bool { return lane[i].slack < lane[j].slack })
		if len(lane) > k {
			lane = lane[:k]
		}
		out = append(out, lane...)
	}
	return out
}

// backtrack walks the worst path into an endpoint startpoint-first,
// picking the latest-arriving input at each hop exactly like
// Analyzer.CriticalPath (strictly-greater comparison, first input
// wins ties).
func (e *extractor) backtrack(ep epoint) (gsig, bool) {
	v := e.v
	s := gsig{
		stage:   ep.stage,
		ep:      ep.inst,
		launch:  -1,
		capWire: v.WirePS[ep.net],
		capInst: ep.inst,
	}
	if ep.inst == netlist.NoInst {
		s.capInst = -1
	}
	net := ep.net
	var revCells []int32
	var revWire []float64
	for {
		d := e.drv[net]
		if d < 0 {
			break // primary-input launch
		}
		if v.IsSeq[d] {
			s.launch = d
			break
		}
		if v.IsTie[d] {
			return s, false // constant path: never on a finite arrival
		}
		best, bestT := int32(-1), math.Inf(-1)
		for _, n := range v.InNet[v.InPtr[d]:v.InPtr[d+1]] {
			if t := e.arr[n] + v.WirePS[n]; t > bestT {
				bestT, best = t, n
			}
		}
		if best < 0 {
			return s, false
		}
		revCells = append(revCells, d)
		revWire = append(revWire, v.WirePS[best])
		net = best
	}
	for i := len(revCells) - 1; i >= 0; i-- {
		s.hops = append(s.hops, revCells[i])
		s.hopWire = append(s.hopWire, revWire[i])
	}
	return s, true
}
