package tmodel

import (
	"fmt"
	"math"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/sta"
)

// ovCtx is the per-query overlay pricing context.
type ovCtx struct {
	xmm, ymm, r2 float64
	deltaNM      float64
	loScaler     func(float64) float64
	hiScaler     func(float64) float64
}

// Eval answers one what-if query by re-pricing the stored path
// signatures, in microseconds instead of a full STA walk. The answer
// is exact-within-BoundPS for in-domain queries; out-of-domain queries
// (raise beyond the island count, overlay excursion beyond
// MaxDeltaFrac) fail with an error wrapping ErrOutOfDomain so the
// caller can fall back to exact STA.
func (m *Model) Eval(q Query) (Answer, error) {
	if q.Raise < 0 || q.Raise > m.Islands {
		return Answer{}, fmt.Errorf("%w: raise %d outside 0..%d", ErrOutOfDomain, q.Raise, m.Islands)
	}
	var ov *ovCtx
	if q.Overlay != nil {
		if q.Overlay.RMM <= 0 {
			return Answer{}, flowerr.BadInputf("tmodel: overlay radius %g must be positive", q.Overlay.RMM)
		}
		if math.Abs(q.Overlay.DeltaFrac) > m.MaxDeltaFrac {
			return Answer{}, fmt.Errorf("%w: overlay delta %g beyond validated ±%g",
				ErrOutOfDomain, q.Overlay.DeltaFrac, m.MaxDeltaFrac)
		}
		ov = &ovCtx{
			xmm:      q.Overlay.XMM,
			ymm:      q.Overlay.YMM,
			r2:       q.Overlay.RMM * q.Overlay.RMM,
			deltaNM:  m.LnomNM * q.Overlay.DeltaFrac,
			loScaler: m.Tech.DelayScaler(m.Tech.VddLow),
			hiScaler: m.Tech.DelayScaler(m.Tech.VddHigh),
		}
	}

	ans := Answer{WorstSlackPS: math.Inf(1), BoundPS: m.BoundPS}
	var lanes [netlist.NumStages]StageAnswer
	var present [netlist.NumStages]bool
	for s := range lanes {
		lanes[s].WorstSlackPS = math.Inf(1)
	}
	raise := int32(q.Raise)
	// Overlay queries price each interned cell once up front — paths
	// share cells heavily, and the Vdd scaler is the expensive part —
	// so the per-sig walk below is pure adds.
	var scales []float64
	if ov != nil {
		scales = m.queryScales(raise, ov)
	}
	for i := range m.Sigs {
		s := &m.Sigs[i]
		var t float64
		if ov == nil {
			// Raise-only fast path: group sums, O(Islands) per sig.
			t = s.WireSum
			for g := 1; g < len(s.SumLo); g++ {
				if int32(g) <= raise {
					t += s.SumHi[g]
				} else {
					t += s.SumLo[g]
				}
			}
		} else {
			t = m.walkSig(s, scales)
		}
		need := m.ClockPS
		if s.Cap >= 0 {
			setupScale := m.cellScale(s.Cap, raise, ov)
			if ov != nil {
				setupScale = scales[s.Cap]
			}
			need = m.ClockPS - m.Cells.SetupPS[s.Cap]*setupScale
		}
		var cross int
		if q.Shifters {
			cross = m.crossings(s)
			t += float64(cross) * m.ShifterPS
		}
		slack := need - t
		if c := t + (m.ClockPS - need); c > ans.CritPS {
			ans.CritPS = c
			ans.Crossings = cross
			if q.Shifters {
				ans.ShifterPS = float64(cross) * m.ShifterPS
			}
		}
		if slack < ans.WorstSlackPS {
			ans.WorstSlackPS = slack
		}
		if slack < lanes[s.Stage].WorstSlackPS {
			lanes[s.Stage] = StageAnswer{Stage: s.Stage, WorstSlackPS: slack, Endpoint: s.Ep}
		}
		present[s.Stage] = true
	}
	for st := netlist.Stage(0); st < netlist.NumStages; st++ {
		if present[st] {
			ans.PerStage = append(ans.PerStage, lanes[st])
		}
	}
	ans.FmaxMHz = sta.FmaxMHz(ans.CritPS)
	return ans, nil
}

// cellScale prices one cell's delay scale under the query: the
// precomputed supply scale, unless the cell sits inside the overlay
// disc, in which case it is re-priced at the excursed gate length —
// the exact recipe the full-STA path applies.
func (m *Model) cellScale(c int32, raise int32, ov *ovCtx) float64 {
	raised := m.Cells.Group[c] <= raise
	if ov != nil {
		dx := m.Cells.XUM[c]/1000 - ov.xmm
		dy := m.Cells.YUM[c]/1000 - ov.ymm
		if dx*dx+dy*dy <= ov.r2 {
			lg := m.Cells.LgNM[c] + ov.deltaNM
			s := ov.loScaler(lg)
			if raised {
				s = ov.hiScaler(lg)
			}
			return s * m.Cells.Derate[c]
		}
	}
	if raised {
		return m.Cells.HiScale[c]
	}
	return m.Cells.LoScale[c]
}

// queryScales prices every interned cell under the query, the exact
// per-cell recipe of cellScale applied once per cell instead of once
// per (sig, cell) visit.
func (m *Model) queryScales(raise int32, ov *ovCtx) []float64 {
	n := m.Cells.NumCells()
	scales := make([]float64, n)
	for c := 0; c < n; c++ {
		scales[c] = m.cellScale(int32(c), raise, ov)
	}
	return scales
}

// walkSig prices a signature cell by cell in path order over the
// query's precomputed scale vector, for overlay queries where group
// sums cannot apply.
func (m *Model) walkSig(s *Sig, scales []float64) float64 {
	t := 0.0
	if s.Launch >= 0 {
		t = m.Cells.BasePS[s.Launch] * scales[s.Launch]
	}
	for j, c := range s.Hops {
		t += s.HopWire[j]
		t += m.Cells.BasePS[c] * scales[c]
	}
	return t + s.CapWire
}

// crossings counts the level-shifter sites along a signature's cell
// chain: nets whose sink sits in a lower (inner) island group than the
// driver, where the island flow inserts a shifter.
func (m *Model) crossings(s *Sig) int {
	cross := 0
	prev := int32(-1)
	step := func(c int32) {
		g := m.Cells.Group[c]
		if prev >= 0 && g < prev {
			cross++
		}
		prev = g
	}
	if s.Launch >= 0 {
		step(s.Launch)
	}
	for _, c := range s.Hops {
		step(c)
	}
	if s.Cap >= 0 {
		step(s.Cap)
	}
	return cross
}
