// Package tmodel extracts compact interface timing models from a
// placed netlist and answers what-if timing queries by composing them,
// instead of re-walking the full timing graph.
//
// The model follows the blueprint of Li/Chen/Schlichtmann's "Timing
// Model Extraction for Sequential Circuits Considering Process
// Variations" adapted to this flow's query mix: instead of compressed
// arrival distributions at stage boundaries, the extractor probes the
// island-raise corners of the design (islands 1..k at high Vdd for
// every k), backtracks the worst paths per pipeline stage at each
// corner, and stores the union as path signatures — the launch flop,
// the combinational hop cells, the per-hop wire delays and the capture
// setup, with per-cell delay terms precomputed at both supplies. A
// query ("raise island k", "apply overlay disc D", "what do the level
// shifters on the active crossings cost") then re-prices only the
// stored paths: microseconds instead of a full RunInto walk over ~10⁴
// gates.
//
// Because a composed answer maximizes over a subset of the design's
// paths, it is a lower bound on the exact critical path (and its
// slacks upper bounds). The extractor validates the composition
// against exact STA at deterministic probe corners and overlay discs
// and stores the worst observed gap (doubled, floored) as BoundPS: the
// stated error bound of every in-domain answer. Queries outside the
// validated domain — a raise level the design has no island for, an
// overlay excursion beyond MaxDeltaFrac — fail with ErrOutOfDomain so
// the caller can fall back to exact STA (vipipe.EvalWhatIf does).
package tmodel

import (
	"errors"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
)

// ErrOutOfDomain marks a query that escapes the model's validated
// domain; the caller should re-evaluate with exact STA.
var ErrOutOfDomain = errors.New("tmodel: query outside model validity domain")

// Model is a compact interface timing model of one placed netlist at
// one chip position: the union of worst path signatures over the
// island-raise probe corners, with per-cell low/high-supply delay
// terms precomputed. All fields are pure data (slices and plain
// structs only, no maps), so the gob encoding of a Model is
// deterministic — equal models encode to identical bytes.
type Model struct {
	ClockPS float64
	// Islands is the number of nested voltage islands; the valid raise
	// domain is 0..Islands.
	Islands int
	// BoundPS is the stated error bound: at every validation probe,
	// exact CritPS minus the composed CritPS (and the per-stage slack
	// gaps) stayed within this.
	BoundPS float64
	// MaxDeltaFrac bounds the overlay Lgate excursion (|DeltaFrac|)
	// the model answers for; beyond it is out of domain.
	MaxDeltaFrac float64
	// LnomNM is the nominal gate length overlay deltas are fractions
	// of; Tech re-prices in-disc cells at excursed lengths.
	LnomNM float64
	Tech   cell.Tech
	// ShifterPS is the nominal per-crossing level-shifter delay used
	// by shifter-cost estimates.
	ShifterPS float64
	// Pos and Strategy identify the chip position and island strategy
	// the model was extracted for.
	Pos      string
	Strategy string

	Cells CellTable
	Sigs  []Sig
}

// CellTable is the compacted per-cell data of every cell referenced by
// at least one signature, indexed by model-local cell ID.
type CellTable struct {
	// Inst maps local ID to the global netlist instance.
	Inst []int32
	// BasePS/SetupPS are the characterized nominal delays.
	BasePS  []float64
	SetupPS []float64
	// LgNM is the systematic gate length at the model's position;
	// Derate the slack-recovery factor.
	LgNM   []float64
	Derate []float64
	// LoScale/HiScale are the full delay scales (variation x supply x
	// derate) at low and high Vdd.
	LoScale []float64
	HiScale []float64
	// Group is the island group: 1..Islands for island cells,
	// Islands+1 for cells outside every island (never raised).
	Group []int32
	// XUM/YUM are placement centers, for overlay-disc membership.
	XUM []float64
	YUM []float64
}

// NumCells returns the number of distinct cells the signatures touch.
func (t *CellTable) NumCells() int { return len(t.Inst) }

// Sig is one stored path signature: launch flop, combinational hops
// in path order, capture. Delay terms are indexed by model-local cell
// ID; SumLo/SumHi pre-aggregate the cell delays per island group so
// raise-only queries price the path in O(Islands) instead of O(cells).
type Sig struct {
	Stage netlist.Stage
	// Ep is the global endpoint instance (netlist.NoInst for a PO).
	Ep int32
	// Launch is the local ID of the launching flop, or -1 when the
	// path launches from a primary input.
	Launch int32
	// Hops are the combinational cells in path order; HopWire[j] is
	// the wire delay entering Hops[j].
	Hops    []int32
	HopWire []float64
	// CapWire is the wire delay of the endpoint net; Cap the local ID
	// of the capturing flop (-1 for a PO).
	CapWire float64
	Cap     int32
	// SumLo/SumHi[g] is the sum of base*scale over the path's cells
	// (launch + hops) in island group g, at low/high supply; WireSum
	// is the total wire delay including CapWire. Index 0 is unused.
	SumLo   []float64
	SumHi   []float64
	WireSum float64
}

// Disc is a localized Lgate disturbance, mirroring yield.PosOverlay:
// core-local mm center/radius against placement centers in microns,
// DeltaFrac the systematic excursion as a fraction of nominal Lgate.
type Disc struct {
	XMM, YMM, RMM float64
	DeltaFrac     float64
}

// Query is one what-if evaluation against a model.
type Query struct {
	// Raise powers islands 1..Raise at high Vdd (0 = all low).
	Raise int
	// Overlay, when non-nil, applies the disc's Lgate excursion to the
	// cells inside it.
	Overlay *Disc
	// Shifters adds the estimated cost of the level shifters on the
	// path's active domain crossings to the answer.
	Shifters bool
}

// StageAnswer is one pipeline stage's slice of an Answer.
type StageAnswer struct {
	Stage        netlist.Stage
	WorstSlackPS float64
	// Endpoint is the global instance of the worst endpoint
	// (netlist.NoInst for a PO).
	Endpoint int32
}

// Answer is the result of one what-if evaluation.
type Answer struct {
	CritPS       float64
	FmaxMHz      float64
	WorstSlackPS float64
	// PerStage lists the covered stages in ascending stage order.
	PerStage []StageAnswer
	// BoundPS is the model's stated error bound (0 when Exact).
	BoundPS float64
	// Exact marks an answer produced by the exact-STA fallback rather
	// than model composition.
	Exact bool
	// Crossings/ShifterPS report the shifter estimate for Shifters
	// queries: active low-to-high crossings on the stored paths and
	// the composed delay penalty folded into CritPS. The penalty is a
	// first-order composition-only estimate; the exact fallback path
	// ignores Shifters and reports zero crossings.
	Crossings int
	ShifterPS float64
}
