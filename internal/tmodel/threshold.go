package tmodel

import (
	"math"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/sta"
)

// ThresholdModel answers one family of queries against one fixed
// per-cell delay sample: "what are the critical path and per-stage
// slacks when every cell with axis coordinate <= bound runs at high
// supply?" — the exact question vi's binary boundary search asks once
// per probe per sample. The model stores the worst paths backtracked
// at a handful of probe bounds; EvalBound re-prices them in
// microseconds. Like Model, a composed answer is a lower bound on the
// exact critical path, so a boundary the model accepts may rarely be
// one the exact check would reject — callers needing certainty
// re-verify the final boundary exactly.
type ThresholdModel struct {
	clockPS float64
	sigs    []tsig
}

// tcell is one path cell's pricing data: its axis coordinate and its
// full delay contribution at low and high supply.
type tcell struct {
	axis   float64
	lo, hi float64
}

// tsig is one stored path: launch + hops in path order with the wire
// delay entering each, then the capture setup terms.
type tsig struct {
	stage   netlist.Stage
	cells   []tcell
	wireIn  []float64
	wireSum float64
	// capAxis/capLo/capHi price the capture setup (zero for a PO).
	capAxis      float64
	capLo, capHi float64
	hasCap       bool
}

// ThresholdInput bundles what threshold extraction needs.
type ThresholdInput struct {
	View    sta.KernelView
	ClockPS float64
	// Axis is the per-instance boundary coordinate (vi's axisPos).
	Axis []float64
	// LoScale/HiScale are the sample's full per-instance delay scales
	// at low and high supply.
	LoScale, HiScale []float64
	// Probes are the bounds to extract worst paths at; at least one.
	Probes []float64
	// PathsPerStage defaults to 4.
	PathsPerStage int
}

// ExtractThreshold probes the given bounds with exact propagation and
// stores the union of worst paths per stage.
func ExtractThreshold(in ThresholdInput) (*ThresholdModel, error) {
	n := len(in.View.Out)
	if n == 0 || len(in.Axis) != n || len(in.LoScale) != n || len(in.HiScale) != n {
		return nil, flowerr.BadInputf("tmodel: threshold inputs cover %d/%d/%d of %d cells",
			len(in.Axis), len(in.LoScale), len(in.HiScale), n)
	}
	if len(in.Probes) == 0 {
		return nil, flowerr.BadInputf("tmodel: threshold extraction needs at least one probe bound")
	}
	if in.PathsPerStage <= 0 {
		in.PathsPerStage = 4
	}

	e := newExtractor(in.View)
	scale := make([]float64, n)
	tm := &ThresholdModel{clockPS: in.ClockPS}
	seen := make(map[string]bool)
	for _, bound := range in.Probes {
		for i := 0; i < n; i++ {
			if in.Axis[i] <= bound {
				scale[i] = in.HiScale[i]
			} else {
				scale[i] = in.LoScale[i]
			}
		}
		e.run(scale)
		eps := e.endpoints(in.ClockPS, scale)
		for _, ep := range worstPerStage(eps, in.PathsPerStage) {
			g, ok := e.backtrack(ep)
			if !ok {
				continue
			}
			k := g.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			tm.sigs = append(tm.sigs, makeTsig(&g, in))
		}
	}
	if len(tm.sigs) == 0 {
		return nil, flowerr.BadInputf("tmodel: no constrained paths to model")
	}
	return tm, nil
}

func makeTsig(g *gsig, in ThresholdInput) tsig {
	s := tsig{stage: g.stage}
	add := func(c int32, wire float64) {
		s.cells = append(s.cells, tcell{
			axis: in.Axis[c],
			lo:   in.View.BasePS[c] * in.LoScale[c],
			hi:   in.View.BasePS[c] * in.HiScale[c],
		})
		s.wireIn = append(s.wireIn, wire)
		s.wireSum += wire
	}
	if g.launch >= 0 {
		add(g.launch, 0)
	}
	for j, c := range g.hops {
		add(c, g.hopWire[j])
	}
	s.wireSum += g.capWire
	if g.capInst >= 0 {
		c := g.capInst
		s.hasCap = true
		s.capAxis = in.Axis[c]
		s.capLo = in.View.SetupPS[c] * in.LoScale[c]
		s.capHi = in.View.SetupPS[c] * in.HiScale[c]
	}
	return s
}

// BoundResult is one EvalBound answer.
type BoundResult struct {
	CritPS  float64
	Slack   [netlist.NumStages]float64
	Present [netlist.NumStages]bool
}

// EvalBound prices the stored paths at one boundary position.
func (tm *ThresholdModel) EvalBound(bound float64) BoundResult {
	var r BoundResult
	for s := range r.Slack {
		r.Slack[s] = math.Inf(1)
	}
	for i := range tm.sigs {
		s := &tm.sigs[i]
		t := s.wireSum
		for j := range s.cells {
			c := &s.cells[j]
			if c.axis <= bound {
				t += c.hi
			} else {
				t += c.lo
			}
		}
		need := tm.clockPS
		if s.hasCap {
			setup := s.capLo
			if s.capAxis <= bound {
				setup = s.capHi
			}
			need = tm.clockPS - setup
		}
		slack := need - t
		if c := t + (tm.clockPS - need); c > r.CritPS {
			r.CritPS = c
		}
		if slack < r.Slack[s.stage] {
			r.Slack[s.stage] = slack
		}
		r.Present[s.stage] = true
	}
	return r
}

// NumSigs reports how many paths the model stores.
func (tm *ThresholdModel) NumSigs() int { return len(tm.sigs) }
