package tmodel

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
)

// regionNone mirrors vi.RegionNone (not imported: vi depends on
// tmodel for its model-backed checks).
const regionNone = math.MaxInt32

// fix is the shared extraction fixture: the small vex core with a
// synthetic two-island region split by x position.
type fix struct {
	a    *sta.Analyzer
	kern *sta.Kernel
	in   ExtractInput
}

func newFix(t *testing.T) *fix {
	t.Helper()
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Global(core.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sta.New(core.NL, pl)
	if err != nil {
		t.Fatal(err)
	}
	clock := a.Run(1e9, nil).CritPS * 1.02
	derate := a.SlackRecovery(clock, sta.DefaultRecoveryTargets(), 12, 10)
	kern := sta.NewKernel(a)
	n := kern.NumCells()

	vm := variation.Default()
	lg := make([]float64, n)
	xum := make([]float64, n)
	yum := make([]float64, n)
	for i := 0; i < n; i++ {
		cx, cy := pl.Center(i)
		xum[i], yum[i] = cx, cy
		lg[i] = vm.SystematicLgateNM(1+cx/1000, 1+cy/1000)
	}
	// Two nested islands by x position: inner third region 1, middle
	// third region 2, the rest outside every island.
	xs := append([]float64(nil), xum...)
	sort.Float64s(xs)
	t1, t2 := xs[n/3], xs[2*n/3]
	region := make([]int32, n)
	for i := 0; i < n; i++ {
		switch {
		case xum[i] <= t1:
			region[i] = 1
		case xum[i] <= t2:
			region[i] = 2
		default:
			region[i] = regionNone
		}
	}

	return &fix{a: a, kern: kern, in: ExtractInput{
		View:          kern.View(),
		ClockPS:       clock,
		Region:        region,
		Islands:       2,
		LgNM:          lg,
		Derate:        derate,
		XUM:           xum,
		YUM:           yum,
		Tech:          core.NL.Lib.Tech,
		LnomNM:        vm.LnomNM,
		ShifterPS:     12,
		Pos:           "center",
		Strategy:      "grid",
		PathsPerStage: 4,
		MaxDeltaFrac:  0.08,
	}}
}

// exactScale builds the full per-instance scale vector for a query,
// with the same recipe the extractor validates against.
func (f *fix) exactScale(raise int, ov *Disc) []float64 {
	in := &f.in
	n := len(in.LgNM)
	loS := in.Tech.DelayScaler(in.Tech.VddLow)
	hiS := in.Tech.DelayScaler(in.Tech.VddHigh)
	var deltaNM, r2 float64
	if ov != nil {
		deltaNM = in.LnomNM * ov.DeltaFrac
		r2 = ov.RMM * ov.RMM
	}
	scale := make([]float64, n)
	for i := 0; i < n; i++ {
		raised := in.Region[i] >= 1 && in.Region[i] <= int32(raise)
		lg := in.LgNM[i]
		if ov != nil {
			dx := in.XUM[i]/1000 - ov.XMM
			dy := in.YUM[i]/1000 - ov.YMM
			if dx*dx+dy*dy <= r2 {
				lg += deltaNM
			}
		}
		s := loS(lg)
		if raised {
			s = hiS(lg)
		}
		scale[i] = s * in.Derate[i]
	}
	return scale
}

func encodeModel(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEquivalenceWithinBound pins composed answers to full STA within
// the model's stated bound, on queries distinct from the validation
// probes (intermediate overlay positions and excursions, all raises).
func TestEquivalenceWithinBound(t *testing.T) {
	f := newFix(t)
	m, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	if m.BoundPS <= 0 {
		t.Fatalf("BoundPS = %g, want > 0", m.BoundPS)
	}
	minX, maxX := minMax(f.in.XUM)
	minY, maxY := minMax(f.in.YUM)
	span := math.Max(maxX-minX, maxY-minY) / 1000
	var discs []*Disc
	discs = append(discs, nil)
	for _, fx := range []float64{0.45, 0.6} {
		for _, df := range []float64{-0.04, 0.03, 0.08} {
			discs = append(discs, &Disc{
				XMM:       (minX + fx*(maxX-minX)) / 1000,
				YMM:       (minY + (1-fx)*(maxY-minY)) / 1000,
				RMM:       0.3 * span,
				DeltaFrac: df,
			})
		}
	}
	frame := &sta.Frame{}
	for raise := 0; raise <= f.in.Islands; raise++ {
		for di, ov := range discs {
			ans, err := m.Eval(Query{Raise: raise, Overlay: ov})
			if err != nil {
				t.Fatalf("raise %d disc %d: %v", raise, di, err)
			}
			f.kern.RunFrame(frame, f.in.ClockPS, f.exactScale(raise, ov))
			if gap := frame.CritPS - ans.CritPS; gap > m.BoundPS || gap < -1e-6 {
				t.Errorf("raise %d disc %d: crit gap %g outside (-1e-6, bound %g]; exact %g composed %g",
					raise, di, gap, m.BoundPS, frame.CritPS, ans.CritPS)
			}
			for _, sa := range ans.PerStage {
				if !frame.Present[sa.Stage] {
					t.Errorf("raise %d disc %d: stage %v composed but absent exactly", raise, di, sa.Stage)
					continue
				}
				if gap := sa.WorstSlackPS - frame.Lanes[sa.Stage].WorstSlack; gap > m.BoundPS || gap < -1e-6 {
					t.Errorf("raise %d disc %d stage %v: slack gap %g outside (-1e-6, bound %g]",
						raise, di, sa.Stage, gap, m.BoundPS)
				}
			}
			if ans.Exact {
				t.Errorf("composed answer marked exact")
			}
			if math.Abs(ans.FmaxMHz-sta.FmaxMHz(ans.CritPS)) > 1e-12 {
				t.Errorf("FmaxMHz inconsistent with CritPS")
			}
		}
	}
}

// TestRaiseMonotonic sanity-checks composition physics: raising more
// islands never slows the composed critical path.
func TestRaiseMonotonic(t *testing.T) {
	f := newFix(t)
	m, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for raise := 0; raise <= m.Islands; raise++ {
		ans, err := m.Eval(Query{Raise: raise})
		if err != nil {
			t.Fatal(err)
		}
		if ans.CritPS > prev+1e-9 {
			t.Fatalf("raise %d crit %g exceeds raise %d crit %g", raise, ans.CritPS, raise-1, prev)
		}
		prev = ans.CritPS
	}
}

// TestDeterministicExtraction locks byte-identical re-extraction.
func TestDeterministicExtraction(t *testing.T) {
	f := newFix(t)
	m1, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := encodeModel(t, m1), encodeModel(t, m2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-extraction changed the encoding: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestMergeOrderInvariance splits a model's signatures across stage
// groupings and proves any merge order/grouping rebuilds the identical
// bytes — including a self-merge.
func TestMergeOrderInvariance(t *testing.T) {
	f := newFix(t)
	m, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeModel(t, m)

	// Self-merge must be the identity.
	self, err := Merge(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeModel(t, self), want) {
		t.Fatalf("self-merge changed the encoding")
	}

	// Split signatures into submodels by stage parity, then by
	// round-robin — two different groupings of the same set.
	meta := modelMeta{
		ClockPS: m.ClockPS, Islands: m.Islands, MaxDeltaFrac: m.MaxDeltaFrac,
		LnomNM: m.LnomNM, Tech: m.Tech, ShifterPS: m.ShifterPS,
		Pos: m.Pos, Strategy: m.Strategy,
	}
	localOf := make(map[int32]int32)
	for li, g := range m.Cells.Inst {
		localOf[g] = int32(li)
	}
	cellAt := func(g int32) cellData { return m.cellDataAt(localOf[g]) }
	sub := func(pick func(i int, g *gsig) bool) *Model {
		var sel []gsig
		for i, g := range m.globalSigs() {
			if pick(i, &g) {
				sel = append(sel, g)
			}
		}
		sm := assemble(meta, sel, cellAt)
		sm.BoundPS = m.BoundPS
		return sm
	}
	byStageA := sub(func(_ int, g *gsig) bool { return g.stage%2 == 0 })
	byStageB := sub(func(_ int, g *gsig) bool { return g.stage%2 == 1 })
	rrA := sub(func(i int, _ *gsig) bool { return i%2 == 0 })
	rrB := sub(func(i int, _ *gsig) bool { return i%2 == 1 })

	for name, parts := range map[string][]*Model{
		"stage":          {byStageA, byStageB},
		"stage-reversed": {byStageB, byStageA},
		"roundrobin":     {rrA, rrB},
		"mixed":          {rrB, byStageA, byStageB, rrA},
	} {
		got, err := Merge(parts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(encodeModel(t, got), want) {
			t.Errorf("%s merge diverged from the full model", name)
		}
	}
}

// TestOutOfDomain locks the fallback trigger: raises beyond the island
// count and overlay excursions beyond the validated range report
// ErrOutOfDomain; malformed discs are plain bad input.
func TestOutOfDomain(t *testing.T) {
	f := newFix(t)
	m, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{Raise: -1},
		{Raise: m.Islands + 1},
		{Overlay: &Disc{XMM: 0.1, YMM: 0.1, RMM: 0.2, DeltaFrac: m.MaxDeltaFrac * 1.5}},
	} {
		if _, err := m.Eval(q); !errors.Is(err, ErrOutOfDomain) {
			t.Errorf("query %+v: error %v, want ErrOutOfDomain", q, err)
		}
	}
	if _, err := m.Eval(Query{Overlay: &Disc{RMM: -1}}); err == nil || errors.Is(err, ErrOutOfDomain) {
		t.Errorf("negative radius: error %v, want plain bad input", err)
	}
}

// TestShifterEstimate verifies a shifter query only ever adds delay
// and reports the penalty it folded in.
func TestShifterEstimate(t *testing.T) {
	f := newFix(t)
	m, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.Eval(Query{Raise: 1})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := m.Eval(Query{Raise: 1, Shifters: true})
	if err != nil {
		t.Fatal(err)
	}
	if shifted.CritPS < plain.CritPS {
		t.Fatalf("shifter query sped the path up: %g < %g", shifted.CritPS, plain.CritPS)
	}
	if shifted.ShifterPS != float64(shifted.Crossings)*m.ShifterPS {
		t.Fatalf("penalty %g inconsistent with %d crossings x %g", shifted.ShifterPS, shifted.Crossings, m.ShifterPS)
	}
}

// TestThresholdModelMatchesExact pins the boundary-search model: exact
// (to float noise) at its probe bounds, a lower bound in between.
func TestThresholdModelMatchesExact(t *testing.T) {
	f := newFix(t)
	n := f.kern.NumCells()
	rng := rand.New(rand.NewSource(3))
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := 0; i < n; i++ {
		lo[i] = 0.9 + 0.3*rng.Float64()
		hi[i] = lo[i] * (0.8 + 0.05*rng.Float64())
	}
	minX, maxX := minMax(f.in.XUM)
	probes := []float64{
		minX + 0.25*(maxX-minX),
		minX + 0.5*(maxX-minX),
		minX + 0.75*(maxX-minX),
	}
	tm, err := ExtractThreshold(ThresholdInput{
		View:    f.in.View,
		ClockPS: f.in.ClockPS,
		Axis:    f.in.XUM,
		LoScale: lo,
		HiScale: hi,
		Probes:  probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tm.NumSigs() == 0 {
		t.Fatal("no signatures stored")
	}
	scale := make([]float64, n)
	exact := func(bound float64) float64 {
		for i := 0; i < n; i++ {
			if f.in.XUM[i] <= bound {
				scale[i] = hi[i]
			} else {
				scale[i] = lo[i]
			}
		}
		return f.kern.Run(f.in.ClockPS, scale)
	}
	for _, b := range probes {
		if gap := math.Abs(exact(b) - tm.EvalBound(b).CritPS); gap > 1e-6 {
			t.Errorf("probe bound %g: gap %g, want exact", b, gap)
		}
	}
	for frac := 0.1; frac < 1; frac += 0.1 {
		b := minX + frac*(maxX-minX)
		ex, got := exact(b), tm.EvalBound(b).CritPS
		if got > ex+1e-6 {
			t.Errorf("bound %g: composed %g exceeds exact %g", b, got, ex)
		}
		if got < 0.97*ex {
			t.Errorf("bound %g: composed %g far below exact %g", b, got, ex)
		}
	}
}

// TestModelCoversAllStages checks extraction keeps every pipeline
// stage the design constrains.
func TestModelCoversAllStages(t *testing.T) {
	f := newFix(t)
	m, err := Extract(f.in)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.a.Run(f.in.ClockPS, nil)
	covered := map[netlist.Stage]bool{}
	for _, s := range m.Sigs {
		covered[s.Stage] = true
	}
	for st, lane := range rep.PerStage {
		if lane != nil && !covered[netlist.Stage(st)] {
			t.Errorf("stage %v constrained but not modeled", netlist.Stage(st))
		}
	}
}
