package tmodel

import "vipipe/internal/flowerr"

// Merge unions compatible models extracted from the same placed
// netlist (e.g. per-stage or per-corner partial extractions) into one.
// The result depends only on the set of signatures across the inputs:
// merging in any order, or with any grouping of signatures across the
// inputs, produces a byte-identical model. The merged bound is the
// worst of the inputs' bounds.
func Merge(ms ...*Model) (*Model, error) {
	if len(ms) == 0 {
		return nil, flowerr.BadInputf("tmodel: merge of zero models")
	}
	base := ms[0]
	for _, m := range ms[1:] {
		if m.ClockPS != base.ClockPS || m.Islands != base.Islands ||
			m.MaxDeltaFrac != base.MaxDeltaFrac || m.LnomNM != base.LnomNM ||
			m.Tech != base.Tech || m.ShifterPS != base.ShifterPS ||
			m.Pos != base.Pos || m.Strategy != base.Strategy {
			return nil, flowerr.BadInputf("tmodel: merge of incompatible models (%s/%s vs %s/%s)",
				base.Strategy, base.Pos, m.Strategy, m.Pos)
		}
	}

	// Union signatures in global-ID space, remembering which model can
	// supply each referenced cell's data.
	var sigs []gsig
	seen := make(map[string]bool)
	cellSrc := make(map[int32]cellData)
	for _, m := range ms {
		for li, g := range m.Cells.Inst {
			if _, ok := cellSrc[g]; !ok {
				cellSrc[g] = m.cellDataAt(int32(li))
			}
		}
		for _, s := range m.globalSigs() {
			if k := s.key(); !seen[k] {
				seen[k] = true
				sigs = append(sigs, s)
			}
		}
	}

	out := assemble(modelMeta{
		ClockPS:      base.ClockPS,
		Islands:      base.Islands,
		MaxDeltaFrac: base.MaxDeltaFrac,
		LnomNM:       base.LnomNM,
		Tech:         base.Tech,
		ShifterPS:    base.ShifterPS,
		Pos:          base.Pos,
		Strategy:     base.Strategy,
	}, sigs, func(g int32) cellData { return cellSrc[g] })
	bound := 0.0
	for _, m := range ms {
		if m.BoundPS > bound {
			bound = m.BoundPS
		}
	}
	out.BoundPS = bound
	return out, nil
}
