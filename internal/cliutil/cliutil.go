// Package cliutil carries the flag plumbing shared by the cmd/ tools:
// the common flag set (-small, -seed, -samples, -n, -json, -pos,
// -strategy), profile-based config construction, signal-bound
// contexts, and flowerr-coded exits. Each tool opts into the subset of
// flags it understands before flag.Parse, so per-tool help output
// stays accurate while names, defaults and usage strings stay
// consistent across the suite.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vipipe"
	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
	"vipipe/internal/pipeline"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
)

// App is one command-line tool's shared state: the values of whichever
// common flags it registered, and its name for error reporting.
type App struct {
	Name string

	Small    bool
	Seed     int64
	Samples  int
	JSON     bool
	N        int
	Pos      string
	Strategy string
	Trace    string
	Profile  bool
	StoreDir string
	Grid     string
	Shards   int
	Points   int

	// disk memoizes the opened durable store so every flow the tool
	// builds (vigen makes one per strategy) shares a single DiskStore.
	disk *pipeline.DiskStore
}

// New returns an App for the named tool. No flags are registered yet.
func New(name string) *App { return &App{Name: name, Seed: 1} }

// SeedFlag registers -seed.
func (a *App) SeedFlag() {
	flag.Int64Var(&a.Seed, "seed", 1, "random seed")
}

// SmallFlag registers -small with the given default (most tools
// default to the full core; netio defaults to the reduced one).
func (a *App) SmallFlag(def bool) {
	flag.BoolVar(&a.Small, "small", def, "use the reduced test core instead of the full 32-bit 4-slot core")
}

// ConfigFlags registers the profile pair -small and -seed.
func (a *App) ConfigFlags(smallDefault bool) {
	a.SmallFlag(smallDefault)
	a.SeedFlag()
}

// SamplesFlag registers -samples (Monte Carlo sample override).
func (a *App) SamplesFlag() {
	flag.IntVar(&a.Samples, "samples", 0, "Monte Carlo samples (0 = config default)")
}

// JSONFlag registers -json.
func (a *App) JSONFlag() {
	flag.BoolVar(&a.JSON, "json", false, "emit JSON (wire schema, same as vipiped)")
}

// NFlag registers -n with a tool-specific meaning.
func (a *App) NFlag(def int, usage string) {
	flag.IntVar(&a.N, "n", def, usage)
}

// PosFlag registers -pos, a chip position name A-D.
func (a *App) PosFlag(def, usage string) {
	flag.StringVar(&a.Pos, "pos", def, usage)
}

// StrategyFlag registers -strategy, one or more comma-separated
// slicing strategies (see Strategies).
func (a *App) StrategyFlag(def, usage string) {
	flag.StringVar(&a.Strategy, "strategy", def, usage)
}

// Config resolves the profile flags into a flow configuration.
func (a *App) Config() vipipe.Config {
	cfg := vipipe.DefaultConfig()
	if a.Small {
		cfg = vipipe.TestConfig()
	}
	cfg.Seed = a.Seed
	if a.Samples > 0 {
		cfg.MCSamples = a.Samples
	}
	return cfg
}

// Position resolves the -pos flag against the config's variation
// model.
func (a *App) Position(cfg vipipe.Config) (variation.Pos, error) {
	if p, ok := cfg.Model.Position(a.Pos); ok {
		return p, nil
	}
	return variation.Pos{}, flowerr.BadInputf("unknown chip position %q (model defines A-D)", a.Pos)
}

// Strategies parses the -strategy flag as a comma-separated strategy
// list, in order and case-insensitively.
func (a *App) Strategies() ([]vi.Strategy, error) {
	var out []vi.Strategy
	for _, name := range strings.Split(a.Strategy, ",") {
		s, err := vi.ParseStrategy(strings.ToLower(strings.TrimSpace(name)))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// GridFlag registers -grid, the exposure-field lattice ("NXxNY").
func (a *App) GridFlag(def string) {
	flag.StringVar(&a.Grid, "grid", def, "exposure-field grid as NXxNY chip positions")
}

// ShardsFlag registers -shards, the shard-artifact count per position.
func (a *App) ShardsFlag(def int) {
	flag.IntVar(&a.Shards, "shards", def, "Monte Carlo shard artifacts per grid position")
}

// PointsFlag registers -points, the yield-curve period axis length.
func (a *App) PointsFlag(def int) {
	flag.IntVar(&a.Points, "points", def, "clock periods on the yield-curve axis")
}

// StoreFlag registers -store, the durable artifact store directory
// shared with vipiped: repeated runs over the same directory reuse
// the expensive characterizations and power reports instead of
// recomputing them.
func (a *App) StoreFlag() {
	flag.StringVar(&a.StoreDir, "store", "", "durable artifact store directory (reuses cached characterizations and power reports across runs)")
}

// NewFlow builds a flow, tiering the -store durable cache under a
// fresh in-memory store when one was requested. The memory tier is
// never shared between flows — the engine-state artifacts it holds
// alias live netlists that shifter insertion mutates — while the disk
// tier only carries pure data (vipipe.DiskCodecs) and is shared by
// every flow of the run. A store directory that cannot be opened is a
// fatal usage error for a batch tool; the daemon instead degrades.
func (a *App) NewFlow(cfg vipipe.Config) *vipipe.Flow {
	if a.StoreDir == "" {
		return vipipe.New(cfg)
	}
	if a.disk == nil {
		ds, err := pipeline.OpenDiskStore(a.StoreDir, vipipe.DiskCodecs())
		if err != nil {
			a.Fatal(err)
		}
		a.disk = ds
	}
	return vipipe.NewWithStore(cfg, pipeline.NewTiered(pipeline.NewMemStore(), a.disk))
}

// NewStore builds the artifact store for tools that drive graphs
// directly instead of through a Flow (viyield): a fresh memory tier,
// with the -store durable cache tiered under it when one was
// requested. The same open-failure policy as NewFlow applies.
func (a *App) NewStore() pipeline.Store {
	mem := pipeline.NewMemStore()
	if a.StoreDir == "" {
		return mem
	}
	if a.disk == nil {
		ds, err := pipeline.OpenDiskStore(a.StoreDir, vipipe.DiskCodecs())
		if err != nil {
			a.Fatal(err)
		}
		a.disk = ds
	}
	return pipeline.NewTiered(mem, a.disk)
}

// TraceFlag registers -trace, the shared tracing switch: a non-empty
// path arms a span tracer for the run and writes the Chrome
// trace-event JSON there on exit (load it at ui.perfetto.dev or
// chrome://tracing).
func (a *App) TraceFlag() {
	flag.StringVar(&a.Trace, "trace", "", "write a Chrome trace-event JSON profile of the run to this file")
}

// ProfileFlag registers -profile, which traces the run like -trace
// but renders the self-time and critical-path report to stderr on
// exit instead of (or in addition to) writing a trace file.
func (a *App) ProfileFlag() {
	flag.BoolVar(&a.Profile, "profile", false, "print a self-time and critical-path profile of the run to stderr")
}

// StartTrace arms tracing when -trace or -profile was given: it
// returns a context carrying a fresh tracer plus a finish function
// that ends the root span and emits whatever was requested — the
// Chrome trace-event file for -trace, the stderr profile report for
// -profile. Without either flag both are pass-through (the finish
// function is still safe to call). Call finish before printing
// results so a Fatal exit cannot drop the profile.
func (a *App) StartTrace(ctx context.Context) (context.Context, func() error) {
	if a.Trace == "" && !a.Profile {
		return ctx, func() error { return nil }
	}
	tr := obs.NewTracer(a.Name+"-cli", a.Name)
	ctx = obs.WithTracer(ctx, tr)
	ctx, root := obs.Start(ctx, a.Name)
	return ctx, func() error {
		root.End()
		t := tr.Finish()
		if a.Profile {
			if err := obs.Profile(t).WriteText(os.Stderr); err != nil {
				return fmt.Errorf("%s: writing profile: %w", a.Name, err)
			}
		}
		if a.Trace == "" {
			return nil
		}
		f, err := os.Create(a.Trace)
		if err != nil {
			return fmt.Errorf("%s: writing trace: %w", a.Name, err)
		}
		if err := t.WriteChrome(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: writing trace: %w", a.Name, err)
		}
		return f.Close()
	}
}

// Context returns a context cancelled on SIGINT/SIGTERM, so Ctrl-C
// drains workers cleanly and the exit code reports cancellation
// instead of a half-written report.
func (a *App) Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal prints err under the tool's name and exits with its flowerr
// class code, so scripts can distinguish bad input from cancellation
// from DRC failures.
func (a *App) Fatal(err error) {
	fmt.Fprintln(os.Stderr, a.Name+":", err)
	os.Exit(flowerr.ExitCode(err))
}
