package drc

import (
	"errors"
	"math"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
)

// tinyDesign builds a minimal clean netlist+placement: two DFFs with a
// small combinational cloud between them.
func tinyDesign(t *testing.T) (*netlist.Netlist, *place.Placement) {
	t.Helper()
	b := netlist.NewBuilder("tiny", cell.Default65nm())
	d := b.Input("d")
	q := b.DFF(d)
	x := b.Not(q)
	for i := 0; i < 30; i++ {
		x = b.And(b.Not(x), q)
	}
	b.DFF(x)
	pl, err := place.Global(b.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return b.NL, pl
}

func hasRule(r *Report, rule string) bool {
	for _, v := range r.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestCleanDesignPasses(t *testing.T) {
	nl, pl := tinyDesign(t)
	derate := make([]float64, nl.NumCells())
	for i := range derate {
		derate[i] = 1
	}
	region := make([]int32, nl.NumCells())
	r := Check(Inputs{NL: nl, PL: pl, Derate: derate, Region: region, ShiftersInserted: true})
	if !r.Clean() {
		t.Fatalf("clean design flagged:\n%s", r)
	}
	if r.Err() != nil {
		t.Error("clean report returned an error")
	}
}

func TestDanglingNetDetected(t *testing.T) {
	nl, _ := tinyDesign(t)
	// Orphan a net: give some instance an input on a fresh undriven
	// net that is not a PI.
	orphan := nl.AddNet("orphan")
	nl.RewireInput(1, 0, orphan)
	r := Check(Inputs{NL: nl})
	if !hasRule(r, RuleDanglingNet) {
		t.Fatalf("dangling net missed:\n%s", r)
	}
	if err := r.Err(); !errors.Is(err, flowerr.ErrDRC) {
		t.Errorf("report error %v does not match ErrDRC", err)
	}
}

func TestCombLoopDetected(t *testing.T) {
	b := netlist.NewBuilder("loop", cell.Default65nm())
	a := b.Input("a")
	ph := b.NL.AddNet("ph")
	x := b.And(a, ph)
	y := b.Not(x)
	b.NL.ReplaceNetSinks(ph, y) // closes the combinational cycle
	r := Check(Inputs{NL: b.NL})
	if !hasRule(r, RuleCombLoop) {
		t.Fatalf("combinational loop missed:\n%s", r)
	}
}

func TestDriverBookkeepingDetected(t *testing.T) {
	nl, _ := tinyDesign(t)
	nl.Nets[nl.Insts[0].Out].Driver = netlist.NoInst
	r := Check(Inputs{NL: nl})
	if !hasRule(r, RuleDriverBook) {
		t.Fatalf("driver bookkeeping corruption missed:\n%s", r)
	}
}

func TestUnplacedAndMisplacedDetected(t *testing.T) {
	nl, pl := tinyDesign(t)
	short := *pl
	short.X = pl.X[:len(pl.X)-1]
	r := Check(Inputs{NL: nl, PL: &short})
	if !hasRule(r, RuleUnplaced) {
		t.Fatalf("short placement missed:\n%s", r)
	}

	pl.X[0] = math.NaN()
	pl.X[1] = pl.DieW * 4
	pl.Y[2] = pl.RowHeight * 0.5
	r = Check(Inputs{NL: nl, PL: pl})
	if !hasRule(r, RuleMisplaced) {
		t.Fatalf("misplaced cells missed:\n%s", r)
	}
}

func TestStackedCellsDetected(t *testing.T) {
	nl, pl := tinyDesign(t)
	for i := range pl.X {
		pl.X[i], pl.Y[i] = 0, 0
	}
	r := Check(Inputs{NL: nl, PL: pl})
	if !hasRule(r, RuleStackedCells) {
		t.Fatalf("stacked cells missed:\n%s", r)
	}
}

func TestMissingLevelShifterDetected(t *testing.T) {
	nl, _ := tinyDesign(t)
	region := make([]int32, nl.NumCells())
	// Find a net whose driver is combinational and has a sink; put the
	// driver in island 2 and a sink in island 1 — a low->high crossing
	// in scenario 1 with no shifter in between.
	found := false
	for n := range nl.Nets {
		drv := nl.Nets[n].Driver
		if drv == netlist.NoInst || len(nl.Nets[n].Sinks) == 0 {
			continue
		}
		region[drv] = 2
		region[nl.Nets[n].Sinks[0].Inst] = 1
		found = true
		break
	}
	if !found {
		t.Fatal("no crossing candidate in fixture")
	}
	r := Check(Inputs{NL: nl, Region: region, ShiftersInserted: true})
	if !hasRule(r, RuleMissingLS) {
		t.Fatalf("missing level shifter not detected:\n%s", r)
	}
	// Pre-insertion the same crossing is legal.
	r = Check(Inputs{NL: nl, Region: region, ShiftersInserted: false})
	if hasRule(r, RuleMissingLS) {
		t.Error("crossing flagged before shifter insertion")
	}
}

func TestDerateRules(t *testing.T) {
	nl, _ := tinyDesign(t)
	r := Check(Inputs{NL: nl, Derate: []float64{1}})
	if !hasRule(r, RuleDerateLen) {
		t.Fatalf("derate length mismatch missed:\n%s", r)
	}
	derate := make([]float64, nl.NumCells())
	for i := range derate {
		derate[i] = 1
	}
	derate[0] = math.NaN()
	derate[1] = -2
	r = Check(Inputs{NL: nl, Derate: derate})
	if !hasRule(r, RuleDerateVal) {
		t.Fatalf("bad derate values missed:\n%s", r)
	}
}

func TestRegionLengthDetected(t *testing.T) {
	nl, _ := tinyDesign(t)
	r := Check(Inputs{NL: nl, Region: []int32{0}})
	if !hasRule(r, RuleRegionLen) {
		t.Fatalf("region length mismatch missed:\n%s", r)
	}
}

func TestPerRuleTruncation(t *testing.T) {
	nl, _ := tinyDesign(t)
	derate := make([]float64, nl.NumCells())
	for i := range derate {
		derate[i] = math.NaN()
	}
	r := Check(Inputs{NL: nl, Derate: derate})
	if len(r.Violations) > maxPerRule {
		t.Errorf("%d violations retained, bound is %d", len(r.Violations), maxPerRule)
	}
	if nl.NumCells() > maxPerRule && r.Truncated == 0 {
		t.Error("truncation not recorded")
	}
}
