// Package drc is the design-rule-check subsystem of the flow: a
// battery of structural and physical invariant checks over the
// netlist, placement, voltage-island partition and derate vectors that
// the engine packages assume but (for speed) do not re-verify on every
// call. It exists so a service front-end can validate ingested or
// mutated designs between flow steps — vipipe.Flow.Check and the
// cmd/vipipe -drc flag run it — and reject broken state with a typed
// error instead of feeding it to a hot loop that would misbehave or
// crash.
//
// Unlike the fail-fast Validate methods on individual types, Check
// collects every violation it can find (bounded per rule) so one run
// paints the whole picture of a damaged design.
package drc

import (
	"fmt"
	"math"
	"strings"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
)

// Rule identifiers, stable for programmatic filtering.
const (
	RuleArity        = "arity"          // instance pin count != library cell
	RuleBadRef       = "bad-ref"        // instance references a nonexistent net/instance
	RuleDriverBook   = "driver-book"    // net driver bookkeeping inconsistent
	RuleSinkBook     = "sink-book"      // net sink bookkeeping inconsistent
	RuleDanglingNet  = "dangling-net"   // net with sinks but no driver and not a PI
	RuleCombLoop     = "comb-loop"      // combinational cycle
	RuleUnplaced     = "unplaced-cell"  // placement does not cover every instance
	RuleMisplaced    = "misplaced-cell" // NaN/Inf, outside the die, or off the row grid
	RuleStackedCells = "stacked-cells"  // implausibly many cells at one origin
	RuleMissingLS    = "missing-ls"     // low->high domain crossing without a level shifter
	RuleRegionLen    = "region-length"  // partition region vector length mismatch
	RuleDerateLen    = "derate-length"  // derate vector length mismatch
	RuleDerateVal    = "derate-value"   // derate entry NaN/Inf/non-positive
)

// maxPerRule bounds how many violations of one rule a report retains;
// a systematically corrupted design would otherwise produce one
// violation per cell.
const maxPerRule = 25

// Violation is one broken invariant.
type Violation struct {
	Rule string
	Msg  string
}

func (v Violation) String() string { return v.Rule + ": " + v.Msg }

// Report is the outcome of one DRC run.
type Report struct {
	Violations []Violation
	// Truncated counts violations dropped by the per-rule bound.
	Truncated int

	perRule map[string]int
}

func (r *Report) add(rule, format string, args ...any) {
	if r.perRule == nil {
		r.perRule = make(map[string]int)
	}
	if r.perRule[rule] >= maxPerRule {
		r.Truncated++
		return
	}
	r.perRule[rule]++
	r.Violations = append(r.Violations, Violation{Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// Clean reports whether no rule fired.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean report, otherwise an error matching
// flowerr.ErrDRC that lists the violations.
func (r *Report) Err() error {
	if r.Clean() {
		return nil
	}
	return flowerr.DRCf("drc: %d violation(s):\n%s", len(r.Violations)+r.Truncated, r.String())
}

// String renders the violations one per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  [%s] %s\n", v.Rule, v.Msg)
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "  ... and %d more\n", r.Truncated)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Inputs selects what Check validates. NL is required; every other
// field is optional and enables the corresponding rules when set.
type Inputs struct {
	NL *netlist.Netlist
	PL *place.Placement
	// Region is the per-instance island assignment of a partition
	// (vi.Partition.Region). When set together with ShiftersInserted,
	// the level-shifter coverage rule runs.
	Region []int32
	// ShiftersInserted states that level-shifter insertion already
	// ran, so every low->high crossing must terminate in a shifter.
	ShiftersInserted bool
	// Derate is the slack-recovery vector to validate against NL.
	Derate []float64
}

// Check runs every applicable rule and returns the collected report.
func Check(in Inputs) *Report {
	r := &Report{}
	if in.NL == nil {
		r.add(RuleBadRef, "no netlist to check")
		return r
	}
	checkNetlist(r, in.NL)
	if in.PL != nil {
		checkPlacement(r, in.NL, in.PL)
	}
	if in.Region != nil {
		checkPartition(r, in.NL, in.Region, in.ShiftersInserted)
	}
	if in.Derate != nil {
		checkDerate(r, in.NL, in.Derate)
	}
	return r
}

func checkNetlist(r *Report, nl *netlist.Netlist) {
	for i := range nl.Insts {
		inst := &nl.Insts[i]
		c := nl.Lib.Cell(inst.Kind)
		if len(inst.Inputs) != c.NumInputs {
			r.add(RuleArity, "inst %q has %d inputs, cell %s wants %d", inst.Name, len(inst.Inputs), c.Name, c.NumInputs)
		}
		for pin, netID := range inst.Inputs {
			if netID < 0 || netID >= len(nl.Nets) {
				r.add(RuleBadRef, "inst %q pin %d connected to nonexistent net %d", inst.Name, pin, netID)
			}
		}
		if inst.Out < 0 || inst.Out >= len(nl.Nets) {
			r.add(RuleBadRef, "inst %q output on nonexistent net %d", inst.Name, inst.Out)
		} else if nl.Nets[inst.Out].Driver != i {
			r.add(RuleDriverBook, "net %q records driver %d, inst %q believes it drives it", nl.Nets[inst.Out].Name, nl.Nets[inst.Out].Driver, inst.Name)
		}
	}
	isPI := make(map[int]bool, len(nl.PIs))
	for _, id := range nl.PIs {
		isPI[id] = true
	}
	for i := range nl.Nets {
		net := &nl.Nets[i]
		if net.Driver == netlist.NoInst && !isPI[net.ID] && len(net.Sinks) > 0 {
			r.add(RuleDanglingNet, "net %q has %d sink(s) but no driver and is not a primary input", net.Name, len(net.Sinks))
		}
		if net.Driver != netlist.NoInst && (net.Driver < 0 || net.Driver >= len(nl.Insts)) {
			r.add(RuleBadRef, "net %q driven by nonexistent instance %d", net.Name, net.Driver)
			continue
		}
		for _, s := range net.Sinks {
			if s.Inst < 0 || s.Inst >= len(nl.Insts) {
				r.add(RuleSinkBook, "net %q lists nonexistent sink instance %d", net.Name, s.Inst)
				continue
			}
			if s.Pin < 0 || s.Pin >= len(nl.Insts[s.Inst].Inputs) || nl.Insts[s.Inst].Inputs[s.Pin] != net.ID {
				r.add(RuleSinkBook, "net %q sink (%q pin %d) does not point back", net.Name, nl.Insts[s.Inst].Name, s.Pin)
			}
		}
	}
	// Structural references must be sound before walking the graph.
	if r.perRule[RuleBadRef] == 0 && r.perRule[RuleSinkBook] == 0 {
		if _, err := nl.Levelize(); err != nil {
			r.add(RuleCombLoop, "%v", err)
		}
	}
}

func checkPlacement(r *Report, nl *netlist.Netlist, pl *place.Placement) {
	if pl.NL != nl {
		r.add(RuleUnplaced, "placement belongs to a different netlist")
		return
	}
	if len(pl.X) != nl.NumCells() || len(pl.Y) != nl.NumCells() {
		r.add(RuleUnplaced, "placement covers %d of %d cells", min(len(pl.X), len(pl.Y)), nl.NumCells())
		return
	}
	stacked := make(map[[2]float64][]int)
	for i := range pl.X {
		x, y := pl.X[i], pl.Y[i]
		switch {
		case math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0):
			r.add(RuleMisplaced, "cell %q at non-finite (%g, %g)", nl.Insts[i].Name, x, y)
			continue
		case x < -1e-6 || x+pl.W[i] > pl.DieW+1e-3:
			r.add(RuleMisplaced, "cell %q x=%g w=%g outside die width %g", nl.Insts[i].Name, x, pl.W[i], pl.DieW)
		case y < -1e-6 || y > pl.DieH-pl.RowHeight+1e-3:
			r.add(RuleMisplaced, "cell %q y=%g outside die height %g", nl.Insts[i].Name, y, pl.DieH)
		default:
			if row := y / pl.RowHeight; math.Abs(row-math.Round(row)) > 1e-6 {
				r.add(RuleMisplaced, "cell %q off the row grid (y=%g)", nl.Insts[i].Name, y)
			}
		}
		stacked[[2]float64{x, y}] = append(stacked[[2]float64{x, y}], i)
	}
	// Coarse placement legitimately leaves a handful of coincident
	// origins (boundary clamping, incrementally placed shifters);
	// dozens of cells on one origin means the coordinates are bogus.
	const maxStack = 8
	for xy, cells := range stacked {
		if len(cells) > maxStack {
			r.add(RuleStackedCells, "%d cells stacked at (%g, %g), e.g. %q", len(cells), xy[0], xy[1], nl.Insts[cells[0]].Name)
		}
	}
}

func checkPartition(r *Report, nl *netlist.Netlist, region []int32, shiftersIn bool) {
	if len(region) != nl.NumCells() {
		r.add(RuleRegionLen, "region vector covers %d of %d cells", len(region), nl.NumCells())
		return
	}
	if !shiftersIn {
		return
	}
	for n := range nl.Nets {
		drv := nl.Nets[n].Driver
		if drv == netlist.NoInst || drv < 0 || drv >= len(nl.Insts) || nl.Cell(drv).IsTie() {
			continue
		}
		for _, s := range nl.Nets[n].Sinks {
			if s.Inst < 0 || s.Inst >= len(region) {
				continue // sink bookkeeping rules already fired
			}
			// A sink in a lower region than its driver is low-Vdd
			// while the driver is high in some scenario; the crossing
			// must be a level shifter input.
			if region[s.Inst] < region[drv] && nl.Insts[s.Inst].Kind != cell.LvlShift {
				r.add(RuleMissingLS, "net %q crosses region %d -> %d into %q without a level shifter",
					nl.Nets[n].Name, region[drv], region[s.Inst], nl.Insts[s.Inst].Name)
			}
		}
	}
}

func checkDerate(r *Report, nl *netlist.Netlist, derate []float64) {
	if len(derate) != nl.NumCells() {
		r.add(RuleDerateLen, "derate vector covers %d of %d cells", len(derate), nl.NumCells())
		return
	}
	for i, d := range derate {
		if math.IsNaN(d) || math.IsInf(d, 0) || d <= 0 {
			r.add(RuleDerateVal, "cell %q derate %g is not a positive finite factor", nl.Insts[i].Name, d)
		}
	}
}
