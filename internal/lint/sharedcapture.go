package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// sharedCaptureRule polices the goroutine closures of the scheduler
// packages — the only places allowed to start goroutines — for the
// races the race detector only catches when a test happens to hit
// them: a closure writing a captured variable with no evidence of
// confinement. The analysis is typed and deliberately lightweight:
//
//   - per-slot element writes into a captured slice (outs.crit[k] = v)
//     are the sanctioned disjoint-index worker convention and pass;
//   - writes positioned between a mutex Lock and its Unlock (deferred
//     Unlock counts to the closure's end) pass;
//   - channel sends, close(), and sync/atomic calls pass;
//   - anything else — whole-variable assignment, a store through a
//     captured pointer or struct field, a captured map write — is a
//     shared-state write the summaries cannot prove confined, and is
//     reported.
//
// Like artifactalias, the rule needs go/types (to tell a slice index
// from a map index and to resolve mutexes) and stays silent in -fast
// AST-only mode.
type sharedCaptureRule struct{}

func (sharedCaptureRule) Name() string { return "sharedcapture" }
func (sharedCaptureRule) Doc() string {
	return "goroutine closures in the scheduler packages must not write captured state without proof of confinement (per-slot index writes, mutex guard, or channels)"
}

// Check is the AST-mode stub: capture analysis needs type info.
func (sharedCaptureRule) Check(f *File, report ReportFunc) {}

func (sharedCaptureRule) CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc) {
	if !inDirs(f, schedulerDirs) {
		return
	}
	info := pkg.Info
	ast.Inspect(f.AST, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		checkClosureWrites(info, lit, report)
		return true
	})
}

// lockWindow is one mutex-held interval inside a closure body.
type lockWindow struct{ lo, hi token.Pos }

// lockWindows collects the [Lock, Unlock) position intervals of every
// sync.Mutex/RWMutex operation in the closure. A deferred Unlock
// extends its window to the closure's end. Windows are matched
// positionally, not per-object — precise enough for the short worker
// closures this rule patrols.
func lockWindows(info *types.Info, lit *ast.FuncLit) []lockWindow {
	type ev struct {
		pos    token.Pos
		unlock bool
	}
	var evs []ev
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call, deferred = n.Call, true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isMutexType(info.TypeOf(sel.X)) {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			evs = append(evs, ev{call.Pos(), false})
		case "Unlock", "RUnlock":
			if deferred {
				evs = append(evs, ev{lit.Body.End(), true})
			} else {
				evs = append(evs, ev{call.Pos(), true})
			}
		}
		// Don't descend into a handled defer: its CallExpr would be
		// revisited as an immediate call and close the window early.
		return !deferred
	})
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	var out []lockWindow
	var open []token.Pos
	for _, e := range evs {
		if !e.unlock {
			open = append(open, e.pos)
			continue
		}
		if len(open) > 0 {
			out = append(out, lockWindow{open[len(open)-1], e.pos})
			open = open[:len(open)-1]
		}
	}
	for _, lo := range open {
		out = append(out, lockWindow{lo, lit.Body.End()})
	}
	return out
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func checkClosureWrites(info *types.Info, lit *ast.FuncLit, report ReportFunc) {
	windows := lockWindows(info, lit)
	guarded := func(pos token.Pos) bool {
		for _, w := range windows {
			if pos > w.lo && pos < w.hi {
				return true
			}
		}
		return false
	}
	capturedRoot := func(e ast.Expr) *types.Var {
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		obj, ok := info.ObjectOf(root).(*types.Var)
		if !ok || obj.IsField() {
			return nil
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return nil // the closure's own parameter or local
		}
		return obj
	}
	// confined reports whether the write target is the sanctioned
	// per-slot form: a top-level index store into a slice (or array)
	// — each worker owns its slot. Map index stores stay reportable:
	// concurrent map writes fault regardless of slot.
	confined := func(lhs ast.Expr) bool {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return false
		}
		switch info.TypeOf(idx.X).Underlying().(type) {
		case *types.Map:
			return false
		default:
			return true
		}
	}
	flag := func(lhs ast.Expr, obj *types.Var) {
		report(lhs.Pos(), "goroutine closure writes captured %s (via %s) without synchronization: use per-slot index writes, a mutex guard, or a channel", obj.Name(), types.ExprString(lhs))
	}
	check := func(lhs ast.Expr) {
		obj := capturedRoot(lhs)
		if obj == nil || guarded(lhs.Pos()) || confined(lhs) {
			return
		}
		flag(lhs, obj)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested go-closure is checked by its own GoStmt visit;
			// descending here would double-report its writes.
			if _, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
}
