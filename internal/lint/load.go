package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is the typed layer over one lint tree: every package of the
// walked module type-checked in dependency order, plus the dataflow
// summaries the typed rules consult. It is built entirely from the
// standard library — go/parser for syntax, go/types for checking, and
// importer.Default for the export data of standard-library imports —
// so the linter stays free of external dependencies.
type Program struct {
	Fset   *token.FileSet
	Module string // module path from go.mod ("lintroot" when absent)
	Pkgs   []*Pkg // dependency order: a package follows everything it imports
	ByDir  map[string]*Pkg

	// Sums holds one dataflow summary per function or method declared
	// anywhere in the program, keyed by its types object.
	Sums map[*types.Func]*FuncSum

	// Named pipeline types resolved once, for the artifact rules. Nil
	// when the tree does not contain the pipeline package (then the
	// rules that need them stay silent).
	storeIface  *types.Interface // pipeline.Store
	graphNamed  *types.Named     // pipeline.Graph
	computeSigs []*types.Signature
}

// Pkg is one type-checked package of the lint tree.
type Pkg struct {
	Dir      string // slash-separated dir relative to the lint root ("" for the root package)
	Path     string // import path (Module + "/" + Dir)
	Files    []*File
	Types    *types.Package
	Info     *types.Info
	Complete bool  // type-checked without errors; typed rules require it
	LoadErr  error // first type error when !Complete
}

// moduleOf reads the module path out of root/go.mod with a minimal
// hand parse (the directive grammar is a single token). A missing or
// unreadable go.mod yields "lintroot": module-internal imports then
// never resolve, the typed rules see no project types, and the AST
// layer carries the run.
func moduleOf(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "lintroot"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if f := strings.Fields(rest); len(f) > 0 {
				return strings.Trim(f[0], `"`)
			}
		}
	}
	return "lintroot"
}

// progImporter resolves imports during type checking: module-internal
// paths come from the packages the loader has already checked
// (dependency order guarantees they exist by the time they are
// asked for), everything else falls back to the compiler's export
// data via importer.Default.
type progImporter struct {
	prog *Program
	std  types.Importer
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if dir, ok := pi.prog.dirOf(path); ok {
		p := pi.prog.ByDir[dir]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("lint: module package %q not loaded (outside the lint root?)", path)
		}
		return p.Types, nil
	}
	return pi.std.Import(path)
}

// dirOf maps a module-internal import path to its directory relative
// to the lint root; ok is false for external paths.
func (p *Program) dirOf(path string) (string, bool) {
	if path == p.Module {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, p.Module+"/"); ok {
		return rest, true
	}
	return "", false
}

// loadProgram builds the typed layer over already-parsed files. It
// never fails hard: a package that does not type-check is carried
// with Complete=false (its first error surfaces as a diagnostic and
// its files fall back to the AST rules), so one broken corner cannot
// blind the linter to the rest of the tree.
func loadProgram(root string, fset *token.FileSet, files []*File) *Program {
	prog := &Program{
		Fset:   fset,
		Module: moduleOf(root),
		ByDir:  make(map[string]*Pkg),
		Sums:   make(map[*types.Func]*FuncSum),
	}
	for _, f := range files {
		p := prog.ByDir[f.Dir]
		if p == nil {
			dir := f.Dir
			path := prog.Module
			if dir != "" {
				path = prog.Module + "/" + filepath.ToSlash(dir)
			}
			p = &Pkg{Dir: dir, Path: path}
			prog.ByDir[f.Dir] = p
		}
		p.Files = append(p.Files, f)
	}

	// Dependency-order the packages: depth-first over module-internal
	// imports, visiting dependencies before dependents. An import
	// cycle is a compile error anyway; the DFS just breaks it and the
	// type checker reports it on the offending package.
	dirs := make([]string, 0, len(prog.ByDir))
	for dir := range prog.ByDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	visited := make(map[string]bool, len(dirs))
	var visit func(dir string)
	visit = func(dir string) {
		if visited[dir] {
			return
		}
		visited[dir] = true
		p := prog.ByDir[dir]
		deps := make(map[string]bool)
		for _, f := range p.Files {
			for _, imp := range f.AST.Imports {
				if d, ok := prog.dirOf(strings.Trim(imp.Path.Value, `"`)); ok && d != dir {
					if _, exists := prog.ByDir[d]; exists {
						deps[d] = true
					}
				}
			}
		}
		ordered := make([]string, 0, len(deps))
		for d := range deps {
			ordered = append(ordered, d)
		}
		sort.Strings(ordered)
		for _, d := range ordered {
			visit(d)
		}
		prog.Pkgs = append(prog.Pkgs, p)
	}
	for _, dir := range dirs {
		visit(dir)
	}

	imp := &progImporter{prog: prog, std: importer.Default()}
	for _, p := range prog.Pkgs {
		checkPkg(p, fset, imp)
	}
	prog.resolvePipelineTypes()
	for _, p := range prog.Pkgs {
		if p.Complete {
			summarizePkg(prog, p)
		}
	}
	return prog
}

// checkPkg type-checks one package against the program importer.
func checkPkg(p *Pkg, fset *token.FileSet, imp types.Importer) {
	asts := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		asts = append(asts, f.AST)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer:                 imp,
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(p.Path, fset, asts, p.Info)
	p.Types = pkg
	if err == nil && firstErr == nil {
		p.Complete = true
		return
	}
	if firstErr == nil {
		firstErr = err
	}
	p.LoadErr = firstErr
}

// resolvePipelineTypes finds the pipeline package's Store interface,
// Graph type and Node.Compute signature wherever the module mounts it
// (matched by the stable "internal/pipeline" path suffix, so fixture
// corpora and the real tree resolve the same way).
func (p *Program) resolvePipelineTypes() {
	for _, pkg := range p.Pkgs {
		if !pkg.Complete || pkg.Types == nil {
			continue
		}
		if pkg.Dir != "internal/pipeline" && !strings.HasSuffix(pkg.Path, "/internal/pipeline") {
			continue
		}
		scope := pkg.Types.Scope()
		if obj, ok := scope.Lookup("Store").(*types.TypeName); ok {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				p.storeIface = iface
			}
		}
		if obj, ok := scope.Lookup("Graph").(*types.TypeName); ok {
			if named, ok := obj.Type().(*types.Named); ok {
				p.graphNamed = named
			}
		}
		if obj, ok := scope.Lookup("Node").(*types.TypeName); ok {
			if st, ok := obj.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if f.Name() != "Compute" {
						continue
					}
					if sig, ok := f.Type().(*types.Signature); ok {
						p.computeSigs = append(p.computeSigs, sig)
					}
				}
			}
		}
		return
	}
}

// isComputeSig reports whether sig is the pipeline compute-function
// shape: func(context.Context, map[string]any) (any, error). Matched
// structurally so compute helpers declared as plain functions count
// even when the Node type is out of scope.
func (p *Program) isComputeSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 2 {
		return false
	}
	if !isContextType(sig.Params().At(0).Type()) {
		return false
	}
	m, ok := sig.Params().At(1).Type().Underlying().(*types.Map)
	if !ok {
		return false
	}
	if b, ok := m.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	if iface, ok := m.Elem().Underlying().(*types.Interface); !ok || !iface.Empty() {
		return false
	}
	if iface, ok := sig.Results().At(0).Type().Underlying().(*types.Interface); !ok || !iface.Empty() {
		return false
	}
	return isErrorType(sig.Results().At(1).Type())
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeOf resolves the *types.Func a call statically dispatches to,
// or nil for calls through function values, closures and built-ins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgFuncCall reports whether call is a package-level function call
// into pkgPath (not a method), returning the function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}
