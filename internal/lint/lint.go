// Package lint is the repo's stdlib-only static-analysis framework:
// it parses every package in the tree with go/parser and runs
// project-specific rules that enforce the invariants no compiler
// checks — artifact determinism (content-addressed caches and the
// equivalence suite depend on bit-identical recomputation), the
// flowerr error taxonomy, context plumbing, and goroutine hygiene.
//
// Findings can be suppressed in source with a directive comment
//
//	//lint:ignore <rule> <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above it. A directive with an unknown rule name or a
// missing reason is itself a finding; in strict mode a directive that
// suppresses nothing (stale after a refactor) is reported too.
//
// The framework has two layers, both standard-library only. The AST
// layer (go/parser + go/ast) resolves what it can from a single file
// — import names, local declarations, lexical scope — and stays
// silent where it cannot prove a violation; it is what -fast mode
// runs, cheap enough for a pre-commit hook. The typed layer loads the
// whole module with go/types in dependency order (stdlib imports come
// from the compiler's export data via importer.Default — still no
// external dependencies) and feeds a per-function dataflow pass with
// lightweight interprocedural summaries: which parameters a function
// writes through, which results alias which parameters. Rules that
// implement TypedRule upgrade from name-matching heuristics to real
// type resolution, and two rules exist only in this layer:
// artifactalias (writes through published artifacts, compute
// functions leaking mutated scratch buffers) and sharedcapture
// (goroutine closures writing captured state without proof of
// confinement).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vipipe/internal/flowerr"
)

// Diagnostic is one finding, positioned relative to the lint root.
type Diagnostic struct {
	File string `json:"file"` // slash-separated path relative to the root
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// File is one parsed source file handed to rules.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	Src  []byte
	Rel  string // slash-separated path relative to the lint root
	Dir  string // package directory of Rel ("" for the root package)
}

// ReportFunc records a finding at a position inside the current file.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Rule is one pluggable check.
type Rule interface {
	// Name is the stable identifier used in diagnostics and
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -rules output.
	Doc() string
	// Check inspects a file and reports findings.
	Check(f *File, report ReportFunc)
}

// TypedRule is implemented by rules that upgrade to type-aware
// checking when the typed layer is loaded. In typed mode CheckTyped
// replaces Check for every file whose package type-checked cleanly;
// files of broken packages fall back to the AST Check. Typed-only
// rules (artifactalias, sharedcapture) make Check a no-op.
type TypedRule interface {
	Rule
	CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc)
}

// Options configures a Run.
type Options struct {
	// Rules to apply; nil means DefaultRules().
	Rules []Rule
	// Strict additionally reports //lint:ignore directives that
	// suppressed nothing.
	Strict bool
	// Typed loads the module under go/types and runs the typed layer:
	// upgraded versions of the core rules plus the dataflow rules
	// (artifactalias, sharedcapture). Without it the run is AST-only
	// (-fast), and typed-only rules stay silent — so judge stale
	// suppressions (Strict) only with Typed on.
	Typed bool
}

// ignoreRule is the pseudo-rule name under which directive problems
// (malformed, unknown rule, stale) are reported. It is not
// suppressible.
const ignoreRule = "lint"

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	rule, reason string
	target       int // line whose findings it suppresses
	pos          token.Pos
	used         bool
}

// Run lints the Go tree rooted at root and returns the surviving
// diagnostics sorted by position. Directories named testdata, vendor
// or starting with "." are skipped, as are _test.go files (tests
// legitimately use wall clocks, ad-hoc errors and bare goroutines).
// Errors — unreadable root, unparsable source — match
// flowerr.ErrBadInput.
func Run(root string, opts Options) ([]Diagnostic, error) {
	rules := opts.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	known := make(map[string]bool, len(rules))
	for _, r := range rules {
		known[r.Name()] = true
	}

	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, flowerr.BadInputf("lint: walk %s: %v", root, err)
	}
	sort.Strings(paths)

	var diags []Diagnostic
	var stale []ignore
	staleFile := make(map[token.Pos]string)
	fset := token.NewFileSet()
	var files []*File
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, flowerr.BadInputf("lint: %v", err)
		}
		astf, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, flowerr.BadInputf("lint: %v", err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		dir := ""
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		files = append(files, &File{Fset: fset, AST: astf, Src: src, Rel: rel, Dir: dir})
	}

	// The typed layer loads the whole tree before any rule runs, so
	// summaries and project types are available to every file. A
	// package that fails to type-check surfaces as a diagnostic and
	// its files fall back to the AST rules.
	var prog *Program
	if opts.Typed {
		prog = loadProgram(root, fset, files)
		for _, p := range prog.Pkgs {
			if p.Complete || p.LoadErr == nil {
				continue
			}
			line, col, rel := 1, 1, p.Files[0].Rel
			if te, ok := p.LoadErr.(types.Error); ok && te.Pos.IsValid() {
				pos := fset.Position(te.Pos)
				if r, err := filepath.Rel(root, pos.Filename); err == nil {
					rel = filepath.ToSlash(r)
				}
				line, col = pos.Line, pos.Column
			}
			diags = append(diags, Diagnostic{
				File: rel, Line: line, Col: col, Rule: ignoreRule,
				Msg: fmt.Sprintf("package %s does not type-check (typed rules skipped): %v", p.Path, p.LoadErr),
			})
		}
	}

	for _, f := range files {
		ignores, dirDiags := parseIgnores(f, known)
		diags = append(diags, dirDiags...)

		var pkg *Pkg
		if prog != nil {
			if p := prog.ByDir[f.Dir]; p != nil && p.Complete {
				pkg = p
			}
		}
		var raw []Diagnostic
		for _, r := range rules {
			rule := r.Name()
			report := func(pos token.Pos, format string, args ...any) {
				p := fset.Position(pos)
				raw = append(raw, Diagnostic{
					File: f.Rel, Line: p.Line, Col: p.Column,
					Rule: rule, Msg: fmt.Sprintf(format, args...),
				})
			}
			if tr, ok := r.(TypedRule); ok && pkg != nil {
				tr.CheckTyped(prog, pkg, f, report)
				continue
			}
			r.Check(f, report)
		}
		for _, d := range raw {
			if suppressed(ignores, d) {
				continue
			}
			diags = append(diags, d)
		}
		for i := range ignores {
			if !ignores[i].used {
				stale = append(stale, ignores[i])
				staleFile[ignores[i].pos] = f.Rel
			}
		}
	}
	if opts.Strict {
		for _, ig := range stale {
			p := fset.Position(ig.pos)
			diags = append(diags, Diagnostic{
				File: staleFile[ig.pos], Line: p.Line, Col: p.Column, Rule: ignoreRule,
				Msg: fmt.Sprintf("stale //lint:ignore %s: no %s finding on line %d", ig.rule, ig.rule, ig.target),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return diags, nil
}

// suppressed reports whether an ignore directive covers d, marking
// the directive used.
func suppressed(ignores []ignore, d Diagnostic) bool {
	hit := false
	for i := range ignores {
		if ignores[i].rule == d.Rule && ignores[i].target == d.Line {
			ignores[i].used = true
			hit = true
		}
	}
	return hit
}

// parseIgnores extracts //lint:ignore directives from a file. A
// trailing directive targets its own line; a directive alone on its
// line targets the next line. Malformed directives become
// diagnostics instead of suppressions.
func parseIgnores(f *File, known map[string]bool) ([]ignore, []Diagnostic) {
	var out []ignore
	var diags []Diagnostic
	tf := f.Fset.File(f.AST.Pos())
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			const prefix = "//lint:ignore"
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, prefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // //lint:ignorexyz is not the directive
			}
			p := f.Fset.Position(c.Pos())
			bad := func(format string, args ...any) {
				diags = append(diags, Diagnostic{
					File: f.Rel, Line: p.Line, Col: p.Column, Rule: ignoreRule,
					Msg: fmt.Sprintf(format, args...),
				})
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				bad("malformed directive: want //lint:ignore <rule> <reason>")
				continue
			}
			rule := fields[0]
			if !known[rule] {
				bad("unknown rule %q in //lint:ignore", rule)
				continue
			}
			if len(fields) < 2 {
				bad("//lint:ignore %s needs a reason", rule)
				continue
			}
			target := p.Line
			if standalone(f, tf, c) {
				target = p.Line + 1
			}
			out = append(out, ignore{
				rule:   rule,
				reason: strings.Join(fields[1:], " "),
				target: target,
				pos:    c.Pos(),
			})
		}
	}
	return out, diags
}

// standalone reports whether only whitespace precedes the comment on
// its line.
func standalone(f *File, tf *token.File, c *ast.Comment) bool {
	off := tf.Offset(c.Pos())
	lineStart := tf.Offset(tf.LineStart(tf.Line(c.Pos())))
	return strings.TrimSpace(string(f.Src[lineStart:off])) == ""
}
