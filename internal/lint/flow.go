package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow half of the typed layer: a per-function
// may-alias analysis plus lightweight interprocedural summaries.
//
// The analysis tracks, for every local variable of a function, two
// bitmasks of "seed" memory regions. Seeds are the function's
// parameters when building summaries, and published artifacts (store
// results, compute deps) or captured scratch buffers when the
// artifact rules run. The two domains are:
//
//   - alias bits: the value may share mutable backing memory with the
//     seed (x := t, x := t.Field, x := t[i], x := t.(T), &t.f,
//     append(t, ...) all keep them). A write through such a value
//     lands in the seed's memory.
//   - contain bits: the value is a fresh container that holds a
//     reference to the seed (p := &Placement{NL: nl},
//     list = append(list, buf)). Writing the container's own fields
//     does NOT touch the seed, but returning the container publishes
//     it.
//
// Writes and interprocedural mutation summaries consult alias bits
// only; escape analysis (returns) unions both. Materializing a copy of
// a reference-free value (ints, strings, pure-value structs) drops
// both masks. The design errs toward precision over recall: a
// reported write provably lands in seed-aliased memory modulo the
// documented blind spots (references re-extracted from containers,
// calls through function values).
//
// A write "counts" only when its access path crosses a reference
// edge — a pointer deref, a slice/map index, a field selected
// through a pointer — because only then does the store land in the
// shared memory rather than in the local copy that holds the mask.

// mask carries the two taint domains of one value.
type mask struct {
	a uint64 // may-alias: shares backing memory with these seeds
	c uint64 // contains: fresh container holding references to these seeds
}

func (m mask) or(o mask) mask  { return mask{m.a | o.a, m.c | o.c} }
func (m mask) any() uint64     { return m.a | m.c }
func (m mask) empty() bool     { return m.a|m.c == 0 }
func (m mask) contained() mask { return mask{0, m.a | m.c} }

// FuncSum is the interprocedural summary of one declared function:
// which results may alias or contain which parameters, and which
// parameters the function (transitively) writes through. The receiver,
// when present, is parameter 0. Parameters beyond maxSumParams are
// untracked.
type FuncSum struct {
	RetA    []uint64 // RetA[i] = parameters result i may alias
	RetC    []uint64 // RetC[i] = parameters result i may contain
	Mutates uint64   // parameters written through
}

// maxSumParams bounds the per-function parameter bits so rule-level
// seeds can live in the high bits of the same mask.
const maxSumParams = 30

// flowCtx runs the alias analysis over one function body.
type flowCtx struct {
	prog *Program
	info *types.Info

	// seeds maps variables to their initial alias bits (parameters,
	// deps values, captured buffers).
	seeds map[*types.Var]uint64
	// sourceMask, when set, injects extra alias bits for calls that
	// produce seeded values (artifact sources). Applied to result 0.
	sourceMask func(call *ast.CallExpr) uint64
	// onWrite, when set, observes every seed-aliased write on the
	// reporting pass. op names the operation (assign, append, copy,
	// delete, clear, or the callee of an interprocedural write);
	// target renders the written expression. The mask argument holds
	// alias bits only.
	onWrite func(pos token.Pos, aliased uint64, op, target string)

	vals    map[*types.Var]mask
	mutated uint64
	rets    []mask
	changed bool
}

// run iterates the body to a fixpoint silently, then, if onWrite is
// set, makes one reporting pass. Loop back-edges converge because
// masks only grow.
func (fc *flowCtx) run(body *ast.BlockStmt) {
	if fc.vals == nil {
		fc.vals = make(map[*types.Var]mask)
	}
	report := fc.onWrite
	fc.onWrite = nil
	for i := 0; i < 8; i++ {
		fc.changed = false
		fc.walkStmt(body, 0)
		if !fc.changed {
			break
		}
	}
	if report != nil {
		fc.onWrite = report
		fc.walkStmt(body, 0)
	}
}

func (fc *flowCtx) bind(id *ast.Ident, m mask) {
	if id.Name == "_" || m.empty() {
		return
	}
	obj, _ := fc.info.ObjectOf(id).(*types.Var)
	if obj == nil {
		return
	}
	// Materialization gate: binding copies the value; if the bound
	// variable's type holds no mutable references, writes to it can
	// never reach the seed.
	if !containsRef(obj.Type()) {
		return
	}
	fc.bindVar(obj, m)
}

func (fc *flowCtx) bindVar(obj *types.Var, m mask) {
	old := fc.vals[obj]
	merged := old.or(m)
	if merged != old {
		fc.vals[obj] = merged
		fc.changed = true
	}
}

func (fc *flowCtx) varMask(obj *types.Var) mask {
	m := fc.vals[obj]
	m.a |= fc.seeds[obj]
	return m
}

// walkStmt interprets one statement. depth counts FuncLit nesting so
// only the outermost function's returns feed rets; everything else
// (binds, writes) is depth-independent because closures share their
// enclosing function's variables.
func (fc *flowCtx) walkStmt(s ast.Stmt, depth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			fc.walkStmt(st, depth)
		}
	case *ast.AssignStmt:
		fc.walkAssign(s)
	case *ast.IncDecStmt:
		fc.write(s.X, "assign")
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					masks := fc.tupleMasks(vs.Values[0], len(vs.Names))
					for i, name := range vs.Names {
						fc.bind(name, masks[i])
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						fc.bind(name, fc.exprMask(vs.Values[i]))
					}
				}
			}
		}
	case *ast.ExprStmt:
		fc.exprMask(s.X)
	case *ast.SendStmt:
		fc.exprMask(s.Chan)
		fc.exprMask(s.Value)
	case *ast.GoStmt:
		fc.exprMask(s.Call)
	case *ast.DeferStmt:
		fc.exprMask(s.Call)
	case *ast.ReturnStmt:
		for i, res := range s.Results {
			m := fc.exprMask(res)
			if depth > 0 {
				continue
			}
			for len(fc.rets) <= i {
				fc.rets = append(fc.rets, mask{})
			}
			merged := fc.rets[i].or(m)
			if merged != fc.rets[i] {
				fc.rets[i] = merged
				fc.changed = true
			}
		}
	case *ast.IfStmt:
		fc.walkStmt(s.Init, depth)
		fc.exprMask(s.Cond)
		fc.walkStmt(s.Body, depth)
		fc.walkStmt(s.Else, depth)
	case *ast.ForStmt:
		fc.walkStmt(s.Init, depth)
		if s.Cond != nil {
			fc.exprMask(s.Cond)
		}
		fc.walkStmt(s.Post, depth)
		fc.walkStmt(s.Body, depth)
	case *ast.RangeStmt:
		m := fc.exprMask(s.X)
		if s.Key != nil {
			if id, ok := s.Key.(*ast.Ident); ok && s.Tok == token.DEFINE {
				fc.bind(id, mask{})
			}
		}
		if s.Value != nil {
			if id, ok := s.Value.(*ast.Ident); ok && s.Tok == token.DEFINE {
				// The range value is a copy of the element; the bind
				// gate drops the mask unless the element type carries
				// references into the container's memory.
				fc.bind(id, m)
			}
		}
		fc.walkStmt(s.Body, depth)
	case *ast.SwitchStmt:
		fc.walkStmt(s.Init, depth)
		if s.Tag != nil {
			fc.exprMask(s.Tag)
		}
		fc.walkStmt(s.Body, depth)
	case *ast.TypeSwitchStmt:
		fc.walkStmt(s.Init, depth)
		var m mask
		switch a := s.Assign.(type) {
		case *ast.AssignStmt:
			if len(a.Rhs) == 1 {
				if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
					m = fc.exprMask(ta.X)
				}
			}
		case *ast.ExprStmt:
			if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
				fc.exprMask(ta.X)
			}
		}
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			// The per-clause implicit variable aliases the switched
			// value under the clause's type.
			if obj, ok := fc.info.Implicits[cc].(*types.Var); ok && !m.empty() && containsRef(obj.Type()) {
				fc.bindVar(obj, m)
			}
			for _, st := range cc.Body {
				fc.walkStmt(st, depth)
			}
		}
	case *ast.SelectStmt:
		fc.walkStmt(s.Body, depth)
	case *ast.CommClause:
		fc.walkStmt(s.Comm, depth)
		for _, st := range s.Body {
			fc.walkStmt(st, depth)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			fc.exprMask(e)
		}
		for _, st := range s.Body {
			fc.walkStmt(st, depth)
		}
	case *ast.LabeledStmt:
		fc.walkStmt(s.Stmt, depth)
	}
}

func (fc *flowCtx) walkAssign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		masks := fc.tupleMasks(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			fc.assignOne(lhs, masks[i], s.Tok)
		}
		return
	}
	for i, lhs := range s.Lhs {
		var m mask
		if i < len(s.Rhs) {
			m = fc.exprMask(s.Rhs[i])
		}
		fc.assignOne(lhs, m, s.Tok)
	}
}

func (fc *flowCtx) assignOne(lhs ast.Expr, m mask, tok token.Token) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		// Rebinding a variable never writes through memory; compound
		// ops (+=) on a bare variable only touch reference-free values.
		if tok == token.ASSIGN || tok == token.DEFINE {
			fc.bind(id, m)
		}
		return
	}
	fc.write(lhs, "assign")
}

// write records a store through lhs when its access path crosses a
// reference edge back to seed-aliased memory.
func (fc *flowCtx) write(lhs ast.Expr, op string) {
	m, crosses := fc.lvalueInfo(lhs)
	if m.a == 0 || !crosses {
		return
	}
	fc.mutated |= m.a
	if fc.onWrite != nil {
		fc.onWrite(lhs.Pos(), m.a, op, types.ExprString(lhs))
	}
}

// lvalueInfo resolves a write target to the mask of its root and
// whether the path from root to store crosses a reference edge (so
// the store lands in shared memory, not in a local copy).
func (fc *flowCtx) lvalueInfo(lhs ast.Expr) (m mask, crosses bool) {
	e := lhs
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			crosses = true
			e = v.X
		case *ast.IndexExpr:
			switch fc.typeOf(v.X).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				crosses = true
			}
			e = v.X
		case *ast.SelectorExpr:
			if _, ok := fc.typeOf(v.X).Underlying().(*types.Pointer); ok {
				crosses = true
			}
			e = v.X
		case *ast.Ident:
			if obj, ok := fc.info.ObjectOf(v).(*types.Var); ok && obj != nil {
				return fc.varMask(obj), crosses
			}
			return mask{}, crosses
		default:
			// Root is a computed expression (call result, composite):
			// its own mask stands in for the root variable.
			return fc.exprMask(e), true
		}
	}
}

func (fc *flowCtx) typeOf(e ast.Expr) types.Type {
	if t := fc.info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// exprMask evaluates an expression's mask and applies the side
// effects of any calls inside it.
func (fc *flowCtx) exprMask(e ast.Expr) mask {
	switch e := e.(type) {
	case nil:
		return mask{}
	case *ast.Ident:
		if obj, ok := fc.info.ObjectOf(e).(*types.Var); ok && obj != nil {
			return fc.varMask(obj)
		}
		return mask{}
	case *ast.ParenExpr:
		return fc.exprMask(e.X)
	case *ast.SelectorExpr:
		if _, ok := fc.info.Uses[e.Sel].(*types.Func); ok {
			// Method value: evaluate the receiver for effects only.
			fc.exprMask(e.X)
			return mask{}
		}
		if m := fc.exprMask(e.X); !m.empty() && containsRef(fc.typeOf(e)) {
			return m
		}
		return mask{}
	case *ast.IndexExpr:
		m := fc.exprMask(e.X)
		fc.exprMask(e.Index)
		if !m.empty() && containsRef(fc.typeOf(e)) {
			return m
		}
		return mask{}
	case *ast.SliceExpr:
		m := fc.exprMask(e.X)
		fc.exprMask(e.Low)
		fc.exprMask(e.High)
		fc.exprMask(e.Max)
		return m
	case *ast.StarExpr:
		if m := fc.exprMask(e.X); !m.empty() && containsRef(fc.typeOf(e)) {
			return m
		}
		return mask{}
	case *ast.TypeAssertExpr:
		if e.Type == nil {
			return fc.exprMask(e.X)
		}
		if m := fc.exprMask(e.X); !m.empty() && containsRef(fc.typeOf(e)) {
			return m
		}
		return mask{}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Address-of reaches the operand's memory without a copy,
			// so no materialization gate applies.
			m, _ := fc.lvalueInfo(e.X)
			return m
		}
		fc.exprMask(e.X)
		return mask{}
	case *ast.BinaryExpr:
		fc.exprMask(e.X)
		fc.exprMask(e.Y)
		return mask{}
	case *ast.CompositeLit:
		// A composite literal is fresh memory: seeds stored in it are
		// contained, not aliased. Writing the literal's own fields
		// cannot reach the seed, but returning it publishes the seed.
		var m mask
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if em := fc.exprMask(el); !em.empty() && containsRef(fc.typeOf(el)) {
				m = m.or(em.contained())
			}
		}
		return m
	case *ast.CallExpr:
		masks := fc.callMasks(e, 1)
		return masks[0]
	case *ast.FuncLit:
		fc.walkStmt(e.Body, 1)
		return mask{}
	default:
		return mask{}
	}
}

// tupleMasks evaluates a multi-value rhs (call, map index, type
// assert, channel receive) into n per-result masks.
func (fc *flowCtx) tupleMasks(rhs ast.Expr, n int) []mask {
	masks := make([]mask, n)
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		copy(masks, fc.callMasks(e, n))
	case *ast.IndexExpr: // v, ok := m[k]
		masks[0] = fc.exprMask(e)
	case *ast.TypeAssertExpr: // v, ok := x.(T)
		masks[0] = fc.exprMask(e)
	case *ast.UnaryExpr: // v, ok := <-ch
		fc.exprMask(e)
	default:
		masks[0] = fc.exprMask(rhs)
	}
	return masks
}

// knownMutators are standard-library functions whose summaries the
// loader cannot compute: the map gives, per package path and name,
// the index of the argument they write through.
var knownMutators = map[string]map[string]int{
	"sort": {
		"Slice": 0, "SliceStable": 0, "Sort": 0, "Stable": 0,
		"Ints": 0, "Float64s": 0, "Strings": 0,
	},
	"slices": {
		"Sort": 0, "SortFunc": 0, "SortStableFunc": 0, "Reverse": 0,
	},
	"math/rand":    {"Shuffle": -1},
	"math/rand/v2": {"Shuffle": -1},
}

// callMasks applies a call's effects (interprocedural writes via the
// callee summary, built-in mutations) and returns up to n result
// masks.
func (fc *flowCtx) callMasks(call *ast.CallExpr, n int) []mask {
	masks := make([]mask, n)
	if n < 1 {
		masks = make([]mask, 1)
	}

	// Built-ins and conversions first: they have no *types.Func.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fc.info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 {
					m := fc.exprMask(call.Args[0])
					for i, a := range call.Args[1:] {
						// Appended elements end up reachable from the
						// result's backing array — but only the copied
						// value matters: spreading a []float64 with ...
						// copies bare floats, which carry nothing.
						em := fc.exprMask(a)
						copied := fc.typeOf(a)
						if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
							if sl, ok := copied.Underlying().(*types.Slice); ok {
								copied = sl.Elem()
							}
						}
						if !em.empty() && containsRef(copied) {
							m = m.or(em.contained())
						}
					}
					if m.a != 0 {
						// Appending may write the shared backing array
						// past len.
						fc.mutated |= m.a
						if fc.onWrite != nil {
							fc.onWrite(call.Pos(), m.a, "append", types.ExprString(call.Args[0]))
						}
					}
					masks[0] = m
				}
				return masks
			case "copy", "delete", "clear":
				if len(call.Args) > 0 {
					m := fc.exprMask(call.Args[0])
					for _, a := range call.Args[1:] {
						fc.exprMask(a)
					}
					if m.a != 0 {
						fc.mutated |= m.a
						if fc.onWrite != nil {
							fc.onWrite(call.Pos(), m.a, id.Name, types.ExprString(call.Args[0]))
						}
					}
				}
				return masks
			default:
				for _, a := range call.Args {
					fc.exprMask(a)
				}
				return masks
			}
		}
	}
	if tv, ok := fc.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: the result is the operand under a new type.
		if len(call.Args) == 1 {
			masks[0] = fc.exprMask(call.Args[0])
		}
		return masks
	}

	// Evaluate arguments; the receiver of a method call is argument 0
	// of the summary's parameter space.
	var argMasks []mask
	var argExprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := fc.info.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				argMasks = append(argMasks, fc.exprMask(sel.X))
				argExprs = append(argExprs, sel.X)
			}
		}
	}
	for _, a := range call.Args {
		argMasks = append(argMasks, fc.exprMask(a))
		argExprs = append(argExprs, a)
	}

	fn := calleeOf(fc.info, call)
	if fn == nil {
		if fc.sourceMask != nil {
			masks[0].a = fc.sourceMask(call)
		}
		return masks
	}

	// Standard-library mutators with hand-written summaries.
	if fn.Pkg() != nil {
		if byName, ok := knownMutators[fn.Pkg().Path()]; ok {
			if idx, ok := byName[fn.Name()]; ok && idx >= 0 && idx < len(call.Args) {
				if m := fc.exprMask(call.Args[idx]); m.a != 0 {
					fc.mutated |= m.a
					if fc.onWrite != nil {
						fc.onWrite(call.Pos(), m.a, "call "+fn.FullName(), types.ExprString(call.Args[idx]))
					}
				}
			}
		}
	}

	if sum := fc.prog.Sums[fn]; sum != nil {
		for i, am := range argMasks {
			if i >= maxSumParams {
				break
			}
			// A summary-reported write through parameter i lands in
			// memory the argument directly aliases; memory merely
			// stored inside the argument would need the two-level
			// traversal this analysis deliberately omits.
			if am.a != 0 && sum.Mutates&(1<<uint(i)) != 0 {
				fc.mutated |= am.a
				if fc.onWrite != nil {
					fc.onWrite(call.Pos(), am.a, "call "+fn.FullName(), types.ExprString(argExprs[i]))
				}
			}
		}
		for r := 0; r < n; r++ {
			if r < len(sum.RetA) {
				for i, am := range argMasks {
					if i >= maxSumParams {
						break
					}
					if sum.RetA[r]&(1<<uint(i)) != 0 {
						// Result aliases the argument: both domains
						// carry over unchanged.
						masks[r] = masks[r].or(am)
					}
				}
			}
			if r < len(sum.RetC) {
				for i, am := range argMasks {
					if i >= maxSumParams {
						break
					}
					if sum.RetC[r]&(1<<uint(i)) != 0 && !am.empty() {
						// Result is a fresh container holding the
						// argument.
						masks[r] = masks[r].or(am.contained())
					}
				}
			}
		}
	}
	if fc.sourceMask != nil {
		masks[0].a |= fc.sourceMask(call)
	}
	return masks
}

// containsRef reports whether values of t carry references to mutable
// memory: writing through a copy of such a value can still reach the
// original's data. Strings are immutable and funcs/channels expose no
// addressable storage to the rules, so they do not count.
func containsRef(t types.Type) bool {
	return containsRefDepth(t, 0)
}

func containsRefDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return true // deeply recursive type: assume shared memory
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface:
		return true
	case *types.Chan, *types.Signature:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsRefDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return containsRefDepth(u.Elem(), depth+1)
	default:
		return false
	}
}

// summarizePkg computes FuncSum for every function declared in pkg.
// Dependencies are already summarized (the loader works in dependency
// order); recursion within the package converges by iterating until
// no summary changes.
func summarizePkg(prog *Program, pkg *Pkg) {
	type declFn struct {
		fn *types.Func
		fd *ast.FuncDecl
	}
	var fns []declFn
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, declFn{fn, fd})
			prog.Sums[fn] = &FuncSum{}
		}
	}
	for round := 0; round < 5; round++ {
		changed := false
		for _, d := range fns {
			sum := summarizeFunc(prog, pkg.Info, d.fn, d.fd)
			old := prog.Sums[d.fn]
			if !sumEqual(old, sum) {
				prog.Sums[d.fn] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func sumEqual(a, b *FuncSum) bool {
	if a.Mutates != b.Mutates || len(a.RetA) != len(b.RetA) || len(a.RetC) != len(b.RetC) {
		return false
	}
	for i := range a.RetA {
		if a.RetA[i] != b.RetA[i] {
			return false
		}
	}
	for i := range a.RetC {
		if a.RetC[i] != b.RetC[i] {
			return false
		}
	}
	return true
}

// paramVars lists a function's summary parameters: receiver first,
// then the declared parameters.
func paramVars(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func summarizeFunc(prog *Program, info *types.Info, fn *types.Func, fd *ast.FuncDecl) *FuncSum {
	seeds := make(map[*types.Var]uint64)
	for i, p := range paramVars(fn) {
		if i >= maxSumParams {
			break
		}
		if containsRef(p.Type()) {
			seeds[p] = 1 << uint(i)
		}
	}
	fc := &flowCtx{prog: prog, info: info, seeds: seeds}
	fc.run(fd.Body)
	paramMask := uint64(1<<uint(min(len(paramVars(fn)), maxSumParams))) - 1
	sum := &FuncSum{Mutates: fc.mutated & paramMask}
	for _, r := range fc.rets {
		sum.RetA = append(sum.RetA, r.a&paramMask)
		sum.RetC = append(sum.RetC, r.c&paramMask)
	}
	return sum
}
