package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// artifactAliasRule enforces the frozen-artifact invariant the whole
// caching stack rests on: a value under a content-addressed key must
// stay bit-identical forever, because the LRU, the DiskStore and
// every concurrent job share the same instance. The rule seeds the
// dataflow engine with every way code obtains a published artifact —
// pipeline.Store.Do results, Graph.Request/RequestOne results, the
// deps map of a registered compute function — and reports any write
// that provably lands in artifact-reachable memory: field/element
// stores, in-place append/copy/delete, and calls that pass an
// artifact to a function whose summary says it writes through that
// parameter. The second half checks the producer side: a compute
// function must not publish a captured scratch buffer it also
// mutates, or the next run will silently rewrite the cached bytes.
//
// The rule is typed-only: without go/types it stays silent (-fast
// mode), so its suppressions are judged stale only by the full
// analysis.
type artifactAliasRule struct{}

// artifactBit is the seed bit marking artifact-aliasing values in the
// dataflow mask (parameter bits stay below maxSumParams).
const artifactBit = uint64(1) << 63

func (artifactAliasRule) Name() string { return "artifactalias" }
func (artifactAliasRule) Doc() string {
	return "published artifacts (Store.Do / Graph.Request results, compute deps) are frozen: no writes through them, and compute funcs must not publish mutated scratch buffers"
}

// Check is the AST-mode stub: aliasing cannot be seen without types.
func (artifactAliasRule) Check(f *File, report ReportFunc) {}

func (artifactAliasRule) CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc) {
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkArtifactWrites(prog, pkg, fd, report)
		checkComputeRetention(prog, pkg, fd, report)
	}
}

// artifactSource returns the artifact bit when call produces a
// published artifact: Store.Do on any pipeline.Store implementation,
// or Graph.Request/RequestOne.
func artifactSource(prog *Program, info *types.Info, call *ast.CallExpr) uint64 {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return 0
	}
	switch fn.Name() {
	case "Do":
		if prog.storeIface != nil && (types.Implements(recv, prog.storeIface) ||
			types.Implements(types.NewPointer(recv), prog.storeIface)) {
			return artifactBit
		}
	case "Request", "RequestOne":
		if prog.graphNamed == nil {
			return 0
		}
		t := recv
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == prog.graphNamed.Obj() {
			return artifactBit
		}
	}
	return 0
}

// depsParams collects the deps parameters of every compute-shaped
// function in fd: fd itself if it has the compute signature, plus any
// nested compute FuncLits (the registered Node.Compute closures).
func depsParams(prog *Program, info *types.Info, fd *ast.FuncDecl) map[*types.Var]uint64 {
	seeds := make(map[*types.Var]uint64)
	seed := func(params *ast.FieldList, sig *types.Signature) {
		if !prog.isComputeSig(sig) || params == nil {
			return
		}
		// The deps map is the flattened second parameter.
		flat := 0
		for _, field := range params.List {
			names := field.Names
			if len(names) == 0 {
				flat++
				continue
			}
			for _, name := range names {
				if flat == 1 {
					if obj, ok := info.Defs[name].(*types.Var); ok {
						seeds[obj] = artifactBit
					}
				}
				flat++
			}
		}
	}
	if sig, ok := info.TypeOf(fd.Name).(*types.Signature); ok {
		seed(fd.Type.Params, sig)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if sig, ok := info.TypeOf(lit).(*types.Signature); ok {
			seed(lit.Type.Params, sig)
		}
		return true
	})
	return seeds
}

// checkArtifactWrites runs the taint pass over one function and
// reports writes that reach artifact memory.
func checkArtifactWrites(prog *Program, pkg *Pkg, fd *ast.FuncDecl, report ReportFunc) {
	fc := &flowCtx{
		prog:  prog,
		info:  pkg.Info,
		seeds: depsParams(prog, pkg.Info, fd),
		sourceMask: func(call *ast.CallExpr) uint64 {
			return artifactSource(prog, pkg.Info, call)
		},
		onWrite: func(pos token.Pos, mask uint64, op, target string) {
			if mask&artifactBit == 0 {
				return
			}
			switch {
			case op == "assign":
				report(pos, "write through %s: it aliases a published artifact (store result or compute dep) shared by every cached consumer — deep-copy before mutating", target)
			case op == "append":
				report(pos, "append to %s may write the published artifact's backing array in place — copy the slice before appending", target)
			case op == "copy" || op == "delete" || op == "clear":
				report(pos, "%s on %s mutates a published artifact shared by every cached consumer — deep-copy first", op, target)
			case strings.HasPrefix(op, "call "):
				report(pos, "%s aliases a published artifact and %s writes through that parameter — pass a copy", target, strings.TrimPrefix(op, "call "))
			}
		},
	}
	fc.run(fd.Body)
}

// checkComputeRetention flags compute functions that return values
// aliasing a captured variable the code also mutates: the classic
// reused-scratch-buffer escape that rewrites a cached artifact on the
// next run.
func checkComputeRetention(prog *Program, pkg *Pkg, fd *ast.FuncDecl, report ReportFunc) {
	info := pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sig, ok := info.TypeOf(lit).(*types.Signature)
		if !ok || !prog.isComputeSig(sig) {
			return true
		}
		written := mutatedCaptures(info, fd, lit)
		if len(written) == 0 {
			return true
		}
		seeds := make(map[*types.Var]uint64)
		names := make(map[uint64]string)
		bit := uint64(1) << maxSumParams
		for _, obj := range written {
			seeds[obj] = bit
			names[bit] = obj.Name()
			bit <<= 1
			if bit == artifactBit {
				break
			}
		}
		fc := &flowCtx{prog: prog, info: info, seeds: seeds}
		fc.run(lit.Body)
		// Escapes count in both domains: returning the buffer itself
		// or a fresh struct holding it publishes the memory either way.
		var escaped uint64
		for _, r := range fc.rets {
			escaped |= r.any()
		}
		var leaks []string
		for b, name := range names {
			if escaped&b != 0 {
				leaks = append(leaks, name)
			}
		}
		if len(leaks) > 0 {
			sort.Strings(leaks)
			report(lit.Pos(), "compute func publishes captured scratch %s that it also mutates: the next run rewrites the cached artifact in place — allocate per call or copy into the result", strings.Join(leaks, ", "))
		}
		return true
	})
}

// mutatedCaptures lists reference-carrying variables captured by lit
// (declared in the enclosing function, not package scope) that the
// enclosing function mutates: element/field stores through them, or
// self-feeding appends (buf = append(buf, ...)).
func mutatedCaptures(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) []*types.Var {
	captured := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || !containsRef(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // the literal's own parameter or local
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package-level scope
		}
		captured[obj] = true
		return true
	})
	if len(captured) == 0 {
		return nil
	}
	mutated := make(map[*types.Var]bool)
	markRoot := func(e ast.Expr) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		if obj, ok := info.ObjectOf(root).(*types.Var); ok && captured[obj] {
			mutated[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					obj, _ := info.ObjectOf(id).(*types.Var)
					if obj == nil || !captured[obj] {
						continue
					}
					// Rebinding only counts when it feeds the buffer
					// back into itself (append-style accumulation);
					// a fresh allocation each call is confinement.
					if i < len(n.Rhs) && selfFeeding(info, n.Rhs[i], obj) {
						mutated[obj] = true
					}
					continue
				}
				markRoot(lhs)
			}
		case *ast.IncDecStmt:
			if _, ok := ast.Unparen(n.X).(*ast.Ident); !ok {
				markRoot(n.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					switch id.Name {
					case "copy", "delete", "clear":
						if len(n.Args) > 0 {
							markRoot(n.Args[0])
						}
					}
				}
			}
		}
		return true
	})
	out := make([]*types.Var, 0, len(mutated))
	for obj := range mutated {
		out = append(out, obj)
	}
	// Deterministic order for stable diagnostics.
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// selfFeeding reports whether rhs references obj (buf = append(buf,
// ...), buf = buf[:0], ...), meaning the old backing memory lives on.
func selfFeeding(info *types.Info, rhs ast.Expr, obj *types.Var) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o, _ := info.ObjectOf(id).(*types.Var); o == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
