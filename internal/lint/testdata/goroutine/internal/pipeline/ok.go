// Package pipeline is a sanctioned scheduler: it may start workers.
package pipeline

// Pool fans out inside the scheduler scope; no finding.
func Pool(n int) {
	for i := 0; i < n; i++ {
		go func() {}()
	}
}
