package vi

// Pump is channel-confined: it assigns only to names it defines
// (v, n, acc) and communicates over the captured in/out channels, so
// closing in joins it — allowed outside the schedulers.
func Pump(in <-chan int, out chan<- int) {
	go func() {
		n := 0
		var acc int
		for v := range in {
			acc += v
			n++
			out <- acc
		}
	}()
}

// Leaky receives on a captured channel but also increments a captured
// counter: the write escapes the channels, so the channel-confined
// allowance must not apply.
func Leaky(in <-chan int, total *int) {
	go func() {
		for range in {
			*total++
		}
	}()
}

// Detached communicates over nothing captured — a fire-and-forget
// worker with a local channel is not a pump anyone can join.
func Detached() {
	go func() {
		ch := make(chan int, 1)
		ch <- 1
		<-ch
	}()
}
