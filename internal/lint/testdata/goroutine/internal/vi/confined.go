package vi

import "sync"

// Joined proves structured confinement: Add before go, deferred Done
// inside, Wait after — allowed outside the schedulers.
func Joined(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// HalfJoined never waits: the workers outlive the function, so the
// allowance must not apply.
func HalfJoined(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}
