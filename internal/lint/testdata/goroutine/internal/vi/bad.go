// Package vi is a lint fixture: a goroutine outside the sanctioned
// scheduler packages.
package vi

// Fan escapes every pool: no draining, no panic recovery.
func Fan(work []int) {
	for range work {
		go func() {}()
	}
}
