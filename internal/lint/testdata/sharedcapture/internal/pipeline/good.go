package pipeline

import "sync"

// GoodPerSlot uses the disjoint-slot worker convention: each worker
// writes only its own index of a captured slice.
func GoodPerSlot(xs []float64) []float64 {
	var wg sync.WaitGroup
	out := make([]float64, len(xs))
	for i := range xs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = xs[i] * 2
		}()
	}
	wg.Wait()
	return out
}

// GoodMutexGuard serializes the captured write under a mutex, with
// both the inline and the deferred unlock forms.
func GoodMutexGuard(n int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			total--
		}()
	}
	wg.Wait()
	return total
}

// GoodChannel ships results over a channel instead of writing shared
// state; closure-local accumulators stay writable.
func GoodChannel(xs []float64) float64 {
	res := make(chan float64, 1)
	go func() {
		local := 0.0
		for _, x := range xs {
			local += x
		}
		res <- local
	}()
	return <-res
}
