// Package pipeline is a fixture scheduler: its goroutine closures are
// what the sharedcapture rule patrols.
package pipeline

import "sync"

// BadCounter increments a captured counter from workers with no
// guard: the textbook lost-update race.
func BadCounter(n int) int {
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want: unsynchronized captured write
		}()
	}
	wg.Wait()
	return total
}

// BadMapWrite writes a captured map from workers: concurrent map
// writes fault at runtime regardless of which key each worker owns.
func BadMapWrite(keys []string) map[string]int {
	var wg sync.WaitGroup
	out := make(map[string]int, len(keys))
	for _, k := range keys {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[k] = len(k) // want: captured map write
		}()
	}
	wg.Wait()
	return out
}

type job struct {
	state string
	mu    sync.Mutex
}

// BadFieldWrite stores through a captured pointer's field without
// taking the job's own lock.
func BadFieldWrite(j *job) {
	done := make(chan struct{})
	go func() {
		j.state = "running" // want: unguarded field write
		close(done)
	}()
	<-done
}
