package pipeline

// SuppressedSingleWriter writes captured state from the only goroutine
// that ever touches it, behind a reviewed directive.
func SuppressedSingleWriter() string {
	status := ""
	done := make(chan struct{})
	go func() {
		status = "ok" //lint:ignore sharedcapture single writer joined by done before any read
		close(done)
	}()
	<-done
	return status
}
