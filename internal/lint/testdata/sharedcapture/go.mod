module vipipe

go 1.22
