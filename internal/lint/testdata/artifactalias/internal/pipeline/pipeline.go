// Package pipeline is the fixture's miniature of the real store and
// graph API: just enough surface for the typed layer to resolve
// Store.Do, Graph.Request and the Node.Compute signature.
package pipeline

import "context"

// Store is the content-addressed artifact cache seam.
type Store interface {
	Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, error)
}

// Node is one vertex of the artifact graph.
type Node struct {
	ID      string
	Deps    []string
	Compute func(ctx context.Context, deps map[string]any) (any, error)
	Size    func(v any) int64
}

// Graph schedules nodes and serves published artifacts.
type Graph struct {
	nodes map[string]Node
}

// Request returns the published artifacts for the requested ids.
func (g *Graph) Request(ctx context.Context, ids []string) (map[string]any, error) {
	return nil, nil
}

// RequestOne returns one published artifact.
func (g *Graph) RequestOne(ctx context.Context, id string) (any, error) {
	return nil, nil
}

// MustAdd registers a node.
func (g *Graph) MustAdd(n Node) {
	if g.nodes == nil {
		g.nodes = make(map[string]Node)
	}
	g.nodes[n.ID] = n
}

type memStore struct{}

// NewMem returns an in-memory Store.
func NewMem() Store { return memStore{} }

func (memStore) Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, error) {
	v, _, err := compute()
	return v, err
}
