package main

import (
	"context"

	"vipipe/internal/pipeline"
)

// BadStoreWrite mutates a Store.Do result: every cached consumer sees
// the poisoned map.
func BadStoreWrite(ctx context.Context, s pipeline.Store) error {
	v, err := s.Do(ctx, "curve", func() (any, int64, error) {
		return map[string][]float64{}, 0, nil
	})
	if err != nil {
		return err
	}
	m := v.(map[string][]float64)
	m["yield"] = nil // want: write through artifact
	return nil
}

// BadRequestWrite mutates a Graph.Request result slice element.
func BadRequestWrite(ctx context.Context, g *pipeline.Graph) error {
	arts, err := g.Request(ctx, []string{"mc"})
	if err != nil {
		return err
	}
	xs := arts["mc"].([]float64)
	xs[0] = 0 // want: write through artifact
	return nil
}

// BadDepsAppend registers a compute that appends in place to a dep
// slice: the published backing array is extended under every other
// consumer.
func BadDepsAppend(g *pipeline.Graph) {
	g.MustAdd(pipeline.Node{
		ID:   "extend",
		Deps: []string{"samples"},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			xs := deps["samples"].([]float64)
			xs = append(xs, 1.0) // want: in-place append to artifact
			return xs, nil
		},
	})
}

// scaleInPlace doubles every element: a mutating helper whose summary
// records the write through its parameter.
func scaleInPlace(xs []float64) {
	for i := range xs {
		xs[i] *= 2
	}
}

// BadDepsCall hands a dep slice to a helper that writes through it:
// the interprocedural summary has to carry the mutation.
func BadDepsCall(g *pipeline.Graph) {
	g.MustAdd(pipeline.Node{
		ID:   "scale",
		Deps: []string{"samples"},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			xs := deps["samples"].([]float64)
			scaleInPlace(xs) // want: callee writes through artifact
			return xs, nil
		},
	})
}

// BadRetainedScratch publishes a captured scratch buffer the closure
// also mutates: the next run rewrites the cached artifact in place.
func BadRetainedScratch(g *pipeline.Graph) {
	buf := make([]float64, 0, 64)
	g.MustAdd(pipeline.Node{
		ID: "hist",
		Compute: func(ctx context.Context, deps map[string]any) (any, error) { // want: retained scratch
			buf = append(buf[:0], 1, 2, 3)
			return buf, nil
		},
	})
}
