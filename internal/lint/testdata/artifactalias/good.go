package main

import (
	"context"
	"sort"

	"vipipe/internal/pipeline"
)

// GoodCloneThenSort copies the artifact before sorting: the clone
// idiom the rule must not flag.
func GoodCloneThenSort(ctx context.Context, g *pipeline.Graph) ([]float64, error) {
	v, err := g.RequestOne(ctx, "mc")
	if err != nil {
		return nil, err
	}
	src := v.([]float64)
	dst := append([]float64(nil), src...)
	sort.Float64s(dst)
	return dst, nil
}

// sum only reads its argument; its summary must stay write-free.
func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// GoodDepsReadOnly reads deps, aggregates into fresh memory and
// passes the artifact to a read-only helper.
func GoodDepsReadOnly(g *pipeline.Graph) {
	g.MustAdd(pipeline.Node{
		ID:   "mean",
		Deps: []string{"samples"},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			xs := deps["samples"].([]float64)
			out := make([]float64, 0, len(xs))
			for _, x := range xs {
				out = append(out, x/sum(xs))
			}
			return out, nil
		},
	})
}

// GoodFreshBuffer allocates per call: nothing captured, nothing
// retained.
func GoodFreshBuffer(g *pipeline.Graph) {
	g.MustAdd(pipeline.Node{
		ID: "fresh",
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			buf := make([]float64, 0, 64)
			buf = append(buf, 1, 2, 3)
			return buf, nil
		},
	})
}

// GoodCapturedConfig captures read-only configuration: captured but
// never mutated, so publishing values derived from it is fine.
func GoodCapturedConfig(g *pipeline.Graph, scale []float64) {
	g.MustAdd(pipeline.Node{
		ID: "scaled",
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			out := make([]float64, len(scale))
			for i, s := range scale {
				out[i] = s * 2
			}
			return out, nil
		},
	})
}
