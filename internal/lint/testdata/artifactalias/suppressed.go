package main

import (
	"context"

	"vipipe/internal/pipeline"
)

// SuppressedNormalize mutates a store result behind a reviewed
// directive: the one sanctioned escape hatch, visible in the golden
// only through its absence.
func SuppressedNormalize(ctx context.Context, s pipeline.Store) error {
	v, err := s.Do(ctx, "norm", func() (any, int64, error) {
		return []float64{1, 2}, 0, nil
	})
	if err != nil {
		return err
	}
	xs := v.([]float64)
	xs[0] = 1 //lint:ignore artifactalias single-writer node proven by the scheduler: no other consumer holds this key yet
	return nil
}
