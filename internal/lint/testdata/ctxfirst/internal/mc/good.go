package mc

import "context"

// Poll checks cancellation from inside the sample loop.
func Poll(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Workers polls inside the worker closure, the pool idiom.
func Workers(ctx context.Context, n int) error {
	run := func() error {
		return ctx.Err()
	}
	for i := 0; i < n; i++ {
		if err := run(); err != nil {
			return err
		}
	}
	return nil
}
