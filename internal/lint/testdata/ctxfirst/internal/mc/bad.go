// Package mc is a lint fixture: context-convention violations in a
// sample-loop engine package.
package mc

import "context"

// Run takes its context in the wrong position.
func Run(samples int, ctx context.Context) error {
	return ctx.Err()
}

// Drain accepts a context it never consults.
func Drain(ctx context.Context, n int) error {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	_ = total
	return nil
}

// Walk consults ctx once up front but loops without polling it, so a
// long run cannot be cancelled.
func Walk(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		_ = i
	}
	return nil
}
