package main

import "os"

// cmds are outside the compute scope: tools legitimately write
// reports and traces.
func main() {
	_ = os.WriteFile("out.json", nil, 0o644)
}
