package pipeline

import "os"

// fs.go is the sanctioned FS implementation: direct os calls are the
// point here.
func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func rename(old, new string) error { return os.Rename(old, new) }
