package pipeline

import "os"

// Stray IO outside fs.go is still confined, even inside the store's
// own package.
func stray(dir string) error { return os.MkdirAll(dir, 0o755) }

// Non-file os APIs are out of scope.
func pid() int { return os.Getpid() }
