package power

import "os"

// Leak writes a report straight to disk from a compute package,
// bypassing the store seam.
func Leak(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	if _, err := os.Stat(path); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}
