// Package power is a lint fixture: exported APIs returning errors no
// caller can classify.
package power

import (
	"errors"
	"fmt"
)

// Analyze returns naked errors: callers cannot branch on the class.
func Analyze(n int) error {
	if n < 0 {
		return errors.New("power: negative unit count")
	}
	if n == 0 {
		return fmt.Errorf("power: zero units")
	}
	return nil
}
