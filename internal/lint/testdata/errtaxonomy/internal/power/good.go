package power

import (
	"errors"
	"fmt"
)

// Wrap keeps the class by wrapping the cause with %w.
func Wrap(err error) error {
	if err != nil {
		return fmt.Errorf("power: analyze: %w", err)
	}
	return nil
}

// helper is unexported: internal plumbing may build errors ad hoc,
// the taxonomy applies at the API boundary.
func helper() error {
	return errors.New("power: internal probe")
}
