// Command tool sits outside the compute scope: wall-clock reads are
// fine here and must not be reported.
package main

import "time"

func main() {
	_ = time.Now()
}
