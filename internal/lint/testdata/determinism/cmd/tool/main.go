// Command tool sits outside the compute scope, but the wall-clock
// half of the rule is module-wide: cmds route timing through obs.Now
// too, so this read must be reported.
package main

import "time"

func main() {
	_ = time.Now()
}
