// Package mc is a lint fixture: clock, environment and global-rand
// reads inside the compute scope.
package mc

import (
	"math/rand"
	"os"
	"time"
)

// Sample mixes every forbidden source of nondeterminism.
func Sample() float64 {
	t0 := time.Now()
	if os.Getenv("VIPIPE_FAST") != "" {
		return 0
	}
	v := rand.Float64()
	_ = time.Since(t0)
	return v
}
