package mc

import "math/rand"

// Seeded derives a stream the sanctioned way: an explicit source, so
// constructors stay legal where the global functions are not.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
