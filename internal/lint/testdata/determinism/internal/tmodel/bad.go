// Package tmodel is a lint fixture: a compact-model extraction that
// stamps wall-clock time into the artifact, which would break
// byte-identical re-extraction.
package tmodel

import "time"

// ExtractStamp records when the model was built — the determinism
// rule must flag the clock read.
func ExtractStamp() int64 {
	return time.Now().UnixNano()
}
