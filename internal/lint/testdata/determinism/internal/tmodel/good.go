// Clean counterpart: signatures sorted canonically, no ambient state.
package tmodel

import "sort"

// CanonicalOrder sorts endpoint IDs the sanctioned way — pure data in,
// pure data out.
func CanonicalOrder(eps []int) {
	sort.Ints(eps)
}
