// Package obs is the one package exempt from the wall-clock half of
// the determinism rule: it owns time.Now so everything else can route
// clock reads through it. Nothing here may be reported.
package obs

import "time"

// Now is the sanctioned clock read.
func Now() time.Time { return time.Now() }

// Since is the sanctioned elapsed-time read.
func Since(t time.Time) time.Duration { return time.Since(t) }
