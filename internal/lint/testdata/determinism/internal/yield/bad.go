// Package yield is a lint fixture: shard seeding through the global
// rand, which would make shard artifacts irreproducible.
package yield

import "math/rand"

// ShardSeed draws a shard's seed from process-global state — the
// determinism rule must flag it.
func ShardSeed(shard int) int64 {
	return rand.Int63() + int64(shard)
}
