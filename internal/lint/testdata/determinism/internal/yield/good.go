package yield

import "math/rand"

// SampleStream derives a shard's stream the sanctioned way: from the
// plan seed and the global sample index, so any shard grouping
// replays identical draws (the real package routes this through
// stats.DeriveStream).
func SampleStream(seed int64, sample int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(sample)*0x9e3779b9))
}
