// Package stats is a lint fixture: order-sensitive writes under map
// iteration.
package stats

import "strings"

// Keys collects map keys in iteration order: unstable.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Render writes map entries in iteration order: unstable.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
