package stats

import "sort"

// SortedKeys collects then sorts: the append order never escapes.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Totals accumulates into per-key state derived from the entry
// itself, which is order-independent.
func Totals(m map[string][]int) map[string]int {
	sums := make(map[string]int, len(m))
	for k, vs := range m {
		s := 0
		for _, v := range vs {
			s += v
		}
		sums[k] = s
	}
	return sums
}
