// Package mc is a lint fixture for //lint:ignore handling: a live
// suppression, two malformed directives, and a stale one.
package mc

import "time"

// Stamp is wall-clock telemetry, legitimately suppressed.
func Stamp() int64 {
	t := time.Now() //lint:ignore determinism fixture: telemetry, not artifact state
	return t.Unix()
}

// Bogus carries directives the linter must reject — and because they
// are rejected, the finding underneath still surfaces.
func Bogus() int64 {
	//lint:ignore nosuchrule this rule does not exist
	//lint:ignore determinism
	t := time.Now()
	return t.Unix()
}

// Clean carries a directive with nothing left to suppress.
func Clean() int {
	//lint:ignore determinism stale: nothing below trips the rule
	return 1
}
