package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultRules returns the project rule set, in reporting order. The
// last two rules are typed-only: they stay silent unless Options.Typed
// loads the go/types layer.
func DefaultRules() []Rule {
	return []Rule{
		determinismRule{},
		mapOrderRule{},
		errTaxonomyRule{},
		ctxFirstRule{},
		goroutineRule{},
		fsConfineRule{},
		artifactAliasRule{},
		sharedCaptureRule{},
	}
}

// computeDirs are the packages whose outputs feed content-addressed
// artifacts, wire encodings or the equivalence suite: everything in
// them must recompute bit-identically for a given Config.
var computeDirs = []string{
	"internal/mc", "internal/sta", "internal/vi", "internal/power",
	"internal/variation", "internal/stats", "internal/place",
	"internal/gsim", "internal/pipeline", "internal/service",
	"internal/yield", "internal/tmodel",
}

// rootFlowFiles are the root-package files that define the artifact
// graph and the Flow facade.
var rootFlowFiles = map[string]bool{"graph.go": true, "vipipe.go": true, "yieldgraph.go": true, "tmodelgraph.go": true}

// taxonomyDirs are the packages whose exported APIs participate in
// the flowerr error taxonomy (callers branch on errors.Is, cmds map
// classes to exit codes).
var taxonomyDirs = []string{
	"internal/mc", "internal/sta", "internal/vi", "internal/power",
	"internal/place", "internal/gsim", "internal/stats",
	"internal/pipeline", "internal/service", "internal/yield",
	"internal/tmodel",
}

// schedulerDirs are the only packages allowed to start goroutines:
// their pools own draining, panic recovery and cancellation.
var schedulerDirs = []string{
	"internal/pipeline", "internal/mc", "internal/gsim", "internal/service",
}

func inDirs(f *File, dirs []string) bool {
	for _, d := range dirs {
		if f.Dir == d || strings.HasPrefix(f.Dir, d+"/") {
			return true
		}
	}
	return false
}

func inComputeScope(f *File) bool  { return rootFlowFiles[f.Rel] || inDirs(f, computeDirs) }
func inTaxonomyScope(f *File) bool { return rootFlowFiles[f.Rel] || inDirs(f, taxonomyDirs) }

// pkgName returns the local identifier under which a file imports
// path (def is the path's default package name). ok is false when the
// file does not import it by a usable name.
func pkgName(f *ast.File, path, def string) (string, bool) {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name == nil {
			return def, true
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return "", false
		}
		return imp.Name.Name, true
	}
	return "", false
}

// pkgCall matches a call of the form <local>.<sel> and returns sel.
func pkgCall(call *ast.CallExpr, local string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != local {
		return "", false
	}
	return sel.Sel.Name, true
}

// ---------------------------------------------------------------- //

// determinismRule forbids wall-clock reads, the global math/rand
// source and environment lookups. The clock half applies module-wide:
// internal/obs is the one package allowed to read the wall clock, and
// everything else (schedulers, service, cmds, the root flow) routes
// timing through obs.Now/obs.Since so traced timing never leaks into
// artifact state. Rand and env checks stay confined to the compute
// scope. All randomness must flow through internal/stats/rng.go
// streams derived from Config.Seed; anything else silently poisons
// cache keys and the golden/equivalence suites.
type determinismRule struct{}

// clockDir is the only package allowed to call time.Now/Since/Until.
const clockDir = "internal/obs"

func (determinismRule) Name() string { return "determinism" }
func (determinismRule) Doc() string {
	return "wall-clock reads only in internal/obs (use obs.Now/obs.Since elsewhere); no global math/rand or os.Getenv in compute packages"
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// backed by the shared global source. Constructors (New, NewSource,
// NewPCG, NewZipf) are fine: seeded streams are how determinism is
// achieved.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "IntN": true,
	"Int32": true, "Int32N": true, "Int64N": true, "N": true,
	"Uint": true, "Uint32": true, "Uint64": true, "UintN": true,
	"Uint32N": true, "Uint64N": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func (determinismRule) Check(f *File, report ReportFunc) {
	clockScope := f.Dir != clockDir
	computeScope := inComputeScope(f)
	if !clockScope && !computeScope {
		return
	}
	timeName, hasTime := pkgName(f.AST, "time", "time")
	osName, hasOS := pkgName(f.AST, "os", "os")
	randName, hasRand := pkgName(f.AST, "math/rand", "rand")
	if !hasRand {
		randName, hasRand = pkgName(f.AST, "math/rand/v2", "rand")
	}
	hasTime = hasTime && clockScope
	hasOS = hasOS && computeScope
	hasRand = hasRand && computeScope
	if !hasTime && !hasOS && !hasRand {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if hasTime {
			if sel, ok := pkgCall(call, timeName); ok && (sel == "Now" || sel == "Since" || sel == "Until") {
				report(call.Pos(), "time.%s outside internal/obs: route wall-clock reads through obs.Now/obs.Since so timing never leaks into artifact state", sel)
			}
		}
		if hasOS {
			if sel, ok := pkgCall(call, osName); ok && (sel == "Getenv" || sel == "LookupEnv" || sel == "Environ") {
				report(call.Pos(), "os.%s in a deterministic flow package: behavior may not depend on the environment", sel)
			}
		}
		if hasRand {
			if sel, ok := pkgCall(call, randName); ok && globalRandFuncs[sel] {
				report(call.Pos(), "global rand.%s: derive a seeded stream via internal/stats/rng.go instead", sel)
			}
		}
		return true
	})
}

// CheckTyped resolves callees through go/types, so renamed imports
// (clock "time") and indirect aliases cannot dodge the rule the way
// they can dodge the AST import-name match.
func (determinismRule) CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc) {
	clockScope := f.Dir != clockDir
	computeScope := inComputeScope(f)
	if !clockScope && !computeScope {
		return
	}
	info := pkg.Info
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if clockScope {
			if name, ok := pkgFuncCall(info, call, "time"); ok && (name == "Now" || name == "Since" || name == "Until") {
				report(call.Pos(), "time.%s outside internal/obs: route wall-clock reads through obs.Now/obs.Since so timing never leaks into artifact state", name)
			}
		}
		if computeScope {
			if name, ok := pkgFuncCall(info, call, "os"); ok && (name == "Getenv" || name == "LookupEnv" || name == "Environ") {
				report(call.Pos(), "os.%s in a deterministic flow package: behavior may not depend on the environment", name)
			}
			name, ok := pkgFuncCall(info, call, "math/rand")
			if !ok {
				name, ok = pkgFuncCall(info, call, "math/rand/v2")
			}
			if ok && globalRandFuncs[name] {
				report(call.Pos(), "global rand.%s: derive a seeded stream via internal/stats/rng.go instead", name)
			}
		}
		return true
	})
}

// ---------------------------------------------------------------- //

// mapOrderRule flags range loops over maps whose bodies build
// order-sensitive output — slice appends, builder/hash writes —
// without the appended slice being sorted afterwards. Map iteration
// order is randomized per run, so such a loop is exactly the
// encoding/fingerprint killer that breaks wire payload and cache-key
// stability. The rule is AST-only: it fires only when the ranged
// expression provably has a map type in the same function (local
// declaration, composite literal or parameter).
type mapOrderRule struct{}

func (mapOrderRule) Name() string { return "maporder" }
func (mapOrderRule) Doc() string {
	return "no order-sensitive writes (append/Write) inside a range over a map unless the result is sorted"
}

func (mapOrderRule) Check(f *File, report ReportFunc) {
	if !inComputeScope(f) {
		return
	}
	fmtName, hasFmt := pkgName(f.AST, "fmt", "fmt")
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isLocalMap(rs.X) {
				return true
			}
			checkMapRangeBody(fd, rs, f, fmtName, hasFmt, report)
			return true
		})
	}
}

// CheckTyped replaces the file-local map-provenance heuristic with the
// real type of the ranged expression: struct fields, cross-package
// values and chained selectors all resolve, so map ranges the AST
// layer could not prove now get checked too.
func (mapOrderRule) CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc) {
	if !inComputeScope(f) {
		return
	}
	info := pkg.Info
	fmtName, hasFmt := pkgName(f.AST, "fmt", "fmt")
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(fd, rs, f, fmtName, hasFmt, report)
			return true
		})
	}
}

func checkMapRangeBody(fd *ast.FuncDecl, rs *ast.RangeStmt, f *File, fmtName string, hasFmt bool, report ReportFunc) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || len(call.Args) == 0 {
					continue
				}
				target := types.ExprString(n.Lhs[i])
				if types.ExprString(call.Args[0]) != target {
					continue
				}
				root := rootIdent(n.Lhs[i])
				if root == nil || definedWithin(rs.Body, root.Name) {
					continue // accumulator keyed off the map entry itself
				}
				if sortedAfter(fd, rs, target) {
					continue
				}
				report(n.Pos(), "append to %s while ranging over a map: iteration order is random — collect keys, sort, then iterate", target)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "WriteString", "WriteByte", "WriteRune":
					report(n.Pos(), "%s.%s while ranging over a map: output depends on random iteration order — sort the keys first", types.ExprString(sel.X), sel.Sel.Name)
				}
			}
			if hasFmt {
				if name, ok := pkgCall(n, fmtName); ok && (name == "Fprintf" || name == "Fprintln" || name == "Fprint") {
					report(n.Pos(), "fmt.%s while ranging over a map: output depends on random iteration order — sort the keys first", name)
				}
			}
		}
		return true
	})
}

// isLocalMap reports whether expr resolves, within this file, to a
// value of map type: a make(map[...]) or map-literal assignment, a
// map-typed var declaration, or a map-typed parameter.
func isLocalMap(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Obj == nil {
		return false
	}
	switch decl := id.Obj.Decl.(type) {
	case *ast.AssignStmt:
		for i, lhs := range decl.Lhs {
			l, ok := lhs.(*ast.Ident)
			if !ok || l.Obj != id.Obj || i >= len(decl.Rhs) {
				continue
			}
			return isMapExpr(decl.Rhs[i])
		}
	case *ast.ValueSpec:
		if _, ok := decl.Type.(*ast.MapType); ok {
			return true
		}
		for i, name := range decl.Names {
			if name.Obj == id.Obj && i < len(decl.Values) {
				return isMapExpr(decl.Values[i])
			}
		}
	case *ast.Field:
		_, ok := decl.Type.(*ast.MapType)
		return ok
	}
	return false
}

func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	}
	return false
}

// rootIdent returns the base identifier of x / x.f / x.f[i] chains.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// definedWithin reports whether name is (re)defined by a := inside
// body — an accumulator derived from the map entry, whose per-key
// state is order-independent.
func definedWithin(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether target is passed to a sort.*/slices.*
// call after the range statement in the same function — the
// collect-then-sort idiom that makes the append order irrelevant.
func sortedAfter(fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// ---------------------------------------------------------------- //

// errTaxonomyRule requires exported functions in flow packages to
// return classified errors: flowerr sentinels/constructors or
// %w-wrapping fmt.Errorf — never naked errors.New / fmt.Errorf, which
// callers cannot branch on and cmds cannot map to exit codes.
type errTaxonomyRule struct{}

func (errTaxonomyRule) Name() string { return "errtaxonomy" }
func (errTaxonomyRule) Doc() string {
	return "exported flow APIs return flowerr-classified or %w-wrapped errors, not naked errors.New/fmt.Errorf"
}

func (errTaxonomyRule) Check(f *File, report ReportFunc) {
	if !inTaxonomyScope(f) || f.Dir == "internal/flowerr" {
		return
	}
	errorsName, hasErrors := pkgName(f.AST, "errors", "errors")
	fmtName, hasFmt := pkgName(f.AST, "fmt", "fmt")
	if !hasErrors && !hasFmt {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				call, ok := res.(*ast.CallExpr)
				if !ok {
					continue
				}
				if hasErrors {
					if sel, ok := pkgCall(call, errorsName); ok && sel == "New" {
						report(call.Pos(), "%s returns naked errors.New: use a flowerr constructor (e.g. flowerr.BadInputf) so callers can branch on the class", fd.Name.Name)
					}
				}
				if hasFmt {
					if sel, ok := pkgCall(call, fmtName); ok && sel == "Errorf" && len(call.Args) > 0 {
						if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING && !strings.Contains(lit.Value, "%w") {
							report(call.Pos(), "%s returns fmt.Errorf without %%w: wrap a cause or use a flowerr constructor so the error keeps its class", fd.Name.Name)
						}
					}
				}
			}
			return true
		})
	}
}

// CheckTyped resolves errors.New / fmt.Errorf through go/types
// (aliased imports resolve) and gates on the function actually having
// an error result, so exported helpers that cannot leak a naked error
// into the taxonomy are skipped instead of pattern-matched.
func (errTaxonomyRule) CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc) {
	if !inTaxonomyScope(f) || f.Dir == "internal/flowerr" {
		return
	}
	info := pkg.Info
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		returnsErr := false
		for i := 0; i < sig.Results().Len(); i++ {
			if isErrorType(sig.Results().At(i).Type()) {
				returnsErr = true
			}
		}
		if !returnsErr {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				call, ok := res.(*ast.CallExpr)
				if !ok {
					continue
				}
				if name, ok := pkgFuncCall(info, call, "errors"); ok && name == "New" {
					report(call.Pos(), "%s returns naked errors.New: use a flowerr constructor (e.g. flowerr.BadInputf) so callers can branch on the class", fd.Name.Name)
				}
				if name, ok := pkgFuncCall(info, call, "fmt"); ok && name == "Errorf" && len(call.Args) > 0 {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING && !strings.Contains(lit.Value, "%w") {
						report(call.Pos(), "%s returns fmt.Errorf without %%w: wrap a cause or use a flowerr constructor so the error keeps its class", fd.Name.Name)
					}
				}
			}
			return true
		})
	}
}

// ---------------------------------------------------------------- //

// ctxFirstRule enforces the context conventions of the flow: exported
// APIs that take a context.Context take it as the first parameter and
// actually consult it, and in the sample-loop engines (mc, gsim) a
// ctx-taking function with loops must poll cancellation from inside a
// loop (or its worker closures) so runs stay interruptible.
type ctxFirstRule struct{}

func (ctxFirstRule) Name() string { return "ctxfirst" }
func (ctxFirstRule) Doc() string {
	return "exported blocking APIs take context.Context first and consult it; mc/gsim loops poll cancellation"
}

func (ctxFirstRule) Check(f *File, report ReportFunc) {
	if !inComputeScope(f) {
		return
	}
	ctxPkg, ok := pkgName(f.AST, "context", "context")
	if !ok {
		return
	}
	loopScope := f.Dir == "internal/mc" || f.Dir == "internal/gsim"
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Type.Params == nil {
			continue
		}
		idx, ctxIdent := ctxParam(fd, func(t ast.Expr) bool { return isCtxType(t, ctxPkg) })
		reportCtxFunc(f, fd, idx, ctxIdent, loopScope, report)
	}
}

// CheckTyped detects the context parameter through go/types, so
// renamed context imports and type aliases resolve.
func (ctxFirstRule) CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc) {
	if !inComputeScope(f) {
		return
	}
	info := pkg.Info
	loopScope := f.Dir == "internal/mc" || f.Dir == "internal/gsim"
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Type.Params == nil {
			continue
		}
		idx, ctxIdent := ctxParam(fd, func(t ast.Expr) bool { return isContextType(info.TypeOf(t)) })
		reportCtxFunc(f, fd, idx, ctxIdent, loopScope, report)
	}
}

// ctxParam locates the first context-typed parameter of fd by flat
// index, returning -1 when there is none.
func ctxParam(fd *ast.FuncDecl, isCtx func(ast.Expr) bool) (int, string) {
	idx := -1
	var ctxIdent string
	flat := 0
	for _, field := range fd.Type.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if idx < 0 && isCtx(field.Type) {
			idx = flat
			if len(field.Names) > 0 {
				ctxIdent = field.Names[0].Name
			}
		}
		flat += names
	}
	return idx, ctxIdent
}

// reportCtxFunc is the shared reporting tail of both ctxfirst modes.
func reportCtxFunc(f *File, fd *ast.FuncDecl, idx int, ctxIdent string, loopScope bool, report ReportFunc) {
	if idx < 0 {
		return
	}
	if fd.Name.IsExported() && idx > 0 {
		report(fd.Name.Pos(), "%s takes context.Context at position %d: blocking APIs take ctx as the first parameter", fd.Name.Name, idx+1)
	}
	if ctxIdent == "" || ctxIdent == "_" {
		return
	}
	if fd.Name.IsExported() && !identUsed(fd.Body, ctxIdent) {
		report(fd.Name.Pos(), "%s accepts %s but never consults it: check cancellation or pass it on", fd.Name.Name, ctxIdent)
		return
	}
	if loopScope && hasForLoop(fd.Body) && !ctxInLoop(fd.Body, ctxIdent) {
		report(fd.Name.Pos(), "%s loops without polling %s: sample/iteration loops in %s must check cancellation", fd.Name.Name, ctxIdent, f.Dir)
	}
}

func isCtxType(t ast.Expr, ctxPkg string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == ctxPkg
}

func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}

func hasForLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// ctxInLoop reports whether name is referenced inside a for/range
// body or inside a function literal (worker closures run the loop's
// work and poll there).
func ctxInLoop(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if identUsed(n.Body, name) {
				found = true
			}
		case *ast.RangeStmt:
			if identUsed(n.Body, name) {
				found = true
			}
		case *ast.FuncLit:
			if identUsed(n.Body, name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------- //

// goroutineRule confines goroutine creation to the sanctioned
// scheduler packages, whose pools own panic recovery, draining and
// cancellation. A stray `go func` elsewhere escapes all three —
// unless the surrounding function proves structured confinement one
// of two ways. The WaitGroup proof: wg.Add before the go statement, a
// deferred wg.Done as the closure's first act, and wg.Wait afterwards
// in the same function — that joins every worker before returning,
// which is exactly what the scheduler pools guarantee. The
// channel-confined proof: the launched closure assigns only to names
// it defines itself and communicates over at least one captured
// channel — a pure pump (broadcast dispatcher, ticker sampler,
// result forwarder) whose lifetime is governed by the channels it
// serves, so draining the channels joins it. Both proofs are lexical
// and hold in the AST and typed modes alike.
type goroutineRule struct{}

func (goroutineRule) Name() string { return "goroutine" }
func (goroutineRule) Doc() string {
	return "goroutines start only in the scheduler packages (internal/pipeline, mc, gsim, service), under a full WaitGroup Add/Done/Wait join in one function, or as a channel-confined pump (no captured writes, communicates over a captured channel)"
}

func (goroutineRule) Check(f *File, report ReportFunc) {
	if inDirs(f, schedulerDirs) {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok && !wgConfined(fd.Body, g) && !chanConfined(g) {
				report(g.Pos(), "goroutine outside the sanctioned schedulers (%s): route concurrency through their pools, join it with a WaitGroup (Add before go, defer Done inside, Wait after), or make it a channel-confined pump (no captured writes, communicates over a captured channel)", strings.Join(schedulerDirs, ", "))
			}
			return true
		})
	}
}

// wgConfined reports whether the goroutine is provably joined by a
// WaitGroup inside body: the launched closure defers <wg>.Done(),
// <wg>.Add(...) appears before the go statement and <wg>.Wait() after
// it, all on the same identifier. The match is lexical (same name in
// one function), which one file cannot fake without shadowing — and
// shadowing a WaitGroup mid-function would break compilation of the
// Add/Wait pair anyway.
func wgConfined(body *ast.BlockStmt, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	// Collect the names whose Done is deferred inside the closure.
	done := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if sel, ok := ds.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if root := rootIdent(sel.X); root != nil {
				done[root.Name] = true
			}
		}
		return true
	})
	if len(done) == 0 {
		return false
	}
	added, waited := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || !done[root.Name] {
			return true
		}
		switch {
		case sel.Sel.Name == "Add" && call.Pos() < g.Pos():
			added = true
		case sel.Sel.Name == "Wait" && call.Pos() > g.End():
			waited = true
		}
		return !(added && waited)
	})
	return added && waited
}

// chanConfined reports whether the goroutine is a channel-confined
// pump: a closure that (a) assigns only to names it defines itself —
// parameters, := definitions (including select receive clauses and
// range variables) and var declarations — and (b) communicates over
// at least one channel it captured from the enclosing scope. Such a
// goroutine's only effect on shared state flows through channels, and
// its lifetime is governed by the channels it serves (close them and
// it ends), so it needs neither a pool nor a WaitGroup join. Captured
// method calls (atomics, close, callbacks) are permitted — the proof
// forbids captured *assignments*, which is what races look like under
// this repo's shared-capture rule.
func chanConfined(g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	// Names the closure owns: parameters plus everything it defines.
	local := make(map[string]bool)
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				local[name.Name] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if v.Tok == token.DEFINE {
				if id, ok := v.Key.(*ast.Ident); ok {
					local[id.Name] = true
				}
				if id, ok := v.Value.(*ast.Ident); ok {
					local[id.Name] = true
				}
			}
		case *ast.GenDecl:
			if v.Tok == token.VAR {
				for _, spec := range v.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							local[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	confined, captured := true, false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				id := rootIdent(lhs)
				if id != nil && id.Name != "_" && !local[id.Name] {
					confined = false
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(v.X); id != nil && !local[id.Name] {
				confined = false
			}
		case *ast.SendStmt:
			if id := chanRoot(v.Chan); id != nil && !local[id.Name] {
				captured = true
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				if id := chanRoot(v.X); id != nil && !local[id.Name] {
					captured = true
				}
			}
		}
		return true
	})
	return confined && captured
}

// chanRoot is rootIdent extended through one call: `<-ctx.Done()` and
// `<-time.After(d)` receive from a channel the call mints off its
// receiver, so the operand roots at the receiver (ctx, time). A
// channel obtained from a captured source is still a captured
// channel for the confinement proof.
func chanRoot(e ast.Expr) *ast.Ident {
	if id := rootIdent(e); id != nil {
		return id
	}
	if call, ok := e.(*ast.CallExpr); ok {
		return rootIdent(call.Fun)
	}
	return nil
}

// ---------------------------------------------------------------- //

// fsConfineRule confines direct filesystem IO in the compute scope to
// the store layer: internal/pipeline/fs.go is the one file allowed to
// call os file APIs, because everything durable must go through the
// pipeline.FS seam — that is where crash-safety (tmp + fsync + atomic
// rename), fault injection and the degraded-mode accounting live. An
// os.WriteFile elsewhere in a compute package silently bypasses all
// three.
type fsConfineRule struct{}

// fsConfineAllowed are the compute-scope files that implement the FS
// seam itself.
var fsConfineAllowed = map[string]bool{"internal/pipeline/fs.go": true}

// osFSFuncs are the os package file APIs the rule confines.
var osFSFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Chmod": true,
	"Chtimes": true, "Truncate": true, "Link": true, "Symlink": true,
}

func (fsConfineRule) Name() string { return "fsconfine" }
func (fsConfineRule) Doc() string {
	return "filesystem IO in compute packages goes through the pipeline.FS store seam, not direct os calls"
}

func (fsConfineRule) Check(f *File, report ReportFunc) {
	if !inComputeScope(f) || fsConfineAllowed[f.Rel] {
		return
	}
	osName, ok := pkgName(f.AST, "os", "os")
	if !ok {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := pkgCall(call, osName); ok && osFSFuncs[sel] {
			report(call.Pos(), "os.%s in a compute package: route filesystem IO through pipeline.FS (internal/pipeline/fs.go) so it stays crash-safe, fault-injectable and degradation-aware", sel)
		}
		return true
	})
}

// CheckTyped resolves os calls through go/types so an aliased import
// cannot hide direct filesystem IO from the confinement check.
func (fsConfineRule) CheckTyped(prog *Program, pkg *Pkg, f *File, report ReportFunc) {
	if !inComputeScope(f) || fsConfineAllowed[f.Rel] {
		return
	}
	info := pkg.Info
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := pkgFuncCall(info, call, "os"); ok && osFSFuncs[name] {
			report(call.Pos(), "os.%s in a compute package: route filesystem IO through pipeline.FS (internal/pipeline/fs.go) so it stays crash-safe, fault-injectable and degradation-aware", name)
		}
		return true
	})
}
