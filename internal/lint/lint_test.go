package lint

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vipipe/internal/flowerr"
)

var update = flag.Bool("update", false, "rewrite the golden want files under testdata")

// runCorpus lints one fixture tree and renders the diagnostics the
// way vipilint prints them, one per line.
func runCorpus(t *testing.T, corpus string, opts Options) string {
	t.Helper()
	diags, err := Run(filepath.Join("testdata", corpus), opts)
	if err != nil {
		t.Fatalf("Run(testdata/%s): %v", corpus, err)
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// checkGolden compares got against testdata/<corpus>/<name>, or
// rewrites the golden when -update is set.
func checkGolden(t *testing.T, corpus, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", corpus, name)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", corpus, got, want)
	}
}

func TestDeterminismCorpus(t *testing.T) {
	got := runCorpus(t, "determinism", Options{Rules: []Rule{determinismRule{}}})
	checkGolden(t, "determinism", "want.txt", got)
}

func TestMapOrderCorpus(t *testing.T) {
	got := runCorpus(t, "maporder", Options{Rules: []Rule{mapOrderRule{}}})
	checkGolden(t, "maporder", "want.txt", got)
}

func TestErrTaxonomyCorpus(t *testing.T) {
	got := runCorpus(t, "errtaxonomy", Options{Rules: []Rule{errTaxonomyRule{}}})
	checkGolden(t, "errtaxonomy", "want.txt", got)
}

func TestCtxFirstCorpus(t *testing.T) {
	got := runCorpus(t, "ctxfirst", Options{Rules: []Rule{ctxFirstRule{}}})
	checkGolden(t, "ctxfirst", "want.txt", got)
}

func TestGoroutineCorpus(t *testing.T) {
	got := runCorpus(t, "goroutine", Options{Rules: []Rule{goroutineRule{}}})
	checkGolden(t, "goroutine", "want.txt", got)
}

func TestFsConfineCorpus(t *testing.T) {
	got := runCorpus(t, "fsconfine", Options{Rules: []Rule{fsConfineRule{}}})
	checkGolden(t, "fsconfine", "want.txt", got)
}

// TestArtifactAliasCorpus drives the typed dataflow rule over its
// fixture module: store/graph-result writes, deps mutations (direct,
// in-place append and via a summarized callee), retained scratch
// buffers — and the clone/fresh-buffer idioms that must stay silent.
func TestArtifactAliasCorpus(t *testing.T) {
	got := runCorpus(t, "artifactalias", Options{Rules: []Rule{artifactAliasRule{}}, Typed: true})
	checkGolden(t, "artifactalias", "want.txt", got)
	for _, frag := range []string{"bad.go:19", "bad.go:30", "bad.go:43", "bad.go:65", "bad.go:77"} {
		if !strings.Contains(got, frag) {
			t.Errorf("diagnostics missing expected finding at %s:\n%s", frag, got)
		}
	}
	for _, clean := range []string{"good.go", "suppressed.go"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

// TestArtifactAliasFastSilent pins the -fast contract: without the
// typed layer the rule reports nothing, even over the bad corpus.
func TestArtifactAliasFastSilent(t *testing.T) {
	got := runCorpus(t, "artifactalias", Options{Rules: []Rule{artifactAliasRule{}}})
	if got != "" {
		t.Errorf("artifactalias reported in AST-only mode:\n%s", got)
	}
}

// TestSharedCaptureCorpus covers the goroutine-closure write rule:
// unsynchronized captured writes are findings; per-slot index writes,
// mutex windows (inline and deferred) and channel handoffs are not.
func TestSharedCaptureCorpus(t *testing.T) {
	got := runCorpus(t, "sharedcapture", Options{Rules: []Rule{sharedCaptureRule{}}, Typed: true})
	checkGolden(t, "sharedcapture", "want.txt", got)
	for _, frag := range []string{"bad.go:16", "bad.go:33", "bad.go:50"} {
		if !strings.Contains(got, frag) {
			t.Errorf("diagnostics missing expected finding at %s:\n%s", frag, got)
		}
	}
	for _, clean := range []string{"good.go", "suppressed.go"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

// TestSuppressCorpus drives the directive handling end to end: a live
// trailing suppression hides its finding, an unknown rule and a
// missing reason are findings themselves (and suppress nothing, so
// the violation underneath still surfaces).
func TestSuppressCorpus(t *testing.T) {
	got := runCorpus(t, "suppress", Options{})
	checkGolden(t, "suppress", "want.txt", got)
	if strings.Contains(got, "Stamp") {
		t.Errorf("valid suppression leaked a finding:\n%s", got)
	}
	for _, frag := range []string{"unknown rule \"nosuchrule\"", "needs a reason"} {
		if !strings.Contains(got, frag) {
			t.Errorf("diagnostics missing %q:\n%s", frag, got)
		}
	}
}

// TestSuppressStrict adds the stale-directive report: the directive
// in Clean suppresses nothing and must be called out in strict mode
// only.
func TestSuppressStrict(t *testing.T) {
	loose := runCorpus(t, "suppress", Options{})
	if strings.Contains(loose, "stale") {
		t.Errorf("stale directive reported without -strict:\n%s", loose)
	}
	strict := runCorpus(t, "suppress", Options{Strict: true})
	checkGolden(t, "suppress", "want_strict.txt", strict)
	if !strings.Contains(strict, "stale //lint:ignore determinism") {
		t.Errorf("strict run did not report the stale directive:\n%s", strict)
	}
}

func TestRunBadRoot(t *testing.T) {
	_, err := Run(filepath.Join("testdata", "no-such-tree"), Options{})
	if !errors.Is(err, flowerr.ErrBadInput) {
		t.Fatalf("Run on missing root = %v, want flowerr.ErrBadInput", err)
	}
}

// TestLintSelf holds the repo to its own rules under the full typed
// analysis: a plain `go test ./...` fails if a violation (or a stale
// suppression) creeps in, even when nobody runs `make ci`. Strict
// staleness is judged here, where every rule can fire.
func TestLintSelf(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."), Options{Strict: true, Typed: true})
	if err != nil {
		t.Fatalf("Run(repo root): %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d lint finding(s) in the tree; fix them or add //lint:ignore <rule> <reason>", len(diags))
	}
}

// TestLintSelfFast keeps the pre-commit mode honest: the AST layer
// alone must also pass (without strict — suppressions of typed-only
// findings look stale to it by design).
func TestLintSelfFast(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."), Options{})
	if err != nil {
		t.Fatalf("Run(repo root): %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d fast-mode lint finding(s) in the tree", len(diags))
	}
}
