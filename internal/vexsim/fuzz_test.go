package vexsim

import (
	"testing"

	"vipipe/internal/isa"
	"vipipe/internal/stats"
	"vipipe/internal/vex"
)

// randomProgram generates a random but architecturally legal program:
// any mix of ALU, immediate, multiply and memory operations (all
// read-after-write hazards are forwarded in hardware), plus optional
// branches whose condition register was written at least two bundles
// earlier (the core's exposed-pipeline rule).
func randomProgram(cfg vex.Config, rng *stats.Stream, bundles int, withBranches bool) [][]uint32 {
	ops := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL,
		isa.SRA, isa.CMPEQ, isa.CMPLT, isa.CMPLTU, isa.MPYLU,
		isa.ADDI, isa.ANDI, isa.ORI, isa.LD, isa.ST, isa.NOP,
	}
	reg := func() uint8 { return uint8(rng.Intn(cfg.Regs)) }
	// lastWrite[r] = bundle index of the most recent write to r.
	lastWrite := make([]int, cfg.Regs)
	for i := range lastWrite {
		lastWrite[i] = -10
	}
	var prog [][]uint32
	for bi := 0; bi < bundles; bi++ {
		bundle := make(isa.Bundle, cfg.Slots)
		for s := 0; s < cfg.Slots; s++ {
			op := ops[rng.Intn(len(ops))]
			in := isa.Instr{Op: op, Rd: reg(), Ra: reg(), Rb: reg()}
			switch {
			case op.UsesImm16():
				in.Imm16 = int32(rng.Intn(1<<16) - 1<<15)
			case op.UsesImm12():
				in.Imm12 = int32(rng.Intn(1<<12) - 1<<11)
			}
			bundle[s] = in
			if op.WritesReg() {
				lastWrite[in.Rd&uint8(cfg.Regs-1)] = bi
			}
		}
		// Occasionally replace slot 0 with a short forward branch
		// over 1-2 bundles, condition produced >= 2 bundles earlier.
		if withBranches && rng.Intn(4) == 0 && bi+3 < bundles {
			cond := uint8(0)
			for r := 1; r < cfg.Regs; r++ {
				if lastWrite[r] <= bi-2 {
					cond = uint8(r)
					break
				}
			}
			op := isa.BEQZ
			if rng.Intn(2) == 0 {
				op = isa.BNEZ
			}
			bundle[0] = isa.Instr{Op: op, Ra: cond, Imm16: int32(1 + rng.Intn(2))}
		}
		prog = append(prog, isa.EncodeBundle(bundle, cfg.Slots))
	}
	// Halt: spin forever at the end.
	halt := make(isa.Bundle, cfg.Slots)
	halt[0] = isa.Instr{Op: isa.GOTO, Imm16: 0}
	prog = append(prog, isa.EncodeBundle(halt, cfg.Slots))
	return prog
}

// TestRandomProgramCoSim fuzzes the gate-level core against the
// reference machine with random straight-line programs.
func TestRandomProgramCoSim(t *testing.T) {
	core := smallCore(t)
	for trial := 0; trial < 6; trial++ {
		rng := stats.DeriveStream(1000+int64(trial), "fuzz")
		prog := randomProgram(core.Cfg, rng, 20, false)
		dmem := make([]uint64, 64)
		for i := range dmem {
			dmem[i] = uint64(rng.Intn(256))
		}
		m, err := NewMachine(core.Cfg, prog, dmem)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := NewTestbench(core, prog, dmem)
		if err != nil {
			t.Fatal(err)
		}
		cycles := len(prog) + 8
		m.Run(cycles)
		tb.Run(cycles)
		for r := 0; r < core.Cfg.Regs; r++ {
			if got, want := tb.Reg(r), m.RF[r]; got != want {
				t.Fatalf("trial %d: r%d netlist=%#x reference=%#x", trial, r, got, want)
			}
		}
		for a := 0; a < 256; a++ {
			if tb.DMem[a] != m.DMem[a] {
				t.Fatalf("trial %d: dmem[%d] netlist=%#x reference=%#x", trial, a, tb.DMem[a], m.DMem[a])
			}
		}
	}
}

// TestRandomBranchyProgramCoSim adds hazard-safe branches to the fuzz.
func TestRandomBranchyProgramCoSim(t *testing.T) {
	core := smallCore(t)
	for trial := 0; trial < 6; trial++ {
		rng := stats.DeriveStream(2000+int64(trial), "fuzz-br")
		prog := randomProgram(core.Cfg, rng, 24, true)
		m, err := NewMachine(core.Cfg, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := NewTestbench(core, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		cycles := 2*len(prog) + 8
		m.Run(cycles)
		tb.Run(cycles)
		if m.PC != tb.Sim.Word(core.PCOut) {
			// PC comparison needs a settle for the netlist.
			tb.Sim.Eval()
		}
		for r := 0; r < core.Cfg.Regs; r++ {
			if got, want := tb.Reg(r), m.RF[r]; got != want {
				t.Fatalf("trial %d: r%d netlist=%#x reference=%#x", trial, r, got, want)
			}
		}
	}
}

// TestMemoryAddressWraparound exercises addresses beyond the data
// memory size: both models must wrap identically.
func TestMemoryAddressWraparound(t *testing.T) {
	core := smallCore(t)
	// 8-bit addresses: 0xF8 + 12 wraps mod 256 and mod DMemWords.
	src := `
  addi $r1, $r0, 0xF8 ; addi $r2, $r0, 0x3C
  st $r2, 11($r1) ; nop
  ld $r3, 11($r1) ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 16)
	if m.RF[3] != 0x3C {
		t.Errorf("wraparound load = %#x, want 0x3C", m.RF[3])
	}
	addr := (0xF8 + 11) & 0xFF
	if m.DMem[addr] != 0x3C {
		t.Errorf("dmem[%#x] = %#x", addr, m.DMem[addr])
	}
}

// TestBranchToSelfHalts verifies the canonical halt idiom is stable.
func TestBranchToSelfHalts(t *testing.T) {
	core := smallCore(t)
	prog := mustAssemble(t, core.Cfg, "addi $r1, $r0, 9 ; nop\nhalt: goto halt")
	m, tb := coSim(t, core, prog, nil, 40)
	if m.RF[1] != 9 {
		t.Errorf("r1 = %d", m.RF[1])
	}
	// The PC must be parked at the halt bundle (or its kill shadow).
	tb.Sim.Eval()
	pc := tb.Sim.Word(core.PCOut)
	if pc > 2 {
		t.Errorf("PC = %d, should be parked at the halt loop", pc)
	}
}
