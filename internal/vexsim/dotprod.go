package vexsim

import (
	"fmt"
	"strings"

	"vipipe/internal/isa"
	"vipipe/internal/stats"
	"vipipe/internal/vex"
)

// DotProduct is a second benchmark kernel alongside the paper's FIR: a
// vector dot product with the same exposed-pipeline scheduling rules.
// It exercises a different slot mix (single multiply-accumulate stream
// with pointer arithmetic) and provides an independent workload for
// activity-sensitivity studies.
type DotProduct struct {
	N     int
	ABase uint64
	BBase uint64
	ROut  uint64 // result address

	Prog   [][]uint32
	DMem   []uint64
	Expect uint64
	Cycles int
}

// NewDotProduct builds the kernel for a core configuration.
func NewDotProduct(cfg vex.Config, n int, seed int64) (*DotProduct, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("vexsim: dot product needs n >= 1")
	}
	d := &DotProduct{N: n, ABase: 0, BBase: uint64(n), ROut: uint64(2 * n)}
	if int64(d.ROut) >= 1<<uint(cfg.Width) || int(d.ROut) >= DMemWords {
		return nil, fmt.Errorf("vexsim: dot product footprint too large")
	}
	half := uint64(1)<<uint(cfg.Width/2) - 1
	mask := uint64(1)<<uint(cfg.Width) - 1
	rng := stats.DeriveStream(seed, "dotprod")
	d.DMem = make([]uint64, int(d.ROut))
	for i := 0; i < n; i++ {
		d.DMem[int(d.ABase)+i] = uint64(rng.Int63()) & half
		d.DMem[int(d.BBase)+i] = uint64(rng.Int63()) & half
	}
	for i := 0; i < n; i++ {
		d.Expect = (d.Expect + d.DMem[int(d.ABase)+i]*d.DMem[int(d.BBase)+i]) & mask
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# dot product, n=%d\n", n)
	fmt.Fprintf(&b, "  addi $r4, $r0, %d ; addi $r1, $r0, %d\n", n, d.ABase)
	fmt.Fprintf(&b, "  addi $r2, $r0, %d ; add $r10, $r0, $r0\n", d.BBase)
	fmt.Fprintf(&b, "loop:\n")
	fmt.Fprintf(&b, "  ld $r6, 0($r1) ; ld $r7, 0($r2)\n")
	fmt.Fprintf(&b, "  addi $r1, $r1, 1 ; addi $r2, $r2, 1\n")
	fmt.Fprintf(&b, "  addi $r4, $r4, -1 ; mpylu $r11, $r6, $r7\n")
	fmt.Fprintf(&b, "  add $r10, $r10, $r11 ; nop\n")
	fmt.Fprintf(&b, "  bnez $r4, loop\n")
	fmt.Fprintf(&b, "  addi $r3, $r0, %d ; nop\n", d.ROut)
	fmt.Fprintf(&b, "  st $r10, 0($r3) ; nop\n")
	fmt.Fprintf(&b, "halt: goto halt\n")

	bundles, err := isa.Assemble(b.String(), cfg.Slots, cfg.Regs-1)
	if err != nil {
		return nil, fmt.Errorf("vexsim: dot product assembly failed: %w", err)
	}
	d.Prog = make([][]uint32, len(bundles))
	for i, bd := range bundles {
		d.Prog[i] = isa.EncodeBundle(bd, cfg.Slots)
	}
	d.Cycles = 4 + n*6 + 12
	return d, nil
}

// Check verifies the stored result in a data memory.
func (d *DotProduct) Check(dmem []uint64) bool {
	return dmem[int(d.ROut)] == d.Expect
}
