package vexsim

import (
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/isa"
	"vipipe/internal/vex"
)

func mustAssemble(t *testing.T, cfg vex.Config, src string) [][]uint32 {
	t.Helper()
	bundles, err := isa.Assemble(src, cfg.Slots, cfg.Regs-1)
	if err != nil {
		t.Fatal(err)
	}
	prog := make([][]uint32, len(bundles))
	for i, b := range bundles {
		prog[i] = isa.EncodeBundle(b, cfg.Slots)
	}
	return prog
}

func smallCore(t *testing.T) *vex.Core {
	t.Helper()
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// coSim runs the same program on the reference machine and the
// gate-level netlist and compares architectural state.
func coSim(t *testing.T, core *vex.Core, prog [][]uint32, dmem []uint64, cycles int) (*Machine, *Testbench) {
	t.Helper()
	m, err := NewMachine(core.Cfg, prog, dmem)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbench(core, prog, dmem)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(cycles)
	tb.Run(cycles)
	for r := 0; r < core.Cfg.Regs; r++ {
		if got, want := tb.Reg(r), m.RF[r]; got != want {
			t.Errorf("after %d cycles: r%d netlist=%#x reference=%#x", cycles, r, got, want)
		}
	}
	for a := 0; a < 64; a++ {
		if tb.DMem[a] != m.DMem[a] {
			t.Errorf("dmem[%d]: netlist=%#x reference=%#x", a, tb.DMem[a], m.DMem[a])
		}
	}
	return m, tb
}

func TestALUOpsCoSim(t *testing.T) {
	core := smallCore(t)
	src := `
  addi $r1, $r0, 100 ; addi $r2, $r0, 7
  addi $r3, $r0, -1  ; nop
  add $r4, $r1, $r2  ; sub $r5, $r1, $r2
  and $r6, $r1, $r3  ; or $r7, $r2, $r3
  xor $r1, $r1, $r2  ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 20)
	// Spot-check the reference semantics themselves (8-bit wrap).
	if m.RF[1] != (100^7)&0xFF || m.RF[4] != 107 || m.RF[5] != 93 {
		t.Errorf("reference values wrong: %v", m.RF)
	}
	if m.RF[6] != 100 || m.RF[7] != 0xFF {
		t.Errorf("logic ops wrong: r6=%#x r7=%#x", m.RF[6], m.RF[7])
	}
}

func TestShiftCmpMulCoSim(t *testing.T) {
	core := smallCore(t)
	src := `
  addi $r1, $r0, 0x96 ; addi $r2, $r0, 3
  nop
  sll $r3, $r1, $r2 ; srl $r4, $r1, $r2
  sra $r5, $r1, $r2 ; cmpeq $r6, $r1, $r1
  cmplt $r7, $r1, $r2 ; cmpltu $r1, $r2, $r2
  mpylu $r2, $r1, $r2 ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 20)
	if m.RF[3] != 0xB0 || m.RF[4] != 0x12 || m.RF[5] != 0xF2 {
		t.Errorf("shifts wrong: %#x %#x %#x", m.RF[3], m.RF[4], m.RF[5])
	}
	if m.RF[6] != 1 || m.RF[7] != 1 {
		t.Errorf("compares wrong: r6=%d r7=%d (0x96 is negative as int8)", m.RF[6], m.RF[7])
	}
}

func TestForwardingDistance1And2CoSim(t *testing.T) {
	core := smallCore(t)
	// r1 produced, consumed immediately (EX forwarding) and one
	// bundle later (decode bypass).
	src := `
  addi $r1, $r0, 5 ; nop
  add $r2, $r1, $r1 ; nop
  add $r3, $r1, $r2 ; nop
  add $r4, $r2, $r3 ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 16)
	if m.RF[2] != 10 || m.RF[3] != 15 || m.RF[4] != 25 {
		t.Errorf("forwarding chain wrong: r2=%d r3=%d r4=%d", m.RF[2], m.RF[3], m.RF[4])
	}
}

func TestLoadStoreAndLoadUseCoSim(t *testing.T) {
	core := smallCore(t)
	src := `
  addi $r1, $r0, 32 ; addi $r2, $r0, 0x5A
  st $r2, 0($r1) ; nop
  ld $r3, 0($r1) ; nop
  add $r4, $r3, $r3 ; nop
  st $r4, 1($r1) ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 20)
	if m.DMem[32] != 0x5A || m.DMem[33] != 0xB4 {
		t.Errorf("memory wrong: %#x %#x", m.DMem[32], m.DMem[33])
	}
	if m.RF[3] != 0x5A {
		t.Errorf("load result wrong: %#x", m.RF[3])
	}
}

func TestBranchTakenAndKillCoSim(t *testing.T) {
	core := smallCore(t)
	// The wrong-path bundle after a taken branch must not retire.
	src := `
  addi $r1, $r0, 1 ; nop
  nop
  bnez $r1, target ; nop
  addi $r2, $r0, 99 ; nop   # wrong path, must be killed
target:
  addi $r3, $r0, 42 ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 20)
	if m.RF[2] != 0 {
		t.Errorf("wrong-path op retired: r2=%d", m.RF[2])
	}
	if m.RF[3] != 42 {
		t.Errorf("branch target not reached: r3=%d", m.RF[3])
	}
}

func TestBranchNotTakenCoSim(t *testing.T) {
	core := smallCore(t)
	src := `
  add $r1, $r0, $r0 ; nop
  nop
  bnez $r1, skipped ; nop
  addi $r2, $r0, 7 ; nop
skipped:
  addi $r3, $r2, 1 ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 20)
	if m.RF[2] != 7 || m.RF[3] != 8 {
		t.Errorf("fall-through wrong: r2=%d r3=%d", m.RF[2], m.RF[3])
	}
}

func TestBackwardLoopCoSim(t *testing.T) {
	core := smallCore(t)
	// Sum 1..5 with a countdown loop; condition produced 2 bundles
	// before the branch (exposed-latency rule).
	src := `
  addi $r1, $r0, 5 ; add $r2, $r0, $r0
loop:
  add $r2, $r2, $r1 ; nop
  addi $r1, $r1, -1 ; nop
  nop
  bnez $r1, loop ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 60)
	if m.RF[2] != 15 {
		t.Errorf("loop sum = %d, want 15", m.RF[2])
	}
	if m.RF[1] != 0 {
		t.Errorf("counter = %d, want 0", m.RF[1])
	}
}

func TestR0IsAlwaysZeroCoSim(t *testing.T) {
	core := smallCore(t)
	src := `
  addi $r0, $r0, 55 ; addi $r1, $r0, 1
  nop
  add $r2, $r0, $r0 ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 12)
	if m.RF[0] != 0 || m.RF[2] != 0 {
		t.Errorf("r0 corrupted: r0=%d r2=%d", m.RF[0], m.RF[2])
	}
	if m.RF[1] != 1 {
		t.Errorf("r1 = %d", m.RF[1])
	}
}

func TestMultiSlotWritePriorityCoSim(t *testing.T) {
	core := smallCore(t)
	// Both slots write r1 in the same bundle: the later slot wins,
	// in both the netlist and the reference.
	src := `
  addi $r1, $r0, 11 ; addi $r1, $r0, 22
  nop
  add $r2, $r1, $r0 ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 12)
	if m.RF[1] != 22 || m.RF[2] != 22 {
		t.Errorf("write priority wrong: r1=%d r2=%d, want 22/22", m.RF[1], m.RF[2])
	}
}

func TestStoreDataForwardingCoSim(t *testing.T) {
	core := smallCore(t)
	src := `
  addi $r1, $r0, 40 ; addi $r2, $r0, 9
  st $r2, 0($r1) ; nop
halt: goto halt
`
	prog := mustAssemble(t, core.Cfg, src)
	m, _ := coSim(t, core, prog, nil, 12)
	if m.DMem[40] != 9 {
		t.Errorf("store of forwarded data wrong: %d", m.DMem[40])
	}
}

func TestFIRSmallCoSim(t *testing.T) {
	core := smallCore(t)
	fir, err := NewFIR(core.Cfg, 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, tb := coSim(t, core, fir.Prog, fir.DMem, fir.Cycles)
	if idx := fir.CheckResults(m.DMem); idx >= 0 {
		t.Errorf("reference FIR output wrong at %d: got %#x want %#x",
			idx, m.DMem[int(fir.YBase)+idx], fir.Expect[idx])
	}
	if idx := fir.CheckResults(tb.DMem); idx >= 0 {
		t.Errorf("netlist FIR output wrong at %d: got %#x want %#x",
			idx, tb.DMem[int(fir.YBase)+idx], fir.Expect[idx])
	}
	// The run must produce nonzero switching activity.
	act := tb.Activity()
	nonzero := 0
	for _, a := range act {
		if a > 0 {
			nonzero++
		}
	}
	if nonzero < len(act)/10 {
		t.Errorf("only %d/%d nets toggled", nonzero, len(act))
	}
}

func TestFIRDefaultConfigCoSim(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size core co-simulation")
	}
	cfg := vex.DefaultConfig()
	core, err := vex.Build(cfg, cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	fir, err := NewFIR(cfg, 24, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, tb := coSim(t, core, fir.Prog, fir.DMem, fir.Cycles)
	if idx := fir.CheckResults(m.DMem); idx >= 0 {
		t.Errorf("reference FIR wrong at %d", idx)
	}
	if idx := fir.CheckResults(tb.DMem); idx >= 0 {
		t.Errorf("netlist FIR wrong at %d", idx)
	}
}

func TestNewFIRValidation(t *testing.T) {
	cfg := vex.SmallConfig()
	if _, err := NewFIR(cfg, 4, 8, 1); err == nil {
		t.Error("n < taps accepted")
	}
	if _, err := NewFIR(cfg, 10, 1, 1); err == nil {
		t.Error("taps < 2 accepted")
	}
	if _, err := NewFIR(cfg, 200, 4, 1); err == nil {
		t.Error("footprint beyond 8-bit addressing accepted")
	}
}

func TestMachineValidation(t *testing.T) {
	cfg := vex.SmallConfig()
	if _, err := NewMachine(cfg, [][]uint32{{0}}, nil); err == nil {
		t.Error("bundle with wrong slot count accepted")
	}
	big := make([][]uint32, 1<<cfg.PCBits+1)
	for i := range big {
		big[i] = make([]uint32, cfg.Slots)
	}
	if _, err := NewMachine(cfg, big, nil); err == nil {
		t.Error("oversized program accepted")
	}
}

func TestMachineRunsPastProgramEnd(t *testing.T) {
	cfg := vex.SmallConfig()
	m, err := NewMachine(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100) // all NOPs; must not panic and must not write state
	for r := 1; r < cfg.Regs; r++ {
		if m.RF[r] != 0 {
			t.Errorf("r%d = %d after NOP run", r, m.RF[r])
		}
	}
	if m.Cycle() != 100 {
		t.Errorf("cycle = %d", m.Cycle())
	}
}

func TestDotProductCoSim(t *testing.T) {
	core := smallCore(t)
	dp, err := NewDotProduct(core.Cfg, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, tb := coSim(t, core, dp.Prog, dp.DMem, dp.Cycles)
	if !dp.Check(m.DMem) {
		t.Errorf("reference dot product wrong: got %#x want %#x", m.DMem[int(dp.ROut)], dp.Expect)
	}
	if !dp.Check(tb.DMem) {
		t.Errorf("netlist dot product wrong: got %#x want %#x", tb.DMem[int(dp.ROut)], dp.Expect)
	}
}

func TestDotProductValidation(t *testing.T) {
	cfg := vex.SmallConfig()
	if _, err := NewDotProduct(cfg, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewDotProduct(cfg, 1000, 1); err == nil {
		t.Error("oversized footprint accepted")
	}
}
