package vexsim

import (
	"fmt"
	"strings"

	"vipipe/internal/isa"
	"vipipe/internal/stats"
	"vipipe/internal/vex"
)

// FIR describes a generated FIR-filter benchmark: the paper uses "a
// FIR filtering benchmark executed on the VEX processor core" for all
// power assessments. The generated program computes the correlation
// form y[n] = sum_k h[k] * x[n+k] with half-width unsigned multiplies
// (the core's MPYLU), scheduled by hand to respect the exposed
// branch-latency rule — the stand-in for the VEX trace-scheduling
// compiler.
type FIR struct {
	N, T  int // input samples and filter taps
	XBase uint64
	HBase uint64
	YBase uint64
	NOut  int

	Prog   [][]uint32 // assembled bundles
	DMem   []uint64   // initial data memory (x then h)
	Expect []uint64   // expected y values, width-masked
	Cycles int        // cycle budget that retires the whole program
}

// NewFIR builds the benchmark for a core configuration. Samples and
// coefficients are drawn deterministically from seed.
func NewFIR(cfg vex.Config, n, taps int, seed int64) (*FIR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if taps < 2 || n < taps {
		return nil, fmt.Errorf("vexsim: need taps >= 2 and n >= taps, got n=%d taps=%d", n, taps)
	}
	f := &FIR{
		N: n, T: taps,
		XBase: 0,
		HBase: uint64(n),
		YBase: uint64(n + taps),
		NOut:  n - taps + 1,
	}
	if int(f.YBase)+f.NOut >= DMemWords {
		return nil, fmt.Errorf("vexsim: FIR footprint exceeds data memory")
	}
	// Addresses must be representable in the data width.
	if int64(f.YBase)+int64(f.NOut) >= 1<<uint(cfg.Width) {
		return nil, fmt.Errorf("vexsim: FIR footprint exceeds %d-bit address space", cfg.Width)
	}

	// Stimulus: half-width random samples, as the multiplier consumes
	// half-width operands.
	half := uint64(1)<<uint(cfg.Width/2) - 1
	mask := uint64(1)<<uint(cfg.Width) - 1
	rng := stats.DeriveStream(seed, "fir-stimulus")
	f.DMem = make([]uint64, int(f.YBase))
	for i := 0; i < n; i++ {
		f.DMem[int(f.XBase)+i] = uint64(rng.Int63()) & half
	}
	for k := 0; k < taps; k++ {
		f.DMem[int(f.HBase)+k] = uint64(rng.Int63()) & half
	}

	// Reference output with the ISA's masking semantics.
	f.Expect = make([]uint64, f.NOut)
	for i := 0; i < f.NOut; i++ {
		var acc uint64
		for k := 0; k < taps; k++ {
			x := f.DMem[int(f.XBase)+i+k] & half
			h := f.DMem[int(f.HBase)+k] & half
			acc = (acc + x*h) & mask
		}
		f.Expect[i] = acc
	}

	src, cycles := firSource(cfg, f)
	bundles, err := isa.Assemble(src, cfg.Slots, cfg.Regs-1)
	if err != nil {
		return nil, fmt.Errorf("vexsim: FIR assembly failed: %w", err)
	}
	if len(bundles) > 1<<cfg.PCBits {
		return nil, fmt.Errorf("vexsim: FIR program too large for PC width")
	}
	f.Prog = make([][]uint32, len(bundles))
	for i, b := range bundles {
		f.Prog[i] = isa.EncodeBundle(b, cfg.Slots)
	}
	f.Cycles = cycles
	return f, nil
}

// firSource emits the scheduled assembly. Two schedules exist: a
// 4-wide one processing two taps per inner iteration (two parallel
// multiplies, exercising every execution slot as the paper's compiler
// would), and a 2-wide fallback. Registers:
//
//	r1 x pointer, r2 h pointer, r3 y pointer, r4 outer counter,
//	r5 inner counter, r6-r9 sample/coefficient values,
//	r10 accumulator, r11/r12 products, r13 outer x base.
func firSource(cfg vex.Config, f *FIR) (string, int) {
	var b strings.Builder
	unroll2 := cfg.Slots >= 4 && f.T%2 == 0
	fmt.Fprintf(&b, "# FIR benchmark: N=%d taps=%d unroll2=%v\n", f.N, f.T, unroll2)
	fmt.Fprintf(&b, "  addi $r4, $r0, %d ; addi $r13, $r0, %d\n", f.NOut, f.XBase)
	fmt.Fprintf(&b, "  addi $r3, $r0, %d ; nop\n", f.YBase)

	var innerBundles int
	if unroll2 {
		fmt.Fprintf(&b, "outer:\n")
		fmt.Fprintf(&b, "  addi $r5, $r0, %d ; add $r10, $r0, $r0 ; add $r1, $r13, $r0 ; addi $r2, $r0, %d\n", f.T/2, f.HBase)
		fmt.Fprintf(&b, "  addi $r4, $r4, -1 ; nop ; nop ; nop\n")
		fmt.Fprintf(&b, "inner:\n")
		fmt.Fprintf(&b, "  ld $r6, 0($r1) ; ld $r7, 0($r2) ; ld $r8, 1($r1) ; ld $r9, 1($r2)\n")
		fmt.Fprintf(&b, "  addi $r1, $r1, 2 ; addi $r2, $r2, 2 ; addi $r5, $r5, -1 ; nop\n")
		fmt.Fprintf(&b, "  mpylu $r11, $r6, $r7 ; mpylu $r12, $r8, $r9 ; nop ; nop\n")
		fmt.Fprintf(&b, "  add $r10, $r10, $r11 ; nop ; nop ; nop\n")
		fmt.Fprintf(&b, "  bnez $r5, inner ; add $r10, $r10, $r12 ; nop ; nop\n")
		fmt.Fprintf(&b, "  st $r10, 0($r3) ; addi $r3, $r3, 1 ; addi $r13, $r13, 1 ; nop\n")
		fmt.Fprintf(&b, "  bnez $r4, outer\n")
		innerBundles = 5
	} else {
		fmt.Fprintf(&b, "outer:\n")
		fmt.Fprintf(&b, "  addi $r5, $r0, %d ; add $r10, $r0, $r0\n", f.T)
		fmt.Fprintf(&b, "  add $r1, $r13, $r0 ; addi $r2, $r0, %d\n", f.HBase)
		fmt.Fprintf(&b, "  addi $r4, $r4, -1 ; nop\n")
		fmt.Fprintf(&b, "inner:\n")
		fmt.Fprintf(&b, "  ld $r6, 0($r1) ; ld $r7, 0($r2)\n")
		fmt.Fprintf(&b, "  addi $r1, $r1, 1 ; addi $r2, $r2, 1\n")
		fmt.Fprintf(&b, "  addi $r5, $r5, -1 ; mpylu $r11, $r6, $r7\n")
		fmt.Fprintf(&b, "  add $r10, $r10, $r11 ; nop\n")
		fmt.Fprintf(&b, "  bnez $r5, inner ; nop\n")
		fmt.Fprintf(&b, "  st $r10, 0($r3) ; addi $r3, $r3, 1\n")
		fmt.Fprintf(&b, "  addi $r13, $r13, 1 ; nop\n")
		fmt.Fprintf(&b, "  bnez $r4, outer\n")
		innerBundles = 5
	}
	// Halt: spin in place.
	fmt.Fprintf(&b, "halt: goto halt\n")

	// Cycle budget: pipeline depth + per-bundle issue + one kill
	// bubble per taken branch, padded generously.
	inner := f.T
	if unroll2 {
		inner = f.T / 2
	}
	perOuter := 3 + inner*innerBundles + 3 + // issued bundles
		inner + 1 // branch bubbles (inner backedges + outer backedge)
	if unroll2 {
		perOuter = 2 + inner*innerBundles + 2 + inner + 1
	}
	cycles := 2 + f.NOut*perOuter + 16
	return b.String(), cycles
}

// CheckResults verifies the y region of a data memory against the
// expected output and returns the index of the first mismatch, or -1.
func (f *FIR) CheckResults(dmem []uint64) int {
	for i := 0; i < f.NOut; i++ {
		if dmem[int(f.YBase)+i] != f.Expect[i] {
			return i
		}
	}
	return -1
}
