// Package vexsim provides the behavioral side of the paper's
// validation flow: a cycle-accurate reference model of the VEX core's
// microarchitecture, behavioral single-cycle program and data memories
// (the paper models all memory devices behaviorally), a testbench that
// co-simulates the gate-level netlist against those memories, and the
// FIR filtering benchmark used for all power measurements.
package vexsim

import (
	"fmt"

	"vipipe/internal/isa"
	"vipipe/internal/vex"
)

// DMemWords is the data-memory size in words; addresses wrap.
const DMemWords = 1 << 12

// Machine is a cycle-accurate behavioral model of the pipeline built
// by internal/vex: 4 stages, decode-stage branch resolution with one
// wrong-path kill, a write-back read bypass in decode, and operand
// forwarding from the EX/WB register in execute. Running the same
// program on Machine and on the gate-level netlist must produce
// identical architectural state cycle by cycle.
type Machine struct {
	Cfg  vex.Config
	Prog [][]uint32 // encoded bundles, one []uint32 per PC
	DMem []uint64   // word-addressed data memory

	PC      uint64
	RF      []uint64
	fd      fdLatch
	de      []deLatch
	ew      []ewLatch
	devalid bool

	cycle uint64
}

type fdLatch struct {
	valid bool
	pc    uint64
	ops   []uint32
}

type deLatch struct {
	in         isa.Instr
	valA, valB uint64
	memOff     uint64
}

type ewLatch struct {
	result, addr, stData uint64
	rd                   uint8
	writes               bool
	isLoad, isStore      bool
}

// NewMachine creates a reference machine executing prog (encoded
// bundles) with the given initial data memory (copied; may be nil).
func NewMachine(cfg vex.Config, prog [][]uint32, dmem []uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(prog) > 1<<cfg.PCBits {
		return nil, fmt.Errorf("vexsim: program of %d bundles exceeds 2^%d", len(prog), cfg.PCBits)
	}
	for i, bnd := range prog {
		if len(bnd) != cfg.Slots {
			return nil, fmt.Errorf("vexsim: bundle %d has %d ops, want %d", i, len(bnd), cfg.Slots)
		}
	}
	m := &Machine{
		Cfg:  cfg,
		Prog: prog,
		DMem: make([]uint64, DMemWords),
		RF:   make([]uint64, cfg.Regs),
		de:   make([]deLatch, cfg.Slots),
		ew:   make([]ewLatch, cfg.Slots),
		fd:   fdLatch{ops: make([]uint32, cfg.Slots)},
	}
	copy(m.DMem, dmem)
	return m, nil
}

func (m *Machine) mask() uint64   { return 1<<uint(m.Cfg.Width) - 1 }
func (m *Machine) pcMask() uint64 { return 1<<uint(m.Cfg.PCBits) - 1 }

// immS returns the hardware's view of a sign-extended immediate: the
// netlist truncates or sign-extends the field to the data width.
func (m *Machine) immS(v int32) uint64 { return uint64(int64(v)) & m.mask() }

// Cycle returns the number of executed cycles.
func (m *Machine) Cycle() uint64 { return m.cycle }

// fetchWord returns the program word at pc for one slot; beyond the
// program it returns encoded NOPs (matching a zero-filled program
// memory, since opcode 0 is NOP).
func (m *Machine) fetchWord(pc uint64, slot int) uint32 {
	if int(pc) < len(m.Prog) {
		return m.Prog[pc][slot]
	}
	return 0
}

// Step advances the machine one clock cycle.
func (m *Machine) Step() {
	cfg := m.Cfg
	mask := m.mask()

	// ---- Write-back stage (uses old EW latch). ----
	// Stores commit first in slot order, then loads observe memory,
	// matching the testbench protocol for the netlist.
	for s := 0; s < cfg.Slots; s++ {
		if m.ew[s].isStore {
			m.DMem[m.ew[s].addr%DMemWords] = m.ew[s].stData
		}
	}
	wbData := make([]uint64, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		if m.ew[s].isLoad {
			wbData[s] = m.DMem[m.ew[s].addr%DMemWords] & mask
		} else {
			wbData[s] = m.ew[s].result
		}
	}

	// ---- Execute stage (old DE latch, forwarding from old EW). ----
	newEW := make([]ewLatch, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		d := &m.de[s]
		valA := m.forward(d.valA, uint8(d.in.Ra)&uint8(cfg.Regs-1), wbData)
		valB := d.valB
		if d.in.Op.ReadsRb() {
			valB = m.forward(d.valB, uint8(d.in.Rb)&uint8(cfg.Regs-1), wbData)
		}
		r := &newEW[s]
		r.rd = d.in.Rd & uint8(cfg.Regs-1)
		r.writes = m.devalid && d.in.Op.WritesReg() && r.rd != 0
		r.isLoad = m.devalid && d.in.Op == isa.LD
		r.isStore = m.devalid && d.in.Op == isa.ST
		r.addr = (valA + d.memOff) & mask
		r.stData = valB
		r.result = m.alu(d.in.Op, valA, valB)
	}

	// ---- Decode stage (old FD latch, bypass from write-back). ----
	newDE := make([]deLatch, cfg.Slots)
	newDEValid := m.fd.valid
	branchTaken := false
	var branchTarget uint64
	for s := 0; s < cfg.Slots; s++ {
		in := isa.Decode(m.fd.ops[s])
		d := &newDE[s]
		d.in = in
		ra := in.Ra & uint8(cfg.Regs-1)
		rb := in.Rb & uint8(cfg.Regs-1)
		d.valA = m.bypassRead(ra, wbData)
		switch {
		case in.Op.ReadsRb():
			d.valB = m.bypassRead(rb, wbData)
		case in.Op == isa.ADDI:
			d.valB = m.immS(in.Imm16)
		case in.Op == isa.ANDI || in.Op == isa.ORI:
			d.valB = uint64(uint32(in.Imm16)&0xFFFF) & mask
		}
		d.memOff = m.immS(in.Imm12)
		if s == 0 && m.fd.valid && in.Op.IsBranch() {
			cond := d.valA
			take := in.Op == isa.GOTO ||
				(in.Op == isa.BEQZ && cond == 0) ||
				(in.Op == isa.BNEZ && cond != 0)
			if take {
				branchTaken = true
				branchTarget = (m.fd.pc + uint64(int64(in.Imm16))) & m.pcMask()
			}
		}
	}

	// ---- Fetch stage. ----
	newFD := fdLatch{valid: !branchTaken, pc: m.PC, ops: make([]uint32, cfg.Slots)}
	for s := 0; s < cfg.Slots; s++ {
		newFD.ops[s] = m.fetchWord(m.PC, s)
	}
	newPC := (m.PC + 1) & m.pcMask()
	if branchTaken {
		newPC = branchTarget
	}

	// ---- Commit: register-file writes, then latch updates. ----
	for s := 0; s < cfg.Slots; s++ {
		if m.ew[s].writes {
			m.RF[m.ew[s].rd] = wbData[s]
		}
	}
	m.RF[0] = 0
	m.ew = newEW
	m.de = newDE
	m.devalid = newDEValid
	m.fd = newFD
	m.PC = newPC
	m.cycle++
}

// Run executes n cycles.
func (m *Machine) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// forward applies the execute-stage forwarding network: the newest
// write-back slot writing reg overrides the latched operand.
func (m *Machine) forward(latched uint64, reg uint8, wbData []uint64) uint64 {
	v := latched
	for p := 0; p < m.Cfg.Slots; p++ {
		if m.ew[p].writes && m.ew[p].rd == reg {
			v = wbData[p]
		}
	}
	return v
}

// bypassRead reads a register in decode with the write-back bypass.
func (m *Machine) bypassRead(reg uint8, wbData []uint64) uint64 {
	v := m.RF[reg]
	if reg == 0 {
		v = 0
	}
	for p := 0; p < m.Cfg.Slots; p++ {
		if m.ew[p].writes && m.ew[p].rd == reg {
			v = wbData[p]
		}
	}
	return v
}

// alu computes the execute-stage result for op.
func (m *Machine) alu(op isa.Op, a, bv uint64) uint64 {
	w := uint(m.Cfg.Width)
	mask := m.mask()
	amt := bv & uint64(m.Cfg.Width-1)
	signBit := uint64(1) << (w - 1)
	toSigned := func(x uint64) int64 {
		if x&signBit != 0 {
			return int64(x | ^mask)
		}
		return int64(x)
	}
	switch op {
	case isa.ADD, isa.ADDI:
		return (a + bv) & mask
	case isa.SUB:
		return (a - bv) & mask
	case isa.AND, isa.ANDI:
		return a & bv
	case isa.OR, isa.ORI:
		return a | bv
	case isa.XOR:
		return a ^ bv
	case isa.SLL:
		return (a << amt) & mask
	case isa.SRL:
		return (a & mask) >> amt
	case isa.SRA:
		return uint64(toSigned(a)>>amt) & mask
	case isa.CMPEQ:
		if a == bv {
			return 1
		}
		return 0
	case isa.CMPLT:
		if toSigned(a) < toSigned(bv) {
			return 1
		}
		return 0
	case isa.CMPLTU:
		if a < bv {
			return 1
		}
		return 0
	case isa.MPYLU:
		half := uint64(1)<<(w/2) - 1
		return (a & half) * (bv & half) & mask
	default:
		return 0
	}
}
