package vexsim

import (
	"context"
	"fmt"

	"vipipe/internal/flowerr"
	"vipipe/internal/gsim"
	"vipipe/internal/vex"
)

// Testbench co-simulates a gate-level VEX core against behavioral
// single-cycle program and data memories — the substitute for the
// paper's Modelsim run. Each cycle it feeds the instruction bundle at
// the core's fetch address, services the data-memory interface
// (stores first in slot order, then loads), and clocks the netlist.
// Per-net switching activity accumulates in the underlying simulator.
type Testbench struct {
	Core *vex.Core
	Sim  *gsim.Simulator
	Prog [][]uint32
	DMem []uint64
}

// NewTestbench wires a built core to a program and an initial data
// memory image (copied; may be nil).
func NewTestbench(core *vex.Core, prog [][]uint32, dmem []uint64) (*Testbench, error) {
	if len(prog) > 1<<core.Cfg.PCBits {
		return nil, fmt.Errorf("vexsim: program of %d bundles exceeds 2^%d", len(prog), core.Cfg.PCBits)
	}
	for i, bnd := range prog {
		if len(bnd) != core.Cfg.Slots {
			return nil, fmt.Errorf("vexsim: bundle %d has %d ops, want %d", i, len(bnd), core.Cfg.Slots)
		}
	}
	sim, err := gsim.New(core.NL)
	if err != nil {
		return nil, err
	}
	tb := &Testbench{Core: core, Sim: sim, Prog: prog, DMem: make([]uint64, DMemWords)}
	copy(tb.DMem, dmem)
	return tb, nil
}

// Step runs one clock cycle of the netlist with memory servicing.
func (tb *Testbench) Step() {
	core, s := tb.Core, tb.Sim
	mask := uint64(1)<<uint(core.Cfg.Width) - 1

	// Settle combinational logic so the registered memory-interface
	// outputs (PC, addresses, enables) reflect the current cycle.
	s.Eval()

	// Fetch service: program word at PC, NOPs beyond the program.
	pc := s.Word(core.PCOut)
	for slot, iw := range core.InstrIn {
		var w uint64
		if int(pc) < len(tb.Prog) {
			w = uint64(tb.Prog[pc][slot])
		}
		s.SetPIWord(iw, w)
	}

	// Data-memory service: stores commit first in slot order, then
	// loads observe the updated memory (same rule as the reference
	// machine).
	for slot := range core.StEnOut {
		if s.Val(core.StEnOut[slot]) {
			addr := s.Word(core.AddrOut[slot]) % DMemWords
			tb.DMem[addr] = s.Word(core.StDataOut[slot]) & mask
		}
	}
	for slot := range core.LdEnOut {
		var data uint64
		if s.Val(core.LdEnOut[slot]) {
			data = tb.DMem[s.Word(core.AddrOut[slot])%DMemWords] & mask
		}
		s.SetPIWord(core.LoadData[slot], data)
	}

	s.Step()
}

// Run executes n cycles.
func (tb *Testbench) Run(n int) {
	_ = tb.RunContext(context.Background(), n)
}

// RunContext executes up to n cycles, polling ctx every 64 cycles and
// stopping with an error matching flowerr.ErrCancelled when it
// expires. Memory state and switching activity reflect the cycles run.
func (tb *Testbench) RunContext(ctx context.Context, n int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return flowerr.Cancelledf("vexsim: cancelled at cycle %d/%d: %w", i, n, err)
			}
		}
		tb.Step()
	}
	return nil
}

// Reg reads architectural register r from the netlist state.
func (tb *Testbench) Reg(r int) uint64 {
	tb.Sim.Eval()
	return tb.Sim.Word(tb.Core.RegQ[r])
}

// Activity returns the per-net switching activity collected so far.
func (tb *Testbench) Activity() []float64 { return tb.Sim.Activity() }
