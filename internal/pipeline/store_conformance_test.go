package pipeline_test

import (
	"context"

	"testing"

	"vipipe/internal/pipeline"
	"vipipe/internal/pipeline/storetest"
)

func TestMemStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) pipeline.Store {
		return pipeline.NewMemStore()
	})
}

func TestDiskStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) pipeline.Store {
		ds, err := pipeline.OpenDiskStore(t.TempDir(), storetest.Codecs())
		if err != nil {
			t.Fatalf("OpenDiskStore: %v", err)
		}
		return ds
	})
}

func TestTieredStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) pipeline.Store {
		ds, err := pipeline.OpenDiskStore(t.TempDir(), storetest.Codecs())
		if err != nil {
			t.Fatalf("OpenDiskStore: %v", err)
		}
		return pipeline.NewTiered(pipeline.NewMemStore(), ds)
	})
}

// TestTieredConformanceWithColdMemory re-runs the suite with a front
// tier that forgets between subtests while the disk tier persists —
// the restart scenario — by rebuilding the memory tier on every make.
func TestTieredRestartWarm(t *testing.T) {
	dir := t.TempDir()
	ds, err := pipeline.OpenDiskStore(dir, storetest.Codecs())
	if err != nil {
		t.Fatalf("OpenDiskStore: %v", err)
	}
	tiered := pipeline.NewTiered(pipeline.NewMemStore(), ds)
	computes := 0
	compute := func() (any, int64, error) {
		computes++
		return &storetest.Value{Key: "cfg/warm", N: 1}, 64, nil
	}
	if _, err := tiered.Do(context.Background(), "cfg/warm", compute); err != nil {
		t.Fatalf("first Do: %v", err)
	}

	// "Restart": a brand-new process opens the same dir — fresh memory
	// tier, fresh DiskStore.
	ds2, err := pipeline.OpenDiskStore(dir, storetest.Codecs())
	if err != nil {
		t.Fatalf("reopen DiskStore: %v", err)
	}
	tiered2 := pipeline.NewTiered(pipeline.NewMemStore(), ds2)
	v, err := tiered2.Do(context.Background(), "cfg/warm", compute)
	if err != nil {
		t.Fatalf("Do after restart: %v", err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want the restart to hit disk", computes)
	}
	if val, ok := v.(*storetest.Value); !ok || val.Key != "cfg/warm" || val.N != 1 {
		t.Fatalf("restart read %#v, want the persisted artifact", v)
	}
	if st := ds2.Stats(); st.Hits != 1 {
		t.Fatalf("disk stats after restart: %+v, want 1 hit", st)
	}
}
