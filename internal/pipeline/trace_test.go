package pipeline

import (
	"bytes"
	"context"
	"testing"
	"time"

	"vipipe/internal/obs"
)

// TestSingleNodeTraceGolden drives one node through the scheduler
// under a tracer with a frozen clock — every timestamp and duration
// is zero — and golden-compares the exported Chrome trace-event JSON,
// then decodes it back and checks the round trip.
func TestSingleNodeTraceGolden(t *testing.T) {
	g := New("cfg", NewMemStore())
	g.MustAdd(Node{
		ID: "solo",
		Compute: func(ctx context.Context, _ map[string]any) (any, error) {
			return 42, nil
		},
	})

	epoch := time.Unix(0, 0)
	tr := obs.NewTracerWithClock("run-solo", "pipeline-test", func() time.Time { return epoch })
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := g.RequestOne(ctx, "solo"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Finish().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "solo",
   "cat": "span",
   "ph": "X",
   "ts": 0,
   "dur": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "bytes": "1024",
    "cache": "miss",
    "key": "cfg/solo",
    "parent": "0",
    "queue_wait_us": "0",
    "span": "1"
   }
  }
 ],
 "displayTimeUnit": "ms",
 "otherData": {
  "trace_id": "run-solo",
  "trace_name": "pipeline-test"
 }
}
`
	if got := buf.String(); got != want {
		t.Errorf("single-node trace mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	f, err := obs.ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 1 {
		t.Fatalf("round trip decoded %d events, want 1", len(f.TraceEvents))
	}
	ev := f.TraceEvents[0]
	if ev.Name != "solo" || ev.Ph != "X" || ev.Args["cache"] != "miss" || ev.Args["key"] != "cfg/solo" {
		t.Errorf("round-trip event = %+v", ev)
	}
}

// TestNodeSpansRecordHitAndMiss verifies the per-node span attributes
// the acceptance criterion names: cache hit/miss and queue-wait.
func TestNodeSpansRecordHitAndMiss(t *testing.T) {
	g := New("cfg", NewMemStore())
	g.MustAdd(Node{ID: "a", Compute: func(context.Context, map[string]any) (any, error) { return 1, nil }})
	g.MustAdd(Node{ID: "b", Deps: []string{"a"}, Compute: func(_ context.Context, deps map[string]any) (any, error) {
		return deps["a"].(int) + 1, nil
	}})

	tr := obs.NewTracer("run", "hitmiss")
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := g.Request(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	// Second request: both artifacts come out of the store.
	if _, err := g.Request(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, s := range tr.Finish().Spans {
		var cache, queue bool
		for _, a := range s.Attrs {
			if a.Key == "cache" {
				cache = true
				counts[s.Name+"/"+a.Value]++
			}
			if a.Key == "queue_wait_us" {
				queue = true
			}
		}
		if !cache || !queue {
			t.Errorf("span %s missing cache/queue_wait attrs: %+v", s.Name, s.Attrs)
		}
	}
	for _, want := range []string{"a/miss", "b/miss", "a/hit", "b/hit"} {
		if counts[want] != 1 {
			t.Errorf("cache attr %s seen %d times, want 1 (all: %v)", want, counts[want], counts)
		}
	}
}

// TestTracedRunMatchesUntraced pins the zero-interference guarantee
// at the scheduler level: the same graph computes identical artifacts
// with and without a tracer on the context.
func TestTracedRunMatchesUntraced(t *testing.T) {
	build := func() *Graph {
		g := New("cfg", NewMemStore())
		g.MustAdd(Node{ID: "x", Compute: func(context.Context, map[string]any) (any, error) { return []int{1, 2, 3}, nil }})
		g.MustAdd(Node{ID: "y", Deps: []string{"x"}, Compute: func(_ context.Context, deps map[string]any) (any, error) {
			sum := 0
			for _, v := range deps["x"].([]int) {
				sum += v
			}
			return sum, nil
		}})
		return g
	}
	plain, err := build().RequestOne(context.Background(), "y")
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithTracer(context.Background(), obs.NewTracer("t", "traced"))
	traced, err := build().RequestOne(ctx, "y")
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("traced run computed %v, untraced %v", traced, plain)
	}
}
