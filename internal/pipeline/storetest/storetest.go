// Package storetest is the conformance suite for pipeline.Store
// implementations. Every store the flow composes — pipeline.MemStore,
// the service LRU cache, pipeline.DiskStore, the tiered combination —
// must pass Run under -race: same singleflight guarantees, same
// failure semantics, same cancellation behavior, so graphs can run
// over any of them interchangeably.
package storetest

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"vipipe/internal/flowerr"
	"vipipe/internal/pipeline"
)

// Value is the artifact type the suite stores: pure data, so every
// tier — including a disk tier round-tripping through Codec — can
// hold it.
type Value struct {
	Key string
	N   int
}

type codec struct{}

func (codec) Encode(v any) ([]byte, error) {
	val, ok := v.(*Value)
	if !ok {
		return nil, flowerr.BadInputf("storetest codec: got %T, want *Value", v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(val); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (codec) Decode(data []byte) (any, error) {
	v := new(Value)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return nil, err
	}
	return v, nil
}

// Codecs returns a pipeline.Codecs serving the suite's Value codec
// for every node, so DiskStore-backed stores can join the suite.
func Codecs() pipeline.Codecs {
	return func(string) pipeline.Codec { return codec{} }
}

// Run exercises the Store contract against fresh stores built by mk.
// Each subtest gets its own store; mk may register cleanup on t.
func Run(t *testing.T, mk func(t *testing.T) pipeline.Store) {
	t.Run("compute_once", func(t *testing.T) { computeOnce(t, mk(t)) })
	t.Run("failed_compute_not_cached", func(t *testing.T) { failedCompute(t, mk(t)) })
	t.Run("singleflight", func(t *testing.T) { singleflight(t, mk(t)) })
	t.Run("waiter_cancellation", func(t *testing.T) { waiterCancellation(t, mk(t)) })
	t.Run("concurrent_keys", func(t *testing.T) { concurrentKeys(t, mk(t)) })
}

// wantValue reports mismatches with t.Errorf so it is safe from any
// goroutine (Fatalf may only run on the test goroutine).
func wantValue(t *testing.T, got any, key string, n int) {
	t.Helper()
	v, ok := got.(*Value)
	if !ok || v == nil {
		t.Errorf("store returned %T %v, want *Value", got, got)
		return
	}
	if v.Key != key || v.N != n {
		t.Errorf("store returned %+v, want {Key:%s N:%d}", v, key, n)
	}
}

// computeOnce: a second Do of the same key returns the stored
// artifact without recomputing.
func computeOnce(t *testing.T, s pipeline.Store) {
	ctx := context.Background()
	var computes atomic.Int64
	compute := func() (any, int64, error) {
		computes.Add(1)
		return &Value{Key: "cfg/alpha", N: 11}, 64, nil
	}
	v, err := s.Do(ctx, "cfg/alpha", compute)
	if err != nil {
		t.Fatalf("first Do: %v", err)
	}
	wantValue(t, v, "cfg/alpha", 11)
	v, err = s.Do(ctx, "cfg/alpha", compute)
	if err != nil {
		t.Fatalf("second Do: %v", err)
	}
	wantValue(t, v, "cfg/alpha", 11)
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
}

// failedCompute: an error result must not poison the key — the next
// caller recomputes and can succeed.
func failedCompute(t *testing.T, s pipeline.Store) {
	ctx := context.Background()
	boom := errors.New("compute exploded")
	if _, err := s.Do(ctx, "cfg/flaky", func() (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failing Do returned %v, want the compute's error", err)
	}
	v, err := s.Do(ctx, "cfg/flaky", func() (any, int64, error) {
		return &Value{Key: "cfg/flaky", N: 2}, 64, nil
	})
	if err != nil {
		t.Fatalf("Do after failure: %v", err)
	}
	wantValue(t, v, "cfg/flaky", 2)
}

// singleflight: concurrent callers of one missing key share a single
// compute.
func singleflight(t *testing.T, s pipeline.Store) {
	release := make(chan struct{})
	var computes atomic.Int64
	const callers = 8
	results := make([]any, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Do(context.Background(), "cfg/shared", func() (any, int64, error) {
				computes.Add(1)
				<-release
				return &Value{Key: "cfg/shared", N: 7}, 64, nil
			})
		}(i)
	}
	for computes.Load() == 0 {
		runtime.Gosched() // wait for the elected caller to enter compute
	}
	close(release)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		wantValue(t, results[i], "cfg/shared", 7)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times across %d concurrent callers, want 1", n, callers)
	}
}

// waiterCancellation: a waiter whose context dies mid-wait returns an
// error matching flowerr.ErrCancelled while the owning compute
// finishes for everyone else.
func waiterCancellation(t *testing.T, s pipeline.Store) {
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := s.Do(context.Background(), "cfg/slow", func() (any, int64, error) {
			close(started)
			<-release
			return &Value{Key: "cfg/slow", N: 3}, 64, nil
		})
		if err != nil {
			t.Errorf("owner Do: %v", err)
			return
		}
		wantValue(t, v, "cfg/slow", 3)
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, "cfg/slow", func() (any, int64, error) {
		t.Error("cancelled waiter ran the compute")
		return nil, 0, nil
	}); !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("cancelled waiter returned %v, want flowerr.ErrCancelled", err)
	}
	close(release)
	<-done
}

// concurrentKeys: many goroutines hammering several keys under -race;
// each key computes exactly once and every caller sees its value.
func concurrentKeys(t *testing.T, s pipeline.Store) {
	keys := []string{"cfg/k0", "cfg/k1", "cfg/k2", "cfg/k3"}
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				key := keys[(g+it)%len(keys)]
				n := (g+it)%len(keys) + 100
				v, err := s.Do(context.Background(), key, func() (any, int64, error) {
					computes.Add(1)
					return &Value{Key: key, N: n}, 64, nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				wantValue(t, v, key, n)
			}
		}(g)
	}
	wg.Wait()
	if n := computes.Load(); n != int64(len(keys)) {
		t.Fatalf("computed %d times for %d keys, want one compute per key", n, len(keys))
	}
}
