// Package pipeline is the typed artifact-graph runtime behind the
// flow: each step of the methodology is a node with a stable
// content-addressed key, declared dependencies, and a compute
// function. A Graph resolves requests for terminal artifacts by
// walking the dependency closure and running every ready node
// concurrently under a bounded worker pool — the four chip-position
// characterizations and the per-strategy island generations schedule
// in parallel for free — while a pluggable Store deduplicates and
// caches computes across concurrent requests and, when the store is
// shared, across graphs.
//
// The runtime replaces the three hand-rolled orchestrations the repo
// grew before it (the imperative step-order bookkeeping in
// vipipe.Flow, the bespoke recompute logic of the service engine, and
// the per-tool sequences in cmd/): dependencies are edges, so "step X
// before step Y" errors are subsumed by the graph just computing X
// first, and a failure is reported naming the exact node that failed.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
)

// Node is one artifact in the graph: a stable ID (the content-address
// suffix under the graph's prefix), the IDs of the artifacts its
// compute consumes, and the compute itself.
type Node struct {
	// ID is the node's identity within the graph and the suffix of
	// its store key. It must be unique and non-empty.
	ID string
	// Deps lists the node IDs whose artifacts Compute consumes. Every
	// dependency must already be in the graph when the node is added,
	// which makes cycles unconstructible.
	Deps []string
	// Compute builds the artifact. ctx is the per-node context —
	// cancelled when the request is cancelled or a sibling fails —
	// and deps maps each declared dependency ID to its artifact.
	Compute func(ctx context.Context, deps map[string]any) (any, error)
	// Size estimates the artifact's retained bytes for bounded
	// stores; nil means a nominal 1KiB.
	Size func(v any) int64
}

// Hooks observe per-node store traffic, feeding latency histograms
// and hit/miss counters (e.g. the /metrics registry of the service).
// Either hook may be nil.
type Hooks struct {
	// OnCompute fires after a node's compute ran (a store miss) with
	// the compute duration.
	OnCompute func(id string, d time.Duration)
	// OnHit fires when a node's artifact came out of the store
	// without computing.
	OnHit func(id string)
	// OnResolve fires once per node after its artifact is available,
	// whichever way it arrived (cached reports a store hit), with the
	// artifact value. It runs on the scheduler goroutine before
	// dependents unblock — keep it cheap and never mutate v: the same
	// value is shared with every other consumer of the store.
	OnResolve func(id string, v any, cached bool)
}

// Graph is an immutable-after-construction artifact graph over a
// store. Build it with New and Add, then issue Request calls from any
// number of goroutines; Add must not race Request.
type Graph struct {
	prefix  string
	store   Store
	hooks   Hooks
	workers int
	nodes   map[string]*Node

	validateOnce sync.Once
	validateErr  error
}

// Option configures a Graph.
type Option func(*Graph)

// WithHooks installs observation hooks.
func WithHooks(h Hooks) Option { return func(g *Graph) { g.hooks = h } }

// WithWorkers bounds the number of node computes running at once per
// request. n <= 0 keeps the default (GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(g *Graph) {
		if n > 0 {
			g.workers = n
		}
	}
}

// New returns an empty graph whose store keys are "<prefix>/<node>".
// The prefix is the content address of everything the nodes close
// over (for the flow: the configuration hash), so graphs built from
// identical inputs share artifacts through a shared store.
func New(prefix string, store Store, opts ...Option) *Graph {
	g := &Graph{
		prefix:  prefix,
		store:   store,
		workers: runtime.GOMAXPROCS(0),
		nodes:   make(map[string]*Node),
	}
	for _, opt := range opts {
		opt(g)
	}
	return g
}

// Add inserts a node. It rejects duplicate or empty IDs, nil
// computes, and dependencies on nodes not yet added — the
// add-dependencies-first discipline is what keeps the graph acyclic
// by construction.
func (g *Graph) Add(n Node) error {
	if n.ID == "" {
		return flowerr.BadInputf("pipeline: node with empty ID")
	}
	if n.Compute == nil {
		return flowerr.BadInputf("pipeline: node %q has no compute", n.ID)
	}
	if _, ok := g.nodes[n.ID]; ok {
		return flowerr.BadInputf("pipeline: duplicate node %q", n.ID)
	}
	for _, d := range n.Deps {
		if _, ok := g.nodes[d]; !ok {
			return flowerr.BadInputf("pipeline: node %q depends on unknown node %q (add dependencies first)", n.ID, d)
		}
	}
	g.nodes[n.ID] = &n
	return nil
}

// MustAdd is Add for statically-known graph shapes; it panics on a
// construction bug.
func (g *Graph) MustAdd(n Node) {
	if err := g.Add(n); err != nil {
		panic(err)
	}
}

// Key returns the store key of a node: "<prefix>/<id>".
func (g *Graph) Key(id string) string { return g.prefix + "/" + id }

// Nodes lists every node ID in lexical order.
func (g *Graph) Nodes() []string {
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RequestOne resolves a single artifact.
func (g *Graph) RequestOne(ctx context.Context, id string) (any, error) {
	arts, err := g.Request(ctx, id)
	if err != nil {
		return nil, err
	}
	return arts[id], nil
}

// Request resolves the given artifacts, computing (or fetching from
// the store) their full dependency closure. Ready nodes run
// concurrently, bounded by the worker limit, each under its own child
// context; the first failure cancels the outstanding nodes and is
// returned wrapped with the failing node's ID (errors.Is still
// matches the underlying flowerr class). The returned map holds every
// node of the closure that completed — on error it carries the
// partial results, so callers can report partial progress.
func (g *Graph) Request(ctx context.Context, ids ...string) (map[string]any, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	need := make(map[string]bool)
	var collect func(id string) error
	collect = func(id string) error {
		if need[id] {
			return nil
		}
		n, ok := g.nodes[id]
		if !ok {
			return flowerr.BadInputf("pipeline: unknown node %q", id)
		}
		need[id] = true
		for _, d := range n.Deps {
			if err := collect(d); err != nil {
				return err
			}
		}
		return nil
	}
	for _, id := range ids {
		if err := collect(id); err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	r := &run{
		results: make(map[string]any, len(need)),
		errs:    make(map[string]error, len(need)),
		done:    make(map[string]chan struct{}, len(need)),
		cancel:  cancel,
	}
	for id := range need {
		r.done[id] = make(chan struct{})
	}
	sem := make(chan struct{}, g.workers)

	var wg sync.WaitGroup
	for id := range need {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			g.runNode(runCtx, r, sem, id)
		}(id)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	return r.results, r.firstErr
}

// run is the per-request scheduler state.
type run struct {
	mu       sync.Mutex
	results  map[string]any
	errs     map[string]error
	firstErr error
	done     map[string]chan struct{}
	cancel   context.CancelFunc
}

// fail records a node's error; the first failure recorded wins the
// request error and cancels the outstanding siblings, whose
// cancellation fallout then cannot displace it. Dependency failures
// propagate the dependency's error unwrapped, so whichever node
// records the root cause first, the request reports that cause.
func (r *run) fail(id string, err error) {
	r.mu.Lock()
	r.errs[id] = err
	if r.firstErr == nil {
		r.firstErr = err
		r.cancel()
	}
	r.mu.Unlock()
}

// runNode waits for the node's dependencies, then computes through
// the store under the worker bound.
func (g *Graph) runNode(ctx context.Context, r *run, sem chan struct{}, id string) {
	defer close(r.done[id])
	n := g.nodes[id]

	for _, d := range n.Deps {
		select {
		case <-r.done[d]:
		case <-ctx.Done():
			r.fail(id, flowerr.Cancelledf("pipeline: node %q: %w", id, ctx.Err()))
			return
		}
	}
	deps := make(map[string]any, len(n.Deps))
	r.mu.Lock()
	for _, d := range n.Deps {
		if derr := r.errs[d]; derr != nil {
			r.mu.Unlock()
			// Propagate the dependency's failure unwrapped so every
			// downstream node reports the same root cause.
			r.fail(id, derr)
			return
		}
		deps[d] = r.results[d]
	}
	r.mu.Unlock()

	// One span per artifact node, opened once its dependencies are
	// ready: queue_wait_us is the semaphore wait under the worker
	// bound, the rest of the span is store lookup plus compute.
	ctx, span := obs.Start(ctx, id)
	defer span.End()
	span.SetAttr("key", g.Key(id))

	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	case <-ctx.Done():
		span.SetAttr("cancelled", true)
		r.fail(id, flowerr.Cancelledf("pipeline: node %q: %w", id, ctx.Err()))
		return
	}
	span.Lap("queue_wait_us")
	if err := ctx.Err(); err != nil {
		span.SetAttr("cancelled", true)
		r.fail(id, flowerr.Cancelledf("pipeline: node %q: %w", id, err))
		return
	}

	nodeCtx, nodeCancel := context.WithCancel(ctx)
	defer nodeCancel()
	computed := false
	var storedSize int64
	v, err := g.store.Do(ctx, g.Key(id), func() (any, int64, error) {
		computed = true
		t0 := obs.Now()
		v, err := n.Compute(nodeCtx, deps)
		if err != nil {
			return nil, 0, err
		}
		if g.hooks.OnCompute != nil {
			g.hooks.OnCompute(id, obs.Since(t0))
		}
		size := int64(1024)
		if n.Size != nil {
			size = n.Size(v)
		}
		storedSize = size
		return v, size, nil
	})
	if computed {
		span.SetAttr("cache", "miss")
		// bytes annotates where the artifact was encoded/stored, so
		// profiles can attribute store traffic per node kind.
		span.SetAttr("bytes", storedSize)
	} else {
		span.SetAttr("cache", "hit")
	}
	if err != nil {
		span.SetAttr("error", flowerr.Class(err))
		r.fail(id, fmt.Errorf("pipeline: node %q: %w", id, err))
		return
	}
	if !computed && g.hooks.OnHit != nil {
		g.hooks.OnHit(id)
	}
	if g.hooks.OnResolve != nil {
		g.hooks.OnResolve(id, v, !computed)
	}
	r.mu.Lock()
	r.results[id] = v
	r.mu.Unlock()
}
