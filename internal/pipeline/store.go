package pipeline

import (
	"context"
	"sync"

	"vipipe/internal/flowerr"
)

// Store is the pluggable artifact store behind a Graph: a
// content-addressed map from node keys to computed artifacts with
// singleflight semantics. Do returns the value for key, computing it
// at most once however many goroutines — across however many graphs
// sharing the store — ask concurrently. compute reports the
// artifact's approximate retained size in bytes so bounded stores can
// evict; a failed compute must never be cached, so the next caller
// retries. Waiters honor ctx and return an error matching
// flowerr.ErrCancelled when it expires while the compute (owned by
// the first caller) continues for the others.
//
// The two canonical implementations are MemStore (below) and the
// size-bounded singleflight LRU cache of internal/service.
type Store interface {
	Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, error)
}

// MemStore is the minimal Store: an unbounded in-memory map with
// singleflight computes. It backs private per-flow graphs where
// artifacts live exactly as long as the flow that owns them.
type MemStore struct {
	mu       sync.Mutex
	vals     map[string]any
	inflight map[string]*memCall
}

type memCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		vals:     make(map[string]any),
		inflight: make(map[string]*memCall),
	}
}

// Do implements Store.
func (s *MemStore) Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, error) {
	for {
		s.mu.Lock()
		if v, ok := s.vals[key]; ok {
			s.mu.Unlock()
			return v, nil
		}
		if call, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, flowerr.Cancelledf("pipeline: wait for %q: %w", key, ctx.Err())
			}
			if call.err == nil {
				return call.val, nil
			}
			// The computing caller failed (its cancellation, its
			// panic): retry from the top — this caller may own the
			// recompute now.
			if err := ctx.Err(); err != nil {
				return nil, flowerr.Cancelledf("pipeline: wait for %q: %w", key, err)
			}
			continue
		}
		call := &memCall{done: make(chan struct{})}
		s.inflight[key] = call
		s.mu.Unlock()

		val, _, err := compute()
		call.val, call.err = val, err

		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			s.vals[key] = val
		}
		s.mu.Unlock()
		close(call.done)
		return val, err
	}
}

// Len returns the number of cached artifacts.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}
