package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vipipe/internal/flowerr"
)

// value node: returns a fixed string derived from its deps.
func constNode(id string, deps ...string) Node {
	return Node{
		ID:   id,
		Deps: deps,
		Compute: func(_ context.Context, in map[string]any) (any, error) {
			out := id
			for _, d := range deps {
				out += "(" + in[d].(string) + ")"
			}
			return out, nil
		},
	}
}

func TestGraphResolvesDependencyClosure(t *testing.T) {
	g := New("t", NewMemStore())
	g.MustAdd(constNode("a"))
	g.MustAdd(constNode("b", "a"))
	g.MustAdd(constNode("c", "a"))
	g.MustAdd(constNode("d", "b", "c"))

	arts, err := g.Request(context.Background(), "d")
	if err != nil {
		t.Fatal(err)
	}
	// The whole closure is materialized, not just the terminal.
	for _, id := range []string{"a", "b", "c", "d"} {
		if _, ok := arts[id]; !ok {
			t.Errorf("closure missing %q", id)
		}
	}
	if got := arts["d"].(string); got != "d(b(a))(c(a))" {
		t.Errorf("d = %q; dependency values did not flow", got)
	}
}

func TestGraphAddValidation(t *testing.T) {
	g := New("t", NewMemStore())
	if err := g.Add(Node{ID: "x"}); !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("nil compute: %v", err)
	}
	g.MustAdd(constNode("a"))
	if err := g.Add(constNode("a")); !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("duplicate: %v", err)
	}
	if err := g.Add(constNode("b", "missing")); !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("unknown dep: %v", err)
	}
	if _, err := g.Request(context.Background(), "nope"); !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("unknown request: %v", err)
	}
}

// TestGraphRunsReadyNodesConcurrently proves the scheduler overlaps
// independent nodes: four siblings block until all four are running.
func TestGraphRunsReadyNodesConcurrently(t *testing.T) {
	g := New("t", NewMemStore(), WithWorkers(4))
	g.MustAdd(constNode("root"))
	var started sync.WaitGroup
	started.Add(4)
	release := make(chan struct{})
	terminals := []string{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("mc/%d", i)
		terminals = append(terminals, id)
		g.MustAdd(Node{
			ID:   id,
			Deps: []string{"root"},
			Compute: func(ctx context.Context, _ map[string]any) (any, error) {
				started.Done()
				select {
				case <-release:
					return id, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		})
	}
	go func() {
		started.Wait() // deadlocks the test on a serial scheduler
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := g.Request(ctx, terminals...); err != nil {
		t.Fatalf("concurrent fan-out: %v (scheduler did not overlap ready nodes?)", err)
	}
}

// TestGraphWorkerBound asserts the pool limit: with one worker, no
// two computes ever overlap.
func TestGraphWorkerBound(t *testing.T) {
	g := New("t", NewMemStore(), WithWorkers(1))
	var inFlight, maxInFlight atomic.Int64
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("n%d", i)
		g.MustAdd(Node{
			ID: id,
			Compute: func(context.Context, map[string]any) (any, error) {
				cur := inFlight.Add(1)
				for {
					old := maxInFlight.Load()
					if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				return id, nil
			},
		})
	}
	if _, err := g.Request(context.Background(), g.Nodes()...); err != nil {
		t.Fatal(err)
	}
	if got := maxInFlight.Load(); got != 1 {
		t.Errorf("max concurrent computes = %d; want 1 under WithWorkers(1)", got)
	}
}

func TestGraphFailurePropagatesRootCause(t *testing.T) {
	boom := flowerr.BadInputf("boom")
	g := New("t", NewMemStore())
	g.MustAdd(constNode("ok"))
	g.MustAdd(Node{ID: "bad", Compute: func(context.Context, map[string]any) (any, error) {
		return nil, boom
	}})
	g.MustAdd(constNode("downstream", "bad", "ok"))

	arts, err := g.Request(context.Background(), "downstream")
	if err == nil {
		t.Fatal("failed dependency produced no error")
	}
	if !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("error %v lost its flowerr class", err)
	}
	if want := `node "bad"`; !contains(err.Error(), want) {
		t.Errorf("error %q does not name the failing node", err)
	}
	if _, ok := arts["downstream"]; ok {
		t.Error("downstream computed despite failed dependency")
	}
}

func TestGraphPreCancelledContext(t *testing.T) {
	g := New("t", NewMemStore())
	g.MustAdd(constNode("a"))
	g.MustAdd(constNode("b", "a"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.Request(ctx, "b")
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("pre-cancelled request: %v; want ErrCancelled", err)
	}
}

// TestGraphPartialResultsOnFailure: completed siblings stay in the
// result map when another node fails.
func TestGraphPartialResultsOnFailure(t *testing.T) {
	g := New("t", NewMemStore())
	g.MustAdd(constNode("good"))
	gate := make(chan struct{})
	g.MustAdd(Node{ID: "bad", Deps: []string{"good"}, Compute: func(context.Context, map[string]any) (any, error) {
		<-gate // "good" is committed before this runs
		return nil, flowerr.NoScenariof("nothing to do")
	}})
	go close(gate)
	arts, err := g.Request(context.Background(), "bad")
	if !errors.Is(err, flowerr.ErrNoScenario) {
		t.Fatalf("err = %v", err)
	}
	if arts["good"] != "good" {
		t.Errorf("partial results = %v; want the completed dependency", arts)
	}
}

// TestGraphSharedStoreSingleflight: two graphs over one store compute
// each node exactly once, and the second request reports hits.
func TestGraphSharedStoreSingleflight(t *testing.T) {
	store := NewMemStore()
	var computes atomic.Int64
	build := func(hits *atomic.Int64) *Graph {
		g := New("shared", store, WithHooks(Hooks{
			OnHit: func(string) { hits.Add(1) },
		}))
		g.MustAdd(Node{ID: "a", Compute: func(context.Context, map[string]any) (any, error) {
			computes.Add(1)
			time.Sleep(2 * time.Millisecond)
			return "a", nil
		}})
		g.MustAdd(constNode("b", "a"))
		return g
	}
	var hits1, hits2 atomic.Int64
	g1, g2 := build(&hits1), build(&hits2)

	var wg sync.WaitGroup
	for _, g := range []*Graph{g1, g2} {
		wg.Add(1)
		go func(g *Graph) {
			defer wg.Done()
			if _, err := g.Request(context.Background(), "b"); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("node a computed %d times across two graphs; want singleflight", got)
	}
	if store.Len() != 2 {
		t.Errorf("store holds %d artifacts; want 2", store.Len())
	}
	// A fresh request over the warm store is all hits.
	var hits3 atomic.Int64
	if _, err := build(&hits3).Request(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if hits3.Load() != 2 {
		t.Errorf("warm request hits = %d; want 2", hits3.Load())
	}
}

func TestGraphComputeHookObservesMisses(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	g := New("t", NewMemStore(), WithHooks(Hooks{
		OnCompute: func(id string, d time.Duration) {
			mu.Lock()
			seen[id]++
			mu.Unlock()
			if d < 0 {
				t.Errorf("negative duration for %s", id)
			}
		},
	}))
	g.MustAdd(constNode("a"))
	g.MustAdd(constNode("b", "a"))
	if _, err := g.Request(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Request(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if seen["a"] != 1 || seen["b"] != 1 {
		t.Errorf("computes observed %v; want each node once", seen)
	}
}

// TestGraphResolveHookSeesValueAndCacheState: OnResolve fires for
// every resolved node with the artifact value, cached=false on the
// cold pass and cached=true on the warm one.
func TestGraphResolveHookSeesValueAndCacheState(t *testing.T) {
	var mu sync.Mutex
	type resolved struct {
		v      any
		cached bool
	}
	seen := map[string][]resolved{}
	g := New("t", NewMemStore(), WithHooks(Hooks{
		OnResolve: func(id string, v any, cached bool) {
			mu.Lock()
			seen[id] = append(seen[id], resolved{v, cached})
			mu.Unlock()
		},
	}))
	g.MustAdd(constNode("a"))
	g.MustAdd(constNode("b", "a"))
	for i := 0; i < 2; i++ {
		if _, err := g.Request(context.Background(), "b"); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b"} {
		got := seen[id]
		if len(got) != 2 || got[0].cached || !got[1].cached {
			t.Fatalf("OnResolve(%s) = %+v; want cold then cached", id, got)
		}
		if got[0].v == nil || got[0].v != got[1].v {
			t.Errorf("OnResolve(%s) values = %+v; want the same artifact both passes", id, got)
		}
	}
}

func TestMemStoreCancelledWaiter(t *testing.T) {
	s := NewMemStore()
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = s.Do(context.Background(), "k", func() (any, int64, error) {
			close(started)
			<-release
			return "v", 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Do(ctx, "k", func() (any, int64, error) { return nil, 0, nil })
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("cancelled waiter: %v; want ErrCancelled", err)
	}
	close(release)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
