package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
)

// Codec serializes one artifact kind for the DiskStore. Encode must
// produce bytes Decode can round-trip into a value equivalent (for
// every consumer of the node's artifact) to the original; the store
// adds framing and checksums around the payload, so codecs deal in
// plain payload bytes.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Codecs selects the codec for a node ID (the part of a store key
// after the graph prefix, e.g. "mc/A"). Returning nil declares the
// artifact non-persistable — engine-state artifacts like live timing
// analyzers stay in the memory tier — and the DiskStore passes it
// through to compute untouched.
type Codecs func(nodeID string) Codec

// NodeID extracts the codec-selection ID from a store key: the part
// after the first "/" (graph keys are "<config hash>/<node id>"), or
// the whole key when it has no prefix.
func NodeID(key string) string {
	if _, id, ok := strings.Cut(key, "/"); ok {
		return id
	}
	return key
}

// DiskStore is a disk-backed content-addressed artifact store with
// crash-safe writes and end-to-end corruption detection:
//
//   - Every artifact is written to a temp file, fsynced, and
//     atomically renamed into place, so a crash mid-write can never
//     leave a half-visible artifact under its final name.
//   - Every file carries a checksum footer over its payload. A read
//     that fails verification — torn frame, flipped bits, an
//     undecodable payload — quarantines the file under
//     <dir>/quarantine/ and reports a miss, so corruption degrades to
//     a recompute instead of serving bad data.
//   - All IO runs under a per-attempt timeout and bounded retries
//     with backoff. After FailThreshold consecutive IO failures the
//     store enters degraded mode: reads and writes short-circuit to
//     misses/no-ops (serving continues from memory and compute) and
//     every ProbeEvery skipped operations one probe attempt is let
//     through, so a recovered disk re-enables the store by itself.
//
// DiskStore implements Store directly (Do, with its own singleflight
// group) and composes with an in-memory front tier via Tiered. It is
// safe for concurrent use by any number of goroutines and — thanks to
// the atomic-rename discipline — by concurrent processes sharing dir.
type DiskStore struct {
	dir    string
	codecs Codecs
	fs     FS

	opTimeout     time.Duration
	retries       int
	backoff       time.Duration
	failThreshold int64
	probeEvery    int64

	consecFails   atomic.Int64
	degraded      atomic.Bool
	skippedOps    atomic.Int64
	hits          atomic.Int64
	misses        atomic.Int64
	writes        atomic.Int64
	readErrs      atomic.Int64
	writeErrs     atomic.Int64
	quarantined   atomic.Int64
	degradedSkips atomic.Int64

	tmpSeq atomic.Int64

	mu       sync.Mutex
	inflight map[string]*memCall
}

// DiskOption configures a DiskStore.
type DiskOption func(*DiskStore)

// WithFS substitutes the filesystem (fault-injection tests).
func WithFS(fs FS) DiskOption { return func(s *DiskStore) { s.fs = fs } }

// WithIOTimeout bounds each IO attempt; d <= 0 keeps the default (2s).
func WithIOTimeout(d time.Duration) DiskOption {
	return func(s *DiskStore) {
		if d > 0 {
			s.opTimeout = d
		}
	}
}

// WithRetries sets the retry budget per operation (n extra attempts
// after the first) and the initial backoff between attempts, which
// doubles per retry. n < 0 keeps the default (2); backoff <= 0 keeps
// the default (5ms).
func WithRetries(n int, backoff time.Duration) DiskOption {
	return func(s *DiskStore) {
		if n >= 0 {
			s.retries = n
		}
		if backoff > 0 {
			s.backoff = backoff
		}
	}
}

// WithFailThreshold sets how many consecutive IO failures flip the
// store into degraded mode (default 4), and how many short-circuited
// operations pass between recovery probes while degraded (default 32).
func WithFailThreshold(fails, probeEvery int) DiskOption {
	return func(s *DiskStore) {
		if fails > 0 {
			s.failThreshold = int64(fails)
		}
		if probeEvery > 0 {
			s.probeEvery = int64(probeEvery)
		}
	}
}

// OpenDiskStore opens (creating if needed) an artifact store rooted
// at dir. On an unusable directory — missing and uncreatable,
// unwritable — it still returns a working store, pre-degraded, along
// with an error matching flowerr.ErrBadInput describing why: callers
// that must keep serving (the daemon) log the error and continue in
// degraded mode, callers that exist only to use the store (CLIs)
// treat it as fatal.
func OpenDiskStore(dir string, codecs Codecs, opts ...DiskOption) (*DiskStore, error) {
	s := &DiskStore{
		dir:           dir,
		codecs:        codecs,
		fs:            osFS{},
		opTimeout:     2 * time.Second,
		retries:       2,
		backoff:       5 * time.Millisecond,
		failThreshold: 4,
		probeEvery:    32,
		inflight:      make(map[string]*memCall),
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.initDirs(); err != nil {
		s.consecFails.Store(s.failThreshold)
		s.degraded.Store(true)
		return s, flowerr.BadInputf("pipeline: store dir %s unusable, starting degraded: %v", dir, err)
	}
	return s, nil
}

// initDirs creates the store layout and proves the directory is
// writable with one probe write-and-remove.
func (s *DiskStore) initDirs() error {
	for _, d := range []string{s.objectsDir(), s.tmpDir(), s.quarantineDir()} {
		if err := s.fs.MkdirAll(d); err != nil {
			return err
		}
	}
	probe := filepath.Join(s.tmpDir(), "probe")
	if err := s.fs.WriteFile(probe, []byte("vipipe store probe")); err != nil {
		return err
	}
	return s.fs.Remove(probe)
}

func (s *DiskStore) objectsDir() string    { return filepath.Join(s.dir, "objects") }
func (s *DiskStore) tmpDir() string        { return filepath.Join(s.dir, "tmp") }
func (s *DiskStore) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// Dir returns the store root.
func (s *DiskStore) Dir() string { return s.dir }

// Degraded reports whether the store is currently short-circuiting IO
// after repeated failures (or a failed open).
func (s *DiskStore) Degraded() bool { return s.degraded.Load() }

// DiskStats is the accounting snapshot for /metrics.
type DiskStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Writes        int64 `json:"writes"`
	ReadErrors    int64 `json:"read_errors"`
	WriteErrors   int64 `json:"write_errors"`
	Quarantined   int64 `json:"quarantined"`
	DegradedSkips int64 `json:"degraded_skips"`
	Degraded      bool  `json:"degraded"`
}

// Stats snapshots the accounting counters.
func (s *DiskStore) Stats() DiskStats {
	return DiskStats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Writes:        s.writes.Load(),
		ReadErrors:    s.readErrs.Load(),
		WriteErrors:   s.writeErrs.Load(),
		Quarantined:   s.quarantined.Load(),
		DegradedSkips: s.degradedSkips.Load(),
		Degraded:      s.degraded.Load(),
	}
}

// ---- framing ------------------------------------------------------

// artifact file frame: magic, 8-byte big-endian payload length, the
// codec payload, then a sha256 footer over the payload. Truncation
// (torn write that escaped the rename discipline, e.g. an injected
// fault) breaks the length check; bit rot breaks the checksum.
const frameMagic = "vipart1\n"

const frameOverhead = len(frameMagic) + 8 + sha256.Size

func frame(payload []byte) []byte {
	out := make([]byte, 0, frameOverhead+len(payload))
	out = append(out, frameMagic...)
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(payload)))
	out = append(out, lenb[:]...)
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

// unframe verifies and strips the frame; ok is false on any
// corruption.
func unframe(data []byte) (payload []byte, ok bool) {
	if len(data) < frameOverhead || string(data[:len(frameMagic)]) != frameMagic {
		return nil, false
	}
	n := binary.BigEndian.Uint64(data[len(frameMagic) : len(frameMagic)+8])
	if n != uint64(len(data)-frameOverhead) {
		return nil, false
	}
	payload = data[len(frameMagic)+8 : len(data)-sha256.Size]
	sum := sha256.Sum256(payload)
	var footer [sha256.Size]byte
	copy(footer[:], data[len(data)-sha256.Size:])
	if footer != sum {
		return nil, false
	}
	return payload, true
}

// ---- key mapping --------------------------------------------------

// path maps a store key to its artifact file, rejecting keys whose
// segments could escape the objects directory. The ".art" suffix
// keeps a key from colliding with the directory of a longer key that
// extends it.
func (s *DiskStore) path(key string) (string, error) {
	if key == "" {
		return "", flowerr.BadInputf("pipeline: empty store key")
	}
	segs := strings.Split(key, "/")
	for _, seg := range segs {
		if seg == "" || seg == "." || seg == ".." {
			return "", flowerr.BadInputf("pipeline: store key %q has an unsafe path segment", key)
		}
		for _, r := range seg {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
				r == '.' || r == '_' || r == '-' {
				continue
			}
			return "", flowerr.BadInputf("pipeline: store key %q has character %q outside [a-zA-Z0-9._-]", key, r)
		}
	}
	return filepath.Join(s.objectsDir(), filepath.Join(segs...)) + ".art", nil
}

func (s *DiskStore) codec(key string) Codec {
	if s.codecs == nil {
		return nil
	}
	return s.codecs(NodeID(key))
}

// ---- degradation accounting ---------------------------------------

// allow gates one IO operation. While healthy it always passes; while
// degraded it short-circuits, letting one probe through every
// probeEvery skipped operations so a recovered disk is noticed.
func (s *DiskStore) allow() bool {
	if !s.degraded.Load() {
		return true
	}
	if s.skippedOps.Add(1)%s.probeEvery == 0 {
		return true
	}
	s.degradedSkips.Add(1)
	return false
}

func (s *DiskStore) recordSuccess() {
	s.consecFails.Store(0)
	if s.degraded.CompareAndSwap(true, false) {
		s.skippedOps.Store(0)
	}
}

func (s *DiskStore) recordFailure() {
	if s.consecFails.Add(1) >= s.failThreshold {
		s.degraded.Store(true)
	}
}

// ---- IO with timeout, retry, backoff ------------------------------

var errIOTimeout = errors.New("store IO attempt timed out")

// attempt runs one IO operation under the per-attempt timeout. On
// timeout the operation keeps running in its goroutine (blocking file
// IO cannot be interrupted) but its eventual result is discarded.
func (s *DiskStore) attempt(op func() error) error {
	done := make(chan error, 1)
	go func() { done <- op() }()
	t := time.NewTimer(s.opTimeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return errIOTimeout
	}
}

// retryIO runs op with bounded retries and doubling backoff, stopping
// early on ctx expiry or a definitive not-exist answer.
func (s *DiskStore) retryIO(ctx context.Context, op func() error) error {
	backoff := s.backoff
	var err error
	for i := 0; i <= s.retries; i++ {
		if i > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return flowerr.Cancelledf("pipeline: store IO retry: %w", ctx.Err())
			}
			backoff *= 2
		}
		if err = s.attempt(op); err == nil || errors.Is(err, os.ErrNotExist) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

// ---- read / write / quarantine ------------------------------------

// Get returns the decoded artifact for key when a valid file exists.
// The int64 is the payload size on disk, the store's retained-size
// estimate for bounded front tiers. A corrupt file is quarantined and
// reported as a miss; IO failures count toward degradation and also
// report a miss — the caller recomputes, it never sees an error.
func (s *DiskStore) Get(ctx context.Context, key string) (any, int64, bool) {
	codec := s.codec(key)
	if codec == nil {
		return nil, 0, false
	}
	if !s.allow() {
		return nil, 0, false
	}
	path, err := s.path(key)
	if err != nil {
		return nil, 0, false
	}
	_, span := obs.Start(ctx, "store.disk.read")
	defer span.End()
	span.SetAttr("key", key)
	span.SetAttr("tier", "disk")

	var data []byte
	err = s.retryIO(ctx, func() error {
		var rerr error
		data, rerr = s.fs.ReadFile(path)
		return rerr
	})
	switch {
	case errors.Is(err, os.ErrNotExist):
		s.recordSuccess() // a definitive miss is a healthy disk
		s.misses.Add(1)
		span.SetAttr("outcome", "miss")
		return nil, 0, false
	case err != nil:
		s.readErrs.Add(1)
		s.recordFailure()
		span.SetAttr("outcome", "error")
		span.SetAttr("error", err.Error())
		return nil, 0, false
	}
	payload, ok := unframe(data)
	if !ok {
		s.quarantine(ctx, key, path, span)
		return nil, 0, false
	}
	v, derr := codec.Decode(payload)
	if derr != nil {
		s.quarantine(ctx, key, path, span)
		return nil, 0, false
	}
	s.recordSuccess()
	s.hits.Add(1)
	span.SetAttr("outcome", "hit")
	span.SetAttr("bytes", len(payload))
	return v, int64(len(payload)), true
}

// quarantine moves a corrupt artifact out of the read path so the
// recompute's fresh write replaces it and operators can inspect the
// bad bytes. Counted as corruption, not as an IO failure: the disk
// answered, the content was wrong.
func (s *DiskStore) quarantine(ctx context.Context, key, path string, span *obs.Span) {
	s.quarantined.Add(1)
	s.misses.Add(1)
	span.SetAttr("outcome", "corrupt")
	dst := filepath.Join(s.quarantineDir(), strings.ReplaceAll(key, "/", "_")+".art")
	err := s.retryIO(ctx, func() error { return s.fs.Rename(path, dst) })
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		// Could not move it aside; remove so it cannot be served again.
		_ = s.retryIO(ctx, func() error { return s.fs.Remove(path) })
	}
}

// Put persists an artifact, best-effort: temp file, fsync, atomic
// rename. It reports whether the artifact is durably on disk; a false
// return (no codec, degraded mode, IO failure) is not an error — the
// memory tier still holds the value.
func (s *DiskStore) Put(ctx context.Context, key string, v any) bool {
	codec := s.codec(key)
	if codec == nil {
		return false
	}
	if !s.allow() {
		return false
	}
	path, err := s.path(key)
	if err != nil {
		return false
	}
	_, span := obs.Start(ctx, "store.disk.write")
	defer span.End()
	span.SetAttr("key", key)
	span.SetAttr("tier", "disk")

	payload, err := codec.Encode(v)
	if err != nil {
		s.writeErrs.Add(1)
		span.SetAttr("outcome", "encode_error")
		span.SetAttr("error", err.Error())
		return false
	}
	data := frame(payload)
	tmp := filepath.Join(s.tmpDir(), fmt.Sprintf("w%d-%d.tmp", os.Getpid(), s.tmpSeq.Add(1)))
	err = s.retryIO(ctx, func() error {
		if werr := s.fs.WriteFile(tmp, data); werr != nil {
			return werr
		}
		if werr := s.fs.MkdirAll(filepath.Dir(path)); werr != nil {
			return werr
		}
		return s.fs.Rename(tmp, path)
	})
	if err != nil {
		s.writeErrs.Add(1)
		s.recordFailure()
		span.SetAttr("outcome", "error")
		span.SetAttr("error", err.Error())
		_ = s.attempt(func() error { return s.fs.Remove(tmp) })
		return false
	}
	s.recordSuccess()
	s.writes.Add(1)
	span.SetAttr("outcome", "written")
	span.SetAttr("bytes", len(payload))
	return true
}

// Do implements Store: read-through to disk with singleflight
// computes and write-through of successful results. Waiters honor ctx
// exactly like MemStore.
func (s *DiskStore) Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, error) {
	for {
		s.mu.Lock()
		if call, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, flowerr.Cancelledf("pipeline: wait for %q: %w", key, ctx.Err())
			}
			if call.err == nil {
				return call.val, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, flowerr.Cancelledf("pipeline: wait for %q: %w", key, err)
			}
			continue
		}
		call := &memCall{done: make(chan struct{})}
		s.inflight[key] = call
		s.mu.Unlock()

		val, _, ok := s.Get(ctx, key)
		var err error
		if !ok {
			val, _, err = compute()
			if err == nil {
				s.Put(ctx, key, val)
			}
		}
		call.val, call.err = val, err

		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(call.done)
		return val, err
	}
}
