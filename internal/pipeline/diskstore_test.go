package pipeline_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"vipipe/internal/faultinject"
	"vipipe/internal/flowerr"
	"vipipe/internal/pipeline"
	"vipipe/internal/pipeline/storetest"
)

// fastOpts keeps fault tests quick: no retries, tiny backoff, a low
// degradation threshold with a short probe period.
func fastOpts(fs pipeline.FS) []pipeline.DiskOption {
	return []pipeline.DiskOption{
		pipeline.WithFS(fs),
		pipeline.WithRetries(0, time.Millisecond),
		pipeline.WithIOTimeout(time.Second),
		pipeline.WithFailThreshold(2, 3),
	}
}

func mustOpen(t *testing.T, dir string, opts ...pipeline.DiskOption) *pipeline.DiskStore {
	t.Helper()
	ds, err := pipeline.OpenDiskStore(dir, storetest.Codecs(), opts...)
	if err != nil {
		t.Fatalf("OpenDiskStore: %v", err)
	}
	return ds
}

func TestDiskStorePutGet(t *testing.T) {
	ds := mustOpen(t, t.TempDir())
	ctx := context.Background()
	if _, _, ok := ds.Get(ctx, "cfg/alpha"); ok {
		t.Fatal("Get on an empty store reported a hit")
	}
	if !ds.Put(ctx, "cfg/alpha", &storetest.Value{Key: "cfg/alpha", N: 5}) {
		t.Fatal("Put failed on a healthy store")
	}
	v, size, ok := ds.Get(ctx, "cfg/alpha")
	if !ok {
		t.Fatal("Get missed a just-written artifact")
	}
	if size <= 0 {
		t.Fatalf("Get reported size %d, want > 0", size)
	}
	if val := v.(*storetest.Value); val.N != 5 {
		t.Fatalf("Get returned %+v, want N=5", val)
	}
	st := ds.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v, want 1 hit, 1 miss, 1 write", st)
	}
}

// TestDiskStoreCorruptionQuarantine flips bytes in a stored artifact
// and proves the store never serves it: the read reports a miss, the
// bad file moves to quarantine, and the recompute repairs the entry.
func TestDiskStoreCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	ds := mustOpen(t, dir)
	ctx := context.Background()
	ds.Put(ctx, "cfg/mc/A", &storetest.Value{Key: "cfg/mc/A", N: 9})

	path := filepath.Join(dir, "objects", "cfg", "mc", "A.art")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read artifact file: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt artifact file: %v", err)
	}

	if _, _, ok := ds.Get(ctx, "cfg/mc/A"); ok {
		t.Fatal("Get served a corrupted artifact")
	}
	if st := ds.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want 1 quarantined", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "cfg_mc_A.art")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file still at %s (err %v), want it moved aside", path, err)
	}

	// Do transparently falls back to recompute and repairs the entry.
	computed := false
	v, err := ds.Do(ctx, "cfg/mc/A", func() (any, int64, error) {
		computed = true
		return &storetest.Value{Key: "cfg/mc/A", N: 10}, 64, nil
	})
	if err != nil || !computed {
		t.Fatalf("Do after corruption: err=%v computed=%v", err, computed)
	}
	if v.(*storetest.Value).N != 10 {
		t.Fatalf("Do returned %+v, want the recomputed artifact", v)
	}
	if _, _, ok := ds.Get(ctx, "cfg/mc/A"); !ok {
		t.Fatal("recompute did not repair the on-disk artifact")
	}
}

// TestDiskStoreTornWrite forces a write that persists only half its
// bytes yet reports success — the frame's length/checksum must catch
// it on read.
func TestDiskStoreTornWrite(t *testing.T) {
	fs := faultinject.NewStoreFS(nil)
	ds := mustOpen(t, t.TempDir(), fastOpts(fs)...)
	ctx := context.Background()

	fs.TearWrites(1)
	if !ds.Put(ctx, "cfg/torn", &storetest.Value{Key: "cfg/torn", N: 1}) {
		t.Fatal("torn Put should report success — the tear is silent")
	}
	if _, _, ok := ds.Get(ctx, "cfg/torn"); ok {
		t.Fatal("Get served a torn artifact")
	}
	if st := ds.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want the torn file quarantined", st)
	}
}

// TestDiskStoreDegradedRecovery drives the store into degraded mode
// with an EIO streak, shows IO short-circuits, then heals the disk
// and shows a probe restores service.
func TestDiskStoreDegradedRecovery(t *testing.T) {
	fs := faultinject.NewStoreFS(nil)
	ds := mustOpen(t, t.TempDir(), fastOpts(fs)...)
	ctx := context.Background()
	ds.Put(ctx, "cfg/x", &storetest.Value{Key: "cfg/x", N: 1})

	fs.FailReads(1000, syscall.EIO)
	for i := 0; i < 2; i++ {
		if _, _, ok := ds.Get(ctx, "cfg/x"); ok {
			t.Fatal("Get succeeded through an EIO disk")
		}
	}
	if !ds.Degraded() {
		t.Fatal("store not degraded after hitting the failure threshold")
	}

	before := fs.Reads.Load()
	for i := 0; i < 2; i++ { // below the probe period: must short-circuit
		ds.Get(ctx, "cfg/x")
	}
	if got := fs.Reads.Load(); got != before {
		t.Fatalf("degraded store still issued %d reads", got-before)
	}

	fs.FailReads(0, nil)
	var recovered bool
	for i := 0; i < 20 && !recovered; i++ { // every 3rd op probes
		_, _, recovered = ds.Get(ctx, "cfg/x")
	}
	if !recovered {
		t.Fatal("store never probed its way out of degraded mode")
	}
	if ds.Degraded() {
		t.Fatal("store still reports degraded after a successful probe")
	}
	if st := ds.Stats(); st.DegradedSkips == 0 {
		t.Fatalf("stats %+v, want degraded skips counted", st)
	}
}

// TestDiskStoreENOSPC: a full disk fails writes, but Do still returns
// computed values — persistence is best-effort.
func TestDiskStoreENOSPC(t *testing.T) {
	fs := faultinject.NewStoreFS(nil)
	ds := mustOpen(t, t.TempDir(), fastOpts(fs)...)
	ctx := context.Background()

	fs.FailWrites(1000, syscall.ENOSPC)
	v, err := ds.Do(ctx, "cfg/full", func() (any, int64, error) {
		return &storetest.Value{Key: "cfg/full", N: 4}, 64, nil
	})
	if err != nil {
		t.Fatalf("Do with a full disk: %v", err)
	}
	if v.(*storetest.Value).N != 4 {
		t.Fatalf("Do returned %+v, want the computed value", v)
	}
	if st := ds.Stats(); st.WriteErrors == 0 {
		t.Fatalf("stats %+v, want write errors counted", st)
	}
}

// TestDiskStoreSlowDisk: an IO attempt slower than the per-op timeout
// is abandoned and counted as a failure, not waited on forever.
func TestDiskStoreSlowDisk(t *testing.T) {
	fs := faultinject.NewStoreFS(nil)
	ds := mustOpen(t, t.TempDir(),
		pipeline.WithFS(fs),
		pipeline.WithRetries(0, time.Millisecond),
		pipeline.WithIOTimeout(10*time.Millisecond),
		pipeline.WithFailThreshold(2, 3),
	)
	ctx := context.Background()
	ds.Put(ctx, "cfg/slow", &storetest.Value{Key: "cfg/slow", N: 2})

	fs.SetDelay(300 * time.Millisecond)
	if _, _, ok := ds.Get(ctx, "cfg/slow"); ok {
		t.Fatal("Get succeeded against a disk slower than its timeout")
	}
	if st := ds.Stats(); st.ReadErrors == 0 {
		t.Fatalf("stats %+v, want the timed-out read counted as an error", st)
	}
}

// TestOpenDiskStoreUnusableDir: an uncreatable store dir yields a
// pre-degraded store plus a typed error; the store still serves via
// compute.
func TestOpenDiskStoreUnusableDir(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := pipeline.OpenDiskStore(filepath.Join(file, "store"), storetest.Codecs())
	if err == nil {
		t.Fatal("OpenDiskStore under a regular file succeeded")
	}
	if !errors.Is(err, flowerr.ErrBadInput) {
		t.Fatalf("open error %v, want flowerr.ErrBadInput", err)
	}
	if ds == nil || !ds.Degraded() {
		t.Fatal("unusable dir must still return a degraded store")
	}
	v, derr := ds.Do(context.Background(), "cfg/k", func() (any, int64, error) {
		return &storetest.Value{Key: "cfg/k", N: 3}, 64, nil
	})
	if derr != nil || v.(*storetest.Value).N != 3 {
		t.Fatalf("degraded store Do: v=%v err=%v, want compute passthrough", v, derr)
	}
}

// TestDiskStoreUnsafeKeys: keys that could escape the store tree are
// refused (no file IO), but Do still serves them via compute.
func TestDiskStoreUnsafeKeys(t *testing.T) {
	dir := t.TempDir()
	ds := mustOpen(t, dir)
	ctx := context.Background()
	for _, key := range []string{"../../etc/passwd", "a/../b", "a//b"} {
		if ds.Put(ctx, key, &storetest.Value{Key: key, N: 1}) {
			t.Errorf("Put(%q) persisted an unsafe key", key)
		}
		if _, _, ok := ds.Get(ctx, key); ok {
			t.Errorf("Get(%q) hit on an unsafe key", key)
		}
		v, err := ds.Do(ctx, key, func() (any, int64, error) {
			return &storetest.Value{Key: key, N: 2}, 64, nil
		})
		if err != nil || v.(*storetest.Value).N != 2 {
			t.Errorf("Do(%q): v=%v err=%v, want compute passthrough", key, v, err)
		}
	}
	if entries, err := os.ReadDir(filepath.Join(dir, "objects")); err != nil || len(entries) != 0 {
		t.Fatalf("objects dir entries=%v err=%v, want none for unsafe keys", entries, err)
	}
}

// TestDiskStoreNilCodec: nodes without a codec never touch the disk.
func TestDiskStoreNilCodec(t *testing.T) {
	fs := faultinject.NewStoreFS(nil)
	codecs := func(nodeID string) pipeline.Codec {
		return nil // nothing persists
	}
	ds, err := pipeline.OpenDiskStore(t.TempDir(), codecs, pipeline.WithFS(fs))
	if err != nil {
		t.Fatalf("OpenDiskStore: %v", err)
	}
	ctx := context.Background()
	baseReads, baseWrites := fs.Reads.Load(), fs.Writes.Load()
	if ds.Put(ctx, "cfg/live", &storetest.Value{}) {
		t.Fatal("Put persisted a codec-less artifact")
	}
	if _, _, ok := ds.Get(ctx, "cfg/live"); ok {
		t.Fatal("Get hit a codec-less artifact")
	}
	if fs.Reads.Load() != baseReads || fs.Writes.Load() != baseWrites {
		t.Fatal("codec-less operations reached the filesystem")
	}
}
