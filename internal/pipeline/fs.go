package pipeline

import (
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the DiskStore runs on. It
// exists so fault-injection tests (internal/faultinject.StoreFS) can
// interpose torn writes, EIO, ENOSPC and slow-disk behavior under the
// real store logic, and so the vipilint fsconfine rule can keep every
// other compute package free of direct file IO.
//
// The contract mirrors what crash safety needs from a POSIX
// filesystem: WriteFile must not report success before the bytes are
// durable (create/truncate, write, fsync, close), and Rename must be
// atomic with respect to concurrent readers of the destination path,
// syncing the parent directory so the rename itself survives a crash.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadFile returns the full contents of path. A missing file is
	// reported with an error matching os.ErrNotExist.
	ReadFile(path string) ([]byte, error)
	// WriteFile durably creates or replaces path with data: the
	// write is fsynced before a nil return.
	WriteFile(path string, data []byte) error
	// Rename atomically moves old onto new (replacing it) and syncs
	// the parent directory of new.
	Rename(old, new string) error
	// Remove deletes path.
	Remove(path string) error
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

// osFS is the production FS over package os.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) Rename(old, new string) error {
	if err := os.Rename(old, new); err != nil {
		return err
	}
	// Sync the destination directory so the rename itself is durable.
	// Best-effort: a filesystem that cannot open directories still
	// performed the atomic rename, which is the integrity-critical
	// half.
	if d, err := os.Open(filepath.Dir(new)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

func (osFS) Remove(path string) error { return os.Remove(path) }
