package pipeline

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("artifact"), 1000)} {
		data := frame(payload)
		got, ok := unframe(data)
		if !ok {
			t.Fatalf("unframe rejected a clean frame of %d payload bytes", len(payload))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed the payload: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestUnframeRejectsCorruption(t *testing.T) {
	clean := frame([]byte("the artifact payload"))
	cases := map[string][]byte{
		"empty":          {},
		"short":          clean[:frameOverhead-1],
		"bad magic":      append([]byte("notmagic"), clean[8:]...),
		"truncated":      clean[:len(clean)-5],
		"extended":       append(append([]byte{}, clean...), 0xAA),
		"flipped bit":    flipByte(clean, len(frameMagic)+8+3),
		"flipped footer": flipByte(clean, len(clean)-1),
		"flipped length": flipByte(clean, len(frameMagic)+7),
	}
	for name, data := range cases {
		if _, ok := unframe(data); ok {
			t.Errorf("%s: unframe accepted corrupt data", name)
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xFF
	return out
}

func TestDiskStorePathValidation(t *testing.T) {
	s := &DiskStore{dir: "/store"}
	for _, bad := range []string{"", "..", "a/../b", "a//b", "a/", "/a", "a b", "a\x00b", "café"} {
		if p, err := s.path(bad); err == nil {
			t.Errorf("key %q: accepted as %q, want rejection", bad, p)
		}
	}
	for _, good := range []string{"a", "cfg-1/mc/A", "f00d/power/vertical/2/B", "x_1.2-3"} {
		if _, err := s.path(good); err != nil {
			t.Errorf("key %q: rejected: %v", good, err)
		}
	}
}
