package pipeline

import (
	"strings"

	"vipipe/internal/flowerr"
)

// Validate statically checks the structural invariants of the graph:
// node keys are non-empty and match their registration, computes are
// present, every edge points at a defined node, and the dependency
// relation is acyclic. Add enforces all of this during normal
// construction; Validate is the defense for graphs assembled any
// other way (deserialized shapes, test doubles, future builders) and
// runs once per graph at the scheduler entry point. Errors match
// flowerr.ErrBadInput.
func (g *Graph) Validate() error {
	for _, id := range g.Nodes() { // lexical order: deterministic reporting
		n := g.nodes[id]
		if id == "" {
			return flowerr.BadInputf("pipeline: graph %q has a node with an empty key", g.prefix)
		}
		if n == nil {
			return flowerr.BadInputf("pipeline: node %q is nil", id)
		}
		if n.ID != id {
			return flowerr.BadInputf("pipeline: node registered under key %q declares ID %q — duplicate or aliased registration", id, n.ID)
		}
		if n.Compute == nil {
			return flowerr.BadInputf("pipeline: node %q has no compute", id)
		}
		for _, d := range n.Deps {
			if _, ok := g.nodes[d]; !ok {
				return flowerr.BadInputf("pipeline: node %q depends on undefined node %q", id, d)
			}
		}
	}
	return g.checkAcyclic()
}

// checkAcyclic runs a colored DFS over the dependency edges and
// reports the first cycle found, spelled out node by node.
func (g *Graph) checkAcyclic() error {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[string]int, len(g.nodes))
	var path []string
	var visit func(id string) error
	visit = func(id string) error {
		switch color[id] {
		case black:
			return nil
		case gray:
			// Close the loop for the message: a -> b -> a.
			i := 0
			for ; i < len(path) && path[i] != id; i++ {
			}
			cycle := append(append([]string{}, path[i:]...), id)
			return flowerr.BadInputf("pipeline: dependency cycle: %s", strings.Join(cycle, " -> "))
		}
		color[id] = gray
		path = append(path, id)
		for _, d := range g.nodes[id].Deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		path = path[:len(path)-1]
		color[id] = black
		return nil
	}
	for _, id := range g.Nodes() {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// validate memoizes Validate for the scheduler: the graph is immutable
// after construction, so the answer cannot change between requests.
func (g *Graph) validate() error {
	g.validateOnce.Do(func() { g.validateErr = g.Validate() })
	return g.validateErr
}
