package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vipipe/internal/flowerr"
)

func noopCompute(ctx context.Context, deps map[string]any) (any, error) { return nil, nil }

// validGraph builds a small well-formed diamond: a <- b, a <- c, {b,c} <- d.
func validGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("test", NewMemStore())
	g.MustAdd(Node{ID: "a", Compute: noopCompute})
	g.MustAdd(Node{ID: "b", Deps: []string{"a"}, Compute: noopCompute})
	g.MustAdd(Node{ID: "c", Deps: []string{"a"}, Compute: noopCompute})
	g.MustAdd(Node{ID: "d", Deps: []string{"b", "c"}, Compute: noopCompute})
	return g
}

func TestValidateOK(t *testing.T) {
	if err := validGraph(t).Validate(); err != nil {
		t.Fatalf("Validate() on a well-formed graph: %v", err)
	}
}

// Each corruption below is unreachable through Add, so the tests reach
// into g.nodes directly — exactly the class of graph Validate guards
// against.

func wantBadInput(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("Validate() = nil, want error containing %q", frag)
	}
	if !errors.Is(err, flowerr.ErrBadInput) {
		t.Errorf("Validate() error %v does not match flowerr.ErrBadInput", err)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("Validate() = %q, want substring %q", err, frag)
	}
}

func TestValidateEmptyKey(t *testing.T) {
	g := validGraph(t)
	g.nodes[""] = &Node{ID: "", Compute: noopCompute}
	wantBadInput(t, g.Validate(), "empty key")
}

func TestValidateNilNode(t *testing.T) {
	g := validGraph(t)
	g.nodes["z"] = nil
	wantBadInput(t, g.Validate(), `node "z" is nil`)
}

func TestValidateKeyIDMismatch(t *testing.T) {
	g := validGraph(t)
	// Same node registered under a second key: a duplicate in disguise.
	g.nodes["alias"] = g.nodes["a"]
	wantBadInput(t, g.Validate(), "duplicate or aliased")
}

func TestValidateNilCompute(t *testing.T) {
	g := validGraph(t)
	g.nodes["z"] = &Node{ID: "z"}
	wantBadInput(t, g.Validate(), `node "z" has no compute`)
}

func TestValidateUndefinedDep(t *testing.T) {
	g := validGraph(t)
	g.nodes["d"].Deps = append(g.nodes["d"].Deps, "ghost")
	wantBadInput(t, g.Validate(), `depends on undefined node "ghost"`)
}

func TestValidateCycle(t *testing.T) {
	g := validGraph(t)
	g.nodes["a"].Deps = []string{"d"} // a -> d -> b -> a
	err := g.Validate()
	wantBadInput(t, err, "dependency cycle")
	// The message spells out a closed path.
	msg := err.Error()
	if !strings.Contains(msg, " -> ") {
		t.Errorf("cycle error %q does not spell out the path", msg)
	}
}

func TestValidateSelfCycle(t *testing.T) {
	g := validGraph(t)
	g.nodes["a"].Deps = []string{"a"}
	wantBadInput(t, g.Validate(), "dependency cycle: a -> a")
}

func TestRequestSurfacesValidateError(t *testing.T) {
	g := validGraph(t)
	g.nodes["d"].Deps = append(g.nodes["d"].Deps, "ghost")
	if _, err := g.Request(context.Background(), "d"); !errors.Is(err, flowerr.ErrBadInput) {
		t.Fatalf("Request on invalid graph = %v, want flowerr.ErrBadInput", err)
	}
	// The result is memoized: a second request fails identically
	// without re-walking the graph.
	_, err1 := g.Request(context.Background(), "d")
	_, err2 := g.Request(context.Background(), "d")
	if err1 == nil || err1 != err2 {
		t.Fatalf("memoized validation: got %v then %v, want the same error", err1, err2)
	}
}
