package pipeline

import (
	"context"

	"vipipe/internal/obs"
)

// Tiered composes an in-memory front tier (MemStore, or the service
// LRU cache — anything implementing Store) over a DiskStore:
// read-through on miss, write-through on compute. The memory tier
// keeps its own singleflight semantics, so per-key concurrency control
// stays where it already lives; the disk tier only ever sees the one
// caller the front tier elected to compute.
//
// A disk hit surfaces to the graph as a cache hit (the compute closure
// returned without recomputing) with a "tier: disk" attribute on the
// node span; a memory hit never reaches this layer at all.
type Tiered struct {
	mem  Store
	disk *DiskStore
}

// NewTiered layers mem over disk. Both must be non-nil; a caller
// without a disk dir should use mem directly.
func NewTiered(mem Store, disk *DiskStore) *Tiered {
	return &Tiered{mem: mem, disk: disk}
}

// Disk exposes the disk tier for stats/degraded reporting.
func (t *Tiered) Disk() *DiskStore { return t.disk }

// Do implements Store. The front tier runs its singleflight; inside
// the elected compute, Do first consults the disk tier and only falls
// back to the real compute on a disk miss, persisting the fresh
// artifact best-effort afterwards.
func (t *Tiered) Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, error) {
	return t.mem.Do(ctx, key, func() (any, int64, error) {
		if v, size, ok := t.disk.Get(ctx, key); ok {
			obs.Current(ctx).SetAttr("tier", "disk")
			return v, size, nil
		}
		v, size, err := compute()
		if err == nil {
			t.disk.Put(ctx, key, v)
		}
		return v, size, err
	})
}
