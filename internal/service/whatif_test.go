package service

import (
	"net/http"
	"testing"

	"vipipe/internal/service/wire"
)

// TestServiceWhatIf exercises the whatif job kind end to end: one
// submission carrying composed queries plus one out-of-domain query,
// answered against a single cached timing model, with the two serving
// paths split in /metrics.
func TestServiceWhatIf(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 16)

	req := Request{
		Kind:     "whatif",
		Strategy: "vertical",
		Position: "B",
		Queries: []WhatIfSpec{
			{Raise: 0},
			{Raise: 1, Shifters: true},
			{Raise: 1, Overlay: &OverlaySpec{XMM: 0.3, YMM: 0.3, RMM: 0.2, DeltaFrac: 0.05}},
			// DeltaFrac far beyond the model's validity domain forces
			// the exact-STA fallback.
			{Raise: 0, Overlay: &OverlaySpec{XMM: 0.3, YMM: 0.3, RMM: 0.2, DeltaFrac: 0.5}},
		},
		Config: tinySpec,
	}
	snap := submit(t, ts.URL, req, http.StatusAccepted)
	done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobDone {
		t.Fatalf("job finished %s (%s); want done", done.State, done.Error)
	}

	rr, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result = %d; want 200", rr.StatusCode)
	}
	var res wire.WhatIf
	decodeBody(t, rr, &res)
	if res.Strategy != "vertical" || res.Position != "B" || res.Islands == 0 {
		t.Fatalf("result header = %+v; want vertical/B with islands", res)
	}
	if len(res.Answers) != len(req.Queries) {
		t.Fatalf("got %d answers; want %d", len(res.Answers), len(req.Queries))
	}
	for i, ans := range res.Answers[:3] {
		if ans.Exact {
			t.Errorf("answer %d took the fallback; want composed", i)
		}
		if ans.BoundPS <= 0 || ans.CritPS <= 0 {
			t.Errorf("answer %d = %+v; want positive crit and bound", i, ans)
		}
	}
	if !res.Answers[1].Shifters || res.Answers[1].Crossings == 0 {
		t.Errorf("shifter answer = %+v; want crossings folded in", res.Answers[1])
	}
	last := res.Answers[3]
	if !last.Exact || last.BoundPS != 0 {
		t.Errorf("out-of-domain answer = %+v; want exact fallback with zero bound", last)
	}

	ms := metricsSnapshot(t, ts.URL)
	if got := ms.Counters["whatif.composed"]; got != 3 {
		t.Errorf("whatif.composed = %d; want 3", got)
	}
	if got := ms.Counters["whatif.fallback"]; got != 1 {
		t.Errorf("whatif.fallback = %d; want 1", got)
	}
}

// TestServiceWhatIfValidation pins the synchronous rejections of the
// whatif kind.
func TestServiceWhatIfValidation(t *testing.T) {
	e := NewEngine(NewCache(1<<20), nil)
	bad := []Request{
		{Kind: "whatif", Strategy: "diagonal", Position: "B",
			Queries: []WhatIfSpec{{Raise: 0}}, Config: tinySpec},
		{Kind: "whatif", Strategy: "vertical", Position: "Z",
			Queries: []WhatIfSpec{{Raise: 0}}, Config: tinySpec},
		{Kind: "whatif", Strategy: "vertical", Position: "B", Config: tinySpec},
		{Kind: "whatif", Strategy: "vertical", Position: "B",
			Queries: []WhatIfSpec{{Raise: -2}}, Config: tinySpec},
		{Kind: "whatif", Strategy: "vertical", Position: "B",
			Queries: []WhatIfSpec{{Raise: 0, Overlay: &OverlaySpec{RMM: -1}}}, Config: tinySpec},
	}
	for i, req := range bad {
		if err := e.Validate(req); err == nil {
			t.Errorf("request %d validated; want rejection", i)
		}
	}
	ok := Request{Kind: "whatif", Strategy: "vertical", Position: "B",
		Queries: []WhatIfSpec{{Raise: 2, Shifters: true}}, Config: tinySpec}
	if err := e.Validate(ok); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}
