package service

import (
	"net/http"
	"testing"

	"vipipe/internal/service/wire"
)

// fieldReq is the small field sweep the tests share: a 3x3 exposure
// grid, two shards per position, a nine-point yield axis over the
// reduced core.
func fieldReq() Request {
	return Request{Kind: "field_sweep", Grid: "3x3", Shards: 2, Points: 9, Config: tinySpec}
}

func runFieldJob(t *testing.T, base string, req Request) (JobSnapshot, wire.Surface) {
	t.Helper()
	snap := submit(t, base, req, http.StatusAccepted)
	done := waitState(t, base, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobDone {
		t.Fatalf("field_sweep job = %s (%s); want done", done.State, done.Error)
	}
	rr, err := http.Get(base + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusOK {
		rr.Body.Close()
		t.Fatalf("result = %d; want 200", rr.StatusCode)
	}
	var surf wire.Surface
	decodeBody(t, rr, &surf)
	return done, surf
}

func TestServiceFieldSweep(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 16)
	req := fieldReq()

	done, surf := runFieldJob(t, ts.URL, req)

	if surf.NX != 3 || surf.NY != 3 || len(surf.Positions) != 9 {
		t.Fatalf("surface = %dx%d with %d positions; want 3x3 with 9", surf.NX, surf.NY, len(surf.Positions))
	}
	if len(surf.PeriodsPS) != req.Points {
		t.Fatalf("axis = %d points; want %d", len(surf.PeriodsPS), req.Points)
	}
	for _, p := range surf.Positions {
		if p.Samples != int64(tinySpec.MCSamples) || p.Shards != req.Shards {
			t.Fatalf("position %s: %d samples over %d shards; want %d over %d",
				p.Position, p.Samples, p.Shards, tinySpec.MCSamples, req.Shards)
		}
		if len(p.Yields) != req.Points {
			t.Fatalf("position %s: %d yields; want %d", p.Position, len(p.Yields), req.Points)
		}
	}

	// The finished snapshot carries the shard progress the worker
	// reported while running.
	total := 9 * req.Shards
	if done.Progress == nil || done.Progress.Done != total || done.Progress.Total != total {
		t.Fatalf("progress = %+v; want %d/%d", done.Progress, total, total)
	}

	// A cold sweep computes every shard.
	ms := metricsSnapshot(t, ts.URL)
	if ms.Counters["yield.shards_computed"] != int64(total) {
		t.Fatalf("shards_computed = %d; want %d (counters %v)",
			ms.Counters["yield.shards_computed"], total, ms.Counters)
	}
	if ms.Latency["artifact.field_shard"].Count != int64(total) {
		t.Fatalf("field_shard latency count = %d; want %d",
			ms.Latency["artifact.field_shard"].Count, total)
	}
}

func TestServiceFieldSweepWarmAndDirty(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 16)
	req := fieldReq()
	total := 9 * req.Shards

	runFieldJob(t, ts.URL, req)

	// An identical re-sweep resolves every shard from the store.
	_, warm := runFieldJob(t, ts.URL, req)
	ms := metricsSnapshot(t, ts.URL)
	if ms.Counters["yield.shards_cached"] != int64(total) {
		t.Fatalf("warm shards_cached = %d; want %d", ms.Counters["yield.shards_cached"], total)
	}
	if ms.Counters["yield.shards_computed"] != int64(total) {
		t.Fatalf("warm shards_computed = %d; want unchanged %d", ms.Counters["yield.shards_computed"], total)
	}
	if len(warm.Positions) != 9 {
		t.Fatalf("warm surface has %d positions; want 9", len(warm.Positions))
	}

	// An overlay at one position re-keys exactly that position's
	// shards; the other eight keep hitting the store.
	dirty := fieldReq()
	dirty.Overlays = []OverlaySpec{{Pos: "r1c1", XMM: 1, YMM: 1, RMM: 2, DeltaFrac: 0.05}}
	runFieldJob(t, ts.URL, dirty)
	ms = metricsSnapshot(t, ts.URL)
	if got := ms.Counters["yield.shards_computed"]; got != int64(total+req.Shards) {
		t.Fatalf("after overlay: shards_computed = %d; want %d (only f1_1 recomputed)",
			got, total+req.Shards)
	}
	if got := ms.Counters["yield.shards_cached"]; got != int64(2*total-req.Shards) {
		t.Fatalf("after overlay: shards_cached = %d; want %d", got, 2*total-req.Shards)
	}
}

func TestServiceFieldSweepCancel(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 4)

	req := Request{Kind: "field_sweep", Grid: "2x2", Shards: 2, Config: slowSpec}
	snap := submit(t, ts.URL, req, http.StatusAccepted)
	waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State == JobRunning })

	cr := postJSON(t, ts.URL+"/jobs/"+snap.ID+"/cancel", struct{}{})
	cr.Body.Close()
	done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobCancelled || done.Class != "cancelled" {
		t.Fatalf("after cancel: state %s class %q; want cancelled/cancelled", done.State, done.Class)
	}
}

func TestServiceFieldSweepRejectsBadPlans(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 4)

	cases := []struct {
		name string
		req  Request
	}{
		{"bad grid", Request{Kind: "field_sweep", Grid: "0x3", Config: tinySpec}},
		{"more shards than samples", Request{Kind: "field_sweep", Grid: "2x2", Shards: 1000, Config: tinySpec}},
		{"overlay off grid", Request{Kind: "field_sweep", Grid: "2x2",
			Overlays: []OverlaySpec{{Pos: "nope", RMM: 1, DeltaFrac: 0.1}}, Config: tinySpec}},
		{"overlay no radius", Request{Kind: "field_sweep", Grid: "2x2",
			Overlays: []OverlaySpec{{Pos: "r0c0", DeltaFrac: 0.1}}, Config: tinySpec}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/jobs", tc.req)
		var eb struct {
			Class string `json:"class"`
		}
		code := resp.StatusCode
		decodeBody(t, resp, &eb)
		if code != http.StatusBadRequest || eb.Class != "bad-input" {
			t.Errorf("%s: status %d class %q; want 400 bad-input", tc.name, code, eb.Class)
		}
	}
}
