package service

import (
	"testing"
	"time"
)

// histClock advances a settable fake clock for the history ring.
type histClock struct{ t time.Time }

func (c *histClock) now() time.Time          { return c.t }
func (c *histClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newHistClock() *histClock               { return &histClock{t: time.Unix(1000, 0)} }
func snapAt(jobs JobCounters, hits, misses int64) Snapshot {
	return Snapshot{
		Jobs:  jobs,
		Cache: CacheStatsView{CacheStats: CacheStats{Hits: hits, Misses: misses}},
		Store: StoreStatus{Mode: "ok"},
	}
}

func TestHistoryRingEviction(t *testing.T) {
	clk := newHistClock()
	h := NewMetricsHistoryWithClock(3, clk.now)
	for i := 0; i < 5; i++ {
		h.Record(snapAt(JobCounters{Submitted: int64(i)}, 0, 0))
		clk.advance(time.Second)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	v := h.View(0)
	if len(v.Points) != 3 || v.Points[0].Jobs.Submitted != 2 || v.Points[2].Jobs.Submitted != 4 {
		t.Fatalf("points = %+v, want submitted 2..4 oldest first", v.Points)
	}
}

func TestHistoryWindowAndRates(t *testing.T) {
	clk := newHistClock()
	h := NewMetricsHistoryWithClock(16, clk.now)
	// t=0: 0 jobs, cold cache. t=+10s: 20 submitted / 15 completed,
	// 30 hits / 10 misses. One sample in between to prove windowing.
	h.Record(snapAt(JobCounters{}, 0, 0))
	clk.advance(5 * time.Second)
	h.Record(snapAt(JobCounters{Submitted: 8, Completed: 5}, 10, 5))
	clk.advance(5 * time.Second)
	s := snapAt(JobCounters{Submitted: 20, Completed: 15, QueueDepth: 2, WorkersBusy: 1}, 30, 10)
	s.Counters = map[string]int64{"yield.shards_computed": 100}
	h.Record(s)

	v := h.View(0)
	if len(v.Points) != 3 || v.Rates == nil {
		t.Fatalf("view = %+v", v)
	}
	r := v.Rates
	if r.SpanS != 10 {
		t.Fatalf("span = %v, want 10s", r.SpanS)
	}
	if r.SubmittedPerS != 2.0 || r.CompletedPerS != 1.5 {
		t.Errorf("rates = %+v, want 2.0 submitted/s and 1.5 completed/s", r)
	}
	// Window traffic: 30 hits + 10 misses from zero => 0.75.
	if r.WindowHitRate != 0.75 {
		t.Errorf("window hit rate = %v, want 0.75", r.WindowHitRate)
	}
	if r.QueueDepth != 2 || r.WorkersBusy != 1 {
		t.Errorf("instantaneous tail = %+v", r)
	}
	if got := r.CounterPerS["yield.shards_computed"]; got != 10 {
		t.Errorf("counter rate = %v, want 10/s", got)
	}

	// A 6s window keeps only the last two points (5s apart).
	v = h.View(6 * time.Second)
	if len(v.Points) != 2 {
		t.Fatalf("6s window kept %d points, want 2", len(v.Points))
	}
	if v.Rates.SubmittedPerS != (20.0-8.0)/5.0 {
		t.Errorf("windowed submit rate = %v", v.Rates.SubmittedPerS)
	}

	// A window holding at most one point reports no rates.
	v = h.View(time.Second)
	if len(v.Points) != 1 || v.Rates != nil {
		t.Fatalf("1s window view = %+v, want one point and nil rates", v)
	}
}

func TestHistoryDegradedTransitions(t *testing.T) {
	clk := newHistClock()
	h := NewMetricsHistoryWithClock(8, clk.now)
	for _, degraded := range []bool{false, true, true, false, true} {
		s := snapAt(JobCounters{}, 0, 0)
		s.Degraded = degraded
		if degraded {
			s.Store.Mode = "degraded"
		}
		h.Record(s)
		clk.advance(time.Second)
	}
	r := h.View(0).Rates
	if r == nil || r.DegradedEvents != 2 {
		t.Fatalf("rates = %+v, want 2 degraded transitions", r)
	}
	if !r.Degraded {
		t.Error("tail degraded flag lost")
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *MetricsHistory
	h.Record(Snapshot{})
	if h.Len() != 0 {
		t.Error("nil history has points")
	}
	v := h.View(time.Minute)
	if len(v.Points) != 0 || v.Rates != nil {
		t.Errorf("nil view = %+v", v)
	}
}
