package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vipipe/internal/flowerr"
)

// JobState is the lifecycle of a submitted job.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether no further transition can happen.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is one submitted request moving through the worker pool.
type Job struct {
	ID  string
	Req Request

	mu       sync.Mutex
	state    JobState
	err      error
	result   any
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	done chan struct{}
}

// Snapshot is the frontend view of a job.
type JobSnapshot struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    JobState  `json:"state"`
	Error    string    `json:"error,omitempty"`
	Class    string    `json:"error_class,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

// Snapshot returns a consistent copy of the job's visible state.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobSnapshot{
		ID:       j.ID,
		Kind:     j.Req.Kind,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.Class = flowerr.Class(j.err)
	}
	return s
}

// Result returns the job's outcome once terminal: (result, nil) for a
// done job, (nil, err) for a failed or cancelled one, and a
// result-not-ready step-order error (HTTP 409) while the job is still
// queued or running.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.state.Terminal():
		return nil, flowerr.StepOrderf("service: job %s is %s, result not ready", j.ID, j.state)
	case j.err != nil:
		return nil, j.err
	default:
		return j.result, nil
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Manager owns the bounded worker pool and the job table. Submissions
// queue; workers run them through the engine with a per-job
// context.Context wired into the flow's cancellation plumbing; results
// stay in the table (completed results survive a drain) until the
// process exits.
type Manager struct {
	eng     *Engine
	m       *Metrics
	workers int

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool
	queue    chan *Job

	wg sync.WaitGroup
}

// NewManager sizes the pool. workers <= 0 defaults to 2; queueCap <= 0
// defaults to 64.
func NewManager(eng *Engine, m *Metrics, workers, queueCap int) *Manager {
	if workers <= 0 {
		workers = 2
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	mgr := &Manager{
		eng:     eng,
		m:       m,
		workers: workers,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, queueCap),
	}
	for i := 0; i < workers; i++ {
		mgr.wg.Add(1)
		go mgr.worker()
	}
	return mgr
}

// Workers returns the pool size.
func (m *Manager) Workers() int { return m.workers }

// QueueDepth returns the number of jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Submission failure classes, mapped by flowerr.HTTPStatus through
// their sentinel (both are server-availability conditions, not
// taxonomy failures, so the frontend maps them separately).
var (
	// ErrDraining rejects submissions after drain began.
	ErrDraining = fmt.Errorf("service: draining, not accepting jobs")
	// ErrQueueFull rejects submissions when the queue is at capacity.
	ErrQueueFull = fmt.Errorf("service: job queue full")
)

// Submit validates and enqueues a request.
func (m *Manager) Submit(req Request) (*Job, error) {
	if err := m.eng.Validate(req); err != nil {
		m.m.JobsRejected.Add(1)
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.m.JobsRejected.Add(1)
		return nil, ErrDraining
	}
	m.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%06d", m.nextID),
		Req:     req,
		state:   JobQueued,
		created: time.Now(), //lint:ignore determinism job lifecycle timestamps are operational metadata, not artifact state
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		m.nextID-- // never existed
		m.m.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.m.JobsSubmitted.Add(1)
	return job, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every job in submission order.
func (m *Manager) List() []JobSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobSnapshot, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].Snapshot())
	}
	return out
}

// Cancel requests cancellation: a queued job terminates immediately
// with an ErrCancelled-classified error; a running job has its context
// cancelled and terminates when the flow step observes it; a terminal
// job is left untouched. The returned snapshot reflects the state
// after the request.
func (m *Manager) Cancel(id string) (JobSnapshot, bool) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobSnapshot{}, false
	}
	job.mu.Lock()
	switch job.state {
	case JobQueued:
		job.state = JobCancelled
		job.err = flowerr.Cancelledf("service: job %s cancelled while queued", job.ID)
		job.finished = time.Now() //lint:ignore determinism job lifecycle timestamps are operational metadata, not artifact state
		close(job.done)
		m.m.JobsCancelled.Add(1)
	case JobRunning:
		job.cancel() // worker finishes the bookkeeping
	}
	job.mu.Unlock()
	return job.Snapshot(), true
}

// worker pulls jobs until the queue closes on drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		job.mu.Lock()
		if job.state != JobQueued { // cancelled while queued
			job.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		job.state = JobRunning
		job.started = time.Now() //lint:ignore determinism job lifecycle timestamps are operational metadata, not artifact state
		job.cancel = cancel
		job.mu.Unlock()

		m.m.WorkersBusy.Add(1)
		res, err := m.eng.Run(ctx, job.Req)
		m.m.WorkersBusy.Add(-1)
		cancel()

		job.mu.Lock()
		job.finished = time.Now() //lint:ignore determinism job lifecycle timestamps are operational metadata, not artifact state
		switch {
		case err == nil:
			job.state = JobDone
			job.result = res
			m.m.JobsCompleted.Add(1)
		case flowerr.Class(err) == "cancelled":
			job.state = JobCancelled
			job.err = err
			m.m.JobsCancelled.Add(1)
		default:
			job.state = JobFailed
			job.err = err
			m.m.JobsFailed.Add(1)
		}
		m.m.ObserveStep("job."+job.Req.Kind, job.finished.Sub(job.started))
		close(job.done)
		job.mu.Unlock()
	}
}

// Drain stops accepting submissions, lets the workers finish every
// queued and running job, and returns when the pool is idle. Completed
// results remain fetchable afterwards. If ctx expires first, the
// remaining running jobs are cancelled, the pool is awaited, and the
// ctx error is returned.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, job := range m.jobs {
			job.mu.Lock()
			if job.state == JobRunning {
				job.cancel()
			}
			job.mu.Unlock()
		}
		m.mu.Unlock()
		<-idle
		return flowerr.Cancelledf("service: drain deadline expired, in-flight jobs cancelled: %w", ctx.Err())
	}
}
