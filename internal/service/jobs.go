package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
)

// JobState is the lifecycle of a submitted job.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether no further transition can happen.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is one submitted request moving through the worker pool.
type Job struct {
	ID  string
	Req Request

	mu       sync.Mutex
	state    JobState
	err      error
	result   any
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	progress *Progress

	done chan struct{}
}

// setProgress records a completion update; the worker threads it into
// the request context via WithProgress.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	j.progress = &Progress{Done: done, Total: total}
	j.mu.Unlock()
}

// Snapshot is the frontend view of a job.
type JobSnapshot struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    JobState  `json:"state"`
	Error    string    `json:"error,omitempty"`
	Class    string    `json:"error_class,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Degraded mirrors the durable store's health at snapshot time:
	// results are still correct, but artifacts are not persisting.
	// Stamped by the frontend (the job itself has no engine view).
	Degraded bool `json:"degraded,omitempty"`
	// Progress reports shard completion for field sweeps, nil for
	// kinds that do not report it.
	Progress *Progress `json:"progress,omitempty"`
}

// Snapshot returns a consistent copy of the job's visible state.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobSnapshot{
		ID:       j.ID,
		Kind:     j.Req.Kind,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.Class = flowerr.Class(j.err)
	}
	if j.progress != nil {
		p := *j.progress
		s.Progress = &p
	}
	return s
}

// Result returns the job's outcome once terminal: (result, nil) for a
// done job, (nil, err) for a failed or cancelled one, and a
// result-not-ready step-order error (HTTP 409) while the job is still
// queued or running.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.state.Terminal():
		return nil, flowerr.StepOrderf("service: job %s is %s, result not ready", j.ID, j.state)
	case j.err != nil:
		return nil, j.err
	default:
		return j.result, nil
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Manager owns the bounded worker pool and the job table. Submissions
// queue; workers run them through the engine with a per-job
// context.Context wired into the flow's cancellation plumbing; results
// stay in the table (completed results survive a drain) until the
// process exits.
type Manager struct {
	eng     *Engine
	m       *Metrics
	workers int
	rec     *obs.Recorder
	log     *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool
	queue    chan *Job
	// queuedBy counts queued (not yet dequeued) jobs per client for
	// admission fairness; clientQuota bounds each count.
	queuedBy    map[string]int
	clientQuota int

	// hub broadcasts Events to /events subscribers; pubMu orders
	// concurrent publishers so seq matches delivery order.
	hub      *obs.Hub[Event]
	pubMu    sync.Mutex
	seq      int64
	eventBuf int

	wg sync.WaitGroup
}

// ManagerOption configures a Manager beyond the pool sizing.
type ManagerOption func(*Manager)

// WithRecorder installs a flight recorder: every job's trace is added
// on completion, serving the /debug/runs and /debug/trace endpoints.
func WithRecorder(r *obs.Recorder) ManagerOption {
	return func(m *Manager) { m.rec = r }
}

// WithLogger routes the manager's structured job-lifecycle logs. The
// default discards them.
func WithLogger(l *slog.Logger) ManagerOption {
	return func(m *Manager) {
		if l != nil {
			m.log = l
		}
	}
}

// WithClientQuota bounds how many jobs one client (Request.Client /
// X-Client header; empty names share the anonymous bucket) may have
// queued at once — per-client fairness, so a burst from one submitter
// cannot occupy the whole queue. The default is the queue capacity,
// i.e. no per-client bound; cmd/vipiped enables a quarter of the
// queue via its -client-quota flag.
func WithClientQuota(n int) ManagerOption {
	return func(m *Manager) {
		if n > 0 {
			m.clientQuota = n
		}
	}
}

// WithEventBuffer sizes each /events subscriber's buffer (default
// 256 events). A subscriber that falls further behind than its buffer
// loses events — counted in events.dropped — rather than ever
// backpressuring the workers.
func WithEventBuffer(n int) ManagerOption {
	return func(m *Manager) {
		if n > 0 {
			m.eventBuf = n
		}
	}
}

// NewManager sizes the pool. workers <= 0 defaults to 2; queueCap <= 0
// defaults to 64.
func NewManager(eng *Engine, m *Metrics, workers, queueCap int, opts ...ManagerOption) *Manager {
	if workers <= 0 {
		workers = 2
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	mgr := &Manager{
		eng:         eng,
		m:           m,
		workers:     workers,
		log:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		jobs:        make(map[string]*Job),
		queue:       make(chan *Job, queueCap),
		queuedBy:    make(map[string]int),
		clientQuota: queueCap,
	}
	for _, opt := range opts {
		opt(mgr)
	}
	mgr.hub = obs.NewHub[Event](mgr.eventBuf, func() { m.Inc("events.dropped") })
	for i := 0; i < workers; i++ {
		mgr.wg.Add(1)
		go mgr.worker()
	}
	return mgr
}

// Recorder returns the flight recorder wired in with WithRecorder, or
// nil.
func (m *Manager) Recorder() *obs.Recorder { return m.rec }

// Workers returns the pool size.
func (m *Manager) Workers() int { return m.workers }

// QueueDepth returns the number of jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Submission failure classes, mapped by flowerr.HTTPStatus through
// their sentinel (both are server-availability conditions, not
// taxonomy failures, so the frontend maps them separately).
var (
	// ErrDraining rejects submissions after drain began.
	ErrDraining = fmt.Errorf("service: draining, not accepting jobs")
	// ErrQueueFull rejects submissions when the queue is at capacity.
	ErrQueueFull = fmt.Errorf("service: job queue full")
	// ErrClientSaturated rejects a submission whose client already has
	// its fair share of the queue; other clients can still submit.
	ErrClientSaturated = fmt.Errorf("service: client queue quota reached")
)

// Submit validates and enqueues a request. Admission is two-tier:
// the bounded queue is the global capacity limit (ErrQueueFull), and
// the per-client quota keeps one bursty submitter from occupying it
// all (ErrClientSaturated). Both map to HTTP 429 with a Retry-After;
// each has its own /metrics counter.
func (m *Manager) Submit(req Request) (*Job, error) {
	if err := m.eng.Validate(req); err != nil {
		m.m.JobsRejected.Add(1)
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.m.JobsRejected.Add(1)
		return nil, ErrDraining
	}
	// The quota only bounds identified clients: anonymous submissions
	// are indistinguishable from each other, so they share the global
	// queue bound instead of a fairness bucket.
	if req.Client != "" && m.queuedBy[req.Client] >= m.clientQuota {
		m.m.JobsRejected.Add(1)
		m.m.JobsThrottled.Add(1)
		return nil, fmt.Errorf("%w: client %q has %d jobs queued (quota %d)",
			ErrClientSaturated, req.Client, m.queuedBy[req.Client], m.clientQuota)
	}
	m.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%06d", m.nextID),
		Req:     req,
		state:   JobQueued,
		created: obs.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		m.nextID-- // never existed
		m.m.JobsRejected.Add(1)
		m.m.JobsQueueFull.Add(1)
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, len(m.queue))
	}
	m.queuedBy[req.Client]++
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.m.JobsSubmitted.Add(1)
	m.log.Info("job submitted", "job", job.ID, "kind", req.Kind, "client", req.Client, "queue_depth", len(m.queue))
	m.publish(Event{Type: EventQueued, Job: job.ID, Kind: req.Kind, State: JobQueued})
	return job, nil
}

// RetryAfterSeconds estimates when a rejected submitter should try
// again: the queue depth paced by the worker pool, clamped to [1,60]
// seconds. Deliberately coarse — it sizes an HTTP Retry-After header,
// not a scheduler.
func (m *Manager) RetryAfterSeconds() int {
	s := 1 + m.QueueDepth()/m.workers
	if s > 60 {
		s = 60
	}
	return s
}

// Degraded reports whether the engine's durable store (if any) is in
// degraded mode; surfaced on /metrics and every job snapshot.
func (m *Manager) Degraded() bool { return m.eng.Degraded() }

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every job in submission order.
func (m *Manager) List() []JobSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobSnapshot, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].Snapshot())
	}
	return out
}

// Cancel requests cancellation: a queued job terminates immediately
// with an ErrCancelled-classified error; a running job has its context
// cancelled and terminates when the flow step observes it; a terminal
// job is left untouched. The returned snapshot reflects the state
// after the request.
func (m *Manager) Cancel(id string) (JobSnapshot, bool) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobSnapshot{}, false
	}
	job.mu.Lock()
	switch job.state {
	case JobQueued:
		job.state = JobCancelled
		job.err = flowerr.Cancelledf("service: job %s cancelled while queued", job.ID)
		job.finished = obs.Now()
		close(job.done)
		m.m.JobsCancelled.Add(1)
		m.log.Info("job cancelled while queued", "job", job.ID, "kind", job.Req.Kind)
		m.publish(Event{Type: EventCancelled, Job: job.ID, Kind: job.Req.Kind, State: JobCancelled, Error: "cancelled"})
	case JobRunning:
		job.cancel() // worker finishes the bookkeeping
	}
	job.mu.Unlock()
	return job.Snapshot(), true
}

// worker pulls jobs until the queue closes on drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.mu.Lock()
		if m.queuedBy[job.Req.Client] <= 1 {
			delete(m.queuedBy, job.Req.Client)
		} else {
			m.queuedBy[job.Req.Client]--
		}
		m.mu.Unlock()
		job.mu.Lock()
		if job.state != JobQueued { // cancelled while queued
			job.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		job.state = JobRunning
		job.started = obs.Now()
		job.cancel = cancel
		job.mu.Unlock()
		m.log.Info("job started", "job", job.ID, "kind", job.Req.Kind)
		m.publish(Event{Type: EventRunning, Job: job.ID, Kind: job.Req.Kind, State: JobRunning})

		// Each job runs under its own tracer; the finished trace goes
		// to the flight recorder for /debug/trace/{id}.
		tr := obs.NewTracer(job.ID, job.Req.Kind)
		ctx = obs.WithTracer(ctx, tr)
		ctx, root := obs.Start(ctx, "job."+job.Req.Kind)
		ctx = WithProgress(ctx, job.setProgress)
		ctx = WithShardEvents(ctx, func(se ShardEvent) {
			sh := se
			m.publish(Event{Type: EventShard, Job: job.ID, Kind: job.Req.Kind, State: JobRunning, Shard: &sh})
		})

		m.m.WorkersBusy.Add(1)
		res, err := m.eng.Run(ctx, job.Req)
		m.m.WorkersBusy.Add(-1)
		cancel()

		job.mu.Lock()
		job.finished = obs.Now()
		switch {
		case err == nil:
			job.state = JobDone
			job.result = res
			m.m.JobsCompleted.Add(1)
		case flowerr.Class(err) == "cancelled":
			job.state = JobCancelled
			job.err = err
			m.m.JobsCancelled.Add(1)
		default:
			job.state = JobFailed
			job.err = err
			m.m.JobsFailed.Add(1)
		}
		state, dur := job.state, job.finished.Sub(job.started)
		m.m.ObserveStep("job."+job.Req.Kind, dur)
		close(job.done)
		job.mu.Unlock()

		ev := Event{Job: job.ID, Kind: job.Req.Kind, State: state}
		switch state {
		case JobDone:
			ev.Type = EventDone
		case JobCancelled:
			ev.Type = EventCancelled
			ev.Error = flowerr.Class(err)
		default:
			ev.Type = EventFailed
			ev.Error = flowerr.Class(err)
		}
		m.publish(ev)

		root.SetAttr("state", state)
		if err != nil {
			root.SetAttr("error", flowerr.Class(err))
		}
		root.End()
		m.rec.Add(tr.Finish())
		if err != nil {
			m.log.Warn("job finished", "job", job.ID, "kind", job.Req.Kind,
				"state", state, "dur_ms", dur.Milliseconds(), "error_class", flowerr.Class(err), "error", err)
		} else {
			m.log.Info("job finished", "job", job.ID, "kind", job.Req.Kind,
				"state", state, "dur_ms", dur.Milliseconds())
		}
	}
}

// DrainStats accounts for the jobs that were still open when Drain
// was called: Drained ran to a done or failed state before the
// deadline, Aborted were cancelled (by the deadline or a concurrent
// Cancel).
type DrainStats struct {
	Drained int
	Aborted int
}

// Drain stops accepting submissions, lets the workers finish every
// queued and running job, and returns when the pool is idle. Completed
// results remain fetchable afterwards. If ctx expires first, the
// remaining running jobs are cancelled, the pool is awaited, and the
// ctx error is returned. Either way the stats classify every job that
// was open at drain start.
func (m *Manager) Drain(ctx context.Context) (DrainStats, error) {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	var open []*Job
	for _, job := range m.jobs {
		job.mu.Lock()
		if !job.state.Terminal() {
			open = append(open, job) //lint:ignore maporder open is only tallied into order-independent counts, never iterated for output
		}
		job.mu.Unlock()
	}
	m.mu.Unlock()

	stats := func() DrainStats {
		var s DrainStats
		for _, job := range open {
			job.mu.Lock()
			if job.state == JobCancelled {
				s.Aborted++
			} else {
				s.Drained++
			}
			job.mu.Unlock()
		}
		return s
	}

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		// Close the event stream only after the last worker published
		// its terminal event, so drained subscribers see every job end.
		m.hub.Close()
		return stats(), nil
	case <-ctx.Done():
		// Cancel everything still open — including jobs that are only
		// queued, or the workers would keep pulling them off the closed
		// queue and run them to completion long past the deadline.
		m.mu.Lock()
		ids := make([]string, 0, len(m.jobs))
		for id := range m.jobs {
			ids = append(ids, id)
		}
		m.mu.Unlock()
		sort.Strings(ids)
		for _, id := range ids {
			m.Cancel(id)
		}
		<-idle
		m.hub.Close()
		return stats(), flowerr.Cancelledf("service: drain deadline expired, in-flight jobs cancelled: %w", ctx.Err())
	}
}
