package service

import (
	"sync"
	"time"

	"vipipe/internal/obs"
)

// MetricsHistory is the rolling-telemetry ring: a fixed-capacity
// sequence of condensed metrics snapshots sampled periodically by the
// daemon, with delta/rate computation over a requested window. It
// turns the lifetime totals of /metrics into time series — cache hit
// rate, queue depth, degraded-store transitions, throttle counters —
// served at GET /metrics/history?window=...
//
// Points are condensed (no latency histograms): a day of 2s samples
// stays a few hundred KiB.
type MetricsHistory struct {
	mu     sync.Mutex
	cap    int
	now    func() time.Time
	points []HistoryPoint // oldest first, len <= cap
}

// HistoryPoint is one condensed sample.
type HistoryPoint struct {
	TS          time.Time        `json:"ts"`
	UptimeS     float64          `json:"uptime_s"`
	Jobs        JobCounters      `json:"jobs"`
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	HitRate     float64          `json:"hit_rate"`
	Degraded    bool             `json:"degraded"`
	StoreMode   string           `json:"store_mode"`
	Counters    map[string]int64 `json:"counters,omitempty"`
}

// NewMetricsHistory returns a ring retaining the last n samples
// (n <= 0 defaults to 600 — 20 minutes at the daemon's 2s interval).
func NewMetricsHistory(n int) *MetricsHistory {
	return NewMetricsHistoryWithClock(n, obs.Now)
}

// NewMetricsHistoryWithClock is NewMetricsHistory with an injectable
// clock, so tests pin timestamps and window math deterministically.
func NewMetricsHistoryWithClock(n int, now func() time.Time) *MetricsHistory {
	if n <= 0 {
		n = 600
	}
	return &MetricsHistory{cap: n, now: now}
}

// Record condenses a snapshot into the ring, evicting the oldest
// point when full. Nil-safe, so an unwired server can still serve an
// empty history.
func (h *MetricsHistory) Record(s Snapshot) {
	if h == nil {
		return
	}
	p := HistoryPoint{
		UptimeS:     s.UptimeS,
		Jobs:        s.Jobs,
		CacheHits:   s.Cache.Hits,
		CacheMisses: s.Cache.Misses,
		HitRate:     s.Cache.HitRate,
		Degraded:    s.Degraded,
		StoreMode:   s.Store.Mode,
	}
	if len(s.Counters) > 0 {
		p.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			p.Counters[name] = v
		}
	}
	h.mu.Lock()
	p.TS = h.now()
	if len(h.points) == h.cap {
		copy(h.points, h.points[1:])
		h.points = h.points[:h.cap-1]
	}
	h.points = append(h.points, p)
	h.mu.Unlock()
}

// Len returns the number of retained points.
func (h *MetricsHistory) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.points)
}

// HistoryView is the /metrics/history payload: the points inside the
// window (oldest first) plus rates derived from the window's first
// and last points (nil with fewer than two points).
type HistoryView struct {
	WindowS float64        `json:"window_s"`
	Points  []HistoryPoint `json:"points"`
	Rates   *HistoryRates  `json:"rates,omitempty"`
}

// HistoryRates are the first-to-last deltas of a window, normalized
// per second where that is meaningful. WindowHitRate is the cache hit
// rate of the window's traffic alone (not the lifetime ratio).
type HistoryRates struct {
	SpanS          float64            `json:"span_s"`
	SubmittedPerS  float64            `json:"submitted_per_s"`
	CompletedPerS  float64            `json:"completed_per_s"`
	FailedPerS     float64            `json:"failed_per_s"`
	RejectedPerS   float64            `json:"rejected_per_s"`
	WindowHitRate  float64            `json:"window_hit_rate"`
	CounterPerS    map[string]float64 `json:"counter_per_s,omitempty"`
	QueueDepth     int                `json:"queue_depth"`
	WorkersBusy    int64              `json:"workers_busy"`
	Degraded       bool               `json:"degraded"`
	DegradedEvents int                `json:"degraded_events"`
}

// View returns the points recorded within the trailing window
// (window <= 0 means everything retained) and their derived rates.
func (h *MetricsHistory) View(window time.Duration) HistoryView {
	out := HistoryView{WindowS: window.Seconds(), Points: []HistoryPoint{}}
	if h == nil {
		return out
	}
	h.mu.Lock()
	pts := make([]HistoryPoint, len(h.points))
	copy(pts, h.points)
	cutoffOK := window > 0
	var cutoff time.Time
	if cutoffOK {
		cutoff = h.now().Add(-window)
	}
	h.mu.Unlock()

	for _, p := range pts {
		if cutoffOK && p.TS.Before(cutoff) {
			continue
		}
		out.Points = append(out.Points, p)
	}
	if len(out.Points) >= 2 {
		out.Rates = rates(out.Points)
	}
	return out
}

func rates(pts []HistoryPoint) *HistoryRates {
	first, last := pts[0], pts[len(pts)-1]
	span := last.TS.Sub(first.TS).Seconds()
	r := &HistoryRates{
		SpanS:       span,
		QueueDepth:  last.Jobs.QueueDepth,
		WorkersBusy: last.Jobs.WorkersBusy,
		Degraded:    last.Degraded,
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Degraded && !pts[i-1].Degraded {
			r.DegradedEvents++
		}
	}
	if span <= 0 {
		return r
	}
	r.SubmittedPerS = float64(last.Jobs.Submitted-first.Jobs.Submitted) / span
	r.CompletedPerS = float64(last.Jobs.Completed-first.Jobs.Completed) / span
	r.FailedPerS = float64(last.Jobs.Failed-first.Jobs.Failed) / span
	r.RejectedPerS = float64(last.Jobs.Rejected-first.Jobs.Rejected) / span
	hits := last.CacheHits - first.CacheHits
	misses := last.CacheMisses - first.CacheMisses
	if hits+misses > 0 {
		r.WindowHitRate = float64(hits) / float64(hits+misses)
	}
	for name, v := range last.Counters {
		d := v - first.Counters[name]
		if d == 0 {
			continue
		}
		if r.CounterPerS == nil {
			r.CounterPerS = make(map[string]float64)
		}
		r.CounterPerS[name] = float64(d) / span
	}
	return r
}
