package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vipipe/internal/drc"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/power"
	"vipipe/internal/stats"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
	"vipipe/internal/yield"
)

// fakeMC builds a synthetic characterization: execute violating hard,
// decode marginal, writeback clean — scenario 2.
func fakeMC() *mc.Result {
	mk := func(mu, sigma float64) *mc.StageDist {
		return &mc.StageDist{
			Fit:      stats.Normal{Mu: mu, Sigma: sigma},
			ViolProb: stats.Normal{Mu: mu, Sigma: sigma}.CDF(0),
			GOF:      stats.GOFResult{PValue: 0.4, Accepted: true, Bins: 8},
		}
	}
	return &mc.Result{
		Pos:       variation.Pos{Name: "B", XMM: 5.7, YMM: 5.7},
		ClockPS:   4000,
		Samples:   118,
		Requested: 120,
		Skipped:   []int{3, 77},
		PerStage: map[netlist.Stage]*mc.StageDist{
			netlist.StageDecode:    mk(-20, 30),
			netlist.StageExecute:   mk(-150, 25),
			netlist.StageWriteback: mk(200, 40),
		},
	}
}

func TestMCResultRoundTrip(t *testing.T) {
	got := FromMCResult(fakeMC())
	if got.Scenario != 2 {
		t.Fatalf("scenario = %d, want 2", got.Scenario)
	}
	if len(got.ViolatingStages) != 2 || got.ViolatingStages[0] != "EXECUTE" {
		t.Fatalf("violating stages = %v", got.ViolatingStages)
	}
	if got.Samples != 118 || got.Requested != 120 || len(got.SkippedSamples) != 2 {
		t.Fatalf("sample accounting lost: %+v", got)
	}

	var buf bytes.Buffer
	if err := Encode(&buf, got); err != nil {
		t.Fatal(err)
	}
	var back MCResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Position != "B" || back.ClockPS != 4000 || len(back.Stages) != 3 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	for _, st := range back.Stages {
		if st.Stage == "EXECUTE" && st.MuPS != -150 {
			t.Errorf("execute mu = %g, want -150", st.MuPS)
		}
	}
	if !strings.Contains(buf.String(), `"mu_ps"`) {
		t.Error("wire JSON missing snake_case field names")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	p := &vi.Partition{
		Strategy:  vi.Vertical,
		StartSide: vi.Left,
		Islands: []vi.Island{
			{Index: 1, FromUM: 0, ToUM: 120, Cells: []int{0, 1, 2}},
			{Index: 2, FromUM: 120, ToUM: 260, Cells: []int{3}},
		},
	}
	got := FromPartition(p)
	if got.Strategy != "vertical" || got.StartSide != "left" {
		t.Fatalf("strategy/side = %q/%q", got.Strategy, got.StartSide)
	}
	if len(got.Islands) != 2 || got.Islands[0].Cells != 3 || got.Islands[1].ToUM != 260 {
		t.Fatalf("islands = %+v", got.Islands)
	}
	if got.Shifters != 0 || got.ShifterAreaFrac != 0 {
		t.Fatalf("pre-insertion partition has shifter stats: %+v", got)
	}

	var buf bytes.Buffer
	if err := Encode(&buf, got); err != nil {
		t.Fatal(err)
	}
	var back Partition
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Islands[1].Index != 2 || back.Islands[1].FromUM != 120 {
		t.Fatalf("round trip lost island geometry: %+v", back.Islands)
	}
}

func TestPowerReportRoundTrip(t *testing.T) {
	r := &power.Report{
		FreqMHz:       250,
		DynamicMW:     28.4,
		LeakMW:        0.4,
		ShifterDynMW:  0.8,
		ShifterLeakMW: 0.1,
		ByUnit: []power.UnitPower{
			{Unit: "regfile", DynamicMW: 15, LeakMW: 0.2},
			{Unit: "execute", DynamicMW: 8, LeakMW: 0.1},
		},
		ByDomain: [2]power.UnitPower{
			{DynamicMW: 20, LeakMW: 0.3},
			{DynamicMW: 8.4, LeakMW: 0.1},
		},
	}
	got := FromPowerReport(r)
	if got.TotalMW != r.TotalMW() || got.ShifterFrac != r.ShifterFrac() {
		t.Fatalf("derived totals wrong: %+v", got)
	}
	if got.HighRail.DynamicMW != 8.4 || got.LowRail.TotalMW != 20.3 {
		t.Fatalf("rail split wrong: %+v", got)
	}

	var buf bytes.Buffer
	if err := Encode(&buf, got); err != nil {
		t.Fatal(err)
	}
	var back PowerReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.ByUnit) != 2 || back.ByUnit[0].Unit != "regfile" || back.ByUnit[0].TotalMW != 15.2 {
		t.Fatalf("round trip lost unit breakdown: %+v", back.ByUnit)
	}
}

func TestDRCReportRoundTrip(t *testing.T) {
	clean := FromDRCReport(&drc.Report{})
	if !clean.Clean || len(clean.Violations) != 0 {
		t.Fatalf("clean report = %+v", clean)
	}
	dirty := FromDRCReport(&drc.Report{
		Violations: []drc.Violation{{Rule: "comb-loop", Msg: "cycle through inst 7"}},
		Truncated:  3,
	})
	if dirty.Clean || dirty.Truncated != 3 {
		t.Fatalf("dirty report = %+v", dirty)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, dirty); err != nil {
		t.Fatal(err)
	}
	var back DRCReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Violations[0].Rule != "comb-loop" {
		t.Fatalf("round trip lost violation: %+v", back)
	}
}

func TestSurfaceRoundTrip(t *testing.T) {
	src := &yield.Surface{
		PlanHash:  "abcd1234",
		ClockPS:   4000,
		NX:        2,
		NY:        1,
		PeriodsPS: []float64{3800, 4000, 4200},
		Positions: []yield.SurfacePos{
			{Name: "r0c0", Key: "k0", Samples: 60, Shards: 2,
				MeanPS: 3900, StdPS: 45, MinPS: 3700, MaxPS: 4100,
				Yields: []float64{0.1, 0.6, 0.97}},
			{Name: "r0c1", XMM: 11.4, Key: "k1", Samples: 60, Shards: 2,
				MeanPS: 3950, StdPS: 50, MinPS: 3750, MaxPS: 4150,
				Yields:     []float64{0.05, 0.5, 0.95},
				HasOverlay: true, OvMeanPS: 4010, OvStdPS: 52,
				OvMinPS: 3800, OvMaxPS: 4220,
				OvYields: []float64{0.02, 0.4, 0.9}},
		},
	}
	got := FromSurface(src)

	var buf bytes.Buffer
	if err := Encode(&buf, got); err != nil {
		t.Fatal(err)
	}
	var back Surface
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.PlanHash != "abcd1234" || back.NX != 2 || back.NY != 1 || len(back.Positions) != 2 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Positions[1].XMM != 11.4 || !back.Positions[1].HasOverlay ||
		back.Positions[1].OvYields[2] != 0.9 {
		t.Fatalf("overlay fields lost: %+v", back.Positions[1])
	}
	if back.Positions[0].HasOverlay || len(back.Positions[0].OvYields) != 0 {
		t.Fatalf("overlay leaked into clean position: %+v", back.Positions[0])
	}
	if !strings.Contains(buf.String(), `"plan_hash"`) || !strings.Contains(buf.String(), `"ov_mean_ps"`) {
		t.Error("wire JSON missing snake_case surface field names")
	}

	// The DTO must not alias the engine slices: mutating the source
	// after conversion cannot change what was already converted.
	src.Positions[0].Yields[0] = 99
	src.PeriodsPS[0] = 99
	if got.Positions[0].Yields[0] == 99 || got.PeriodsPS[0] == 99 {
		t.Fatal("FromSurface aliases the source slices")
	}
}
