// Package wire defines the JSON wire schema of the flow's report
// types — Monte Carlo characterizations, voltage-island partitions,
// power reports, DRC reports and the service's scenario sweeps — with
// converters from the in-memory engine types. The vipiped service and
// the -json modes of the cmd/ tools share these codecs, so a CLI run
// and a service response are byte-compatible for the same artifact.
//
// The DTOs are plain data: every field is exported, JSON-tagged in
// snake_case, and holds no pointers into engine state, so a decoded
// report is safe to retain after the flow that produced it is gone.
package wire

import (
	"encoding/json"
	"io"

	"vipipe/internal/drc"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/power"
	"vipipe/internal/tmodel"
	"vipipe/internal/vi"
	"vipipe/internal/yield"
)

// Encode writes v as indented JSON, the canonical rendering of every
// report the service and the -json CLI modes emit.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// MCStage is the wire form of one pipeline stage's slack distribution.
type MCStage struct {
	Stage         string  `json:"stage"`
	MuPS          float64 `json:"mu_ps"`
	SigmaPS       float64 `json:"sigma_ps"`
	ViolFrac      float64 `json:"viol_frac"`
	ViolProb      float64 `json:"viol_prob"`
	ChiSqPValue   float64 `json:"chisq_p"`
	ChiSqAccepted bool    `json:"chisq_accepted"`
	KSPValue      float64 `json:"ks_p"`
	KSAccepted    bool    `json:"ks_accepted"`
	Endpoints     int     `json:"endpoints"`
	FitError      string  `json:"fit_error,omitempty"`
}

// MCResult is the wire form of a Monte Carlo characterization at one
// chip position, including its scenario classification.
type MCResult struct {
	Position        string    `json:"position"`
	XMM             float64   `json:"x_mm"`
	YMM             float64   `json:"y_mm"`
	ClockPS         float64   `json:"clock_ps"`
	Samples         int       `json:"samples"`
	Requested       int       `json:"requested"`
	SkippedSamples  []int     `json:"skipped_samples,omitempty"`
	Scenario        int       `json:"scenario"`
	ViolatingStages []string  `json:"violating_stages,omitempty"`
	Stages          []MCStage `json:"stages"`
}

// FromMCResult converts an engine result. Stages appear in pipeline
// order (the classification stages first, then any others the result
// carries).
func FromMCResult(r *mc.Result) MCResult {
	sc, viol := r.Classify(0)
	out := MCResult{
		Position:       r.Pos.Name,
		XMM:            r.Pos.XMM,
		YMM:            r.Pos.YMM,
		ClockPS:        r.ClockPS,
		Samples:        r.Samples,
		Requested:      r.Requested,
		SkippedSamples: append([]int(nil), r.Skipped...),
		Scenario:       int(sc),
	}
	for _, st := range viol {
		out.ViolatingStages = append(out.ViolatingStages, st.String())
	}
	for st := netlist.Stage(0); st < netlist.NumStages; st++ {
		d := r.PerStage[st]
		if d == nil {
			continue
		}
		ws := MCStage{
			Stage:         st.String(),
			MuPS:          d.Fit.Mu,
			SigmaPS:       d.Fit.Sigma,
			ViolFrac:      d.ViolFrac,
			ViolProb:      d.ViolProb,
			ChiSqPValue:   d.GOF.PValue,
			ChiSqAccepted: d.GOF.Accepted,
			KSPValue:      d.KS.PValue,
			KSAccepted:    d.KS.Accepted,
			Endpoints:     d.Endpoints,
		}
		if d.FitErr != nil {
			ws.FitError = d.FitErr.Error()
		}
		out.Stages = append(out.Stages, ws)
	}
	return out
}

// Island is the wire form of one nested voltage island.
type Island struct {
	Index  int     `json:"index"`
	FromUM float64 `json:"from_um"`
	ToUM   float64 `json:"to_um"`
	Cells  int     `json:"cells"`
}

// Partition is the wire form of a voltage-island partition. Shifter
// fields are zero until level-shifter insertion has run.
type Partition struct {
	Strategy        string   `json:"strategy"`
	StartSide       string   `json:"start_side"`
	Islands         []Island `json:"islands"`
	Shifters        int      `json:"shifters"`
	ShifterAreaFrac float64  `json:"shifter_area_frac"`
}

// FromPartition converts an engine partition.
func FromPartition(p *vi.Partition) Partition {
	out := Partition{
		Strategy:  p.Strategy.String(),
		StartSide: p.StartSide.String(),
		Shifters:  len(p.Shifters),
	}
	if len(p.Shifters) > 0 {
		out.ShifterAreaFrac = p.ShifterAreaFrac()
	}
	for _, isl := range p.Islands {
		out.Islands = append(out.Islands, Island{
			Index:  isl.Index,
			FromUM: isl.FromUM,
			ToUM:   isl.ToUM,
			Cells:  len(isl.Cells),
		})
	}
	return out
}

// UnitPower is the wire form of a per-unit (or per-rail) power split.
type UnitPower struct {
	Unit      string  `json:"unit,omitempty"`
	DynamicMW float64 `json:"dynamic_mw"`
	LeakMW    float64 `json:"leak_mw"`
	TotalMW   float64 `json:"total_mw"`
}

// PowerReport is the wire form of a power analysis.
type PowerReport struct {
	FreqMHz       float64     `json:"freq_mhz"`
	DynamicMW     float64     `json:"dynamic_mw"`
	LeakMW        float64     `json:"leak_mw"`
	TotalMW       float64     `json:"total_mw"`
	ByUnit        []UnitPower `json:"by_unit"`
	ShifterDynMW  float64     `json:"shifter_dyn_mw"`
	ShifterLeakMW float64     `json:"shifter_leak_mw"`
	ShifterFrac   float64     `json:"shifter_frac"`
	LowRail       UnitPower   `json:"low_rail"`
	HighRail      UnitPower   `json:"high_rail"`
}

// FromPowerReport converts an engine power report. The per-instance
// leakage vector is deliberately dropped: it is engine-internal detail
// and would dominate the payload.
func FromPowerReport(r *power.Report) PowerReport {
	out := PowerReport{
		FreqMHz:       r.FreqMHz,
		DynamicMW:     r.DynamicMW,
		LeakMW:        r.LeakMW,
		TotalMW:       r.TotalMW(),
		ShifterDynMW:  r.ShifterDynMW,
		ShifterLeakMW: r.ShifterLeakMW,
		ShifterFrac:   r.ShifterFrac(),
		LowRail:       fromUnit(r.ByDomain[0]),
		HighRail:      fromUnit(r.ByDomain[1]),
	}
	for _, u := range r.ByUnit {
		out.ByUnit = append(out.ByUnit, fromUnit(u))
	}
	return out
}

func fromUnit(u power.UnitPower) UnitPower {
	return UnitPower{Unit: u.Unit, DynamicMW: u.DynamicMW, LeakMW: u.LeakMW, TotalMW: u.TotalMW()}
}

// DRCViolation is one broken design-rule invariant on the wire.
type DRCViolation struct {
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// DRCReport is the wire form of a design-rule-check run.
type DRCReport struct {
	Clean      bool           `json:"clean"`
	Violations []DRCViolation `json:"violations,omitempty"`
	Truncated  int            `json:"truncated,omitempty"`
}

// FromDRCReport converts an engine DRC report.
func FromDRCReport(r *drc.Report) DRCReport {
	out := DRCReport{Clean: r.Clean(), Truncated: r.Truncated}
	for _, v := range r.Violations {
		out.Violations = append(out.Violations, DRCViolation{Rule: v.Rule, Msg: v.Msg})
	}
	return out
}

// SweepEntry is one chip position of a scenario sweep: the power of
// the VI design with the detected scenario's islands raised, next to
// the chip-wide high-Vdd baseline (the Fig. 5 / Fig. 6 comparison).
type SweepEntry struct {
	Position   string      `json:"position"`
	Scenario   int         `json:"scenario"`
	VI         PowerReport `json:"vi"`
	ChipWide   PowerReport `json:"chip_wide"`
	TotalRatio float64     `json:"total_ratio"`
	LeakRatio  float64     `json:"leak_ratio"`
}

// Sweep is the wire form of a full A-D scenario sweep under one
// slicing strategy.
type Sweep struct {
	Strategy string       `json:"strategy"`
	Entries  []SweepEntry `json:"entries"`
}

// WhatIfStage is one pipeline stage of a what-if answer.
type WhatIfStage struct {
	Stage        string  `json:"stage"`
	WorstSlackPS float64 `json:"worst_slack_ps"`
	Endpoint     int     `json:"endpoint"`
}

// WhatIfAnswer is the wire form of one composed (or fallback-exact)
// what-if evaluation.
type WhatIfAnswer struct {
	Raise        int     `json:"raise"`
	Shifters     bool    `json:"shifters,omitempty"`
	CritPS       float64 `json:"crit_ps"`
	FmaxMHz      float64 `json:"fmax_mhz"`
	WorstSlackPS float64 `json:"worst_slack_ps"`
	// BoundPS is the model's stated error bound; 0 when Exact, which
	// marks an answer from the exact-STA fallback path.
	BoundPS   float64       `json:"bound_ps"`
	Exact     bool          `json:"exact"`
	Crossings int           `json:"crossings,omitempty"`
	ShifterPS float64       `json:"shifter_ps,omitempty"`
	Stages    []WhatIfStage `json:"stages"`
}

// FromWhatIfAnswer converts an engine answer for the query echo
// (raise, shifters).
func FromWhatIfAnswer(raise int, shifters bool, a tmodel.Answer) WhatIfAnswer {
	out := WhatIfAnswer{
		Raise:        raise,
		Shifters:     shifters,
		CritPS:       a.CritPS,
		FmaxMHz:      a.FmaxMHz,
		WorstSlackPS: a.WorstSlackPS,
		BoundPS:      a.BoundPS,
		Exact:        a.Exact,
		Crossings:    a.Crossings,
		ShifterPS:    a.ShifterPS,
	}
	for _, st := range a.PerStage {
		out.Stages = append(out.Stages, WhatIfStage{
			Stage:        st.Stage.String(),
			WorstSlackPS: st.WorstSlackPS,
			Endpoint:     int(st.Endpoint),
		})
	}
	return out
}

// WhatIf is the wire form of a whatif job: each query's answer in
// request order against one cached timing model.
type WhatIf struct {
	Strategy string         `json:"strategy"`
	Position string         `json:"position"`
	ClockPS  float64        `json:"clock_ps"`
	Islands  int            `json:"islands"`
	Answers  []WhatIfAnswer `json:"answers"`
}

// YieldPoint is one exposure-field position of a yield surface.
type YieldPoint struct {
	Position string  `json:"position"`
	XMM      float64 `json:"x_mm"`
	YMM      float64 `json:"y_mm"`
	Key      string  `json:"key"`
	Samples  int64   `json:"samples"`
	Shards   int     `json:"shards"`
	MeanPS   float64 `json:"mean_ps"`
	StdPS    float64 `json:"std_ps"`
	MinPS    float64 `json:"min_ps"`
	MaxPS    float64 `json:"max_ps"`
	// Yields[i] is the yield at PeriodsPS[i] of the enclosing surface.
	Yields []float64 `json:"yields"`
	// Overlay statistics, present when the plan disturbed the position.
	HasOverlay bool      `json:"has_overlay,omitempty"`
	OvMeanPS   float64   `json:"ov_mean_ps,omitempty"`
	OvStdPS    float64   `json:"ov_std_ps,omitempty"`
	OvMinPS    float64   `json:"ov_min_ps,omitempty"`
	OvMaxPS    float64   `json:"ov_max_ps,omitempty"`
	OvYields   []float64 `json:"ov_yields,omitempty"`
}

// Surface is the wire form of a field-sweep yield surface: per-position
// yield-vs-period curves on a shared axis, in row-major grid order.
type Surface struct {
	PlanHash  string       `json:"plan_hash"`
	ClockPS   float64      `json:"clock_ps"`
	NX        int          `json:"nx,omitempty"`
	NY        int          `json:"ny,omitempty"`
	PeriodsPS []float64    `json:"periods_ps"`
	Positions []YieldPoint `json:"positions"`
}

// FromSurface converts an engine yield surface.
func FromSurface(s *yield.Surface) Surface {
	out := Surface{
		PlanHash:  s.PlanHash,
		ClockPS:   s.ClockPS,
		NX:        s.NX,
		NY:        s.NY,
		PeriodsPS: append([]float64(nil), s.PeriodsPS...),
	}
	for _, p := range s.Positions {
		out.Positions = append(out.Positions, YieldPoint{
			Position:   p.Name,
			XMM:        p.XMM,
			YMM:        p.YMM,
			Key:        p.Key,
			Samples:    p.Samples,
			Shards:     p.Shards,
			MeanPS:     p.MeanPS,
			StdPS:      p.StdPS,
			MinPS:      p.MinPS,
			MaxPS:      p.MaxPS,
			Yields:     append([]float64(nil), p.Yields...),
			HasOverlay: p.HasOverlay,
			OvMeanPS:   p.OvMeanPS,
			OvStdPS:    p.OvStdPS,
			OvMinPS:    p.OvMinPS,
			OvMaxPS:    p.OvMaxPS,
			OvYields:   append([]float64(nil), p.OvYields...),
		})
	}
	return out
}
