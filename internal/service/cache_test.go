package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vipipe/internal/flowerr"
)

func constEntry(v any, size int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, size, nil }
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(1 << 20)
	ctx := context.Background()

	v, err := c.Do(ctx, "k", constEntry("first", 10))
	if err != nil || v != "first" {
		t.Fatalf("Do miss = %v, %v", v, err)
	}
	v, err = c.Do(ctx, "k", constEntry("second", 10))
	if err != nil || v != "first" {
		t.Fatalf("Do hit = %v, %v; want cached %q", v, err, "first")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.SizeBytes != 10 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry, 10 bytes", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v; want 0.5", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	ctx := context.Background()

	for _, k := range []string{"a", "b", "c"} {
		if _, err := c.Do(ctx, k, constEntry(k, 40)); err != nil {
			t.Fatal(err)
		}
	}
	// a is least recently used: inserting c pushed size to 120 > 100.
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived eviction")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted; want only a gone")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c evicted; want only a gone")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.SizeBytes != 80 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 entries, 80 bytes", st)
	}

	// The probes above touched b then c, so b is now LRU: inserting d
	// must evict b and keep the recently-used c.
	if _, err := c.Do(ctx, "d", constEntry("d", 40)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; want LRU b evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c evicted; want recently-used c kept")
	}
}

func TestCacheNeverEvictsJustInserted(t *testing.T) {
	c := NewCache(10)
	if _, err := c.Do(context.Background(), "huge", constEntry("v", 500)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry evicted itself; want it retained")
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v; want the single oversized entry kept", st)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(1 << 20)
	var computes atomic.Int64
	release := make(chan struct{})

	const callers = 8
	results := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), "k", func() (any, int64, error) {
				computes.Add(1)
				<-release
				return "shared", 1, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Let the goroutines pile up on the inflight call before releasing.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for %d concurrent callers; want 1", n, callers)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %v; want shared value", i, v)
		}
	}
}

func TestCacheFailedComputeNotCached(t *testing.T) {
	c := NewCache(1 << 20)
	ctx := context.Background()
	boom := errors.New("boom")

	if _, err := c.Do(ctx, "k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v; want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed compute was cached")
	}
	// The next caller retries and can succeed.
	v, err := c.Do(ctx, "k", constEntry("ok", 1))
	if err != nil || v != "ok" {
		t.Fatalf("retry Do = %v, %v; want ok", v, err)
	}
}

func TestCacheWaiterRetriesAfterComputerFails(t *testing.T) {
	c := NewCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	fail := errors.New("computer cancelled")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Do(context.Background(), "k", func() (any, int64, error) {
			close(started)
			<-release
			return nil, 0, fail
		})
		if !errors.Is(err, fail) {
			t.Errorf("computer got %v; want its own failure", err)
		}
	}()

	<-started
	waiterDone := make(chan error, 1)
	var waiterVal atomic.Value
	go func() {
		v, err := c.Do(context.Background(), "k", constEntry("recovered", 1))
		if v != nil {
			waiterVal.Store(v)
		}
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // waiter parks on the inflight call
	close(release)

	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter = %v; want retry success", err)
	}
	if v := waiterVal.Load(); v != "recovered" {
		t.Fatalf("waiter value = %v; want recomputed value", v)
	}
	wg.Wait()
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go c.Do(context.Background(), "k", func() (any, int64, error) {
		close(started)
		<-release
		return "late", 1, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, "k", constEntry("never", 1))
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("cancelled waiter = %v; want ErrCancelled", err)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(1 << 20)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			v, err := c.Do(context.Background(), key, constEntry(key, 16))
			if err != nil || v != key {
				t.Errorf("key %s = %v, %v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 8 {
		t.Fatalf("entries = %d; want 8 distinct keys", st.Entries)
	}
}
