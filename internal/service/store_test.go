package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"vipipe"
	"vipipe/internal/obs"
	"vipipe/internal/pipeline"
	"vipipe/internal/pipeline/storetest"
	"vipipe/internal/service/wire"
)

// TestCacheConformance runs the shared Store conformance suite
// against the service LRU cache — same contract as MemStore,
// DiskStore and the tiered store.
func TestCacheConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) pipeline.Store {
		return NewCache(1 << 20)
	})
}

func newStoreServer(t *testing.T, workers, queueCap int, mgrOpts []ManagerOption, engOpts ...EngineOption) (*httptest.Server, *Manager, *Metrics) {
	t.Helper()
	m := NewMetrics()
	eng := NewEngine(NewCache(64<<20), m, engOpts...)
	mgr := NewManager(eng, m, workers, queueCap, append(mgrOpts, WithRecorder(obs.NewRecorder(8)))...)
	ts := httptest.NewServer(NewServer(mgr, m))
	t.Cleanup(func() {
		ts.Close()
		// Cancel whatever the test left queued or running — even on a
		// Fatalf exit — so the drain below never grinds through an
		// abandoned slowSpec computation.
		for _, snap := range mgr.List() {
			if !snap.State.Terminal() {
				mgr.Cancel(snap.ID)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = mgr.Drain(ctx)
	})
	return ts, mgr, m
}

func wantRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("backpressure response missing Retry-After header")
	}
	if n, err := strconv.Atoi(ra); err != nil || n < 1 || n > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1,60]", ra)
	}
}

// TestQueueFullBackpressure: a full queue answers 429 with a
// Retry-After header and bumps the dedicated queue_full counter.
func TestQueueFullBackpressure(t *testing.T) {
	ts, _, m := newStoreServer(t, 1, 1, nil)

	running := submit(t, ts.URL, Request{Kind: "characterize", Position: "A", Config: slowSpec}, http.StatusAccepted)
	waitState(t, ts.URL, running.ID, func(s JobSnapshot) bool { return s.State == JobRunning })
	submit(t, ts.URL, Request{Kind: "characterize", Position: "B", Config: slowSpec}, http.StatusAccepted)

	resp := postJSON(t, ts.URL+"/jobs", Request{Kind: "characterize", Position: "C", Config: slowSpec})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit to full queue = %d; want 429", resp.StatusCode)
	}
	wantRetryAfter(t, resp)
	if got := m.JobsQueueFull.Load(); got != 1 {
		t.Fatalf("queue_full counter = %d; want 1", got)
	}
	ms := metricsSnapshot(t, ts.URL)
	if ms.Jobs.QueueFull != 1 {
		t.Fatalf("metrics queue_full = %d; want 1", ms.Jobs.QueueFull)
	}
}

// TestClientQuotaFairness: with a quota of 1, a client's second
// queued job is throttled (dedicated counter, 429 + Retry-After)
// while another client still gets in.
func TestClientQuotaFairness(t *testing.T) {
	ts, _, m := newStoreServer(t, 1, 8, []ManagerOption{WithClientQuota(1)})

	running := submit(t, ts.URL, Request{Kind: "characterize", Position: "A", Config: slowSpec, Client: "warmup"}, http.StatusAccepted)
	waitState(t, ts.URL, running.ID, func(s JobSnapshot) bool { return s.State == JobRunning })

	submit(t, ts.URL, Request{Kind: "characterize", Position: "B", Config: slowSpec, Client: "alice"}, http.StatusAccepted)
	resp := postJSON(t, ts.URL+"/jobs", Request{Kind: "characterize", Position: "C", Config: slowSpec, Client: "alice"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice submit = %d; want 429 (quota 1)", resp.StatusCode)
	}
	wantRetryAfter(t, resp)
	resp.Body.Close()
	if got := m.JobsThrottled.Load(); got != 1 {
		t.Fatalf("throttled counter = %d; want 1", got)
	}

	// Fairness: the queue has room and bob's bucket is empty.
	submit(t, ts.URL, Request{Kind: "characterize", Position: "C", Config: slowSpec, Client: "bob"}, http.StatusAccepted)

	// The X-Client header is an alternative to the JSON field.
	body := `{"kind":"characterize","position":"D","config":{"small":true,"mc_samples":400000,"vi_samples":24,"fir_samples":8,"fir_taps":4}}`
	req, err := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", "alice")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("header-identified alice submit = %d; want 429", hresp.StatusCode)
	}
	if got := m.JobsThrottled.Load(); got != 2 {
		t.Fatalf("throttled counter = %d; want 2", got)
	}
}

// TestDrainDeadlineAbortsQueuedJobs: when the drain deadline expires,
// still-queued jobs are aborted along with the running ones — the
// workers must not pull them off the closed queue and blow past the
// deadline.
func TestDrainDeadlineAbortsQueuedJobs(t *testing.T) {
	ts, mgr, _ := newStoreServer(t, 1, 4, nil)

	running := submit(t, ts.URL, Request{Kind: "characterize", Position: "A", Config: slowSpec}, http.StatusAccepted)
	waitState(t, ts.URL, running.ID, func(s JobSnapshot) bool { return s.State == JobRunning })
	queued := submit(t, ts.URL, Request{Kind: "characterize", Position: "B", Config: slowSpec}, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	stats, err := mgr.Drain(ctx)
	if took := time.Since(start); took > 15*time.Second {
		t.Fatalf("expired drain took %v; the queued job must not run to completion", took)
	}
	if err == nil {
		t.Fatal("drain past its deadline returned nil error")
	}
	if stats.Aborted != 2 {
		t.Fatalf("drain stats %+v; want both jobs aborted", stats)
	}
	for _, id := range []string{running.ID, queued.ID} {
		job, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("job %s missing after drain", id)
		}
		if st := job.Snapshot().State; st != JobCancelled {
			t.Fatalf("job %s state %v after expired drain; want cancelled", id, st)
		}
	}
}

// TestEngineDiskTierWarmRestart: a second engine over the same store
// dir serves the expensive characterization from disk instead of
// recomputing.
func TestEngineDiskTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{Kind: "characterize", Position: "A", Config: tinySpec}

	ds, err := pipeline.OpenDiskStore(dir, vipipe.DiskCodecs())
	if err != nil {
		t.Fatalf("OpenDiskStore: %v", err)
	}
	eng := NewEngine(NewCache(64<<20), NewMetrics(), WithDiskStore(ds))
	res, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cold := res.(wire.MCResult)
	if st := ds.Stats(); st.Writes == 0 {
		t.Fatalf("disk stats after cold run %+v; want persisted artifacts", st)
	}

	// "Restart": new cache, new engine, same dir.
	ds2, err := pipeline.OpenDiskStore(dir, vipipe.DiskCodecs())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	eng2 := NewEngine(NewCache(64<<20), NewMetrics(), WithDiskStore(ds2))
	start := obs.Now()
	res2, err := eng2.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	warmDur := obs.Since(start)
	if st := ds2.Stats(); st.Hits == 0 {
		t.Fatalf("disk stats after warm run %+v; want hits", st)
	}
	warm := res2.(wire.MCResult)
	if warm.Samples != cold.Samples || warm.ClockPS != cold.ClockPS {
		t.Fatalf("warm result %+v differs from cold %+v", warm, cold)
	}
	t.Logf("warm characterize over a cold cache took %v via the disk tier", warmDur)
}

// TestDegradedStoreServing: an unusable store dir leaves the daemon
// fully serving while /metrics and job snapshots report degraded.
func TestDegradedStoreServing(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := pipeline.OpenDiskStore(filepath.Join(file, "store"), vipipe.DiskCodecs())
	if err == nil {
		t.Fatal("expected an open error for a dir under a regular file")
	}
	ts, _, _ := newStoreServer(t, 2, 8, nil, WithDiskStore(ds))

	snap := submit(t, ts.URL, Request{Kind: "drc", Config: tinySpec}, http.StatusAccepted)
	if !snap.Degraded {
		t.Fatal("job snapshot does not report degraded with a broken store")
	}
	done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobDone {
		t.Fatalf("job state %s (%s); want done — degraded mode must not fail requests", done.State, done.Error)
	}
	if !done.Degraded {
		t.Fatal("terminal snapshot lost the degraded flag")
	}

	ms := metricsSnapshot(t, ts.URL)
	if !ms.Degraded || ms.Store.Mode != "degraded" {
		t.Fatalf("metrics degraded=%v store.mode=%q; want degraded reporting", ms.Degraded, ms.Store.Mode)
	}
	if ms.Store.Disk == nil || !ms.Store.Disk.Degraded {
		t.Fatalf("metrics store.disk = %+v; want degraded disk stats", ms.Store.Disk)
	}
}

// TestMetricsStoreModeOff: without a disk store the snapshot says so.
func TestMetricsStoreModeOff(t *testing.T) {
	ts, _, _ := newStoreServer(t, 1, 2, nil)
	ms := metricsSnapshot(t, ts.URL)
	if ms.Store.Mode != "off" || ms.Store.Disk != nil || ms.Degraded {
		t.Fatalf("store section %+v degraded=%v; want mode off", ms.Store, ms.Degraded)
	}
}
