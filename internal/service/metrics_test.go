package service

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	h := newHistogram()
	h.Observe(500 * time.Microsecond) // le_1
	h.Observe(3 * time.Millisecond)   // le_5
	h.Observe(600 * time.Millisecond) // le_1000
	h.Observe(2 * time.Minute)        // overflow

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d; want 4", s.Count)
	}
	want := map[string]int64{"le_1": 1, "le_5": 1, "le_1000": 1, "le_inf": 1}
	for k, n := range want {
		if s.Buckets[k] != n {
			t.Errorf("bucket %s = %d; want %d (all: %v)", k, s.Buckets[k], n, s.Buckets)
		}
	}
	if s.MaxMS != 120000 {
		t.Errorf("max = %vms; want 120000", s.MaxMS)
	}
	if s.P50MS != 500 {
		t.Errorf("p50 = %vms; want 500 (rank 2 lands at the start of the 500..1000 bucket)", s.P50MS)
	}
	if s.P95MS != s.MaxMS {
		t.Errorf("p95 = %vms; want max for overflow-bucket tail", s.P95MS)
	}
	if s.P99MS != s.MaxMS {
		t.Errorf("p99 = %vms; want max for overflow-bucket tail", s.P99MS)
	}
	if s.MeanMS <= 0 {
		t.Errorf("mean = %vms; want positive", s.MeanMS)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Observe(time.Duration(j) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 800 {
		t.Fatalf("count = %d; want 800", s.Count)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.JobsSubmitted.Add(3)
	m.JobsCompleted.Add(2)
	m.JobsFailed.Add(1)
	m.ObserveStep("baseline", 40*time.Millisecond)
	m.ObserveStep("baseline", 60*time.Millisecond)
	m.ObserveStep("mc", 5*time.Millisecond)

	cache := NewCache(1 << 10)
	cache.Get("missing") // one miss

	s := m.Snapshot(cache, nil)
	if s.Jobs.Submitted != 3 || s.Jobs.Completed != 2 || s.Jobs.Failed != 1 {
		t.Fatalf("job counters = %+v", s.Jobs)
	}
	if s.Cache.Misses != 1 || s.Cache.CapBytes != 1<<10 {
		t.Fatalf("cache view = %+v", s.Cache)
	}
	if got := s.Latency["baseline"].Count; got != 2 {
		t.Fatalf("baseline count = %d; want 2", got)
	}
	if got := s.Latency["mc"].Count; got != 1 {
		t.Fatalf("mc count = %d; want 1", got)
	}
	if s.UptimeS < 0 {
		t.Fatalf("uptime = %v", s.UptimeS)
	}
}

// TestHistogramPercentileInterpolation pins interpolated percentiles
// against exact quantiles on a synthetic uniform spread: 24 samples at
// 26..49ms all land in the (25,50] bucket, where linear interpolation
// recovers the uniform distribution's quantiles exactly. The old
// upper-bound rule reported 50 for every one of these.
func TestHistogramPercentileInterpolation(t *testing.T) {
	h := newHistogram()
	for ms := 26; ms <= 49; ms++ {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	s := h.Snapshot()
	exact := map[string][2]float64{
		"p50": {s.P50MS, 37.5},  // 25 + 0.50*25
		"p90": {s.P90MS, 47.5},  // 25 + 0.90*25
		"p95": {s.P95MS, 48.75}, // 25 + 0.95*25
		"p99": {s.P99MS, 49.75}, // 25 + 0.99*25
	}
	for name, v := range exact {
		got, want := v[0], v[1]
		if got < want-1e-9 || got > want+1e-9 {
			t.Errorf("%s = %vms; want %v (exact uniform quantile)", name, got, want)
		}
	}
	// A single-sample histogram interpolates from the bucket's lower
	// bound, never above the observed max's bucket bound.
	h2 := newHistogram()
	h2.Observe(30 * time.Millisecond)
	if s2 := h2.Snapshot(); s2.P50MS < 25 || s2.P50MS > 50 {
		t.Errorf("single-sample p50 = %vms; want within its (25,50] bucket", s2.P50MS)
	}
}

// TestHistogramPercentileOrder pins P50 <= P90 <= P95 <= P99 on a
// spread of samples (ties are fine but inversions are not).
func TestHistogramPercentileOrder(t *testing.T) {
	h := newHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i*4) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P50MS > s.P90MS || s.P90MS > s.P95MS || s.P95MS > s.P99MS {
		t.Fatalf("percentiles out of order: p50=%v p90=%v p95=%v p99=%v",
			s.P50MS, s.P90MS, s.P95MS, s.P99MS)
	}
	if s.P95MS <= s.P50MS {
		t.Fatalf("p95 = %v not above p50 = %v for a 4..400ms spread", s.P95MS, s.P50MS)
	}
}

// TestMetricsSnapshotConcurrentWriters drives Snapshot while other
// goroutines observe and increment — run under -race this proves the
// registry's documented concurrency safety.
func TestMetricsSnapshotConcurrentWriters(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				m.ObserveStep("step", time.Duration(j%50)*time.Millisecond)
				m.Inc("writes")
				m.JobsSubmitted.Add(1)
			}
		}(i)
	}
	for i := 0; i < 200; i++ {
		s := m.Snapshot(nil, nil)
		if got := s.Latency["step"]; got.Count > 0 && got.P50MS > got.P99MS {
			t.Errorf("snapshot %d: p50 %v > p99 %v", i, got.P50MS, got.P99MS)
		}
	}
	close(stop)
	wg.Wait()
	final := m.Snapshot(nil, nil)
	if final.Counters["writes"] != final.Latency["step"].Count {
		t.Fatalf("writes counter %d != step observations %d",
			final.Counters["writes"], final.Latency["step"].Count)
	}
}

func TestObserveStepNilRegistry(t *testing.T) {
	var m *Metrics
	m.ObserveStep("baseline", time.Second) // must not panic
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{1: "le_1", 25: "le_25", 30000: "le_30000"}
	for ms, want := range cases {
		if got := formatBound(ms); got != want {
			t.Errorf("formatBound(%v) = %q; want %q", ms, got, want)
		}
	}
}
