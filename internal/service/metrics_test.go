package service

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	h := newHistogram()
	h.Observe(500 * time.Microsecond) // le_1
	h.Observe(3 * time.Millisecond)   // le_5
	h.Observe(600 * time.Millisecond) // le_1000
	h.Observe(2 * time.Minute)        // overflow

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d; want 4", s.Count)
	}
	want := map[string]int64{"le_1": 1, "le_5": 1, "le_1000": 1, "le_inf": 1}
	for k, n := range want {
		if s.Buckets[k] != n {
			t.Errorf("bucket %s = %d; want %d (all: %v)", k, s.Buckets[k], n, s.Buckets)
		}
	}
	if s.MaxMS != 120000 {
		t.Errorf("max = %vms; want 120000", s.MaxMS)
	}
	if s.P50MS != 1000 {
		t.Errorf("p50 = %vms; want 1000 (bucket bound holding the upper median, 600ms)", s.P50MS)
	}
	if s.P99MS != s.MaxMS {
		t.Errorf("p99 = %vms; want max for overflow-bucket tail", s.P99MS)
	}
	if s.MeanMS <= 0 {
		t.Errorf("mean = %vms; want positive", s.MeanMS)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Observe(time.Duration(j) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 800 {
		t.Fatalf("count = %d; want 800", s.Count)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.JobsSubmitted.Add(3)
	m.JobsCompleted.Add(2)
	m.JobsFailed.Add(1)
	m.ObserveStep("baseline", 40*time.Millisecond)
	m.ObserveStep("baseline", 60*time.Millisecond)
	m.ObserveStep("mc", 5*time.Millisecond)

	cache := NewCache(1 << 10)
	cache.Get("missing") // one miss

	s := m.Snapshot(cache, nil)
	if s.Jobs.Submitted != 3 || s.Jobs.Completed != 2 || s.Jobs.Failed != 1 {
		t.Fatalf("job counters = %+v", s.Jobs)
	}
	if s.Cache.Misses != 1 || s.Cache.CapBytes != 1<<10 {
		t.Fatalf("cache view = %+v", s.Cache)
	}
	if got := s.Latency["baseline"].Count; got != 2 {
		t.Fatalf("baseline count = %d; want 2", got)
	}
	if got := s.Latency["mc"].Count; got != 1 {
		t.Fatalf("mc count = %d; want 1", got)
	}
	if s.UptimeS < 0 {
		t.Fatalf("uptime = %v", s.UptimeS)
	}
}

func TestObserveStepNilRegistry(t *testing.T) {
	var m *Metrics
	m.ObserveStep("baseline", time.Second) // must not panic
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{1: "le_1", 25: "le_25", 30000: "le_30000"}
	for ms, want := range cases {
		if got := formatBound(ms); got != want {
			t.Errorf("formatBound(%v) = %q; want %q", ms, got, want)
		}
	}
}
