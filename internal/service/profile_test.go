package service

import (
	"context"
	"strings"
	"testing"

	"vipipe/internal/obs"
)

// TestFieldSweepProfileDominantNode records a real field sweep under
// a tracer and profiles it: the run profile must name the field-shard
// kind as the dominant self-time consumer and account its cache
// disposition — 18 misses cold, 18 hits warm.
func TestFieldSweepProfileDominantNode(t *testing.T) {
	m := NewMetrics()
	eng := NewEngine(NewCache(64<<20), m)
	req := fieldReq()
	req.Config.MCSamples = 2000 // enough Monte Carlo work that shards dominate the baseline

	run := func(name string) *obs.RunProfile {
		tr := obs.NewTracer(name, "field_sweep")
		ctx := obs.WithTracer(context.Background(), tr)
		ctx, root := obs.Start(ctx, "job.field_sweep")
		if _, err := eng.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
		root.End()
		return obs.Profile(tr.Finish())
	}

	cold := run("cold")
	dom := cold.Dominant()
	if dom == nil || dom.Kind != "field" {
		t.Fatalf("dominant node = %+v; want the field shard kind", dom)
	}
	if dom.Misses != 18 || dom.Hits != 0 {
		t.Errorf("cold field costs: %d misses, %d hits; want 18 cold misses", dom.Misses, dom.Hits)
	}
	if dom.Bytes <= 0 {
		t.Errorf("cold field bytes = %d; want stored shard sizes accounted", dom.Bytes)
	}
	if len(cold.CriticalPath) == 0 {
		t.Fatal("empty critical path")
	}
	if cold.CriticalPath[0].Name != "job.field_sweep" {
		t.Errorf("critical path starts at %q; want the job root", cold.CriticalPath[0].Name)
	}
	tail := cold.CriticalPath[len(cold.CriticalPath)-1]
	if !strings.HasPrefix(tail.Name, "field/") {
		t.Errorf("critical path ends at %q; want a field node", tail.Name)
	}

	warm := run("warm")
	var field *obs.NodeCost
	for i := range warm.Nodes {
		if warm.Nodes[i].Kind == "field" {
			field = &warm.Nodes[i]
			break
		}
	}
	if field == nil {
		t.Fatal("warm profile lost the field kind")
	}
	if field.Hits != 18 || field.Misses != 0 {
		t.Errorf("warm field costs: %d hits, %d misses; want 18 cache hits", field.Hits, field.Misses)
	}
}
