package service

import (
	"time"

	"vipipe/internal/obs"
)

// Event types published on the manager's live stream (GET /events).
// Lifecycle events mirror JobState transitions; "shard" events report
// field_sweep per-shard completion while the job is still running.
const (
	EventQueued    = "job.queued"
	EventRunning   = "job.running"
	EventDone      = "job.done"
	EventFailed    = "job.failed"
	EventCancelled = "job.cancelled"
	EventShard     = "shard"
)

// Event is one entry of the live job stream. Seq is a strictly
// increasing per-manager sequence number: subscribers detect gaps
// (their buffer overflowed and the hub dropped events) by watching
// for jumps.
type Event struct {
	Seq   int64     `json:"seq"`
	TS    time.Time `json:"ts"`
	Type  string    `json:"type"`
	Job   string    `json:"job"`
	Kind  string    `json:"kind,omitempty"`
	State JobState  `json:"state,omitempty"`
	// Error carries the flowerr class (not the message) of a failed
	// job, so stream consumers can bucket failures without parsing.
	Error string      `json:"error,omitempty"`
	Shard *ShardEvent `json:"shard,omitempty"`
}

// ShardEvent is the payload of one field_sweep shard completion:
// which grid position and shard index resolved, whether it came from
// cache or was computed, the sweep's running done/total counts, and
// the position's running median yield over the shards folded so far.
type ShardEvent struct {
	Pos    string  `json:"pos"`
	Shard  int     `json:"shard"`
	Cached bool    `json:"cached"`
	Done   int     `json:"done"`
	Total  int     `json:"total"`
	Yield  float64 `json:"yield"`
}

// Events exposes the manager's broadcast hub so frontends can
// subscribe (the SSE handler) and tests can assert stream contents.
func (m *Manager) Events() *obs.Hub[Event] { return m.hub }

// publish stamps sequence and timestamp and hands the event to the
// hub. The lock orders concurrent publishers so Seq matches delivery
// order; Publish itself only blocks on the dispatcher hand-off (it
// never waits for subscribers), so the critical section is bounded
// no matter how stuck a stream consumer is.
func (m *Manager) publish(ev Event) {
	if m == nil || m.hub == nil {
		return
	}
	m.pubMu.Lock()
	m.seq++
	ev.Seq = m.seq
	ev.TS = obs.Now()
	m.hub.Publish(ev)
	m.pubMu.Unlock()
}
