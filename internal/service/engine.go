package service

import (
	"context"
	"strings"
	"time"

	"vipipe"
	"vipipe/internal/flowerr"
	"vipipe/internal/mc"
	"vipipe/internal/service/wire"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
)

// Request is one analysis query against the service. Kind selects the
// analysis; the other fields parameterize it. Every request embeds the
// full flow configuration — the engine content-addresses the expensive
// intermediate artifacts by its hash, so requests that share a config
// share one baseline no matter how they interleave.
type Request struct {
	// Kind: "characterize", "islands", "scenario_power",
	// "chipwide_power", "sweep" or "drc".
	Kind string `json:"kind"`
	// Position names a chip position A-D (characterize,
	// scenario_power, chipwide_power).
	Position string `json:"position,omitempty"`
	// Strategy is "vertical", "horizontal" or "corner" (islands,
	// scenario_power, sweep).
	Strategy string `json:"strategy,omitempty"`
	// Scenario is the number of islands to raise, 0..3
	// (scenario_power).
	Scenario int `json:"scenario,omitempty"`

	Config ConfigSpec `json:"config"`
}

// ConfigSpec is the wire form of a flow configuration: a base profile
// plus overrides. Zero values mean "profile default", so an empty spec
// is the paper's full-size setup.
type ConfigSpec struct {
	// Small selects the reduced test core profile.
	Small bool  `json:"small,omitempty"`
	Seed  int64 `json:"seed,omitempty"`

	MCSamples  int `json:"mc_samples,omitempty"`
	VISamples  int `json:"vi_samples,omitempty"`
	FIRSamples int `json:"fir_samples,omitempty"`
	FIRTaps    int `json:"fir_taps,omitempty"`
}

// ToConfig resolves the spec against its base profile.
func (s ConfigSpec) ToConfig() vipipe.Config {
	cfg := vipipe.DefaultConfig()
	if s.Small {
		cfg = vipipe.TestConfig()
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.MCSamples > 0 {
		cfg.MCSamples = s.MCSamples
	}
	if s.VISamples > 0 {
		cfg.VISamples = s.VISamples
	}
	if s.FIRSamples > 0 {
		cfg.FIRSamples = s.FIRSamples
	}
	if s.FIRTaps > 0 {
		cfg.FIRTaps = s.FIRTaps
	}
	return cfg
}

// Engine answers Requests against a content-addressed artifact cache.
// It is safe for concurrent use: baselines are immutable once built
// (the engine never runs the netlist-mutating InsertShifters step) and
// every flow engine it calls is read-only over them.
type Engine struct {
	cache *Cache
	m     *Metrics
}

// NewEngine returns an engine over the given cache and metrics
// registry (metrics may be nil).
func NewEngine(cache *Cache, m *Metrics) *Engine {
	return &Engine{cache: cache, m: m}
}

// Cache exposes the engine's cache (for stats).
func (e *Engine) Cache() *Cache { return e.cache }

// Validate checks a request without running it, so frontends can
// reject malformed submissions synchronously with ErrBadInput.
func (e *Engine) Validate(req Request) error {
	switch req.Kind {
	case "characterize", "chipwide_power":
		_, err := parsePos(req.Config.ToConfig(), req.Position)
		return err
	case "islands":
		_, err := parseStrategy(req.Strategy)
		return err
	case "sweep":
		_, err := parseStrategy(req.Strategy)
		return err
	case "scenario_power":
		if _, err := parseStrategy(req.Strategy); err != nil {
			return err
		}
		if req.Scenario < 0 || req.Scenario > 3 {
			return flowerr.BadInputf("service: scenario %d out of range 0..3", req.Scenario)
		}
		_, err := parsePos(req.Config.ToConfig(), req.Position)
		return err
	case "drc":
		return nil
	default:
		return flowerr.BadInputf("service: unknown request kind %q", req.Kind)
	}
}

// Run executes one request and returns its wire-typed result:
// wire.MCResult, wire.Partition, wire.PowerReport, wire.Sweep or
// wire.DRCReport depending on Kind.
func (e *Engine) Run(ctx context.Context, req Request) (any, error) {
	if err := e.Validate(req); err != nil {
		return nil, err
	}
	cfg := req.Config.ToConfig()
	hash := cfg.Hash()
	switch req.Kind {
	case "characterize":
		pos, _ := parsePos(cfg, req.Position)
		res, err := e.characterize(ctx, cfg, hash, pos)
		if err != nil {
			return nil, err
		}
		return wire.FromMCResult(res), nil
	case "islands":
		strat, _ := parseStrategy(req.Strategy)
		part, err := e.islands(ctx, cfg, hash, strat)
		if err != nil {
			return nil, err
		}
		return wire.FromPartition(part), nil
	case "chipwide_power":
		pos, _ := parsePos(cfg, req.Position)
		f, err := e.baseline(ctx, cfg, hash)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		rep, err := f.ChipWidePower(pos)
		if err != nil {
			return nil, err
		}
		e.m.ObserveStep("power", time.Since(t0))
		return wire.FromPowerReport(rep), nil
	case "scenario_power":
		strat, _ := parseStrategy(req.Strategy)
		pos, _ := parsePos(cfg, req.Position)
		f, err := e.baseline(ctx, cfg, hash)
		if err != nil {
			return nil, err
		}
		part, err := e.islands(ctx, cfg, hash, strat)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		rep, err := f.ScenarioPower(part, req.Scenario, pos)
		if err != nil {
			return nil, err
		}
		e.m.ObserveStep("power", time.Since(t0))
		return wire.FromPowerReport(rep), nil
	case "sweep":
		strat, _ := parseStrategy(req.Strategy)
		return e.sweep(ctx, cfg, hash, strat)
	case "drc":
		f, err := e.baseline(ctx, cfg, hash)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		rep, err := f.CheckReport(nil)
		if err != nil {
			return nil, err
		}
		e.m.ObserveStep("drc", time.Since(t0))
		return wire.FromDRCReport(rep), nil
	default:
		return nil, flowerr.BadInputf("service: unknown request kind %q", req.Kind)
	}
}

// sweep runs the Fig. 5 query: for each diagonal position, classify
// the scenario from the (cached) characterization and compare the VI
// design with that many islands raised against the chip-wide high-Vdd
// baseline.
func (e *Engine) sweep(ctx context.Context, cfg vipipe.Config, hash string, strat vi.Strategy) (wire.Sweep, error) {
	out := wire.Sweep{Strategy: strat.String()}
	f, err := e.baseline(ctx, cfg, hash)
	if err != nil {
		return out, err
	}
	part, err := e.islands(ctx, cfg, hash, strat)
	if err != nil {
		return out, err
	}
	for _, pos := range cfg.Model.DiagonalPositions() {
		res, err := e.characterize(ctx, cfg, hash, pos)
		if err != nil {
			return out, err
		}
		sc, _ := res.Classify(0)
		k := int(sc)
		if k > part.NumIslands() {
			k = part.NumIslands()
		}
		t0 := time.Now()
		viRep, err := f.ScenarioPower(part, k, pos)
		if err != nil {
			return out, err
		}
		baseRep, err := f.ChipWidePower(pos)
		if err != nil {
			return out, err
		}
		e.m.ObserveStep("power", time.Since(t0))
		entry := wire.SweepEntry{
			Position: pos.Name,
			Scenario: k,
			VI:       wire.FromPowerReport(viRep),
			ChipWide: wire.FromPowerReport(baseRep),
		}
		if t := baseRep.TotalMW(); t > 0 {
			entry.TotalRatio = viRep.TotalMW() / t
		}
		if l := baseRep.LeakMW; l > 0 {
			entry.LeakRatio = viRep.LeakMW / l
		}
		out.Entries = append(out.Entries, entry)
	}
	return out, nil
}

// baseline returns the immutable shared flow for a config: synthesized
// netlist, placement, STA with recovered derates, and FIR switching
// activity. Cached under "<hash>/baseline".
func (e *Engine) baseline(ctx context.Context, cfg vipipe.Config, hash string) (*vipipe.Flow, error) {
	v, err := e.cache.Do(ctx, hash+"/baseline", func() (any, int64, error) {
		t0 := time.Now()
		f := vipipe.New(cfg)
		steps := []func(context.Context) error{
			f.Synthesize, f.Place, f.Analyze, f.SimulateWorkload,
		}
		for _, step := range steps {
			if err := step(ctx); err != nil {
				return nil, 0, err
			}
		}
		e.m.ObserveStep("baseline", time.Since(t0))
		// Rough retained size: netlist graph + placement + timing
		// engine scale with cells and nets.
		size := int64(f.NL.NumCells())*400 + int64(f.NL.NumNets())*200
		return f, size, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*vipipe.Flow), nil
}

// characterize returns the Monte Carlo SSTA at one position, cached
// under "<hash>/mc/<pos>". The underlying sta.Analyzer is shared and
// safe for concurrent re-timing (mc.Run itself fans out workers over
// it).
func (e *Engine) characterize(ctx context.Context, cfg vipipe.Config, hash string, pos variation.Pos) (*mc.Result, error) {
	f, err := e.baseline(ctx, cfg, hash)
	if err != nil {
		return nil, err
	}
	v, err := e.cache.Do(ctx, hash+"/mc/"+pos.Name, func() (any, int64, error) {
		t0 := time.Now()
		res, err := mc.Run(ctx, f.STA, &cfg.Model, pos, mc.Options{
			Samples:        cfg.MCSamples,
			Seed:           cfg.Seed,
			ClockPS:        f.ClockPS,
			Derate:         f.Derate,
			PanicTolerance: cfg.PanicTolerance,
		})
		if err != nil {
			return nil, 0, err
		}
		e.m.ObserveStep("mc", time.Since(t0))
		return res, int64(res.Samples)*int64(len(res.PerStage)+1)*16 + 4096, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*mc.Result), nil
}

// islands returns the voltage-island partition for a strategy, cached
// under "<hash>/vi/<strategy>". The partition is generated but NOT
// inserted: InsertShifters mutates the shared netlist and is the one
// flow step the service never runs on a cached baseline.
func (e *Engine) islands(ctx context.Context, cfg vipipe.Config, hash string, strat vi.Strategy) (*vi.Partition, error) {
	f, err := e.baseline(ctx, cfg, hash)
	if err != nil {
		return nil, err
	}
	ladder, err := e.scenarios(ctx, cfg, hash)
	if err != nil {
		return nil, err
	}
	v, err := e.cache.Do(ctx, hash+"/vi/"+strat.String(), func() (any, int64, error) {
		t0 := time.Now()
		part, err := vi.Generate(ctx, f.STA, &cfg.Model, ladder, vi.Options{
			Strategy: strat,
			ClockPS:  f.ClockPS,
			Derate:   f.Derate,
			Samples:  cfg.VISamples,
			Seed:     cfg.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		e.m.ObserveStep("islands", time.Since(t0))
		return part, int64(len(part.Region))*8 + 4096, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*vi.Partition), nil
}

// scenarios derives the scenario ladder from the cached per-position
// characterizations.
func (e *Engine) scenarios(ctx context.Context, cfg vipipe.Config, hash string) ([]variation.Pos, error) {
	order := cfg.Model.DiagonalPositions()
	results := make(map[string]*mc.Result, len(order))
	for _, pos := range order {
		res, err := e.characterize(ctx, cfg, hash, pos)
		if err != nil {
			return nil, err
		}
		results[pos.Name] = res
	}
	return vipipe.ScenarioLadder(order, results)
}

func parsePos(cfg vipipe.Config, name string) (variation.Pos, error) {
	for _, p := range cfg.Model.DiagonalPositions() {
		if p.Name == name {
			return p, nil
		}
	}
	return variation.Pos{}, flowerr.BadInputf("service: unknown chip position %q (model defines A-D)", name)
}

func parseStrategy(s string) (vi.Strategy, error) {
	switch strings.ToLower(s) {
	case "vertical":
		return vi.Vertical, nil
	case "horizontal":
		return vi.Horizontal, nil
	case "corner":
		return vi.Corner, nil
	default:
		return 0, flowerr.BadInputf("service: unknown slicing strategy %q (vertical, horizontal, corner)", s)
	}
}
