package service

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"

	"vipipe"
	"vipipe/internal/drc"
	"vipipe/internal/flowerr"
	"vipipe/internal/mc"
	"vipipe/internal/pipeline"
	"vipipe/internal/power"
	"vipipe/internal/service/wire"
	"vipipe/internal/tmodel"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
	"vipipe/internal/yield"
)

// Request is one analysis query against the service. Kind selects the
// analysis; the other fields parameterize it. Every request embeds the
// full flow configuration — the engine content-addresses the expensive
// intermediate artifacts by its hash, so requests that share a config
// share one baseline no matter how they interleave.
type Request struct {
	// Kind: "characterize", "islands", "scenario_power",
	// "chipwide_power", "sweep", "field_sweep", "whatif" or "drc".
	Kind string `json:"kind"`
	// Position names a chip position A-D (characterize,
	// scenario_power, chipwide_power, whatif).
	Position string `json:"position,omitempty"`
	// Strategy is "vertical", "horizontal" or "corner" (islands,
	// scenario_power, sweep, whatif).
	Strategy string `json:"strategy,omitempty"`
	// Scenario is the number of islands to raise, 0..3
	// (scenario_power).
	Scenario int `json:"scenario,omitempty"`

	// Grid is the "NXxNY" exposure-field lattice (field_sweep;
	// default "8x8").
	Grid string `json:"grid,omitempty"`
	// Shards cuts each position's Monte Carlo samples into that many
	// independently cached shard artifacts (field_sweep; default 4).
	Shards int `json:"shards,omitempty"`
	// Points sets the yield-curve period-axis resolution
	// (field_sweep; default 33).
	Points int `json:"points,omitempty"`
	// Overlays lists local Lgate disturbances, at most one per grid
	// position (field_sweep).
	Overlays []OverlaySpec `json:"overlays,omitempty"`

	// Queries lists the what-if evaluations of a whatif job, answered
	// in request order against one extracted timing model (at least
	// one required).
	Queries []WhatIfSpec `json:"queries,omitempty"`

	// Client identifies the submitter for per-client admission
	// fairness (also settable via the X-Client header). Anonymous
	// (empty) submissions are not quota-bounded; only the global
	// queue limits them.
	Client string `json:"client,omitempty"`

	Config ConfigSpec `json:"config"`
}

// OverlaySpec is the wire form of a yield.PosOverlay: a disc of extra
// gate length at one field position, the knob a warm re-sweep turns.
type OverlaySpec struct {
	Pos       string  `json:"pos"`
	XMM       float64 `json:"x_mm"`
	YMM       float64 `json:"y_mm"`
	RMM       float64 `json:"r_mm"`
	DeltaFrac float64 `json:"delta_frac"`
}

// WhatIfSpec is one what-if query of a whatif job: raise the first
// Raise islands, optionally disturb gate lengths inside an overlay
// disc (OverlaySpec.Pos is ignored here — the disc is placed by its
// explicit core-local coordinates), optionally fold the stored paths'
// level-shifter penalty in.
type WhatIfSpec struct {
	Raise    int          `json:"raise"`
	Overlay  *OverlaySpec `json:"overlay,omitempty"`
	Shifters bool         `json:"shifters,omitempty"`
}

// ConfigSpec is the wire form of a flow configuration: a base profile
// plus overrides. Zero values mean "profile default", so an empty spec
// is the paper's full-size setup.
type ConfigSpec struct {
	// Small selects the reduced test core profile.
	Small bool  `json:"small,omitempty"`
	Seed  int64 `json:"seed,omitempty"`

	MCSamples  int `json:"mc_samples,omitempty"`
	VISamples  int `json:"vi_samples,omitempty"`
	FIRSamples int `json:"fir_samples,omitempty"`
	FIRTaps    int `json:"fir_taps,omitempty"`
}

// ToConfig resolves the spec against its base profile.
func (s ConfigSpec) ToConfig() vipipe.Config {
	cfg := vipipe.DefaultConfig()
	if s.Small {
		cfg = vipipe.TestConfig()
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.MCSamples > 0 {
		cfg.MCSamples = s.MCSamples
	}
	if s.VISamples > 0 {
		cfg.VISamples = s.VISamples
	}
	if s.FIRSamples > 0 {
		cfg.FIRSamples = s.FIRSamples
	}
	if s.FIRTaps > 0 {
		cfg.FIRTaps = s.FIRTaps
	}
	return cfg
}

// Engine answers Requests by requesting artifacts from the flow's
// pipeline graph (vipipe.NewGraph) over the service cache, which
// implements pipeline.Store: every intermediate — synthesis,
// placement, timing, per-position characterization, per-strategy
// partition, power reports — is content-addressed by the config hash
// plus node ID and deduplicated across concurrent jobs. It is safe
// for concurrent use: graph artifacts are immutable once built (the
// engine never runs the netlist-mutating InsertShifters step).
type Engine struct {
	cache *Cache
	store pipeline.Store
	disk  *pipeline.DiskStore
	m     *Metrics

	mu sync.Mutex
	// graphs memoizes the per-config node definitions. Entries are a
	// few closures each (the heavy artifacts live in the bounded
	// cache, not here), so the map is left to grow with the number of
	// distinct configs the daemon has seen.
	graphs map[string]*pipeline.Graph
}

// EngineOption configures optional engine layers.
type EngineOption func(*Engine)

// WithDiskStore tiers a durable artifact store under the in-memory
// cache: graph reads fall through memory to disk before recomputing,
// and fresh pure-data artifacts (characterizations, power reports,
// the ladder, DRC — per vipipe.DiskCodecs) write through, so they
// survive a daemon restart. The disk tier degrades, never fails: a
// broken store dir only costs warm restarts.
func WithDiskStore(ds *pipeline.DiskStore) EngineOption {
	return func(e *Engine) {
		if ds == nil {
			return
		}
		e.disk = ds
		e.store = pipeline.NewTiered(e.cache, ds)
	}
}

// NewEngine returns an engine over the given cache and metrics
// registry (metrics may be nil).
func NewEngine(cache *Cache, m *Metrics, opts ...EngineOption) *Engine {
	e := &Engine{cache: cache, store: cache, m: m, graphs: make(map[string]*pipeline.Graph)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Cache exposes the engine's cache (for stats).
func (e *Engine) Cache() *Cache { return e.cache }

// DiskStore exposes the disk tier wired in with WithDiskStore, or nil.
func (e *Engine) DiskStore() *pipeline.DiskStore { return e.disk }

// Degraded reports whether the durable store is currently
// short-circuiting IO (always false without one): the daemon still
// answers every request from memory and compute, but artifacts are
// not persisting and /metrics + job snapshots surface the condition.
func (e *Engine) Degraded() bool { return e.disk != nil && e.disk.Degraded() }

// graph returns the memoized artifact graph for a config, with hooks
// feeding the per-artifact latency histograms ("artifact.<node>") and
// hit counters ("artifact_hits.<node>") of /metrics.
func (e *Engine) graph(cfg vipipe.Config) *pipeline.Graph {
	hash := cfg.Hash()
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.graphs[hash]; ok {
		return g
	}
	g := vipipe.NewGraph(cfg, e.store, pipeline.WithHooks(pipeline.Hooks{
		OnCompute: func(id string, d time.Duration) { e.m.ObserveStep("artifact."+id, d) },
		OnHit:     func(id string) { e.m.Inc("artifact_hits." + id) },
	}))
	e.graphs[hash] = g
	return g
}

// Validate checks a request without running it, so frontends can
// reject malformed submissions synchronously with ErrBadInput.
func (e *Engine) Validate(req Request) error {
	switch req.Kind {
	case "characterize", "chipwide_power":
		_, err := parsePos(req.Config.ToConfig(), req.Position)
		return err
	case "islands":
		_, err := parseStrategy(req.Strategy)
		return err
	case "sweep":
		_, err := parseStrategy(req.Strategy)
		return err
	case "scenario_power":
		if _, err := parseStrategy(req.Strategy); err != nil {
			return err
		}
		if req.Scenario < 0 || req.Scenario > 3 {
			return flowerr.BadInputf("service: scenario %d out of range 0..3", req.Scenario)
		}
		_, err := parsePos(req.Config.ToConfig(), req.Position)
		return err
	case "field_sweep":
		_, err := fieldPlan(req, req.Config.ToConfig())
		return err
	case "whatif":
		if _, err := parseStrategy(req.Strategy); err != nil {
			return err
		}
		if _, err := parsePos(req.Config.ToConfig(), req.Position); err != nil {
			return err
		}
		if len(req.Queries) == 0 {
			return flowerr.BadInputf("service: whatif needs at least one query")
		}
		for i, q := range req.Queries {
			if q.Raise < 0 {
				return flowerr.BadInputf("service: whatif query %d: negative raise %d", i, q.Raise)
			}
			if q.Overlay != nil && q.Overlay.RMM <= 0 {
				return flowerr.BadInputf("service: whatif query %d: overlay radius %g must be positive", i, q.Overlay.RMM)
			}
		}
		return nil
	case "drc":
		return nil
	default:
		return flowerr.BadInputf("service: unknown request kind %q", req.Kind)
	}
}

// fieldPlan resolves a field_sweep request into a validated yield
// plan: grid and shard defaults filled, sampling shape taken from the
// flow config so the shard artifacts share the characterizations'
// sample budget and seed.
func fieldPlan(req Request, cfg vipipe.Config) (yield.Plan, error) {
	gs := req.Grid
	if gs == "" {
		gs = "8x8"
	}
	g, err := yield.ParseGrid(gs)
	if err != nil {
		return yield.Plan{}, err
	}
	shards := req.Shards
	if shards <= 0 {
		shards = 4
	}
	plan := yield.Plan{
		Grid:    g,
		Samples: cfg.MCSamples,
		Shards:  shards,
		Seed:    cfg.Seed,
		Axis:    yield.CurveAxis{Points: req.Points},
	}
	for _, ov := range req.Overlays {
		plan.Overlays = append(plan.Overlays, yield.PosOverlay{
			Pos: ov.Pos, XMM: ov.XMM, YMM: ov.YMM, RMM: ov.RMM, DeltaFrac: ov.DeltaFrac,
		})
	}
	if err := plan.Validate(); err != nil {
		return yield.Plan{}, err
	}
	// Resolve once here so a bad overlay position rejects at submit
	// time, not in a worker.
	if _, err := plan.ResolvePositions(&cfg.Model); err != nil {
		return yield.Plan{}, err
	}
	return plan, nil
}

// Run executes one request and returns its wire-typed result:
// wire.MCResult, wire.Partition, wire.PowerReport, wire.Sweep or
// wire.DRCReport depending on Kind. Each kind maps to one terminal
// graph artifact (sweep batches several); the graph schedules the
// missing parts of the dependency closure concurrently.
func (e *Engine) Run(ctx context.Context, req Request) (any, error) {
	if err := e.Validate(req); err != nil {
		return nil, err
	}
	cfg := req.Config.ToConfig()
	g := e.graph(cfg)
	switch req.Kind {
	case "characterize":
		pos, _ := parsePos(cfg, req.Position)
		v, err := g.RequestOne(ctx, vipipe.NodeMC(pos.Name))
		if err != nil {
			return nil, err
		}
		return wire.FromMCResult(v.(*mc.Result)), nil
	case "islands":
		strat, _ := parseStrategy(req.Strategy)
		v, err := g.RequestOne(ctx, vipipe.NodeIslands(strat))
		if err != nil {
			return nil, err
		}
		return wire.FromPartition(v.(*vi.Partition)), nil
	case "chipwide_power":
		pos, _ := parsePos(cfg, req.Position)
		v, err := g.RequestOne(ctx, vipipe.NodeChipWidePower(pos.Name))
		if err != nil {
			return nil, err
		}
		return wire.FromPowerReport(v.(*power.Report)), nil
	case "scenario_power":
		strat, _ := parseStrategy(req.Strategy)
		pos, _ := parsePos(cfg, req.Position)
		v, err := g.RequestOne(ctx, vipipe.NodeScenarioPower(strat, req.Scenario, pos.Name))
		if err != nil {
			return nil, err
		}
		return wire.FromPowerReport(v.(*power.Report)), nil
	case "sweep":
		strat, _ := parseStrategy(req.Strategy)
		return e.sweep(ctx, cfg, g, strat)
	case "field_sweep":
		return e.fieldSweep(ctx, cfg, req)
	case "whatif":
		return e.whatIf(ctx, cfg, g, req)
	case "drc":
		v, err := g.RequestOne(ctx, vipipe.NodeDRC)
		if err != nil {
			return nil, err
		}
		return wire.FromDRCReport(v.(*drc.Report)), nil
	default:
		return nil, flowerr.BadInputf("service: unknown request kind %q", req.Kind)
	}
}

// sweep runs the Fig. 5 query: for each diagonal position, classify
// the scenario from the characterization and compare the VI design
// with that many islands raised against the chip-wide high-Vdd
// baseline. It issues two batched graph requests — characterizations
// plus partition, then all power reports — so independent nodes run
// concurrently.
func (e *Engine) sweep(ctx context.Context, cfg vipipe.Config, g *pipeline.Graph, strat vi.Strategy) (wire.Sweep, error) {
	out := wire.Sweep{Strategy: strat.String()}
	positions := cfg.Model.DiagonalPositions()

	ids := []string{vipipe.NodeIslands(strat)}
	for _, pos := range positions {
		ids = append(ids, vipipe.NodeMC(pos.Name))
	}
	arts, err := g.Request(ctx, ids...)
	if err != nil {
		return out, err
	}
	part := arts[vipipe.NodeIslands(strat)].(*vi.Partition)

	// The raised-island count per position: its classified scenario,
	// clamped to the islands the partition actually has.
	scenario := make(map[string]int, len(positions))
	powerIDs := make([]string, 0, 2*len(positions))
	for _, pos := range positions {
		res := arts[vipipe.NodeMC(pos.Name)].(*mc.Result)
		sc, _ := res.Classify(0)
		k := int(sc)
		if k > part.NumIslands() {
			k = part.NumIslands()
		}
		scenario[pos.Name] = k
		powerIDs = append(powerIDs,
			vipipe.NodeScenarioPower(strat, k, pos.Name),
			vipipe.NodeChipWidePower(pos.Name))
	}
	arts, err = g.Request(ctx, powerIDs...)
	if err != nil {
		return out, err
	}
	for _, pos := range positions {
		k := scenario[pos.Name]
		viRep := arts[vipipe.NodeScenarioPower(strat, k, pos.Name)].(*power.Report)
		baseRep := arts[vipipe.NodeChipWidePower(pos.Name)].(*power.Report)
		entry := wire.SweepEntry{
			Position: pos.Name,
			Scenario: k,
			VI:       wire.FromPowerReport(viRep),
			ChipWide: wire.FromPowerReport(baseRep),
		}
		if t := baseRep.TotalMW(); t > 0 {
			entry.TotalRatio = viRep.TotalMW() / t
		}
		if l := baseRep.LeakMW; l > 0 {
			entry.LeakRatio = viRep.LeakMW / l
		}
		out.Entries = append(out.Entries, entry)
	}
	return out, nil
}

// whatIf serves a batch of what-if queries from the cached compact
// timing model (vipipe.NodeTimingModel): the model extracts once per
// (config, strategy, position) and every subsequent query composes in
// microseconds. Out-of-domain queries fall back to one exact STA run
// each; /metrics splits the two paths as whatif.composed and
// whatif.fallback.
func (e *Engine) whatIf(ctx context.Context, cfg vipipe.Config, g *pipeline.Graph, req Request) (wire.WhatIf, error) {
	strat, _ := parseStrategy(req.Strategy)
	pos, _ := parsePos(cfg, req.Position)
	id := vipipe.NodeTimingModel(strat, pos.Name)
	arts, err := g.Request(ctx, id, vipipe.NodeAnalyze, vipipe.NodeIslands(strat))
	if err != nil {
		return wire.WhatIf{}, err
	}
	tm := arts[vipipe.NodeAnalyze].(*vipipe.Timing)
	part := arts[vipipe.NodeIslands(strat)].(*vi.Partition)
	m := arts[id].(*tmodel.Model)
	out := wire.WhatIf{
		Strategy: strat.String(),
		Position: pos.Name,
		ClockPS:  m.ClockPS,
		Islands:  part.NumIslands(),
	}
	for i, qs := range req.Queries {
		q := tmodel.Query{Raise: qs.Raise, Shifters: qs.Shifters}
		if qs.Overlay != nil {
			q.Overlay = &tmodel.Disc{
				XMM: qs.Overlay.XMM, YMM: qs.Overlay.YMM,
				RMM: qs.Overlay.RMM, DeltaFrac: qs.Overlay.DeltaFrac,
			}
		}
		ans, err := vipipe.EvalWhatIf(cfg, tm, part, m, pos, q)
		if err != nil {
			return wire.WhatIf{}, flowerr.BadInputf("service: whatif query %d: %v", i, err)
		}
		if ans.Exact {
			e.m.Inc("whatif.fallback")
		} else {
			e.m.Inc("whatif.composed")
		}
		out.Answers = append(out.Answers, wire.FromWhatIfAnswer(qs.Raise, qs.Shifters, ans))
	}
	return out, nil
}

// fieldSweep runs the yield-surface query. Unlike the other kinds it
// builds a per-request graph: the field/* nodes are keyed by the
// plan's content hashes, not just the config hash. Construction is a
// few closures per shard; the store still deduplicates the artifacts,
// so two requests with the same plan share every shard, and a request
// differing at one position recomputes only that position's shards.
// Hook wiring feeds /metrics (computed vs cache-hit shard counters,
// aggregate shard latency), the job-snapshot progress sink, and the
// live /events stream: OnResolve sees each shard artifact with its
// cache disposition, so every shard completion carries the position's
// running median yield over the shards folded so far.
func (e *Engine) fieldSweep(ctx context.Context, cfg vipipe.Config, req Request) (wire.Surface, error) {
	plan, err := fieldPlan(req, cfg)
	if err != nil {
		return wire.Surface{}, err
	}
	total := plan.NumShards()
	var mu sync.Mutex
	done := 0
	running := make(map[string]yield.ShardStat)
	// Shard metrics aggregate under one name — per-shard keys would
	// grow the registry with every distinct plan.
	metricName := func(id string) string {
		switch {
		case strings.HasPrefix(id, "field/surface/"):
			return "field_surface"
		case strings.HasPrefix(id, "field/"):
			return "field_shard"
		default:
			return id
		}
	}
	hooks := pipeline.WithHooks(pipeline.Hooks{
		OnCompute: func(id string, dur time.Duration) {
			e.m.ObserveStep("artifact."+metricName(id), dur)
		},
		OnHit: func(id string) {
			e.m.Inc("artifact_hits." + metricName(id))
		},
		OnResolve: func(id string, v any, cached bool) {
			st, ok := v.(*yield.ShardStat)
			if !ok {
				return // surface node or other kinds
			}
			if cached {
				e.m.Inc("yield.shards_cached")
			} else {
				e.m.Inc("yield.shards_computed")
			}
			mu.Lock()
			done++
			d := done
			acc, seen := running[st.Key]
			if !seen {
				acc = *st
			} else if merged, err := acc.Merge(*st); err == nil {
				acc = merged
			}
			running[st.Key] = acc
			mu.Unlock()
			reportProgress(ctx, d, total)
			reportShard(ctx, ShardEvent{
				Pos:    st.Pos,
				Shard:  shardIndex(id),
				Cached: cached,
				Done:   d,
				Total:  total,
				Yield:  medianYield(acc),
			})
		},
	})
	reportProgress(ctx, 0, total)
	g, surfaceID, err := vipipe.NewYieldGraph(cfg, plan, e.store, hooks)
	if err != nil {
		return wire.Surface{}, err
	}
	v, err := g.RequestOne(ctx, surfaceID)
	if err != nil {
		return wire.Surface{}, err
	}
	return wire.FromSurface(v.(*yield.Surface)), nil
}

// shardIndex parses the trailing shard number of a field shard node
// ID ("field/<pos>-<key>/<n>"), -1 when there is none.
func shardIndex(id string) int {
	i := strings.LastIndexByte(id, '/')
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return -1
	}
	return n
}

// medianYield reports the running median-period yield of a position's
// folded shard stats: the middle point of the yield curve, from the
// overlay-perturbed histogram when the position carries one (that is
// the curve the surface will report).
func medianYield(st yield.ShardStat) float64 {
	h := st.Hist
	if st.HasOverlay {
		h = st.OvHist
	}
	ys := h.Yields()
	if len(ys) == 0 {
		return 0
	}
	return ys[len(ys)/2]
}

func parsePos(cfg vipipe.Config, name string) (variation.Pos, error) {
	if p, ok := cfg.Model.Position(name); ok {
		return p, nil
	}
	return variation.Pos{}, flowerr.BadInputf("service: unknown chip position %q (model defines A-D)", name)
}

func parseStrategy(s string) (vi.Strategy, error) {
	return vi.ParseStrategy(strings.ToLower(s))
}
