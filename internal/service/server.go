package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"vipipe/internal/flowerr"
	"vipipe/internal/obs"
	"vipipe/internal/service/wire"
)

// Server is the HTTP frontend of the job manager.
//
// Endpoints:
//
//	POST /jobs             submit a Request           -> 202 + JobSnapshot
//	GET  /jobs             list jobs                  -> 200 + [JobSnapshot]
//	GET  /jobs/{id}        job status                 -> 200 + JobSnapshot
//	GET  /jobs/{id}/result fetch a terminal result    -> 200 + wire DTO,
//	                       or the flowerr-mapped status of the failure
//	POST /jobs/{id}/cancel request cancellation       -> 200 + JobSnapshot
//	GET  /metrics          metrics snapshot           -> 200 + Snapshot
//	GET  /metrics/history  rolling telemetry window   -> 200 + HistoryView
//	                       (?window=5m; needs WithHistory)
//	GET  /events           live job stream            -> 200, Server-Sent Events
//	GET  /healthz          liveness                   -> 200
//	GET  /debug/runs       flight-recorder index      -> 200 + [obs.Summary]
//	                       (?limit=N newest)
//	GET  /debug/trace/{id} Chrome trace-event JSON    -> 200 (Perfetto-loadable)
//	GET  /debug/profile    cross-run cost table       -> 200 + obs.CostTable
//	GET  /debug/profile/{id} one job's run profile    -> 200 + obs.RunProfile
//	                       (?format=text for the tree report)
//	GET  /debug/pprof/...  net/http/pprof             (only with WithPprof)
//
// Failure classes map onto statuses via flowerr.HTTPStatus: bad input
// 400, step order 409, cancelled 499, no-scenario and DRC 422, panics
// and partial steps 500. Submission while draining is 503; a full
// queue or a client past its fairness quota is 429. The 429/503
// rejections carry a Retry-After header paced by the queue depth.
// When the durable store degrades, /metrics reports store.mode
// "degraded" and every job snapshot carries "degraded": true.
type Server struct {
	mgr  *Manager
	m    *Metrics
	hist *MetricsHistory
	mux  *http.ServeMux
}

// ServerOption configures optional routes.
type ServerOption func(*Server)

// WithPprof mounts net/http/pprof under /debug/pprof/. Off by default:
// profiling endpoints expose stacks and heap contents, so the daemon
// only enables them behind its -debug flag.
func WithPprof() ServerOption {
	return func(s *Server) {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// WithHistory wires the rolling telemetry ring that backs
// /metrics/history. The daemon samples into it on its own cadence;
// without one the endpoint serves an empty window.
func WithHistory(h *MetricsHistory) ServerOption {
	return func(s *Server) { s.hist = h }
}

// NewServer wires the routes.
func NewServer(mgr *Manager, m *Metrics, opts ...ServerOption) *Server {
	s := &Server{mgr: mgr, m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics/history", s.handleHistory)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /debug/runs", s.handleRuns)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /debug/profile", s.handleProfileIndex)
	s.mux.HandleFunc("GET /debug/profile/{id}", s.handleProfile)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = wire.Encode(w, v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Class: flowerr.Class(err)})
}

// writeBackpressure is writeError plus a Retry-After header, for the
// availability rejections (429 backpressure, 503 draining) where the
// client's correct move is to come back, not to fix the request.
func (s *Server) writeBackpressure(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfterSeconds()))
	writeError(w, status, err)
}

// snapshot stamps the store health onto a job's snapshot, so clients
// polling a job learn when results stopped persisting.
func (s *Server) snapshot(job *Job) JobSnapshot {
	snap := job.Snapshot()
	snap.Degraded = s.mgr.Degraded()
	return snap
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, flowerr.BadInputf("service: bad request body: %v", err))
		return
	}
	if req.Client == "" {
		req.Client = r.Header.Get("X-Client")
	}
	job, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, ErrDraining):
		s.writeBackpressure(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClientSaturated):
		s.writeBackpressure(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeError(w, flowerr.HTTPStatus(err), err)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, s.snapshot(job))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	list := s.mgr.List()
	if s.mgr.Degraded() {
		for i := range list {
			list[i].Degraded = true
		}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, flowerr.BadInputf("service: no job %q", id))
	}
	return job, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, s.snapshot(job))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	res, err := job.Result()
	if err != nil {
		writeError(w, flowerr.HTTPStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.mgr.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, flowerr.BadInputf("service: no job %q", id))
		return
	}
	snap.Degraded = s.mgr.Degraded()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Snapshot(s.mgr.eng.Cache(), s.mgr))
}

// handleHistory serves the rolling telemetry window. ?window=5m
// bounds how far back (any time.ParseDuration form; absent or zero
// means everything retained).
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	var window time.Duration
	if ws := r.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil {
			writeError(w, http.StatusBadRequest, flowerr.BadInputf("service: bad window %q: %v", ws, err))
			return
		}
		window = d
	}
	writeJSON(w, http.StatusOK, s.hist.View(window))
}

// handleEvents streams the manager's live job events as Server-Sent
// Events: one "event: <type>" + "data: <Event JSON>" block per event.
// A subscriber that stops reading loses events (counted in
// events.dropped) instead of backpressuring the workers, and a write
// stuck longer than 15s tears the stream down. The stream ends when
// the client disconnects or the manager drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, flowerr.BadInputf("service: response writer cannot stream"))
		return
	}
	ch, cancel := s.mgr.Events().Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	rc := http.NewResponseController(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			_ = rc.SetWriteDeadline(obs.Now().Add(15 * time.Second))
			if _, err := w.Write([]byte("event: " + ev.Type + "\n")); err != nil {
				return
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if err := json.NewEncoder(w).Encode(ev); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// handleRuns serves the flight-recorder index: one summary per
// retained job trace, newest first. An empty list (also when no
// recorder is wired) is a valid answer, not an error. ?limit=N keeps
// only the N newest.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	list := s.mgr.Recorder().List()
	if list == nil {
		list = []obs.Summary{}
	}
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, flowerr.BadInputf("service: bad limit %q", ls))
			return
		}
		if n < len(list) {
			list = list[:n]
		}
	}
	writeJSON(w, http.StatusOK, list)
}

// handleProfileIndex serves the cross-run cost table: every retained
// trace profiled and folded into one per-node-kind account, answering
// "where do the microseconds go across the recent workload".
func (s *Server) handleProfileIndex(w http.ResponseWriter, r *http.Request) {
	ct := obs.AggregateCosts(s.mgr.Recorder().Traces())
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = ct.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, ct)
}

// handleProfile serves one retained job's run profile — self-times,
// critical path, per-kind cost table. ?format=text renders the
// human-readable tree report instead of JSON.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.mgr.Recorder().Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, flowerr.BadInputf("service: no recorded trace for job %q (recorder keeps recent jobs only)", id))
		return
	}
	p := obs.Profile(t)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = p.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// handleTrace serves one retained trace as Chrome trace-event JSON —
// the same format the CLIs write with -trace, loadable in Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.mgr.Recorder().Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, flowerr.BadInputf("service: no recorded trace for job %q (recorder keeps recent jobs only)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = t.WriteChrome(w)
}
