package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vipipe/internal/obs"
	"vipipe/internal/pipeline"
)

// Metrics is the service's stdlib-only metrics registry, published as
// JSON at /metrics (expvar-style: a flat snapshot, no scrape
// protocol). Counters are monotonic; gauges are instantaneous;
// latency histograms use fixed exponential millisecond buckets.
//
// Metric names (stable):
//
//	jobs.submitted / completed / failed / cancelled / rejected
//	jobs.queue_depth / workers_busy / workers
//	cache.hits / misses / evictions / entries / size_bytes / cap_bytes / hit_rate
//	latency_ms.<step>.{count,mean,p50,p90,p95,p99,max,buckets}
//	counters.<name>
//
// Steps are "artifact.<node>" for pipeline-graph computes (one
// histogram per artifact: "artifact.synth", "artifact.mc/A",
// "artifact.vi/vertical", "artifact.power/vertical/2/B", ...) and
// "job.<kind>" for whole-job latencies. Counters carry per-artifact
// store traffic as "artifact_hits.<node>".
type Metrics struct {
	start time.Time

	JobsSubmitted atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	// JobsRejected counts every refused submission; JobsQueueFull and
	// JobsThrottled break out the two backpressure causes (queue at
	// capacity, per-client quota) so operators can tell overload from
	// one noisy client.
	JobsRejected  atomic.Int64
	JobsQueueFull atomic.Int64
	JobsThrottled atomic.Int64
	WorkersBusy   atomic.Int64

	mu       sync.Mutex
	hists    map[string]*Histogram
	counters map[string]*atomic.Int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    obs.Now(),
		hists:    make(map[string]*Histogram),
		counters: make(map[string]*atomic.Int64),
	}
}

// Inc bumps a named monotonic counter, creating it on first use.
func (m *Metrics) Inc(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c := m.counters[name]
	if c == nil {
		c = new(atomic.Int64)
		m.counters[name] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// ObserveStep records one latency sample for a named step.
func (m *Metrics) ObserveStep(step string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[step]
	if h == nil {
		h = newHistogram()
		m.hists[step] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// histBoundsMS are the upper bucket bounds in milliseconds; the last
// bucket is unbounded.
var histBoundsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// Histogram is a fixed-bucket latency histogram, safe for concurrent
// observation.
type Histogram struct {
	buckets []atomic.Int64 // len(histBoundsMS)+1, last = overflow
	count   atomic.Int64
	sumUS   atomic.Int64 // sum in microseconds
	maxUS   atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, len(histBoundsMS)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(histBoundsMS, ms)
	h.buckets[i].Add(1)
	h.count.Add(1)
	us := d.Microseconds()
	h.sumUS.Add(us)
	for {
		old := h.maxUS.Load()
		if us <= old || h.maxUS.CompareAndSwap(old, us) {
			break
		}
	}
}

// HistogramSnapshot is the JSON view of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	MeanMS  float64          `json:"mean_ms"`
	P50MS   float64          `json:"p50_ms"`
	P90MS   float64          `json:"p90_ms"`
	P95MS   float64          `json:"p95_ms"`
	P99MS   float64          `json:"p99_ms"`
	MaxMS   float64          `json:"max_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot renders the histogram. Percentiles interpolate linearly
// within the resolved bucket (samples spread uniformly between its
// bounds); a percentile landing in the overflow bucket reports the
// observed max, the only bound that bucket has.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count:   total,
		MaxMS:   float64(h.maxUS.Load()) / 1000,
		Buckets: make(map[string]int64, len(counts)),
	}
	if total > 0 {
		s.MeanMS = float64(h.sumUS.Load()) / 1000 / float64(total)
	}
	pct := func(q float64) float64 {
		want := q * float64(total)
		var cum int64
		for i, c := range counts {
			if c > 0 && float64(cum+c) > want {
				if i >= len(histBoundsMS) {
					return s.MaxMS
				}
				lo := 0.0
				if i > 0 {
					lo = histBoundsMS[i-1]
				}
				frac := (want - float64(cum)) / float64(c)
				return lo + frac*(histBoundsMS[i]-lo)
			}
			cum += c
		}
		return s.MaxMS
	}
	if total > 0 {
		s.P50MS = pct(0.50)
		s.P90MS = pct(0.90)
		s.P95MS = pct(0.95)
		s.P99MS = pct(0.99)
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if i < len(histBoundsMS) {
			s.Buckets[formatBound(histBoundsMS[i])] = c
		} else {
			s.Buckets["le_inf"] = c
		}
	}
	return s
}

func formatBound(ms float64) string {
	// Bounds are integral milliseconds by construction.
	n := int64(ms)
	const digits = "0123456789"
	if n == 0 {
		return "le_0"
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return "le_" + string(buf[i:])
}

// Snapshot is the full /metrics payload.
type Snapshot struct {
	UptimeS  float64                      `json:"uptime_s"`
	Degraded bool                         `json:"degraded"`
	Jobs     JobCounters                  `json:"jobs"`
	Cache    CacheStatsView               `json:"cache"`
	Store    StoreStatus                  `json:"store"`
	Latency  map[string]HistogramSnapshot `json:"latency_ms"`
	Counters map[string]int64             `json:"counters,omitempty"`
}

// JobCounters is the job-manager section of /metrics.
type JobCounters struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Cancelled   int64 `json:"cancelled"`
	Rejected    int64 `json:"rejected"`
	QueueFull   int64 `json:"queue_full"`
	Throttled   int64 `json:"throttled"`
	QueueDepth  int   `json:"queue_depth"`
	WorkersBusy int64 `json:"workers_busy"`
	Workers     int   `json:"workers"`
}

// StoreStatus is the durable-store section of /metrics. Mode is "off"
// (no -store dir), "ok", or "degraded" (IO short-circuited after
// repeated failures; serving continues from memory and compute).
type StoreStatus struct {
	Mode string              `json:"mode"`
	Disk *pipeline.DiskStats `json:"disk,omitempty"`
}

// CacheStatsView adds the derived hit rate to the raw cache stats.
type CacheStatsView struct {
	CacheStats
	HitRate float64 `json:"hit_rate"`
}

// Snapshot assembles the /metrics payload from the registry plus the
// cache and manager the server wires in (either may be nil).
func (m *Metrics) Snapshot(cache *Cache, mgr *Manager) Snapshot {
	s := Snapshot{
		UptimeS: obs.Since(m.start).Seconds(),
		Jobs: JobCounters{
			Submitted:   m.JobsSubmitted.Load(),
			Completed:   m.JobsCompleted.Load(),
			Failed:      m.JobsFailed.Load(),
			Cancelled:   m.JobsCancelled.Load(),
			Rejected:    m.JobsRejected.Load(),
			QueueFull:   m.JobsQueueFull.Load(),
			Throttled:   m.JobsThrottled.Load(),
			WorkersBusy: m.WorkersBusy.Load(),
		},
		Store:   StoreStatus{Mode: "off"},
		Latency: make(map[string]HistogramSnapshot),
	}
	if cache != nil {
		cs := cache.Stats()
		s.Cache = CacheStatsView{CacheStats: cs, HitRate: cs.HitRate()}
	}
	if mgr != nil {
		s.Jobs.QueueDepth = mgr.QueueDepth()
		s.Jobs.Workers = mgr.Workers()
		if ds := mgr.eng.DiskStore(); ds != nil {
			st := ds.Stats()
			s.Store = StoreStatus{Mode: "ok", Disk: &st}
			if st.Degraded {
				s.Store.Mode = "degraded"
			}
		}
		s.Degraded = mgr.Degraded()
	}
	m.mu.Lock()
	for name, h := range m.hists {
		s.Latency[name] = h.Snapshot()
	}
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for name, c := range m.counters {
			s.Counters[name] = c.Load()
		}
	}
	m.mu.Unlock()
	return s
}
