// Package service exposes the vipipe flow as a long-running analysis
// service: a content-addressed result cache over the expensive flow
// artifacts, a job manager with a bounded worker pool, and an HTTP
// frontend (cmd/vipiped) with a /metrics endpoint. The design mirrors
// an inference-serving stack: one immutable baseline per configuration
// hash, cached characterizations layered on top, and many concurrent
// parameterized queries that share them.
package service

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"vipipe/internal/flowerr"
)

// Cache is a size-bounded, content-addressed LRU over flow artifacts.
// Keys are derived from vipipe.Config.Hash plus the artifact path
// (e.g. "a1b2.../mc/B"), so identical configurations share one
// synthesize+place+analyze+characterize no matter how many jobs ask.
//
// Do is singleflight: concurrent callers of the same missing key block
// on one compute instead of duplicating it. A failed compute is never
// cached — the next caller retries — so one cancelled job cannot
// poison the key for everyone else.
type Cache struct {
	mu       sync.Mutex
	capBytes int64
	size     int64
	ll       *list.List // front = most recently used, of *cacheEntry
	items    map[string]*list.Element
	inflight map[string]*cacheCall

	hits, misses, evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	val  any
	size int64
}

type cacheCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns a cache bounded to roughly capBytes of artifact
// cost (as reported by the compute callbacks; estimates, not exact
// heap bytes).
func NewCache(capBytes int64) *Cache {
	if capBytes <= 0 {
		capBytes = 1 << 30
	}
	return &Cache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*cacheCall),
	}
}

// Do returns the cached value for key, or runs compute once — however
// many goroutines ask concurrently — and caches its result. compute
// reports the artifact's approximate retained size for the LRU bound.
// Waiters honor ctx: a cancelled waiter returns early with an error
// matching flowerr.ErrCancelled while the compute (owned by the first
// caller) continues for the others.
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*cacheEntry).val
			c.hits.Add(1)
			c.mu.Unlock()
			return v, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, flowerr.Cancelledf("cache: wait for %q: %w", key, ctx.Err())
			}
			if call.err == nil {
				return call.val, nil
			}
			// The computing caller failed (its cancellation, its
			// panic): retry from the top — this caller may own the
			// recompute now.
			if err := ctx.Err(); err != nil {
				return nil, flowerr.Cancelledf("cache: wait for %q: %w", key, err)
			}
			continue
		}
		call := &cacheCall{done: make(chan struct{})}
		c.inflight[key] = call
		c.misses.Add(1)
		c.mu.Unlock()

		val, size, err := compute()
		call.val, call.err = val, err

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.insert(key, val, size)
		}
		c.mu.Unlock()
		close(call.done)
		return val, err
	}
}

// Get returns the cached value without computing, counting a hit or
// miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// insert adds an entry and evicts LRU entries past the byte bound; the
// caller holds mu. The just-inserted entry is never evicted, even when
// it alone exceeds the bound — evicting it would turn every access
// into a recompute of the most expensive artifact.
func (c *Cache) insert(key string, val any, size int64) {
	if size < 1 {
		size = 1
	}
	if el, ok := c.items[key]; ok { // lost a race via Do retry loop
		c.size -= el.Value.(*cacheEntry).size
		c.ll.Remove(el)
		delete(c.items, key)
	}
	e := &cacheEntry{key: key, val: val, size: size}
	c.items[key] = c.ll.PushFront(e)
	c.size += size
	for c.size > c.capBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		be := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, be.key)
		c.size -= be.size
		c.evictions.Add(1)
	}
}

// CacheStats is an accounting snapshot for /metrics.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	SizeBytes int64 `json:"size_bytes"`
	CapBytes  int64 `json:"cap_bytes"`
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Stats snapshots the accounting counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.ll.Len(),
		SizeBytes: c.size,
		CapBytes:  c.capBytes,
	}
}
