package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vipipe/internal/obs"
	"vipipe/internal/service/wire"
)

// tinySpec is the smallest configuration that still exercises every
// flow step: the reduced test core with trimmed sample counts.
var tinySpec = ConfigSpec{Small: true, Seed: 1, MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4}

// slowSpec is tinySpec with a Monte Carlo run long enough for a test
// to catch the job in the running state and cancel it.
var slowSpec = ConfigSpec{Small: true, Seed: 1, MCSamples: 400000, VISamples: 24, FIRSamples: 8, FIRTaps: 4}

func newTestServer(t *testing.T, workers, queueCap int) (*httptest.Server, *Manager, *Metrics) {
	t.Helper()
	m := NewMetrics()
	mgr := NewManager(NewEngine(NewCache(64<<20), m), m, workers, queueCap,
		WithRecorder(obs.NewRecorder(8)))
	ts := httptest.NewServer(NewServer(mgr, m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = mgr.Drain(ctx)
	})
	return ts, mgr, m
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decode %q: %v", b, err)
	}
}

func submit(t *testing.T, base string, req Request, wantStatus int) JobSnapshot {
	t.Helper()
	resp := postJSON(t, base+"/jobs", req)
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit = %d, body %s; want %d", resp.StatusCode, b, wantStatus)
	}
	var snap JobSnapshot
	decodeBody(t, resp, &snap)
	return snap
}

// waitState polls a job until pred holds or the deadline passes.
func waitState(t *testing.T, base, id string, pred func(JobSnapshot) bool) JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap JobSnapshot
		decodeBody(t, resp, &snap)
		if pred(snap) {
			return snap
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state", id)
	return JobSnapshot{}
}

func metricsSnapshot(t *testing.T, base string) Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	decodeBody(t, resp, &s)
	return s
}

func TestServiceLifecycle(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 16)

	resp := postJSON(t, ts.URL+"/jobs", Request{Kind: "characterize", Position: "A", Config: tinySpec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	var snap JobSnapshot
	decodeBody(t, resp, &snap)
	if loc != "/jobs/"+snap.ID {
		t.Fatalf("Location = %q; want /jobs/%s", loc, snap.ID)
	}

	done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobDone {
		t.Fatalf("job finished %s (%s); want done", done.State, done.Error)
	}

	rr, err := http.Get(ts.URL + loc + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result = %d; want 200", rr.StatusCode)
	}
	var res wire.MCResult
	decodeBody(t, rr, &res)
	if res.Position != "A" || res.Samples != tinySpec.MCSamples || len(res.Stages) == 0 {
		t.Fatalf("result = %+v; want position A with %d samples and stages", res, tinySpec.MCSamples)
	}

	// The job shows up in the listing and in /metrics.
	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []JobSnapshot
	decodeBody(t, lr, &all)
	if len(all) != 1 || all[0].ID != snap.ID {
		t.Fatalf("list = %+v; want the one job", all)
	}
	ms := metricsSnapshot(t, ts.URL)
	if ms.Jobs.Completed != 1 || ms.Jobs.Submitted != 1 {
		t.Fatalf("metrics jobs = %+v; want 1 submitted, 1 completed", ms.Jobs)
	}
	if ms.Latency["job.characterize"].Count != 1 {
		t.Fatalf("latency = %+v; want one job.characterize sample", ms.Latency)
	}
}

func TestServiceRejectsBadSubmissions(t *testing.T) {
	ts, _, m := newTestServer(t, 1, 4)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown kind", `{"kind":"frobnicate","config":{"small":true}}`, 400},
		{"unknown position", `{"kind":"characterize","position":"Z","config":{"small":true}}`, 400},
		{"unknown strategy", `{"kind":"islands","strategy":"diagonal","config":{"small":true}}`, 400},
		{"scenario out of range", `{"kind":"scenario_power","strategy":"vertical","position":"A","scenario":7,"config":{"small":true}}`, 400},
		{"unknown field", `{"kind":"characterize","position":"A","bogus":1}`, 400},
		{"garbage", `{nope`, 400},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var eb struct {
			Error string `json:"error"`
			Class string `json:"class"`
		}
		code := resp.StatusCode
		decodeBody(t, resp, &eb)
		if code != tc.want || eb.Class != "bad-input" {
			t.Errorf("%s: status %d class %q (%s); want %d bad-input", tc.name, code, eb.Class, eb.Error, tc.want)
		}
	}
	if got := m.JobsRejected.Load(); got < 4 {
		t.Fatalf("rejected = %d; want the validated rejections counted", got)
	}

	// Unknown job everywhere: 404.
	for _, ep := range []string{"/jobs/job-999999", "/jobs/job-999999/result"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d; want 404", ep, resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/jobs/job-999999/cancel", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown = %d; want 404", resp.StatusCode)
	}
}

func TestServiceCancelRunningJob(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 4)

	snap := submit(t, ts.URL, Request{Kind: "characterize", Position: "B", Config: slowSpec}, http.StatusAccepted)
	waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State == JobRunning })

	// Result before terminal: 409 via ErrStepOrder.
	rr, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("early result = %d; want 409", rr.StatusCode)
	}

	cr := postJSON(t, ts.URL+"/jobs/"+snap.ID+"/cancel", struct{}{})
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d; want 200", cr.StatusCode)
	}
	cr.Body.Close()

	done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobCancelled || done.Class != "cancelled" {
		t.Fatalf("after cancel: state %s class %q; want cancelled/cancelled", done.State, done.Class)
	}

	rr, err = http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var eb struct {
		Class string `json:"class"`
	}
	code := rr.StatusCode
	decodeBody(t, rr, &eb)
	if code != 499 || eb.Class != "cancelled" {
		t.Fatalf("cancelled result = %d class %q; want 499 cancelled", code, eb.Class)
	}
	if ms := metricsSnapshot(t, ts.URL); ms.Jobs.Cancelled != 1 {
		t.Fatalf("metrics cancelled = %d; want 1", ms.Jobs.Cancelled)
	}
}

func TestServiceCancelQueuedJobAndQueueFull(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 1)

	// Occupy the single worker, then fill the single queue slot.
	running := submit(t, ts.URL, Request{Kind: "characterize", Position: "A", Config: slowSpec}, http.StatusAccepted)
	waitState(t, ts.URL, running.ID, func(s JobSnapshot) bool { return s.State == JobRunning })
	queued := submit(t, ts.URL, Request{Kind: "characterize", Position: "B", Config: slowSpec}, http.StatusAccepted)

	resp := postJSON(t, ts.URL+"/jobs", Request{Kind: "characterize", Position: "C", Config: slowSpec})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit to full queue = %d; want 429", resp.StatusCode)
	}

	// Cancelling the queued job terminates it without a worker.
	cr := postJSON(t, ts.URL+"/jobs/"+queued.ID+"/cancel", struct{}{})
	var snap JobSnapshot
	decodeBody(t, cr, &snap)
	if snap.State != JobCancelled {
		t.Fatalf("queued job after cancel = %s; want cancelled immediately", snap.State)
	}

	// Unblock the worker for cleanup.
	postJSON(t, ts.URL+"/jobs/"+running.ID+"/cancel", struct{}{}).Body.Close()
	waitState(t, ts.URL, running.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
}

// TestServiceConcurrentClients drives ≥8 clients with mixed request
// kinds sharing one configuration, so the content-addressed cache and
// the singleflight paths are exercised under the race detector.
func TestServiceConcurrentClients(t *testing.T) {
	ts, _, _ := newTestServer(t, 4, 32)

	reqs := []Request{
		{Kind: "characterize", Position: "A", Config: tinySpec},
		{Kind: "characterize", Position: "B", Config: tinySpec},
		{Kind: "characterize", Position: "C", Config: tinySpec},
		{Kind: "characterize", Position: "D", Config: tinySpec},
		{Kind: "islands", Strategy: "vertical", Config: tinySpec},
		{Kind: "islands", Strategy: "horizontal", Config: tinySpec},
		{Kind: "chipwide_power", Position: "A", Config: tinySpec},
		{Kind: "scenario_power", Strategy: "vertical", Position: "A", Scenario: 2, Config: tinySpec},
		{Kind: "sweep", Strategy: "vertical", Config: tinySpec},
		{Kind: "drc", Config: tinySpec},
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/jobs", req)
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				errs <- fmt.Errorf("client %d: submit = %d", i, resp.StatusCode)
				return
			}
			var snap JobSnapshot
			decodeBody(t, resp, &snap)
			done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
			if done.State != JobDone {
				errs <- fmt.Errorf("client %d (%s): state %s: %s", i, req.Kind, done.State, done.Error)
				return
			}
			rr, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
			if err != nil {
				errs <- err
				return
			}
			defer rr.Body.Close()
			if rr.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: result = %d", i, rr.StatusCode)
			}
		}(i, req)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ms := metricsSnapshot(t, ts.URL)
	if ms.Jobs.Completed != int64(len(reqs)) {
		t.Fatalf("completed = %d; want %d", ms.Jobs.Completed, len(reqs))
	}
	// Ten jobs over one config hash: one baseline build, everything
	// else reuses it, so the cache must report hits.
	if ms.Cache.Hits == 0 {
		t.Fatalf("cache stats = %+v; want shared-config hits", ms.Cache)
	}
	if ms.Cache.HitRate <= 0 {
		t.Fatalf("hit rate = %v; want positive", ms.Cache.HitRate)
	}
}

func TestServiceDrainKeepsCompletedResults(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 2, 8)

	snap := submit(t, ts.URL, Request{Kind: "islands", Strategy: "vertical", Config: tinySpec}, http.StatusAccepted)
	done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobDone {
		t.Fatalf("job = %s (%s); want done", done.State, done.Error)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats, err := mgr.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if stats.Aborted != 0 {
		t.Fatalf("drain stats = %+v; want no aborted jobs", stats)
	}

	// Completed results survive the drain...
	rr, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("post-drain result = %d; want 200", rr.StatusCode)
	}
	// ...and new submissions are refused with 503.
	resp := postJSON(t, ts.URL+"/jobs", Request{Kind: "drc", Config: tinySpec})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d; want 503", resp.StatusCode)
	}
}

func TestFlightRecorderEndpoints(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 8)

	snap := submit(t, ts.URL, Request{Kind: "characterize", Position: "A", Config: tinySpec}, http.StatusAccepted)
	done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
	if done.State != JobDone {
		t.Fatalf("job = %s (%s); want done", done.State, done.Error)
	}

	// The index lists the finished job, newest first.
	resp, err := http.Get(ts.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	var runs []obs.Summary
	decodeBody(t, resp, &runs)
	if len(runs) != 1 || runs[0].ID != snap.ID || runs[0].Name != "characterize" {
		t.Fatalf("/debug/runs = %+v; want one entry for %s", runs, snap.ID)
	}
	if runs[0].Spans == 0 {
		t.Fatalf("recorded trace has no spans: %+v", runs[0])
	}

	// The trace endpoint serves the same Chrome trace-event format the
	// CLIs write, with the per-node cache attribute present.
	resp, err = http.Get(ts.URL + "/debug/trace/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace/%s = %d; want 200", snap.ID, resp.StatusCode)
	}
	f, err := obs.ParseChrome(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if f.OtherData["trace_id"] != snap.ID {
		t.Fatalf("trace_id = %q; want %q", f.OtherData["trace_id"], snap.ID)
	}
	cached := 0
	for _, ev := range f.TraceEvents {
		if ev.Args["cache"] != "" {
			cached++
		}
	}
	if cached == 0 {
		t.Fatalf("no node spans with cache attrs among %d events", len(f.TraceEvents))
	}

	// Unknown IDs 404.
	resp, err = http.Get(ts.URL + "/debug/trace/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d; want 404", resp.StatusCode)
	}
}

func TestPprofOnlyWithOption(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 4)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without WithPprof = %d; want 404", resp.StatusCode)
	}

	m := NewMetrics()
	mgr := NewManager(NewEngine(NewCache(1<<20), m), m, 1, 4)
	dbg := httptest.NewServer(NewServer(mgr, m, WithPprof()))
	defer dbg.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = mgr.Drain(ctx)
	}()
	resp, err = http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with WithPprof = %d; want 200", resp.StatusCode)
	}
}

func TestDrainDeadlineCancelsRunningJobs(t *testing.T) {
	ts, mgr, _ := newTestServer(t, 1, 4)

	snap := submit(t, ts.URL, Request{Kind: "characterize", Position: "A", Config: slowSpec}, http.StatusAccepted)
	waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State == JobRunning })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	stats, err := mgr.Drain(ctx)
	if err == nil {
		t.Fatal("drain returned nil despite a job outliving the deadline")
	}
	job, _ := mgr.Get(snap.ID)
	if st := job.Snapshot().State; st != JobCancelled {
		t.Fatalf("job after forced drain = %s; want cancelled", st)
	}
	if stats.Aborted != 1 {
		t.Fatalf("drain stats = %+v; want the deadline-cancelled job counted as aborted", stats)
	}
}
