package service

import "context"

// Progress is a running job's coarse completion state: for a field
// sweep, shard artifacts resolved (computed or cache-hit) over the
// plan's total. Other kinds leave it unset.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// ProgressFunc receives completion updates from a running request.
type ProgressFunc func(done, total int)

type progressKey struct{}

// WithProgress attaches a progress sink to a request context. The
// worker wires each job's snapshot updater in before Engine.Run, so
// long sweeps report shard counts on /jobs while still running.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// reportProgress delivers an update to the context's sink, if any.
func reportProgress(ctx context.Context, done, total int) {
	if fn, ok := ctx.Value(progressKey{}).(ProgressFunc); ok && fn != nil {
		fn(done, total)
	}
}

// ShardFunc receives per-shard completion events from a running
// field sweep. It runs on the pipeline scheduler goroutine, so sinks
// must stay cheap and non-blocking (the manager's sink publishes to
// the hub, which never waits on subscribers).
type ShardFunc func(ShardEvent)

type shardKey struct{}

// WithShardEvents attaches a shard-event sink to a request context;
// the worker wires the manager's event publisher in before Engine.Run.
func WithShardEvents(ctx context.Context, fn ShardFunc) context.Context {
	return context.WithValue(ctx, shardKey{}, fn)
}

// reportShard delivers a shard event to the context's sink, if any.
func reportShard(ctx context.Context, se ShardEvent) {
	if fn, ok := ctx.Value(shardKey{}).(ShardFunc); ok && fn != nil {
		fn(se)
	}
}
