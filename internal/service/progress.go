package service

import "context"

// Progress is a running job's coarse completion state: for a field
// sweep, shard artifacts resolved (computed or cache-hit) over the
// plan's total. Other kinds leave it unset.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// ProgressFunc receives completion updates from a running request.
type ProgressFunc func(done, total int)

type progressKey struct{}

// WithProgress attaches a progress sink to a request context. The
// worker wires each job's snapshot updater in before Engine.Run, so
// long sweeps report shard counts on /jobs while still running.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// reportProgress delivers an update to the context's sink, if any.
func reportProgress(ctx context.Context, done, total int) {
	if fn, ok := ctx.Value(progressKey{}).(ProgressFunc); ok && fn != nil {
		fn(done, total)
	}
}
