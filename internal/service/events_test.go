package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"vipipe/internal/obs"
)

// sseClient reads an /events stream on a background goroutine,
// delivering decoded Events on C until the stream ends.
type sseClient struct {
	C      <-chan Event
	cancel context.CancelFunc
}

func openSSE(t *testing.T, base string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("GET /events = %d; want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %q; want text/event-stream", ct)
	}
	ch := make(chan Event, 1024)
	go func() {
		defer resp.Body.Close()
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Errorf("bad event payload %q: %v", line, err)
				return
			}
			ch <- ev
		}
	}()
	return &sseClient{C: ch, cancel: cancel}
}

// collectJob reads events until the job's terminal event (or timeout),
// returning everything seen for that job in order.
func collectJob(t *testing.T, c *sseClient, jobID string) []Event {
	t.Helper()
	var out []Event
	deadline := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-c.C:
			if !ok {
				t.Fatalf("stream closed before job %s finished; got %d events", jobID, len(out))
			}
			if ev.Job != jobID {
				continue
			}
			out = append(out, ev)
			switch ev.Type {
			case EventDone, EventFailed, EventCancelled:
				return out
			}
		case <-deadline:
			t.Fatalf("timed out waiting for job %s terminal event; got %d events", jobID, len(out))
		}
	}
}

// TestEventStreamFieldSweepOrdering runs a cold then warm-dirty field
// sweep with an SSE subscriber attached from before submission: the
// stream must deliver queued, running, every one of the 18 shard
// events (monotonic done counts, each position/shard pair exactly
// once, a running yield on each), and only then job.done — after
// which the surface result is fetchable. The warm pass must mark
// every shard cached.
func TestEventStreamFieldSweepOrdering(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 8)
	c := openSSE(t, ts.URL)
	defer c.cancel()

	check := func(pass string, wantCached bool) {
		snap := submit(t, ts.URL, fieldReq(), http.StatusAccepted)
		evs := collectJob(t, c, snap.ID)

		if evs[0].Type != EventQueued || evs[1].Type != EventRunning {
			t.Fatalf("%s: stream opens %s,%s; want queued,running", pass, evs[0].Type, evs[1].Type)
		}
		last := evs[len(evs)-1]
		if last.Type != EventDone {
			t.Fatalf("%s: terminal event = %+v; want job.done", pass, last)
		}
		shards := evs[2 : len(evs)-1]
		if len(shards) != 18 {
			t.Fatalf("%s: %d shard events; want 18 (3x3 grid x 2 shards)", pass, len(shards))
		}
		type posShard struct {
			pos   string
			shard int
		}
		seen := map[posShard]bool{}
		for i, ev := range shards {
			if ev.Type != EventShard || ev.Shard == nil {
				t.Fatalf("%s: event %d = %+v; want a shard event", pass, i, ev)
			}
			sh := ev.Shard
			if sh.Total != 18 || sh.Done != i+1 {
				t.Errorf("%s: shard event %d progress %d/%d; want %d/18", pass, i, sh.Done, sh.Total, i+1)
			}
			if sh.Cached != wantCached {
				t.Errorf("%s: shard %s/%d cached=%v; want %v", pass, sh.Pos, sh.Shard, sh.Cached, wantCached)
			}
			if sh.Yield < 0 || sh.Yield > 1 {
				t.Errorf("%s: shard %s/%d running yield %v out of [0,1]", pass, sh.Pos, sh.Shard, sh.Yield)
			}
			key := posShard{sh.Pos, sh.Shard}
			if seen[key] {
				t.Errorf("%s: duplicate shard event for %s/%d", pass, sh.Pos, sh.Shard)
			}
			seen[key] = true
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("%s: seq not increasing: %d then %d", pass, evs[i-1].Seq, evs[i].Seq)
			}
		}
		// The terminal event precedes result availability from the
		// client's view: fetching now must succeed.
		resp, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: result after job.done = %d; want 200", pass, resp.StatusCode)
		}
		resp.Body.Close()
	}
	check("cold", false)
	check("warm", true)
}

// TestEventStreamMidJobJoin subscribes only after the job is already
// running: the late subscriber still receives shard events and the
// terminal event (the baseline synthesis/placement compute runs
// before the first shard resolves, leaving a join window).
func TestEventStreamMidJobJoin(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 8)
	req := fieldReq()
	req.Config.MCSamples = 1500 // slow the shards so the join window is wide
	snap := submit(t, ts.URL, req, http.StatusAccepted)
	waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State == JobRunning })

	c := openSSE(t, ts.URL)
	defer c.cancel()
	evs := collectJob(t, c, snap.ID)
	last := evs[len(evs)-1]
	if last.Type != EventDone {
		t.Fatalf("terminal event = %+v; want job.done", last)
	}
	var shards int
	for _, ev := range evs {
		if ev.Type == EventShard {
			if ev.Shard == nil || ev.Shard.Total != 18 {
				t.Fatalf("shard event = %+v; want total 18", ev)
			}
			shards++
		}
	}
	if shards == 0 {
		t.Error("mid-job subscriber saw no shard events")
	}
}

// TestEventStreamDrainClosesSubscribers: draining the manager ends
// every open /events stream instead of leaving handlers (and client
// readers) hanging.
func TestEventStreamDrainClosesSubscribers(t *testing.T) {
	m := NewMetrics()
	mgr := NewManager(NewEngine(NewCache(64<<20), m), m, 1, 8,
		WithRecorder(obs.NewRecorder(8)))
	ts := httptest.NewServer(NewServer(mgr, m))
	defer ts.Close()

	c := openSSE(t, ts.URL)
	defer c.cancel()
	snap := submit(t, ts.URL, Request{Kind: "drc", Config: tinySpec}, http.StatusAccepted)
	collectJob(t, c, snap.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-c.C:
		if ok {
			// Drain raced a buffered event; the close must still follow.
			for range c.C {
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream still open 10s after drain")
	}
}

// TestEventStreamStalledReaderDrops pins the no-backpressure
// guarantee end to end: a client that connects to /events and never
// reads does not slow the workers — events for it are dropped and
// counted in events.dropped, while the server keeps answering.
func TestEventStreamStalledReaderDrops(t *testing.T) {
	m := NewMetrics()
	mgr := NewManager(NewEngine(NewCache(64<<20), m), m, 1, 8,
		WithRecorder(obs.NewRecorder(8)),
		WithEventBuffer(2))
	ts := httptest.NewServer(NewServer(mgr, m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = mgr.Drain(ctx)
	})

	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	// Close before ts.Close (defers run first): a handler blocked
	// writing to this socket must be released or Close would wait out
	// the 15s write deadline.
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Shrink the advertised window so the server-side write path
		// saturates after a few KB instead of megabytes.
		_ = tc.SetReadBuffer(256)
	}
	if _, err := conn.Write([]byte("GET /events HTTP/1.1\r\nHost: " + u.Host + "\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// Never read from conn again: the subscriber's buffer (2) fills,
	// then the hub drops.

	dropped := func() int64 {
		return metricsSnapshot(t, ts.URL).Counters["events.dropped"]
	}
	deadline := time.Now().Add(90 * time.Second)
	for i := 0; dropped() == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no drops after %d sweeps with a stalled subscriber", i)
		}
		snap := submit(t, ts.URL, fieldReq(), http.StatusAccepted)
		done := waitState(t, ts.URL, snap.ID, func(s JobSnapshot) bool { return s.State.Terminal() })
		if done.State != JobDone {
			t.Fatalf("sweep %d finished %s: %s", i, done.State, done.Error)
		}
	}
	if got := dropped(); got == 0 {
		t.Fatal("events.dropped stayed zero")
	}
	// The stalled reader never blocked the scheduler: the server still
	// answers and a live subscriber still gets a full stream.
	c := openSSE(t, ts.URL)
	defer c.cancel()
	snap := submit(t, ts.URL, Request{Kind: "drc", Config: tinySpec}, http.StatusAccepted)
	evs := collectJob(t, c, snap.ID)
	if evs[len(evs)-1].Type != EventDone {
		t.Fatalf("live subscriber got %+v; want job.done", evs[len(evs)-1])
	}
}
