package cell

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Inv.String() != "INV" || DFF.String() != "DFF" || LvlShift.String() != "LVLSHIFT" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() != "KIND(200)" {
		t.Errorf("out-of-range kind: %s", Kind(200).String())
	}
}

func TestLibraryComplete(t *testing.T) {
	lib := Default65nm()
	for _, k := range Kinds() {
		c := lib.Cell(k)
		if c.Kind != k {
			t.Errorf("cell %v has kind %v", k, c.Kind)
		}
		if c.AreaUM2 <= 0 {
			t.Errorf("cell %v has non-positive area", k)
		}
		if c.NumInputs > 0 && c.InputCapFF <= 0 {
			t.Errorf("cell %v has no input cap", k)
		}
		if c.LeakNW[DomainLow] <= 0 {
			t.Errorf("cell %v has no leakage", k)
		}
		if !c.IsTie() && c.LeakNW[DomainHigh] < c.LeakNW[DomainLow] {
			t.Errorf("cell %v leaks less at high Vdd", k)
		}
	}
	if len(lib.Cells()) != len(Kinds()) {
		t.Errorf("Cells() returned %d, want %d", len(lib.Cells()), len(Kinds()))
	}
}

func TestLibraryPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Default65nm().Cell(Invalid)
}

func TestEvalTruthTables(t *testing.T) {
	lib := Default65nm()
	type tc struct {
		k    Kind
		in   []bool
		want bool
	}
	cases := []tc{
		{Inv, []bool{true}, false},
		{Inv, []bool{false}, true},
		{Buf, []bool{true}, true},
		{LvlShift, []bool{false}, false},
		{Nand2, []bool{true, true}, false},
		{Nand2, []bool{true, false}, true},
		{Nand3, []bool{true, true, true}, false},
		{Nand3, []bool{true, true, false}, true},
		{Nand4, []bool{true, true, true, true}, false},
		{Nand4, []bool{false, true, true, true}, true},
		{Nor2, []bool{false, false}, true},
		{Nor2, []bool{true, false}, false},
		{Nor3, []bool{false, false, false}, true},
		{Nor3, []bool{false, true, false}, false},
		{And2, []bool{true, true}, true},
		{And2, []bool{true, false}, false},
		{And3, []bool{true, true, true}, true},
		{Or2, []bool{false, false}, false},
		{Or2, []bool{false, true}, true},
		{Or3, []bool{false, false, true}, true},
		{Xor2, []bool{true, false}, true},
		{Xor2, []bool{true, true}, false},
		{Xnor2, []bool{true, true}, true},
		{Xnor2, []bool{true, false}, false},
		{Aoi21, []bool{true, true, false}, false},
		{Aoi21, []bool{false, true, false}, true},
		{Aoi21, []bool{false, false, true}, false},
		{Oai21, []bool{false, false, true}, true},
		{Oai21, []bool{true, false, true}, false},
		{Oai21, []bool{true, true, false}, true},
		{Mux2, []bool{true, false, false}, true},
		{Mux2, []bool{true, false, true}, false},
		{Mux2, []bool{false, true, true}, true},
		{TieLo, nil, false},
		{TieHi, nil, true},
		{DFF, []bool{true}, true},
		{RazorFF, []bool{false}, false},
	}
	for _, c := range cases {
		if got := lib.Cell(c.k).Eval(c.in); got != c.want {
			t.Errorf("%v(%v) = %v, want %v", c.k, c.in, got, c.want)
		}
	}
}

func TestEvalPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Default65nm().Cell(Nand2).Eval([]bool{true})
}

func TestDeMorganProperty(t *testing.T) {
	lib := Default65nm()
	nand, and2, inv := lib.Cell(Nand2), lib.Cell(And2), lib.Cell(Inv)
	nor, or2 := lib.Cell(Nor2), lib.Cell(Or2)
	f := func(a, b bool) bool {
		in := []bool{a, b}
		okNand := nand.Eval(in) == inv.Eval([]bool{and2.Eval(in)})
		okNor := nor.Eval(in) == inv.Eval([]bool{or2.Eval(in)})
		okAoi := lib.Cell(Aoi21).Eval([]bool{a, b, false}) == nand.Eval(in)
		return okNand && okNor && okAoi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTechDefaultsValid(t *testing.T) {
	tech := DefaultTech()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
	if tech.Vdd(DomainLow) != 1.0 || tech.Vdd(DomainHigh) != 1.2 {
		t.Error("supplies wrong")
	}
}

func TestTechValidateCatchesBadParams(t *testing.T) {
	mods := []func(*Tech){
		func(t *Tech) { t.VddHigh = 0.9 },
		func(t *Tech) { t.VddLow = -1 },
		func(t *Tech) { t.Vth0 = 1.5 },
		func(t *Tech) { t.Alpha = 3 },
		func(t *Tech) { t.LgateNM = 0 },
		func(t *Tech) { t.SubthermalV = 0 },
		func(t *Tech) { t.RowHeightUM = 0 },
	}
	for i, m := range mods {
		tech := DefaultTech()
		m(&tech)
		if err := tech.Validate(); err == nil {
			t.Errorf("mod %d: invalid tech accepted", i)
		}
	}
}

func TestVthEffBehaviour(t *testing.T) {
	tech := DefaultTech()
	vthNom := tech.VthEff(1.0, 65)
	if vthNom <= 0 || vthNom >= tech.Vth0 {
		t.Errorf("nominal Vth %g out of range (0, Vth0)", vthNom)
	}
	// Longer channel -> higher Vth (paper: increase of Lgate causes
	// an increase of Vth).
	if tech.VthEff(1.0, 70) <= vthNom {
		t.Error("Vth should rise with Lgate")
	}
	// Higher Vdd -> lower Vth (DIBL).
	if tech.VthEff(1.2, 65) >= vthNom {
		t.Error("Vth should drop with Vdd")
	}
}

func TestDelayScaleNominalIsOne(t *testing.T) {
	tech := DefaultTech()
	if s := tech.DelayScale(tech.VddLow, tech.LgateNM); math.Abs(s-1) > 1e-12 {
		t.Fatalf("nominal delay scale = %g, want 1", s)
	}
}

func TestDelayScaleDirections(t *testing.T) {
	tech := DefaultTech()
	// Longer gate -> slower.
	if tech.DelayScale(1.0, 68) <= 1 {
		t.Error("longer gate should be slower")
	}
	// Shorter gate -> faster.
	if tech.DelayScale(1.0, 62) >= 1 {
		t.Error("shorter gate should be faster")
	}
	// Higher Vdd -> faster.
	boost := tech.SpeedupHighVdd()
	if boost >= 1 {
		t.Errorf("high-Vdd speedup %g should be < 1", boost)
	}
	// The paper compensates a ~10% frequency degradation with the
	// 1.0->1.2V boost, so the boost must buy at least that much.
	if boost > 0.92 {
		t.Errorf("high-Vdd boost %g too weak to compensate 10%% slowdown", boost)
	}
	if boost < 0.80 {
		t.Errorf("high-Vdd boost %g implausibly strong", boost)
	}
}

func TestDelayScaleLgateExponent(t *testing.T) {
	// At fixed voltage the L dependence must be L^1.5 (paper Eq. 3)
	// modulated only by the weak DIBL term.
	tech := DefaultTech()
	tech.AlphaDIBL = 1000 // kill DIBL entirely: exp(-1000*L) = 0
	s := tech.DelayScale(1.0, 65*1.1)
	if math.Abs(s-math.Pow(1.1, 1.5)) > 1e-9 {
		t.Errorf("delay scale %g, want %g", s, math.Pow(1.1, 1.5))
	}
}

func TestLeakScaleDirections(t *testing.T) {
	tech := DefaultTech()
	if s := tech.LeakScale(1.0, tech.LgateNM); math.Abs(s-1) > 1e-12 {
		t.Errorf("nominal leak scale = %g, want 1", s)
	}
	if tech.LeakScale(1.0, 60) <= 1 {
		t.Error("shorter channel should leak more")
	}
	if tech.LeakScale(1.0, 70) >= 1 {
		t.Error("longer channel should leak less")
	}
}

func TestEnergyScale(t *testing.T) {
	tech := DefaultTech()
	if tech.EnergyScale(DomainLow) != 1 {
		t.Error("low-domain energy scale must be 1")
	}
	if math.Abs(tech.EnergyScale(DomainHigh)-1.44) > 1e-12 {
		t.Errorf("high-domain energy scale = %g, want 1.44", tech.EnergyScale(DomainHigh))
	}
}

// Property: delay scale is monotone increasing in Lgate and decreasing
// in Vdd over the physical range.
func TestDelayScaleMonotoneProperty(t *testing.T) {
	tech := DefaultTech()
	f := func(a, b uint8) bool {
		l1 := 55 + float64(a%30)/2 // 55..70nm
		l2 := 55 + float64(b%30)/2
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		if tech.DelayScale(1.0, l1) > tech.DelayScale(1.0, l2)+1e-12 {
			return false
		}
		v1 := 0.9 + float64(a%40)/100 // 0.9..1.3V
		v2 := 0.9 + float64(b%40)/100
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return tech.DelayScale(v1, 65) >= tech.DelayScale(v2, 65)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevelShifterFlags(t *testing.T) {
	lib := Default65nm()
	if !lib.Cell(LvlShift).IsLevelShifter() {
		t.Error("LVLSHIFT not flagged")
	}
	if lib.Cell(Buf).IsLevelShifter() {
		t.Error("BUF flagged as level shifter")
	}
	if !lib.Cell(TieHi).IsTie() || lib.Cell(Inv).IsTie() {
		t.Error("tie flags wrong")
	}
}

func TestDomainString(t *testing.T) {
	if DomainLow.String() != "VDD_LOW" || DomainHigh.String() != "VDD_HIGH" {
		t.Error("domain names wrong")
	}
}

func TestRazorCostlierThanDFF(t *testing.T) {
	lib := Default65nm()
	dff, rz := lib.Cell(DFF), lib.Cell(RazorFF)
	if rz.AreaUM2 <= dff.AreaUM2 || rz.InternalFJ <= dff.InternalFJ || rz.LeakNW[0] <= dff.LeakNW[0] {
		t.Error("Razor FF must cost more than a plain DFF")
	}
}

// TestDelayScalerBitIdentical locks the fast-path contract: the
// hoisted-denominator scaler must reproduce DelayScale bit for bit
// across the realistic Lgate range at both supplies.
func TestDelayScalerBitIdentical(t *testing.T) {
	tech := DefaultTech()
	for _, vdd := range []float64{tech.VddLow, tech.VddHigh} {
		scaler := tech.DelayScaler(vdd)
		for lg := 55.0; lg <= 75.0; lg += 0.0625 {
			want := tech.DelayScale(vdd, lg)
			got := scaler(lg)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("vdd=%g lg=%g: scaler %v != DelayScale %v", vdd, lg, got, want)
			}
		}
	}
}
