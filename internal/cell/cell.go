// Package cell models a synthetic 65nm-class dual-Vdd standard-cell
// library. It substitutes for the STMicroelectronics 65nm 1V low-power
// library used in the paper: each cell carries area, a load-dependent
// linear delay model, input capacitance, internal switching energy and
// leakage characterized at both supply voltages (1.0V and 1.2V).
//
// Delay dependence on supply voltage and effective gate length follows
// the paper's own analytical models:
//
//	D ~ Lgate^1.5 * Vdd / (Vdd - Vth)^alpha       (paper Eq. 3, alpha-power)
//	VthEff = Vth0 - Vdd * exp(-alphaDIBL * Leff)  (paper Eq. 4, DIBL)
//
// with alpha = 1.3, Vth0 = 0.22V and alphaDIBL = 0.15 as in the paper.
package cell

import "fmt"

// Kind identifies a library cell type.
type Kind uint8

// Library cell kinds. All combinational cells have a single output.
const (
	Invalid Kind = iota
	Inv
	Buf
	Nand2
	Nand3
	Nand4
	Nor2
	Nor3
	And2
	And3
	Or2
	Or3
	Xor2
	Xnor2
	Aoi21 // !(a*b + c)
	Oai21 // !((a+b) * c)
	Mux2  // sel ? b : a   (inputs: a, b, sel)
	TieLo
	TieHi
	DFF     // D flip-flop: inputs D; clocked implicitly
	RazorFF // DFF with shadow latch for delayed sampling (Razor)
	LvlShift
	numKinds
)

var kindNames = [...]string{
	Invalid:  "INVALID",
	Inv:      "INV",
	Buf:      "BUF",
	Nand2:    "NAND2",
	Nand3:    "NAND3",
	Nand4:    "NAND4",
	Nor2:     "NOR2",
	Nor3:     "NOR3",
	And2:     "AND2",
	And3:     "AND3",
	Or2:      "OR2",
	Or3:      "OR3",
	Xor2:     "XOR2",
	Xnor2:    "XNOR2",
	Aoi21:    "AOI21",
	Oai21:    "OAI21",
	Mux2:     "MUX2",
	TieLo:    "TIELO",
	TieHi:    "TIEHI",
	DFF:      "DFF",
	RazorFF:  "RAZORFF",
	LvlShift: "LVLSHIFT",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// Kinds returns all valid cell kinds in the library.
func Kinds() []Kind {
	ks := make([]Kind, 0, int(numKinds)-1)
	for k := Kind(1); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Cell is the characterization record of one library cell.
type Cell struct {
	Kind       Kind
	Name       string
	NumInputs  int
	AreaUM2    float64 // placement area
	InputCapFF float64 // capacitance per input pin
	// Linear delay model at (VLow, nominal Lgate):
	// delay_ps = IntrinsicPS + DrivePSPerFF * load_fF.
	IntrinsicPS  float64
	DrivePSPerFF float64
	InternalFJ   float64 // internal energy per output transition at VLow
	// InputFJ is the internal energy per input-pin transition that
	// does not necessarily flip the output (short-circuit current
	// and internal-node charging). It dominates in multiplexer
	// networks whose select and data inputs churn while the output
	// holds — e.g. register-file read trees, which is what makes the
	// register file the top power consumer in the paper's Table 1.
	InputFJ    float64
	LeakNW     [2]float64 // leakage power at {VLow, VHigh}
	Sequential bool
	// Sequential-only timing and clock-pin energy.
	ClkQPS  float64 // clock-to-Q delay at (VLow, nominal Lgate)
	SetupPS float64 // setup time
	ClkFJ   float64 // internal energy per clock cycle (both edges), at VLow
}

// IsLevelShifter reports whether the cell is a low-to-high level
// shifter.
func (c *Cell) IsLevelShifter() bool { return c.Kind == LvlShift }

// IsTie reports whether the cell is a constant generator.
func (c *Cell) IsTie() bool { return c.Kind == TieLo || c.Kind == TieHi }

// Eval computes the combinational function of the cell. For sequential
// cells it returns the captured data input (in[0]), which is how the
// cycle-based simulator advances state. It panics on an input-count
// mismatch, which indicates a netlist construction bug.
func (c *Cell) Eval(in []bool) bool {
	if len(in) != c.NumInputs {
		panic(fmt.Sprintf("cell %s: got %d inputs, want %d", c.Name, len(in), c.NumInputs))
	}
	switch c.Kind {
	case Inv:
		return !in[0]
	case Buf, LvlShift:
		return in[0]
	case Nand2:
		return !(in[0] && in[1])
	case Nand3:
		return !(in[0] && in[1] && in[2])
	case Nand4:
		return !(in[0] && in[1] && in[2] && in[3])
	case Nor2:
		return !(in[0] || in[1])
	case Nor3:
		return !(in[0] || in[1] || in[2])
	case And2:
		return in[0] && in[1]
	case And3:
		return in[0] && in[1] && in[2]
	case Or2:
		return in[0] || in[1]
	case Or3:
		return in[0] || in[1] || in[2]
	case Xor2:
		return in[0] != in[1]
	case Xnor2:
		return in[0] == in[1]
	case Aoi21:
		return !((in[0] && in[1]) || in[2])
	case Oai21:
		return !((in[0] || in[1]) && in[2])
	case Mux2:
		if in[2] {
			return in[1]
		}
		return in[0]
	case TieLo:
		return false
	case TieHi:
		return true
	case DFF, RazorFF:
		return in[0]
	default:
		panic(fmt.Sprintf("cell: eval of invalid kind %v", c.Kind))
	}
}
