package cell

import (
	"fmt"
	"math"
)

// Tech bundles the technology parameters driving the paper's
// analytical delay and leakage models.
type Tech struct {
	VddLow  float64 // nominal supply, volts (1.0 in the paper)
	VddHigh float64 // boosted supply, volts (1.2 in the paper)
	Vth0    float64 // long-channel threshold voltage (0.22V, paper Eq. 4)
	Alpha   float64 // velocity-saturation exponent (1.3, paper Eq. 3)
	// AlphaDIBL is the DIBL coefficient of paper Eq. 4; Leff is
	// expressed in nanometers. With the paper's constants the DIBL
	// correction is a small second-order effect, as the paper notes.
	AlphaDIBL float64
	LgateNM   float64 // nominal effective gate length, nm (65)

	SubthermalV float64 // n*vT subthreshold slope factor for leakage, volts

	// Wire model (variation in wires is ignored, as in the paper).
	WireCapFFPerUM   float64 // net capacitance per unit HPWL
	WireDelayPSPerUM float64 // repeatered-wire delay per unit HPWL

	RowHeightUM float64 // standard-cell row height
	SiteWidthUM float64 // placement site width
}

// DefaultTech returns the 65nm technology parameters from the paper,
// with one calibration: Vth0 is raised from the paper's quoted
// long-channel 0.22V to 0.42V, the threshold of a low-power 65nm
// library at a 1.0V supply. With 0.22V the alpha-power model yields
// only a ~11% speed-up from the 1.0V->1.2V boost — not enough to
// compensate the >=10% worst-case degradation with a partial-coverage
// voltage island, which the paper's Fig. 4 islands plainly do; an LP
// threshold gives the ~18% boost their results imply (see DESIGN.md).
func DefaultTech() Tech {
	return Tech{
		VddLow:           1.0,
		VddHigh:          1.2,
		Vth0:             0.42,
		Alpha:            1.3,
		AlphaDIBL:        0.15,
		LgateNM:          65,
		SubthermalV:      0.035,
		WireCapFFPerUM:   0.20,
		WireDelayPSPerUM: 0.05,
		RowHeightUM:      1.8,
		SiteWidthUM:      0.26,
	}
}

// Vdd returns the supply voltage of a domain.
func (t *Tech) Vdd(d Domain) float64 {
	if d == DomainHigh {
		return t.VddHigh
	}
	return t.VddLow
}

// VthEff computes the effective threshold voltage at supply vdd and
// effective gate length lgateNM (nanometers) per paper Eq. 4:
//
//	VthEff = Vth0 - Vdd * exp(-alphaDIBL * Leff)
//
// A longer channel raises Vth; a higher Vdd lowers it slightly (DIBL).
func (t *Tech) VthEff(vdd, lgateNM float64) float64 {
	return t.Vth0 - vdd*math.Exp(-t.AlphaDIBL*lgateNM)
}

// alphaPower returns the un-normalized alpha-power delay factor
// Vdd/(Vdd-Vth)^alpha of paper Eq. 3 at the given operating point.
func (t *Tech) alphaPower(vdd, lgateNM float64) float64 {
	vth := t.VthEff(vdd, lgateNM)
	ov := vdd - vth
	if ov <= 0.01 {
		ov = 0.01 // guard: the device barely conducts
	}
	return vdd / math.Pow(ov, t.Alpha)
}

// DelayScale returns the multiplicative delay factor of a gate
// operating at supply vdd with effective gate length lgateNM, relative
// to the library characterization point (VddLow, nominal Lgate):
//
//	scale = (L/Lnom)^1.5 * AP(vdd, L) / AP(VddLow, Lnom)
//
// This is paper Eq. 3 normalized to the nominal corner, i.e. exactly
// the transformation the paper's SDF-rewriting parser applies.
func (t *Tech) DelayScale(vdd, lgateNM float64) float64 {
	lr := lgateNM / t.LgateNM
	return math.Pow(lr, 1.5) * t.alphaPower(vdd, lgateNM) / t.alphaPower(t.VddLow, t.LgateNM)
}

// DelayScaler returns DelayScale at a fixed supply with the nominal
// normalization factor hoisted out of the per-gate call. The returned
// function computes the identical expression on identical operands in
// the same order — ((lr^1.5 * AP(vdd,L)) / AP(VddLow,Lnom)) — so its
// results match DelayScale bit-for-bit while halving the
// transcendental count; Monte Carlo sample loops evaluate it per cell
// per sample.
func (t *Tech) DelayScaler(vdd float64) func(lgateNM float64) float64 {
	denom := t.alphaPower(t.VddLow, t.LgateNM)
	return func(lgateNM float64) float64 {
		lr := lgateNM / t.LgateNM
		return math.Pow(lr, 1.5) * t.alphaPower(vdd, lgateNM) / denom
	}
}

// SpeedupHighVdd returns the delay ratio D(VddHigh)/D(VddLow) at
// nominal gate length: the performance boost bought by switching a
// cell to the high-Vdd domain.
func (t *Tech) SpeedupHighVdd() float64 {
	return t.DelayScale(t.VddHigh, t.LgateNM)
}

// LeakScale returns the multiplicative subthreshold leakage factor for
// a device with effective gate length lgateNM relative to nominal, at
// supply vdd: leakage grows exponentially as Vth drops with channel
// length (paper Section 4.1: shorter Lgate lowers Vth, raising
// leakage).
func (t *Tech) LeakScale(vdd, lgateNM float64) float64 {
	dvth := t.VthEff(vdd, lgateNM) - t.VthEff(vdd, t.LgateNM)
	return math.Exp(-dvth / t.SubthermalV)
}

// EnergyScale returns the dynamic-energy factor (Vdd/VddLow)^2 for a
// domain, since switching energy is C*Vdd^2.
func (t *Tech) EnergyScale(d Domain) float64 {
	r := t.Vdd(d) / t.VddLow
	return r * r
}

// Validate checks the parameter set for physical sanity.
func (t *Tech) Validate() error {
	switch {
	case t.VddLow <= 0 || t.VddHigh <= t.VddLow:
		return fmt.Errorf("cell: supplies must satisfy 0 < VddLow < VddHigh, got %g/%g", t.VddLow, t.VddHigh)
	case t.Vth0 <= 0 || t.Vth0 >= t.VddLow:
		return fmt.Errorf("cell: Vth0 %g out of range (0, VddLow)", t.Vth0)
	case t.Alpha < 1 || t.Alpha > 2:
		return fmt.Errorf("cell: alpha %g out of velocity-saturation range [1,2]", t.Alpha)
	case t.LgateNM <= 0:
		return fmt.Errorf("cell: nominal Lgate %g must be positive", t.LgateNM)
	case t.SubthermalV <= 0:
		return fmt.Errorf("cell: subthreshold slope %g must be positive", t.SubthermalV)
	case t.RowHeightUM <= 0 || t.SiteWidthUM <= 0:
		return fmt.Errorf("cell: row geometry must be positive")
	}
	return nil
}
