package cell

import "fmt"

// Domain selects one of the two supply voltages of the dual-Vdd
// library.
type Domain uint8

const (
	// DomainLow is the nominal 1.0V supply.
	DomainLow Domain = iota
	// DomainHigh is the boosted 1.2V supply.
	DomainHigh
)

func (d Domain) String() string {
	if d == DomainLow {
		return "VDD_LOW"
	}
	return "VDD_HIGH"
}

// Library is a characterized standard-cell library plus its technology
// parameters.
type Library struct {
	Name  string
	Tech  Tech
	cells [numKinds]*Cell
}

// Cell returns the characterization record for kind k. It panics on an
// invalid kind: asking for a cell the library does not have is a
// programming error in netlist construction.
func (l *Library) Cell(k Kind) *Cell {
	if k == Invalid || int(k) >= len(l.cells) || l.cells[k] == nil {
		panic(fmt.Sprintf("cell: library %q has no cell kind %v", l.Name, k))
	}
	return l.cells[k]
}

// Cells returns all cells in the library.
func (l *Library) Cells() []*Cell {
	out := make([]*Cell, 0, int(numKinds)-1)
	for k := Kind(1); k < numKinds; k++ {
		if l.cells[k] != nil {
			out = append(out, l.cells[k])
		}
	}
	return out
}

// Default65nm returns the synthetic 65nm-class low-power dual-Vdd
// library used throughout the reproduction. The absolute values are
// representative of a 65nm LP process (row height 1.8um, FO4 around
// 25ps at 1.0V, leakage around 1-2% of active power); the paper's
// results depend on ratios, not absolutes.
func Default65nm() *Library {
	lib := &Library{
		Name: "synth65lp",
		Tech: DefaultTech(),
	}
	add := func(c Cell) {
		cc := c
		lib.cells[c.Kind] = &cc
	}

	// Combinational cells.
	// area, inCap, intrinsic, drive, internal energy, leak(1.0V, 1.2V)
	add(Cell{Kind: Inv, Name: "INV", NumInputs: 1, AreaUM2: 1.04, InputCapFF: 1.3, IntrinsicPS: 12, DrivePSPerFF: 0.40, InternalFJ: 0.60, InputFJ: 0.10, LeakNW: [2]float64{1.2, 2.8}})
	add(Cell{Kind: Buf, Name: "BUF", NumInputs: 1, AreaUM2: 1.56, InputCapFF: 1.2, IntrinsicPS: 28, DrivePSPerFF: 0.30, InternalFJ: 1.10, InputFJ: 0.20, LeakNW: [2]float64{1.6, 3.7}})
	add(Cell{Kind: Nand2, Name: "NAND2", NumInputs: 2, AreaUM2: 1.56, InputCapFF: 1.5, IntrinsicPS: 16, DrivePSPerFF: 0.45, InternalFJ: 0.85, InputFJ: 0.18, LeakNW: [2]float64{1.7, 3.9}})
	add(Cell{Kind: Nand3, Name: "NAND3", NumInputs: 3, AreaUM2: 2.08, InputCapFF: 1.6, IntrinsicPS: 22, DrivePSPerFF: 0.52, InternalFJ: 1.10, InputFJ: 0.22, LeakNW: [2]float64{2.2, 5.1}})
	add(Cell{Kind: Nand4, Name: "NAND4", NumInputs: 4, AreaUM2: 2.60, InputCapFF: 1.7, IntrinsicPS: 28, DrivePSPerFF: 0.60, InternalFJ: 1.35, InputFJ: 0.26, LeakNW: [2]float64{2.7, 6.2}})
	add(Cell{Kind: Nor2, Name: "NOR2", NumInputs: 2, AreaUM2: 1.56, InputCapFF: 1.5, IntrinsicPS: 19, DrivePSPerFF: 0.50, InternalFJ: 0.90, InputFJ: 0.18, LeakNW: [2]float64{1.7, 3.9}})
	add(Cell{Kind: Nor3, Name: "NOR3", NumInputs: 3, AreaUM2: 2.08, InputCapFF: 1.6, IntrinsicPS: 27, DrivePSPerFF: 0.60, InternalFJ: 1.15, InputFJ: 0.22, LeakNW: [2]float64{2.2, 5.1}})
	add(Cell{Kind: And2, Name: "AND2", NumInputs: 2, AreaUM2: 2.08, InputCapFF: 1.4, IntrinsicPS: 26, DrivePSPerFF: 0.42, InternalFJ: 1.20, InputFJ: 0.25, LeakNW: [2]float64{2.0, 4.6}})
	add(Cell{Kind: And3, Name: "AND3", NumInputs: 3, AreaUM2: 2.60, InputCapFF: 1.5, IntrinsicPS: 32, DrivePSPerFF: 0.46, InternalFJ: 1.45, InputFJ: 0.30, LeakNW: [2]float64{2.5, 5.8}})
	add(Cell{Kind: Or2, Name: "OR2", NumInputs: 2, AreaUM2: 2.08, InputCapFF: 1.4, IntrinsicPS: 28, DrivePSPerFF: 0.44, InternalFJ: 1.20, InputFJ: 0.25, LeakNW: [2]float64{2.0, 4.6}})
	add(Cell{Kind: Or3, Name: "OR3", NumInputs: 3, AreaUM2: 2.60, InputCapFF: 1.5, IntrinsicPS: 35, DrivePSPerFF: 0.48, InternalFJ: 1.45, InputFJ: 0.30, LeakNW: [2]float64{2.5, 5.8}})
	add(Cell{Kind: Xor2, Name: "XOR2", NumInputs: 2, AreaUM2: 2.86, InputCapFF: 2.2, IntrinsicPS: 35, DrivePSPerFF: 0.55, InternalFJ: 1.90, InputFJ: 0.70, LeakNW: [2]float64{3.0, 6.9}})
	add(Cell{Kind: Xnor2, Name: "XNOR2", NumInputs: 2, AreaUM2: 2.86, InputCapFF: 2.2, IntrinsicPS: 36, DrivePSPerFF: 0.55, InternalFJ: 1.90, InputFJ: 0.70, LeakNW: [2]float64{3.0, 6.9}})
	add(Cell{Kind: Aoi21, Name: "AOI21", NumInputs: 3, AreaUM2: 2.08, InputCapFF: 1.6, IntrinsicPS: 24, DrivePSPerFF: 0.55, InternalFJ: 1.05, InputFJ: 0.25, LeakNW: [2]float64{2.1, 4.8}})
	add(Cell{Kind: Oai21, Name: "OAI21", NumInputs: 3, AreaUM2: 2.08, InputCapFF: 1.6, IntrinsicPS: 25, DrivePSPerFF: 0.55, InternalFJ: 1.05, InputFJ: 0.25, LeakNW: [2]float64{2.1, 4.8}})
	add(Cell{Kind: Mux2, Name: "MUX2", NumInputs: 3, AreaUM2: 2.60, InputCapFF: 1.8, IntrinsicPS: 30, DrivePSPerFF: 0.50, InternalFJ: 1.60, InputFJ: 0.85, LeakNW: [2]float64{2.6, 6.0}})
	add(Cell{Kind: TieLo, Name: "TIELO", NumInputs: 0, AreaUM2: 0.52, InputCapFF: 0, IntrinsicPS: 0, DrivePSPerFF: 0, InternalFJ: 0, LeakNW: [2]float64{0.3, 0.7}})
	add(Cell{Kind: TieHi, Name: "TIEHI", NumInputs: 0, AreaUM2: 0.52, InputCapFF: 0, IntrinsicPS: 0, DrivePSPerFF: 0, InternalFJ: 0, LeakNW: [2]float64{0.3, 0.7}})

	// Sequential cells.
	add(Cell{Kind: DFF, Name: "DFF", NumInputs: 1, AreaUM2: 6.24, InputCapFF: 1.8, IntrinsicPS: 0, DrivePSPerFF: 0.48, InternalFJ: 4.20, InputFJ: 0.50, LeakNW: [2]float64{5.5, 12.7}, Sequential: true, ClkQPS: 85, SetupPS: 45, ClkFJ: 1.30})
	// A Razor flip-flop adds a shadow latch, a comparator and the
	// error-flag logic on top of a plain DFF [Ernst et al., MICRO'03].
	add(Cell{Kind: RazorFF, Name: "RAZORFF", NumInputs: 1, AreaUM2: 13.0, InputCapFF: 2.1, IntrinsicPS: 0, DrivePSPerFF: 0.50, InternalFJ: 7.90, InputFJ: 0.90, LeakNW: [2]float64{11.0, 25.3}, Sequential: true, ClkQPS: 90, SetupPS: 48, ClkFJ: 2.90})

	// Low-to-high level shifter: functionally a buffer, but large and
	// power-hungry. Its output domain is DomainHigh; its input comes
	// from DomainLow. Only low-to-high crossings are shifted (the
	// paper inserts shifters only on nets entering the high-Vdd
	// domain, to avoid static current in not-fully-off pMOS).
	add(Cell{Kind: LvlShift, Name: "LVLSHIFT", NumInputs: 1, AreaUM2: 4.68, InputCapFF: 2.0, IntrinsicPS: 48, DrivePSPerFF: 0.50, InternalFJ: 1.60, InputFJ: 0.30, LeakNW: [2]float64{3.2, 3.2}})

	return lib
}
