package stats

import (
	"hash/fnv"
	"math/rand"
)

// Stream is a deterministic pseudo-random stream. Every stochastic
// component of the flow draws from a named Stream derived from a
// single root seed, so that the complete experiment is reproducible
// and individual components can be re-run in isolation with the same
// draws.
type Stream struct {
	r *rand.Rand
}

// NewStream returns a stream seeded with seed.
func NewStream(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// DeriveStream derives an independent child stream identified by name.
// The derivation hashes (seed, name) so distinct names yield distinct,
// uncorrelated-for-our-purposes streams.
func DeriveStream(seed int64, name string) *Stream {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(name))
	return NewStream(int64(h.Sum64()))
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// NormFloat64 returns a standard normal draw.
func (s *Stream) NormFloat64() float64 { return s.r.NormFloat64() }

// Normal returns a draw from N(mu, sigma^2).
func (s *Stream) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
