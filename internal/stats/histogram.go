package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [lo, hi). It panics if bins <= 0 or hi <= lo, which indicates a
// programming error rather than a data condition.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float round-up at the edge
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples recorded, including out-of-range
// samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center x of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the estimated probability density at bin i.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.total) * w)
}

// Render draws an ASCII bar chart of the histogram, width characters
// wide, suitable for terminal reports of the Fig. 3 distributions.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = int(math.Round(float64(c) / float64(maxC) * float64(width)))
		}
		fmt.Fprintf(&b, "%+9.4f | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}
