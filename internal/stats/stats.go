// Package stats provides the small statistical toolkit used by the
// SSTA flow: descriptive statistics, the normal distribution, normal
// fitting with a chi-square goodness-of-fit test, histograms, and
// deterministic seeded random streams.
//
// The paper fits Monte Carlo critical-path samples to a normal
// distribution through a chi-square goodness-of-fit test at a 95%
// confidence level (Section 4.3); this package implements exactly that
// machinery on top of the standard library.
package stats

import (
	"math"
	"sort"

	"vipipe/internal/flowerr"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics for xs.
// It returns a zero Summary when xs is empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return Summarize(xs).StdDev }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Normal is a normal (Gaussian) distribution.
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns the cumulative probability P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the x such that CDF(x) = p, for p in (0,1).
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// ThreeSigmaHigh returns mu + 3 sigma, the upper 3-sigma point the
// paper uses to size worst-case degradation.
func (n Normal) ThreeSigmaHigh() float64 { return n.Mu + 3*n.Sigma }

// FitNormal estimates a Normal from samples by moment matching.
func FitNormal(xs []float64) (Normal, error) {
	if len(xs) < 2 {
		return Normal{}, flowerr.BadInputf("stats: need at least 2 samples to fit a normal")
	}
	s := Summarize(xs)
	return Normal{Mu: s.Mean, Sigma: s.StdDev}, nil
}

// GOFResult reports a chi-square goodness-of-fit test outcome.
type GOFResult struct {
	ChiSquare float64 // test statistic
	DOF       int     // degrees of freedom
	PValue    float64 // P(X^2 >= ChiSquare) under H0
	Accepted  bool    // true when PValue >= alpha
	Bins      int     // number of bins actually used
}

// ChiSquareNormalTest tests whether xs is consistent with the given
// normal distribution at significance level alpha (the paper uses
// alpha = 0.05, i.e. a 95% confidence level). Bins with an expected
// count below 5 are merged with their neighbours, following standard
// practice. Degrees of freedom are bins-1-2 (two fitted parameters).
func ChiSquareNormalTest(xs []float64, dist Normal, alpha float64) (GOFResult, error) {
	if len(xs) < 20 {
		return GOFResult{}, flowerr.BadInputf("stats: chi-square test needs at least 20 samples")
	}
	if dist.Sigma <= 0 {
		return GOFResult{}, flowerr.BadInputf("stats: chi-square test needs sigma > 0")
	}
	// Equiprobable bins: expected count is identical in each, which
	// keeps the merge step trivial and the test well-conditioned.
	nbins := int(math.Max(5, math.Floor(float64(len(xs))/10)))
	if nbins > 30 {
		nbins = 30
	}
	expected := float64(len(xs)) / float64(nbins)
	for expected < 5 && nbins > 3 {
		nbins--
		expected = float64(len(xs)) / float64(nbins)
	}
	edges := make([]float64, nbins+1)
	edges[0] = math.Inf(-1)
	edges[nbins] = math.Inf(1)
	for i := 1; i < nbins; i++ {
		edges[i] = dist.Quantile(float64(i) / float64(nbins))
	}
	observed := make([]float64, nbins)
	for _, x := range xs {
		// Binary search for the bin.
		idx := sort.SearchFloat64s(edges[1:nbins], x)
		observed[idx]++
	}
	chi2 := 0.0
	for _, o := range observed {
		d := o - expected
		chi2 += d * d / expected
	}
	dof := nbins - 1 - 2
	if dof < 1 {
		dof = 1
	}
	p := ChiSquareSF(chi2, dof)
	return GOFResult{
		ChiSquare: chi2,
		DOF:       dof,
		PValue:    p,
		Accepted:  p >= alpha,
		Bins:      nbins,
	}, nil
}

// KolmogorovSmirnovTest compares xs against the given normal with the
// one-sample KS statistic, returning the statistic and an approximate
// p-value (Kolmogorov distribution asymptotics with the Stephens
// small-sample correction). It complements the chi-square test: the KS
// statistic is less sensitive to binning and heavier-tailed
// alternatives.
func KolmogorovSmirnovTest(xs []float64, dist Normal, alpha float64) (GOFResult, error) {
	n := len(xs)
	if n < 8 {
		return GOFResult{}, flowerr.BadInputf("stats: KS test needs at least 8 samples")
	}
	if dist.Sigma <= 0 {
		return GOFResult{}, flowerr.BadInputf("stats: KS test needs sigma > 0")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := dist.CDF(x)
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	// Stephens correction for finite n.
	en := math.Sqrt(float64(n))
	lambda := (en + 0.12 + 0.11/en) * d
	p := ksPValue(lambda)
	return GOFResult{
		ChiSquare: d, // the KS statistic, reusing the field
		DOF:       n,
		PValue:    p,
		Accepted:  p >= alpha,
	}, nil
}

// ksPValue evaluates the Kolmogorov distribution survival function
// Q(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
