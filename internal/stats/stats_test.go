package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %g, want 5", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %g, want %g", s.StdDev, math.Sqrt(32.0/7.0))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", s.Min, s.Max)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.StdDev != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty slice should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestNormalPDFCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if !almostEqual(n.PDF(0), 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("pdf(0) = %g", n.PDF(0))
	}
	if !almostEqual(n.CDF(0), 0.5, 1e-12) {
		t.Errorf("cdf(0) = %g", n.CDF(0))
	}
	if !almostEqual(n.CDF(1.959963985), 0.975, 1e-6) {
		t.Errorf("cdf(1.96) = %g", n.CDF(1.959963985))
	}
	shifted := Normal{Mu: 10, Sigma: 2}
	if !almostEqual(shifted.CDF(10), 0.5, 1e-12) {
		t.Errorf("shifted cdf(mu) = %g", shifted.CDF(10))
	}
	if shifted.ThreeSigmaHigh() != 16 {
		t.Errorf("3-sigma high = %g, want 16", shifted.ThreeSigmaHigh())
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 0.7}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := n.Quantile(p)
		if !almostEqual(n.CDF(x), p, 1e-9) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, n.CDF(x))
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("quantile edges should be infinite")
	}
}

func TestNormalDegenerateSigma(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0}
	if n.PDF(1) != 0 {
		t.Error("degenerate pdf should be 0")
	}
	if n.CDF(0.5) != 0 || n.CDF(1.5) != 1 {
		t.Error("degenerate cdf should be a step")
	}
}

func TestFitNormal(t *testing.T) {
	st := NewStream(42)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = st.Normal(2.5, 0.3)
	}
	n, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(n.Mu, 2.5, 0.02) || !almostEqual(n.Sigma, 0.3, 0.02) {
		t.Errorf("fit = %+v, want mu=2.5 sigma=0.3", n)
	}
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Error("fit of 1 sample should fail")
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// Critical values: P(X >= x) for chi-square.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{16.919, 9, 0.05},
		{2.706, 1, 0.10},
		{23.209, 10, 0.01},
	}
	for _, c := range cases {
		if got := ChiSquareSF(c.x, c.k); !almostEqual(got, c.want, 2e-4) {
			t.Errorf("SF(%g, %d) = %g, want %g", c.x, c.k, got, c.want)
		}
	}
	if ChiSquareSF(-1, 3) != 1 || ChiSquareSF(0, 3) != 1 {
		t.Error("SF(x<=0) should be 1")
	}
	if !almostEqual(ChiSquareCDF(3.841, 1), 0.95, 2e-4) {
		t.Error("CDF complement broken")
	}
}

func TestChiSquareGOFAcceptsNormalData(t *testing.T) {
	st := NewStream(7)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = st.Normal(0, 1)
	}
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChiSquareNormalTest(xs, fit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("normal data rejected: %+v", res)
	}
}

func TestChiSquareGOFRejectsUniformData(t *testing.T) {
	st := NewStream(9)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = st.Float64() // uniform, clearly not normal
	}
	fit, _ := FitNormal(xs)
	res, err := ChiSquareNormalTest(xs, fit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Errorf("uniform data accepted as normal: %+v", res)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, err := ChiSquareNormalTest([]float64{1, 2, 3}, Normal{0, 1}, 0.05); err == nil {
		t.Error("tiny sample should error")
	}
	xs := make([]float64, 50)
	if _, err := ChiSquareNormalTest(xs, Normal{0, 0}, 0.05); err == nil {
		t.Error("sigma=0 should error")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(123), NewStream(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := DeriveStream(123, "x")
	d := DeriveStream(123, "x")
	e := DeriveStream(123, "y")
	same, diff := true, false
	for i := 0; i < 50; i++ {
		cv, dv, ev := c.Float64(), d.Float64(), e.Float64()
		if cv != dv {
			same = false
		}
		if cv != ev {
			diff = true
		}
	}
	if !same {
		t.Error("derived streams with same name differ")
	}
	if !diff {
		t.Error("derived streams with different names identical")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{-1, 0, 0.5, 5, 9.999, 10, 42})
	if h.Under != 1 {
		t.Errorf("under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over = %d, want 2", h.Over)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[9] != 1 {
		t.Errorf("bin9 = %d, want 1", h.Counts[9])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	if !almostEqual(h.BinCenter(0), 0.5, 1e-12) {
		t.Errorf("bin center = %g", h.BinCenter(0))
	}
	if h.Render(20) == "" {
		t.Error("render empty")
	}
}

func TestHistogramDensityIntegratesToCoverage(t *testing.T) {
	h := NewHistogram(-4, 4, 40)
	st := NewStream(5)
	n := 10000
	for i := 0; i < n; i++ {
		h.Add(st.Normal(0, 1))
	}
	integral := 0.0
	w := 8.0 / 40.0
	for i := range h.Counts {
		integral += h.Density(i) * w
	}
	inRange := float64(n-h.Under-h.Over) / float64(n)
	if !almostEqual(integral, inRange, 1e-9) {
		t.Errorf("density integral %g != in-range fraction %g", integral, inRange)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

// Property: percentile is monotone in p, and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(p1, 100))
		b := math.Abs(math.Mod(p2, 100))
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		s := Summarize(xs)
		return pa <= pb && pa >= s.Min && pb <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone non-decreasing and in [0,1].
func TestNormalCDFMonotoneProperty(t *testing.T) {
	f := func(mu, sigmaRaw, x1, x2 float64) bool {
		if math.IsNaN(mu) || math.IsNaN(sigmaRaw) || math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		if math.Abs(mu) > 1e6 || math.Abs(x1) > 1e6 || math.Abs(x2) > 1e6 {
			return true
		}
		sigma := 0.01 + math.Abs(math.Mod(sigmaRaw, 100))
		n := Normal{Mu: mu, Sigma: sigma}
		lo, hi := x1, x2
		if lo > hi {
			lo, hi = hi, lo
		}
		cl, ch := n.CDF(lo), n.CDF(hi)
		return cl <= ch+1e-15 && cl >= 0 && ch <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkChiSquareNormalTest(b *testing.B) {
	st := NewStream(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = st.Normal(0, 1)
	}
	fit, _ := FitNormal(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquareNormalTest(xs, fit, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKSAcceptsNormalRejectsUniform(t *testing.T) {
	st := NewStream(21)
	normal := make([]float64, 800)
	uniform := make([]float64, 800)
	for i := range normal {
		normal[i] = st.Normal(5, 2)
		uniform[i] = st.Float64() * 10
	}
	fitN, _ := FitNormal(normal)
	resN, err := KolmogorovSmirnovTest(normal, fitN, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !resN.Accepted {
		t.Errorf("KS rejected normal data: %+v", resN)
	}
	fitU, _ := FitNormal(uniform)
	resU, err := KolmogorovSmirnovTest(uniform, fitU, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if resU.Accepted {
		t.Errorf("KS accepted uniform data: %+v", resU)
	}
}

func TestKSValidation(t *testing.T) {
	if _, err := KolmogorovSmirnovTest([]float64{1, 2}, Normal{0, 1}, 0.05); err == nil {
		t.Error("tiny sample accepted")
	}
	xs := make([]float64, 20)
	if _, err := KolmogorovSmirnovTest(xs, Normal{0, 0}, 0.05); err == nil {
		t.Error("sigma=0 accepted")
	}
}

func TestKSPValueEdges(t *testing.T) {
	if ksPValue(0) != 1 {
		t.Error("lambda 0 should give p=1")
	}
	if p := ksPValue(10); p > 1e-10 {
		t.Errorf("huge lambda p=%g", p)
	}
	// Known point: Q(1.36) ~ 0.049 (the classic 5% critical value).
	if p := ksPValue(1.36); math.Abs(p-0.049) > 0.003 {
		t.Errorf("Q(1.36) = %g, want ~0.049", p)
	}
}
