package stats

import "math"

// ChiSquareSF returns the survival function P(X >= x) of a chi-square
// distribution with k degrees of freedom, i.e. the p-value of a
// chi-square statistic. It is computed through the regularized upper
// incomplete gamma function Q(k/2, x/2).
func ChiSquareSF(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(float64(k)/2, x/2)
}

// ChiSquareCDF returns P(X <= x) for a chi-square with k degrees of
// freedom.
func ChiSquareCDF(x float64, k int) float64 {
	return 1 - ChiSquareSF(x, k)
}

// regularizedGammaQ computes Q(a, x) = Gamma(a, x)/Gamma(a), the
// regularized upper incomplete gamma function, using the series
// expansion for x < a+1 and the continued fraction otherwise
// (Numerical Recipes style).
func regularizedGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - lowerGammaSeries(a, x)
	default:
		return upperGammaCF(a, x)
	}
}

// lowerGammaSeries computes P(a,x) via its power series.
func lowerGammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
	)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// upperGammaCF computes Q(a,x) via the Lentz continued fraction.
func upperGammaCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
