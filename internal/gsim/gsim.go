// Package gsim is a deterministic cycle-based gate-level logic
// simulator. It substitutes for the paper's Modelsim simulation step:
// it executes a netlist cycle by cycle and records per-net toggle
// counts, which the power analysis back-annotates as switching
// activity (the paper's "HDL simulation with switching activity
// back-annotation").
//
// The simulator is zero-delay and two-phase: at every cycle all
// combinational logic is evaluated in topological order from the
// current primary inputs and flip-flop outputs, then all flip-flops
// capture their D inputs simultaneously. Glitch power is therefore not
// modeled, matching the usual cycle-accurate activity-estimation
// methodology.
package gsim

import (
	"context"
	"fmt"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/obs"
)

// Simulator holds the evaluation state of one netlist.
type Simulator struct {
	nl    *netlist.Netlist
	order []int  // topological order of combinational instances
	vals  []bool // current value per net
	seqs  []int  // flip-flop instance IDs
	state []bool // captured Q value per entry of seqs

	toggles []uint64 // per-net toggle count
	prev    []bool   // net values at the end of the previous Step
	cycles  uint64
	primed  bool // first Step establishes the reference values
}

// New builds a simulator for nl. All state starts at logic 0.
func New(nl *netlist.Netlist) (*Simulator, error) {
	order, err := nl.Levelize()
	if err != nil {
		return nil, fmt.Errorf("gsim: %w", err)
	}
	return &Simulator{
		nl:      nl,
		order:   order,
		vals:    make([]bool, nl.NumNets()),
		seqs:    nl.Sequentials(),
		state:   make([]bool, len(nl.Sequentials())),
		toggles: make([]uint64, nl.NumNets()),
		prev:    make([]bool, nl.NumNets()),
	}, nil
}

// Reset clears all flip-flop state, net values and activity counters.
func (s *Simulator) Reset() {
	for i := range s.vals {
		s.vals[i] = false
	}
	for i := range s.state {
		s.state[i] = false
	}
	for i := range s.toggles {
		s.toggles[i] = 0
		s.prev[i] = false
	}
	s.cycles = 0
	s.primed = false
}

// SetPI drives a primary-input net for the next Step.
func (s *Simulator) SetPI(net int, v bool) { s.vals[net] = v }

// SetPIWord drives a primary-input bus with the low bits of v.
func (s *Simulator) SetPIWord(w netlist.Word, v uint64) {
	for i, n := range w {
		s.vals[n] = v>>uint(i)&1 == 1
	}
}

// Val returns the current value of a net (valid after Step or Eval).
func (s *Simulator) Val(net int) bool { return s.vals[net] }

// Word reads a bus as an unsigned integer.
func (s *Simulator) Word(w netlist.Word) uint64 {
	var v uint64
	for i, n := range w {
		if s.vals[n] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Eval propagates the current primary inputs and flip-flop outputs
// through the combinational logic without clocking the flops. Toggle
// counters are not advanced. It is the combinational-settling step
// used both by Step and by purely combinational testbenches.
func (s *Simulator) Eval() {
	nl := s.nl
	// Flop outputs present their captured state.
	for k, id := range s.seqs {
		s.vals[nl.Insts[id].Out] = s.state[k]
	}
	var inBuf [8]bool
	for _, id := range s.order {
		inst := &nl.Insts[id]
		in := inBuf[:len(inst.Inputs)]
		for p, netID := range inst.Inputs {
			in[p] = s.vals[netID]
		}
		s.vals[inst.Out] = nl.Cell(id).Eval(in)
	}
}

// Step runs one clock cycle: settle combinational logic, record
// toggles against the previous cycle's values, then clock all
// flip-flops. Drive primary inputs with SetPI before calling.
func (s *Simulator) Step() {
	s.Eval()
	if s.primed {
		for i, v := range s.vals {
			if v != s.prev[i] {
				s.toggles[i]++
			}
		}
	}
	copy(s.prev, s.vals)
	s.primed = true
	s.cycles++
	// Capture D inputs.
	for k, id := range s.seqs {
		s.state[k] = s.vals[s.nl.Insts[id].Inputs[0]]
	}
}

// Run applies each vector (a PI-driving callback) for one cycle.
func (s *Simulator) Run(cycles int, drive func(cycle int, s *Simulator)) {
	_ = s.RunContext(context.Background(), cycles, drive)
}

// ctxCheckEvery is how many cycles pass between context polls during a
// cancellable run: cheap enough to be invisible, frequent enough that
// cancellation lands within microseconds on any realistic netlist.
const ctxCheckEvery = 64

// RunContext is Run with cancellation: the cycle loop polls ctx every
// ctxCheckEvery cycles and stops with an error matching
// flowerr.ErrCancelled when it expires. Activity accumulated up to the
// stopping cycle is retained, so a cancelled simulation still reports
// the toggles it observed.
func (s *Simulator) RunContext(ctx context.Context, cycles int, drive func(cycle int, s *Simulator)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "gsim.run")
	defer span.End()
	span.SetAttr("cycles", cycles)
	span.SetAttr("nets", s.nl.NumNets())
	for c := 0; c < cycles; c++ {
		if c%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return flowerr.Cancelledf("gsim: cancelled at cycle %d/%d: %w", c, cycles, err)
			}
		}
		if drive != nil {
			drive(c, s)
		}
		s.Step()
	}
	return nil
}

// Cycles returns the number of Steps executed since the last Reset.
func (s *Simulator) Cycles() uint64 { return s.cycles }

// Toggles returns the toggle count of a net.
func (s *Simulator) Toggles(net int) uint64 { return s.toggles[net] }

// Activity returns the per-cycle toggle rate of every net: the
// switching-activity vector consumed by the power model. Rates are
// relative to the number of completed cycle transitions (cycles-1).
func (s *Simulator) Activity() []float64 {
	act := make([]float64, len(s.toggles))
	if s.cycles < 2 {
		return act
	}
	denom := float64(s.cycles - 1)
	for i, t := range s.toggles {
		act[i] = float64(t) / denom
	}
	return act
}
