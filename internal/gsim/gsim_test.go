package gsim

import (
	"testing"
	"testing/quick"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
)

func builder() *netlist.Builder {
	return netlist.NewBuilder("t", cell.Default65nm())
}

func TestCombEval(t *testing.T) {
	b := builder()
	a := b.Input("a")
	c := b.Input("c")
	x := b.Xor(a, c)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ a, c, want bool }{
		{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false},
	} {
		s.SetPI(a, tc.a)
		s.SetPI(c, tc.c)
		s.Eval()
		if s.Val(x) != tc.want {
			t.Errorf("xor(%v,%v) = %v", tc.a, tc.c, s.Val(x))
		}
	}
}

func TestNewRejectsCycle(t *testing.T) {
	b := builder()
	// Handmade combinational loop.
	n1 := b.NL.AddNet("n1")
	out := b.NL.AddInst(cell.Inv, "i1", netlist.StageNone, "", n1)
	inst := b.NL.Nets[out].Driver
	b.NL.Insts[inst].Inputs[0] = out
	b.NL.Nets[out].Sinks = append(b.NL.Nets[out].Sinks, netlist.Sink{Inst: inst, Pin: 0})
	b.NL.Nets[n1].Sinks = nil
	if _, err := New(b.NL); err == nil {
		t.Error("cycle accepted")
	}
}

func TestDFFPipelineDelay(t *testing.T) {
	// Two back-to-back flops delay a PI by two cycles.
	b := builder()
	d := b.Input("d")
	q1 := b.DFF(d)
	q2 := b.DFF(q1)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	seq := []bool{true, false, true, true, false}
	var gotQ2 []bool
	for _, v := range seq {
		s.SetPI(d, v)
		s.Step()
		gotQ2 = append(gotQ2, s.Val(q2))
	}
	// q2 at cycle k shows input from cycle k-2.
	want := []bool{false, false, true, false, true}
	for i := range want {
		if gotQ2[i] != want[i] {
			t.Errorf("cycle %d: q2 = %v, want %v", i, gotQ2[i], want[i])
		}
	}
}

func TestToggleCounting(t *testing.T) {
	b := builder()
	d := b.Input("d")
	q := b.DFF(d)
	inv := b.Not(q)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate the input every cycle: d toggles each of the 7
	// transitions; q and inv follow one cycle later.
	for c := 0; c < 8; c++ {
		s.SetPI(d, c%2 == 1)
		s.Step()
	}
	if s.Toggles(d) != 7 {
		t.Errorf("d toggles = %d, want 7", s.Toggles(d))
	}
	// q lags d by one cycle, so it only completes 6 transitions in
	// the 7 counted cycle boundaries.
	if s.Toggles(q) != 6 || s.Toggles(inv) != 6 {
		t.Errorf("q/inv toggles = %d/%d, want 6/6", s.Toggles(q), s.Toggles(inv))
	}
	act := s.Activity()
	if act[d] != 1.0 {
		t.Errorf("activity of d = %g, want 1", act[d])
	}
}

func TestConstantNetHasZeroActivity(t *testing.T) {
	b := builder()
	d := b.Input("d")
	k := b.Const(true)
	x := b.And(d, k)
	s, _ := New(b.NL)
	for c := 0; c < 10; c++ {
		s.SetPI(d, c%3 == 0)
		s.Step()
	}
	if s.Toggles(k) != 0 {
		t.Errorf("constant net toggled %d times", s.Toggles(k))
	}
	if s.Toggles(x) == 0 {
		t.Error("gated net should toggle")
	}
}

func TestResetClearsState(t *testing.T) {
	b := builder()
	d := b.Input("d")
	q := b.DFF(d)
	s, _ := New(b.NL)
	s.SetPI(d, true)
	s.Step()
	s.Step()
	if !s.Val(q) {
		t.Fatal("q should be 1 after two cycles of d=1")
	}
	s.Reset()
	if s.Val(q) || s.Cycles() != 0 || s.Toggles(d) != 0 {
		t.Error("reset incomplete")
	}
	if act := s.Activity(); act[d] != 0 {
		t.Error("activity after reset should be zero")
	}
}

func TestToggleFlopDividesByTwo(t *testing.T) {
	// Classic toggle flop: q' = !q. Output toggles every cycle.
	b := builder()
	ph := b.Input("ph")
	q := b.DFF(ph)
	nq := b.Not(q)
	dff := b.NL.Nets[q].Driver
	b.NL.Insts[dff].Inputs[0] = nq
	b.NL.Nets[ph].Sinks = nil
	b.NL.Nets[nq].Sinks = append(b.NL.Nets[nq].Sinks, netlist.Sink{Inst: dff, Pin: 0})
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]bool, 6)
	for c := range vals {
		s.Step()
		vals[c] = s.Val(q)
	}
	want := []bool{false, true, false, true, false, true}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("toggle sequence wrong at %d: %v", i, vals)
		}
	}
}

func TestWordHelpers(t *testing.T) {
	b := builder()
	w := b.InputWord("w", 8)
	q := b.DFFWord(w)
	s, _ := New(b.NL)
	s.SetPIWord(w, 0xA5)
	s.Step()
	s.Step()
	if got := s.Word(q); got != 0xA5 {
		t.Errorf("word = %#x, want 0xA5", got)
	}
}

func TestRunCallback(t *testing.T) {
	b := builder()
	d := b.Input("d")
	b.DFF(d)
	s, _ := New(b.NL)
	n := 0
	s.Run(5, func(c int, sim *Simulator) {
		n++
		sim.SetPI(d, c%2 == 0)
	})
	if n != 5 || s.Cycles() != 5 {
		t.Errorf("run executed %d/%d cycles", n, s.Cycles())
	}
}

// Property: for random combinational netlists, the simulator's Eval
// matches a direct recursive evaluation of the logic.
func TestEvalMatchesRecursiveEvaluation(t *testing.T) {
	f := func(ops []byte, stimulus uint8) bool {
		b := builder()
		nets := []int{b.Input("a"), b.Input("b"), b.Input("c")}
		for i, op := range ops {
			if i >= 30 {
				break
			}
			x := nets[int(op)%len(nets)]
			y := nets[int(op>>3)%len(nets)]
			var out int
			switch op % 6 {
			case 0:
				out = b.Not(x)
			case 1:
				out = b.And(x, y)
			case 2:
				out = b.Or(x, y)
			case 3:
				out = b.Xor(x, y)
			case 4:
				out = b.Nand(x, y)
			default:
				out = b.Mux(x, y, nets[int(op>>5)%len(nets)])
			}
			nets = append(nets, out)
		}
		s, err := New(b.NL)
		if err != nil {
			return false
		}
		pi := []bool{stimulus&1 == 1, stimulus&2 == 2, stimulus&4 == 4}
		for i, n := range b.NL.PIs {
			s.SetPI(n, pi[i])
		}
		s.Eval()
		// Recursive reference evaluation.
		var evalNet func(n int) bool
		evalNet = func(n int) bool {
			drv := b.NL.Nets[n].Driver
			if drv == -1 {
				for i, p := range b.NL.PIs {
					if p == n {
						return pi[i]
					}
				}
				return false
			}
			inst := &b.NL.Insts[drv]
			in := make([]bool, len(inst.Inputs))
			for k, m := range inst.Inputs {
				in[k] = evalNet(m)
			}
			return b.NL.Cell(drv).Eval(in)
		}
		for _, n := range nets {
			if s.Val(n) != evalNet(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
