// Package def reads and writes a DEF (Design Exchange Format) subset:
// die area, standard-cell rows, and placed components. The paper's
// flow obtains "coarse placement ... through the def file"; this
// package provides the same interchange for our placer.
package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vipipe/internal/flowerr"
	"vipipe/internal/place"
)

// dbuPerMicron is the DEF distance resolution.
const dbuPerMicron = 1000

// Write emits the placement as DEF.
func Write(w io.Writer, p *place.Placement) error {
	if err := p.Validate(); err != nil {
		return flowerr.BadInputf("def: refusing to write invalid placement: %w", err)
	}
	bw := bufio.NewWriter(w)
	dbu := func(um float64) int { return int(um*dbuPerMicron + 0.5) }
	fmt.Fprintf(bw, "VERSION 5.8 ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", p.NL.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", dbuPerMicron)
	fmt.Fprintf(bw, "DIEAREA ( 0 0 ) ( %d %d ) ;\n", dbu(p.DieW), dbu(p.DieH))
	for r := 0; r < p.Rows; r++ {
		fmt.Fprintf(bw, "ROW row_%d coresite 0 %d N ;\n", r, dbu(float64(r)*p.RowHeight))
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", p.NL.NumCells())
	for i := range p.NL.Insts {
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n",
			escape(p.NL.Insts[i].Name), p.NL.Cell(i).Name, dbu(p.X[i]), dbu(p.Y[i]))
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")
	fmt.Fprintf(bw, "END DESIGN\n")
	return bw.Flush()
}

// escape replaces spaces in hierarchical names (DEF splits on blanks).
func escape(s string) string { return strings.ReplaceAll(s, " ", "_") }

// File is a parsed DEF subset.
type File struct {
	Design     string
	DieW, DieH float64
	Rows       int
	// Placed maps component name to its location in microns.
	Placed map[string][2]float64
}

// Parse reads the subset produced by Write.
func Parse(r io.Reader) (*File, error) {
	f := &File{Placed: make(map[string][2]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inComponents := false
	toUM := func(s string) (float64, error) {
		v, err := strconv.Atoi(s)
		return float64(v) / dbuPerMicron, err
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "DESIGN" && len(fields) >= 2:
			f.Design = fields[1]
		case fields[0] == "DIEAREA" && len(fields) >= 9:
			w, err1 := toUM(fields[6])
			h, err2 := toUM(fields[7])
			if err1 != nil || err2 != nil {
				return nil, flowerr.BadInputf("def: bad DIEAREA %q", sc.Text())
			}
			f.DieW, f.DieH = w, h
		case fields[0] == "ROW":
			f.Rows++
		case fields[0] == "COMPONENTS":
			inComponents = true
		case fields[0] == "END" && len(fields) >= 2 && fields[1] == "COMPONENTS":
			inComponents = false
		case inComponents && fields[0] == "-":
			// - name cell + PLACED ( x y ) N ;
			if len(fields) < 10 {
				return nil, flowerr.BadInputf("def: bad component line %q", sc.Text())
			}
			x, err1 := toUM(fields[6])
			y, err2 := toUM(fields[7])
			if err1 != nil || err2 != nil {
				return nil, flowerr.BadInputf("def: bad coordinates in %q", sc.Text())
			}
			f.Placed[fields[1]] = [2]float64{x, y}
		}
	}
	if err := sc.Err(); err != nil {
		// Scanner errors on in-memory input (e.g. a line past the 1MB
		// buffer) mean the text is malformed, not that IO failed.
		return nil, flowerr.BadInputf("def: %w", err)
	}
	if len(f.Placed) == 0 {
		return nil, flowerr.BadInputf("def: no placed components found")
	}
	return f, nil
}

// Apply copies parsed component locations onto a placement for the
// same netlist (matching by instance name).
func (f *File) Apply(p *place.Placement) error {
	byName := make(map[string]int, p.NL.NumCells())
	for i := range p.NL.Insts {
		byName[escape(p.NL.Insts[i].Name)] = i
	}
	applied := 0
	for name, xy := range f.Placed {
		i, ok := byName[name]
		if !ok {
			return flowerr.BadInputf("def: component %q not in netlist", name)
		}
		p.X[i], p.Y[i] = xy[0], xy[1]
		applied++
	}
	if applied != p.NL.NumCells() {
		return flowerr.BadInputf("def: placed %d of %d components", applied, p.NL.NumCells())
	}
	return nil
}
