package def

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
)

func fixture(t *testing.T) *place.Placement {
	t.Helper()
	b := netlist.NewBuilder("deftest", cell.Default65nm())
	x := b.Input("x")
	n := x
	for i := 0; i < 30; i++ {
		n = b.Not(n)
	}
	b.DFF(n)
	p, err := place.Global(b.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	p := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Design != "deftest" {
		t.Errorf("design = %q", f.Design)
	}
	if f.Rows != p.Rows {
		t.Errorf("rows = %d, want %d", f.Rows, p.Rows)
	}
	if math.Abs(f.DieW-p.DieW) > 0.01 || math.Abs(f.DieH-p.DieH) > 0.01 {
		t.Errorf("die %gx%g, want %gx%g", f.DieW, f.DieH, p.DieW, p.DieH)
	}
	// Applying onto a scrambled placement restores coordinates.
	p2 := fixture(t)
	for i := range p2.X {
		p2.X[i] = 0
		p2.Y[i] = 0
	}
	if err := f.Apply(p2); err != nil {
		t.Fatal(err)
	}
	for i := range p.X {
		if math.Abs(p.X[i]-p2.X[i]) > 0.001 || math.Abs(p.Y[i]-p2.Y[i]) > 0.001 {
			t.Fatalf("cell %d at (%g,%g), want (%g,%g)", i, p2.X[i], p2.Y[i], p.X[i], p.Y[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"VERSION 5.8 ;\nEND DESIGN\n",                                     // no components
		"COMPONENTS 1 ;\n- u1 INV + PLACED ( x y ) N ;\nEND COMPONENTS\n", // bad coords
		"DIEAREA ( 0 0 ( 10 10 ;\nCOMPONENTS ;",                           // mangled diearea is short
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestApplyRejectsForeignComponents(t *testing.T) {
	p := fixture(t)
	f := &File{Placed: map[string][2]float64{"ghost": {1, 2}}}
	if err := f.Apply(p); err == nil {
		t.Error("foreign component accepted")
	}
}

func TestApplyRejectsPartialCoverage(t *testing.T) {
	p := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one component.
	for name := range f.Placed {
		delete(f.Placed, name)
		break
	}
	if err := f.Apply(p); err == nil {
		t.Error("partial coverage accepted")
	}
}

func TestWriteRefusesInvalidPlacement(t *testing.T) {
	p := fixture(t)
	p.X[0] = -1e9
	var buf bytes.Buffer
	if err := Write(&buf, p); err == nil {
		t.Error("invalid placement written")
	}
}
