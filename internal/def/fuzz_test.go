package def

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
)

// writerCorpus emits a small DEF via the package's own writer.
func writerCorpus() string {
	b := netlist.NewBuilder("fuzzseed", cell.Default65nm())
	x := b.Input("x")
	n := x
	for i := 0; i < 12; i++ {
		n = b.Not(n)
	}
	b.DFF(n)
	pl, err := place.Global(b.NL, place.DefaultOptions())
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, pl); err != nil {
		panic(err)
	}
	return buf.String()
}

func FuzzParseDEF(f *testing.F) {
	seed := writerCorpus()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(strings.Replace(seed, "PLACED ( ", "PLACED ( x", 1))
	f.Add("DIEAREA ( 0 0 ) ( bogus 10 ) ;")
	f.Add("COMPONENTS 1 ;\n- a INV + PLACED ( 1 2 ) N ;\nEND COMPONENTS")
	f.Add("COMPONENTS 1 ;\n- a INV\nEND COMPONENTS")
	f.Add("COMPONENTS 1 ;\n- a INV + PLACED ( 99999999999999999999 2 ) N ;\nEND COMPONENTS")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		file, err := Parse(strings.NewReader(data))
		if err != nil {
			if !errors.Is(err, flowerr.ErrBadInput) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if file == nil {
			t.Fatal("nil file with nil error")
		}
		if len(file.Placed) == 0 {
			t.Fatal("accepted a DEF with no placed components")
		}
	})
}
