package place

import (
	"testing"

	"vipipe/internal/netlist"
	"vipipe/internal/stats"
)

// mustNew builds the placement container without running placement.
func mustNew(nl *netlist.Netlist) *Placement {
	p, err := newPlacement(nl, 0.7)
	if err != nil {
		panic(err)
	}
	return p
}

func newStream(seed int64) *stats.Stream { return stats.DeriveStream(seed, "test") }

var _ = testing.Short
