package place

import (
	"math"
	"testing"
	"testing/quick"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/rtl"
	"vipipe/internal/vex"
)

// chainNetlist builds k inverter chains of length m, mutually
// unconnected: an easy clustering target.
func chainNetlist(k, m int) *netlist.Netlist {
	b := netlist.NewBuilder("chains", cell.Default65nm())
	for c := 0; c < k; c++ {
		n := b.Input("in")
		for i := 0; i < m; i++ {
			n = b.Not(n)
		}
		b.Output(n)
	}
	return b.NL
}

func TestGlobalPlacesAllCellsOnGrid(t *testing.T) {
	nl := chainNetlist(8, 40)
	p, err := Global(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rows < 2 {
		t.Errorf("rows = %d", p.Rows)
	}
}

func TestGlobalBeatsRandomHPWL(t *testing.T) {
	nl := chainNetlist(10, 50)
	pg, err := Global(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Random(nl, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	hg, hr := pg.HPWL(), pr.HPWL()
	if hg >= hr {
		t.Errorf("min-cut HPWL %.0f not better than random %.0f", hg, hr)
	}
	// A min-cut placement of independent chains should be far
	// better, not marginally.
	if hg > 0.7*hr {
		t.Errorf("min-cut HPWL %.0f only %.0f%% of random — too weak", hg, 100*hg/hr)
	}
}

func TestPlacementDeterminism(t *testing.T) {
	nl := chainNetlist(4, 30)
	p1, err := Global(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Global(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.X {
		if p1.X[i] != p2.X[i] || p1.Y[i] != p2.Y[i] {
			t.Fatalf("placement not deterministic at cell %d", i)
		}
	}
}

func TestUtilizationSetsDieArea(t *testing.T) {
	nl := chainNetlist(4, 25)
	cellArea := nl.Stats().AreaUM2
	for _, util := range []float64{0.5, 0.7, 0.9} {
		opts := DefaultOptions()
		opts.Utilization = util
		p, err := Global(nl, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := cellArea / (p.DieW * p.DieH)
		if math.Abs(got-util) > 0.08 {
			t.Errorf("util %g: achieved %g", util, got)
		}
	}
}

func TestBadOptionsRejected(t *testing.T) {
	nl := chainNetlist(1, 5)
	if _, err := Global(nl, Options{Utilization: 0, FMPasses: 1, MinRegion: 4}); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := Global(nl, Options{Utilization: 0.7, FMPasses: -1, MinRegion: 4}); err == nil {
		t.Error("negative FM passes accepted")
	}
	if _, err := Global(netlist.New("empty", cell.Default65nm()), DefaultOptions()); err == nil {
		t.Error("empty netlist accepted")
	}
}

func TestNetHPWLGeometry(t *testing.T) {
	b := netlist.NewBuilder("t", cell.Default65nm())
	a := b.Input("a")
	x := b.Not(a)
	y := b.Not(x)
	_ = y
	nl := b.NL
	p, err := Random(nl, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Place the two inverters at known positions.
	p.X[0], p.Y[0] = 0, 0
	p.X[1], p.Y[1] = 10, p.RowHeight*3
	// Net x connects inv0 (driver) and inv1 (sink).
	got := p.NetHPWL(x)
	want := math.Abs((10+p.W[1]/2)-(0+p.W[0]/2)) + 3*p.RowHeight
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("HPWL = %g, want %g", got, want)
	}
	// Single-pin nets (PI feeding one cell counts two pins; the
	// output of inv1 has one pin) have zero length.
	if p.NetHPWL(nl.Insts[1].Out) != 0 {
		t.Error("dangling net should have zero HPWL")
	}
}

func TestDensityMapSumsToUtilization(t *testing.T) {
	nl := chainNetlist(6, 30)
	p, err := Global(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	grid := p.DensityMap(4, 4)
	sum := 0.0
	for _, row := range grid {
		for _, v := range row {
			sum += v
		}
	}
	// Sum of bin utilization * bin area = total cell area.
	binArea := (p.DieW / 4) * (p.DieH / 4)
	cellArea := nl.Stats().AreaUM2
	if math.Abs(sum*binArea-cellArea) > cellArea*0.01 {
		t.Errorf("density mass %g != cell area %g", sum*binArea, cellArea)
	}
}

func TestInsertAtAndExtend(t *testing.T) {
	nl := chainNetlist(2, 10)
	p, err := Global(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Add a buffer instance post-placement.
	newOut := nl.AddInst(cell.Buf, "ls1", netlist.StageNone, "ls", nl.Insts[0].Out)
	_ = newOut
	id := nl.NumCells() - 1
	p.InsertAt(id, p.DieW/2, p.DieH/2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Clamping: far outside coordinates land inside the die.
	p.InsertAt(id, -50, 1e9)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinCutClustersConnectedLogic(t *testing.T) {
	// Two independent adders: each adder's cells should end up
	// spatially compact relative to die size.
	b := netlist.NewBuilder("t", cell.Default65nm())
	for i := 0; i < 2; i++ {
		x := b.InputWord("x", 16)
		y := b.InputWord("y", 16)
		s, _ := rtl.RippleAdder(b, x, y, b.Const(false))
		b.OutputWord(s)
	}
	p, err := Global(b.NL, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Average net length should be a small fraction of die extent.
	nets := 0
	total := 0.0
	for i := range b.NL.Nets {
		if l := p.NetHPWL(i); l > 0 {
			nets++
			total += l
		}
	}
	avg := total / float64(nets)
	if avg > (p.DieW+p.DieH)/4 {
		t.Errorf("average net %.2f too long for die %.2fx%.2f", avg, p.DieW, p.DieH)
	}
}

func TestVexCorePlacementInterleavesStages(t *testing.T) {
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Global(core.NL, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's observation: performance-driven placement
	// interleaves stages. Check that the execute-stage bounding box
	// overlaps the decode-stage bounding box substantially.
	bbox := func(stage netlist.Stage) (x0, y0, x1, y1 float64) {
		x0, y0 = math.Inf(1), math.Inf(1)
		x1, y1 = math.Inf(-1), math.Inf(-1)
		for i := range core.NL.Insts {
			if core.NL.Insts[i].Stage != stage {
				continue
			}
			x, y := p.Center(i)
			x0, x1 = math.Min(x0, x), math.Max(x1, x)
			y0, y1 = math.Min(y0, y), math.Max(y1, y)
		}
		return
	}
	ex0, ey0, ex1, ey1 := bbox(netlist.StageExecute)
	dx0, dy0, dx1, dy1 := bbox(netlist.StageDecode)
	ix := math.Min(ex1, dx1) - math.Max(ex0, dx0)
	iy := math.Min(ey1, dy1) - math.Max(ey0, dy0)
	if ix <= 0 || iy <= 0 {
		t.Error("execute and decode stages do not overlap at all — placement is stage-segregated")
	}
}

// Property: FM bisection keeps both halves within the balance bounds
// and never loses cells.
func TestPartitionBalanceProperty(t *testing.T) {
	f := func(seed int64, k, m uint8) bool {
		nk := 2 + int(k%6)
		nm := 5 + int(m%40)
		nl := chainNetlist(nk, nm)
		opts := DefaultOptions()
		opts.Seed = seed
		g := &placer{p: mustNew(nl), opts: opts, rng: newStream(seed)}
		all := make([]int, nl.NumCells())
		for i := range all {
			all[i] = i
		}
		left, right := g.partition(all)
		if len(left)+len(right) != len(all) {
			return false
		}
		if len(left) == 0 || len(right) == 0 {
			return false
		}
		area := func(set []int) float64 {
			a := 0.0
			for _, c := range set {
				a += g.p.W[c]
			}
			return a
		}
		la, ra := area(left), area(right)
		total := la + ra
		// Generous bound: the 45/55 target plus slack for the
		// degenerate-guard midpoint split.
		return la >= 0.3*total && ra >= 0.3*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Independent chains have zero min-cut: FM should find a partition
// with no cut nets at the top level.
func TestPartitionFindsZeroCut(t *testing.T) {
	nl := chainNetlist(2, 60) // two equal chains
	opts := DefaultOptions()
	g := &placer{p: mustNew(nl), opts: opts, rng: newStream(1)}
	all := make([]int, nl.NumCells())
	for i := range all {
		all[i] = i
	}
	left, right := g.partition(all)
	side := make(map[int]int)
	for _, c := range left {
		side[c] = 0
	}
	for _, c := range right {
		side[c] = 1
	}
	cut := 0
	for n := range nl.Nets {
		net := &nl.Nets[n]
		if net.Driver < 0 {
			continue
		}
		for _, s := range net.Sinks {
			if side[s.Inst] != side[net.Driver] {
				cut++
			}
		}
	}
	if cut != 0 {
		t.Errorf("two independent chains partitioned with %d cut pins", cut)
	}
}
