package place

import "vipipe/internal/netlist"

// partition splits cells into two area-balanced halves minimizing the
// number of cut nets with Fiduccia-Mattheyses passes over a random
// balanced initial split. Only nets with every pin inside the region
// and at most MaxFanout pins participate in the cut cost: huge-fanout
// nets (constants, resets) carry no placement signal, and pins outside
// the region are already fixed elsewhere.
func (g *placer) partition(cells []int) (left, right []int) {
	p := g.p
	n := len(cells)

	// Local indexing.
	pos := make(map[int]int, n)
	for i, c := range cells {
		pos[c] = i
	}
	w := make([]float64, n)
	total := 0.0
	for i, c := range cells {
		w[i] = p.W[c]
		total += w[i]
	}

	// Random area-balanced initial split.
	order := g.rng.Perm(n)
	side := make([]uint8, n)
	var areas [2]float64
	for _, i := range order {
		s := uint8(0)
		if areas[0] > areas[1] {
			s = 1
		}
		side[i] = s
		areas[s] += w[i]
	}

	// Collect internal nets as member lists of local indices.
	type netInfo struct {
		members []int32
		count   [2]int32
	}
	var nets []netInfo
	cellNets := make([][]int32, n)
	seen := make(map[int]bool)
	for _, c := range cells {
		inst := &p.NL.Insts[c]
		for _, netID := range append([]int{inst.Out}, inst.Inputs...) {
			if seen[netID] {
				continue
			}
			seen[netID] = true
			net := &p.NL.Nets[netID]
			if len(net.Sinks)+1 > g.opts.MaxFanout {
				continue
			}
			var members []int32
			internal := true
			walk := func(id int) {
				if li, ok := pos[id]; ok {
					members = append(members, int32(li))
				} else {
					internal = false
				}
			}
			if net.Driver != netlist.NoInst {
				walk(net.Driver)
			}
			for _, s := range net.Sinks {
				walk(s.Inst)
			}
			if !internal || len(members) < 2 {
				continue
			}
			ni := int32(len(nets))
			nets = append(nets, netInfo{members: members})
			for _, m := range members {
				cellNets[m] = append(cellNets[m], ni)
			}
		}
	}

	// Gain of moving local cell i to the other side, given current
	// net side-counts.
	gainOf := func(i int) int {
		gn := 0
		s := side[i]
		for _, ni := range cellNets[i] {
			cnt := &nets[ni].count
			if cnt[s] == 1 {
				gn++
			}
			if cnt[1-s] == 0 {
				gn--
			}
		}
		return gn
	}

	lo, hi := 0.45*total, 0.55*total
	for pass := 0; pass < g.opts.FMPasses; pass++ {
		for i := range nets {
			nets[i].count = [2]int32{}
			for _, m := range nets[i].members {
				nets[i].count[side[m]]++
			}
		}
		// Gain buckets with lazy deletion: maxDeg bounds |gain|.
		maxDeg := 1
		for i := range cellNets {
			if d := len(cellNets[i]); d > maxDeg {
				maxDeg = d
			}
		}
		gains := make([]int, n)
		locked := make([]bool, n)
		buckets := make([][]int32, 2*maxDeg+1)
		maxG := -maxDeg
		push := func(i int) {
			gn := gains[i]
			buckets[gn+maxDeg] = append(buckets[gn+maxDeg], int32(i))
			if gn > maxG {
				maxG = gn
			}
		}
		for i := 0; i < n; i++ {
			gains[i] = gainOf(i)
			push(i)
		}

		a := areas
		type move struct {
			cell, gn int
		}
		var seq []move
		cum, best, bestAt := 0, 0, -1
		var deferred []int32
		for moved := 0; moved < n; moved++ {
			// Pop the highest-gain movable cell.
			cellIdx := -1
			for gi := maxG; gi >= -maxDeg; gi-- {
				b := buckets[gi+maxDeg]
				for len(b) > 0 {
					i := int(b[len(b)-1])
					b = b[:len(b)-1]
					if locked[i] || gains[i] != gi {
						continue // stale entry
					}
					s := side[i]
					if a[1-s]+w[i] > hi || a[s]-w[i] < lo-0.05*total {
						deferred = append(deferred, int32(i))
						continue
					}
					cellIdx = i
					break
				}
				buckets[gi+maxDeg] = b
				if cellIdx >= 0 {
					break
				}
				maxG = gi - 1
			}
			// Re-queue balance-deferred cells.
			for _, d := range deferred {
				i := int(d)
				if !locked[i] {
					if gains[i] > maxG {
						maxG = gains[i]
					}
					buckets[gains[i]+maxDeg] = append(buckets[gains[i]+maxDeg], d)
				}
			}
			deferred = deferred[:0]
			if cellIdx < 0 {
				break
			}

			i := cellIdx
			gn := gains[i]
			s := side[i]
			a[s] -= w[i]
			a[1-s] += w[i]
			side[i] = 1 - s
			locked[i] = true
			for _, ni := range cellNets[i] {
				nets[ni].count[s]--
				nets[ni].count[1-s]++
			}
			// Recompute gains of unlocked cells on affected nets.
			for _, ni := range cellNets[i] {
				for _, m := range nets[ni].members {
					mi := int(m)
					if locked[mi] {
						continue
					}
					if ng := gainOf(mi); ng != gains[mi] {
						gains[mi] = ng
						push(mi)
					}
				}
			}
			cum += gn
			seq = append(seq, move{i, gn})
			if cum > best {
				best, bestAt = cum, len(seq)-1
			}
			// Abort only a long unprofitable tail: FM's strength is
			// walking down into a cut valley and out the other side,
			// which can take O(cluster size) negative-gain moves.
			if len(seq)-bestAt > n/2+64 {
				break
			}
		}
		// Roll back moves after the best prefix.
		for i := len(seq) - 1; i > bestAt; i-- {
			c := seq[i].cell
			s := side[c]
			side[c] = 1 - s
			a[s] -= w[c]
			a[1-s] += w[c]
		}
		areas = a
		if best <= 0 {
			break
		}
	}

	for i, c := range cells {
		if side[i] == 0 {
			left = append(left, c)
		} else {
			right = append(right, c)
		}
	}
	// Degenerate guard: never return an empty side.
	if len(left) == 0 || len(right) == 0 {
		mid := n / 2
		return cells[:mid], cells[mid:]
	}
	return left, right
}
