// Package place provides the physical-design substrate of the flow: a
// die/row floorplan, a recursive min-cut global placer (a stand-in for
// Physical Compiler's coarse placement), half-perimeter wirelength and
// cell-density metrics, and incremental placement used when level
// shifters are spliced into a finished placement.
//
// The placer is performance-driven in the min-cut sense: strongly
// connected logic lands close together, which interleaves cells from
// different pipeline stages across the floorplan — exactly the
// situation the paper observes ("the performance-driven placement
// optimization has led to a distribution and interleaving across the
// floorplan of cells belonging to different pipeline stages") and the
// reason its voltage islands are generated from physical proximity
// alone.
package place

import (
	"fmt"
	"math"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/stats"
)

// Options controls global placement.
type Options struct {
	Utilization float64 // row utilization target (paper: about 0.70)
	Seed        int64   // RNG seed for initial partitions
	FMPasses    int     // Fiduccia-Mattheyses passes per bisection
	MinRegion   int     // stop recursing below this many cells
	MaxFanout   int     // nets with more pins than this are ignored in cut costs
}

// DefaultOptions mirrors the paper's physical setup.
func DefaultOptions() Options {
	return Options{Utilization: 0.70, Seed: 1, FMPasses: 12, MinRegion: 12, MaxFanout: 64}
}

// Placement is a placed netlist: one (x, y) per instance, in microns,
// on a row grid.
type Placement struct {
	NL   *netlist.Netlist
	X, Y []float64 // cell origins
	W    []float64 // cell widths (area / row height)

	DieW, DieH float64
	RowHeight  float64
	Rows       int
	Util       float64
}

// Global runs recursive min-cut bisection placement.
func Global(nl *netlist.Netlist, opts Options) (*Placement, error) {
	p, err := newPlacement(nl, opts.Utilization)
	if err != nil {
		return nil, err
	}
	if opts.FMPasses < 0 || opts.MinRegion < 1 {
		return nil, flowerr.BadInputf("place: bad options %+v", opts)
	}
	g := &placer{p: p, opts: opts, rng: stats.DeriveStream(opts.Seed, "place")}
	all := make([]int, nl.NumCells())
	for i := range all {
		all[i] = i
	}
	g.bisect(all, region{0, 0, p.DieW, p.DieH}, true)
	p.snapToRows()
	return p, nil
}

// Random places cells uniformly at random on the row grid: the
// placement-quality baseline for the ablation benchmarks.
func Random(nl *netlist.Netlist, util float64, seed int64) (*Placement, error) {
	p, err := newPlacement(nl, util)
	if err != nil {
		return nil, err
	}
	rng := stats.DeriveStream(seed, "place-random")
	for i := range p.X {
		p.X[i] = rng.Float64() * (p.DieW - p.W[i])
		p.Y[i] = float64(rng.Intn(p.Rows)) * p.RowHeight
	}
	return p, nil
}

func newPlacement(nl *netlist.Netlist, util float64) (*Placement, error) {
	if nl.NumCells() == 0 {
		return nil, flowerr.BadInputf("place: empty netlist")
	}
	if util <= 0.05 || util > 1 {
		return nil, flowerr.BadInputf("place: utilization %g out of (0.05, 1]", util)
	}
	tech := nl.Lib.Tech
	total := 0.0
	w := make([]float64, nl.NumCells())
	for i := range w {
		a := nl.Cell(i).AreaUM2
		total += a
		w[i] = a / tech.RowHeightUM
	}
	dieArea := total / util
	side := math.Sqrt(dieArea)
	rows := int(math.Ceil(side / tech.RowHeightUM))
	if rows < 1 {
		rows = 1
	}
	dieH := float64(rows) * tech.RowHeightUM
	dieW := dieArea / dieH
	return &Placement{
		NL:        nl,
		X:         make([]float64, nl.NumCells()),
		Y:         make([]float64, nl.NumCells()),
		W:         w,
		DieW:      dieW,
		DieH:      dieH,
		RowHeight: tech.RowHeightUM,
		Rows:      rows,
		Util:      util,
	}, nil
}

type region struct{ x, y, w, h float64 }

type placer struct {
	p    *Placement
	opts Options
	rng  *stats.Stream
}

// bisect recursively splits cells into two area-balanced halves with
// small net cut and assigns each half a sub-rectangle.
func (g *placer) bisect(cells []int, r region, vertical bool) {
	if len(cells) <= g.opts.MinRegion {
		g.placeLeaf(cells, r)
		return
	}
	left, right := g.partition(cells)
	areaOf := func(set []int) float64 {
		a := 0.0
		for _, c := range set {
			a += g.p.W[c]
		}
		return a
	}
	la, ra := areaOf(left), areaOf(right)
	frac := 0.5
	if la+ra > 0 {
		frac = la / (la + ra)
	}
	if vertical {
		lw := r.w * frac
		g.bisect(left, region{r.x, r.y, lw, r.h}, false)
		g.bisect(right, region{r.x + lw, r.y, r.w - lw, r.h}, false)
	} else {
		lh := r.h * frac
		g.bisect(left, region{r.x, r.y, r.w, lh}, true)
		g.bisect(right, region{r.x, r.y + lh, r.w, r.h - lh}, true)
	}
}

// placeLeaf packs a handful of cells row by row inside a rectangle.
func (g *placer) placeLeaf(cells []int, r region) {
	x, y := r.x, r.y
	for _, c := range cells {
		if x+g.p.W[c] > r.x+r.w+1e-9 && x > r.x {
			x = r.x
			y += g.p.RowHeight
		}
		g.p.X[c] = x
		g.p.Y[c] = y
		x += g.p.W[c]
	}
}

// snapToRows aligns all y coordinates to the row grid and clamps cells
// into the die.
func (p *Placement) snapToRows() {
	for i := range p.Y {
		row := int(math.Round(p.Y[i] / p.RowHeight))
		if row < 0 {
			row = 0
		}
		if row >= p.Rows {
			row = p.Rows - 1
		}
		p.Y[i] = float64(row) * p.RowHeight
		if p.X[i] < 0 {
			p.X[i] = 0
		}
		if p.X[i] > p.DieW-p.W[i] {
			p.X[i] = math.Max(0, p.DieW-p.W[i])
		}
	}
}

// Extend grows the coordinate arrays after instances were added to the
// netlist (e.g. level shifters); new cells start unplaced at (0,0).
func (p *Placement) Extend() {
	for len(p.X) < p.NL.NumCells() {
		i := len(p.X)
		p.X = append(p.X, 0)
		p.Y = append(p.Y, 0)
		p.W = append(p.W, p.NL.Cell(i).AreaUM2/p.RowHeight)
	}
}

// InsertAt places instance id at the given coordinates, snapped to the
// row grid and clamped to the die: the incremental-placement step for
// cells added after global placement.
func (p *Placement) InsertAt(id int, x, y float64) {
	p.Extend()
	row := int(math.Round(y / p.RowHeight))
	if row < 0 {
		row = 0
	}
	if row >= p.Rows {
		row = p.Rows - 1
	}
	p.X[id] = math.Max(0, math.Min(x, p.DieW-p.W[id]))
	p.Y[id] = float64(row) * p.RowHeight
}

// Validate checks that every cell lies inside the die on a row.
func (p *Placement) Validate() error {
	if len(p.X) != p.NL.NumCells() {
		return flowerr.BadInputf("place: %d coordinates for %d cells", len(p.X), p.NL.NumCells())
	}
	for i := range p.X {
		// NaN fails every ordered comparison below, so reject
		// non-finite coordinates explicitly.
		if math.IsNaN(p.X[i]) || math.IsNaN(p.Y[i]) || math.IsInf(p.X[i], 0) || math.IsInf(p.Y[i], 0) {
			return flowerr.BadInputf("place: cell %d at non-finite (%g, %g)", i, p.X[i], p.Y[i])
		}
		if p.X[i] < -1e-6 || p.X[i]+p.W[i] > p.DieW+1e-3 {
			return flowerr.BadInputf("place: cell %d x=%g w=%g outside die width %g", i, p.X[i], p.W[i], p.DieW)
		}
		if p.Y[i] < -1e-6 || p.Y[i] > p.DieH-p.RowHeight+1e-3 {
			return flowerr.BadInputf("place: cell %d y=%g outside die height %g", i, p.Y[i], p.DieH)
		}
		r := p.Y[i] / p.RowHeight
		if math.Abs(r-math.Round(r)) > 1e-6 {
			return flowerr.BadInputf("place: cell %d not row-aligned (y=%g)", i, p.Y[i])
		}
	}
	return nil
}

// NetHPWL returns the half-perimeter wirelength of one net, measured
// between cell centers; nets with fewer than two placed pins have zero
// length.
func (p *Placement) NetHPWL(netID int) float64 {
	net := &p.NL.Nets[netID]
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	pins := 0
	add := func(inst int) {
		cx := p.X[inst] + p.W[inst]/2
		cy := p.Y[inst] + p.RowHeight/2
		minX, maxX = math.Min(minX, cx), math.Max(maxX, cx)
		minY, maxY = math.Min(minY, cy), math.Max(maxY, cy)
		pins++
	}
	if net.Driver != netlist.NoInst {
		add(net.Driver)
	}
	for _, s := range net.Sinks {
		add(s.Inst)
	}
	if pins < 2 {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// HPWL returns the total half-perimeter wirelength.
func (p *Placement) HPWL() float64 {
	total := 0.0
	for i := range p.NL.Nets {
		total += p.NetHPWL(i)
	}
	return total
}

// DensityMap bins cell area into an nx-by-ny grid and returns the
// utilization of each bin; the VI generator uses it to pick the slice
// growth side.
func (p *Placement) DensityMap(nx, ny int) [][]float64 {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("place: density grid %dx%d", nx, ny))
	}
	grid := make([][]float64, ny)
	for j := range grid {
		grid[j] = make([]float64, nx)
	}
	bw, bh := p.DieW/float64(nx), p.DieH/float64(ny)
	for i := range p.X {
		cx := p.X[i] + p.W[i]/2
		cy := p.Y[i] + p.RowHeight/2
		bx := int(cx / bw)
		by := int(cy / bh)
		if bx < 0 {
			bx = 0
		}
		if bx >= nx {
			bx = nx - 1
		}
		if by < 0 {
			by = 0
		}
		if by >= ny {
			by = ny - 1
		}
		grid[by][bx] += p.W[i] * p.RowHeight
	}
	binArea := bw * bh
	for j := range grid {
		for i := range grid[j] {
			grid[j][i] /= binArea
		}
	}
	return grid
}

// Center returns the center coordinates of instance i.
func (p *Placement) Center(i int) (x, y float64) {
	return p.X[i] + p.W[i]/2, p.Y[i] + p.RowHeight/2
}
