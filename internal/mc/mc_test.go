package mc

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
)

type fixture struct {
	a      *sta.Analyzer
	model  variation.Model
	derate []float64
	clock  float64
}

// coreFixture builds the small VEX core, places it, and applies slack
// recovery so the stage wall resembles the paper's Fig. 3 setup.
func coreFixture(t *testing.T) *fixture {
	t.Helper()
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Global(core.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sta.New(core.NL, p)
	if err != nil {
		t.Fatal(err)
	}
	clock := a.Run(1e9, nil).CritPS * 1.001
	derate := a.SlackRecovery(clock, sta.DefaultRecoveryTargets(), 12, 25)
	m := variation.Default()
	return &fixture{a: a, model: m, derate: derate, clock: clock}
}

func (f *fixture) run(t *testing.T, pos variation.Pos, samples int) *Result {
	t.Helper()
	res, err := Run(context.Background(), f.a, &f.model, pos, Options{
		Samples: samples, Seed: 11, ClockPS: f.clock, Derate: f.derate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	f := coreFixture(t)
	if _, err := Run(context.Background(), f.a, &f.model, variation.Pos{}, Options{Samples: 1, ClockPS: 100}); err == nil {
		t.Error("1 sample accepted")
	}
	if _, err := Run(context.Background(), f.a, &f.model, variation.Pos{}, Options{Samples: 10, ClockPS: 0}); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := Run(context.Background(), f.a, &f.model, variation.Pos{}, Options{Samples: 10, ClockPS: 100, Derate: []float64{1}}); err == nil {
		t.Error("bad derate length accepted")
	}
}

func TestPointAAllStagesViolate(t *testing.T) {
	f := coreFixture(t)
	pos := f.model.DiagonalPositions()[0] // A
	res := f.run(t, pos, 200)
	sc, stages := res.Classify(1e-3)
	if sc != 3 {
		t.Fatalf("scenario at A = %d (%v), want 3", sc, stages)
	}
	// Fig. 3: the execute stage is the most severe violator.
	if stages[0] != netlist.StageExecute {
		t.Errorf("most severe stage = %v, want EXECUTE", stages[0])
	}
	// All three mean slacks negative, EX worst.
	ex := res.PerStage[netlist.StageExecute]
	dc := res.PerStage[netlist.StageDecode]
	wb := res.PerStage[netlist.StageWriteback]
	if ex.Fit.Mu >= 0 || dc.Fit.Mu >= 0 || wb.Fit.Mu >= 0 {
		t.Errorf("mean slacks at A should all be negative: ex=%.0f dc=%.0f wb=%.0f", ex.Fit.Mu, dc.Fit.Mu, wb.Fit.Mu)
	}
	if !(ex.Fit.Mu < dc.Fit.Mu && dc.Fit.Mu < wb.Fit.Mu) {
		t.Errorf("stage severity ordering wrong: ex=%.0f dc=%.0f wb=%.0f", ex.Fit.Mu, dc.Fit.Mu, wb.Fit.Mu)
	}
}

func TestPointDMeetsTiming(t *testing.T) {
	f := coreFixture(t)
	pos := f.model.DiagonalPositions()[3] // D
	res := f.run(t, pos, 200)
	sc, stages := res.Classify(1e-3)
	if sc != 0 {
		t.Fatalf("scenario at D = %d (%v), want 0", sc, stages)
	}
}

func TestScenarioSeverityDecreasesAlongDiagonal(t *testing.T) {
	f := coreFixture(t)
	prev := Scenario(4)
	for _, pos := range f.model.DiagonalPositions() {
		res := f.run(t, pos, 150)
		sc, _ := res.Classify(1e-3)
		if sc > prev {
			t.Errorf("scenario increased at %s: %d after %d", pos.Name, sc, prev)
		}
		prev = sc
	}
}

func TestDistributionsFitNormal(t *testing.T) {
	f := coreFixture(t)
	res := f.run(t, f.model.DiagonalPositions()[0], 400)
	for _, st := range PipelineStages {
		d := res.PerStage[st]
		if d == nil {
			t.Fatalf("no distribution for %v", st)
		}
		if d.FitErr != nil {
			t.Fatalf("fit failed for %v: %v", st, d.FitErr)
		}
		if d.Fit.Sigma <= 0 {
			t.Errorf("%v: sigma = %g", st, d.Fit.Sigma)
		}
		// The paper fits all stage distributions to normals at 95%
		// confidence; ours should at least not be wildly non-normal.
		if d.GOF.Bins > 0 && d.GOF.PValue < 1e-6 {
			t.Errorf("%v: distribution wildly non-normal (p=%g)", st, d.GOF.PValue)
		}
	}
}

func TestDepthAveragesOutRandomVariation(t *testing.T) {
	// Paper Section 4.3: "since path delays are determined by taking
	// an aggregate sum of each gate's delay in the path, the path's
	// ratio of variance to mean will decrease as the logic depth
	// increases". Verify the mechanism directly: a shallow chain's
	// delay distribution has a larger coefficient of variation than
	// a deep chain's.
	b := netlist.NewBuilder("depths", cell.Default65nm())
	d := b.Input("d")
	q := b.DFF(d)
	shallow, deep := q, q
	for i := 0; i < 6; i++ {
		shallow = b.Not(shallow)
	}
	for i := 0; i < 60; i++ {
		deep = b.Not(deep)
	}
	r := b.Scope(netlist.StageDecode, "shallow")
	b.DFF(shallow)
	r()
	r = b.Scope(netlist.StageExecute, "deep")
	b.DFF(deep)
	r()
	p, err := place.Global(b.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sta.New(b.NL, p)
	if err != nil {
		t.Fatal(err)
	}
	m := variation.Default()
	res, err := Run(context.Background(), a, &m, m.DiagonalPositions()[0], Options{Samples: 300, Seed: 2, ClockPS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	cv := func(st netlist.Stage) float64 {
		dd := res.PerStage[st]
		meanDelay := res.ClockPS - dd.Fit.Mu
		return dd.Fit.Sigma / meanDelay
	}
	cvShallow, cvDeep := cv(netlist.StageDecode), cv(netlist.StageExecute)
	if cvDeep >= cvShallow {
		t.Errorf("cv(deep)=%.4f should be < cv(shallow)=%.4f", cvDeep, cvShallow)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	f := coreFixture(t)
	pos := f.model.DiagonalPositions()[1]
	r1, err := Run(context.Background(), f.a, &f.model, pos, Options{Samples: 40, Seed: 5, ClockPS: f.clock, Derate: f.derate, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(context.Background(), f.a, &f.model, pos, Options{Samples: 40, Seed: 5, ClockPS: f.clock, Derate: f.derate, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.CritPS {
		if r1.CritPS[i] != r8.CritPS[i] {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
}

func TestCriticalEndpointsSubsetAndOrdered(t *testing.T) {
	f := coreFixture(t)
	res := f.run(t, f.model.DiagonalPositions()[0], 200)
	eps := res.CriticalEndpoints(f.a.NL, netlist.StageExecute)
	if len(eps) == 0 {
		t.Fatal("no critical endpoints in EX at point A")
	}
	total := 0
	for _, d := range res.PerStage {
		total += len(d.SlackPS)
	}
	// Razor economy: only a small subset of EX endpoints can become
	// critical (paper found 12 of all EX flops).
	exEndpoints := 0
	for i := range f.a.NL.Insts {
		if f.a.NL.IsSequential(i) && f.a.NL.Insts[i].Stage == netlist.StageExecute {
			exEndpoints++
		}
	}
	if len(eps) >= exEndpoints/2 {
		t.Errorf("%d of %d EX endpoints critical — sensor placement buys nothing", len(eps), exEndpoints)
	}
	for i := 1; i < len(eps); i++ {
		if eps[i].ViolFrac > eps[i-1].ViolFrac {
			t.Error("endpoints not sorted by violation frequency")
		}
	}
	for _, ep := range eps {
		if f.a.NL.Insts[ep.Inst].Stage != netlist.StageExecute {
			t.Error("wrong-stage endpoint reported")
		}
	}
}

func TestCritPSDistributionSane(t *testing.T) {
	f := coreFixture(t)
	res := f.run(t, f.model.DiagonalPositions()[0], 100)
	for _, c := range res.CritPS {
		if c < f.clock*0.8 || c > f.clock*1.3 {
			t.Fatalf("critical path %g implausible for clock %g", c, f.clock)
		}
	}
	// Paper: worst-case clock frequency degraded by ~10% at A. Ours
	// should be in the same ballpark (systematic 5.5% + random).
	worst := res.CritPS[0]
	for _, c := range res.CritPS {
		worst = math.Max(worst, c)
	}
	degr := worst/f.clock - 1
	if degr < 0.03 || degr > 0.20 {
		t.Errorf("worst-case degradation %.1f%% out of plausible range", degr*100)
	}
}

func TestYieldMonotoneAndBounded(t *testing.T) {
	f := coreFixture(t)
	res := f.run(t, f.model.DiagonalPositions()[1], 100)
	if y := res.Yield(0); y != 0 {
		t.Errorf("yield at zero period = %g", y)
	}
	if y := res.Yield(1e12); y != 1 {
		t.Errorf("yield at huge period = %g", y)
	}
	periods, yields := res.YieldCurve(f.clock*0.9, f.clock*1.2, 16)
	if len(periods) != 16 || len(yields) != 16 {
		t.Fatal("curve shape wrong")
	}
	for i := 1; i < len(yields); i++ {
		if yields[i] < yields[i-1] {
			t.Fatalf("yield curve not monotone at %d: %v", i, yields)
		}
	}
}

func TestYieldOrderedByPosition(t *testing.T) {
	// At the same clock, yield improves from A to D.
	f := coreFixture(t)
	prev := -1.0
	for _, pos := range f.model.DiagonalPositions() {
		res := f.run(t, pos, 100)
		y := res.Yield(f.clock)
		if y < prev {
			t.Errorf("yield at %s (%.2f) below previous (%.2f)", pos.Name, y, prev)
		}
		prev = y
	}
}

func TestKSFieldPopulated(t *testing.T) {
	f := coreFixture(t)
	res := f.run(t, f.model.DiagonalPositions()[2], 120)
	for _, st := range PipelineStages {
		d := res.PerStage[st]
		if d.KS.DOF == 0 {
			t.Errorf("%v: KS test not run", st)
		}
		if d.KS.PValue < 0 || d.KS.PValue > 1 {
			t.Errorf("%v: KS p-value %g out of range", st, d.KS.PValue)
		}
	}
}

func TestRunPreCancelled(t *testing.T) {
	f := coreFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, f.a, &f.model, f.model.DiagonalPositions()[0], Options{
		Samples: 40, Seed: 1, ClockPS: f.clock, Derate: f.derate,
	})
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res != nil {
		t.Errorf("pre-cancelled run returned %d samples, want nil result", res.Samples)
	}
}

func TestRunCancelledMidRunReturnsPartial(t *testing.T) {
	f := coreFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int32
	res, err := Run(ctx, f.a, &f.model, f.model.DiagonalPositions()[0], Options{
		Samples: 40, Seed: 1, ClockPS: f.clock, Derate: f.derate, Workers: 2,
		hookSample: func(int) {
			if fired.Add(1) == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, flowerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res == nil {
		t.Fatal("mid-run cancellation lost the partial result")
	}
	if res.Samples == 0 || res.Samples >= res.Requested {
		t.Errorf("partial result has %d/%d samples", res.Samples, res.Requested)
	}
	if len(res.CritPS) != res.Samples {
		t.Errorf("CritPS has %d entries for %d samples", len(res.CritPS), res.Samples)
	}
	for _, d := range res.PerStage {
		if len(d.SlackPS) != res.Samples {
			t.Errorf("stage %v has %d slacks for %d samples", d.Stage, len(d.SlackPS), res.Samples)
		}
	}
}

func TestRunWorkerPanicBeyondTolerance(t *testing.T) {
	f := coreFixture(t)
	res, err := Run(context.Background(), f.a, &f.model, f.model.DiagonalPositions()[1], Options{
		Samples: 20, Seed: 1, ClockPS: f.clock, Derate: f.derate, Workers: 2,
		hookSample: func(k int) {
			if k == 3 {
				panic("injected fault")
			}
		},
	})
	if res != nil {
		t.Error("panicked run beyond tolerance returned a result")
	}
	if !errors.Is(err, flowerr.ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	var pe *flowerr.PanicError
	if !errors.As(err, &pe) {
		t.Fatal("no PanicError in chain")
	}
	if pe.Sample != 3 {
		t.Errorf("panic sample = %d, want 3", pe.Sample)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}

func TestRunWorkerPanicWithinToleranceSkips(t *testing.T) {
	f := coreFixture(t)
	res, err := Run(context.Background(), f.a, &f.model, f.model.DiagonalPositions()[1], Options{
		Samples: 20, Seed: 1, ClockPS: f.clock, Derate: f.derate, Workers: 2,
		PanicTolerance: 2,
		hookSample: func(k int) {
			if k == 3 || k == 7 {
				panic("injected fault")
			}
		},
	})
	if err != nil {
		t.Fatalf("tolerated panics still errored: %v", err)
	}
	if res.Samples != 18 || res.Requested != 20 {
		t.Errorf("samples = %d/%d, want 18/20", res.Samples, res.Requested)
	}
	if len(res.Skipped) != 2 || res.Skipped[0] != 3 || res.Skipped[1] != 7 {
		t.Errorf("skipped = %v, want [3 7]", res.Skipped)
	}
	if len(res.CritPS) != 18 {
		t.Errorf("CritPS has %d entries", len(res.CritPS))
	}
	for _, d := range res.PerStage {
		if d.FitErr != nil {
			t.Errorf("stage %v fit failed on skip-degraded run: %v", d.Stage, d.FitErr)
		}
	}
}

// TestYieldCurveEdgeCases pins the degenerate-request contract the
// yield-surface axis (yield.CurveAxis.Normalize) mirrors: inverted
// bounds swap, and a single-point or empty axis collapses to one
// sample at the low edge instead of dividing the empty interval.
func TestYieldCurveEdgeCases(t *testing.T) {
	r := &Result{CritPS: []float64{3900, 4000, 4100, 4300}}

	for _, n := range []int{-3, 0, 1} {
		p, y := r.YieldCurve(4000, 4200, n)
		if len(p) != 1 || len(y) != 1 || p[0] != 4000 || y[0] != 0.5 {
			t.Fatalf("n=%d: curve = %v/%v; want single point (4000, 0.5)", n, p, y)
		}
	}

	// Equal bounds: one point regardless of the requested count.
	p, y := r.YieldCurve(4100, 4100, 16)
	if len(p) != 1 || p[0] != 4100 || y[0] != 0.75 {
		t.Fatalf("degenerate interval: curve = %v/%v; want (4100, 0.75)", p, y)
	}

	// Inverted bounds swap; the curve still runs low to high.
	p, y = r.YieldCurve(4200, 3800, 5)
	if len(p) != 5 || p[0] != 3800 || p[4] != 4200 {
		t.Fatalf("swapped bounds: periods = %v; want 3800..4200", p)
	}
	for i := 1; i < len(y); i++ {
		if y[i] < y[i-1] {
			t.Fatalf("yield curve not monotonic: %v", y)
		}
	}
	if y[4] != 0.75 {
		t.Fatalf("yield at 4200 = %g; want 0.75", y[4])
	}
}
