// Package mc is the Monte Carlo statistical static timing analysis
// engine of the flow (paper Section 4.3): it draws fabricated-chip
// instances from the process-variation model, re-times the placed
// netlist for each, and characterizes the per-pipeline-stage
// critical-path (slack) distributions — including the normal fit with
// a chi-square goodness-of-fit test at 95% confidence and the
// classification of timing-violation scenarios that drives voltage
// island generation (paper Section 4.4).
package mc

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/obs"
	"vipipe/internal/sta"
	"vipipe/internal/stats"
	"vipipe/internal/variation"
)

// Options configures a Monte Carlo run.
type Options struct {
	Samples int
	Seed    int64
	ClockPS float64
	Workers int // 0 = GOMAXPROCS
	// Derate composes the slack-recovery factors into every sample
	// (nil = none).
	Derate []float64
	// Domains assigns each instance a supply domain (nil = all low):
	// the voltage-island generator uses this to verify that a
	// candidate high-Vdd slice compensates a violation scenario.
	Domains []cell.Domain
	// PanicTolerance is the number of samples allowed to fail with a
	// recovered worker panic before the whole run errors out. Within
	// the tolerance a panicked sample degrades to a skip recorded in
	// Result.Skipped. Zero (the default) tolerates none.
	PanicTolerance int

	// hookSample, when set by tests, runs at the top of every sample
	// computation; it may panic (exercising recovery) or cancel a
	// context (exercising mid-run cancellation).
	hookSample func(sample int)
}

// StageDist is the sampled slack distribution of one pipeline stage.
type StageDist struct {
	Stage     netlist.Stage
	SlackPS   []float64 // per-sample worst slack of the stage
	Fit       stats.Normal
	GOF       stats.GOFResult // chi-square goodness of fit (the paper's test)
	KS        stats.GOFResult // Kolmogorov-Smirnov, binning-free complement
	FitErr    error
	ViolFrac  float64 // fraction of samples with negative slack
	ViolProb  float64 // P(slack < 0) under the normal fit
	Endpoints int     // endpoints in this stage
}

// Violates reports whether the stage's distribution breaks the nominal
// slack-met condition at the given yield threshold.
func (d *StageDist) Violates(alpha float64) bool {
	return d.ViolProb > alpha
}

// Result is a full Monte Carlo characterization at one chip position.
type Result struct {
	Pos     variation.Pos
	ClockPS float64
	// Samples counts the chip samples that actually contributed to
	// the distributions. It equals Requested on a clean run, and is
	// smaller when samples were skipped (worker panics within the
	// tolerance) or the run was cancelled midway.
	Samples int
	// Requested is the sample count the run was asked for.
	Requested int
	// Skipped lists the sample indices dropped by recovered worker
	// panics (within Options.PanicTolerance).
	Skipped []int

	PerStage map[netlist.Stage]*StageDist
	// CritPS is the distribution of the global critical path delay.
	CritPS []float64
	// EndpointViolations counts, per endpoint instance, the samples
	// in which that endpoint violated.
	EndpointViolations map[int]int
	// StageCriticals counts, per stage, how often each endpoint was
	// that stage's critical (worst-slack) endpoint across samples:
	// the "signal paths that can become critical under process
	// variations" that decide where Razor sensors go (Section 4.4).
	StageCriticals map[netlist.Stage]map[int]int
}

// sampleBatch is the structure-of-arrays per-sample outcome storage of
// one Run: workers write disjoint sample slots, the fold reads columns.
// It replaces the former per-sample per-stage map bookkeeping.
type sampleBatch struct {
	done         []bool
	panicked     []*flowerr.PanicError
	crit         []float64
	stagePresent []uint8 // bitmask over netlist.Stage (NumStages <= 8)
	stageSlack   [netlist.NumStages][]float64
	stageWorst   [netlist.NumStages][]int32
	violators    [][]int32
}

// Run performs the Monte Carlo SSTA for a core placed at pos.
//
// The run honors ctx: cancellation or deadline expiry stops dispatch
// immediately and in-flight workers abandon their queues at the next
// sample boundary, so Run returns within roughly one sample's latency.
// On cancellation the error matches flowerr.ErrCancelled and the
// returned Result (non-nil when at least one sample finished) holds
// the distributions over the samples completed so far.
//
// A panic inside a worker is recovered and converted into a
// flowerr.PanicError carrying the sample index and stack. Up to
// Options.PanicTolerance panicked samples degrade to skips recorded in
// Result.Skipped; beyond that Run fails with an error matching
// flowerr.ErrWorkerPanic.
func Run(ctx context.Context, a *sta.Analyzer, model *variation.Model, pos variation.Pos, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Samples < 2 {
		return nil, flowerr.BadInputf("mc: need at least 2 samples, got %d", opts.Samples)
	}
	if opts.ClockPS <= 0 {
		return nil, flowerr.BadInputf("mc: clock period %g must be positive", opts.ClockPS)
	}
	if opts.Derate != nil && len(opts.Derate) != a.NL.NumCells() {
		return nil, flowerr.BadInputf("mc: derate length %d != %d cells", len(opts.Derate), a.NL.NumCells())
	}
	if opts.Domains != nil && len(opts.Domains) != a.NL.NumCells() {
		return nil, flowerr.BadInputf("mc: domains length %d != %d cells", len(opts.Domains), a.NL.NumCells())
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Samples {
		workers = opts.Samples
	}

	// The sample batch is the position's dominant cost: one span per
	// mc.Run, annotated with the batch shape and, on completion, how
	// many samples actually landed. Spans never touch artifact state.
	ctx, span := obs.Start(ctx, "mc.samples")
	defer span.End()
	span.SetAttr("pos", pos.Name)
	span.SetAttr("samples", opts.Samples)
	span.SetAttr("workers", workers)

	nCells := a.NL.NumCells()
	tech := &a.NL.Lib.Tech

	// Per-sample outcomes live in flat structure-of-arrays storage —
	// one slot per sample index, workers write disjoint slots — so the
	// fold below reads columns instead of per-sample maps. A stage's
	// presence (whether it has any constrained endpoint) is structural
	// and identical across samples, but each sample records its own
	// mask so a torn slot from a panicked sample is never read.
	outs := sampleBatch{
		done:         make([]bool, opts.Samples),
		panicked:     make([]*flowerr.PanicError, opts.Samples),
		crit:         make([]float64, opts.Samples),
		stagePresent: make([]uint8, opts.Samples),
		violators:    make([][]int32, opts.Samples),
	}
	for s := range outs.stageSlack {
		outs.stageSlack[s] = make([]float64, opts.Samples)
		outs.stageWorst[s] = make([]int32, opts.Samples)
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a kernel (the SoA fast path shares the
			// analyzer's characterized tables) plus reusable sample
			// buffers; the cached scalers hoist the normalization
			// constant of cell.DelayScale out of the per-cell loop,
			// bit-for-bit equal by DelayScaler's contract.
			kern := sta.NewKernel(a)
			frame := &sta.Frame{}
			lg := make([]float64, nCells)
			scale := make([]float64, nCells)
			loScale := tech.DelayScaler(tech.VddLow)
			hiScale := tech.DelayScaler(tech.VddHigh)
			// sample is split out so a recovered panic discards one
			// chip instance, not the worker's whole queue.
			sample := func(k int) {
				defer func() {
					if r := recover(); r != nil {
						outs.panicked[k] = &flowerr.PanicError{
							Sample: k, Value: r, Stack: debug.Stack(),
						}
					}
				}()
				if opts.hookSample != nil {
					opts.hookSample(k)
				}
				rng := stats.DeriveStream(opts.Seed, fmt.Sprintf("mc/%s/%d", pos.Name, k))
				model.SampleChipInto(lg, a.PL, pos, rng)
				for i := 0; i < nCells; i++ {
					var s float64
					if opts.Domains != nil && opts.Domains[i] == cell.DomainHigh {
						s = hiScale(lg[i])
					} else {
						s = loScale(lg[i])
					}
					if opts.Derate != nil {
						s *= opts.Derate[i]
					}
					scale[i] = s
				}
				kern.RunFrame(frame, opts.ClockPS, scale)
				outs.crit[k] = frame.CritPS
				mask := uint8(0)
				for st := range frame.Lanes {
					if !frame.Present[st] {
						continue
					}
					mask |= 1 << st
					outs.stageSlack[st][k] = frame.Lanes[st].WorstSlack
					outs.stageWorst[st][k] = int32(frame.Lanes[st].Endpoint)
				}
				outs.stagePresent[k] = mask
				if len(frame.Violators) > 0 {
					outs.violators[k] = append([]int32(nil), frame.Violators...)
				}
				outs.done[k] = true
			}
			for k := range idx {
				if ctx.Err() != nil {
					continue // drain without computing
				}
				sample(k)
			}
		}()
	}
dispatch:
	for k := 0; k < opts.Samples; k++ {
		select {
		case idx <- k:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	var firstPanic *flowerr.PanicError
	var skipped []int
	completed := 0
	for k := 0; k < opts.Samples; k++ {
		switch {
		case outs.done[k]:
			completed++
		case outs.panicked[k] != nil:
			if firstPanic == nil {
				firstPanic = outs.panicked[k]
			}
			skipped = append(skipped, k)
		}
	}
	span.SetAttr("completed", completed)
	span.SetAttr("skipped", len(skipped))
	if len(skipped) > opts.PanicTolerance {
		return nil, flowerr.Classify(flowerr.ErrWorkerPanic, fmt.Errorf(
			"mc: %d of %d samples panicked (tolerance %d): %w",
			len(skipped), opts.Samples, opts.PanicTolerance, firstPanic))
	}
	if completed < 2 && ctx.Err() == nil {
		return nil, flowerr.Classify(flowerr.ErrWorkerPanic, fmt.Errorf(
			"mc: only %d of %d samples usable after skips: %w",
			completed, opts.Samples, firstPanic))
	}

	res := &Result{
		Pos:                pos,
		ClockPS:            opts.ClockPS,
		Samples:            completed,
		Requested:          opts.Samples,
		Skipped:            skipped,
		PerStage:           make(map[netlist.Stage]*StageDist),
		CritPS:             make([]float64, 0, completed),
		EndpointViolations: make(map[int]int),
		StageCriticals:     make(map[netlist.Stage]map[int]int),
	}
	for k := 0; k < opts.Samples; k++ {
		if !outs.done[k] {
			continue
		}
		res.CritPS = append(res.CritPS, outs.crit[k])
		mask := outs.stagePresent[k]
		for s := 0; s < int(netlist.NumStages); s++ {
			if mask&(1<<s) == 0 {
				continue
			}
			st := netlist.Stage(s)
			d := res.PerStage[st]
			if d == nil {
				d = &StageDist{Stage: st}
				res.PerStage[st] = d
			}
			d.SlackPS = append(d.SlackPS, outs.stageSlack[s][k])
			m := res.StageCriticals[st]
			if m == nil {
				m = make(map[int]int)
				res.StageCriticals[st] = m
			}
			m[int(outs.stageWorst[s][k])]++
		}
		for _, inst := range outs.violators[k] {
			res.EndpointViolations[int(inst)]++
		}
	}
	for _, d := range res.PerStage {
		d.finalize(completed)
	}
	if err := ctx.Err(); err != nil {
		if completed == 0 {
			res = nil
		}
		return res, flowerr.Classify(flowerr.ErrCancelled, fmt.Errorf(
			"mc: position %s cancelled after %d/%d samples: %w",
			pos.Name, completed, opts.Samples, err))
	}
	return res, nil
}

// finalize fits the distribution (paper: chi-square goodness-of-fit at
// a 95% confidence level) and computes violation statistics.
func (d *StageDist) finalize(samples int) {
	viol := 0
	for _, s := range d.SlackPS {
		if s < 0 {
			viol++
		}
	}
	d.ViolFrac = float64(viol) / float64(samples)
	fit, err := stats.FitNormal(d.SlackPS)
	if err != nil {
		d.FitErr = err
		return
	}
	d.Fit = fit
	if fit.Sigma > 0 {
		d.ViolProb = fit.CDF(0)
	} else if fit.Mu < 0 {
		d.ViolProb = 1
	}
	if gof, err := stats.ChiSquareNormalTest(d.SlackPS, fit, 0.05); err == nil {
		d.GOF = gof
	}
	if ks, err := stats.KolmogorovSmirnovTest(d.SlackPS, fit, 0.05); err == nil {
		d.KS = ks
	}
}

// PipelineStages are the stages considered for scenario
// classification; the paper excludes fetch ("the lack of memory
// implementation does not allow useful insights into the fetch
// stage").
var PipelineStages = []netlist.Stage{
	netlist.StageDecode, netlist.StageExecute, netlist.StageWriteback,
}

// Scenario is a timing-violation scenario: the number of analyzed
// pipeline stages whose slack distribution violates the nominal
// slack-met condition (paper Section 4.4: 3 scenarios plus the
// all-met case).
type Scenario int

// Classify returns the scenario and the violating stages, ordered by
// severity (most violating first).
func (r *Result) Classify(alpha float64) (Scenario, []netlist.Stage) {
	if alpha <= 0 {
		alpha = 1e-3
	}
	var stages []netlist.Stage
	for _, st := range PipelineStages {
		if d := r.PerStage[st]; d != nil && d.Violates(alpha) {
			stages = append(stages, st)
		}
	}
	// Order by mean slack, most negative first (violation
	// probability saturates at 1 for severe scenarios and cannot
	// discriminate).
	for i := 1; i < len(stages); i++ {
		for j := i; j > 0 && r.PerStage[stages[j]].Fit.Mu < r.PerStage[stages[j-1]].Fit.Mu; j-- {
			stages[j], stages[j-1] = stages[j-1], stages[j]
		}
	}
	return Scenario(len(stages)), stages
}

// CriticalEndpoints returns the endpoints that were the stage's
// critical path in at least one sampled chip, most frequent first: the
// flip-flops that need Razor sensing (paper: "12 signal paths becoming
// critical ... with a probability roughly proportional to their
// positive slack under nominal conditions").
func (r *Result) CriticalEndpoints(nl *netlist.Netlist, stage netlist.Stage) []EndpointRisk {
	var out []EndpointRisk
	for inst, count := range r.StageCriticals[stage] {
		if inst == netlist.NoInst || nl.Insts[inst].Stage != stage {
			continue
		}
		out = append(out, EndpointRisk{
			Inst:     inst,
			ViolFrac: float64(count) / float64(r.Samples),
		})
	}
	sort.Slice(out, func(i, j int) bool { return less(out[j], out[i]) })
	return out
}

func less(a, b EndpointRisk) bool {
	if a.ViolFrac != b.ViolFrac {
		return a.ViolFrac < b.ViolFrac
	}
	return a.Inst > b.Inst
}

// EndpointRisk is one statistically-critical endpoint.
type EndpointRisk struct {
	Inst     int
	ViolFrac float64 // fraction of chips in which it violates
}

// Yield returns the parametric yield at the given clock period: the
// fraction of sampled chips whose critical path meets it. Evaluating
// it over a period sweep gives the classic SSTA yield-vs-frequency
// curve the statistical-design literature optimizes against (the
// paper's Section 2 survey).
func (r *Result) Yield(clockPS float64) float64 {
	if len(r.CritPS) == 0 {
		return 0
	}
	met := 0
	for _, c := range r.CritPS {
		if c <= clockPS {
			met++
		}
	}
	return float64(met) / float64(len(r.CritPS))
}

// YieldCurve evaluates Yield over n equally spaced clock periods
// between loPS and hiPS, returning parallel period and yield slices.
// Inverted bounds swap; a degenerate request (n <= 1 or loPS == hiPS)
// returns the single point at loPS rather than dividing the empty
// interval.
func (r *Result) YieldCurve(loPS, hiPS float64, n int) (periods, yields []float64) {
	if loPS > hiPS {
		loPS, hiPS = hiPS, loPS
	}
	if n <= 1 || loPS == hiPS {
		return []float64{loPS}, []float64{r.Yield(loPS)}
	}
	periods = make([]float64, n)
	yields = make([]float64, n)
	for i := 0; i < n; i++ {
		p := loPS + (hiPS-loPS)*float64(i)/float64(n-1)
		periods[i] = p
		yields[i] = r.Yield(p)
	}
	return periods, yields
}
