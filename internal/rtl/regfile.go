package rtl

import (
	"fmt"

	"vipipe/internal/netlist"
)

// WritePort describes one register-file write port.
type WritePort struct {
	Addr netlist.Word // register index
	Data netlist.Word // value to write
	En   int          // write enable net
}

// RegFileNets exposes the nets of a generated register file.
type RegFileNets struct {
	Read []netlist.Word // read data, one word per read port
	Q    []netlist.Word // storage outputs per register (reg 0 is constant zero)
}

// RegisterFile emits a fully synthesized multi-ported register file:
// nregs registers of the given width, one read data bus per read
// address, and any number of write ports. Register 0 is hardwired to
// zero (VEX convention). The paper synthesizes the register file as
// standard cells too ("the design was fully synthesized, even the
// register file"), which is why it dominates area (Table 1).
//
// Later write ports take priority on same-address writes.
func RegisterFile(b *netlist.Builder, nregs, width int, readAddrs []netlist.Word, writes []WritePort) RegFileNets {
	if nregs < 2 || nregs&(nregs-1) != 0 {
		panic(fmt.Sprintf("rtl: register file size %d (need power of two >= 2)", nregs))
	}
	addrBits := 0
	for 1<<addrBits < nregs {
		addrBits++
	}
	for _, ra := range readAddrs {
		if len(ra) != addrBits {
			panic(fmt.Sprintf("rtl: read address width %d, want %d", len(ra), addrBits))
		}
	}

	// Decode write addresses once per port and gate with the enable.
	wordLine := make([][]int, len(writes)) // [port][reg]
	for p, w := range writes {
		if len(w.Addr) != addrBits {
			panic(fmt.Sprintf("rtl: write address width %d, want %d", len(w.Addr), addrBits))
		}
		dec := Decoder(b, w.Addr)
		wl := make([]int, nregs)
		for r := range wl {
			wl[r] = b.And(dec[r], w.En)
		}
		wordLine[p] = wl
	}

	// Storage: register 0 is constant zero.
	zero := b.Const(false)
	regQ := make([]netlist.Word, nregs)
	regQ[0] = netlist.FanWord(zero, width)
	for r := 1; r < nregs; r++ {
		q := make(netlist.Word, width)
		// Build D for each bit: hold value unless some port writes.
		// The D expression needs the Q net, so the flop is created
		// on a placeholder input first and rewired once D exists.
		for bit := 0; bit < width; bit++ {
			qNet := b.DFF(zero)
			d := qNet
			for p := range writes {
				d = b.Mux(d, writes[p].Data[bit], wordLine[p][r])
			}
			b.NL.RewireInput(b.NL.Nets[qNet].Driver, 0, d)
			q[bit] = qNet
		}
		regQ[r] = q
	}

	// Read ports: mux tree over all registers.
	out := make([]netlist.Word, len(readAddrs))
	for i, ra := range readAddrs {
		out[i] = MuxTree(b, regQ, ra)
	}
	return RegFileNets{Read: out, Q: regQ}
}
