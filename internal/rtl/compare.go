package rtl

import "vipipe/internal/netlist"

// Equal emits a bus equality comparator: 1 when x == y.
func Equal(b *netlist.Builder, x, y netlist.Word) int {
	checkWidths("Equal", x, y)
	bits := make([]int, len(x))
	for i := range x {
		bits[i] = b.Xnor(x[i], y[i])
	}
	return b.AndTree(bits)
}

// IsZero emits a zero detector: 1 when every bit of x is 0.
func IsZero(b *netlist.Builder, x netlist.Word) int {
	if len(x) == 1 {
		return b.Not(x[0])
	}
	ors := make([]int, len(x))
	copy(ors, x)
	return b.Not(b.OrTree(ors))
}

// LessUnsigned emits an unsigned x < y comparator built on a
// subtractor: x < y iff x - y borrows (carry out is 0).
func LessUnsigned(b *netlist.Builder, x, y netlist.Word) int {
	_, cout := AddSub(b, x, y, b.Const(true))
	return b.Not(cout)
}

// LessSigned emits a signed (two's complement) x < y comparator:
// less = (diffSign & xNeg) | (sameSign & borrowPattern), implemented
// via the standard N xor V overflow formulation.
func LessSigned(b *netlist.Builder, x, y netlist.Word) int {
	checkWidths("LessSigned", x, y)
	diff, cout := AddSub(b, x, y, b.Const(true))
	n := diff[len(diff)-1] // sign of x-y
	// Overflow V = cin(top) XOR cout(top). cin of the top full adder
	// is not directly exposed, so use the operand-sign formulation:
	// V = (xs != ys') & (n != xs), with ys' the effective (inverted)
	// y sign for subtraction.
	xs := x[len(x)-1]
	ys := y[len(y)-1]
	_ = cout
	// V = (xs ^ ys) & (n ^ xs): overflow can only occur when the
	// operand signs differ for subtraction, and then the result sign
	// disagrees with x's sign.
	v := b.And(b.Xor(xs, ys), b.Xor(n, xs))
	return b.Xor(n, v)
}

// MSB returns the top bit of a bus (the sign for two's complement).
// The paper's compare unit "checks MSB bits of ALU results"; this is
// that check.
func MSB(x netlist.Word) int { return x[len(x)-1] }
