package rtl

import (
	"fmt"

	"vipipe/internal/netlist"
)

// MuxTree emits a word multiplexer selecting words[sel] with a
// logarithmic tree of 2:1 muxes. len(words) must be a power of two and
// sel must have exactly log2(len(words)) bits.
func MuxTree(b *netlist.Builder, words []netlist.Word, sel netlist.Word) netlist.Word {
	n := len(words)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("rtl: mux tree over %d words (need power of two)", n))
	}
	stages := 0
	for 1<<stages < n {
		stages++
	}
	if len(sel) != stages {
		panic(fmt.Sprintf("rtl: mux tree needs %d select bits, got %d", stages, len(sel)))
	}
	level := make([]netlist.Word, n)
	copy(level, words)
	for k := 0; k < stages; k++ {
		next := make([]netlist.Word, len(level)/2)
		for i := range next {
			next[i] = b.MuxWord(level[2*i], level[2*i+1], sel[k])
		}
		level = next
	}
	return level[0]
}

// Decoder emits a full one-hot decoder of sel: output i is high when
// sel == i. The result has 2^len(sel) lines.
func Decoder(b *netlist.Builder, sel netlist.Word) []int {
	n := 1 << len(sel)
	// Precompute both polarities of every select bit.
	pos := make([]int, len(sel))
	neg := make([]int, len(sel))
	for i, s := range sel {
		pos[i] = s
		neg[i] = b.Not(s)
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		terms := make([]int, len(sel))
		for i := range sel {
			if v>>uint(i)&1 == 1 {
				terms[i] = pos[i]
			} else {
				terms[i] = neg[i]
			}
		}
		out[v] = b.AndTree(terms)
	}
	return out
}

// OneHotMux emits an AND-OR multiplexer: out = OR_i (sel_i AND word_i).
// Exactly one select line is expected to be high; with none high the
// output is zero. Cheaper than a mux tree when the one-hot signals
// already exist (e.g. decoded register-file word lines).
func OneHotMux(b *netlist.Builder, sels []int, words []netlist.Word) netlist.Word {
	if len(sels) != len(words) || len(sels) == 0 {
		panic(fmt.Sprintf("rtl: one-hot mux %d sels vs %d words", len(sels), len(words)))
	}
	width := len(words[0])
	out := make(netlist.Word, width)
	for bit := 0; bit < width; bit++ {
		terms := make([]int, len(sels))
		for i := range sels {
			if len(words[i]) != width {
				panic("rtl: one-hot mux ragged words")
			}
			terms[i] = b.And(sels[i], words[i][bit])
		}
		out[bit] = b.OrTree(terms)
	}
	return out
}

// ZeroExtend widens x to width bits with constant zeros.
func ZeroExtend(b *netlist.Builder, x netlist.Word, width int) netlist.Word {
	if len(x) >= width {
		return x[:width]
	}
	out := make(netlist.Word, width)
	copy(out, x)
	zero := b.Const(false)
	for i := len(x); i < width; i++ {
		out[i] = zero
	}
	return out
}

// SignExtend widens x to width bits replicating the sign bit.
func SignExtend(b *netlist.Builder, x netlist.Word, width int) netlist.Word {
	if len(x) >= width {
		return x[:width]
	}
	out := make(netlist.Word, width)
	copy(out, x)
	s := MSB(x)
	for i := len(x); i < width; i++ {
		out[i] = s
	}
	_ = b
	return out
}
