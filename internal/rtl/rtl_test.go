package rtl

import (
	"testing"
	"testing/quick"

	"vipipe/internal/cell"
	"vipipe/internal/gsim"
	"vipipe/internal/netlist"
)

func builder() *netlist.Builder {
	return netlist.NewBuilder("t", cell.Default65nm())
}

func sim(t *testing.T, nl *netlist.Netlist) *gsim.Simulator {
	t.Helper()
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := gsim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRippleAdderExhaustive4(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 4)
	cin := b.Input("cin")
	sum, cout := RippleAdder(b, x, y, cin)
	s := sim(t, b.NL)
	for a := uint64(0); a < 16; a++ {
		for c := uint64(0); c < 16; c++ {
			for ci := uint64(0); ci < 2; ci++ {
				s.SetPIWord(x, a)
				s.SetPIWord(y, c)
				s.SetPI(cin, ci == 1)
				s.Eval()
				want := a + c + ci
				got := s.Word(sum)
				if s.Val(cout) {
					got |= 16
				}
				if got != want {
					t.Fatalf("%d+%d+%d = %d, want %d", a, c, ci, got, want)
				}
			}
		}
	}
}

func TestCarrySelectAdderMatchesRipple(t *testing.T) {
	for _, bs := range []int{1, 3, 4, 8, 20} {
		b := builder()
		x := b.InputWord("x", 16)
		y := b.InputWord("y", 16)
		sum, cout := CarrySelectAdder(b, x, y, b.Const(false), bs)
		s := sim(t, b.NL)
		vecs := [][2]uint64{
			{0, 0}, {0xFFFF, 1}, {0xAAAA, 0x5555}, {0x1234, 0xFEDC}, {0xFFFF, 0xFFFF},
		}
		for _, v := range vecs {
			s.SetPIWord(x, v[0])
			s.SetPIWord(y, v[1])
			s.Eval()
			want := v[0] + v[1]
			got := s.Word(sum)
			if s.Val(cout) {
				got |= 1 << 16
			}
			if got != want {
				t.Errorf("bs=%d: %#x+%#x = %#x, want %#x", bs, v[0], v[1], got, want)
			}
		}
	}
}

func TestCarrySelectShallowerThanRipple(t *testing.T) {
	br := builder()
	x := br.InputWord("x", 32)
	y := br.InputWord("y", 32)
	RippleAdder(br, x, y, br.Const(false))
	rippleDepth := br.NL.LogicDepth()

	bc := builder()
	x2 := bc.InputWord("x", 32)
	y2 := bc.InputWord("y", 32)
	CarrySelectAdder(bc, x2, y2, bc.Const(false), 4)
	cselDepth := bc.NL.LogicDepth()
	if cselDepth >= rippleDepth {
		t.Errorf("carry-select depth %d not shallower than ripple %d", cselDepth, rippleDepth)
	}
}

func TestAddSub(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 8)
	y := b.InputWord("y", 8)
	sub := b.Input("sub")
	res, _ := AddSub(b, x, y, sub)
	s := sim(t, b.NL)
	cases := []struct {
		a, c uint64
		sub  bool
		want uint64
	}{
		{10, 3, false, 13},
		{10, 3, true, 7},
		{3, 10, true, 0xF9},   // -7 two's complement
		{200, 100, false, 44}, // wraps mod 256
		{0, 0, true, 0},
	}
	for _, tc := range cases {
		s.SetPIWord(x, tc.a)
		s.SetPIWord(y, tc.c)
		s.SetPI(sub, tc.sub)
		s.Eval()
		if got := s.Word(res); got != tc.want {
			t.Errorf("a=%d c=%d sub=%v: got %d, want %d", tc.a, tc.c, tc.sub, got, tc.want)
		}
	}
}

func TestIncrementer(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 8)
	inc, cout := Incrementer(b, x)
	s := sim(t, b.NL)
	for _, v := range []uint64{0, 1, 127, 254, 255} {
		s.SetPIWord(x, v)
		s.Eval()
		want := (v + 1) & 0xFF
		if got := s.Word(inc); got != want {
			t.Errorf("inc(%d) = %d, want %d", v, got, want)
		}
		if s.Val(cout) != (v == 255) {
			t.Errorf("inc(%d) carry wrong", v)
		}
	}
}

func TestIncrementerBy(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 8)
	sum, _ := IncrementerBy(b, x, 16)
	s := sim(t, b.NL)
	for _, v := range []uint64{0, 100, 250} {
		s.SetPIWord(x, v)
		s.Eval()
		if got := s.Word(sum); got != (v+16)&0xFF {
			t.Errorf("%d+16 = %d", v, got)
		}
	}
}

func TestNegate(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 8)
	neg := Negate(b, x)
	s := sim(t, b.NL)
	for _, v := range []uint64{0, 1, 5, 128, 255} {
		s.SetPIWord(x, v)
		s.Eval()
		if got := s.Word(neg); got != (-v)&0xFF {
			t.Errorf("-%d = %d, want %d", v, got, (-v)&0xFF)
		}
	}
}

func TestComparators(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 8)
	y := b.InputWord("y", 8)
	eq := Equal(b, x, y)
	zx := IsZero(b, x)
	ltu := LessUnsigned(b, x, y)
	lts := LessSigned(b, x, y)
	s := sim(t, b.NL)
	cases := []struct{ a, c uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {5, 5}, {127, 128}, {128, 127}, {255, 1}, {200, 200}, {0x80, 0x80},
	}
	for _, tc := range cases {
		s.SetPIWord(x, tc.a)
		s.SetPIWord(y, tc.c)
		s.Eval()
		if s.Val(eq) != (tc.a == tc.c) {
			t.Errorf("eq(%d,%d) wrong", tc.a, tc.c)
		}
		if s.Val(zx) != (tc.a == 0) {
			t.Errorf("zero(%d) wrong", tc.a)
		}
		if s.Val(ltu) != (tc.a < tc.c) {
			t.Errorf("ltu(%d,%d) = %v", tc.a, tc.c, s.Val(ltu))
		}
		sa, sc := int8(tc.a), int8(tc.c)
		if s.Val(lts) != (sa < sc) {
			t.Errorf("lts(%d,%d) = %v", sa, sc, s.Val(lts))
		}
	}
}

func TestLessSignedProperty(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 8)
	y := b.InputWord("y", 8)
	lts := LessSigned(b, x, y)
	s := sim(t, b.NL)
	f := func(a, c uint8) bool {
		s.SetPIWord(x, uint64(a))
		s.SetPIWord(y, uint64(c))
		s.Eval()
		return s.Val(lts) == (int8(a) < int8(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBarrelShifter(t *testing.T) {
	for _, mode := range []ShiftMode{ShiftLeft, ShiftRightLogical, ShiftRightArith} {
		b := builder()
		x := b.InputWord("x", 16)
		amt := b.InputWord("amt", 4)
		out := BarrelShifter(b, x, amt, mode)
		s := sim(t, b.NL)
		for _, v := range []uint64{0x8001, 0xFFFF, 0x1234, 0x8000} {
			for sh := uint64(0); sh < 16; sh++ {
				s.SetPIWord(x, v)
				s.SetPIWord(amt, sh)
				s.Eval()
				var want uint64
				switch mode {
				case ShiftLeft:
					want = (v << sh) & 0xFFFF
				case ShiftRightLogical:
					want = v >> sh
				case ShiftRightArith:
					want = uint64(uint16(int16(v) >> sh))
				}
				if got := s.Word(out); got != want {
					t.Errorf("%v %#x >> %d = %#x, want %#x", mode, v, sh, got, want)
				}
			}
		}
	}
}

func TestShiftModeString(t *testing.T) {
	if ShiftLeft.String() != "SLL" || ShiftRightArith.String() != "SRA" || ShiftMode(9).String() != "SHIFT(9)" {
		t.Error("shift mode names wrong")
	}
}

func TestArrayMultiplier8x8(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 8)
	y := b.InputWord("y", 8)
	prod := ArrayMultiplier(b, x, y)
	if len(prod) != 16 {
		t.Fatalf("product width %d", len(prod))
	}
	s := sim(t, b.NL)
	vecs := []uint64{0, 1, 2, 3, 15, 16, 100, 170, 255}
	for _, a := range vecs {
		for _, c := range vecs {
			s.SetPIWord(x, a)
			s.SetPIWord(y, c)
			s.Eval()
			if got := s.Word(prod); got != a*c {
				t.Fatalf("%d*%d = %d, want %d", a, c, got, a*c)
			}
		}
	}
}

func TestArrayMultiplierAsymmetric(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 7)
	prod := ArrayMultiplier(b, x, y)
	s := sim(t, b.NL)
	f := func(a, c uint8) bool {
		av, cv := uint64(a&0xF), uint64(c&0x7F)
		s.SetPIWord(x, av)
		s.SetPIWord(y, cv)
		s.Eval()
		return s.Word(prod) == av*cv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMuxTree(t *testing.T) {
	b := builder()
	words := make([]netlist.Word, 8)
	for i := range words {
		words[i] = b.ConstWord(uint64(i*3), 8)
	}
	sel := b.InputWord("sel", 3)
	out := MuxTree(b, words, sel)
	s := sim(t, b.NL)
	for i := uint64(0); i < 8; i++ {
		s.SetPIWord(sel, i)
		s.Eval()
		if got := s.Word(out); got != i*3 {
			t.Errorf("mux[%d] = %d, want %d", i, got, i*3)
		}
	}
}

func TestDecoder(t *testing.T) {
	b := builder()
	sel := b.InputWord("sel", 3)
	lines := Decoder(b, sel)
	s := sim(t, b.NL)
	for v := uint64(0); v < 8; v++ {
		s.SetPIWord(sel, v)
		s.Eval()
		for i, l := range lines {
			if s.Val(l) != (uint64(i) == v) {
				t.Errorf("sel=%d line %d = %v", v, i, s.Val(l))
			}
		}
	}
}

func TestOneHotMux(t *testing.T) {
	b := builder()
	sels := []int{b.Input("s0"), b.Input("s1"), b.Input("s2")}
	words := []netlist.Word{
		b.ConstWord(5, 4), b.ConstWord(9, 4), b.ConstWord(12, 4),
	}
	out := OneHotMux(b, sels, words)
	s := sim(t, b.NL)
	wants := []uint64{5, 9, 12}
	for i := range sels {
		for j, sl := range sels {
			s.SetPI(sl, i == j)
		}
		s.Eval()
		if got := s.Word(out); got != wants[i] {
			t.Errorf("one-hot %d = %d, want %d", i, got, wants[i])
		}
	}
	// No select high -> zero.
	for _, sl := range sels {
		s.SetPI(sl, false)
	}
	s.Eval()
	if s.Word(out) != 0 {
		t.Error("unselected one-hot mux should output 0")
	}
}

func TestExtend(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 4)
	ze := ZeroExtend(b, x, 8)
	se := SignExtend(b, x, 8)
	trunc := ZeroExtend(b, x, 2)
	s := sim(t, b.NL)
	s.SetPIWord(x, 0xA) // 1010: negative as 4-bit
	s.Eval()
	if got := s.Word(ze); got != 0x0A {
		t.Errorf("zext = %#x", got)
	}
	if got := s.Word(se); got != 0xFA {
		t.Errorf("sext = %#x", got)
	}
	if got := s.Word(trunc); got != 0x2 {
		t.Errorf("trunc = %#x", got)
	}
}

func TestRegisterFile(t *testing.T) {
	b := builder()
	raddr := []netlist.Word{b.InputWord("ra0", 3), b.InputWord("ra1", 3)}
	w0 := WritePort{Addr: b.InputWord("wa0", 3), Data: b.InputWord("wd0", 8), En: b.Input("we0")}
	w1 := WritePort{Addr: b.InputWord("wa1", 3), Data: b.InputWord("wd1", 8), En: b.Input("we1")}
	rf := RegisterFile(b, 8, 8, raddr, []WritePort{w0, w1})
	rdata := rf.Read
	if len(rf.Q) != 8 || len(rf.Q[3]) != 8 {
		t.Fatalf("Q nets shape wrong: %d regs", len(rf.Q))
	}
	s := sim(t, b.NL)

	write := func(p WritePort, addr, data uint64, en bool) {
		s.SetPIWord(p.Addr, addr)
		s.SetPIWord(p.Data, data)
		s.SetPI(p.En, en)
	}
	// Cycle 1: write r3=0x5A on port0, r5=0x77 on port1.
	write(w0, 3, 0x5A, true)
	write(w1, 5, 0x77, true)
	s.Step()
	// Cycle 2: read back both; no writes.
	write(w0, 0, 0, false)
	write(w1, 0, 0, false)
	s.SetPIWord(raddr[0], 3)
	s.SetPIWord(raddr[1], 5)
	s.Step()
	if got := s.Word(rdata[0]); got != 0x5A {
		t.Errorf("r3 = %#x, want 0x5A", got)
	}
	if got := s.Word(rdata[1]); got != 0x77 {
		t.Errorf("r5 = %#x, want 0x77", got)
	}

	// r0 always reads zero, even after a write to it.
	write(w0, 0, 0xFF, true)
	s.Step()
	write(w0, 0, 0, false)
	s.SetPIWord(raddr[0], 0)
	s.Step()
	if got := s.Word(rdata[0]); got != 0 {
		t.Errorf("r0 = %#x, want 0", got)
	}

	// Same-address conflict: port1 (later) wins.
	write(w0, 6, 0x11, true)
	write(w1, 6, 0x22, true)
	s.Step()
	write(w0, 0, 0, false)
	write(w1, 0, 0, false)
	s.SetPIWord(raddr[0], 6)
	s.Step()
	if got := s.Word(rdata[0]); got != 0x22 {
		t.Errorf("conflict write: r6 = %#x, want 0x22 (port1 priority)", got)
	}

	// Hold: values survive idle cycles.
	for i := 0; i < 3; i++ {
		s.Step()
	}
	s.SetPIWord(raddr[1], 3)
	s.Step()
	if got := s.Word(rdata[1]); got != 0x5A {
		t.Errorf("r3 after hold = %#x, want 0x5A", got)
	}
}

func TestRegisterFilePanics(t *testing.T) {
	b := builder()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two size")
		}
	}()
	RegisterFile(b, 6, 8, nil, nil)
}

func TestWidthMismatchPanics(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RippleAdder(b, x, y, b.Const(false))
}

func TestShifterDyn(t *testing.T) {
	b := builder()
	x := b.InputWord("x", 16)
	amt := b.InputWord("amt", 4)
	right := b.Input("right")
	arith := b.Input("arith")
	fill := b.And(arith, MSB(x))
	out := ShifterDyn(b, x, amt, right, fill)
	s := sim(t, b.NL)
	for _, v := range []uint64{0x8001, 0x7FFF, 0x1234} {
		for sh := uint64(0); sh < 16; sh++ {
			for _, mode := range []struct {
				right, arith bool
				want         uint64
			}{
				{false, false, (v << sh) & 0xFFFF},
				{true, false, v >> sh},
				{true, true, uint64(uint16(int16(v) >> sh))},
			} {
				s.SetPIWord(x, v)
				s.SetPIWord(amt, sh)
				s.SetPI(right, mode.right)
				s.SetPI(arith, mode.arith)
				s.Eval()
				if got := s.Word(out); got != mode.want {
					t.Fatalf("dyn shift v=%#x sh=%d right=%v arith=%v: got %#x want %#x",
						v, sh, mode.right, mode.arith, got, mode.want)
				}
			}
		}
	}
}
