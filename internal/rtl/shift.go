package rtl

import (
	"fmt"

	"vipipe/internal/netlist"
)

// ShiftMode selects the barrel-shifter operation.
type ShiftMode uint8

const (
	// ShiftLeft is a logical left shift (zero fill).
	ShiftLeft ShiftMode = iota
	// ShiftRightLogical is a logical right shift (zero fill).
	ShiftRightLogical
	// ShiftRightArith is an arithmetic right shift (sign fill).
	ShiftRightArith
)

func (m ShiftMode) String() string {
	switch m {
	case ShiftLeft:
		return "SLL"
	case ShiftRightLogical:
		return "SRL"
	case ShiftRightArith:
		return "SRA"
	default:
		return fmt.Sprintf("SHIFT(%d)", uint8(m))
	}
}

// ShifterDyn emits a direction-programmable barrel shifter: when right
// is 0 the output is x << amt (zero fill); when right is 1 the output
// is x >> amt with vacated bits filled from the fill net (drive it
// with 0 for a logical shift, with the sign bit for an arithmetic
// one). It is built as a single left barrel shifter wrapped in
// conditional bit-reversal muxes, the standard trick for sharing one
// shifter across directions.
func ShifterDyn(b *netlist.Builder, x netlist.Word, amt netlist.Word, right, fill int) netlist.Word {
	rev := func(w netlist.Word) netlist.Word {
		out := make(netlist.Word, len(w))
		for i := range w {
			out[i] = w[len(w)-1-i]
		}
		return out
	}
	in := b.MuxWord(x, rev(x), right)
	sh := leftBarrel(b, in, amt, fill)
	return b.MuxWord(sh, rev(sh), right)
}

// leftBarrel emits a left barrel shifter whose vacated low bits are
// filled from the fill net.
func leftBarrel(b *netlist.Builder, x netlist.Word, amt netlist.Word, fill int) netlist.Word {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("rtl: barrel shifter width %d not a power of two", n))
	}
	stages := 0
	for 1<<stages < n {
		stages++
	}
	if len(amt) != stages {
		panic(fmt.Sprintf("rtl: barrel shifter needs %d amount bits, got %d", stages, len(amt)))
	}
	cur := append(netlist.Word(nil), x...)
	for k := 0; k < stages; k++ {
		sh := 1 << k
		shifted := make(netlist.Word, n)
		for i := 0; i < n; i++ {
			if i >= sh {
				shifted[i] = cur[i-sh]
			} else {
				shifted[i] = fill
			}
		}
		cur = b.MuxWord(cur, shifted, amt[k])
	}
	return cur
}

// BarrelShifter emits a logarithmic barrel shifter: stage k shifts by
// 2^k when amt[k] is set. amt must have exactly log2(len(x)) bits and
// len(x) must be a power of two.
func BarrelShifter(b *netlist.Builder, x netlist.Word, amt netlist.Word, mode ShiftMode) netlist.Word {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("rtl: barrel shifter width %d not a power of two", n))
	}
	stages := 0
	for 1<<stages < n {
		stages++
	}
	if len(amt) != stages {
		panic(fmt.Sprintf("rtl: barrel shifter needs %d amount bits, got %d", stages, len(amt)))
	}
	fill := b.Const(false)
	if mode == ShiftRightArith {
		fill = MSB(x)
	}
	cur := append(netlist.Word(nil), x...)
	for k := 0; k < stages; k++ {
		sh := 1 << k
		shifted := make(netlist.Word, n)
		for i := 0; i < n; i++ {
			var src int
			switch mode {
			case ShiftLeft:
				if i >= sh {
					src = cur[i-sh]
				} else {
					src = fill
				}
			default: // right shifts
				if i+sh < n {
					src = cur[i+sh]
				} else {
					src = fill
				}
			}
			shifted[i] = src
		}
		cur = b.MuxWord(cur, shifted, amt[k])
	}
	return cur
}
