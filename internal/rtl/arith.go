// Package rtl provides structural generators that emit mapped
// gate-level logic into a netlist.Builder: adders, shifters,
// multipliers, comparators, multiplexer trees and register files.
// These substitute for the logic-synthesis step of the paper's flow:
// the VEX core is assembled directly from these blocks as a mapped
// netlist, the form all downstream analyses consume.
package rtl

import (
	"fmt"

	"vipipe/internal/netlist"
)

// FullAdder emits a full adder and returns (sum, carry).
func FullAdder(b *netlist.Builder, x, y, cin int) (sum, cout int) {
	axb := b.Xor(x, y)
	sum = b.Xor(axb, cin)
	// cout = x*y + cin*(x^y)
	cout = b.Or(b.And(x, y), b.And(cin, axb))
	return sum, cout
}

// HalfAdder emits a half adder and returns (sum, carry).
func HalfAdder(b *netlist.Builder, x, y int) (sum, cout int) {
	return b.Xor(x, y), b.And(x, y)
}

// RippleAdder emits a ripple-carry adder over two equal-width buses
// and returns the sum and the carry out. The linear carry chain is
// what puts the ALU on the paper's critical path.
func RippleAdder(b *netlist.Builder, x, y netlist.Word, cin int) (sum netlist.Word, cout int) {
	checkWidths("RippleAdder", x, y)
	sum = make(netlist.Word, len(x))
	c := cin
	for i := range x {
		sum[i], c = FullAdder(b, x[i], y[i], c)
	}
	return sum, c
}

// CarrySelectAdder emits a carry-select adder with the given block
// size: each block is computed for both carry-in values and the real
// carry selects the result, cutting the carry chain to one mux per
// block. Used in the multiplier's final add so that the multiplier
// does not dominate the execute-stage critical path.
func CarrySelectAdder(b *netlist.Builder, x, y netlist.Word, cin int, blockSize int) (sum netlist.Word, cout int) {
	checkWidths("CarrySelectAdder", x, y)
	if blockSize < 1 {
		panic("rtl: carry-select block size must be >= 1")
	}
	sum = make(netlist.Word, 0, len(x))
	zero := b.Const(false)
	one := b.Const(true)
	c := cin
	for lo := 0; lo < len(x); lo += blockSize {
		hi := lo + blockSize
		if hi > len(x) {
			hi = len(x)
		}
		if lo == 0 {
			// First block: plain ripple with the true carry.
			s, cN := RippleAdder(b, x[lo:hi], y[lo:hi], c)
			sum = append(sum, s...)
			c = cN
			continue
		}
		s0, c0 := RippleAdder(b, x[lo:hi], y[lo:hi], zero)
		s1, c1 := RippleAdder(b, x[lo:hi], y[lo:hi], one)
		sum = append(sum, b.MuxWord(s0, s1, c)...)
		c = b.Mux(c0, c1, c)
	}
	return sum, c
}

// AddSub emits an adder/subtractor: when sub is 1 the result is x - y
// (two's complement), otherwise x + y. Returns sum and carry out.
func AddSub(b *netlist.Builder, x, y netlist.Word, sub int) (sum netlist.Word, cout int) {
	checkWidths("AddSub", x, y)
	yx := make(netlist.Word, len(y))
	for i := range y {
		yx[i] = b.Xor(y[i], sub)
	}
	return RippleAdder(b, x, yx, sub)
}

// Incrementer emits x + 1 using a half-adder chain and returns the
// incremented bus and the carry out. Used for the fetch-stage PC.
func Incrementer(b *netlist.Builder, x netlist.Word) (sum netlist.Word, cout int) {
	sum = make(netlist.Word, len(x))
	c := b.Const(true)
	for i := range x {
		sum[i], c = HalfAdder(b, x[i], c)
	}
	return sum, c
}

// IncrementerBy emits x + k for a constant k by chaining full adders
// against tie cells only where k has set bits.
func IncrementerBy(b *netlist.Builder, x netlist.Word, k uint64) (sum netlist.Word, cout int) {
	ky := b.ConstWord(k, len(x))
	return RippleAdder(b, x, ky, b.Const(false))
}

// Negate emits the two's-complement negation of x.
func Negate(b *netlist.Builder, x netlist.Word) netlist.Word {
	inv := b.NotWord(x)
	s, _ := Incrementer(b, inv)
	return s
}

func checkWidths(op string, x, y netlist.Word) {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("rtl: %s width mismatch %d vs %d", op, len(x), len(y)))
	}
}
