package rtl

import (
	"fmt"

	"vipipe/internal/netlist"
)

// ArrayMultiplier emits an unsigned carry-save array multiplier
// computing the full (N+M)-bit product of x (N bits) times y (M bits).
// The accumulator is kept in carry-save form (sum and carry vectors); a
// 3:2 compression row folds in each partial product, and the final
// carry-propagate add uses a carry-select adder so that the multiplier
// stays off the execute-stage critical path (the paper's critical path
// runs through a forwarding unit and an ALU, not the multiplier).
func ArrayMultiplier(b *netlist.Builder, x, y netlist.Word) netlist.Word {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		panic(fmt.Sprintf("rtl: multiplier widths %dx%d", n, m))
	}
	width := n + m
	zero := b.Const(false)

	pad := func(w netlist.Word) netlist.Word {
		out := make(netlist.Word, width)
		for i := range out {
			out[i] = zero
		}
		copy(out, w)
		return out
	}
	// Row 0: accumulator = x * y0.
	row := make(netlist.Word, n)
	for i := 0; i < n; i++ {
		row[i] = b.And(x[i], y[0])
	}
	sums := pad(row)
	carries := pad(nil)

	for j := 1; j < m; j++ {
		// Partial product (x * yj) << j.
		pp := pad(nil)
		for i := 0; i < n; i++ {
			pp[i+j] = b.And(x[i], y[j])
		}
		newS := pad(nil)
		newC := pad(nil)
		for p := 0; p < width; p++ {
			s, c := compress3(b, zero, sums[p], carries[p], pp[p])
			newS[p] = s
			if p+1 < width && c != zero {
				newC[p+1] = c
			}
		}
		sums, carries = newS, newC
	}
	prod, _ := CarrySelectAdder(b, sums, carries, zero, 4)
	return prod
}

// compress3 emits a 3:2 compressor (full adder) over three bits,
// degenerating to cheaper structures when inputs are the shared
// constant-zero net.
func compress3(b *netlist.Builder, zero, a, c, d int) (sum, carry int) {
	in := make([]int, 0, 3)
	for _, v := range []int{a, c, d} {
		if v != zero {
			in = append(in, v)
		}
	}
	switch len(in) {
	case 0:
		return zero, zero
	case 1:
		return in[0], zero
	case 2:
		return HalfAdder(b, in[0], in[1])
	default:
		return FullAdder(b, in[0], in[1], in[2])
	}
}
