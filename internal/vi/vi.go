// Package vi implements the paper's contribution: placement-aware
// generation of nested voltage islands for process-variation
// compensation (Section 4.5), and level-shifter insertion with
// incremental placement (Section 4.6).
//
// Islands are produced by greedy slicing of the placed floorplan —
// vertically or horizontally, the two strategies the paper compares —
// starting from the densest side. The first slice is grown until the
// speed-up of powering it at high Vdd compensates the least severe
// violation scenario (verified by Monte Carlo SSTA at that scenario's
// chip position); the second and third islands extend the slice
// incrementally for the more severe scenarios, so that moving from one
// scenario to the next only requires raising the supply of one
// additional island.
package vi

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/obs"
	"vipipe/internal/place"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
)

// Strategy selects the slicing direction.
type Strategy uint8

const (
	// Vertical slices the floorplan with vertical cut lines
	// (islands are column bands), Fig. 4(a).
	Vertical Strategy = iota
	// Horizontal slices with horizontal cut lines (row bands),
	// Fig. 4(b).
	Horizontal
	// Corner grows nested L-shaped islands from the densest corner
	// of the floorplan (square boxes in normalized coordinates): an
	// implementation of the paper's future work, "the exploration of
	// further cell grouping strategies".
	Corner
)

func (s Strategy) String() string {
	switch s {
	case Vertical:
		return "vertical"
	case Horizontal:
		return "horizontal"
	default:
		return "corner"
	}
}

// ParseStrategy maps a strategy name (as produced by String) back to
// the Strategy, for CLI flags and service requests.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "vertical":
		return Vertical, nil
	case "horizontal":
		return Horizontal, nil
	case "corner":
		return Corner, nil
	}
	return 0, flowerr.BadInputf("vi: unknown strategy %q (vertical, horizontal, corner)", name)
}

// Side identifies where slice growth starts: a floorplan edge for the
// Vertical/Horizontal strategies, a corner for Corner.
type Side uint8

// Sides and corners of the floorplan.
const (
	Left Side = iota
	Right
	Bottom
	Top
	BottomLeft
	BottomRight
	TopLeft
	TopRight
)

func (s Side) String() string {
	switch s {
	case Left:
		return "left"
	case Right:
		return "right"
	case Bottom:
		return "bottom"
	case Top:
		return "top"
	case BottomLeft:
		return "bottom-left"
	case BottomRight:
		return "bottom-right"
	case TopLeft:
		return "top-left"
	default:
		return "top-right"
	}
}

// RegionNone marks cells outside every island (never raised).
const RegionNone = math.MaxInt32

// Island is one nested voltage island.
type Island struct {
	Index int   // 1-based; island k is raised for scenarios >= k severity
	Cells []int // instances exclusive to this island
	// FromUM/ToUM bound the island band along the slicing axis.
	FromUM, ToUM float64
}

// Partition is a complete voltage-island assignment of a design.
type Partition struct {
	Strategy  Strategy
	StartSide Side
	Islands   []Island
	// Region maps every instance (including level shifters added
	// later) to its island index, or RegionNone.
	Region []int32
	// Shifters lists the level-shifter instances inserted by
	// InsertShifters.
	Shifters []int

	nl           *netlist.Netlist
	shiftersDone bool
}

// NumIslands returns the number of islands generated.
func (p *Partition) NumIslands() int { return len(p.Islands) }

// Domains returns the per-instance supply assignment when islands
// 1..k are powered at high Vdd (k = the detected violation scenario;
// k = 0 leaves everything at low Vdd).
func (p *Partition) Domains(k int) []cell.Domain {
	out := make([]cell.Domain, len(p.Region))
	for i, r := range p.Region {
		if int(r) <= k {
			out[i] = cell.DomainHigh
		}
	}
	return out
}

// Options configures island generation.
type Options struct {
	Strategy   Strategy
	ClockPS    float64
	Derate     []float64 // slack-recovery derates (may be nil)
	Samples    int       // Monte Carlo samples per compensation check (default 60)
	Seed       int64
	YieldSigma float64 // required slack margin in sigmas (default 2)
	// Granularity is the slice-boundary resolution as a fraction of
	// the die extent (default 1/64).
	Granularity float64
	// MaxFrac bounds the total slice extent (default 1.0: the most
	// severe scenario may require boosting the whole core).
	MaxFrac float64
	// ForceSide overrides density-driven start-side selection (for
	// the ablation study); nil = pick by density.
	ForceSide *Side
	// Check selects how candidate boundaries are verified: CheckExact
	// (default) runs a full Monte Carlo batch per candidate, CheckModel
	// composes per-sample threshold timing models and exact-verifies
	// only the converged boundary.
	Check CheckMode
}

func (o *Options) setDefaults() {
	if o.Samples <= 0 {
		o.Samples = 60
	}
	if o.YieldSigma <= 0 {
		o.YieldSigma = 2
	}
	if o.Granularity <= 0 {
		o.Granularity = 1.0 / 64
	}
	if o.MaxFrac <= 0 {
		o.MaxFrac = 1.0
	}
}

// Generate produces the nested islands for the given violation
// scenarios. scenarioPos lists the chip positions associated with the
// scenarios in increasing severity (the paper uses C, B, A: one
// position per number of violating stages). The returned partition has
// one island per scenario.
//
// Every compensation check is a Monte Carlo run under ctx, so
// cancelling it aborts the binary search within one sample's latency
// with an error matching flowerr.ErrCancelled.
func Generate(ctx context.Context, a *sta.Analyzer, model *variation.Model, scenarioPos []variation.Pos, opts Options) (*Partition, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.setDefaults()
	if len(scenarioPos) == 0 {
		return nil, flowerr.NoScenariof("vi: no violation scenarios to compensate")
	}
	if opts.ClockPS <= 0 {
		return nil, flowerr.BadInputf("vi: clock period %g must be positive", opts.ClockPS)
	}
	nl, pl := a.NL, a.PL
	p := &Partition{
		Strategy: opts.Strategy,
		Region:   make([]int32, nl.NumCells()),
		nl:       nl,
	}
	for i := range p.Region {
		p.Region[i] = RegionNone
	}
	if opts.ForceSide != nil {
		p.StartSide = *opts.ForceSide
	} else {
		p.StartSide = pickStartSide(pl, opts.Strategy)
	}

	// axisPos returns each cell's growth-axis coordinate, measured
	// from the start side (or corner). For the Corner strategy the
	// axis is the Chebyshev distance from the corner in normalized
	// die coordinates, scaled back to microns of the larger die
	// edge, so nested thresholds carve square boxes.
	extent := pl.DieW
	switch opts.Strategy {
	case Horizontal:
		extent = pl.DieH
	case Corner:
		extent = math.Max(pl.DieW, pl.DieH)
	}
	axisPos := func(i int) float64 {
		x, y := pl.Center(i)
		switch opts.Strategy {
		case Horizontal:
			v := y
			if p.StartSide == Top {
				v = extent - v
			}
			return v
		case Corner:
			nx := x / pl.DieW
			ny := y / pl.DieH
			if p.StartSide == BottomRight || p.StartSide == TopRight {
				nx = 1 - nx
			}
			if p.StartSide == TopLeft || p.StartSide == TopRight {
				ny = 1 - ny
			}
			return math.Max(nx, ny) * extent
		default:
			v := x
			if p.StartSide == Right {
				v = extent - v
			}
			return v
		}
	}

	// meets reports whether powering all cells within frac of the
	// start side at high Vdd compensates the worst-case violation at
	// pos: the fitted slack distribution must clear zero by
	// YieldSigma sigmas.
	meets := func(ctx context.Context, frac float64, pos variation.Pos) (bool, error) {
		domains := make([]cell.Domain, nl.NumCells())
		bound := frac * extent
		for i := range domains {
			if axisPos(i) <= bound {
				domains[i] = cell.DomainHigh
			}
		}
		res, err := mc.Run(ctx, a, model, pos, mc.Options{
			Samples: opts.Samples,
			Seed:    opts.Seed,
			ClockPS: opts.ClockPS,
			Derate:  opts.Derate,
			Domains: domains,
		})
		if err != nil {
			return false, err
		}
		worst := math.Inf(1)
		for _, st := range mc.PipelineStages {
			if d := res.PerStage[st]; d != nil {
				if m := d.Fit.Mu - opts.YieldSigma*d.Fit.Sigma; m < worst {
					worst = m
				}
			}
		}
		return worst >= 0, nil
	}

	// The model-backed check prices boundary candidates against
	// per-sample threshold models over the growth axis.
	var axis []float64
	if opts.Check == CheckModel {
		axis = make([]float64, nl.NumCells())
		for i := range axis {
			axis[i] = axisPos(i)
		}
	}

	prevFrac := 0.0
	for k, pos := range scenarioPos {
		// Binary search the smallest boundary fraction (not below
		// the previous island's bound) that compensates scenario
		// k+1; the speed-up grows monotonically with the slice. One
		// span per slicing pass; the per-check mc.Run spans nest
		// under it through islandCtx.
		islandCtx, span := obs.Start(ctx, fmt.Sprintf("vi.island/%d", k+1))
		span.SetAttr("strategy", opts.Strategy)
		span.SetAttr("pos", pos.Name)
		checks := 0
		frac := -1.0
		if opts.Check == CheckModel {
			ck, err := buildModelChecker(islandCtx, a, model, pos, &opts, axis, prevFrac*extent, opts.MaxFrac*extent)
			if err != nil {
				span.End()
				return nil, err
			}
			checks++
			if ck.meets(opts.MaxFrac * extent) {
				lo, hi := prevFrac, opts.MaxFrac
				for hi-lo > opts.Granularity {
					mid := (lo + hi) / 2
					checks++
					if ck.meets(mid * extent) {
						hi = mid
					} else {
						lo = mid
					}
				}
				// Composed slacks are optimistic: confirm the model's
				// boundary with one exact batch, and fall back to the
				// exact search below when confirmation fails.
				ok, err := meets(islandCtx, hi, pos)
				checks++
				if err != nil {
					span.End()
					return nil, err
				}
				if ok {
					frac = hi
				}
			}
			span.SetAttr("model", frac >= 0)
		}
		if frac < 0 {
			lo, hi := prevFrac, opts.MaxFrac
			ok, err := meets(islandCtx, hi, pos)
			checks++
			if err != nil {
				span.End()
				return nil, err
			}
			if !ok {
				span.End()
				return nil, flowerr.BadInputf("vi: %s slicing cannot compensate scenario %d (position %s) even at %.0f%% high-Vdd",
					opts.Strategy, k+1, pos.Name, 100*opts.MaxFrac)
			}
			for hi-lo > opts.Granularity {
				mid := (lo + hi) / 2
				ok, err := meets(islandCtx, mid, pos)
				checks++
				if err != nil {
					span.End()
					return nil, err
				}
				if ok {
					hi = mid
				} else {
					lo = mid
				}
			}
			frac = hi
		}
		span.SetAttr("checks", checks)
		span.SetAttr("frac", strconv.FormatFloat(frac, 'f', 4, 64))
		span.End()
		isl := Island{Index: k + 1, FromUM: prevFrac * extent, ToUM: frac * extent}
		bound := frac * extent
		prevBound := prevFrac * extent
		for i := 0; i < nl.NumCells(); i++ {
			if v := axisPos(i); v > prevBound && v <= bound {
				isl.Cells = append(isl.Cells, i)
				p.Region[i] = int32(k + 1)
			}
		}
		p.Islands = append(p.Islands, isl)
		prevFrac = frac
	}
	return p, nil
}

// pickStartSide chooses the densest floorplan side (or corner) for
// the given strategy ("based on cell density considerations, we
// assess the most promising side of the processor core floorplan").
func pickStartSide(pl *place.Placement, s Strategy) Side {
	const bands = 8
	switch s {
	case Vertical:
		grid := pl.DensityMap(bands, 1)
		if grid[0][0] >= grid[0][bands-1] {
			return Left
		}
		return Right
	case Horizontal:
		grid := pl.DensityMap(1, bands)
		if grid[0][0] >= grid[bands-1][0] {
			return Bottom
		}
		return Top
	default:
		grid := pl.DensityMap(2, 2)
		best, bestD := BottomLeft, grid[0][0]
		for _, c := range []struct {
			side Side
			d    float64
		}{
			{BottomRight, grid[0][1]},
			{TopLeft, grid[1][0]},
			{TopRight, grid[1][1]},
		} {
			if c.d > bestD {
				best, bestD = c.side, c.d
			}
		}
		return best
	}
}
