package vi

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"vipipe/internal/mc"
	"vipipe/internal/sta"
	"vipipe/internal/stats"
	"vipipe/internal/tmodel"
	"vipipe/internal/variation"
)

// CheckMode selects how island generation verifies a candidate
// boundary compensates a violation scenario.
type CheckMode uint8

const (
	// CheckExact runs a full Monte Carlo SSTA batch per candidate —
	// the byte-stable reference path.
	CheckExact CheckMode = iota
	// CheckModel extracts one compact threshold model per Monte Carlo
	// sample (from the same derived rng streams the exact path draws,
	// so both modes see identical chips) and prices every binary-search
	// candidate against the models instead of re-running STA. The
	// converged boundary is re-verified exactly; if the optimistic
	// model accepted a boundary the exact check rejects, the island
	// falls back to the exact search.
	CheckModel
)

// modelChecker holds the per-sample threshold models of one island
// pass (one violation scenario / chip position).
type modelChecker struct {
	models []*tmodel.ThresholdModel
	sigma  float64
}

// buildModelChecker samples the scenario's chips exactly like mc.Run
// (same stream derivation, same scale recipe) and extracts a
// threshold model per sample at three probe bounds spanning the
// search interval.
func buildModelChecker(ctx context.Context, a *sta.Analyzer, model *variation.Model, pos variation.Pos, opts *Options, axis []float64, loBound, hiBound float64) (*modelChecker, error) {
	nCells := a.NL.NumCells()
	kern := sta.NewKernel(a)
	view := kern.View()
	tech := &a.NL.Lib.Tech
	probes := []float64{loBound, (loBound + hiBound) / 2, hiBound}

	ck := &modelChecker{
		models: make([]*tmodel.ThresholdModel, opts.Samples),
		sigma:  opts.YieldSigma,
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > opts.Samples {
		workers = opts.Samples
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lg := make([]float64, nCells)
			lo := make([]float64, nCells)
			hi := make([]float64, nCells)
			loScale := tech.DelayScaler(tech.VddLow)
			hiScale := tech.DelayScaler(tech.VddHigh)
			for k := range idx {
				if ctx.Err() != nil {
					continue
				}
				rng := stats.DeriveStream(opts.Seed, fmt.Sprintf("mc/%s/%d", pos.Name, k))
				model.SampleChipInto(lg, a.PL, pos, rng)
				for i := 0; i < nCells; i++ {
					l, h := loScale(lg[i]), hiScale(lg[i])
					if opts.Derate != nil {
						l *= opts.Derate[i]
						h *= opts.Derate[i]
					}
					lo[i], hi[i] = l, h
				}
				tm, err := tmodel.ExtractThreshold(tmodel.ThresholdInput{
					View:    view,
					ClockPS: opts.ClockPS,
					Axis:    axis,
					LoScale: lo,
					HiScale: hi,
					Probes:  probes,
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				ck.models[k] = tm
			}
		}()
	}
	for k := 0; k < opts.Samples; k++ {
		select {
		case idx <- k:
		case <-ctx.Done():
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return ck, nil
}

// meets applies the same per-stage yield decision as the exact path —
// every pipeline stage's fitted slack distribution must clear zero by
// YieldSigma sigmas — over model-composed slacks. Composed slacks
// upper-bound exact slacks, so a model rejection is always sound; an
// acceptance is optimistic and the caller re-verifies the final
// boundary exactly.
func (ck *modelChecker) meets(bound float64) bool {
	slacks := make([][]float64, len(mc.PipelineStages))
	for _, tm := range ck.models {
		r := tm.EvalBound(bound)
		for si, st := range mc.PipelineStages {
			if r.Present[st] {
				slacks[si] = append(slacks[si], r.Slack[st])
			}
		}
	}
	worst := math.Inf(1)
	for si := range slacks {
		if len(slacks[si]) < 2 {
			continue
		}
		fit, err := stats.FitNormal(slacks[si])
		if err != nil {
			return false
		}
		if m := fit.Mu - ck.sigma*fit.Sigma; m < worst {
			worst = m
		}
	}
	return worst >= 0
}

// VerifyShifters checks a partition's level-shifter cost against the
// clock by composing a timing model instead of re-running STA: for
// every violation scenario (islands 1..k raised) it folds the stored
// paths' crossing penalties into the composed slack and returns the
// worst slack seen. A non-negative result means shifter insertion
// cannot break the clock at any scenario, to within the model's
// stated bound.
func VerifyShifters(m *tmodel.Model, numIslands int) (worstSlackPS float64, err error) {
	worstSlackPS = math.Inf(1)
	for k := 0; k <= numIslands; k++ {
		ans, err := m.Eval(tmodel.Query{Raise: k, Shifters: true})
		if err != nil {
			return 0, err
		}
		if ans.WorstSlackPS < worstSlackPS {
			worstSlackPS = ans.WorstSlackPS
		}
	}
	return worstSlackPS, nil
}
