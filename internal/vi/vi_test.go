package vi

import (
	"context"
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
)

type fixture struct {
	core   *vex.Core
	pl     *place.Placement
	a      *sta.Analyzer
	model  variation.Model
	derate []float64
	clock  float64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Global(core.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sta.New(core.NL, pl)
	if err != nil {
		t.Fatal(err)
	}
	clock := a.Run(1e9, nil).CritPS * 1.001
	derate := a.SlackRecovery(clock, sta.DefaultRecoveryTargets(), 12, 25)
	return &fixture{core: core, pl: pl, a: a, model: variation.Default(), derate: derate, clock: clock}
}

// scenarioPositions returns C, B, A: least to most severe.
func (f *fixture) scenarioPositions() []variation.Pos {
	ps := f.model.DiagonalPositions()
	return []variation.Pos{ps[2], ps[1], ps[0]}
}

func (f *fixture) generate(t *testing.T, strat Strategy) *Partition {
	t.Helper()
	p, err := Generate(context.Background(), f.a, &f.model, f.scenarioPositions(), Options{
		Strategy: strat,
		ClockPS:  f.clock,
		Derate:   f.derate,
		Samples:  40,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := Generate(context.Background(), f.a, &f.model, nil, Options{ClockPS: f.clock}); err == nil {
		t.Error("no scenarios accepted")
	}
	if _, err := Generate(context.Background(), f.a, &f.model, f.scenarioPositions(), Options{}); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestGenerateNestedIslands(t *testing.T) {
	f := newFixture(t)
	for _, strat := range []Strategy{Vertical, Horizontal} {
		p := f.generate(t, strat)
		if p.NumIslands() != 3 {
			t.Fatalf("%v: %d islands, want 3", strat, p.NumIslands())
		}
		// Bands must be nested and non-overlapping.
		prev := 0.0
		total := 0
		for k, isl := range p.Islands {
			if isl.Index != k+1 {
				t.Errorf("%v: island %d has index %d", strat, k, isl.Index)
			}
			if isl.FromUM != prev {
				t.Errorf("%v: island %d starts at %g, want %g", strat, k+1, isl.FromUM, prev)
			}
			if isl.ToUM < isl.FromUM {
				t.Errorf("%v: island %d inverted band", strat, k+1)
			}
			prev = isl.ToUM
			total += len(isl.Cells)
			if len(isl.Cells) == 0 {
				t.Errorf("%v: island %d empty", strat, k+1)
			}
		}
		// The most severe scenario may legitimately need the whole
		// core boosted, but the earlier islands must be proper
		// subsets so the nesting carries information.
		if len(p.Islands[0].Cells)+len(p.Islands[1].Cells) >= f.core.NL.NumCells() {
			t.Errorf("%v: islands 1+2 already cover the whole core", strat)
		}
		// Region consistency.
		count := 0
		for _, r := range p.Region {
			if r != RegionNone {
				count++
			}
		}
		if count != total {
			t.Errorf("%v: region map has %d island cells, want %d", strat, count, total)
		}
	}
}

func TestIslandsCompensateScenarios(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Vertical)
	positions := f.scenarioPositions()
	for k, pos := range positions {
		domains := p.Domains(k + 1)
		res, err := mc.Run(context.Background(), f.a, &f.model, pos, mc.Options{
			Samples: 60, Seed: 10, ClockPS: f.clock, Derate: f.derate, Domains: domains,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The generator targets a 2-sigma margin with its own sample
		// set; verify with a slightly looser bound on fresh samples.
		for _, st := range mc.PipelineStages {
			d := res.PerStage[st]
			if d.Fit.Mu-1.7*d.Fit.Sigma < 0 {
				t.Errorf("scenario %d at %s: stage %v not compensated (mu=%.0f sigma=%.0f)",
					k+1, pos.Name, st, d.Fit.Mu, d.Fit.Sigma)
			}
		}
	}
}

func TestFewerIslandsDoNotCompensateWorstCase(t *testing.T) {
	// Raising only island 1 must NOT fix point A (otherwise the
	// nesting is vacuous and islands 2/3 pointless).
	f := newFixture(t)
	p := f.generate(t, Vertical)
	a := f.scenarioPositions()[2] // point A
	res, err := mc.Run(context.Background(), f.a, &f.model, a, mc.Options{
		Samples: 60, Seed: 10, ClockPS: f.clock, Derate: f.derate, Domains: p.Domains(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	worstOK := true
	for _, st := range mc.PipelineStages {
		d := res.PerStage[st]
		if d.Fit.Mu-3*d.Fit.Sigma < 0 {
			worstOK = false
		}
	}
	if worstOK {
		t.Error("island 1 alone compensates point A — island sizing degenerate")
	}
}

func TestDomainsCumulative(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Horizontal)
	d0 := p.Domains(0)
	for _, d := range d0 {
		if d != cell.DomainLow {
			t.Fatal("scenario 0 must be all low")
		}
	}
	counts := make([]int, 4)
	for k := 1; k <= 3; k++ {
		for _, d := range p.Domains(k) {
			if d == cell.DomainHigh {
				counts[k]++
			}
		}
	}
	if !(counts[1] < counts[2] && counts[2] < counts[3]) {
		t.Errorf("high-cell counts not strictly growing: %v", counts[1:])
	}
}

func TestInsertShifters(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Vertical)
	before := f.core.NL.NumCells()
	critBefore := f.a.Run(f.clock, f.derate).CritPS

	n, err := p.InsertShifters(f.pl)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("no shifters inserted")
	}
	if f.core.NL.NumCells() != before+n {
		t.Errorf("cells grew by %d, want %d", f.core.NL.NumCells()-before, n)
	}
	if len(p.Shifters) != n || len(p.Region) != f.core.NL.NumCells() {
		t.Error("partition bookkeeping inconsistent after insertion")
	}
	if err := f.core.NL.Validate(); err != nil {
		t.Fatalf("netlist invalid after insertion: %v", err)
	}
	if err := f.pl.Validate(); err != nil {
		t.Fatalf("placement invalid after insertion: %v", err)
	}

	// Re-inserting must fail (already inserted).
	if _, err := p.InsertShifters(f.pl); err == nil {
		t.Error("double insertion accepted")
	}

	// Area overhead is positive and below the design's own area.
	if p.ShifterAreaFrac() <= 0 || p.ShifterAreaFrac() >= 0.5 {
		t.Errorf("shifter area fraction %g implausible", p.ShifterAreaFrac())
	}

	// Timing degradation from insertion: present but bounded. The
	// paper saw 8-15% on a 3.9ns design where one shifter costs
	// ~1.4% of the clock; on this reduced core a path crossing a
	// boundary pays ~4% per shifter, so the bound is looser (the
	// full-size comparison lives in the benchmark harness).
	derate2 := append(append([]float64{}, f.derate...), make([]float64, n)...)
	for i := before; i < before+n; i++ {
		derate2[i] = 1
	}
	if err := f.a.Refresh(); err != nil {
		t.Fatal(err)
	}
	critAfter := f.a.Run(f.clock, derate2).CritPS
	degr := critAfter/critBefore - 1
	if degr < 0 {
		t.Errorf("insertion sped the design up (%.1f%%)", degr*100)
	}
	if degr > 0.60 {
		t.Errorf("insertion degraded timing by %.0f%% — implausible", degr*100)
	}
}

func TestShiftersOnlyOnLowToHighCrossings(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Vertical)
	if _, err := p.InsertShifters(f.pl); err != nil {
		t.Fatal(err)
	}
	nl := f.core.NL
	for _, ls := range p.Shifters {
		in := nl.Insts[ls].Inputs[0]
		drv := nl.Nets[in].Driver
		if drv == netlist.NoInst {
			t.Fatal("shifter fed by primary input")
		}
		if nl.Insts[drv].Kind == cell.LvlShift {
			t.Error("chained level shifters")
		}
		drvRegion := p.Region[drv]
		lsRegion := p.Region[ls]
		if lsRegion >= drvRegion {
			t.Errorf("shifter region %d not below driver region %d", lsRegion, drvRegion)
		}
		// Every sink of the shifter output sits in the shifter's
		// region.
		for _, s := range nl.Nets[nl.Insts[ls].Out].Sinks {
			if p.Region[s.Inst] != lsRegion {
				t.Error("shifter serves sinks outside its region")
			}
		}
	}
	// No remaining unshifted low->high crossing, except nets driven
	// by ties or PIs; a level shifter's own input pin is by
	// definition in the lower domain.
	for n := range nl.Nets {
		drv := nl.Nets[n].Driver
		if drv == netlist.NoInst || nl.Cell(drv).IsTie() {
			continue
		}
		for _, s := range nl.Nets[n].Sinks {
			if nl.Insts[s.Inst].Kind == cell.LvlShift {
				continue
			}
			if p.Region[s.Inst] < p.Region[drv] {
				t.Errorf("net %d still crosses low->high without a shifter", n)
			}
		}
	}
}

func TestStrategyAndSideStrings(t *testing.T) {
	if Vertical.String() != "vertical" || Horizontal.String() != "horizontal" {
		t.Error("strategy names wrong")
	}
	if Left.String() != "left" || Right.String() != "right" || Bottom.String() != "bottom" || Top.String() != "top" {
		t.Error("side names wrong")
	}
}

func TestForceSide(t *testing.T) {
	f := newFixture(t)
	side := Right
	p, err := Generate(context.Background(), f.a, &f.model, f.scenarioPositions()[:1], Options{
		Strategy: Vertical, ClockPS: f.clock, Derate: f.derate, Samples: 30, Seed: 3,
		ForceSide: &side,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.StartSide != Right {
		t.Errorf("start side = %v, want right", p.StartSide)
	}
	// Growth from the right: island cells must hug the right edge.
	maxX := 0.0
	for i := 0; i < f.core.NL.NumCells(); i++ {
		x, _ := f.pl.Center(i)
		if x > maxX {
			maxX = x
		}
	}
	for _, c := range p.Islands[0].Cells {
		x, _ := f.pl.Center(c)
		if x < maxX-p.Islands[0].ToUM-1 {
			t.Fatalf("cell %d at x=%g outside right band of %g", c, x, p.Islands[0].ToUM)
		}
	}
}

func TestCountCrossingsMatchesInsertion(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Vertical)
	predicted := CountCrossings(f.core.NL, p.Region)
	inserted, err := p.InsertShifters(f.pl)
	if err != nil {
		t.Fatal(err)
	}
	if predicted != inserted {
		t.Errorf("CountCrossings predicted %d, insertion produced %d", predicted, inserted)
	}
}

func TestCountCrossingsIgnoresTiesAndPIs(t *testing.T) {
	b := netlist.NewBuilder("t", cell.Default65nm())
	pi := b.Input("pi")
	k := b.Const(true)
	x := b.And(pi, k)
	y := b.Not(x)
	_ = y
	// Regions: the AND in region 2, the INV in region 1 -> one
	// crossing; tie and PI feed region-2 cells without shifters.
	region := []int32{RegionNone, 2, 1}
	if got := CountCrossings(b.NL, region); got != 1 {
		t.Errorf("crossings = %d, want 1", got)
	}
}

func TestCornerStrategy(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Corner)
	if p.NumIslands() != 3 {
		t.Fatalf("corner: %d islands, want 3", p.NumIslands())
	}
	switch p.StartSide {
	case BottomLeft, BottomRight, TopLeft, TopRight:
	default:
		t.Errorf("corner strategy picked edge side %v", p.StartSide)
	}
	// Island 1 cells hug the chosen corner: Chebyshev distance in
	// normalized coordinates within the island bound.
	extent := f.pl.DieW
	if f.pl.DieH > extent {
		extent = f.pl.DieH
	}
	bound := p.Islands[0].ToUM / extent
	for _, c := range p.Islands[0].Cells {
		x, y := f.pl.Center(c)
		nx, ny := x/f.pl.DieW, y/f.pl.DieH
		if p.StartSide == BottomRight || p.StartSide == TopRight {
			nx = 1 - nx
		}
		if p.StartSide == TopLeft || p.StartSide == TopRight {
			ny = 1 - ny
		}
		d := nx
		if ny > d {
			d = ny
		}
		if d > bound+1e-9 {
			t.Fatalf("cell %d at chebyshev %.3f outside island bound %.3f", c, d, bound)
		}
	}
	// Compensation and shifter insertion work as for the other
	// strategies.
	if _, err := p.InsertShifters(f.pl); err != nil {
		t.Fatal(err)
	}
	if err := f.core.NL.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyStringsIncludeCorner(t *testing.T) {
	if Corner.String() != "corner" {
		t.Error("corner name wrong")
	}
	if BottomLeft.String() != "bottom-left" || TopRight.String() != "top-right" {
		t.Error("corner side names wrong")
	}
}

func TestRenderFloorplan(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Vertical)
	out := p.Render(f.pl, 40)
	if !strings.Contains(out, "vertical slicing") {
		t.Error("header missing")
	}
	// All three island digits appear, plus low-Vdd remainder or not.
	for _, ch := range []string{"1", "2", "3"} {
		if !strings.Contains(out, ch) {
			t.Errorf("island %s missing from render:\n%s", ch, out)
		}
	}
	// After insertion, shifters may appear as 'S'.
	if _, err := p.InsertShifters(f.pl); err != nil {
		t.Fatal(err)
	}
	out2 := p.Render(f.pl, 40)
	if len(out2) <= len("header") {
		t.Error("render empty after insertion")
	}
}
