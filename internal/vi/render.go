package vi

import (
	"fmt"
	"strings"

	"vipipe/internal/place"
)

// Render draws the partition as an ASCII floorplan in the spirit of
// the paper's Fig. 4: each character cell shows the island index
// (1-3) that dominates that bin, '.' for the always-low remainder,
// and 'S' where level shifters concentrate (only after insertion).
// cols sets the horizontal resolution; the vertical resolution follows
// the die aspect ratio at terminal character proportions.
func (p *Partition) Render(pl *place.Placement, cols int) string {
	if cols < 8 {
		cols = 8
	}
	rows := int(float64(cols) * pl.DieH / pl.DieW / 2.2)
	if rows < 4 {
		rows = 4
	}
	// Bin ownership by majority cell area per region.
	type bin struct {
		area    [5]float64 // index 0 = remainder, 1..3 islands, 4 unused
		shifter float64
	}
	grid := make([][]bin, rows)
	for r := range grid {
		grid[r] = make([]bin, cols)
	}
	isShifter := make(map[int]bool, len(p.Shifters))
	for _, s := range p.Shifters {
		isShifter[s] = true
	}
	for i := 0; i < pl.NL.NumCells(); i++ {
		x, y := pl.Center(i)
		cx := int(x / pl.DieW * float64(cols))
		cy := int(y / pl.DieH * float64(rows))
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		b := &grid[cy][cx]
		a := pl.NL.Cell(i).AreaUM2
		region := 0
		if i < len(p.Region) && p.Region[i] != RegionNone {
			region = int(p.Region[i])
			if region > 3 {
				region = 3
			}
		}
		b.area[region] += a
		if isShifter[i] {
			b.shifter += a
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v slicing from %v: islands 1-3, '.' stays at low Vdd\n", p.Strategy, p.StartSide)
	for r := rows - 1; r >= 0; r-- {
		sb.WriteByte('|')
		for c := 0; c < cols; c++ {
			b := &grid[r][c]
			best, bestA := 0, b.area[0]
			for k := 1; k <= 3; k++ {
				if b.area[k] > bestA {
					best, bestA = k, b.area[k]
				}
			}
			switch {
			case bestA == 0:
				sb.WriteByte(' ')
			case b.shifter > bestA/3:
				sb.WriteByte('S')
			case best == 0:
				sb.WriteByte('.')
			default:
				sb.WriteByte(byte('0' + best))
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
