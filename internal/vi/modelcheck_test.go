package vi

import (
	"context"
	"math"
	"testing"

	"vipipe/internal/sta"
	"vipipe/internal/tmodel"
)

// TestModelCheckMatchesExactPartition locks the CheckModel refactor to
// the exact path: on the fixture the model-driven binary search must
// land every island boundary where the exact search does, to within
// one granularity step (the final boundary is exact-verified either
// way, so a divergence can only be one lattice point of conservatism).
func TestModelCheckMatchesExactPartition(t *testing.T) {
	f := newFixture(t)
	opts := Options{
		Strategy: Vertical,
		ClockPS:  f.clock,
		Derate:   f.derate,
		Samples:  40,
		Seed:     9,
	}
	exact, err := Generate(context.Background(), f.a, &f.model, f.scenarioPositions(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Check = CheckModel
	composed, err := Generate(context.Background(), f.a, &f.model, f.scenarioPositions(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if composed.NumIslands() != exact.NumIslands() {
		t.Fatalf("island counts diverge: %d vs %d", composed.NumIslands(), exact.NumIslands())
	}
	step := f.pl.DieW * (1.0 / 64)
	identical := true
	for k := range exact.Islands {
		d := math.Abs(composed.Islands[k].ToUM - exact.Islands[k].ToUM)
		if d > step+1e-6 {
			t.Errorf("island %d boundary diverged by %.1fum (> one %.1fum step)", k+1, d, step)
		}
		if d > 1e-9 {
			identical = false
		}
	}
	if identical {
		for i, r := range exact.Region {
			if composed.Region[i] != r {
				t.Fatalf("identical boundaries but region maps diverge at cell %d", i)
			}
		}
	}
}

// TestVerifyShifters checks the composed shifter verification: the
// penalty-folded worst slack is finite and never better than the
// plain composed slack.
func TestVerifyShifters(t *testing.T) {
	f := newFixture(t)
	p := f.generate(t, Vertical)

	kern := sta.NewKernel(f.a)
	n := f.core.NL.NumCells()
	xum := make([]float64, n)
	yum := make([]float64, n)
	lg := make([]float64, n)
	for i := 0; i < n; i++ {
		cx, cy := f.pl.Center(i)
		xum[i], yum[i] = cx, cy
		lg[i] = f.model.SystematicLgateNM(cx/1000, cy/1000)
	}
	m, err := tmodel.Extract(tmodel.ExtractInput{
		View:      kern.View(),
		ClockPS:   f.clock,
		Region:    p.Region,
		Islands:   p.NumIslands(),
		LgNM:      lg,
		Derate:    f.derate,
		XUM:       xum,
		YUM:       yum,
		Tech:      f.core.NL.Lib.Tech,
		LnomNM:    f.model.LnomNM,
		ShifterPS: 50,
		Pos:       "center",
		Strategy:  Vertical.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := VerifyShifters(m, p.NumIslands())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(worst, 0) || math.IsNaN(worst) {
		t.Fatalf("worst slack %g not finite", worst)
	}
	plain := math.Inf(1)
	for k := 0; k <= p.NumIslands(); k++ {
		ans, err := m.Eval(tmodel.Query{Raise: k})
		if err != nil {
			t.Fatal(err)
		}
		if ans.WorstSlackPS < plain {
			plain = ans.WorstSlackPS
		}
	}
	if worst > plain+1e-9 {
		t.Fatalf("shifter-folded slack %g better than plain %g", worst, plain)
	}
}
