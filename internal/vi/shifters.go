package vi

import (
	"fmt"
	"slices"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
)

// InsertShifters splices level shifters into every net that can cross
// from a low-Vdd to a high-Vdd domain in some violation scenario, and
// incrementally places them (paper Section 4.6). With cumulative
// islands — islands 1..k are high in scenario k — a net needs shifting
// exactly when its driver's region index is larger than a sink's: for
// any scenario between the two indices the driver is low while the
// sink is high. Sinks are grouped per target region, one shifter per
// (net, region). High-to-low crossings are left unshifted, as in the
// paper ("we retain only the nets connecting low- to high-Vdd domains
// ... to avoid the static power overhead").
//
// Primary-input nets (the behavioral memory interfaces) and
// constant-generator outputs are exempt: memories live outside the
// core in the paper's setup, and tie cells are domain-local.
//
// The placement is extended in place; each shifter lands at the
// midpoint between the driver and the centroid of the sinks it serves,
// snapped to the row grid.
func (p *Partition) InsertShifters(pl *place.Placement) (int, error) {
	nl := p.nl
	if pl.NL != nl {
		return 0, flowerr.BadInputf("vi: placement belongs to a different netlist")
	}
	if p.shiftersDone {
		return 0, flowerr.StepOrderf("vi: level shifters already inserted for this partition")
	}
	if len(p.Region) != nl.NumCells() {
		return 0, flowerr.BadInputf("vi: partition covers %d of %d cells", len(p.Region), nl.NumCells())
	}
	p.shiftersDone = true
	numNets := nl.NumNets() // snapshot: we append nets while iterating
	inserted := 0
	for n := 0; n < numNets; n++ {
		net := &nl.Nets[n]
		drv := net.Driver
		if drv == netlist.NoInst || nl.Cell(drv).IsTie() {
			continue
		}
		drvRegion := p.Region[drv]
		// Group sinks needing a shifter by their region.
		byRegion := make(map[int32][]netlist.Sink)
		for _, s := range net.Sinks {
			if p.Region[s.Inst] < drvRegion {
				byRegion[p.Region[s.Inst]] = append(byRegion[p.Region[s.Inst]], s)
			}
		}
		// Iterate regions in ascending order: shifter instance IDs,
		// their names and their placement all depend on creation
		// order, and map iteration would make them vary run to run —
		// poisoning content-addressed artifacts downstream.
		regions := make([]int32, 0, len(byRegion))
		for region := range byRegion {
			regions = append(regions, region)
		}
		slices.Sort(regions)
		for _, region := range regions {
			sinks := byRegion[region]
			// Create the shifter fed by the original net. Its stage
			// tag follows the driver so per-stage timing still
			// groups sensibly; the unit tag marks it for Table 2
			// accounting.
			lsOut := nl.AddInst(cell.LvlShift,
				fmt.Sprintf("ls/%s_r%d_n%d", p.Strategy, region, n),
				nl.Insts[drv].Stage, "levelshift", n)
			lsInst := nl.Nets[lsOut].Driver
			for _, s := range sinks {
				nl.RewireInput(s.Inst, s.Pin, lsOut)
			}
			p.Region = append(p.Region, region)
			p.Shifters = append(p.Shifters, lsInst)
			inserted++

			// Incremental placement: midpoint of driver and served
			// sinks.
			dx, dy := pl.Center(drv)
			sx, sy := 0.0, 0.0
			for _, s := range sinks {
				x, y := pl.Center(s.Inst)
				sx += x
				sy += y
			}
			sx /= float64(len(sinks))
			sy /= float64(len(sinks))
			pl.Extend()
			pl.InsertAt(lsInst, (dx+sx)/2, (dy+sy)/2)
		}
	}
	return inserted, nil
}

// CountCrossings returns the number of level shifters a region
// assignment would need, without modifying the netlist: one per
// (net, lower-region sink group) pair, with the same exemptions as
// InsertShifters (primary inputs and tie cells). region holds one
// entry per instance. Used to compare partitionings (e.g. the
// placement-quality ablation) cheaply.
func CountCrossings(nl *netlist.Netlist, region []int32) int {
	count := 0
	seen := make(map[int32]bool, 4)
	for n := range nl.Nets {
		drv := nl.Nets[n].Driver
		if drv == netlist.NoInst || nl.Cell(drv).IsTie() {
			continue
		}
		drvRegion := region[drv]
		clear(seen)
		for _, s := range nl.Nets[n].Sinks {
			if r := region[s.Inst]; r < drvRegion && !seen[r] {
				seen[r] = true
				count++
			}
		}
	}
	return count
}

// ShifterAreaUM2 returns the total level-shifter area.
func (p *Partition) ShifterAreaUM2() float64 {
	if len(p.Shifters) == 0 {
		return 0
	}
	return float64(len(p.Shifters)) * p.nl.Lib.Cell(cell.LvlShift).AreaUM2
}

// ShifterAreaFrac returns the level-shifter share of the design's
// logic area (Table 2, "LS area").
func (p *Partition) ShifterAreaFrac() float64 {
	total := 0.0
	for i := range p.nl.Insts {
		total += p.nl.Cell(i).AreaUM2
	}
	if total == 0 {
		return 0
	}
	return p.ShifterAreaUM2() / total
}
