// Package razor models the post-silicon timing-sensing machinery of
// the paper (Section 4.4): Razor-style flip-flops with delayed shadow
// sampling are placed only on the endpoints that the Monte Carlo SSTA
// found can become critical under process variations ("we need to
// place razor-based sensing circuits only on the flip-flops fed by
// these signal paths, thus significantly reducing the overhead").
// After fabrication, the sensors' per-stage error flags identify the
// actual timing-violation scenario, which selects how many voltage
// islands to power at high Vdd.
package razor

import (
	"fmt"
	"sort"

	"vipipe/internal/cell"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/sta"
)

// Plan lists the endpoints to equip with Razor flip-flops, grouped by
// pipeline stage.
type Plan struct {
	// ByStage maps each analyzed stage to the flop instances that
	// need sensing.
	ByStage map[netlist.Stage][]int
	// Sensors is the flattened, sorted instance list.
	Sensors []int
}

// DefaultBudget is the per-stage sensor budget: the paper found 12
// statistically-critical paths in the execute stage and sensored only
// those.
const DefaultBudget = 12

// NewPlan derives the sensor placement from a Monte Carlo result at
// the worst-case chip position (point A): per stage, the budget
// endpoints that were most often the stage-critical path get sensors.
// When a stage genuinely violates, its near-critical endpoints violate
// in groups (they share the post-synthesis slack wall), so a small
// sensored subset still flags the stage reliably. budget <= 0 sensors
// every candidate.
func NewPlan(nl *netlist.Netlist, res *mc.Result, budget int) *Plan {
	p := &Plan{ByStage: make(map[netlist.Stage][]int)}
	for _, st := range mc.PipelineStages {
		eps := res.CriticalEndpoints(nl, st)
		if budget > 0 && len(eps) > budget {
			eps = eps[:budget]
		}
		for _, er := range eps {
			p.ByStage[st] = append(p.ByStage[st], er.Inst)
			p.Sensors = append(p.Sensors, er.Inst)
		}
	}
	sort.Ints(p.Sensors)
	return p
}

// NumSensors returns the total sensor count.
func (p *Plan) NumSensors() int { return len(p.Sensors) }

// Apply converts the planned flip-flops to Razor flip-flops in the
// netlist, returning the number converted. The caller must Refresh any
// timing analyzer afterwards (Razor flops have slightly different
// timing and cost more area and power).
func (p *Plan) Apply(nl *netlist.Netlist) (int, error) {
	converted := 0
	for _, inst := range p.Sensors {
		if inst < 0 || inst >= nl.NumCells() {
			return converted, fmt.Errorf("razor: sensor instance %d out of range", inst)
		}
		if nl.Insts[inst].Kind != cell.DFF {
			return converted, fmt.Errorf("razor: instance %d (%s) is not a plain DFF", inst, nl.Insts[inst].Name)
		}
		nl.Insts[inst].Kind = cell.RazorFF
		converted++
	}
	return converted, nil
}

// AreaOverheadUM2 returns the extra area of the plan: the per-sensor
// difference between a Razor flop and the plain flop it replaces.
func (p *Plan) AreaOverheadUM2(lib *cell.Library) float64 {
	d := lib.Cell(cell.RazorFF).AreaUM2 - lib.Cell(cell.DFF).AreaUM2
	return float64(len(p.Sensors)) * d
}

// Detection is the outcome of reading the sensors of one fabricated
// chip.
type Detection struct {
	Scenario int // number of flagged stages = islands to raise
	Flagged  map[netlist.Stage]bool
}

// Detect reads the sensors on one chip sample: an endpoint flags an
// error when its data arrival exceeds the clock period (the shadow
// latch catches the late transition). scale is the chip's
// per-instance delay factor (variation times derate). Only sensored
// endpoints are observable — exactly the hardware's view. The shadow
// sampling window is unbounded here; use DetectWindow to model a
// finite window.
func Detect(a *sta.Analyzer, plan *Plan, clockPS float64, scale []float64) Detection {
	return DetectWindow(a, plan, clockPS, 0, scale)
}

// DetectWindow models the finite shadow-latch sampling delay: a
// sensored endpoint raises its error flag only when the data arrival
// falls inside (clock, clock+windowPS] — a transition later than the
// window escapes the shadow latch too and is missed. The paper tunes
// this delay from the Monte Carlo range ("the value of such delays
// could be tuned based on the results of the Monte Carlo analysis");
// WindowFromMC computes that tuning. windowPS <= 0 means unbounded.
func DetectWindow(a *sta.Analyzer, plan *Plan, clockPS, windowPS float64, scale []float64) Detection {
	sensed := make(map[int]bool, len(plan.Sensors))
	for _, s := range plan.Sensors {
		sensed[s] = true
	}
	rep := a.Run(clockPS, scale)
	det := Detection{Flagged: make(map[netlist.Stage]bool)}
	for i := range rep.Endpoints {
		ep := &rep.Endpoints[i]
		if ep.Inst == netlist.NoInst || ep.Slack >= 0 || !sensed[ep.Inst] {
			continue
		}
		if windowPS > 0 && -ep.Slack > windowPS {
			continue // beyond the shadow window: missed
		}
		for _, st := range mc.PipelineStages {
			if ep.Stage == st {
				det.Flagged[st] = true
			}
		}
	}
	det.Scenario = len(det.Flagged)
	return det
}

// WindowFromMC tunes the shadow-latch delay from the worst-case Monte
// Carlo characterization: the largest observed violation plus margin,
// so no plausible chip's late transition escapes the window.
func WindowFromMC(res *mc.Result, marginFrac float64) float64 {
	worst := 0.0
	for _, st := range mc.PipelineStages {
		if d := res.PerStage[st]; d != nil {
			if v := -(d.Fit.Mu - 3*d.Fit.Sigma); v > worst {
				worst = v
			}
		}
	}
	return worst * (1 + marginFrac)
}

// GroundTruth computes the true violating-stage set of a chip sample
// from every endpoint — the oracle the sensors approximate.
func GroundTruth(rep *sta.Report) Detection {
	return detectFrom(rep, func(netlist.Stage, int) bool { return true })
}

func detectFrom(rep *sta.Report, sensed func(netlist.Stage, int) bool) Detection {
	det := Detection{Flagged: make(map[netlist.Stage]bool)}
	for i := range rep.Endpoints {
		ep := &rep.Endpoints[i]
		if ep.Inst == netlist.NoInst || ep.Slack >= 0 {
			continue
		}
		for _, st := range mc.PipelineStages {
			if ep.Stage == st && sensed(st, ep.Inst) {
				det.Flagged[st] = true
			}
		}
	}
	det.Scenario = len(det.Flagged)
	return det
}

// Equal reports whether two detections agree.
func (d Detection) Equal(o Detection) bool {
	if d.Scenario != o.Scenario || len(d.Flagged) != len(o.Flagged) {
		return false
	}
	for st := range d.Flagged {
		if !o.Flagged[st] {
			return false
		}
	}
	return true
}
