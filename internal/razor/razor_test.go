package razor

import (
	"context"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/sta"
	"vipipe/internal/stats"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
)

type fixture struct {
	core   *vex.Core
	pl     *place.Placement
	a      *sta.Analyzer
	model  variation.Model
	derate []float64
	clock  float64
	resA   *mc.Result
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Global(core.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sta.New(core.NL, pl)
	if err != nil {
		t.Fatal(err)
	}
	clock := a.Run(1e9, nil).CritPS * 1.001
	derate := a.SlackRecovery(clock, sta.DefaultRecoveryTargets(), 12, 25)
	model := variation.Default()
	resA, err := mc.Run(context.Background(), a, &model, model.DiagonalPositions()[0], mc.Options{
		Samples: 200, Seed: 4, ClockPS: clock, Derate: derate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{core: core, pl: pl, a: a, model: model, derate: derate, clock: clock, resA: resA}
}

func TestPlanCoversAllAnalyzedStages(t *testing.T) {
	f := newFixture(t)
	p := NewPlan(f.core.NL, f.resA, DefaultBudget)
	if p.NumSensors() == 0 {
		t.Fatal("no sensors planned at point A")
	}
	for _, st := range mc.PipelineStages {
		if len(p.ByStage[st]) == 0 {
			t.Errorf("no sensors in %v although it violates at A", st)
		}
	}
	// Sensor economy: far fewer sensors than flops (the paper found
	// only 12 candidate paths in the execute stage).
	flops := len(f.core.NL.Sequentials())
	if p.NumSensors() > flops/3 {
		t.Errorf("%d sensors for %d flops — no economy", p.NumSensors(), flops)
	}
}

func TestPlanAreaOverhead(t *testing.T) {
	f := newFixture(t)
	p := NewPlan(f.core.NL, f.resA, DefaultBudget)
	over := p.AreaOverheadUM2(f.core.NL.Lib)
	if over <= 0 {
		t.Fatal("no overhead computed")
	}
	total := f.core.NL.Stats().AreaUM2
	if over > total*0.10 {
		t.Errorf("sensor area overhead %.0f is %.1f%% of design — too costly", over, 100*over/total)
	}
}

func TestApplyConvertsAndRefreshWorks(t *testing.T) {
	f := newFixture(t)
	p := NewPlan(f.core.NL, f.resA, DefaultBudget)
	n, err := p.Apply(f.core.NL)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.NumSensors() {
		t.Errorf("converted %d of %d", n, p.NumSensors())
	}
	razors := 0
	for i := range f.core.NL.Insts {
		if f.core.NL.Insts[i].Kind == cell.RazorFF {
			razors++
		}
	}
	if razors != n {
		t.Errorf("netlist has %d razor flops, want %d", razors, n)
	}
	if err := f.core.NL.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := f.a.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Re-applying fails (flops are no longer plain DFFs).
	if _, err := p.Apply(f.core.NL); err == nil {
		t.Error("double apply accepted")
	}
}

func TestDetectMatchesGroundTruth(t *testing.T) {
	f := newFixture(t)
	plan := NewPlan(f.core.NL, f.resA, DefaultBudget)
	tech := &f.core.NL.Lib.Tech

	// Evaluate detection accuracy over fresh chips at each position.
	for _, pos := range f.model.DiagonalPositions() {
		match, total := 0, 40
		for k := 0; k < total; k++ {
			rng := stats.DeriveStream(77, pos.Name+string(rune(k)))
			lg := f.model.SampleChip(f.pl, pos, rng)
			scale := make([]float64, f.core.NL.NumCells())
			for i := range scale {
				scale[i] = tech.DelayScale(tech.VddLow, lg[i]) * f.derate[i]
			}
			det := Detect(f.a, plan, f.clock, scale)
			truth := GroundTruth(f.a.Run(f.clock, scale))
			if det.Equal(truth) {
				match++
			}
		}
		acc := float64(match) / float64(total)
		// The paper claims "a high level of correctness".
		if acc < 0.85 {
			t.Errorf("position %s: detection accuracy %.2f too low", pos.Name, acc)
		}
	}
}

func TestDetectionScenarioOrdering(t *testing.T) {
	// Across the diagonal, the average detected scenario must be
	// non-increasing from A to D.
	f := newFixture(t)
	plan := NewPlan(f.core.NL, f.resA, DefaultBudget)
	tech := &f.core.NL.Lib.Tech
	prev := 4.0
	for _, pos := range f.model.DiagonalPositions() {
		sum := 0
		const n = 30
		for k := 0; k < n; k++ {
			rng := stats.DeriveStream(99, pos.Name+string(rune(k)))
			lg := f.model.SampleChip(f.pl, pos, rng)
			scale := make([]float64, f.core.NL.NumCells())
			for i := range scale {
				scale[i] = tech.DelayScale(tech.VddLow, lg[i]) * f.derate[i]
			}
			sum += Detect(f.a, plan, f.clock, scale).Scenario
		}
		avg := float64(sum) / n
		if avg > prev+0.2 {
			t.Errorf("average scenario grew along diagonal at %s: %.2f after %.2f", pos.Name, avg, prev)
		}
		prev = avg
	}
}

func TestApplyRejectsBadInstance(t *testing.T) {
	f := newFixture(t)
	bad := &Plan{Sensors: []int{1 << 30}}
	if _, err := bad.Apply(f.core.NL); err == nil {
		t.Error("out-of-range instance accepted")
	}
	// A combinational cell cannot be sensored.
	comb := -1
	for i := range f.core.NL.Insts {
		if !f.core.NL.IsSequential(i) {
			comb = i
			break
		}
	}
	bad2 := &Plan{Sensors: []int{comb}}
	if _, err := bad2.Apply(f.core.NL); err == nil {
		t.Error("combinational instance accepted")
	}
}

func TestDetectionEqual(t *testing.T) {
	a := Detection{Scenario: 1, Flagged: map[netlist.Stage]bool{netlist.StageExecute: true}}
	b := Detection{Scenario: 1, Flagged: map[netlist.Stage]bool{netlist.StageExecute: true}}
	c := Detection{Scenario: 1, Flagged: map[netlist.Stage]bool{netlist.StageDecode: true}}
	d := Detection{Scenario: 0, Flagged: map[netlist.Stage]bool{}}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal broken")
	}
}

func TestDetectWindow(t *testing.T) {
	f := newFixture(t)
	plan := NewPlan(f.core.NL, f.resA, DefaultBudget)
	tech := &f.core.NL.Lib.Tech
	// A chip at point A violates by ~10% of the clock; a tuned
	// window catches it, a tiny window misses everything.
	rng := stats.DeriveStream(55, "window-chip")
	lg := f.model.SampleChip(f.pl, f.model.DiagonalPositions()[0], rng)
	scale := make([]float64, f.core.NL.NumCells())
	for i := range scale {
		scale[i] = tech.DelayScale(tech.VddLow, lg[i]) * f.derate[i]
	}
	window := WindowFromMC(f.resA, 0.2)
	if window <= 0 {
		t.Fatal("tuned window not positive")
	}
	tuned := DetectWindow(f.a, plan, f.clock, window, scale)
	unbounded := Detect(f.a, plan, f.clock, scale)
	if !tuned.Equal(unbounded) {
		t.Errorf("tuned window (%.0f ps) misses violations the unbounded one sees: %v vs %v",
			window, tuned.Flagged, unbounded.Flagged)
	}
	tiny := DetectWindow(f.a, plan, f.clock, 1, scale)
	if tiny.Scenario >= unbounded.Scenario && unbounded.Scenario > 0 {
		t.Errorf("1ps window should miss deep violations: detected %d vs %d", tiny.Scenario, unbounded.Scenario)
	}
}
