// Package power implements the PrimePower-style analysis of the flow:
// given per-net switching activity from a gate-level simulation of the
// FIR benchmark, it computes dynamic (switching + internal + clock)
// and leakage power per cell, aggregated per functional unit (Table 1)
// and per supply domain, with explicit accounting of the level-shifter
// contribution (Table 2, Figures 5 and 6).
package power

import (
	"fmt"
	"sort"
	"strings"

	"vipipe/internal/cell"
	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
)

// Inputs bundles what the power model needs.
type Inputs struct {
	NL *netlist.Netlist
	// PL provides wire capacitance; nil ignores wire load.
	PL *place.Placement
	// Activity is the per-net toggle rate (toggles per clock cycle)
	// from the gate-level simulation.
	Activity []float64
	// FreqMHz is the operating clock frequency.
	FreqMHz float64
	// Domains assigns each instance a supply domain; nil = all low.
	Domains []cell.Domain
	// LgateNM carries per-cell effective gate lengths for leakage
	// scaling (paper Eq. 4); nil = nominal.
	LgateNM []float64
}

// UnitPower is the per-functional-unit breakdown (Table 1, power
// column).
type UnitPower struct {
	Unit      string
	DynamicMW float64
	LeakMW    float64
}

// TotalMW returns the unit's total power.
func (u UnitPower) TotalMW() float64 { return u.DynamicMW + u.LeakMW }

// Report is a full power analysis result.
type Report struct {
	FreqMHz   float64
	DynamicMW float64
	LeakMW    float64
	ByUnit    []UnitPower // sorted by descending total

	// Level-shifter contribution (cells of kind LVLSHIFT).
	ShifterDynMW  float64
	ShifterLeakMW float64

	// ByDomain splits total power between the two supply rails:
	// index 0 = DomainLow, 1 = DomainHigh. The high-rail entry sizes
	// the boosted supply regulator a VI design needs per scenario.
	ByDomain [2]UnitPower

	// Per-instance leakage (nW), exposed for domain studies.
	CellLeakNW []float64
}

// TotalMW returns total power.
func (r *Report) TotalMW() float64 { return r.DynamicMW + r.LeakMW }

// ShifterMW returns the level shifters' total power.
func (r *Report) ShifterMW() float64 { return r.ShifterDynMW + r.ShifterLeakMW }

// ShifterFrac returns the level-shifter share of total power (the
// paper bounds it at ~5% for vertical slicing, Table 2).
func (r *Report) ShifterFrac() float64 {
	t := r.TotalMW()
	if t == 0 {
		return 0
	}
	return r.ShifterMW() / t
}

// Analyze computes the power report.
func Analyze(in Inputs) (*Report, error) {
	nl := in.NL
	if nl == nil {
		return nil, flowerr.BadInputf("power: nil netlist")
	}
	if len(in.Activity) != nl.NumNets() {
		return nil, flowerr.BadInputf("power: activity for %d nets, want %d", len(in.Activity), nl.NumNets())
	}
	if in.FreqMHz <= 0 {
		return nil, flowerr.BadInputf("power: frequency %g must be positive", in.FreqMHz)
	}
	if in.Domains != nil && len(in.Domains) != nl.NumCells() {
		return nil, flowerr.BadInputf("power: domains for %d cells, want %d", len(in.Domains), nl.NumCells())
	}
	if in.LgateNM != nil && len(in.LgateNM) != nl.NumCells() {
		return nil, flowerr.BadInputf("power: lgate for %d cells, want %d", len(in.LgateNM), nl.NumCells())
	}
	tech := &nl.Lib.Tech
	fHz := in.FreqMHz * 1e6

	// Per-net load capacitance: sink pins plus wire.
	loadFF := make([]float64, nl.NumNets())
	for n := range nl.Nets {
		load := 0.0
		if in.PL != nil {
			load = tech.WireCapFFPerUM * in.PL.NetHPWL(n)
		}
		for _, s := range nl.Nets[n].Sinks {
			load += nl.Cell(s.Inst).InputCapFF
		}
		loadFF[n] = load
	}

	rep := &Report{FreqMHz: in.FreqMHz, CellLeakNW: make([]float64, nl.NumCells())}
	unitAgg := make(map[string]*UnitPower)
	for i := range nl.Insts {
		inst := &nl.Insts[i]
		c := nl.Cell(i)
		dom := cell.DomainLow
		if in.Domains != nil {
			dom = in.Domains[i]
		}
		vdd := tech.Vdd(dom)
		escale := tech.EnergyScale(dom)

		// Dynamic: output switching (0.5 C V^2 per toggle) plus
		// internal energy per output toggle, per-input-pin internal
		// energy per input event, and clock-pin energy every cycle
		// for sequential cells.
		act := in.Activity[inst.Out]
		swFJ := 0.5 * loadFF[inst.Out] * vdd * vdd // fF * V^2 = fJ
		dynFJPerCycle := act * (swFJ + c.InternalFJ*escale)
		if c.InputFJ > 0 {
			inAct := 0.0
			for _, n := range inst.Inputs {
				inAct += in.Activity[n]
			}
			dynFJPerCycle += inAct * c.InputFJ * escale
		}
		if c.Sequential {
			dynFJPerCycle += c.ClkFJ * escale
		}
		dynW := fHz * dynFJPerCycle * 1e-15

		// Leakage: library value at the domain, scaled by the
		// channel-length dependence (Eq. 4).
		leakNW := c.LeakNW[dom]
		if in.LgateNM != nil {
			leakNW *= tech.LeakScale(vdd, in.LgateNM[i])
		}
		rep.CellLeakNW[i] = leakNW
		leakW := leakNW * 1e-9

		dynMW := dynW * 1e3
		leakMW := leakW * 1e3
		rep.DynamicMW += dynMW
		rep.LeakMW += leakMW
		if c.IsLevelShifter() {
			// The shifter's own contribution is its internal and
			// input-pin energy plus leakage; the output-net
			// switching it drives existed before insertion (the
			// original driver paid it) and is not overhead. This
			// matches the paper's "power values were then increased
			// by the contribution of level-shifters".
			ownFJ := act * c.InternalFJ * escale
			for _, n := range inst.Inputs {
				ownFJ += in.Activity[n] * c.InputFJ * escale
			}
			rep.ShifterDynMW += fHz * ownFJ * 1e-12
			rep.ShifterLeakMW += leakMW
		}
		rep.ByDomain[dom].DynamicMW += dynMW
		rep.ByDomain[dom].LeakMW += leakMW
		u := netlist.TopUnit(inst.Unit)
		up := unitAgg[u]
		if up == nil {
			up = &UnitPower{Unit: u}
			unitAgg[u] = up
		}
		up.DynamicMW += dynMW
		up.LeakMW += leakMW
	}
	for _, up := range unitAgg {
		rep.ByUnit = append(rep.ByUnit, *up)
	}
	sort.Slice(rep.ByUnit, func(i, j int) bool {
		ti, tj := rep.ByUnit[i].TotalMW(), rep.ByUnit[j].TotalMW()
		if ti != tj {
			return ti > tj
		}
		return rep.ByUnit[i].Unit < rep.ByUnit[j].Unit
	})
	return rep, nil
}

// String renders the report in the spirit of the paper's Table 1
// power column.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "f=%.0fMHz total=%.3fmW dynamic=%.3fmW leakage=%.3fmW (%.2f%%)\n",
		r.FreqMHz, r.TotalMW(), r.DynamicMW, r.LeakMW, 100*r.LeakMW/r.TotalMW())
	fmt.Fprintf(&b, "%-14s %10s %8s\n", "unit", "power(mW)", "power%")
	for _, u := range r.ByUnit {
		fmt.Fprintf(&b, "%-14s %10.4f %7.2f%%\n", u.Unit, u.TotalMW(), 100*u.TotalMW()/r.TotalMW())
	}
	if r.ShifterMW() > 0 {
		fmt.Fprintf(&b, "level shifters: %.4fmW (%.2f%% of total)\n", r.ShifterMW(), 100*r.ShifterFrac())
	}
	return b.String()
}
