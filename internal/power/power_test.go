package power

import (
	"math"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/gsim"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/vex"
	"vipipe/internal/vexsim"
)

func toggleFixture(t *testing.T) (*netlist.Netlist, []float64) {
	t.Helper()
	b := netlist.NewBuilder("p", cell.Default65nm())
	d := b.Input("d")
	q := b.DFF(d)
	inv := b.Not(q)
	_ = inv
	s, err := gsim.New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 33; c++ {
		s.SetPI(d, c%2 == 1)
		s.Step()
	}
	return b.NL, s.Activity()
}

func TestAnalyzeValidation(t *testing.T) {
	nl, act := toggleFixture(t)
	if _, err := Analyze(Inputs{NL: nil, Activity: act, FreqMHz: 100}); err == nil {
		t.Error("nil netlist accepted")
	}
	if _, err := Analyze(Inputs{NL: nl, Activity: act[:1], FreqMHz: 100}); err == nil {
		t.Error("short activity accepted")
	}
	if _, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 0}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100, Domains: []cell.Domain{0}}); err == nil {
		t.Error("short domains accepted")
	}
	if _, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100, LgateNM: []float64{65}}); err == nil {
		t.Error("short lgate accepted")
	}
}

func TestDynamicScalesWithFrequencyAndActivity(t *testing.T) {
	nl, act := toggleFixture(t)
	r100, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100})
	if err != nil {
		t.Fatal(err)
	}
	r200, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r200.DynamicMW-2*r100.DynamicMW) > 1e-12 {
		t.Errorf("dynamic not linear in f: %g vs %g", r200.DynamicMW, r100.DynamicMW)
	}
	if math.Abs(r200.LeakMW-r100.LeakMW) > 1e-15 {
		t.Error("leakage should not depend on f")
	}
	// Zero activity: only clock power (flops) remains dynamic.
	zero := make([]float64, nl.NumNets())
	rz, err := Analyze(Inputs{NL: nl, Activity: zero, FreqMHz: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rz.DynamicMW <= 0 {
		t.Error("clock power missing at zero activity")
	}
	if rz.DynamicMW >= r100.DynamicMW {
		t.Error("zero-activity dynamic should be below switching dynamic")
	}
}

func TestHighVddCostsQuadratic(t *testing.T) {
	nl, act := toggleFixture(t)
	low, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100})
	if err != nil {
		t.Fatal(err)
	}
	doms := make([]cell.Domain, nl.NumCells())
	for i := range doms {
		doms[i] = cell.DomainHigh
	}
	high, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100, Domains: doms})
	if err != nil {
		t.Fatal(err)
	}
	ratio := high.DynamicMW / low.DynamicMW
	// All energy terms scale with Vdd^2 = 1.44.
	if math.Abs(ratio-1.44) > 1e-9 {
		t.Errorf("dynamic high/low ratio = %g, want 1.44", ratio)
	}
	if high.LeakMW <= low.LeakMW {
		t.Error("leakage must rise at high Vdd")
	}
}

func TestLeakageLgateScaling(t *testing.T) {
	nl, act := toggleFixture(t)
	short := make([]float64, nl.NumCells())
	long := make([]float64, nl.NumCells())
	for i := range short {
		short[i] = 60
		long[i] = 70
	}
	rs, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100, LgateNM: short})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100, LgateNM: long})
	if err != nil {
		t.Fatal(err)
	}
	if rs.LeakMW <= rl.LeakMW {
		t.Errorf("short channel should leak more: %g vs %g", rs.LeakMW, rl.LeakMW)
	}
}

func TestShifterAccounting(t *testing.T) {
	b := netlist.NewBuilder("ls", cell.Default65nm())
	d := b.Input("d")
	q := b.DFF(d)
	ls := b.NL.AddInst(cell.LvlShift, "ls0", netlist.StageNone, "ls", q)
	b.Output(ls)
	s, err := gsim.New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 17; c++ {
		s.SetPI(d, c%2 == 0)
		s.Step()
	}
	rep, err := Analyze(Inputs{NL: b.NL, Activity: s.Activity(), FreqMHz: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShifterMW() <= 0 {
		t.Fatal("level shifter power not accounted")
	}
	if rep.ShifterFrac() <= 0 || rep.ShifterFrac() >= 1 {
		t.Errorf("shifter fraction %g out of range", rep.ShifterFrac())
	}
}

func TestVexFIRPowerBreakdown(t *testing.T) {
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	fir, err := vexsim.NewFIR(core.Cfg, 12, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := vexsim.NewTestbench(core, fir.Prog, fir.DMem)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(fir.Cycles)
	pl, err := place.Global(core.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(Inputs{NL: core.NL, PL: pl, Activity: tb.Activity(), FreqMHz: 250})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMW() <= 0 {
		t.Fatal("no power")
	}
	// Shape checks on the reduced core (the full Table 1 comparison
	// runs on the default core in the benchmark harness): the
	// register file must be a major consumer, fetch negligible, and
	// leakage a small percentage for this low-power library (the
	// paper reports 1.1%).
	shares := make(map[string]float64)
	for i, u := range rep.ByUnit {
		shares[u.Unit] = u.TotalMW() / rep.TotalMW()
		if u.Unit == "regfile" && i > 2 {
			t.Errorf("regfile rank %d, want top-3", i+1)
		}
	}
	if shares["regfile"] < 0.10 {
		t.Errorf("regfile power share %.2f too small", shares["regfile"])
	}
	if shares["fetch"] > 0.02 {
		t.Errorf("fetch power share %.3f should be negligible", shares["fetch"])
	}
	leakFrac := rep.LeakMW / rep.TotalMW()
	if leakFrac > 0.10 {
		t.Errorf("leakage fraction %.3f too large for a low-power library", leakFrac)
	}
	if rep.String() == "" {
		t.Error("empty render")
	}
}

func TestByDomainSplit(t *testing.T) {
	nl, act := toggleFixture(t)
	doms := make([]cell.Domain, nl.NumCells())
	doms[0] = cell.DomainHigh // one cell on the high rail
	rep, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100, Domains: doms})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rep.ByDomain[cell.DomainLow], rep.ByDomain[cell.DomainHigh]
	if hi.TotalMW() <= 0 {
		t.Error("high rail empty despite one boosted cell")
	}
	sum := lo.TotalMW() + hi.TotalMW()
	if math.Abs(sum-rep.TotalMW()) > 1e-12 {
		t.Errorf("domain split %g != total %g", sum, rep.TotalMW())
	}
	// All low: high rail must be zero.
	rep2, err := Analyze(Inputs{NL: nl, Activity: act, FreqMHz: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ByDomain[cell.DomainHigh].TotalMW() != 0 {
		t.Error("high rail nonzero with all-low domains")
	}
}
