package sta

import (
	"math"
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/vex"
)

// pipe builds DFF -> inv chain (n deep) -> DFF.
func pipe(depth int) *netlist.Netlist {
	b := netlist.NewBuilder("pipe", cell.Default65nm())
	d := b.Input("d")
	restore := b.Scope(netlist.StageDecode, "stage1")
	q := b.DFF(d)
	restore()
	n := q
	for i := 0; i < depth; i++ {
		n = b.Not(n)
	}
	restore = b.Scope(netlist.StageExecute, "stage2")
	b.DFF(n)
	restore()
	return b.NL
}

func analyze(t *testing.T, nl *netlist.Netlist) *Analyzer {
	t.Helper()
	p, err := place.Global(nl, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(nl, p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArrivalGrowsWithDepth(t *testing.T) {
	a5 := analyze(t, pipe(5))
	a20 := analyze(t, pipe(20))
	r5 := a5.Run(10000, nil)
	r20 := a20.Run(10000, nil)
	if r20.CritPS <= r5.CritPS {
		t.Errorf("deeper chain not slower: %g vs %g", r20.CritPS, r5.CritPS)
	}
	// 15 extra inverters at >= 12ps each.
	if r20.CritPS-r5.CritPS < 15*12 {
		t.Errorf("depth scaling too weak: %g vs %g", r5.CritPS, r20.CritPS)
	}
}

func TestSlackSignAroundCritical(t *testing.T) {
	a := analyze(t, pipe(10))
	rep := a.Run(10000, nil)
	if rep.WorstSlack <= 0 {
		t.Fatalf("10ns clock should have positive slack, got %g", rep.WorstSlack)
	}
	tight := a.Run(rep.CritPS-1, nil)
	if tight.WorstSlack >= 0 {
		t.Errorf("clock below critical must violate, slack=%g", tight.WorstSlack)
	}
	exact := a.Run(rep.CritPS, nil)
	if math.Abs(exact.WorstSlack) > 1e-6 {
		t.Errorf("clock at critical: slack = %g, want 0", exact.WorstSlack)
	}
}

func TestScaleSpeedsAndSlows(t *testing.T) {
	nl := pipe(10)
	a := analyze(t, nl)
	nom := a.Run(10000, nil).CritPS
	slow := make([]float64, nl.NumCells())
	fast := make([]float64, nl.NumCells())
	for i := range slow {
		slow[i] = 1.2
		fast[i] = 0.8
	}
	if got := a.Run(10000, slow).CritPS; got <= nom {
		t.Errorf("slow scale did not slow: %g vs %g", got, nom)
	}
	if got := a.Run(10000, fast).CritPS; got >= nom {
		t.Errorf("fast scale did not speed up: %g vs %g", got, nom)
	}
}

func TestScaleIsPerInstance(t *testing.T) {
	// Two parallel chains; slowing only one must move only its
	// endpoint.
	b := netlist.NewBuilder("two", cell.Default65nm())
	d := b.Input("d")
	q := b.DFF(d)
	n1, n2 := q, q
	for i := 0; i < 5; i++ {
		n1 = b.Not(n1)
		n2 = b.Not(n2)
	}
	b.DFF(n1)
	b.DFF(n2)
	nl := b.NL
	a := analyze(t, nl)
	scale := make([]float64, nl.NumCells())
	for i := range scale {
		scale[i] = 1
	}
	rep := a.Run(10000, nil)
	// Identify the instances on chain 1 by walking the critical
	// path of endpoint 1 and scaling them 2x.
	ep := rep.Endpoints[1]
	for _, st := range a.CriticalPath(rep, ep, nil) {
		if st.Inst != netlist.NoInst && !nl.IsSequential(st.Inst) {
			scale[st.Inst] = 2
		}
	}
	rep2 := a.Run(10000, scale)
	if rep2.Endpoints[1].Arrival <= rep.Endpoints[1].Arrival {
		t.Error("scaled chain did not slow")
	}
	if math.Abs(rep2.Endpoints[2].Arrival-rep.Endpoints[2].Arrival) > 1e-9 {
		t.Error("unscaled chain moved")
	}
}

func TestPerStageGrouping(t *testing.T) {
	a := analyze(t, pipe(8))
	rep := a.Run(10000, nil)
	if len(rep.PerStage) != 2 {
		t.Fatalf("stages = %d, want 2 (decode, execute)", len(rep.PerStage))
	}
	dec := rep.PerStage[netlist.StageDecode]
	ex := rep.PerStage[netlist.StageExecute]
	if dec == nil || ex == nil {
		t.Fatal("missing stage groups")
	}
	// The input DFF (decode endpoint) is fed by a PI: short path.
	// The execute endpoint sits behind the inverter chain.
	if dec.WorstArr >= ex.WorstArr {
		t.Errorf("decode arr %g should be before execute arr %g", dec.WorstArr, ex.WorstArr)
	}
}

func TestCriticalPathWalk(t *testing.T) {
	a := analyze(t, pipe(6))
	rep := a.Run(10000, nil)
	var worst Endpoint
	worst.Slack = math.Inf(1)
	for _, ep := range rep.Endpoints {
		if ep.Slack < worst.Slack {
			worst = ep
		}
	}
	path := a.CriticalPath(rep, worst, nil)
	// Path: start DFF + 6 inverters.
	if len(path) != 7 {
		t.Fatalf("path length %d, want 7: %v", len(path), path)
	}
	if !a.NL.IsSequential(path[0].Inst) {
		t.Error("path should start at a flop")
	}
	sum := 0.0
	for _, s := range path {
		sum += s.DelayPS + s.WirePS
	}
	if math.Abs(sum-worst.Arrival) > 1e-6 {
		t.Errorf("path sums to %g, endpoint arrival %g", sum, worst.Arrival)
	}
}

func TestConstantsLaunchNoPaths(t *testing.T) {
	b := netlist.NewBuilder("k", cell.Default65nm())
	k := b.Const(true)
	n := k
	for i := 0; i < 50; i++ {
		n = b.Not(n)
	}
	b.DFF(n)
	a := analyze(t, b.NL)
	rep := a.Run(100, nil)
	// The only endpoint is fed purely by constants: no endpoint
	// should be reported, or it must be unconstrained.
	if len(rep.Endpoints) != 0 {
		t.Errorf("constant-fed endpoint constrained: %+v", rep.Endpoints)
	}
	if rep.CritPS != 0 {
		t.Errorf("CritPS = %g, want 0", rep.CritPS)
	}
}

func TestRefreshAfterNetlistGrowth(t *testing.T) {
	nl := pipe(4)
	p, err := place.Global(nl, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(nl, p)
	if err != nil {
		t.Fatal(err)
	}
	before := a.Run(10000, nil).CritPS
	// Splice a buffer into the chain.
	targetInst := nl.Nets[nl.Insts[2].Out].Sinks[0]
	buf := nl.AddInst(cell.Buf, "b1", netlist.StageNone, "", nl.Insts[2].Out)
	nl.RewireInput(targetInst.Inst, targetInst.Pin, buf)
	p.Extend()
	p.InsertAt(nl.NumCells()-1, p.DieW/2, p.DieH/2)
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	after := a.Run(10000, nil).CritPS
	if after <= before {
		t.Errorf("inserted buffer did not add delay: %g vs %g", after, before)
	}
}

func TestUnitKey(t *testing.T) {
	cases := map[string]string{
		"execute/slot2/alu": "execute/alu",
		"execute/fwd":       "execute/fwd",
		"decode/bypass":     "decode/bypass",
		"regfile":           "regfile",
		"":                  "(untagged)",
		"a/b/c":             "a/b",
		"slot1/x":           "x",
	}
	for in, want := range cases {
		if got := UnitKey(in); got != want {
			t.Errorf("UnitKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFmaxMHz(t *testing.T) {
	if got := FmaxMHz(4000); math.Abs(got-250) > 1e-9 {
		t.Errorf("4ns -> %g MHz, want 250", got)
	}
	if !math.IsInf(FmaxMHz(0), 1) {
		t.Error("zero period should be infinite fmax")
	}
}

func TestMismatchedPlacementRejected(t *testing.T) {
	nl1, nl2 := pipe(3), pipe(3)
	p2, err := place.Global(nl2, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nl1, p2); err == nil {
		t.Error("cross-netlist placement accepted")
	}
}

func TestVexCoreTimingSanity(t *testing.T) {
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, core.NL)
	rep := a.Run(20000, nil)
	// All four stages must have endpoints; write-back owns the
	// register file.
	for _, st := range []netlist.Stage{netlist.StageFetch, netlist.StageDecode, netlist.StageExecute, netlist.StageWriteback} {
		if rep.PerStage[st] == nil {
			t.Errorf("no endpoints in %v", st)
		}
	}
	if rep.CritPS <= 0 {
		t.Fatal("no critical path")
	}
	// The execute stage should be the critical one in this
	// microarchitecture (ripple ALU behind forwarding).
	ex := rep.PerStage[netlist.StageExecute]
	for st, v := range rep.PerStage {
		if st == netlist.StageNone {
			continue
		}
		if v.WorstArr > ex.WorstArr+1e-9 {
			t.Errorf("stage %v (%g ps) beats execute (%g ps)", st, v.WorstArr, ex.WorstArr)
		}
	}
}

func TestWorstEndpointsAndReportPaths(t *testing.T) {
	a := analyze(t, pipe(12))
	rep := a.Run(5000, nil)
	eps := WorstEndpoints(rep, 2)
	if len(eps) != 2 {
		t.Fatalf("got %d endpoints", len(eps))
	}
	if eps[0].Slack > eps[1].Slack {
		t.Error("not sorted worst-first")
	}
	all := WorstEndpoints(rep, 0)
	if len(all) != len(rep.Endpoints) {
		t.Error("n=0 should return all")
	}
	out := a.ReportPaths(rep, nil, 2)
	if !strings.Contains(out, "#1 endpoint") || !strings.Contains(out, "slack") {
		t.Errorf("report malformed:\n%s", out)
	}
}
