package sta

import (
	"math"

	"vipipe/internal/netlist"
)

// Kernel is the structure-of-arrays fast path for Monte Carlo inner
// loops: it re-times the netlist with zero per-sample allocation and
// returns only the scalar the sampling engines need — the critical
// path length — instead of materializing a full Report. Arrival
// propagation, endpoint evaluation and the per-instance scale
// application replicate Analyzer.RunInto operation for operation, so
// a Kernel critical path is bit-identical to Report.CritPS for the
// same clock and scale vector.
//
// Rerun is the incremental half: after a full Run, a sparse set of
// cells with changed scales re-propagates only the affected cone of
// the timing graph, which is how overlay-perturbed statistics cost a
// fraction of a full analysis per sample.
//
// A Kernel is NOT safe for concurrent use: it owns its arrival
// buffer. Build one per worker (construction is O(cells + nets) and
// shares the analyzer's characterized delays).
type Kernel struct {
	order []int     // comb topological order (shared with the Analyzer)
	base  []float64 // nominal instance delays (shared)
	setup []float64 // nominal setup times (shared)
	wire  []float64 // per-net wire delays (shared)

	pis []int // primary-input nets (shared)
	pos []int // primary-output nets (shared)
	seq []int // sequential instances, index order

	out   []int32 // driven net per instance
	in0   []int32 // first input net per instance (endpoint net of a flop)
	isTie []bool
	isSeq []bool
	stage []netlist.Stage // pipeline stage per instance

	// Input nets per instance, CSR over all instances.
	inPtr []int32
	inNet []int32

	// Combinational non-tie sinks per net, CSR: the mark targets of
	// incremental re-propagation.
	snkPtr  []int32
	snkInst []int32

	arr   []float64
	mark  []uint32
	epoch uint32
}

// NewKernel builds the flattened timing structure from a prepared
// analyzer. The kernel aliases the analyzer's characterized delay
// tables; re-characterizing the analyzer (Refresh) orphans the kernel,
// so build kernels after the netlist is final.
func NewKernel(a *Analyzer) *Kernel {
	nl := a.NL
	nCells := nl.NumCells()
	nNets := nl.NumNets()
	k := &Kernel{
		order: a.order,
		base:  a.baseDelay,
		setup: a.setup,
		wire:  a.wire,
		pis:   nl.PIs,
		pos:   nl.POs,
		out:   make([]int32, nCells),
		in0:   make([]int32, nCells),
		isTie: make([]bool, nCells),
		isSeq: make([]bool, nCells),
		stage: make([]netlist.Stage, nCells),
		inPtr: make([]int32, nCells+1),
		arr:   make([]float64, nNets),
		mark:  make([]uint32, nCells),
	}
	nIn := 0
	for i := 0; i < nCells; i++ {
		inst := &nl.Insts[i]
		c := nl.Cell(i)
		k.out[i] = int32(inst.Out)
		if len(inst.Inputs) > 0 {
			k.in0[i] = int32(inst.Inputs[0])
		} else {
			k.in0[i] = -1
		}
		k.isTie[i] = c.IsTie()
		k.isSeq[i] = c.Sequential
		k.stage[i] = inst.Stage
		if c.Sequential {
			k.seq = append(k.seq, i)
		}
		nIn += len(inst.Inputs)
	}
	k.inNet = make([]int32, 0, nIn)
	for i := 0; i < nCells; i++ {
		k.inPtr[i] = int32(len(k.inNet))
		for _, n := range nl.Insts[i].Inputs {
			k.inNet = append(k.inNet, int32(n))
		}
	}
	k.inPtr[nCells] = int32(len(k.inNet))

	k.snkPtr = make([]int32, nNets+1)
	nSnk := 0
	for n := 0; n < nNets; n++ {
		for _, s := range nl.Nets[n].Sinks {
			if !k.isSeq[s.Inst] && !k.isTie[s.Inst] {
				nSnk++
			}
		}
	}
	k.snkInst = make([]int32, 0, nSnk)
	for n := 0; n < nNets; n++ {
		k.snkPtr[n] = int32(len(k.snkInst))
		for _, s := range nl.Nets[n].Sinks {
			if !k.isSeq[s.Inst] && !k.isTie[s.Inst] {
				k.snkInst = append(k.snkInst, int32(s.Inst))
			}
		}
	}
	k.snkPtr[nNets] = int32(len(k.snkInst))
	return k
}

// NumCells returns the instance count the kernel times.
func (k *Kernel) NumCells() int { return len(k.out) }

// Run performs a full timing analysis and returns the critical path
// length — bit-identical to Report.CritPS from Analyzer.RunInto at
// the same clock and scale. scale must have NumCells entries. The
// arrival state is retained for a subsequent Rerun.
func (k *Kernel) Run(clockPS float64, scale []float64) float64 {
	k.propagate(scale)
	return k.critical(clockPS, scale)
}

// propagate performs the full arrival propagation for a scale vector,
// leaving the result in the retained arrival buffer.
func (k *Kernel) propagate(scale []float64) {
	arr := k.arr
	neg := math.Inf(-1)
	for n := range arr {
		arr[n] = neg
	}
	for _, n := range k.pis {
		arr[n] = 0
	}
	for _, i := range k.seq {
		arr[k.out[i]] = k.base[i] * scale[i]
	}
	for _, i := range k.order {
		if k.isTie[i] {
			continue
		}
		worst := neg
		for _, n := range k.inNet[k.inPtr[i]:k.inPtr[i+1]] {
			if t := arr[n] + k.wire[n]; t > worst {
				worst = t
			}
		}
		if worst == neg {
			arr[k.out[i]] = neg
			continue
		}
		arr[k.out[i]] = worst + k.base[i]*scale[i]
	}
}

// critical evaluates every endpoint against the retained arrivals,
// replicating the exact float expression sequence of RunInto's
// addEndpoint (including the need double-subtraction — which is not
// algebraically simplifiable without changing bits).
func (k *Kernel) critical(clockPS float64, scale []float64) float64 {
	arr := k.arr
	neg := math.Inf(-1)
	crit := 0.0
	for _, i := range k.seq {
		need := clockPS - k.setup[i]*scale[i]
		n := k.in0[i]
		t := arr[n] + k.wire[n]
		if t == neg {
			continue
		}
		if c := t + (clockPS - need); c > crit {
			crit = c
		}
	}
	for _, n := range k.pos {
		t := arr[n] + k.wire[n]
		if t == neg {
			continue
		}
		if c := t + (clockPS - clockPS); c > crit {
			crit = c
		}
	}
	return crit
}

// Rerun updates the retained analysis after a sparse scale change and
// returns the new critical path, bit-identical to a full Run with the
// same scale. dirty lists every instance whose scale entry differs
// from the previous Run/Rerun; arrival times re-propagate only from
// those cells through their affected fanout cones, then all endpoints
// re-evaluate (endpoints are cheap, and flop setup scaling makes every
// endpoint clock-sensitive anyway).
func (k *Kernel) Rerun(clockPS float64, scale []float64, dirty []int) float64 {
	arr := k.arr
	neg := math.Inf(-1)
	k.epoch++
	e := k.epoch
	for _, i := range dirty {
		switch {
		case k.isSeq[i]:
			nv := k.base[i] * scale[i]
			if nv != arr[k.out[i]] {
				arr[k.out[i]] = nv
				k.markSinks(k.out[i], e)
			}
		case k.isTie[i]:
			// Constants do not launch paths; scale is irrelevant.
		default:
			k.mark[i] = e
		}
	}
	for _, i := range k.order {
		if k.mark[i] != e {
			continue
		}
		worst := neg
		for _, n := range k.inNet[k.inPtr[i]:k.inPtr[i+1]] {
			if t := arr[n] + k.wire[n]; t > worst {
				worst = t
			}
		}
		nv := worst + k.base[i]*scale[i]
		if worst == neg {
			nv = neg
		}
		if nv != arr[k.out[i]] {
			arr[k.out[i]] = nv
			k.markSinks(k.out[i], e)
		}
	}
	return k.critical(clockPS, scale)
}

// markSinks stamps the combinational non-tie loads of net n for
// re-evaluation; they all sit later in topological order than the
// change that marked them.
func (k *Kernel) markSinks(n int32, e uint32) {
	for _, j := range k.snkInst[k.snkPtr[n]:k.snkPtr[n+1]] {
		k.mark[j] = e
	}
}
