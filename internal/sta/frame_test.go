package sta

import (
	"math"
	"math/rand"
	"testing"

	"vipipe/internal/netlist"
)

// TestFrameMatchesReport locks RunFrame's bit-identity contract: for
// any scale vector and clock, the frame's critical path, global worst
// slack, per-stage summaries and violator list are exactly what
// Analyzer.RunInto reports.
func TestFrameMatchesReport(t *testing.T) {
	a := coreAnalyzer(t)
	k := NewKernel(a)
	n := k.NumCells()
	clock := a.Run(1e9, nil).CritPS * 1.001
	rng := rand.New(rand.NewSource(11))
	rep := &Report{}
	f := &Frame{}
	for trial := 0; trial < 25; trial++ {
		scale := randScale(rng, n)
		// Sweep the clock down to force violations in some trials, so
		// the violator list is exercised non-empty.
		c := clock * (0.85 + 0.3*rng.Float64())
		a.RunInto(rep, c, scale)
		k.RunFrame(f, c, scale)

		if math.Float64bits(f.CritPS) != math.Float64bits(rep.CritPS) {
			t.Fatalf("trial %d: CritPS %v != %v", trial, f.CritPS, rep.CritPS)
		}
		if math.Float64bits(f.WorstSlack) != math.Float64bits(rep.WorstSlack) {
			t.Fatalf("trial %d: WorstSlack %v != %v", trial, f.WorstSlack, rep.WorstSlack)
		}
		for st := netlist.Stage(0); st < netlist.NumStages; st++ {
			want := rep.PerStage[st]
			if (want != nil) != f.Present[st] {
				t.Fatalf("trial %d stage %v: present %v, report %v", trial, st, f.Present[st], want != nil)
			}
			if want == nil {
				continue
			}
			lane := f.Lanes[st]
			if math.Float64bits(lane.WorstSlack) != math.Float64bits(want.WorstSlack) ||
				math.Float64bits(lane.WorstArr) != math.Float64bits(want.WorstArr) ||
				lane.Endpoint != want.Endpoint || lane.Endpoints != want.Endpoints {
				t.Fatalf("trial %d stage %v: lane %+v != %+v", trial, st, lane, *want)
			}
		}
		var wantViol []int32
		for e := range rep.Endpoints {
			ep := &rep.Endpoints[e]
			if ep.Slack < 0 && ep.Inst != netlist.NoInst {
				wantViol = append(wantViol, int32(ep.Inst))
			}
		}
		if len(wantViol) != len(f.Violators) {
			t.Fatalf("trial %d: %d violators != %d", trial, len(f.Violators), len(wantViol))
		}
		for i := range wantViol {
			if wantViol[i] != f.Violators[i] {
				t.Fatalf("trial %d: violator[%d] = %d, want %d", trial, i, f.Violators[i], wantViol[i])
			}
		}
	}
}

// TestFrameReuse verifies a reused frame holds the same bits a fresh
// one would after re-evaluation at a different operating point.
func TestFrameReuse(t *testing.T) {
	a := coreAnalyzer(t)
	k := NewKernel(a)
	n := k.NumCells()
	rng := rand.New(rand.NewSource(5))
	s1, s2 := randScale(rng, n), randScale(rng, n)
	clock := a.Run(1e9, nil).CritPS

	reused := &Frame{}
	k.RunFrame(reused, clock*0.9, s1)
	k.RunFrame(reused, clock, s2)
	fresh := &Frame{}
	k.RunFrame(fresh, clock, s2)
	if math.Float64bits(reused.CritPS) != math.Float64bits(fresh.CritPS) ||
		reused.Lanes != fresh.Lanes || reused.Present != fresh.Present ||
		len(reused.Violators) != len(fresh.Violators) {
		t.Fatalf("reused frame diverged from fresh: %+v vs %+v", reused, fresh)
	}
}

// TestViewShape sanity-checks the extractor view: consistent lengths
// and a CSR that covers every instance input.
func TestViewShape(t *testing.T) {
	a := coreAnalyzer(t)
	k := NewKernel(a)
	v := k.View()
	n := k.NumCells()
	if len(v.Out) != n || len(v.IsTie) != n || len(v.IsSeq) != n || len(v.Stage) != n {
		t.Fatalf("per-instance slices disagree on cell count")
	}
	if len(v.InPtr) != n+1 {
		t.Fatalf("InPtr length %d != cells+1", len(v.InPtr))
	}
	if int(v.InPtr[n]) != len(v.InNet) {
		t.Fatalf("CSR tail %d != %d input nets", v.InPtr[n], len(v.InNet))
	}
	for i := 0; i < n; i++ {
		want := a.NL.Insts[i].Inputs
		got := v.InNet[v.InPtr[i]:v.InPtr[i+1]]
		if len(got) != len(want) {
			t.Fatalf("inst %d: %d inputs in view, %d in netlist", i, len(got), len(want))
		}
	}
}
