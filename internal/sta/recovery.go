package sta

import (
	"context"
	"math"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
)

// RecoveryTargets gives, per pipeline stage, the fraction of the clock
// period that slack recovery relaxes that stage's paths to.
//
// A commercial performance-driven flow, once the critical stage meets
// the clock, spends the remaining slack of the other stages on power
// (downsizing, high-Vt swap), leaving every stage close to the
// constraint — the "slack wall" visible in the paper's Fig. 3, where
// the execute, decode and write-back distributions all sit within a
// few percent of the clock. Our structural netlist has no synthesis
// sizing loop, so this pass emulates it: cells off the critical stage
// are derated (slowed) until their stage approaches its target. The
// default targets are calibrated to the relative stage positions of
// the paper's Fig. 3 (EX most critical, then DC, then WB).
type RecoveryTargets map[netlist.Stage]float64

// DefaultRecoveryTargets mirrors Fig. 3's stage ordering.
func DefaultRecoveryTargets() RecoveryTargets {
	// The per-stage gaps below the execute stage are wider than the
	// raw Fig. 3 spacing because the recovered wall puts hundreds of
	// near-critical paths in every stage, and the expected maximum
	// over them absorbs roughly one percent of headroom.
	return RecoveryTargets{
		netlist.StageFetch:     0.90,
		netlist.StageDecode:    0.965,
		netlist.StageExecute:   1.00,
		netlist.StageWriteback: 0.94,
		netlist.StageNone:      0.90,
	}
}

// SlackRecovery computes a per-instance derate vector (>= 1) that
// slows non-critical logic until each stage sits near target * clock,
// emulating post-synthesis power recovery. The vector composes
// multiplicatively with variation and voltage scales. maxDerate caps
// the per-cell slowdown (bounding how much a sizing/Vt swap could
// plausibly slow a cell); iterations bounds the relaxation loop.
func (a *Analyzer) SlackRecovery(clockPS float64, targets RecoveryTargets, maxDerate float64, iterations int) []float64 {
	derate, _ := a.SlackRecoveryCtx(context.Background(), clockPS, targets, maxDerate, iterations)
	return derate
}

// SlackRecoveryCtx is SlackRecovery with cancellation: the incremental
// re-analysis loop (one full timing run plus a backward required-time
// pass per iteration) checks ctx between iterations and returns the
// derate vector relaxed so far together with an error matching
// flowerr.ErrCancelled when the context expires mid-loop.
func (a *Analyzer) SlackRecoveryCtx(ctx context.Context, clockPS float64, targets RecoveryTargets, maxDerate float64, iterations int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := a.NL.NumCells()
	derate := make([]float64, n)
	for i := range derate {
		derate[i] = 1
	}
	if iterations <= 0 {
		iterations = 20
	}
	if maxDerate < 1 {
		maxDerate = 1
	}
	tau := func(ep *Endpoint) float64 {
		f, ok := targets[ep.Stage]
		if !ok {
			f = 1
		}
		return f * clockPS
	}
	rep := &Report{}
	req := make([]float64, a.NL.NumNets())
	const tolPS = 2.0
	for iter := 0; iter < iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return derate, flowerr.Cancelledf("sta: slack recovery cancelled after %d/%d iterations: %w", iter, iterations, err)
		}
		a.RunInto(rep, clockPS, derate)
		a.requiredTimesInto(req, rep, derate, tau)
		changed := false
		for i := range a.NL.Insts {
			// Registers are never resized: derating a flop would
			// inflate the setup cost of paths into it, which the
			// output-slack growth rule below cannot see.
			if a.NL.Cell(i).IsTie() || a.NL.Cell(i).Sequential {
				continue
			}
			out := a.NL.Insts[i].Out
			arr := rep.Arrival[out]
			if math.IsInf(arr, -1) || math.IsInf(req[out], 1) {
				continue
			}
			s := req[out] - arr
			switch {
			case s > tolPS:
				// Grow toward the wall, proportionally to the
				// remaining headroom on the worst path through
				// this cell; damped because every cell on the
				// path grows in the same iteration.
				f := 1 + 0.6*s/math.Max(arr, 100)
				if f > 1.5 {
					f = 1.5
				}
				nd := derate[i] * f
				if nd > maxDerate {
					nd = maxDerate
				}
				if nd != derate[i] {
					derate[i] = nd
					changed = true
				}
			case s < -tolPS && derate[i] > 1:
				// Overshoot: back off, never below nominal.
				f := 1 + s/math.Max(arr, 100)
				if f < 0.7 {
					f = 0.7
				}
				nd := derate[i] * f
				if nd < 1 {
					nd = 1
				}
				derate[i] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return derate, nil
}

// requiredTimesInto runs the backward pass: the latest time each net
// may switch such that every downstream endpoint meets its target. tau
// gives the absolute target per endpoint. req is caller-owned storage
// with NumNets entries, hoisted out of the relaxation loop; it is
// fully reinitialized, so reuse returns the same bits a fresh buffer
// would.
func (a *Analyzer) requiredTimesInto(req []float64, rep *Report, scale []float64, tau func(*Endpoint) float64) {
	nl := a.NL
	sc := func(i int) float64 {
		if scale == nil {
			return 1
		}
		return scale[i]
	}
	for i := range req {
		req[i] = math.Inf(1)
	}
	for k := range rep.Endpoints {
		ep := &rep.Endpoints[k]
		t := tau(ep)
		if ep.Inst != netlist.NoInst {
			t -= a.setup[ep.Inst] * sc(ep.Inst)
		}
		t -= a.wire[ep.Net]
		if t < req[ep.Net] {
			req[ep.Net] = t
		}
	}
	// Walk combinational cells in reverse topological order.
	for k := len(a.order) - 1; k >= 0; k-- {
		i := a.order[k]
		inst := &nl.Insts[i]
		r := req[inst.Out]
		if math.IsInf(r, 1) {
			continue
		}
		need := r - a.baseDelay[i]*sc(i)
		for _, n := range inst.Inputs {
			if t := need - a.wire[n]; t < req[n] {
				req[n] = t
			}
		}
	}
}
