package sta

import (
	"math"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/vex"
)

// twoStage builds a fast decode-stage chain and a slow execute-stage
// chain between flops.
func twoStage(fast, slow int) *netlist.Netlist {
	b := netlist.NewBuilder("ts", cell.Default65nm())
	d := b.Input("d")
	q := b.DFF(d)
	nf, ns := q, q
	for i := 0; i < fast; i++ {
		nf = b.Not(nf)
	}
	for i := 0; i < slow; i++ {
		ns = b.Not(ns)
	}
	r := b.Scope(netlist.StageDecode, "dec")
	b.DFF(nf)
	r()
	r = b.Scope(netlist.StageExecute, "ex")
	b.DFF(ns)
	r()
	return b.NL
}

func TestSlackRecoveryClosesTheGap(t *testing.T) {
	nl := twoStage(5, 40)
	a := analyze(t, nl)
	nom := a.Run(1e9, nil) // huge clock: measure raw arrivals
	clock := nom.PerStage[netlist.StageExecute].WorstArr * 1.02
	targets := RecoveryTargets{
		netlist.StageDecode:  0.95,
		netlist.StageExecute: 1.0,
	}
	derate := a.SlackRecovery(clock, targets, 50, 30)
	rep := a.Run(clock, derate)
	dec := rep.PerStage[netlist.StageDecode].WorstArr
	ex := rep.PerStage[netlist.StageExecute].WorstArr
	// Decode was ~8x faster than execute; after recovery it must sit
	// near 95% of the clock.
	if dec < 0.85*clock {
		t.Errorf("decode arr %.0f still far below clock %.0f", dec, clock)
	}
	if dec > clock {
		t.Errorf("decode arr %.0f overshot the clock %.0f", dec, clock)
	}
	// Execute (the critical stage) must be essentially untouched.
	if ex > nom.PerStage[netlist.StageExecute].WorstArr*1.05 {
		t.Errorf("execute slowed from %.0f to %.0f", nom.PerStage[netlist.StageExecute].WorstArr, ex)
	}
	// All derates are >= 1 (recovery never speeds cells up).
	for i, f := range derate {
		if f < 1 {
			t.Fatalf("derate[%d] = %g < 1", i, f)
		}
	}
}

func TestSlackRecoveryRespectsMaxDerate(t *testing.T) {
	nl := twoStage(2, 60)
	a := analyze(t, nl)
	nom := a.Run(1e9, nil)
	clock := nom.PerStage[netlist.StageExecute].WorstArr
	derate := a.SlackRecovery(clock, DefaultRecoveryTargets(), 2.0, 30)
	for i, f := range derate {
		if f > 2.0+1e-9 {
			t.Fatalf("derate[%d] = %g exceeds cap", i, f)
		}
	}
	// With a tight cap the 2-inverter chain cannot reach the wall.
	rep := a.Run(clock, derate)
	if dec := rep.PerStage[netlist.StageDecode].WorstArr; dec > 0.6*clock {
		t.Errorf("capped recovery reached %.0f of clock %.0f — cap ineffective", dec, clock)
	}
}

func TestRequiredTimesConsistentWithSlack(t *testing.T) {
	nl := twoStage(3, 12)
	a := analyze(t, nl)
	clock := 5000.0
	rep := a.Run(clock, nil)
	req := make([]float64, nl.NumNets())
	a.requiredTimesInto(req, rep, nil, func(ep *Endpoint) float64 { return clock })
	// For each endpoint net, req = clock - setup - wire, and slack
	// computed from req must match the report's endpoint slack.
	for _, ep := range rep.Endpoints {
		want := clock - a.setup[ep.Inst] - a.wire[ep.Net]
		if math.Abs(req[ep.Net]-want) > 1e-9 {
			t.Errorf("req[%d] = %g, want %g", ep.Net, req[ep.Net], want)
		}
		slackViaReq := req[ep.Net] - rep.Arrival[ep.Net]
		if math.Abs(slackViaReq-ep.Slack) > 1e-9 {
			t.Errorf("slack mismatch: %g vs %g", slackViaReq, ep.Slack)
		}
	}
}

func TestVexRecoveryReproducesStageWall(t *testing.T) {
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Global(core.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(core.NL, p)
	if err != nil {
		t.Fatal(err)
	}
	nom := a.Run(1e9, nil)
	clock := nom.CritPS * 1.01
	derate := a.SlackRecovery(clock, DefaultRecoveryTargets(), 12, 25)
	rep := a.Run(clock, derate)

	ex := rep.PerStage[netlist.StageExecute].WorstArr
	dc := rep.PerStage[netlist.StageDecode].WorstArr
	wb := rep.PerStage[netlist.StageWriteback].WorstArr
	// Fig. 3 ordering: EX most critical, then DC, then WB, all close
	// to the clock.
	if !(ex > dc && dc > wb) {
		t.Errorf("stage ordering wrong: ex=%.0f dc=%.0f wb=%.0f", ex, dc, wb)
	}
	if dc < 0.90*clock || wb < 0.88*clock {
		t.Errorf("stages not near the wall: clock=%.0f dc=%.0f wb=%.0f", clock, dc, wb)
	}
	if rep.WorstSlack < -clock*0.02 {
		t.Errorf("recovery violated the clock: worst slack %.0f", rep.WorstSlack)
	}
}
