package sta

import (
	"math"

	"vipipe/internal/netlist"
)

// StageLane is one pipeline stage's endpoint summary inside a Frame:
// the structure-of-arrays counterpart of StageTiming.
type StageLane struct {
	Stage      netlist.Stage
	WorstSlack float64
	WorstArr   float64
	Endpoint   int // instance of the worst endpoint (netlist.NoInst for a PO)
	Endpoints  int
}

// Frame is the batch-friendly endpoint summary of one timing
// evaluation: fixed-size per-stage lanes instead of RunInto's
// per-sample map bookkeeping, so Monte Carlo loops can store sample
// outcomes in flat arrays. All float results replicate RunInto's
// addEndpoint expression sequence operation for operation and are
// bit-identical to the corresponding Report fields.
type Frame struct {
	ClockPS    float64
	CritPS     float64
	WorstSlack float64
	// Lanes is indexed by stage; Present marks stages that have at
	// least one constrained endpoint (structural: the set does not
	// vary with the scale vector).
	Lanes   [netlist.NumStages]StageLane
	Present [netlist.NumStages]bool
	// Violators lists the flop instances with negative slack, in
	// ascending instance order (primary outputs are excluded, exactly
	// like the violator scan over Report.Endpoints).
	Violators []int32
}

// RunFrame performs a full timing analysis and summarizes every
// endpoint into f. The per-stage worst slack/arrival/endpoint, the
// global worst slack and CritPS are bit-identical to the Report an
// Analyzer.RunInto call produces for the same clock and scale.
func (k *Kernel) RunFrame(f *Frame, clockPS float64, scale []float64) {
	k.propagate(scale)
	k.endpoints(f, clockPS, scale)
}

// endpoints evaluates every endpoint against the retained arrivals
// into f. Flop D pins are scanned in ascending instance order, then
// primary outputs — the same order RunInto appends Endpoints — so
// tie-breaking on equal slacks matches too.
func (k *Kernel) endpoints(f *Frame, clockPS float64, scale []float64) {
	arr := k.arr
	neg := math.Inf(-1)
	f.ClockPS = clockPS
	f.CritPS = 0
	f.WorstSlack = math.Inf(1)
	f.Violators = f.Violators[:0]
	for s := range f.Lanes {
		f.Lanes[s] = StageLane{Stage: netlist.Stage(s), WorstSlack: math.Inf(1)}
		f.Present[s] = false
	}
	add := func(inst int, t, need, slack float64, stage netlist.Stage) {
		if slack < f.WorstSlack {
			f.WorstSlack = slack
		}
		if crit := t + (clockPS - need); crit > f.CritPS {
			f.CritPS = crit
		}
		lane := &f.Lanes[stage]
		f.Present[stage] = true
		lane.Endpoints++
		if slack < lane.WorstSlack {
			lane.WorstSlack = slack
			lane.WorstArr = t
			lane.Endpoint = inst
		}
	}
	for _, i := range k.seq {
		need := clockPS - k.setup[i]*scale[i]
		n := k.in0[i]
		t := arr[n] + k.wire[n]
		if t == neg {
			continue // constant path: unconstrained
		}
		slack := need - t
		add(i, t, need, slack, k.stage[i])
		if slack < 0 {
			f.Violators = append(f.Violators, int32(i))
		}
	}
	for _, n := range k.pos {
		t := arr[n] + k.wire[n]
		if t == neg {
			continue
		}
		add(netlist.NoInst, t, clockPS, clockPS-t, netlist.StageNone)
	}
}

// KernelView exposes the kernel's flattened timing structure to model
// extractors (internal/tmodel) that need to walk the timing graph with
// the exact characterized delays the kernel times with. All slices
// alias kernel state and must be treated as read-only.
type KernelView struct {
	// Order is the combinational topological order (instance IDs).
	Order []int
	// BasePS / SetupPS are nominal per-instance delays; WirePS is the
	// per-net wire delay.
	BasePS  []float64
	SetupPS []float64
	WirePS  []float64
	// PIs / POs are primary-input and primary-output net IDs; Seq
	// lists sequential instances in ascending instance order.
	PIs []int
	POs []int
	Seq []int
	// Out is the driven net per instance; InPtr/InNet is the CSR of
	// input nets per instance.
	Out   []int32
	InPtr []int32
	InNet []int32
	IsTie []bool
	IsSeq []bool
	Stage []netlist.Stage
}

// View returns a read-only view of the kernel's timing structure.
func (k *Kernel) View() KernelView {
	return KernelView{
		Order:   k.order,
		BasePS:  k.base,
		SetupPS: k.setup,
		WirePS:  k.wire,
		PIs:     k.pis,
		POs:     k.pos,
		Seq:     k.seq,
		Out:     k.out,
		InPtr:   k.inPtr,
		InNet:   k.inNet,
		IsTie:   k.isTie,
		IsSeq:   k.isSeq,
		Stage:   k.stage,
	}
}

// NumNets returns the net count the kernel times.
func (k *Kernel) NumNets() int { return len(k.arr) }
