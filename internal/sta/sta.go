// Package sta implements graph-based static timing analysis over a
// placed netlist: the substitute for PrimeTime in the paper's flow.
//
// Delay model: each combinational cell contributes a load-dependent
// delay (intrinsic + drive * load), where the load is the sum of sink
// input capacitances plus placement-derived wire capacitance; each net
// adds a repeatered-wire delay proportional to its half-perimeter
// wirelength. Flip-flops launch at clk-to-Q and capture with a setup
// margin. A per-instance multiplicative scale factor — the product of
// the process-variation factor (paper Eq. 3) and the supply-voltage
// factor — is applied to every cell delay, exactly like the paper's
// SDF-rewriting parser; wire delays are left unscaled ("we ignore
// variation in wires").
package sta

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vipipe/internal/flowerr"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
)

// Analyzer caches the placement-dependent loads and the topological
// order so that repeated analyses (Monte Carlo) only recompute
// arrivals.
type Analyzer struct {
	NL *netlist.Netlist
	PL *place.Placement

	order     []int     // topological order of combinational cells
	baseDelay []float64 // nominal cell delay per instance (comb: in->out, ff: clk->Q)
	setup     []float64 // nominal setup time per instance (flops only)
	wire      []float64 // wire delay per net
}

// New prepares an analyzer for a placed netlist.
func New(nl *netlist.Netlist, pl *place.Placement) (*Analyzer, error) {
	if pl.NL != nl {
		return nil, flowerr.BadInputf("sta: placement belongs to a different netlist")
	}
	if len(pl.X) != nl.NumCells() {
		return nil, flowerr.BadInputf("sta: placement covers %d of %d cells", len(pl.X), nl.NumCells())
	}
	order, err := nl.Levelize()
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	a := &Analyzer{
		NL:        nl,
		PL:        pl,
		order:     order,
		baseDelay: make([]float64, nl.NumCells()),
		setup:     make([]float64, nl.NumCells()),
		wire:      make([]float64, nl.NumNets()),
	}
	a.characterize()
	return a, nil
}

// characterize computes nominal per-cell delays and per-net wire
// delays from the placement.
func (a *Analyzer) characterize() {
	tech := a.NL.Lib.Tech
	// Net loads: sink pin caps + wire cap.
	loadFF := make([]float64, a.NL.NumNets())
	for n := range a.NL.Nets {
		hpwl := a.PL.NetHPWL(n)
		load := tech.WireCapFFPerUM * hpwl
		for _, s := range a.NL.Nets[n].Sinks {
			load += a.NL.Cell(s.Inst).InputCapFF
		}
		loadFF[n] = load
		a.wire[n] = tech.WireDelayPSPerUM * hpwl
	}
	for i := range a.NL.Insts {
		c := a.NL.Cell(i)
		load := loadFF[a.NL.Insts[i].Out]
		if c.Sequential {
			a.baseDelay[i] = c.ClkQPS + c.DrivePSPerFF*load
			a.setup[i] = c.SetupPS
		} else {
			a.baseDelay[i] = c.IntrinsicPS + c.DrivePSPerFF*load
		}
	}
}

// BaseDelay returns the nominal (scale = 1) delay of instance i.
func (a *Analyzer) BaseDelay(i int) float64 { return a.baseDelay[i] }

// WireDelay returns the wire delay of net n.
func (a *Analyzer) WireDelay(n int) float64 { return a.wire[n] }

// Refresh recomputes loads and wire delays after placement or netlist
// edits (e.g. level-shifter insertion). The caller must have extended
// the placement first.
func (a *Analyzer) Refresh() error {
	order, err := a.NL.Levelize()
	if err != nil {
		return err
	}
	a.order = order
	a.baseDelay = make([]float64, a.NL.NumCells())
	a.setup = make([]float64, a.NL.NumCells())
	a.wire = make([]float64, a.NL.NumNets())
	a.characterize()
	return nil
}

// Endpoint is a timing endpoint: a flip-flop data pin or a primary
// output.
type Endpoint struct {
	Inst    int           // flop instance, or netlist.NoInst for a PO
	Net     int           // the captured net
	Stage   netlist.Stage // pipeline stage of the endpoint
	Arrival float64       // data arrival time, ps
	Slack   float64       // against the report's clock period
}

// StageTiming summarizes one pipeline stage.
type StageTiming struct {
	Stage      netlist.Stage
	WorstSlack float64
	WorstArr   float64
	Endpoint   int // instance of the worst endpoint
	Endpoints  int
}

// Report is the result of one timing analysis.
type Report struct {
	ClockPS    float64
	Arrival    []float64 // per net, at the driver output pin
	Endpoints  []Endpoint
	WorstSlack float64
	CritPS     float64 // minimum feasible clock period (max arrival + setup)
	PerStage   map[netlist.Stage]*StageTiming
}

// Run performs a full timing analysis at the given clock period.
// scale is a per-instance delay multiplier (variation x voltage); nil
// means nominal. The returned report may be reused via RunInto.
func (a *Analyzer) Run(clockPS float64, scale []float64) *Report {
	rep := &Report{}
	a.RunInto(rep, clockPS, scale)
	return rep
}

// RunInto is Run with caller-owned storage, for Monte Carlo loops.
func (a *Analyzer) RunInto(rep *Report, clockPS float64, scale []float64) {
	nl := a.NL
	if cap(rep.Arrival) < nl.NumNets() {
		rep.Arrival = make([]float64, nl.NumNets())
	}
	rep.Arrival = rep.Arrival[:nl.NumNets()]
	rep.ClockPS = clockPS
	rep.Endpoints = rep.Endpoints[:0]
	arr := rep.Arrival

	sc := func(i int) float64 {
		if scale == nil {
			return 1
		}
		return scale[i]
	}

	// Startpoints.
	neg := math.Inf(-1)
	for n := range arr {
		arr[n] = neg
	}
	for _, n := range nl.PIs {
		arr[n] = 0
	}
	for i := range nl.Insts {
		c := nl.Cell(i)
		switch {
		case c.Sequential:
			arr[nl.Insts[i].Out] = a.baseDelay[i] * sc(i)
		case c.IsTie():
			// Constants never switch: they do not launch paths.
			arr[nl.Insts[i].Out] = neg
		}
	}

	// Propagate through combinational logic in topological order.
	for _, i := range a.order {
		inst := &nl.Insts[i]
		if nl.Cell(i).IsTie() {
			continue
		}
		worst := neg
		for _, n := range inst.Inputs {
			if t := arr[n] + a.wire[n]; t > worst {
				worst = t
			}
		}
		if worst == neg {
			arr[inst.Out] = neg
			continue
		}
		arr[inst.Out] = worst + a.baseDelay[i]*sc(i)
	}

	// Endpoints: flop D pins and primary outputs.
	rep.WorstSlack = math.Inf(1)
	rep.CritPS = 0
	rep.PerStage = make(map[netlist.Stage]*StageTiming)
	addEndpoint := func(inst, net int, stage netlist.Stage, need float64) {
		t := arr[net] + a.wire[net]
		if t == neg {
			return // constant path: unconstrained
		}
		slack := need - t
		ep := Endpoint{Inst: inst, Net: net, Stage: stage, Arrival: t, Slack: slack}
		rep.Endpoints = append(rep.Endpoints, ep)
		if slack < rep.WorstSlack {
			rep.WorstSlack = slack
		}
		if crit := t + (clockPS - need); crit > rep.CritPS {
			rep.CritPS = crit
		}
		st := rep.PerStage[stage]
		if st == nil {
			st = &StageTiming{Stage: stage, WorstSlack: math.Inf(1)}
			rep.PerStage[stage] = st
		}
		st.Endpoints++
		if slack < st.WorstSlack {
			st.WorstSlack = slack
			st.WorstArr = t
			st.Endpoint = inst
		}
	}
	for i := range nl.Insts {
		if nl.IsSequential(i) {
			need := clockPS - a.setup[i]*sc(i)
			addEndpoint(i, nl.Insts[i].Inputs[0], nl.Insts[i].Stage, need)
		}
	}
	for _, n := range nl.POs {
		addEndpoint(netlist.NoInst, n, netlist.StageNone, clockPS)
	}
}

// CriticalPath backtracks the worst path into the given endpoint and
// returns it startpoint-first.
func (a *Analyzer) CriticalPath(rep *Report, ep Endpoint, scale []float64) []PathStep {
	sc := func(i int) float64 {
		if scale == nil {
			return 1
		}
		return scale[i]
	}
	var rev []PathStep
	net := ep.Net
	for {
		drv := a.NL.Nets[net].Driver
		if drv == netlist.NoInst {
			rev = append(rev, PathStep{Inst: netlist.NoInst, Net: net, DelayPS: 0})
			break
		}
		inst := &a.NL.Insts[drv]
		rev = append(rev, PathStep{
			Inst:    drv,
			Net:     net,
			Unit:    inst.Unit,
			DelayPS: a.baseDelay[drv] * sc(drv),
			WirePS:  a.wire[net],
		})
		if a.NL.IsSequential(drv) || a.NL.Cell(drv).IsTie() {
			break
		}
		// Pick the latest-arriving input.
		best, bestT := -1, math.Inf(-1)
		for _, n := range inst.Inputs {
			if t := rep.Arrival[n] + a.wire[n]; t > bestT {
				bestT, best = t, n
			}
		}
		if best < 0 {
			break
		}
		net = best
	}
	// Reverse to startpoint-first order.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// PathStep is one cell traversal on a timing path.
type PathStep struct {
	Inst    int
	Net     int
	Unit    string
	DelayPS float64 // cell delay contribution
	WirePS  float64 // wire delay leaving the cell
}

// PathBreakdown sums path delay per functional sub-unit: the tool
// behind the paper's "critical path ... through a forwarding unit
// (22%) and an ALU (60%)" observation. Slot indices are collapsed so
// all ALUs report as "execute/alu".
func PathBreakdown(path []PathStep) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range path {
		key := "(input)"
		if s.Inst != netlist.NoInst {
			key = UnitKey(s.Unit)
		}
		out[key] += s.DelayPS + s.WirePS
	}
	return out
}

// UnitKey canonicalizes a unit tag for reporting: per-slot components
// ("slot0", "slot1", ...) are dropped and at most two path levels are
// kept, so "execute/slot2/alu" becomes "execute/alu".
func UnitKey(unit string) string {
	if unit == "" {
		return "(untagged)"
	}
	var parts []string
	for _, part := range strings.Split(unit, "/") {
		if strings.HasPrefix(part, "slot") && len(part) > 4 && part[4] >= '0' && part[4] <= '9' {
			continue
		}
		parts = append(parts, part)
		if len(parts) == 2 {
			break
		}
	}
	return strings.Join(parts, "/")
}

// FmaxMHz converts a critical path length in ps to a frequency.
func FmaxMHz(critPS float64) float64 {
	if critPS <= 0 {
		return math.Inf(1)
	}
	return 1e6 / critPS
}

// WorstEndpoints returns the n endpoints with the smallest slack,
// worst first: the head of a PrimeTime-style timing report.
func WorstEndpoints(rep *Report, n int) []Endpoint {
	eps := append([]Endpoint(nil), rep.Endpoints...)
	sort.Slice(eps, func(i, j int) bool { return eps[i].Slack < eps[j].Slack })
	if n > 0 && len(eps) > n {
		eps = eps[:n]
	}
	return eps
}

// ReportPaths renders the worst n timing paths in a compact textual
// report: endpoint, stage, slack, and the per-unit delay composition
// of each path.
func (a *Analyzer) ReportPaths(rep *Report, scale []float64, n int) string {
	var b strings.Builder
	for rank, ep := range WorstEndpoints(rep, n) {
		name := "(primary output)"
		if ep.Inst != netlist.NoInst {
			name = a.NL.Insts[ep.Inst].Name
		}
		fmt.Fprintf(&b, "#%d endpoint %s [%v]: arrival %.0fps slack %.0fps\n",
			rank+1, name, ep.Stage, ep.Arrival, ep.Slack)
		path := a.CriticalPath(rep, ep, scale)
		br := PathBreakdown(path)
		keys := make([]string, 0, len(br))
		for k := range br {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return br[keys[i]] > br[keys[j]] })
		for _, k := range keys {
			fmt.Fprintf(&b, "    %-20s %7.0fps\n", k, br[k])
		}
	}
	return b.String()
}
