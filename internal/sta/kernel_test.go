package sta

import (
	"math"
	"math/rand"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/place"
	"vipipe/internal/vex"
)

// coreAnalyzer builds the small VEX core — reconvergent comb logic,
// several pipe stages, tie cells — the shape that exercises every
// kernel branch.
func coreAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Global(core.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(core.NL, p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func randScale(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.8 + 0.5*rng.Float64()
	}
	return s
}

// TestKernelMatchesAnalyzer locks the bit-identity contract: for any
// scale vector and clock, Kernel.Run returns exactly Report.CritPS.
func TestKernelMatchesAnalyzer(t *testing.T) {
	a := coreAnalyzer(t)
	k := NewKernel(a)
	n := k.NumCells()
	clock := a.Run(1e9, nil).CritPS * 1.001
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		scale := randScale(rng, n)
		c := clock * (0.9 + 0.2*rng.Float64())
		want := a.Run(c, scale).CritPS
		got := k.Run(c, scale)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: kernel %v != analyzer %v", trial, got, want)
		}
	}
}

// TestKernelUnitScale checks the all-ones vector reproduces the
// analyzer's nil-scale (nominal) analysis bit for bit.
func TestKernelUnitScale(t *testing.T) {
	a := coreAnalyzer(t)
	k := NewKernel(a)
	ones := make([]float64, k.NumCells())
	for i := range ones {
		ones[i] = 1
	}
	want := a.Run(5000, nil).CritPS
	got := k.Run(5000, ones)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("kernel %v != nominal analyzer %v", got, want)
	}
}

// TestRerunMatchesFullRun drives the incremental path through rounds
// of sparse perturbations — including sequential cells, whose outputs
// relaunch, and random comb subsets — and demands each Rerun match a
// from-scratch Run with the same cumulative scale vector, bitwise.
func TestRerunMatchesFullRun(t *testing.T) {
	a := coreAnalyzer(t)
	k := NewKernel(a)
	ref := NewKernel(a) // fresh kernel for full-run comparison
	n := k.NumCells()
	clock := a.Run(1e9, nil).CritPS * 1.001
	rng := rand.New(rand.NewSource(13))

	scale := randScale(rng, n)
	k.Run(clock, scale)
	for round := 0; round < 30; round++ {
		m := 1 + rng.Intn(8)
		dirty := make([]int, 0, m)
		seen := make(map[int]bool, m)
		for len(dirty) < m {
			i := rng.Intn(n)
			if seen[i] {
				continue
			}
			seen[i] = true
			dirty = append(dirty, i)
			scale[i] = 0.8 + 0.5*rng.Float64()
		}
		got := k.Rerun(clock, scale, dirty)
		want := ref.Run(clock, scale)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("round %d (%d dirty): rerun %v != full %v", round, m, got, want)
		}
	}
}

// TestRerunNoChange verifies an empty dirty set (or one whose scales
// did not actually move) returns the retained critical path unchanged.
func TestRerunNoChange(t *testing.T) {
	a := coreAnalyzer(t)
	k := NewKernel(a)
	n := k.NumCells()
	rng := rand.New(rand.NewSource(3))
	scale := randScale(rng, n)
	clock := a.Run(1e9, nil).CritPS
	base := k.Run(clock, scale)
	if got := k.Rerun(clock, scale, nil); math.Float64bits(got) != math.Float64bits(base) {
		t.Fatalf("empty rerun %v != base %v", got, base)
	}
	if got := k.Rerun(clock, scale, []int{0, n / 2, n - 1}); math.Float64bits(got) != math.Float64bits(base) {
		t.Fatalf("no-op rerun %v != base %v", got, base)
	}
}
