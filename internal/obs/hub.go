package obs

import (
	"sync"
	"sync/atomic"
)

// Hub is a broadcast fan-out for live telemetry: one publisher side,
// any number of subscribers, drop-and-count semantics. The subscriber
// set is owned by a single dispatch goroutine and every delivery is a
// non-blocking send into the subscriber's bounded buffer, so a stuck
// consumer (an SSE client that stopped reading) loses its own events
// — counted in Dropped — and can never backpressure the publisher.
//
// The dispatch goroutine is channel-confined: it writes nothing it
// captured, it only receives commands and forwards values over the
// hub's channels, and Close joins it by closing done (which also
// closes every subscriber channel, ending their streams cleanly).
type Hub[T any] struct {
	pub    chan T
	sub    chan chan T
	leave  chan chan T
	done   chan struct{}
	closer sync.Once

	subBuf    int
	published atomic.Int64
	dropped   atomic.Int64
	onDrop    func()
}

// NewHub starts a hub whose subscriber channels buffer subBuf values
// (<= 0 defaults to 256). onDrop, if non-nil, fires once per dropped
// delivery — the service wires its events.dropped counter here.
func NewHub[T any](subBuf int, onDrop func()) *Hub[T] {
	if subBuf <= 0 {
		subBuf = 256
	}
	h := &Hub[T]{
		pub:    make(chan T, 64),
		sub:    make(chan chan T),
		leave:  make(chan chan T),
		done:   make(chan struct{}),
		subBuf: subBuf,
		onDrop: onDrop,
	}
	go func() {
		subs := make(map[chan T]bool)
		deliver := func(v T) {
			for ch := range subs {
				select {
				case ch <- v:
				default:
					h.dropped.Add(1)
					if h.onDrop != nil {
						h.onDrop()
					}
				}
			}
		}
		for {
			select {
			case v := <-h.pub:
				deliver(v)
			case ch := <-h.sub:
				subs[ch] = true
			case ch := <-h.leave:
				if subs[ch] {
					delete(subs, ch)
					close(ch)
				}
			case <-h.done:
				// Flush events accepted before Close so a Publish that
				// returned true is never silently lost, then end every
				// subscriber's stream.
				for {
					select {
					case v := <-h.pub:
						deliver(v)
					default:
						for ch := range subs {
							close(ch)
						}
						return
					}
				}
			}
		}
	}()
	return h
}

// Publish delivers v to every current subscriber and reports whether
// the hub was still open. It may wait for the dispatch goroutine's
// (bounded, subscriber-independent) hand-off but never for a
// subscriber: slow consumers drop, they do not block.
func (h *Hub[T]) Publish(v T) bool {
	if h == nil {
		return false
	}
	select {
	case <-h.done:
		return false
	default:
	}
	select {
	case h.pub <- v:
		h.published.Add(1)
		return true
	case <-h.done:
		return false
	}
}

// Subscribe registers a new subscriber with the hub's default buffer
// and returns its channel plus a cancel function (idempotent; safe
// after Close). The channel closes on cancel or when the hub closes.
// On an already-closed hub the returned channel is closed immediately.
func (h *Hub[T]) Subscribe() (<-chan T, func()) {
	return h.SubscribeBuf(h.subBuf)
}

// SubscribeBuf is Subscribe with an explicit buffer capacity (<= 0
// uses the hub default): how far this consumer may fall behind before
// deliveries to it drop.
func (h *Hub[T]) SubscribeBuf(n int) (<-chan T, func()) {
	if n <= 0 {
		n = h.subBuf
	}
	ch := make(chan T, n)
	select {
	case h.sub <- ch:
	case <-h.done:
		close(ch)
		return ch, func() {}
	}
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			select {
			case h.leave <- ch:
			case <-h.done:
			}
		})
	}
	return ch, cancel
}

// Close shuts the hub down: the dispatch goroutine exits after
// closing every subscriber channel, and subsequent Publish calls
// return false. Safe to call more than once and on a nil hub.
func (h *Hub[T]) Close() {
	if h == nil {
		return
	}
	h.closer.Do(func() { close(h.done) })
}

// Published returns how many values were accepted for broadcast.
func (h *Hub[T]) Published() int64 {
	if h == nil {
		return 0
	}
	return h.published.Load()
}

// Dropped returns how many per-subscriber deliveries were discarded
// because the subscriber's buffer was full.
func (h *Hub[T]) Dropped() int64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}
