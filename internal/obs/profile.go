package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// RunProfile is the analysis of one finished trace: where the run's
// wall clock went. Raw spans say what happened; the profile attributes
// it — per-span self time (duration minus child overlap), the critical
// path that bounded completion, and a per-node-kind cost table folding
// the scheduler's span attributes (cache hit/miss, store tier, queue
// wait, artifact bytes) into one ranking of cost centers.
type RunProfile struct {
	TraceID   string `json:"trace_id"`
	TraceName string `json:"trace_name"`
	// WallUS is the trace's end-to-end extent; SelfTotalUS sums every
	// span's self time (> WallUS when nodes ran concurrently).
	WallUS      int64         `json:"wall_us"`
	SelfTotalUS int64         `json:"self_total_us"`
	Spans       []SpanProfile `json:"spans"`
	// CriticalPath walks from the latest-finishing root down through
	// the latest-finishing child at each level: the chain of spans
	// whose ends bounded the run's completion.
	CriticalPath []SpanProfile `json:"critical_path"`
	// Nodes ranks the per-kind cost centers by self time.
	Nodes []NodeCost `json:"nodes"`
}

// SpanProfile is one span with its derived costs and the scheduler
// attributes the profiler understands, parsed out of the attr list.
type SpanProfile struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// SelfUS is DurUS minus the union of the span's child intervals
	// (clipped to the span): time spent in this span itself.
	SelfUS  int64  `json:"self_us"`
	QueueUS int64  `json:"queue_us,omitempty"`
	Cache   string `json:"cache,omitempty"`
	Tier    string `json:"tier,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
}

// NodeCost aggregates the spans of one node kind (see kindOf): every
// field shard folds into "field", every characterization into "mc",
// so the table stays readable no matter how large the sweep.
type NodeCost struct {
	Kind     string  `json:"kind"`
	Spans    int     `json:"spans"`
	Hits     int     `json:"hits"`
	Misses   int     `json:"misses"`
	DiskHits int     `json:"disk_hits"`
	TotalUS  int64   `json:"total_us"`
	SelfUS   int64   `json:"self_us"`
	QueueUS  int64   `json:"queue_us"`
	Bytes    int64   `json:"bytes"`
	FracSelf float64 `json:"frac_self"`
}

// kindOf collapses a span name to its cost-accounting kind: the
// segment before the first "/" ("mc/A" -> "mc", "field/r3c2-ab/3" ->
// "field"), except surface folds keep their own bucket so the
// reduction does not hide inside the shard kind. Names without a
// slash (job.*, store.disk.*) are their own kind.
func kindOf(name string) string {
	if strings.HasPrefix(name, "field/surface/") {
		return "field/surface"
	}
	if i := strings.IndexByte(name, '/'); i > 0 {
		return name[:i]
	}
	return name
}

// attrValue returns the last value of key in the attr list ("" when
// absent) — last wins, matching append-order semantics of SetAttr.
func attrValue(attrs []Attr, key string) string {
	v := ""
	for _, a := range attrs {
		if a.Key == key {
			v = a.Value
		}
	}
	return v
}

// Profile analyzes a finished trace. It never mutates the trace and
// tolerates orphan spans (parent never ended): they profile as roots,
// like WriteTree renders them.
func Profile(t *Trace) *RunProfile {
	p := &RunProfile{TraceID: t.ID, TraceName: t.Name, WallUS: t.DurUS()}
	if len(t.Spans) == 0 {
		return p
	}

	present := make(map[int64]int, len(t.Spans)) // span ID -> index
	for i, s := range t.Spans {
		present[s.ID] = i
	}
	// effParent reparents orphans to the root, so every span lands in
	// exactly one children list.
	effParent := func(s SpanData) int64 {
		if _, ok := present[s.Parent]; !ok {
			return 0
		}
		return s.Parent
	}
	children := make(map[int64][]int)
	for i, s := range t.Spans {
		children[effParent(s)] = append(children[effParent(s)], i)
	}

	p.Spans = make([]SpanProfile, len(t.Spans))
	for i, s := range t.Spans {
		sp := SpanProfile{
			ID: s.ID, Parent: s.Parent, Name: s.Name,
			StartUS: s.StartUS, DurUS: s.DurUS,
			SelfUS: selfTime(s, children[s.ID], t.Spans),
			Cache:  attrValue(s.Attrs, "cache"),
			Tier:   attrValue(s.Attrs, "tier"),
		}
		sp.QueueUS, _ = strconv.ParseInt(attrValue(s.Attrs, "queue_wait_us"), 10, 64)
		sp.Bytes, _ = strconv.ParseInt(attrValue(s.Attrs, "bytes"), 10, 64)
		p.Spans[i] = sp
		p.SelfTotalUS += sp.SelfUS
	}

	// Critical path: start from the latest-finishing root and descend
	// into the latest-finishing child at every level.
	latest := func(idxs []int) int {
		best := -1
		var bestEnd, bestStart int64
		for _, i := range idxs {
			s := t.Spans[i]
			end := s.StartUS + s.DurUS
			if best < 0 || end > bestEnd || (end == bestEnd && s.StartUS > bestStart) {
				best, bestEnd, bestStart = i, end, s.StartUS
			}
		}
		return best
	}
	for at := latest(children[0]); at >= 0; at = latest(children[t.Spans[at].ID]) {
		p.CriticalPath = append(p.CriticalPath, p.Spans[at])
		if len(children[t.Spans[at].ID]) == 0 {
			break
		}
	}

	p.Nodes = costNodes(p.Spans, p.SelfTotalUS)
	return p
}

// selfTime is the span's duration minus the union of its children's
// intervals, clipped to the span's own extent.
func selfTime(s SpanData, childIdx []int, spans []SpanData) int64 {
	if len(childIdx) == 0 {
		return s.DurUS
	}
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, 0, len(childIdx))
	end := s.StartUS + s.DurUS
	for _, i := range childIdx {
		c := spans[i]
		lo, hi := c.StartUS, c.StartUS+c.DurUS
		if lo < s.StartUS {
			lo = s.StartUS
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered, cursor int64
	cursor = s.StartUS
	for _, v := range ivs {
		if v.lo > cursor {
			cursor = v.lo
		}
		if v.hi > cursor {
			covered += v.hi - cursor
			cursor = v.hi
		}
	}
	self := s.DurUS - covered
	if self < 0 {
		self = 0
	}
	return self
}

// costNodes folds span profiles into the per-kind cost table, ranked
// by self time (ties break on kind for determinism).
func costNodes(spans []SpanProfile, selfTotal int64) []NodeCost {
	byKind := make(map[string]*NodeCost)
	for _, sp := range spans {
		kind := kindOf(sp.Name)
		nc := byKind[kind]
		if nc == nil {
			nc = &NodeCost{Kind: kind}
			byKind[kind] = nc
		}
		nc.Spans++
		switch sp.Cache {
		case "hit":
			nc.Hits++
		case "miss":
			nc.Misses++
		}
		if sp.Tier == "disk" {
			nc.DiskHits++
		}
		nc.TotalUS += sp.DurUS
		nc.SelfUS += sp.SelfUS
		nc.QueueUS += sp.QueueUS
		nc.Bytes += sp.Bytes
	}
	out := make([]NodeCost, 0, len(byKind))
	for _, nc := range byKind {
		if selfTotal > 0 {
			nc.FracSelf = float64(nc.SelfUS) / float64(selfTotal)
		}
		out = append(out, *nc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUS != out[j].SelfUS {
			return out[i].SelfUS > out[j].SelfUS
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Dominant returns the top cost center (nil for an empty profile).
func (p *RunProfile) Dominant() *NodeCost {
	if len(p.Nodes) == 0 {
		return nil
	}
	return &p.Nodes[0]
}

// CostTable is the cross-run aggregation of NodeCost rows: the same
// ranking as one profile's Nodes, folded over every trace the flight
// recorder retained. Served at /debug/profile (no job ID).
type CostTable struct {
	Runs  int        `json:"runs"`
	Nodes []NodeCost `json:"nodes"`
}

// AggregateCosts profiles every trace and merges the per-kind rows.
// Nil traces are skipped.
func AggregateCosts(traces []*Trace) CostTable {
	ct := CostTable{}
	byKind := make(map[string]*NodeCost)
	var selfTotal int64
	for _, t := range traces {
		if t == nil {
			continue
		}
		ct.Runs++
		for _, nc := range Profile(t).Nodes {
			agg := byKind[nc.Kind]
			if agg == nil {
				agg = &NodeCost{Kind: nc.Kind}
				byKind[nc.Kind] = agg
			}
			agg.Spans += nc.Spans
			agg.Hits += nc.Hits
			agg.Misses += nc.Misses
			agg.DiskHits += nc.DiskHits
			agg.TotalUS += nc.TotalUS
			agg.SelfUS += nc.SelfUS
			agg.QueueUS += nc.QueueUS
			agg.Bytes += nc.Bytes
			selfTotal += nc.SelfUS
		}
	}
	ct.Nodes = make([]NodeCost, 0, len(byKind))
	for _, nc := range byKind {
		if selfTotal > 0 {
			nc.FracSelf = float64(nc.SelfUS) / float64(selfTotal)
		}
		ct.Nodes = append(ct.Nodes, *nc)
	}
	sort.Slice(ct.Nodes, func(i, j int) bool {
		if ct.Nodes[i].SelfUS != ct.Nodes[j].SelfUS {
			return ct.Nodes[i].SelfUS > ct.Nodes[j].SelfUS
		}
		return ct.Nodes[i].Kind < ct.Nodes[j].Kind
	})
	return ct
}

func msStr(us int64) string {
	return fmt.Sprintf("%.3fms", float64(us)/1000)
}

// WriteText renders the profile for terminals: header, critical path,
// then the cost-center table.
func (p *RunProfile) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "profile %s (%s): wall %s, self %s over %d spans\n",
		p.TraceID, p.TraceName, msStr(p.WallUS), msStr(p.SelfTotalUS), len(p.Spans)); err != nil {
		return err
	}
	if len(p.CriticalPath) > 0 {
		if _, err := fmt.Fprintln(w, "critical path:"); err != nil {
			return err
		}
		for i, sp := range p.CriticalPath {
			var extra strings.Builder
			if sp.Cache != "" {
				fmt.Fprintf(&extra, " cache=%s", sp.Cache)
			}
			if sp.Tier != "" {
				fmt.Fprintf(&extra, " tier=%s", sp.Tier)
			}
			if sp.QueueUS > 0 {
				fmt.Fprintf(&extra, " queue %s", msStr(sp.QueueUS))
			}
			if _, err := fmt.Fprintf(w, "  %s%s %s (self %s)%s\n",
				strings.Repeat("  ", i), sp.Name, msStr(sp.DurUS), msStr(sp.SelfUS), extra.String()); err != nil {
				return err
			}
		}
	}
	return writeCostTable(w, p.Nodes)
}

// WriteText renders the aggregated table.
func (ct CostTable) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "cost table over %d runs\n", ct.Runs); err != nil {
		return err
	}
	return writeCostTable(w, ct.Nodes)
}

func writeCostTable(w io.Writer, nodes []NodeCost) error {
	if len(nodes) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "cost centers (by self time):\n  %-20s %12s %6s %6s %9s %5s %12s %10s\n",
		"kind", "self", "%", "spans", "hit/miss", "disk", "queue", "bytes"); err != nil {
		return err
	}
	for _, nc := range nodes {
		if _, err := fmt.Fprintf(w, "  %-20s %12s %5.1f%% %6d %9s %5d %12s %10d\n",
			nc.Kind, msStr(nc.SelfUS), nc.FracSelf*100, nc.Spans,
			fmt.Sprintf("%d/%d", nc.Hits, nc.Misses), nc.DiskHits,
			msStr(nc.QueueUS), nc.Bytes); err != nil {
			return err
		}
	}
	return nil
}
