package obs

import (
	"context"
	"strings"
	"testing"
)

// buildDemoTrace drives a tiny run under the deterministic step clock
// (1ms per read): a root with a computed mc node and a cache-hit
// field shard served from disk.
func buildDemoTrace() *Trace {
	tr := NewTracerWithClock("t1", "demo", stepClock())
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "job.demo")

	_, a := Start(ctx, "mc/A")
	a.Lap("queue_wait_us")
	a.SetAttr("cache", "miss")
	a.SetAttr("bytes", 2048)
	a.End()

	_, b := Start(ctx, "field/r0c1-ab/0")
	b.SetAttr("cache", "hit")
	b.SetAttr("tier", "disk")
	b.End()

	root.End()
	return tr.Finish()
}

func TestProfileDemoTrace(t *testing.T) {
	p := Profile(buildDemoTrace())
	if p.WallUS != 6000 {
		t.Errorf("WallUS = %d, want 6000", p.WallUS)
	}
	if p.SelfTotalUS != 6000 {
		t.Errorf("SelfTotalUS = %d, want 6000", p.SelfTotalUS)
	}
	bySelf := map[string]int64{}
	for _, sp := range p.Spans {
		bySelf[sp.Name] = sp.SelfUS
	}
	// Root spans 1000..7000µs; children cover [2000,4000] and
	// [5000,6000], so the root keeps 3000µs of self time.
	if bySelf["job.demo"] != 3000 || bySelf["mc/A"] != 2000 || bySelf["field/r0c1-ab/0"] != 1000 {
		t.Errorf("self times = %v", bySelf)
	}
	// The field shard finishes last, so it is the critical child.
	if len(p.CriticalPath) != 2 || p.CriticalPath[0].Name != "job.demo" || p.CriticalPath[1].Name != "field/r0c1-ab/0" {
		t.Errorf("critical path = %+v", p.CriticalPath)
	}
	if p.CriticalPath[1].Cache != "hit" || p.CriticalPath[1].Tier != "disk" {
		t.Errorf("critical path attrs = %+v", p.CriticalPath[1])
	}
	if dom := p.Dominant(); dom == nil || dom.Kind != "job.demo" || dom.SelfUS != 3000 {
		t.Errorf("Dominant = %+v", dom)
	}
	var mc NodeCost
	for _, nc := range p.Nodes {
		if nc.Kind == "mc" {
			mc = nc
		}
	}
	if mc.Misses != 1 || mc.Hits != 0 || mc.QueueUS != 1000 || mc.Bytes != 2048 {
		t.Errorf("mc cost = %+v", mc)
	}
}

// TestProfileGoldenText golden-compares the full text report under
// the fake clock — the same renderer /debug/profile?format=text and
// the CLIs' -profile flag use.
func TestProfileGoldenText(t *testing.T) {
	var buf strings.Builder
	if err := Profile(buildDemoTrace()).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `profile t1 (demo): wall 6.000ms, self 6.000ms over 3 spans
critical path:
  job.demo 6.000ms (self 3.000ms)
    field/r0c1-ab/0 1.000ms (self 1.000ms) cache=hit tier=disk
cost centers (by self time):
  kind                         self      %  spans  hit/miss  disk        queue      bytes
  job.demo                  3.000ms  50.0%      1       0/0     0      0.000ms          0
  mc                        2.000ms  33.3%      1       0/1     0      1.000ms       2048
  field                     1.000ms  16.7%      1       1/0     1      0.000ms          0
`
	if got := buf.String(); got != want {
		t.Errorf("profile text mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestProfileSelfTimeOverlappingChildren pins the interval-union
// rule: concurrent children that overlap each other are not double
// subtracted, and child time outside the parent's extent is clipped.
func TestProfileSelfTimeOverlappingChildren(t *testing.T) {
	tr := &Trace{ID: "x", Name: "overlap", Spans: []SpanData{
		{ID: 1, Name: "parent", StartUS: 0, DurUS: 200},
		{ID: 2, Parent: 1, Name: "c1", StartUS: 0, DurUS: 100},
		{ID: 3, Parent: 1, Name: "c2", StartUS: 50, DurUS: 100},
		{ID: 4, Parent: 1, Name: "c3", StartUS: 180, DurUS: 100}, // runs past the parent
	}}
	p := Profile(tr)
	for _, sp := range p.Spans {
		if sp.Name == "parent" && sp.SelfUS != 30 {
			// union = [0,150) + [180,200) = 170 of 200
			t.Errorf("parent self = %d, want 30", sp.SelfUS)
		}
	}
}

// TestProfileOrphanSpans: spans whose parent never ended profile as
// roots and still participate in the critical path.
func TestProfileOrphanSpans(t *testing.T) {
	tr := &Trace{ID: "o", Name: "orphans", Spans: []SpanData{
		{ID: 5, Parent: 99, Name: "lost", StartUS: 10, DurUS: 50},
	}}
	p := Profile(tr)
	if len(p.CriticalPath) != 1 || p.CriticalPath[0].Name != "lost" {
		t.Errorf("critical path = %+v", p.CriticalPath)
	}
	if p.Spans[0].SelfUS != 50 {
		t.Errorf("orphan self = %d, want 50", p.Spans[0].SelfUS)
	}
}

func TestProfileEmptyTrace(t *testing.T) {
	p := Profile(&Trace{ID: "e", Name: "empty"})
	if p.WallUS != 0 || len(p.Spans) != 0 || len(p.CriticalPath) != 0 || p.Dominant() != nil {
		t.Errorf("empty profile = %+v", p)
	}
	var buf strings.Builder
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 spans") {
		t.Errorf("empty text = %q", buf.String())
	}
}

func TestKindOf(t *testing.T) {
	cases := map[string]string{
		"mc/A":                  "mc",
		"field/r3c2-deadbe/3":   "field",
		"field/surface/ab12cd3": "field/surface",
		"job.field_sweep":       "job.field_sweep",
		"store.disk.read":       "store.disk.read",
		"synth":                 "synth",
	}
	for in, want := range cases {
		if got := kindOf(in); got != want {
			t.Errorf("kindOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAggregateCosts(t *testing.T) {
	t1 := buildDemoTrace()
	t2 := buildDemoTrace()
	ct := AggregateCosts([]*Trace{t1, nil, t2})
	if ct.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", ct.Runs)
	}
	if len(ct.Nodes) != 3 || ct.Nodes[0].Kind != "job.demo" || ct.Nodes[0].Spans != 2 {
		t.Errorf("aggregated nodes = %+v", ct.Nodes)
	}
	var total float64
	for _, nc := range ct.Nodes {
		total += nc.FracSelf
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("FracSelf sums to %f", total)
	}
	var buf strings.Builder
	if err := ct.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cost table over 2 runs") {
		t.Errorf("cost table text = %q", buf.String())
	}
}
