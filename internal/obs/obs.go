// Package obs is the flow's tracing and profiling layer: per-node
// spans with context propagation, a bounded flight recorder of recent
// traces, and exporters to Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing) and a compact text tree.
//
// Tracing is opt-in and nil-safe: obs.Start returns a nil *Span when
// no Tracer rides the context, and every Span method no-ops on a nil
// receiver, so instrumented compute code stays unconditional and an
// untraced run pays only a context lookup. Spans never feed artifact
// state — traced and untraced runs produce bit-identical artifacts
// (the equivalence suite runs once with tracing enabled to prove it).
//
// obs is also the only package allowed to read the wall clock (the
// vipilint determinism rule enforces this module-wide): everything
// else that needs operational timestamps — scheduler hooks, job
// lifecycle metadata, metrics uptime — routes through obs.Now and
// obs.Since.
package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Now is the module's wall-clock edge: operational timestamps (job
// lifecycle, metrics uptime, latency hooks) read the clock here so
// deterministic compute packages never import one themselves.
func Now() time.Time { return time.Now() }

// Since is time.Since behind the same single wall-clock edge.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Attr is one key/value annotation on a span. Attributes keep their
// insertion order, so serialized traces are deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Tracer collects the spans of one run (a CLI invocation, a daemon
// job). It is safe for concurrent use: the pipeline scheduler ends
// spans from many worker goroutines at once.
type Tracer struct {
	id    string
	name  string
	now   func() time.Time
	epoch time.Time

	mu     sync.Mutex
	nextID int64
	ended  []*Span
}

// NewTracer returns a tracer for the run identified by id (a job ID,
// a tool name) reading the real wall clock.
func NewTracer(id, name string) *Tracer {
	return NewTracerWithClock(id, name, Now)
}

// NewTracerWithClock is NewTracer with an injectable clock, so tests
// can zero every timestamp and golden-compare exported traces.
func NewTracerWithClock(id, name string, now func() time.Time) *Tracer {
	return &Tracer{id: id, name: name, now: now, epoch: now()}
}

// Finish snapshots the spans ended so far as an exportable Trace.
// Spans are sorted by start time then ID; timestamps are microseconds
// relative to the tracer's construction.
func (t *Tracer) Finish() *Trace {
	t.mu.Lock()
	spans := make([]*Span, len(t.ended))
	copy(spans, t.ended)
	t.mu.Unlock()

	out := &Trace{ID: t.id, Name: t.name, Spans: make([]SpanData, 0, len(spans))}
	for _, s := range spans {
		s.mu.Lock()
		d := SpanData{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartUS: s.start.Sub(t.epoch).Microseconds(),
			DurUS:   s.dur.Microseconds(),
			Attrs:   append([]Attr(nil), s.attrs...),
		}
		s.mu.Unlock()
		out.Spans = append(out.Spans, d)
	}
	sortSpans(out.Spans)
	return out
}

// span IDs start at 1 so parent==0 always means "root".

func (t *Tracer) newID() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// Span is one timed operation. The zero of *Span (nil) is a valid
// no-op span, so call sites never branch on whether tracing is on.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu      sync.Mutex
	lastLap time.Time
	attrs   []Attr
	dur     time.Duration
	ended   bool
}

type ctxKey struct{}

// WithTracer installs a tracer on the context; spans started from it
// (and its children) are recorded there. A nil tracer returns ctx
// unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Span{tr: t})
}

// Current returns the span riding the context — the innermost Start
// not yet popped — or nil when untraced. Layers beneath an
// instrumented operation (cache tiers under a graph node span) use it
// to annotate the caller's span without threading *Span through APIs.
func Current(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	if s == nil || s.tr == nil || s.id == 0 {
		return nil // the WithTracer root carrier is not a real span
	}
	return s
}

// Enabled reports whether a tracer rides the context.
func Enabled(ctx context.Context) bool {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s != nil && s.tr != nil
}

// Start opens a span named name under the context's current span and
// returns a context carrying the new span (so nested Starts build the
// parent chain). Without a tracer on the context it returns ctx
// unchanged and a nil span, whose methods all no-op.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	t := parent.tr
	now := t.now()
	s := &Span{tr: t, id: t.newID(), parent: parent.id, name: name, start: now, lastLap: now}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SetAttr annotates the span. Values are rendered with fmt.Sprint, so
// strings, ints, bools and floats all serialize predictably.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	s.mu.Unlock()
}

// Lap records the microseconds elapsed since the span started (or
// since the previous Lap) as an attribute — the queue-wait vs compute
// split of a scheduler span, without the call site touching the clock.
func (s *Span) Lap(key string) {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.mu.Lock()
	us := now.Sub(s.lastLap).Microseconds()
	s.lastLap = now
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(us, 10)})
	s.mu.Unlock()
}

// End closes the span and hands it to the tracer. A second End is a
// no-op, so deferred Ends compose with explicit early ones.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = now.Sub(s.start)
	s.mu.Unlock()

	s.tr.mu.Lock()
	s.tr.ended = append(s.tr.ended, s)
	s.tr.mu.Unlock()
}

func sortSpans(spans []SpanData) {
	// Insertion sort keeps the package dependency-free; traces are
	// small (hundreds of spans).
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spanLess(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func spanLess(a, b SpanData) bool {
	if a.StartUS != b.StartUS {
		return a.StartUS < b.StartUS
	}
	return a.ID < b.ID
}
