package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// SpanData is the serialized form of one finished span. Timestamps
// are microseconds relative to the tracer's construction.
type SpanData struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Trace is one finished run's span set, sorted by start time then ID.
type Trace struct {
	ID    string     `json:"id"`
	Name  string     `json:"name"`
	Spans []SpanData `json:"spans"`
}

// DurUS returns the trace's end-to-end extent: the latest span end
// minus the earliest span start.
func (t *Trace) DurUS() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	lo, hi := t.Spans[0].StartUS, int64(0)
	for _, s := range t.Spans {
		if s.StartUS < lo {
			lo = s.StartUS
		}
		if end := s.StartUS + s.DurUS; end > hi {
			hi = end
		}
	}
	return hi - lo
}

// ChromeEvent is one Chrome trace-event record: a "complete" (ph "X")
// slice with explicit duration, the subset of the trace-event format
// that Perfetto and chrome://tracing both render.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeFile is the JSON-object flavor of the trace-event format.
type ChromeFile struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// Chrome renders the trace as trace-event records. Spans are packed
// onto display lanes (tid) greedily — each span takes the lowest lane
// free at its start time — so concurrent nodes stack instead of
// overdrawing; span identity and parentage travel in args.
func (t *Trace) Chrome() *ChromeFile {
	out := &ChromeFile{
		TraceEvents:     make([]ChromeEvent, 0, len(t.Spans)),
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"trace_id": t.ID, "trace_name": t.Name},
	}
	var laneEnd []int64
	for _, s := range t.Spans {
		lane := -1
		for i, end := range laneEnd {
			if end <= s.StartUS {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = s.StartUS + s.DurUS
		args := map[string]string{
			"span":   fmt.Sprint(s.ID),
			"parent": fmt.Sprint(s.Parent),
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name: s.Name, Cat: "span", Ph: "X",
			TS: s.StartUS, Dur: s.DurUS,
			PID: 1, TID: int64(lane + 1),
			Args: args,
		})
	}
	return out
}

// WriteChrome serializes the trace as Chrome trace-event JSON.
func (t *Trace) WriteChrome(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(t.Chrome()); err != nil {
		return fmt.Errorf("obs: encode chrome trace: %w", err)
	}
	return nil
}

// ParseChrome decodes Chrome trace-event JSON produced by WriteChrome
// (round-trip check; also accepts any object-flavor trace file).
func ParseChrome(r io.Reader) (*ChromeFile, error) {
	var f ChromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	return &f, nil
}

// WriteTree renders the trace as an indented text tree for terminals:
// each span with its duration and attributes, children nested under
// parents in start order.
func (t *Trace) WriteTree(w io.Writer) error {
	present := make(map[int64]bool, len(t.Spans))
	for _, s := range t.Spans {
		present[s.ID] = true
	}
	children := make(map[int64][]int)
	for i, s := range t.Spans {
		parent := s.Parent
		if !present[parent] {
			parent = 0 // orphans (parent never ended) print as roots
		}
		children[parent] = append(children[parent], i)
	}
	if _, err := fmt.Fprintf(w, "trace %s (%s) — %.3fms, %d spans\n",
		t.ID, t.Name, float64(t.DurUS())/1000, len(t.Spans)); err != nil {
		return err
	}
	var walk func(parent int64, prefix string) error
	walk = func(parent int64, prefix string) error {
		kids := children[parent]
		for i, idx := range kids {
			s := t.Spans[idx]
			branch, cont := "├─ ", "│  "
			if i == len(kids)-1 {
				branch, cont = "└─ ", "   "
			}
			var attrs strings.Builder
			for _, a := range s.Attrs {
				fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
			}
			if _, err := fmt.Fprintf(w, "%s%s%s %.3fms%s\n",
				prefix, branch, s.Name, float64(s.DurUS)/1000, attrs.String()); err != nil {
				return err
			}
			if err := walk(s.ID, prefix+cont); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, "")
}
